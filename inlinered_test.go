package inlinered

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
)

func TestRunQuickstart(t *testing.T) {
	stream, err := NewStream(StreamSpec{TotalBytes: 8 << 20, DedupRatio: 2, CompressionRatio: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(PaperPlatform(), Options{Mode: GPUCompress, Verify: true}, stream)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Chunks == 0 || rep.IOPS <= 0 {
		t.Fatalf("empty report: %+v", rep)
	}
	if math.Abs(rep.DedupRatio-2.0) > 0.2 {
		t.Fatalf("dedup ratio %g", rep.DedupRatio)
	}
}

func TestEngineVerify(t *testing.T) {
	stream, _ := NewStream(StreamSpec{TotalBytes: 4 << 20, DedupRatio: 2, CompressionRatio: 2, Seed: 2})
	eng, err := NewEngine(PaperPlatform(), Options{Mode: CPUOnly, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Process(stream); err != nil {
		t.Fatal(err)
	}
	stream.Reset()
	if err := eng.Verify(stream); err != nil {
		t.Fatal(err)
	}
}

func TestOptionsDisableOperations(t *testing.T) {
	stream, _ := NewStream(StreamSpec{TotalBytes: 4 << 20, DedupRatio: 3, CompressionRatio: 2, Seed: 3})
	rep, err := Run(PaperPlatform(), Options{DisableDedup: true}, stream)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DupChunks != 0 {
		t.Fatal("dedup disabled but duplicates found")
	}
	if _, err := Run(PaperPlatform(), Options{DisableDedup: true, DisableCompression: true}, stream); err == nil {
		t.Fatal("both operations off should error")
	}
}

func TestCalibrateOnWeakGPU(t *testing.T) {
	res, err := Calibrate(WeakGPUPlatform(), Options{}, 8<<20)
	if err != nil {
		t.Fatal(err)
	}
	// A weak GPU must not win the calibration for compression.
	if res.Best == GPUCompress || res.Best == GPUBoth {
		for m, r := range res.Reports {
			t.Logf("%s: %.0f IOPS", m, r.IOPS)
		}
		t.Fatalf("weak GPU platform picked %s", res.Best)
	}
}

func TestStreamSpecDefaults(t *testing.T) {
	s, err := NewStream(StreamSpec{TotalBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if s.Spec().ChunkSize != 4096 || s.Spec().DedupRatio != 1.0 || s.Spec().CompRatio != 1.0 {
		t.Fatalf("defaults not applied: %+v", s.Spec())
	}
}

func TestTemporalLocalityOption(t *testing.T) {
	s, err := NewStream(StreamSpec{TotalBytes: 2 << 20, DedupRatio: 3, TemporalLocality: true, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if s.Chunks() == 0 {
		t.Fatal("no chunks")
	}
}

func TestExtensionOptions(t *testing.T) {
	stream, _ := NewStream(StreamSpec{TotalBytes: 4 << 20, DedupRatio: 2, CompressionRatio: 2, Seed: 5})
	rep, err := Run(PaperPlatform(), Options{QuickLZ: true, EntropyBypass: true, Verify: true}, stream)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CompRatio < 1.5 {
		t.Fatalf("qlz run ratio %g", rep.CompRatio)
	}
	stream2, _ := NewStream(StreamSpec{TotalBytes: 4 << 20, DedupRatio: 2, CompressionRatio: 2, Seed: 5})
	eng, err := NewEngine(PaperPlatform(), Options{ContentDefined: true, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := eng.Process(stream2)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Chunks == int64(stream2.Chunks()) {
		t.Fatal("CDC should produce a different chunk count than fixed 4K")
	}
	stream2.Reset()
	if err := eng.Verify(stream2); err != nil {
		t.Fatal(err)
	}
}

func TestBlockDevice(t *testing.T) {
	dev, err := NewBlockDevice(BlockDeviceOptions{Blocks: 1024})
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 4096)
	for i := range data {
		data[i] = byte(i % 7)
	}
	if _, err := dev.Write(3, data); err != nil {
		t.Fatal(err)
	}
	got, lat, err := dev.Read(3)
	if err != nil || lat <= 0 {
		t.Fatalf("read: %v lat=%v", err, lat)
	}
	for i := range got {
		if got[i] != data[i] {
			t.Fatal("round trip mismatch")
		}
	}
	if _, err := dev.Write(4, data); err != nil {
		t.Fatal(err)
	}
	if dev.Stats().DedupHits != 1 {
		t.Fatalf("dedup hits: %d", dev.Stats().DedupHits)
	}
	if _, err := dev.Trim(3); err != nil {
		t.Fatal(err)
	}
	if _, err := dev.Clean(); err != nil {
		t.Fatal(err)
	}
	if dev.Now() <= 0 {
		t.Fatal("clock should advance")
	}
	if _, err := NewBlockDevice(BlockDeviceOptions{BlockSize: 8}); err == nil {
		t.Fatal("bad block size should be rejected")
	}
}

// TestRecorderAndJSON smoke-tests the observability surface of the public
// API: a Recorder collects spans from a run, exports valid Chrome
// trace-event JSON, and the report's JSON envelope parses.
func TestRecorderAndJSON(t *testing.T) {
	stream, err := NewStream(StreamSpec{TotalBytes: 4 << 20, DedupRatio: 2, CompressionRatio: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder()
	rep, err := Run(PaperPlatform(), Options{Mode: GPUBoth, Recorder: rec}, stream)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Spans() == 0 {
		t.Fatal("recorder saw no spans")
	}

	var buf bytes.Buffer
	if err := rec.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []struct {
			Ph   string `json:"ph"`
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	spans := 0
	for _, e := range tr.TraceEvents {
		if e.Ph == "X" {
			spans++
		}
	}
	if int64(spans) != rec.Spans() {
		t.Errorf("trace has %d complete events, recorder counted %d", spans, rec.Spans())
	}

	js, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var env struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(js, &env); err != nil {
		t.Fatalf("report JSON does not parse: %v", err)
	}
	if env.Schema == "" {
		t.Error("report JSON missing schema tag")
	}
	if rep.Latency.JournalFlush.Count == 0 {
		t.Errorf("recorder-enabled run reported no journal-flush latency: %+v", rep.Latency)
	}

	m, err := ParseMode("gpu-both")
	if err != nil || m != GPUBoth {
		t.Errorf("ParseMode(gpu-both) = %v, %v", m, err)
	}
}

func TestArrayServeDeterminism(t *testing.T) {
	ops, err := NewOps(OpsSpec{
		Ops: 600, Blocks: 256, WriteFrac: 0.5, TrimFrac: 0.1,
		DedupRatio: 2, Hotspot: 0.2, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	run := func(clients int) []byte {
		a, err := NewArray(BlockDeviceOptions{
			Blocks: 4096, Shards: 4, FaultRate: 0.02, FaultSeed: 11,
		})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := a.Serve(ops, ServeOptions{Clients: clients, ContentSeed: 5})
		if err != nil {
			t.Fatal(err)
		}
		js, err := rep.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return js
	}
	base := run(1)
	for _, clients := range []int{4, 16} {
		if !bytes.Equal(run(clients), base) {
			t.Fatalf("serve report diverged at %d clients", clients)
		}
	}
	var env struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(base, &env); err != nil || env.Schema != "inlinered/serve-report/v1" {
		t.Fatalf("serve report envelope: schema=%q err=%v", env.Schema, err)
	}
}

func TestArrayShardedRoundTrip(t *testing.T) {
	a, err := NewArray(BlockDeviceOptions{Blocks: 1024, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if a.Shards() != 4 {
		t.Fatalf("shards = %d, want 4", a.Shards())
	}
	data := bytes.Repeat([]byte{7}, 4096)
	for lba := int64(0); lba < 16; lba++ {
		if _, err := a.Write(lba, data); err != nil {
			t.Fatal(err)
		}
	}
	got, _, err := a.Read(9)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("round trip through shards failed: %v", err)
	}
	st := a.Stats()
	if st.Writes != 16 || st.Reads != 1 {
		t.Fatalf("merged stats: %+v", st)
	}
	if per := a.ShardStats(); len(per) != 4 {
		t.Fatalf("shard stats entries: %d", len(per))
	}
}

func TestRecorderRequiresSingleShard(t *testing.T) {
	if _, err := NewArray(BlockDeviceOptions{Shards: 2, Recorder: NewRecorder()}); err == nil {
		t.Fatal("Recorder with Shards > 1 must be rejected")
	}
	if _, err := NewBlockDevice(BlockDeviceOptions{Shards: 2, Recorder: NewRecorder()}); err == nil {
		t.Fatal("BlockDevice Recorder with Shards > 1 must be rejected")
	}
	if _, err := NewBlockDevice(BlockDeviceOptions{Shards: 1, Recorder: NewRecorder()}); err != nil {
		t.Fatalf("single-shard recorder rejected: %v", err)
	}
}

func TestClusterQuickstart(t *testing.T) {
	ops, err := NewOps(OpsSpec{
		Ops: 800, Blocks: 512, WriteFrac: 0.09, TrimFrac: 0.01,
		DedupRatio: 2, Hotspot: 0.5, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	run := func(clients int) (*ClusterReport, []byte, *Cluster) {
		c, err := NewCluster(BlockDeviceOptions{
			Blocks: 512, Shards: 2, Nodes: 3, Replicas: 2,
			NodeFaultRate: 0.01, NodeFaultSeed: 1337,
		})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := c.Serve(ops, ClusterServeOptions{Clients: clients, ContentSeed: 5})
		if err != nil {
			t.Fatal(err)
		}
		js, err := rep.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return rep, js, c
	}
	rep, base, c := run(1)
	for _, clients := range []int{3, 8} {
		if _, js, _ := run(clients); !bytes.Equal(js, base) {
			t.Fatalf("cluster report diverged at %d clients", clients)
		}
	}
	var env struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(base, &env); err != nil || env.Schema != "inlinered/cluster-report/v1" {
		t.Fatalf("cluster report envelope: schema=%q err=%v", env.Schema, err)
	}
	if rep.Nodes != 3 || rep.Replicas != 2 || c.Nodes() != 3 || c.Replicas() != 2 {
		t.Fatalf("cluster shape: report %d/%d cluster %d/%d",
			rep.Nodes, rep.Replicas, c.Nodes(), c.Replicas())
	}
	if rep.Faults.ReadsUnserved != 0 {
		t.Fatalf("reads went unserved: %+v", rep.Faults)
	}
	scrub, err := c.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if scrub.Errors != 0 {
		t.Fatalf("scrub errors on a faultless device: %+v", scrub)
	}
	if len(c.NodeStats()) != 3 {
		t.Fatal("node stats entries")
	}
	if reb, err := c.AddNode(); err != nil || reb.RangesMoved == 0 {
		t.Fatalf("AddNode: %+v err=%v", reb, err)
	}
	if c.Nodes() != 4 {
		t.Fatalf("nodes after AddNode = %d", c.Nodes())
	}
	if c.Now() == 0 {
		t.Fatal("virtual clock never advanced")
	}
}

func TestClusterRejectsBadShape(t *testing.T) {
	if _, err := NewCluster(BlockDeviceOptions{Nodes: 2, Replicas: 3}); err == nil {
		t.Fatal("Replicas > Nodes must be rejected")
	}
}
