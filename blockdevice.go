package inlinered

import (
	"fmt"
	"time"

	"inlinered/internal/cluster"
	"inlinered/internal/fault"
	"inlinered/internal/lz"
	"inlinered/internal/obs"
	"inlinered/internal/serve"
	"inlinered/internal/sim"
	"inlinered/internal/volume"
)

// BlockDeviceOptions tunes a deduplicating, compressing block device (the
// volume extension — see DESIGN.md).
type BlockDeviceOptions struct {
	// BlockSize is the LBA block (= chunk) size; 0 means 4 KB.
	BlockSize int
	// Blocks is the logical capacity in blocks; 0 means 2^18 (1 GiB at
	// 4 KB blocks).
	Blocks int64
	// DisableCompression stores unique chunks raw.
	DisableCompression bool
	// QuickLZ selects the QuickLZ-class codec instead of LZSS.
	QuickLZ bool
	// CacheBytes bounds the content-addressed read cache; 0 keeps the
	// 16 MiB default, negative disables caching.
	CacheBytes int64
	// SubBlocks > 1 compresses each unique chunk as that many independent
	// sub-blocks in an indexed container whose boundary table lets the
	// batch read path decode them in parallel (see DESIGN.md "Parallel
	// read path"). 0 or 1 keeps single-stream compression.
	SubBlocks int
	// Parallelism is the decode worker count for ReadBatch (0 or 1
	// decodes inline). Wall clock only: reports and results are
	// bit-identical for any value.
	Parallelism int
	// FaultRate enables deterministic fault injection on the device's
	// drive, journal, and index (transient SSD errors, latency spikes, torn
	// journal records, memory-pressure evictions), scheduled by FaultSeed.
	// 0 disables injection; a fixed seed makes runs bit-identical.
	FaultRate float64
	FaultSeed int64
	// Shards splits the device into that many independent volumes behind a
	// goroutine-safe front-end: LBAs route by lba % Shards, each shard has
	// its own virtual clock, fault stream, and journal region, and stats
	// merge deterministically. 0 or 1 means a single volume (the device is
	// goroutine-safe either way). See DESIGN.md "Sharded serving".
	Shards int
	// Recorder attaches an observability recorder (NewRecorder): every
	// request, CPU job, and NAND operation records a virtual-time span, and
	// the trace exports as Chrome trace-event JSON via Recorder.WriteTrace.
	// One recorder serves one volume's lanes, so Recorder requires
	// Shards <= 1. On a Cluster the recorder instead captures membership
	// events (crash/rejoin instants on a "cluster" lane). Nil means off.
	Recorder *Recorder
	// Nodes replicates the device across a cluster of that many nodes
	// (NewCluster only; 0 means 1). Each node is a full sharded array with
	// its own virtual clock and fault streams.
	Nodes int
	// Replicas is the cluster replication factor R: each LBA range lives
	// on R of the Nodes (NewCluster only; 0 means 1, must be <= Nodes).
	Replicas int
	// NodeFaultRate enables node-level fault injection in a cluster: node
	// crashes (with queued-mutation replay at rejoin) and silent replica
	// divergence (healed by read-repair and Scrub) both fire at this
	// per-opportunity rate, scheduled by NodeFaultSeed. Independent of the
	// device-level FaultRate streams.
	NodeFaultRate float64
	NodeFaultSeed int64
}

// volumeConfig converts the device-level options into a volume config.
func (opts BlockDeviceOptions) volumeConfig() volume.Config {
	cfg := volume.DefaultConfig()
	if opts.BlockSize > 0 {
		cfg.BlockSize = opts.BlockSize
	}
	if opts.Blocks > 0 {
		cfg.Blocks = opts.Blocks
	}
	cfg.Compress = !opts.DisableCompression
	if opts.QuickLZ {
		cfg.Codec = lz.CodecQLZ
	}
	if opts.CacheBytes > 0 {
		cfg.CacheBytes = opts.CacheBytes
	} else if opts.CacheBytes < 0 {
		cfg.CacheBytes = 0
	}
	if opts.FaultRate > 0 {
		cfg.Faults = fault.Config{Seed: opts.FaultSeed, Rates: fault.Uniform(opts.FaultRate)}
	}
	cfg.SubBlocks = opts.SubBlocks
	return cfg
}

// serveConfig converts the options into the sharded front-end's config.
func (opts BlockDeviceOptions) serveConfig() (serve.Config, error) {
	sc := serve.Config{Volume: opts.volumeConfig(), Shards: opts.Shards, Parallelism: opts.Parallelism}
	if opts.Recorder != nil {
		if opts.Shards > 1 {
			return serve.Config{}, fmt.Errorf(
				"inlinered: Recorder requires Shards <= 1 (a recorder serves one volume's lanes)")
		}
		sc.Obs = []*obs.Recorder{opts.Recorder}
	}
	return sc, nil
}

// clusterConfig converts the options into the replicated tier's config.
// The recorder (any node/shard count) captures membership events, not
// volume lanes, so the serveConfig recorder restriction does not apply.
func (opts BlockDeviceOptions) clusterConfig() cluster.Config {
	cc := cluster.Config{
		Volume:        opts.volumeConfig(),
		Nodes:         opts.Nodes,
		Replicas:      opts.Replicas,
		ShardsPerNode: opts.Shards,
		Parallelism:   opts.Parallelism,
		Obs:           opts.Recorder,
	}
	if opts.NodeFaultRate > 0 {
		cc.NodeFaults = fault.Config{
			Seed:  opts.NodeFaultSeed,
			Rates: fault.NodeUniform(opts.NodeFaultRate, opts.NodeFaultRate),
		}
	}
	return cc
}

// BlockDevice is an LBA-addressed deduplicating, compressing volume on the
// virtual clock: writes run the inline reduction path, reads decompress (or
// hit the content-addressed cache), overwrites and trims release chunk
// references, and Clean compacts log segments. Closed-loop: each operation
// reports its virtual latency.
//
// The device is safe for concurrent use: it is backed by the sharded
// serving front-end (1 shard by default; see BlockDeviceOptions.Shards),
// and requests to the same shard serialize on its virtual clock.
type BlockDevice struct {
	inner *serve.Array
}

// DeviceStats reports the device's space and activity accounting, including
// always-on per-operation latency summaries (WriteLat, ReadLat, TrimLat).
type DeviceStats = volume.Stats

// LatencySummary condenses a latency histogram: count, min/mean/max, and
// log-bucketed p50/p95/p99 (quantiles report a bucket's upper bound).
type LatencySummary = sim.LatencySummary

// NewBlockDevice builds a block device on the paper platform's CPU and SSD.
func NewBlockDevice(opts BlockDeviceOptions) (*BlockDevice, error) {
	sc, err := opts.serveConfig()
	if err != nil {
		return nil, err
	}
	inner, err := serve.New(sc)
	if err != nil {
		return nil, err
	}
	return &BlockDevice{inner: inner}, nil
}

// Write stores one block at lba and returns the request's virtual latency.
func (d *BlockDevice) Write(lba int64, data []byte) (time.Duration, error) {
	return d.inner.Write(lba, data)
}

// Read returns the block at lba (zeros when unmapped) and its latency.
func (d *BlockDevice) Read(lba int64) ([]byte, time.Duration, error) {
	return d.inner.Read(lba)
}

// Trim unmaps a block, releasing its chunk reference, and returns the
// request's virtual latency.
func (d *BlockDevice) Trim(lba int64) (time.Duration, error) { return d.inner.Trim(lba) }

// Clean compacts garbage-heavy log segments on every shard and returns how
// many were reclaimed.
func (d *BlockDevice) Clean() (int, error) { return d.inner.Clean() }

// Stats returns space and activity accounting, merged across shards
// (deterministically: counters sum and histogram buckets merge).
func (d *BlockDevice) Stats() DeviceStats { return d.inner.Stats() }

// ShardStats returns each shard's stats in shard order (one entry for an
// unsharded device).
func (d *BlockDevice) ShardStats() []DeviceStats { return d.inner.ShardStats() }

// Shards returns the device's shard count (1 when unsharded).
func (d *BlockDevice) Shards() int { return d.inner.Shards() }

// Now returns the device's virtual clock: the slowest shard's completion
// time.
func (d *BlockDevice) Now() time.Duration { return d.inner.Now() }

// ReadBatchOptions tune a batch read run (wall clock only — nothing here
// may affect the report or the returned bytes).
type ReadBatchOptions = serve.ReadBatchOptions

// ReadBatchReport summarizes a BlockDevice.ReadBatch run under the
// "inlinered/serve-readbatch-report/v2" JSON schema. It excludes client
// counts, decode parallelism, and wall clocks: runs differing only in
// scheduling encode to identical bytes.
type ReadBatchReport = serve.ReadBatchReport

// ReadBatch executes a batch of reads through the parallel read path:
// a sequential per-shard decision phase (cache, SSD, and virtual-clock
// accounting in request order), one parallel decode fan-out over the
// device's worker pool (Options.Parallelism), and a sequential commit.
// Results stream through opts.Sink; the report is bit-identical to issuing
// the reads serially, for any parallelism or client count.
func (d *BlockDevice) ReadBatch(lbas []int64, opts ReadBatchOptions) (*ReadBatchReport, error) {
	return d.inner.ReadBatch(lbas, opts)
}

// Close releases the device's decode worker pool (created on first
// ReadBatch when Options.Parallelism > 1). Idempotent; the device stays
// usable and a later ReadBatch recreates the pool. Devices that never use
// ReadBatch need not call Close.
func (d *BlockDevice) Close() { d.inner.Close() }
