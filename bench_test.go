package inlinered

// One benchmark per table/figure of the paper's evaluation (see DESIGN.md's
// experiment index). Each benchmark executes the corresponding experiment
// runner and reports its headline metrics through testing.B's custom
// metrics, so
//
//	go test -bench=. -benchmem
//
// regenerates every result. Benchmarks default to a reduced stream size to
// keep runs to seconds; set INLINERED_STREAM_MB (or use cmd/benchfig -mb)
// for paper-scale numbers. The recorded paper-scale outputs live in
// EXPERIMENTS.md.

import (
	"os"
	"runtime"
	"testing"

	"inlinered/internal/experiments"
	"inlinered/internal/metrics"
)

// benchConfig scales benchmark runs down unless the caller asked for more.
func benchConfig(b *testing.B) experiments.Config {
	cfg := experiments.DefaultConfig()
	if os.Getenv("INLINERED_STREAM_MB") == "" {
		cfg.StreamBytes = 64 << 20
	}
	if testing.Short() {
		cfg.StreamBytes = 16 << 20
		cfg.IndexEntries = 1 << 18
	}
	return cfg
}

// runExperiment executes one experiment per iteration and publishes the
// chosen metrics.
func runExperiment(b *testing.B, id string, metrics map[string]string) {
	b.Helper()
	r, ok := experiments.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	cfg := benchConfig(b)
	b.ReportAllocs()
	b.ResetTimer()
	var res *experiments.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = r.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	for key, unit := range metrics {
		if v, ok := res.Metrics[key]; ok {
			b.ReportMetric(v, unit)
		}
	}
}

// BenchmarkDataPlaneWallClock measures the real (host) cost of the data
// plane end to end: one full CPU-only dedup+compress run over a 64 MiB
// stream (16 MiB with -short), reported in actual elapsed time and
// allocations. The /serial case pins Parallelism to one worker; /parallel
// uses every host core; /cdc is the parallel case with content-defined
// (Gear) chunking in place of fixed 4 KB, so the chunker's multi-byte scan
// shows up in an end-to-end number. Reports are bit-identical across
// Parallelism (see TestParallelismDeterminism); only the wall clock and
// allocation profile differ — these are the benchmarks
// scripts/bench-compare.sh guards.
func BenchmarkDataPlaneWallClock(b *testing.B) {
	bytes := int64(64 << 20)
	if testing.Short() {
		bytes = 16 << 20
	}
	for _, bc := range []struct {
		name        string
		parallelism int
		cdc         bool
	}{
		{"serial", 1, false},
		{"parallel", 0, false}, // 0 = NumCPU
		{"cdc", 0, true},
	} {
		b.Run(bc.name, func(b *testing.B) {
			stream, err := NewStream(StreamSpec{
				TotalBytes: bytes, DedupRatio: 2, CompressionRatio: 2, Seed: 11,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(bytes)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				stream.Reset()
				rep, err := Run(PaperPlatform(), Options{
					Mode: CPUOnly, Parallelism: bc.parallelism,
					ContentDefined: bc.cdc,
				}, stream)
				if err != nil {
					b.Fatal(err)
				}
				if rep.Chunks == 0 {
					b.Fatal("empty report")
				}
			}
		})
	}
}

// BenchmarkServeWallClock measures the real (host) cost of serving a fixed
// closed-loop op mix through the sharded front-end. The /shards1 case is a
// single volume drained by one client; /shards4 routes the same mix across
// four shards drained by four concurrent clients. The merged reports are
// bit-identical across the cases' client counts (see
// TestServeMergeDeterminism); only the wall clock differs. Two effects
// compose: shards serve concurrently (toward a 4× speedup on a
// multi-core host; pure goroutine overhead on a single-core one), and
// independent shards cannot dedup across each other, so /shards4 does
// more real encoding work at a fixed dedup ratio. Array construction is
// excluded from the timed region (it allocates each shard's drive,
// cache, and index up front). scripts/bench-compare.sh guards both
// cases against regression, and the benchmark itself enforces
// serveAllocsPerOpCeiling so an allocation regression fails even a bare
// `go test -bench ServeWallClock` with no baseline around.
//
// serveAllocsPerOpCeiling bounds heap allocations per storage op across the
// Serve call. The zero-alloc serve path measures ~1.3 (shards1) to ~2.6
// (shards4) allocs/op — the remainder is the write path's retained state
// (exact-size blob, chunk ref, index entry, map growth); reads and trims
// run allocation-free once buffers are warm. The pre-pooling path sat at
// ~6-8 allocs/op, so 5 is real headroom without tolerating a relapse.
const serveAllocsPerOpCeiling = 5.0

func BenchmarkServeWallClock(b *testing.B) {
	// The wall-clock metrics layer rides along: it must not change the
	// report or the allocs/storage-op ceiling (its hot path is
	// alloc-free), and it gives the benchmark a utilization digest.
	metrics.Enable()
	defer metrics.Disable()
	ops := 30000
	if testing.Short() {
		ops = 8000
	}
	const blocks = 8192
	list, err := NewOps(OpsSpec{
		Ops: ops, Blocks: blocks, WriteFrac: 0.6, TrimFrac: 0.05,
		DedupRatio: 2, Hotspot: 0.5, Seed: 11,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, bc := range []struct {
		name    string
		shards  int
		clients int
	}{
		{"shards1", 1, 1},
		{"shards4", 4, 4},
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.SetBytes(int64(len(list)) * 4096)
			b.ReportAllocs()
			var mallocs uint64
			var m0, m1 runtime.MemStats
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				arr, err := NewArray(BlockDeviceOptions{
					Blocks: blocks, Shards: bc.shards,
				})
				if err != nil {
					b.Fatal(err)
				}
				runtime.ReadMemStats(&m0)
				b.StartTimer()
				rep, err := arr.Serve(list, ServeOptions{
					Clients: bc.clients, ContentSeed: 11, CleanEvery: 4096,
				})
				if err != nil {
					b.Fatal(err)
				}
				if rep.Ops == 0 {
					b.Fatal("empty report")
				}
				b.StopTimer()
				runtime.ReadMemStats(&m1)
				mallocs += m1.Mallocs - m0.Mallocs
				b.StartTimer()
			}
			b.StopTimer()
			perOp := float64(mallocs) / float64(b.N) / float64(len(list))
			b.ReportMetric(perOp, "allocs/storage-op")
			if perOp > serveAllocsPerOpCeiling {
				b.Fatalf("serve path allocates %.2f objects per storage op, ceiling is %.1f",
					perOp, serveAllocsPerOpCeiling)
			}
		})
	}
	b.Log(metrics.SummaryLine())
}

// readAllocsPerOpCeiling bounds heap allocations per read op across a
// warm ReadBatch call. The pooled batch path measures ~0.001 allocs/read
// steady-state (a handful of allocations per 65k-read batch: report
// assembly and goroutine spawns); the pre-pooling path sat at ~2.5
// allocs/read (164k allocs/op on this benchmark), so 0.05 is two orders
// of headroom above today while still failing loudly on any per-read
// allocation sneaking back in.
const readAllocsPerOpCeiling = 0.05

// readWarmHitRateFloor is the minimum cache-hit fraction the warm storm
// pass must sustain with a cache a quarter the size of the image's unique
// content. The scan-resistant policy measures ~45-50% here (probation
// promotions from co-running clients plus the pinned protected set); a
// pure LRU under the same cyclic pressure decays toward the resident
// fraction or worse. The floor guards the policy, not the exact number.
const readWarmHitRateFloor = 0.05

// BenchmarkReadPathWallClock measures the real (host) cost of the VDI
// boot-storm scenario through the batch read path: every desktop
// re-reading the shared golden image at once.
//
// /serial and /parallel disable the read cache so every read decodes its
// sub-block container, making them a pure decode-throughput contest:
// /serial pins Parallelism to 1 (the decode fan-out runs inline),
// /parallel spreads sub-block decodes across the worker pool. /warm runs
// the storm against a cache deliberately smaller than the image's unique
// content: the scan-resistant admission policy must keep a protected hot
// set resident across passes (a gated hit-rate floor) — the HPDedup
// temporal-locality argument, measured. The virtual-time report is
// bit-identical across all cases' schedules (see TestReadBatchDeterminism);
// only the wall clock differs — this is the read-side benchmark
// scripts/bench-compare.sh guards, including the allocs/read-op ceiling.
func BenchmarkReadPathWallClock(b *testing.B) {
	spec := DefaultBootStormSpec()
	spec.ImageBlocks = 2048
	spec.UniqueBlocks = 2048
	spec.ReadsPerClient = 512
	if testing.Short() {
		spec.ImageBlocks = 512
		spec.UniqueBlocks = 512
		spec.ReadsPerClient = 128
	}
	fill, err := spec.Fill()
	if err != nil {
		b.Fatal(err)
	}
	lbas, err := spec.Storm()
	if err != nil {
		b.Fatal(err)
	}
	// The image dedups 4:1, so its unique content is a quarter of its
	// logical size; the warm case's cache holds a quarter of *that* — small
	// enough that a policy admitting every access thrashes.
	warmCache := int64(spec.ImageBlocks) * 4096 / 16
	for _, bc := range []struct {
		name  string
		par   int
		cache int64
	}{
		{"serial", 1, -1},                     // every storm read decodes
		{"parallel", runtime.NumCPU(), -1},    // every storm read decodes
		{"warm", runtime.NumCPU(), warmCache}, // undersized cache, hit-rate gated
	} {
		b.Run(bc.name, func(b *testing.B) {
			arr, err := NewArray(BlockDeviceOptions{
				Blocks:      spec.ImageBlocks,
				Shards:      4,
				SubBlocks:   4,
				CacheBytes:  bc.cache,
				Parallelism: bc.par,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer arr.Close()
			if _, err := arr.Serve(fill, ServeOptions{}); err != nil {
				b.Fatal(err)
			}
			// Warm pass(es), untimed: batch buffers reach steady-state size
			// and (for /warm) the admission policy's ghost list and sketch
			// accumulate the evidence that pins the protected set. Two
			// passes because a strict re-reference needs one pass to be
			// seen, one to be re-admitted.
			for w := 0; w < 2; w++ {
				if _, err := arr.ReadBatch(lbas, ReadBatchOptions{}); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(int64(len(lbas)) * 4096)
			b.ReportAllocs()
			var mallocs uint64
			var m0, m1 runtime.MemStats
			runtime.ReadMemStats(&m0)
			b.ResetTimer()
			var rep *ReadBatchReport
			for i := 0; i < b.N; i++ {
				rep, err = arr.ReadBatch(lbas, ReadBatchOptions{})
				if err != nil {
					b.Fatal(err)
				}
				if rep.Errors != 0 {
					b.Fatalf("storm reads failed: %+v", rep)
				}
			}
			b.StopTimer()
			runtime.ReadMemStats(&m1)
			mallocs = m1.Mallocs - m0.Mallocs
			perOp := float64(mallocs) / float64(b.N) / float64(len(lbas))
			b.ReportMetric(perOp, "allocs/read-op")
			if bc.cache < 0 {
				// The zero-alloc contract holds on the decode path; the warm
				// case additionally allocates one payload buffer per miss
				// insert (cache entry buffers are deliberately not pooled —
				// a recycled buffer could alias a still-pending reserve
				// slot), so its gate is the hit-rate floor below instead.
				if perOp > readAllocsPerOpCeiling {
					b.Fatalf("read path allocates %.4f objects per read op, ceiling is %.2f",
						perOp, readAllocsPerOpCeiling)
				}
				b.ReportMetric(float64(rep.DecodedParts)/float64(rep.DecodedBlobs), "parts/blob")
			} else {
				hr := rep.HitRate()
				b.ReportMetric(hr, "cache-hit-rate")
				if hr < readWarmHitRateFloor {
					b.Fatalf("warm storm pass hit rate %.3f below floor %.2f", hr, readWarmHitRateFloor)
				}
			}
		})
	}
}

// BenchmarkE1PrelimIndexing — §3.1(3): CPU vs GPU indexing time; paper: CPU
// 4.16–5.45× faster with a kernel-launch floor on the GPU side.
func BenchmarkE1PrelimIndexing(b *testing.B) {
	runExperiment(b, "e1", map[string]string{
		"ratio_batch_2048": "gpu/cpu@2048",
		"ratio_batch_4096": "gpu/cpu@4096",
	})
}

// BenchmarkE2Dedup — §4(1): parallel dedup; paper: GPU-supported +15% over
// CPU-only, ~3× the SSD's throughput.
func BenchmarkE2Dedup(b *testing.B) {
	runExperiment(b, "e2", map[string]string{
		"cpu_iops":  "cpu-IOPS",
		"gpu_iops":  "gpu-IOPS",
		"gain_pct":  "gain-%",
		"gpu_x_ssd": "gpu-xSSD",
	})
}

// BenchmarkE3Compression — §4(2): parallel compression; paper at low ratio:
// CPU ~50K < SSD ~80K < GPU ~100K IOPS, GPU +88.3%.
func BenchmarkE3Compression(b *testing.B) {
	runExperiment(b, "e3", map[string]string{
		"cpu_iops_r1.0": "cpu-IOPS@r1",
		"gpu_iops_r1.0": "gpu-IOPS@r1",
		"gain_pct_r1.0": "gain-%@r1",
	})
}

// BenchmarkE4Integration — Figure 2: the four integration options; paper:
// GPU-for-compression wins, +89.7% over CPU-only.
func BenchmarkE4Integration(b *testing.B) {
	runExperiment(b, "e4", map[string]string{
		"iops_cpu-only":         "cpuonly-IOPS",
		"iops_gpu-compress":     "gpucomp-IOPS",
		"gain_gpu_compress_pct": "gain-%",
	})
}

// BenchmarkE5Calibration — §4(3): dummy-I/O calibration picks the best
// integration per platform.
func BenchmarkE5Calibration(b *testing.B) {
	runExperiment(b, "e5", map[string]string{
		"best_platform_0": "best-paper",
		"best_platform_1": "best-weakgpu",
	})
}

// BenchmarkE6IndexMemory — §3.1(1): 16 GB index for 4 TB @ 8 KB; 2-byte
// prefix truncation saves 1 GB.
func BenchmarkE6IndexMemory(b *testing.B) {
	runExperiment(b, "e6", map[string]string{
		"index_gib_prefix_0": "GiB@n0",
		"index_gib_prefix_2": "GiB@n2",
	})
}

// BenchmarkE7Endurance — §1 motivation: background reduction writes a
// multiple of inline reduction's I/O.
func BenchmarkE7Endurance(b *testing.B) {
	runExperiment(b, "e7", map[string]string{
		"host_ratio": "bg/inline-host",
		"nand_ratio": "bg/inline-nand",
	})
}

// BenchmarkE8BinScaling — §3.1(1) ablation: lock-free bins scale with
// threads; a global locked table does not.
func BenchmarkE8BinScaling(b *testing.B) {
	runExperiment(b, "e8", map[string]string{
		"bins_mops_t8":   "bins-Mops@8t",
		"locked_mops_t8": "locked-Mops@8t",
	})
}

// BenchmarkE9BinBuffer — §3.3 ablation: the bin buffer exploits temporal
// locality and batches sequential journal writes.
func BenchmarkE9BinBuffer(b *testing.B) {
	runExperiment(b, "e9", map[string]string{
		"bufshare_buf16": "bufhit@16",
		"iops_buf16":     "IOPS@16",
	})
}

// BenchmarkE10SubBlockOverlap — §3.2(2) ablation: lanes per chunk vs
// compression ratio loss, and overlap recovery.
func BenchmarkE10SubBlockOverlap(b *testing.B) {
	runExperiment(b, "e10", map[string]string{
		"iops_s4_o512":  "IOPS@4lanes",
		"ratio_s4_o512": "ratio@4lanes",
	})
}

// BenchmarkE11ShiftedCDC — extension: content-defined chunking recovers the
// duplicates that fixed 4 KB chunking loses on shifted data.
func BenchmarkE11ShiftedCDC(b *testing.B) {
	runExperiment(b, "e11", map[string]string{
		"dedup_fixed-4K": "dedup-fixed",
		"dedup_gear-cdc": "dedup-cdc",
	})
}

// BenchmarkE12VolumeLifecycle — extension: block-device semantics (LBA
// overwrites, refcounting, cleaning, reads) around the reduction pipeline.
func BenchmarkE12VolumeLifecycle(b *testing.B) {
	runExperiment(b, "e12", map[string]string{
		"fill_mean_us": "fill-µs",
		"read_mean_us": "read-µs",
	})
}

// BenchmarkE13CodecAblation — extension: LZSS (hash chains) vs the
// QuickLZ-class single-probe codec the paper baselines against.
func BenchmarkE13CodecAblation(b *testing.B) {
	runExperiment(b, "e13", map[string]string{
		"iops_lzss_r2.0": "lzss-IOPS@r2",
		"iops_qlz_r2.0":  "qlz-IOPS@r2",
	})
}

// BenchmarkE14EntropyBypass — extension: skip the encoder for chunks the
// entropy pre-check says will not compress.
func BenchmarkE14EntropyBypass(b *testing.B) {
	runExperiment(b, "e14", map[string]string{
		"iops_off_f0.5": "off-IOPS@50%",
		"iops_on_f0.5":  "on-IOPS@50%",
	})
}

// BenchmarkE15GPUHashing — extension: raw GPU hashing wins (as GHOST found)
// but costs two orders of magnitude more PCIe per chunk than index offload.
func BenchmarkE15GPUHashing(b *testing.B) {
	runExperiment(b, "e15", map[string]string{
		"ratio_batch_4096":   "gpu/cpu@4096",
		"pcie_amplification": "pcie-x",
	})
}

// BenchmarkE16WriteAmplification — SSD-substrate validation: random
// overwrites amplify NAND writes; sequential writes (the journal's pattern)
// do not.
func BenchmarkE16WriteAmplification(b *testing.B) {
	runExperiment(b, "e16", map[string]string{
		"wa_random_op7": "WA-rand@7%",
		"wa_seq_op7":    "WA-seq@7%",
	})
}

// BenchmarkClusterWallClock measures the real (host) cost of serving a
// read-mostly closed-loop mix through the replicated cluster tier. The
// /nodes1 case degenerates to a single sharded array behind the cluster's
// sequencing phase, so its gap to BenchmarkServeWallClock bounds the
// routing overhead; /nodes3r2 replicates every write to two of three
// nodes and rides out injected node crashes (fallback reads, rejoin
// replay), so it does ~R× the write work plus repair traffic. The merged
// reports are bit-identical across client counts (see
// TestClusterCrashRejoinDeterminism); only the wall clock differs.
// Cluster construction is excluded from the timed region.
func BenchmarkClusterWallClock(b *testing.B) {
	ops := 20000
	if testing.Short() {
		ops = 6000
	}
	const blocks = 8192
	list, err := NewOps(ReadMostlyOps(ops, blocks, 11))
	if err != nil {
		b.Fatal(err)
	}
	for _, bc := range []struct {
		name      string
		nodes     int
		replicas  int
		faultRate float64
	}{
		{"nodes1", 1, 1, 0},
		{"nodes3r2", 3, 2, 0.002},
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.SetBytes(int64(len(list)) * 4096)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				cl, err := NewCluster(BlockDeviceOptions{
					Blocks: blocks, Shards: 2,
					Nodes: bc.nodes, Replicas: bc.replicas,
					NodeFaultRate: bc.faultRate, NodeFaultSeed: 1337,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				rep, err := cl.Serve(list, ClusterServeOptions{
					Clients: bc.nodes, ContentSeed: 11, CleanEvery: 4096,
				})
				if err != nil {
					b.Fatal(err)
				}
				if rep.Ops == 0 {
					b.Fatal("empty report")
				}
				if rep.Faults.ReadsUnserved != 0 {
					b.Fatalf("reads went unserved: %+v", rep.Faults)
				}
			}
		})
	}
}
