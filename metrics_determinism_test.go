package inlinered

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"inlinered/internal/metrics"
	"inlinered/internal/volume"
	"inlinered/internal/workload"
)

// TestMetricsSideChannelDeterminism pins the wall-clock metrics layer's
// core contract: it is a strict side channel. For every tier of the stack
// — stream pipeline, sharded serving, replicated cluster — the
// virtual-time report (and trace, where a recorder is legal) must be
// byte-identical whether metrics collection is on or off, at every
// parallelism / shard / node count we ship.
func TestMetricsSideChannelDeterminism(t *testing.T) {
	metrics.Disable()
	defer metrics.Disable()

	runPipeline := func(par int) ([]byte, []byte) {
		stream, err := NewStream(StreamSpec{TotalBytes: 4 << 20, DedupRatio: 2, CompressionRatio: 2, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		rec := NewRecorder()
		rep, err := Run(PaperPlatform(), Options{Mode: GPUBoth, Parallelism: par, Recorder: rec}, stream)
		if err != nil {
			t.Fatal(err)
		}
		js, err := rep.JSON()
		if err != nil {
			t.Fatal(err)
		}
		var trace bytes.Buffer
		if err := rec.WriteTrace(&trace); err != nil {
			t.Fatal(err)
		}
		return js, trace.Bytes()
	}

	runServe := func(shards int) []byte {
		arr, err := NewArray(BlockDeviceOptions{Blocks: 4096, Shards: shards, FaultSeed: 7, FaultRate: 0.01})
		if err != nil {
			t.Fatal(err)
		}
		ops, err := NewOps(OpsSpec{Ops: 4000, Blocks: 4096, WriteFrac: 0.6, TrimFrac: 0.05, DedupRatio: 2, Hotspot: 0.5, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := arr.Serve(ops, ServeOptions{ContentSeed: 7, CleanEvery: 1024})
		if err != nil {
			t.Fatal(err)
		}
		js, err := rep.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return js
	}

	runCluster := func(nodes int) []byte {
		replicas := 1
		if nodes > 1 {
			replicas = 2
		}
		cl, err := NewCluster(BlockDeviceOptions{
			Blocks: 2048, Shards: 2, Nodes: nodes, Replicas: replicas,
			NodeFaultSeed: 11, NodeFaultRate: 0.01,
		})
		if err != nil {
			t.Fatal(err)
		}
		ops, err := NewOps(ReadMostlyOps(3000, 2048, 7))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := cl.Serve(ops, ClusterServeOptions{ContentSeed: 7, CleanEvery: 1024})
		if err != nil {
			t.Fatal(err)
		}
		js, err := rep.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return js
	}

	// withMetrics runs f twice — metrics off, then on — and returns both
	// results for comparison.
	compare := func(name string, f func() [][]byte) {
		metrics.Disable()
		off := f()
		metrics.Enable()
		on := f()
		metrics.Disable()
		for i := range off {
			if !bytes.Equal(off[i], on[i]) {
				t.Errorf("%s: output %d differs between metrics off and on", name, i)
			}
		}
	}

	for _, par := range []int{1, 4} {
		par := par
		compare("pipeline/par="+itoa(par), func() [][]byte {
			js, tr := runPipeline(par)
			return [][]byte{js, tr}
		})
	}
	for _, shards := range []int{1, 4} {
		shards := shards
		compare("serve/shards="+itoa(shards), func() [][]byte {
			return [][]byte{runServe(shards)}
		})
	}
	for _, nodes := range []int{1, 4} {
		nodes := nodes
		compare("cluster/nodes="+itoa(nodes), func() [][]byte {
			return [][]byte{runCluster(nodes)}
		})
	}
}

// TestMetricsSnapshotFromRealRun drives the real pipeline and serving
// tiers with metrics on, writes an exposition snapshot the way
// -metrics-out does, and validates it with the strict parser: pool
// busy/idle, claim-wait, per-stage wall histograms, and runtime samples
// must all be present in valid Prometheus text format.
func TestMetricsSnapshotFromRealRun(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.prom")
	stop, err := metrics.StartSnapshotter(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer metrics.Disable()

	stream, err := NewStream(StreamSpec{TotalBytes: 4 << 20, DedupRatio: 2, CompressionRatio: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(PaperPlatform(), Options{Mode: CPUOnly, Parallelism: 4}, stream); err != nil {
		t.Fatal(err)
	}
	arr, err := NewArray(BlockDeviceOptions{Blocks: 4096, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	ops, err := NewOps(OpsSpec{Ops: 2000, Blocks: 4096, WriteFrac: 0.6, TrimFrac: 0.05, DedupRatio: 2, Hotspot: 0.5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := arr.Serve(ops, ServeOptions{ContentSeed: 3}); err != nil {
		t.Fatal(err)
	}
	// The serve workload above rarely fills a 1024-bin index's 16-entry
	// buffers, so drive the volume journal-flush path directly: a one-bin
	// index flushes (and journals) every 16 unique writes.
	vcfg := volume.DefaultConfig()
	vcfg.Blocks = 512
	vcfg.Index.BinBits = 0
	vol, err := volume.New(vcfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if _, err := vol.Write(int64(i), workload.UniqueChunk(99, int32(i), 4096, 0.5)); err != nil {
			t.Fatal(err)
		}
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	required := []string{
		"inlinered_pool_map_calls_total",
		"inlinered_pool_items_total",
		"inlinered_pool_worker_busy_seconds_total",
		"inlinered_pool_worker_idle_seconds_total",
		"inlinered_pool_batch_claim_wait_seconds",
		"inlinered_pool_batch_size_items",
		"inlinered_stage_wall_seconds",
		"go_goroutines",
		"go_memory_heap_objects_bytes",
		"go_gc_pause_estimate_seconds",
		"go_gc_pauses_seconds",
	}
	if err := metrics.Validate(data, required...); err != nil {
		t.Fatalf("snapshot invalid: %v", err)
	}

	// The run above must actually have recorded work, not just registered
	// empty families.
	if n, _ := metrics.SeriesValue("inlinered_pool_map_calls_total", "subsystem", "parallel"); n == 0 {
		t.Error("pipeline run recorded no pool Map calls")
	}
	for _, stage := range []string{"chunk", "hash", "dedup_decide", "compress", "commit"} {
		if n, ok := metrics.SeriesValue("inlinered_stage_wall_seconds", "subsystem", "core", "stage", stage); !ok || n == 0 {
			t.Errorf("core stage %q recorded no wall-clock samples (ok=%v n=%d)", stage, ok, n)
		}
	}
	for _, stage := range []string{"dispatch", "queue_wait", "shard_drain"} {
		if n, ok := metrics.SeriesValue("inlinered_stage_wall_seconds", "subsystem", "serve", "stage", stage); !ok || n == 0 {
			t.Errorf("serve stage %q recorded no wall-clock samples (ok=%v n=%d)", stage, ok, n)
		}
	}
	if n, _ := metrics.SeriesValue("inlinered_stage_wall_seconds", "subsystem", "volume", "stage", "journal_flush"); n == 0 {
		t.Error("volume journal_flush recorded no wall-clock samples")
	}
	if v, _ := metrics.SeriesValue("go_goroutines"); v <= 0 {
		t.Error("runtime telemetry not sampled")
	}
}

func itoa(n int) string { return strconv.Itoa(n) }
