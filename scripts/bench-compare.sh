#!/usr/bin/env bash
# bench-compare.sh — guard the wall-clock benchmarks against regressions and
# emit the machine-readable benchmark trajectory.
#
# Runs BenchmarkDataPlaneWallClock, BenchmarkServeWallClock,
# BenchmarkClusterWallClock, and BenchmarkReadPathWallClock (root package)
# plus the chunker (BenchmarkGearCDC*), batch-fingerprint
# (BenchmarkSumBatch), and sub-block decode (BenchmarkSubDecode4K)
# microbenchmarks, and compares them with the
# checked-in baseline (bench_baseline.txt, recorded with
# scripts/bench-compare.sh --record on the reference machine). Uses
# benchstat when it is on PATH; otherwise falls back to a plain geomean
# comparison of ns/op and allocs/op with a tolerance, so CI needs no extra
# tooling.
#
# Both units GATE: a >TIME_TOLERANCE_PCT ns/op or >ALLOC_TOLERANCE_PCT
# allocs/op geomean regression exits non-zero. Compare on the machine that
# recorded the baseline (or re-record); wall time is not portable across
# hosts. The batch read path additionally carries two ABSOLUTE gates
# (host-independent, enforced even with --record): allocs/read-op on the
# cache-disabled storm cases must stay under READ_ALLOC_CEILING, and the
# warm-cache storm pass's hit rate must stay over CACHE_HIT_FLOOR.
#
# Every run (compare or --record) also writes BENCH_<n>.json — a
# github-action-benchmark data.js-style snapshot (per-benchmark geomeans
# for ns/op, MB/s, and allocs/op, plus the headline ratios) keyed to the
# current commit. <n> defaults to the PR count in CHANGES.md; override
# with BENCH_PR=<n> or BENCH_OUT=<path>. CI uploads the file as an
# artifact so the repo accumulates one trajectory point per PR.
#
# Usage:
#   scripts/bench-compare.sh            # compare against bench_baseline.txt
#   scripts/bench-compare.sh --record   # rewrite bench_baseline.txt
#
# Set PROFILE_DIR to also capture host pprof profiles of the benchmark run
# (cpu.pprof and mem.pprof are written there, for go tool pprof).
set -euo pipefail

cd "$(dirname "$0")/.."

BASELINE=bench_baseline.txt
BENCH='BenchmarkDataPlaneWallClock|BenchmarkServeWallClock|BenchmarkClusterWallClock|BenchmarkReadPathWallClock'
# Every guarded benchmark/subbenchmark pair, for the fallback comparison.
# A trailing slash scopes a prefix to its own subbenchmarks only
# (BenchmarkGearCDC/ does not match BenchmarkGearCDCRef/...).
CASES=(
    BenchmarkDataPlaneWallClock/serial
    BenchmarkDataPlaneWallClock/parallel
    BenchmarkDataPlaneWallClock/cdc
    BenchmarkServeWallClock/shards1
    BenchmarkServeWallClock/shards4
    BenchmarkClusterWallClock/nodes1
    BenchmarkClusterWallClock/nodes3r2
    BenchmarkReadPathWallClock/serial
    BenchmarkReadPathWallClock/parallel
    BenchmarkReadPathWallClock/warm
    BenchmarkGearCDC/
    BenchmarkSumBatch
    BenchmarkSubDecode4K/serial
    BenchmarkSubDecode4K/indexed
)
COUNT="${BENCH_COUNT:-5}"
# Both tolerances gate the exit status. Allocation counts are deterministic
# to within pool-warmup noise, so their bound is tight; ns/op gets a little
# more headroom for host jitter but still fails the run when exceeded.
TIME_TOLERANCE_PCT="${TIME_TOLERANCE_PCT:-15}"
ALLOC_TOLERANCE_PCT="${ALLOC_TOLERANCE_PCT:-10}"
# Absolute gates on the batch read path, enforced on every run (including
# --record): the zero-alloc decode path must stay under the per-read
# allocation ceiling on the cache-disabled cases, and the warm-cache storm
# pass must keep a nonzero hit rate, or the admission policy has regressed
# to scan-churn. These mirror (and re-check, for runs that bypass `go
# test`'s own Fatalf gates) the ceilings compiled into
# BenchmarkReadPathWallClock.
READ_ALLOC_CEILING="${READ_ALLOC_CEILING:-0.05}"
CACHE_HIT_FLOOR="${CACHE_HIT_FLOOR:-0.05}"

PROFILE_ARGS=()
if [[ -n "${PROFILE_DIR:-}" ]]; then
    mkdir -p "$PROFILE_DIR"
    PROFILE_ARGS=(-cpuprofile "$PROFILE_DIR/cpu.pprof" -memprofile "$PROFILE_DIR/mem.pprof")
fi

run_bench() {
    go test . -run '^$' -bench "$BENCH" -benchtime 2x -count "$COUNT" -timeout 30m \
        "${PROFILE_ARGS[@]}"
    # Microbenchmarks use iteration-count benchtimes so each of the COUNT
    # repetitions does identical work (time-based -benchtime would resize
    # N between reps and skew the geomean).
    go test ./internal/chunk -run '^$' -bench 'BenchmarkGearCDC' \
        -benchtime 100x -count "$COUNT" -timeout 20m
    go test ./internal/dedup -run '^$' -bench 'BenchmarkSumBatch|BenchmarkParallelSumBatch' \
        -benchtime 20x -count "$COUNT" -timeout 20m
    go test ./internal/lz -run '^$' -bench 'BenchmarkSubDecode4K' \
        -benchtime 500x -count "$COUNT" -timeout 20m
}

# geomean <file> <benchmark-substring> <unit>
# Benchmark lines: Name  N  ns/op  [MB/s]  B/op  allocs/op
# Zero samples (the pooled paths really do 0 allocs/op) are clamped to a
# tiny epsilon so the log-space mean stays finite; the result still prints
# as 0.
geomean() {
    awk -v name="$2" -v unit="$3" '
        $1 ~ name {
            for (i = 2; i <= NF; i++) {
                if ($i == unit) {
                    v = $(i-1) + 0
                    if (v < 1e-9) v = 1e-9
                    sum += log(v); n++
                }
            }
        }
        END {
            if (n == 0) { print "NaN"; exit 1 }
            printf "%.0f\n", exp(sum / n)
        }' "$1"
}

# fgeomean <file> <benchmark-substring> <unit> — like geomean but keeps
# fractional precision, for sub-1.0 custom metrics (allocs/read-op,
# cache-hit-rate) where rounding to an integer would erase the value.
fgeomean() {
    awk -v name="$2" -v unit="$3" '
        $1 ~ name {
            for (i = 2; i <= NF; i++) {
                if ($i == unit) {
                    v = $(i-1) + 0
                    if (v < 1e-9) v = 1e-9
                    sum += log(v); n++
                }
            }
        }
        END {
            if (n == 0) { print "NaN"; exit 1 }
            printf "%.6g\n", exp(sum / n)
        }' "$1"
}

# read_path_gates <raw-bench-output> — the absolute read-path gates.
# Returns non-zero when a gate fails.
read_path_gates() {
    local raw="$1" ok=1 bcase allocs hitrate
    echo
    echo "== read-path absolute gates =="
    for bcase in BenchmarkReadPathWallClock/serial BenchmarkReadPathWallClock/parallel; do
        allocs="$(fgeomean "$raw" "$bcase" allocs/read-op)" || { echo "$bcase: no allocs/read-op samples"; ok=0; continue; }
        if awk -v v="$allocs" -v c="$READ_ALLOC_CEILING" 'BEGIN { exit !(v <= c) }'; then
            printf '%-36s allocs/read-op=%-10s ceiling=%-8s ok\n' "$bcase" "$allocs" "$READ_ALLOC_CEILING"
        else
            printf '%-36s allocs/read-op=%-10s ceiling=%-8s FAIL (read path regressed off the pooled zero-alloc plan)\n' \
                "$bcase" "$allocs" "$READ_ALLOC_CEILING"
            ok=0
        fi
    done
    hitrate="$(fgeomean "$raw" BenchmarkReadPathWallClock/warm cache-hit-rate)" || { echo "warm case: no cache-hit-rate samples"; ok=0; }
    if [[ -n "${hitrate:-}" ]]; then
        if awk -v v="$hitrate" -v f="$CACHE_HIT_FLOOR" 'BEGIN { exit !(v >= f) }'; then
            printf '%-36s cache-hit-rate=%-10s floor=%-8s ok\n' "BenchmarkReadPathWallClock/warm" "$hitrate" "$CACHE_HIT_FLOOR"
        else
            printf '%-36s cache-hit-rate=%-10s floor=%-8s FAIL (admission policy no longer survives the storm scan)\n' \
                "BenchmarkReadPathWallClock/warm" "$hitrate" "$CACHE_HIT_FLOOR"
            ok=0
        fi
    fi
    [[ "$ok" == 1 ]]
}

# ratio <file> <caseA> <caseB> — geomean ns/op of caseA over caseB.
ratio() {
    local a b
    a="$(geomean "$1" "$2" ns/op)"
    b="$(geomean "$1" "$3" ns/op)"
    awk -v a="$a" -v b="$b" 'BEGIN { printf "%.2f", a / b }'
}

# write_json <raw-bench-output> — emit BENCH_<n>.json in the
# github-action-benchmark data.js shape: one "Go Benchmark" entry for the
# current commit, one bench object per (benchmark, unit) pair (ns/op keeps
# the plain name; other units get " - <unit>" appended, as the action's go
# parser does), each value the geomean over the COUNT repetitions, plus
# the headline ratios as synthetic "ratio: ..." benches with unit "x".
# The entry carries a "host" envelope (CPU model, hardware threads,
# GOMAXPROCS, arch, Go version) so cmd/benchdash can annotate trajectory
# points where the recording machine changed; wall time is not comparable
# across hosts. Older BENCH_*.json files lack the field and benchdash
# tolerates that.
write_json() {
    local raw="$1" out n now commit cdate msg cpu threads goarch gover
    n="${BENCH_PR:-$(grep -c '^PR ' CHANGES.md 2>/dev/null || echo 0)}"
    out="${BENCH_OUT:-BENCH_${n}.json}"
    now="$(($(date -u +%s) * 1000))"
    commit="$(git rev-parse HEAD 2>/dev/null || echo unknown)"
    cdate="$(git log -1 --format=%cI 2>/dev/null || date -u +%FT%TZ)"
    msg="$(git log -1 --format=%s 2>/dev/null | tr -d '"\\' | cut -c1-120 || true)"
    cpu="$(awk -F': *' '/^model name/ { print $2; exit }' /proc/cpuinfo 2>/dev/null | tr -d '"\\' || true)"
    [[ -n "$cpu" ]] || cpu="$(uname -m)"
    threads="$(nproc 2>/dev/null || echo 1)"
    goarch="$(go env GOARCH 2>/dev/null || echo unknown)"
    gover="$(go env GOVERSION 2>/dev/null || echo unknown)"
    {
        printf '{\n'
        printf '  "lastUpdate": %s,\n' "$now"
        printf '  "repoUrl": "",\n'
        printf '  "entries": {\n'
        printf '    "Go Benchmark": [\n'
        printf '      {\n'
        printf '        "commit": {"id": "%s", "message": "%s", "timestamp": "%s", "url": ""},\n' \
            "$commit" "$msg" "$cdate"
        printf '        "date": %s,\n' "$now"
        printf '        "tool": "go",\n'
        printf '        "host": {"cpu": "%s", "threads": %s, "gomaxprocs": %s, "goarch": "%s", "go": "%s"},\n' \
            "$cpu" "$threads" "${GOMAXPROCS:-$threads}" "$goarch" "$gover"
        printf '        "benches": [\n'
        awk '
            /^Benchmark/ {
                name = $1; sub(/-[0-9]+$/, "", name)
                for (i = 3; i <= NF; i++) {
                    u = $i
                    if (u == "ns/op" || u == "MB/s" || u == "allocs/op" || u == "allocs/storage-op" ||
                        u == "allocs/read-op" || u == "cache-hit-rate") {
                        key = name "|" u
                        if (!(key in cnt)) order[++n] = key
                        v = $(i-1) + 0
                        if (v < 1e-9) v = 1e-9
                        lsum[key] += log(v); cnt[key]++
                    }
                }
            }
            END {
                for (k = 1; k <= n; k++) {
                    key = order[k]; split(key, p, "|")
                    v = exp(lsum[key] / cnt[key])
                    if (v < 1e-6) v = 0
                    nm = p[1]
                    if (p[2] != "ns/op") nm = nm " - " p[2]
                    printf "          {\"name\": \"%s\", \"value\": %g, \"unit\": \"%s\", \"extra\": \"geomean of %d\"},\n", \
                        nm, v, p[2], cnt[key]
                }
            }' "$raw"
        printf '          {"name": "ratio: DataPlaneWallClock serial/parallel", "value": %s, "unit": "x", "extra": "geomean ns/op ratio"},\n' \
            "$(ratio "$raw" BenchmarkDataPlaneWallClock/serial BenchmarkDataPlaneWallClock/parallel)"
        printf '          {"name": "ratio: ServeWallClock shards1/shards4", "value": %s, "unit": "x", "extra": "geomean ns/op ratio"},\n' \
            "$(ratio "$raw" BenchmarkServeWallClock/shards1 BenchmarkServeWallClock/shards4)"
        printf '          {"name": "ratio: ClusterWallClock nodes3r2/nodes1", "value": %s, "unit": "x", "extra": "geomean ns/op ratio (replication overhead)"},\n' \
            "$(ratio "$raw" BenchmarkClusterWallClock/nodes3r2 BenchmarkClusterWallClock/nodes1)"
        printf '          {"name": "ratio: ReadPathWallClock serial/parallel", "value": %s, "unit": "x", "extra": "geomean ns/op ratio (boot-storm decode fan-out)"},\n' \
            "$(ratio "$raw" BenchmarkReadPathWallClock/serial BenchmarkReadPathWallClock/parallel)"
        printf '          {"name": "ratio: SubDecode4K serial/indexed", "value": %s, "unit": "x", "extra": "geomean ns/op ratio (two-pass decode overhead on one goroutine)"},\n' \
            "$(ratio "$raw" BenchmarkSubDecode4K/serial BenchmarkSubDecode4K/indexed)"
        printf '          {"name": "ratio: GearCDC ref/fast", "value": %s, "unit": "x", "extra": "geomean ns/op ratio over all corpora"}\n' \
            "$(ratio "$raw" BenchmarkGearCDCRef/ BenchmarkGearCDC/)"
        printf '        ]\n'
        printf '      }\n'
        printf '    ]\n'
        printf '  }\n'
        printf '}\n'
    } >"$out"
    echo "wrote benchmark trajectory point to $out"
}

if [[ "${1:-}" == "--record" ]]; then
    RAW="$(mktemp)"
    trap 'rm -f "$RAW"' EXIT
    run_bench | tee "$RAW"
    {
        echo "# bench_baseline.txt — recorded by scripts/bench-compare.sh --record"
        echo "# host: $(uname -m), $(nproc) hardware thread(s); $(date -u +%F)"
        echo "# ns/op geomean ratios at record time (>1.00 means the second case is faster):"
        echo "#   DataPlaneWallClock serial/parallel = $(ratio "$RAW" BenchmarkDataPlaneWallClock/serial BenchmarkDataPlaneWallClock/parallel)"
        echo "#   ServeWallClock shards1/shards4     = $(ratio "$RAW" BenchmarkServeWallClock/shards1 BenchmarkServeWallClock/shards4)"
        echo "#   ClusterWallClock nodes3r2/nodes1   = $(ratio "$RAW" BenchmarkClusterWallClock/nodes3r2 BenchmarkClusterWallClock/nodes1)"
        echo "#   ReadPathWallClock serial/parallel  = $(ratio "$RAW" BenchmarkReadPathWallClock/serial BenchmarkReadPathWallClock/parallel)"
        echo "#   SubDecode4K serial/indexed         = $(ratio "$RAW" BenchmarkSubDecode4K/serial BenchmarkSubDecode4K/indexed)"
        echo "#   GearCDC ref/fast (all corpora)     = $(ratio "$RAW" BenchmarkGearCDCRef/ BenchmarkGearCDC/)"
        echo "# Read-path absolute gates at record time (also enforced inside the bench):"
        echo "#   allocs/read-op (cache off)  = $(fgeomean "$RAW" BenchmarkReadPathWallClock/parallel allocs/read-op) (ceiling $READ_ALLOC_CEILING)"
        echo "#   warm-pass cache-hit-rate    = $(fgeomean "$RAW" BenchmarkReadPathWallClock/warm cache-hit-rate) (floor $CACHE_HIT_FLOOR)"
        echo "# On a single-core host the serial/parallel and shards1/shards4 ratios"
        echo "# hover near 1.00: the parallel, sharded, and batch-read-fan-out cases"
        echo "# time-slice one CPU, so only dispatch overhead separates them."
        echo "# Multi-core speedups must be recorded on a multi-core machine."
        cat "$RAW"
    } >"$BASELINE"
    echo "recorded baseline into $BASELINE"
    write_json "$RAW"
    read_path_gates "$RAW"
    exit 0
fi

if [[ ! -f "$BASELINE" ]]; then
    echo "no $BASELINE; run scripts/bench-compare.sh --record first" >&2
    exit 1
fi

CURRENT="$(mktemp)"
trap 'rm -f "$CURRENT"' EXIT
run_bench | tee "$CURRENT"

write_json "$CURRENT"

if command -v benchstat >/dev/null 2>&1; then
    echo
    echo "== benchstat =="
    benchstat "$BASELINE" "$CURRENT"
fi

fail=0
read_path_gates "$CURRENT" || fail=1

echo
echo "== tolerance gate (geomean vs baseline) =="
for bcase in "${CASES[@]}"; do
    for spec in "ns/op:$TIME_TOLERANCE_PCT" "allocs/op:$ALLOC_TOLERANCE_PCT"; do
        unit="${spec%%:*}"
        tol="${spec##*:}"
        base="$(geomean "$BASELINE" "$bcase" "$unit")"
        cur="$(geomean "$CURRENT" "$bcase" "$unit")"
        limit=$(( base + base * tol / 100 ))
        status=ok
        if (( cur > limit )); then
            status="REGRESSION (>${tol}% over baseline)"
            fail=1
        fi
        printf '%-36s %-10s base=%-12s current=%-12s %s\n' \
            "$bcase" "$unit" "$base" "$cur" "$status"
    done
done
exit "$fail"
