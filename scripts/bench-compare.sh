#!/usr/bin/env bash
# bench-compare.sh — guard the wall-clock benchmarks against regressions.
#
# Runs BenchmarkDataPlaneWallClock and BenchmarkServeWallClock and compares
# them with the checked-in baseline (bench_baseline.txt, recorded with
# scripts/bench-compare.sh --record on the reference machine). Uses
# benchstat when it is on PATH;
# otherwise falls back to a plain geomean comparison of ns/op and
# allocs/op with a tolerance, so CI needs no extra tooling.
#
# Both units GATE: a >TIME_TOLERANCE_PCT ns/op or >ALLOC_TOLERANCE_PCT
# allocs/op geomean regression exits non-zero. Compare on the machine that
# recorded the baseline (or re-record); wall time is not portable across
# hosts.
#
# Usage:
#   scripts/bench-compare.sh            # compare against bench_baseline.txt
#   scripts/bench-compare.sh --record   # rewrite bench_baseline.txt
#
# Set PROFILE_DIR to also capture host pprof profiles of the benchmark run
# (cpu.pprof and mem.pprof are written there, for go tool pprof).
set -euo pipefail

cd "$(dirname "$0")/.."

BASELINE=bench_baseline.txt
BENCH='BenchmarkDataPlaneWallClock|BenchmarkServeWallClock'
# Every guarded benchmark/subbenchmark pair, for the fallback comparison.
CASES=(
    BenchmarkDataPlaneWallClock/serial
    BenchmarkDataPlaneWallClock/parallel
    BenchmarkServeWallClock/shards1
    BenchmarkServeWallClock/shards4
)
COUNT="${BENCH_COUNT:-5}"
# Both tolerances gate the exit status. Allocation counts are deterministic
# to within pool-warmup noise, so their bound is tight; ns/op gets a little
# more headroom for host jitter but still fails the run when exceeded.
TIME_TOLERANCE_PCT="${TIME_TOLERANCE_PCT:-15}"
ALLOC_TOLERANCE_PCT="${ALLOC_TOLERANCE_PCT:-10}"

PROFILE_ARGS=()
if [[ -n "${PROFILE_DIR:-}" ]]; then
    mkdir -p "$PROFILE_DIR"
    PROFILE_ARGS=(-cpuprofile "$PROFILE_DIR/cpu.pprof" -memprofile "$PROFILE_DIR/mem.pprof")
fi

run_bench() {
    go test . -run '^$' -bench "$BENCH" -benchtime 2x -count "$COUNT" -timeout 30m \
        "${PROFILE_ARGS[@]}"
}

# geomean <file> <benchmark-substring> <unit>
# Benchmark lines: Name  N  ns/op  [MB/s]  B/op  allocs/op
geomean() {
    awk -v name="$2" -v unit="$3" '
        $1 ~ name {
            for (i = 2; i <= NF; i++) {
                if ($i == unit) { sum += log($(i-1)); n++ }
            }
        }
        END {
            if (n == 0) { print "NaN"; exit 1 }
            printf "%.0f\n", exp(sum / n)
        }' "$1"
}

# ratio <file> <caseA> <caseB> — geomean ns/op of caseA over caseB.
ratio() {
    local a b
    a="$(geomean "$1" "$2" ns/op)"
    b="$(geomean "$1" "$3" ns/op)"
    awk -v a="$a" -v b="$b" 'BEGIN { printf "%.2f", a / b }'
}

if [[ "${1:-}" == "--record" ]]; then
    RAW="$(mktemp)"
    trap 'rm -f "$RAW"' EXIT
    run_bench | tee "$RAW"
    {
        echo "# bench_baseline.txt — recorded by scripts/bench-compare.sh --record"
        echo "# host: $(uname -m), $(nproc) hardware thread(s); $(date -u +%F)"
        echo "# ns/op geomean ratios at record time (>1.00 means the second case is faster):"
        echo "#   DataPlaneWallClock serial/parallel = $(ratio "$RAW" BenchmarkDataPlaneWallClock/serial BenchmarkDataPlaneWallClock/parallel)"
        echo "#   ServeWallClock shards1/shards4     = $(ratio "$RAW" BenchmarkServeWallClock/shards1 BenchmarkServeWallClock/shards4)"
        echo "# On a single-core host both ratios hover near 1.00: the parallel and"
        echo "# sharded cases time-slice one CPU, so only dispatch overhead separates"
        echo "# them. Multi-core speedups must be recorded on a multi-core machine."
        cat "$RAW"
    } >"$BASELINE"
    echo "recorded baseline into $BASELINE"
    exit 0
fi

if [[ ! -f "$BASELINE" ]]; then
    echo "no $BASELINE; run scripts/bench-compare.sh --record first" >&2
    exit 1
fi

CURRENT="$(mktemp)"
trap 'rm -f "$CURRENT"' EXIT
run_bench | tee "$CURRENT"

if command -v benchstat >/dev/null 2>&1; then
    echo
    echo "== benchstat =="
    benchstat "$BASELINE" "$CURRENT"
fi

echo
echo "== tolerance gate (geomean vs baseline) =="
fail=0
for bcase in "${CASES[@]}"; do
    for spec in "ns/op:$TIME_TOLERANCE_PCT" "allocs/op:$ALLOC_TOLERANCE_PCT"; do
        unit="${spec%%:*}"
        tol="${spec##*:}"
        base="$(geomean "$BASELINE" "$bcase" "$unit")"
        cur="$(geomean "$CURRENT" "$bcase" "$unit")"
        limit=$(( base + base * tol / 100 ))
        status=ok
        if (( cur > limit )); then
            status="REGRESSION (>${tol}% over baseline)"
            fail=1
        fi
        printf '%-36s %-10s base=%-12s current=%-12s %s\n' \
            "$bcase" "$unit" "$base" "$cur" "$status"
    done
done
exit "$fail"
