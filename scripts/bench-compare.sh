#!/usr/bin/env bash
# bench-compare.sh — guard the wall-clock benchmarks against regressions.
#
# Runs BenchmarkDataPlaneWallClock and BenchmarkServeWallClock and compares
# them with the checked-in baseline (bench_baseline.txt, recorded with
# scripts/bench-compare.sh --record on the reference machine). Uses
# benchstat when it is on PATH;
# otherwise falls back to a plain geomean comparison of ns/op and
# allocs/op with a tolerance, so CI needs no extra tooling.
#
# Usage:
#   scripts/bench-compare.sh            # compare against bench_baseline.txt
#   scripts/bench-compare.sh --record   # rewrite bench_baseline.txt
#
# Set PROFILE_DIR to also capture host pprof profiles of the benchmark run
# (cpu.pprof and mem.pprof are written there, for go tool pprof).
set -euo pipefail

cd "$(dirname "$0")/.."

BASELINE=bench_baseline.txt
BENCH='BenchmarkDataPlaneWallClock|BenchmarkServeWallClock'
# Every guarded benchmark/subbenchmark pair, for the fallback comparison.
CASES=(
    BenchmarkDataPlaneWallClock/serial
    BenchmarkDataPlaneWallClock/parallel
    BenchmarkServeWallClock/shards1
    BenchmarkServeWallClock/shards4
)
COUNT="${BENCH_COUNT:-5}"
# Allocation counts are deterministic to within pool-warmup noise; time is
# host-dependent, so the fallback comparison is deliberately loose on ns/op
# (CI machines are noisy) and tight on allocs/op.
TIME_TOLERANCE_PCT="${TIME_TOLERANCE_PCT:-25}"
ALLOC_TOLERANCE_PCT="${ALLOC_TOLERANCE_PCT:-10}"

PROFILE_ARGS=()
if [[ -n "${PROFILE_DIR:-}" ]]; then
    mkdir -p "$PROFILE_DIR"
    PROFILE_ARGS=(-cpuprofile "$PROFILE_DIR/cpu.pprof" -memprofile "$PROFILE_DIR/mem.pprof")
fi

run_bench() {
    go test . -run '^$' -bench "$BENCH" -benchtime 2x -count "$COUNT" -timeout 30m \
        "${PROFILE_ARGS[@]}"
}

if [[ "${1:-}" == "--record" ]]; then
    run_bench | tee "$BASELINE"
    echo "recorded baseline into $BASELINE"
    exit 0
fi

if [[ ! -f "$BASELINE" ]]; then
    echo "no $BASELINE; run scripts/bench-compare.sh --record first" >&2
    exit 1
fi

CURRENT="$(mktemp)"
trap 'rm -f "$CURRENT"' EXIT
run_bench | tee "$CURRENT"

if command -v benchstat >/dev/null 2>&1; then
    echo
    echo "== benchstat =="
    benchstat "$BASELINE" "$CURRENT"
    exit 0
fi

echo
echo "== fallback comparison (benchstat not installed) =="
# geomean <file> <benchmark-substring> <field-index-from-Benchmark-name>
# Benchmark lines: Name  N  ns/op  [MB/s]  B/op  allocs/op
geomean() {
    awk -v name="$2" -v unit="$3" '
        $1 ~ name {
            for (i = 2; i <= NF; i++) {
                if ($i == unit) { sum += log($(i-1)); n++ }
            }
        }
        END {
            if (n == 0) { print "NaN"; exit 1 }
            printf "%.0f\n", exp(sum / n)
        }' "$1"
}

fail=0
for bcase in "${CASES[@]}"; do
    for spec in "ns/op:$TIME_TOLERANCE_PCT" "allocs/op:$ALLOC_TOLERANCE_PCT"; do
        unit="${spec%%:*}"
        tol="${spec##*:}"
        base="$(geomean "$BASELINE" "$bcase" "$unit")"
        cur="$(geomean "$CURRENT" "$bcase" "$unit")"
        limit=$(( base + base * tol / 100 ))
        status=ok
        if (( cur > limit )); then
            if [[ "$unit" == "allocs/op" ]]; then
                # Allocation counts are host-independent; a jump is a real
                # regression in the pooled data path.
                status="REGRESSION (>${tol}% over baseline)"
                fail=1
            else
                # Wall time depends on the machine and its load; warn only.
                status="WARN (>${tol}% over baseline; advisory)"
            fi
        fi
        printf '%-36s %-10s base=%-12s current=%-12s %s\n' \
            "$bcase" "$unit" "$base" "$cur" "$status"
    done
done
exit "$fail"
