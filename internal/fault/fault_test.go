package fault

import (
	"errors"
	"testing"
	"time"
)

// drain exercises every decision method once and records the outcomes in
// a comparable form.
type decision struct {
	writeErr  string
	readErr   string
	latency   time.Duration
	tornFrac  float64
	torn      bool
	lost      bool
	evict     bool
	evictRank int
}

func drain(inj *Injector, n int) []decision {
	out := make([]decision, n)
	for i := range out {
		d := &out[i]
		if err := inj.WriteError(); err != nil {
			d.writeErr = err.Error()
		}
		if err := inj.ReadError(); err != nil {
			d.readErr = err.Error()
		}
		d.latency = inj.Latency()
		d.tornFrac, d.torn = inj.TornFraction()
		d.lost = inj.DeviceLost()
		d.evict = inj.EvictIndex()
		d.evictRank = inj.Rank(17)
	}
	return out
}

func TestNilInjectorIsSilent(t *testing.T) {
	var inj *Injector
	for _, d := range drain(inj, 100) {
		if d.writeErr != "" || d.readErr != "" || d.latency != 0 || d.torn || d.lost || d.evict {
			t.Fatalf("nil injector produced a fault: %+v", d)
		}
	}
	if inj.Counts().Total() != 0 {
		t.Fatal("nil injector counted faults")
	}
}

func TestZeroRatesInjectNothing(t *testing.T) {
	cfg := Config{Seed: 42}
	if cfg.Enabled() {
		t.Fatal("zero rates should report disabled")
	}
	inj := New(cfg)
	for _, d := range drain(inj, 1000) {
		if d.writeErr != "" || d.readErr != "" || d.latency != 0 || d.torn || d.lost || d.evict {
			t.Fatalf("zero-rate injector produced a fault: %+v", d)
		}
	}
}

func TestSameSeedSameDecisions(t *testing.T) {
	cfg := Config{Seed: 7, Rates: Uniform(0.05)}
	a := drain(New(cfg), 5000)
	b := drain(New(cfg), 5000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	ca, cb := New(cfg), New(cfg)
	drain(ca, 5000)
	drain(cb, 5000)
	if ca.Counts() != cb.Counts() {
		t.Fatalf("counts differ: %+v vs %+v", ca.Counts(), cb.Counts())
	}
	if ca.Counts().Total() == 0 {
		t.Fatal("expected some faults at rate 0.05 over 5000 consults")
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := drain(New(Config{Seed: 1, Rates: Uniform(0.1)}), 2000)
	b := drain(New(Config{Seed: 2, Rates: Uniform(0.1)}), 2000)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical fault schedules")
	}
}

// TestStreamsAreIndependent: consulting one site more often must not
// shift another site's decisions.
func TestStreamsAreIndependent(t *testing.T) {
	cfg := Config{Seed: 99, Rates: Uniform(0.2)}
	a, b := New(cfg), New(cfg)
	// a: interleave write consults with everything else; b: writes only
	// first, then the rest. The read/torn/lost streams must match.
	var aRead, bRead []bool
	for i := 0; i < 1000; i++ {
		a.WriteError()
		aRead = append(aRead, a.ReadError() != nil)
	}
	for i := 0; i < 5000; i++ {
		b.WriteError() // consume the write stream far deeper
	}
	for i := 0; i < 1000; i++ {
		bRead = append(bRead, b.ReadError() != nil)
	}
	for i := range aRead {
		if aRead[i] != bRead[i] {
			t.Fatalf("read stream decision %d shifted with write-consult frequency", i)
		}
	}
}

func TestErrorClassification(t *testing.T) {
	inj := New(Config{Seed: 1, Rates: Rates{SSDWriteTransient: 1}})
	err := inj.WriteError()
	if !IsTransient(err) {
		t.Fatalf("want transient, got %v", err)
	}
	if errors.Is(err, ErrPermanent) {
		t.Fatal("transient error must not match permanent")
	}
	inj = New(Config{Seed: 1, Rates: Rates{SSDWritePermanent: 1}})
	err = inj.WriteError()
	if !errors.Is(err, ErrPermanent) || IsTransient(err) {
		t.Fatalf("want permanent, got %v", err)
	}
}

func TestTornFractionRange(t *testing.T) {
	inj := New(Config{Seed: 3, Rates: Rates{JournalTorn: 1}})
	for i := 0; i < 1000; i++ {
		frac, torn := inj.TornFraction()
		if !torn {
			t.Fatal("rate-1 torn roll did not fire")
		}
		if frac < 0 || frac >= 1 {
			t.Fatalf("torn fraction %g outside [0,1)", frac)
		}
	}
}

func TestLatencySpikeMagnitude(t *testing.T) {
	inj := New(Config{Seed: 4, Rates: Rates{SSDLatencySpike: 1}, SpikeLatency: time.Millisecond})
	for i := 0; i < 100; i++ {
		d := inj.Latency()
		if d < time.Millisecond || d > 4*time.Millisecond {
			t.Fatalf("spike %v outside 1-4ms", d)
		}
	}
}

func TestBackoffIsBoundedAndMonotone(t *testing.T) {
	prev := time.Duration(0)
	for i := 0; i <= MaxRetries; i++ {
		b := Backoff(i)
		if b <= prev {
			t.Fatalf("backoff not increasing at attempt %d", i)
		}
		prev = b
	}
	if Backoff(-5) != Backoff(0) {
		t.Fatal("negative attempt should clamp")
	}
	if Backoff(1000) <= 0 {
		t.Fatal("huge attempt must not overflow to non-positive")
	}
}

func TestUniformLeavesPermanentOff(t *testing.T) {
	r := Uniform(0.5)
	if r.SSDWritePermanent != 0 {
		t.Fatal("Uniform must not enable permanent write errors")
	}
	if r.NodeCrash != 0 || r.ReplicaDivergence != 0 {
		t.Fatal("Uniform must not enable node-level kinds (cluster-scoped)")
	}
	if !(Config{Rates: r}).Enabled() {
		t.Fatal("Uniform(0.5) should enable injection")
	}
}

func TestNodeUniform(t *testing.T) {
	r := NodeUniform(0.01, 0.02)
	if r.NodeCrash != 0.01 || r.ReplicaDivergence != 0.02 {
		t.Fatalf("NodeUniform rates wrong: %+v", r)
	}
	if r.SSDWriteTransient != 0 || r.JournalTorn != 0 {
		t.Fatal("NodeUniform must leave device-level kinds off")
	}
	if !(Config{Rates: r}).Enabled() {
		t.Fatal("NodeUniform should enable injection")
	}
}

// TestNodeKindsDeterministicAndIndependent: the node-level streams make
// identical decisions for identical seeds, and consulting device-level
// streams more often never shifts them (the cluster sequencing phase and
// the per-node volumes draw from disjoint streams).
func TestNodeKindsDeterministicAndIndependent(t *testing.T) {
	cfg := Config{Seed: 11, Rates: NodeUniform(0.05, 0.1)}
	type nodeDecision struct {
		crash    bool
		victim   int
		delay    int
		diverges bool
	}
	drainNodes := func(inj *Injector, extraDevice int) []nodeDecision {
		out := make([]nodeDecision, 2000)
		for i := range out {
			for k := 0; k < extraDevice; k++ {
				inj.WriteError() // device streams must not perturb node streams
			}
			out[i] = nodeDecision{
				crash:    inj.NodeCrashes(),
				victim:   inj.CrashVictim(5),
				delay:    inj.RejoinDelayOps(50, 200),
				diverges: inj.ReplicaDiverges(),
			}
		}
		return out
	}
	a := drainNodes(New(cfg), 0)
	b := drainNodes(New(cfg), 3)
	crashes, diverges := 0, 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("node decision %d shifted with device-stream consults: %+v vs %+v", i, a[i], b[i])
		}
		if a[i].crash {
			crashes++
		}
		if a[i].diverges {
			diverges++
		}
		if a[i].victim < 0 || a[i].victim >= 5 {
			t.Fatalf("victim %d outside [0,5)", a[i].victim)
		}
		if a[i].delay < 50 || a[i].delay > 200 {
			t.Fatalf("rejoin delay %d outside [50,200]", a[i].delay)
		}
	}
	if crashes == 0 || diverges == 0 {
		t.Fatalf("node rates never fired over 2000 consults (crashes=%d diverges=%d)", crashes, diverges)
	}
	inj := New(cfg)
	drainNodes(inj, 0)
	c := inj.Counts()
	if c.NodeCrash == 0 || c.ReplicaDivergence == 0 {
		t.Fatalf("node fault counts not recorded: %+v", c)
	}
}

// TestNilInjectorNodeKinds: the nil injector stays silent on the node
// methods and RejoinDelayOps degrades to the minimum delay.
func TestNilInjectorNodeKinds(t *testing.T) {
	var inj *Injector
	if inj.NodeCrashes() || inj.ReplicaDiverges() {
		t.Fatal("nil injector fired a node fault")
	}
	if inj.CrashVictim(7) != 0 {
		t.Fatal("nil injector chose a nonzero victim")
	}
	if got := inj.RejoinDelayOps(50, 200); got != 50 {
		t.Fatalf("nil injector rejoin delay = %d, want 50", got)
	}
}
