package fault

import (
	"errors"
	"testing"
	"time"
)

// drain exercises every decision method once and records the outcomes in
// a comparable form.
type decision struct {
	writeErr  string
	readErr   string
	latency   time.Duration
	tornFrac  float64
	torn      bool
	lost      bool
	evict     bool
	evictRank int
}

func drain(inj *Injector, n int) []decision {
	out := make([]decision, n)
	for i := range out {
		d := &out[i]
		if err := inj.WriteError(); err != nil {
			d.writeErr = err.Error()
		}
		if err := inj.ReadError(); err != nil {
			d.readErr = err.Error()
		}
		d.latency = inj.Latency()
		d.tornFrac, d.torn = inj.TornFraction()
		d.lost = inj.DeviceLost()
		d.evict = inj.EvictIndex()
		d.evictRank = inj.Rank(17)
	}
	return out
}

func TestNilInjectorIsSilent(t *testing.T) {
	var inj *Injector
	for _, d := range drain(inj, 100) {
		if d.writeErr != "" || d.readErr != "" || d.latency != 0 || d.torn || d.lost || d.evict {
			t.Fatalf("nil injector produced a fault: %+v", d)
		}
	}
	if inj.Counts().Total() != 0 {
		t.Fatal("nil injector counted faults")
	}
}

func TestZeroRatesInjectNothing(t *testing.T) {
	cfg := Config{Seed: 42}
	if cfg.Enabled() {
		t.Fatal("zero rates should report disabled")
	}
	inj := New(cfg)
	for _, d := range drain(inj, 1000) {
		if d.writeErr != "" || d.readErr != "" || d.latency != 0 || d.torn || d.lost || d.evict {
			t.Fatalf("zero-rate injector produced a fault: %+v", d)
		}
	}
}

func TestSameSeedSameDecisions(t *testing.T) {
	cfg := Config{Seed: 7, Rates: Uniform(0.05)}
	a := drain(New(cfg), 5000)
	b := drain(New(cfg), 5000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	ca, cb := New(cfg), New(cfg)
	drain(ca, 5000)
	drain(cb, 5000)
	if ca.Counts() != cb.Counts() {
		t.Fatalf("counts differ: %+v vs %+v", ca.Counts(), cb.Counts())
	}
	if ca.Counts().Total() == 0 {
		t.Fatal("expected some faults at rate 0.05 over 5000 consults")
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := drain(New(Config{Seed: 1, Rates: Uniform(0.1)}), 2000)
	b := drain(New(Config{Seed: 2, Rates: Uniform(0.1)}), 2000)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical fault schedules")
	}
}

// TestStreamsAreIndependent: consulting one site more often must not
// shift another site's decisions.
func TestStreamsAreIndependent(t *testing.T) {
	cfg := Config{Seed: 99, Rates: Uniform(0.2)}
	a, b := New(cfg), New(cfg)
	// a: interleave write consults with everything else; b: writes only
	// first, then the rest. The read/torn/lost streams must match.
	var aRead, bRead []bool
	for i := 0; i < 1000; i++ {
		a.WriteError()
		aRead = append(aRead, a.ReadError() != nil)
	}
	for i := 0; i < 5000; i++ {
		b.WriteError() // consume the write stream far deeper
	}
	for i := 0; i < 1000; i++ {
		bRead = append(bRead, b.ReadError() != nil)
	}
	for i := range aRead {
		if aRead[i] != bRead[i] {
			t.Fatalf("read stream decision %d shifted with write-consult frequency", i)
		}
	}
}

func TestErrorClassification(t *testing.T) {
	inj := New(Config{Seed: 1, Rates: Rates{SSDWriteTransient: 1}})
	err := inj.WriteError()
	if !IsTransient(err) {
		t.Fatalf("want transient, got %v", err)
	}
	if errors.Is(err, ErrPermanent) {
		t.Fatal("transient error must not match permanent")
	}
	inj = New(Config{Seed: 1, Rates: Rates{SSDWritePermanent: 1}})
	err = inj.WriteError()
	if !errors.Is(err, ErrPermanent) || IsTransient(err) {
		t.Fatalf("want permanent, got %v", err)
	}
}

func TestTornFractionRange(t *testing.T) {
	inj := New(Config{Seed: 3, Rates: Rates{JournalTorn: 1}})
	for i := 0; i < 1000; i++ {
		frac, torn := inj.TornFraction()
		if !torn {
			t.Fatal("rate-1 torn roll did not fire")
		}
		if frac < 0 || frac >= 1 {
			t.Fatalf("torn fraction %g outside [0,1)", frac)
		}
	}
}

func TestLatencySpikeMagnitude(t *testing.T) {
	inj := New(Config{Seed: 4, Rates: Rates{SSDLatencySpike: 1}, SpikeLatency: time.Millisecond})
	for i := 0; i < 100; i++ {
		d := inj.Latency()
		if d < time.Millisecond || d > 4*time.Millisecond {
			t.Fatalf("spike %v outside 1-4ms", d)
		}
	}
}

func TestBackoffIsBoundedAndMonotone(t *testing.T) {
	prev := time.Duration(0)
	for i := 0; i <= MaxRetries; i++ {
		b := Backoff(i)
		if b <= prev {
			t.Fatalf("backoff not increasing at attempt %d", i)
		}
		prev = b
	}
	if Backoff(-5) != Backoff(0) {
		t.Fatal("negative attempt should clamp")
	}
	if Backoff(1000) <= 0 {
		t.Fatal("huge attempt must not overflow to non-positive")
	}
}

func TestUniformLeavesPermanentOff(t *testing.T) {
	r := Uniform(0.5)
	if r.SSDWritePermanent != 0 {
		t.Fatal("Uniform must not enable permanent write errors")
	}
	if !(Config{Rates: r}).Enabled() {
		t.Fatal("Uniform(0.5) should enable injection")
	}
}
