// Package fault is a deterministic, seedable fault injector for the
// reduction pipeline's durability-adjacent layers: the SSD drive, the
// volume log, the dedup journal, and the GPU device.
//
// Every injection site draws from its own PRNG stream (derived from the
// run seed and the fault kind), so two runs with the same seed and the
// same workload make identical fault decisions, and consulting one site
// more or less often never perturbs another site's stream. All consults
// happen on the single-threaded virtual-time control path, so a fixed
// seed yields bit-identical Reports regardless of host parallelism.
//
// The injector is nil-safe: every method on a nil *Injector reports "no
// fault", so the data plane threads it through unconditionally and pays
// one nil check when injection is disabled.
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// Sentinel errors injected faults wrap. Callers classify with errors.Is
// (or the IsTransient helper) to pick between retry and degradation.
var (
	// ErrTransient marks a device error that a bounded retry may clear.
	ErrTransient = errors.New("transient device fault (injected)")
	// ErrPermanent marks a device error that retries will never clear.
	ErrPermanent = errors.New("permanent device fault (injected)")
	// ErrDeviceLost marks a GPU that died mid-run; the host must finish
	// the workload on the CPU path.
	ErrDeviceLost = errors.New("gpu device lost (injected)")
)

// IsTransient reports whether err is (or wraps) a transient fault.
func IsTransient(err error) bool { return errors.Is(err, ErrTransient) }

// Kind enumerates the injectable fault classes.
type Kind int

const (
	SSDWriteTransient Kind = iota
	SSDWritePermanent
	SSDReadTransient
	SSDLatencySpike
	JournalTorn
	GPUDeviceLost
	IndexEvict
	// Node-level kinds, consulted by the cluster tier's single-threaded
	// sequencing phase (never by a volume or drive): NodeCrash fail-stops a
	// whole node, NodeRejoinDelay draws how long it stays down, and
	// ReplicaDivergence silently drops one replica write so replicas
	// disagree until read-repair or a scrub reconciles them.
	NodeCrash
	NodeRejoinDelay
	ReplicaDivergence
	numKinds
)

// String names the fault kind.
func (k Kind) String() string {
	switch k {
	case SSDWriteTransient:
		return "ssd-write-transient"
	case SSDWritePermanent:
		return "ssd-write-permanent"
	case SSDReadTransient:
		return "ssd-read-transient"
	case SSDLatencySpike:
		return "ssd-latency-spike"
	case JournalTorn:
		return "journal-torn"
	case GPUDeviceLost:
		return "gpu-device-lost"
	case IndexEvict:
		return "index-evict"
	case NodeCrash:
		return "node-crash"
	case NodeRejoinDelay:
		return "node-rejoin-delay"
	case ReplicaDivergence:
		return "replica-divergence"
	default:
		return fmt.Sprintf("fault-kind(%d)", int(k))
	}
}

// Rates holds the per-opportunity injection probability of each fault
// kind, in [0,1]. The zero value injects nothing.
type Rates struct {
	SSDWriteTransient float64
	SSDWritePermanent float64
	SSDReadTransient  float64
	SSDLatencySpike   float64
	JournalTorn       float64
	GPUDeviceLost     float64
	IndexEvict        float64
	// Node-level rates, consulted only by the cluster tier. NodeCrash is
	// the per-operation probability that a healthy node fail-stops;
	// ReplicaDivergence is the per-replica-write probability that the
	// replica silently misses the update. NodeRejoinDelay has no rate — its
	// stream is drawn unconditionally when a crash schedules a rejoin.
	NodeCrash         float64
	ReplicaDivergence float64
}

// Uniform sets every survivable fault kind to rate. Permanent SSD write
// errors stay at zero: they are data loss, not degradation, and belong to
// targeted tests rather than the one-knob CLI mode. Node-level kinds also
// stay at zero: they only have meaning on the cluster tier, which arms
// them through its own NodeFaults config (see NodeUniform).
func Uniform(rate float64) Rates {
	return Rates{
		SSDWriteTransient: rate,
		SSDReadTransient:  rate,
		SSDLatencySpike:   rate,
		JournalTorn:       rate,
		GPUDeviceLost:     rate,
		IndexEvict:        rate,
	}
}

// NodeUniform sets the node-level kinds the cluster tier injects: crashes
// at rate, replica divergence at divergence. Device-level kinds stay zero
// (arm those per node through the volume's own fault config).
func NodeUniform(rate, divergence float64) Rates {
	return Rates{NodeCrash: rate, ReplicaDivergence: divergence}
}

// Config describes one run's fault schedule.
type Config struct {
	// Seed drives every injection decision; two runs with the same seed,
	// rates, and workload inject identical faults.
	Seed int64
	// Rates are the per-kind injection probabilities.
	Rates Rates
	// SpikeLatency is the base magnitude of an injected latency spike
	// (the spike is 1–4× this); 0 means 2ms.
	SpikeLatency time.Duration
}

// Enabled reports whether any fault kind has a nonzero rate.
func (c Config) Enabled() bool { return c.Rates != (Rates{}) }

// Counts reports how many faults of each kind actually fired.
type Counts struct {
	SSDWriteTransient int64
	SSDWritePermanent int64
	SSDReadTransient  int64
	SSDLatencySpike   int64
	JournalTorn       int64
	GPUDeviceLost     int64
	IndexEvict        int64
	NodeCrash         int64
	ReplicaDivergence int64
}

// Total sums the fired faults across kinds.
func (c Counts) Total() int64 {
	return c.SSDWriteTransient + c.SSDWritePermanent + c.SSDReadTransient +
		c.SSDLatencySpike + c.JournalTorn + c.GPUDeviceLost + c.IndexEvict +
		c.NodeCrash + c.ReplicaDivergence
}

// Injector makes deterministic fault decisions. It is not safe for
// concurrent use; all consults happen on the simulation control path.
type Injector struct {
	cfg    Config
	rates  [numKinds]float64
	rng    [numKinds]*rand.Rand
	counts Counts
}

// New builds an injector for cfg. A nil *Injector is also valid and
// injects nothing.
func New(cfg Config) *Injector {
	inj := &Injector{cfg: cfg}
	inj.rates = [numKinds]float64{
		SSDWriteTransient: cfg.Rates.SSDWriteTransient,
		SSDWritePermanent: cfg.Rates.SSDWritePermanent,
		SSDReadTransient:  cfg.Rates.SSDReadTransient,
		SSDLatencySpike:   cfg.Rates.SSDLatencySpike,
		JournalTorn:       cfg.Rates.JournalTorn,
		GPUDeviceLost:     cfg.Rates.GPUDeviceLost,
		IndexEvict:        cfg.Rates.IndexEvict,
		NodeCrash:         cfg.Rates.NodeCrash,
		ReplicaDivergence: cfg.Rates.ReplicaDivergence,
	}
	for k := range inj.rng {
		// SplitMix64-style seed mixing gives each kind an independent
		// stream even for adjacent seeds.
		s := uint64(cfg.Seed) + uint64(k+1)*0x9E3779B97F4A7C15
		s ^= s >> 30
		s *= 0xBF58476D1CE4E5B9
		s ^= s >> 27
		inj.rng[k] = rand.New(rand.NewSource(int64(s)))
	}
	return inj
}

// roll consults kind's stream and records a hit.
func (i *Injector) roll(k Kind) bool {
	if i == nil || i.rates[k] <= 0 {
		return false
	}
	if i.rng[k].Float64() >= i.rates[k] {
		return false
	}
	switch k {
	case SSDWriteTransient:
		i.counts.SSDWriteTransient++
	case SSDWritePermanent:
		i.counts.SSDWritePermanent++
	case SSDReadTransient:
		i.counts.SSDReadTransient++
	case SSDLatencySpike:
		i.counts.SSDLatencySpike++
	case JournalTorn:
		i.counts.JournalTorn++
	case GPUDeviceLost:
		i.counts.GPUDeviceLost++
	case IndexEvict:
		i.counts.IndexEvict++
	case NodeCrash:
		i.counts.NodeCrash++
	case ReplicaDivergence:
		i.counts.ReplicaDivergence++
	}
	return true
}

// WriteError rolls the SSD write-error streams: permanent first (it
// dominates), then transient. Returns nil, ErrTransient, or ErrPermanent
// (wrapped).
func (i *Injector) WriteError() error {
	if i == nil {
		return nil
	}
	if i.roll(SSDWritePermanent) {
		return fmt.Errorf("injected ssd write error: %w", ErrPermanent)
	}
	if i.roll(SSDWriteTransient) {
		return fmt.Errorf("injected ssd write error: %w", ErrTransient)
	}
	return nil
}

// ReadError rolls the SSD read-error stream (transient only; permanent
// read failure of the simulated media is modeled as exhausted retries).
func (i *Injector) ReadError() error {
	if i == nil {
		return nil
	}
	if i.roll(SSDReadTransient) {
		return fmt.Errorf("injected ssd read error: %w", ErrTransient)
	}
	return nil
}

// Latency rolls the spike stream and returns the extra virtual time an
// I/O request is delayed (0 when no spike fires).
func (i *Injector) Latency() time.Duration {
	if i == nil || !i.roll(SSDLatencySpike) {
		return 0
	}
	base := i.cfg.SpikeLatency
	if base <= 0 {
		base = 2 * time.Millisecond
	}
	return base * time.Duration(1+i.rng[SSDLatencySpike].Intn(4))
}

// TornFraction rolls the torn-journal stream. When it fires, it returns
// the fraction of the flush record that was durably persisted before the
// simulated crash cut it (in (0,1)) and true.
func (i *Injector) TornFraction() (float64, bool) {
	if i == nil || !i.roll(JournalTorn) {
		return 0, false
	}
	return i.rng[JournalTorn].Float64(), true
}

// DeviceLost rolls the GPU loss stream (consulted per kernel launch).
func (i *Injector) DeviceLost() bool { return i.roll(GPUDeviceLost) }

// EvictIndex rolls the memory-pressure stream (consulted per index
// insert); a hit evicts one resident entry.
func (i *Injector) EvictIndex() bool { return i.roll(IndexEvict) }

// Rank returns a deterministic victim rank in [0,n) for an injected
// eviction, drawn from the eviction stream.
func (i *Injector) Rank(n int) int {
	if i == nil || n <= 1 {
		return 0
	}
	return i.rng[IndexEvict].Intn(n)
}

// NodeCrashes rolls the node-crash stream (consulted once per cluster
// operation while every node is healthy); a hit fail-stops one node.
func (i *Injector) NodeCrashes() bool { return i.roll(NodeCrash) }

// CrashVictim returns a deterministic victim node in [0,n) for an injected
// crash, drawn from the crash stream.
func (i *Injector) CrashVictim(n int) int {
	if i == nil || n <= 1 {
		return 0
	}
	return i.rng[NodeCrash].Intn(n)
}

// RejoinDelayOps draws how many operations a crashed node stays down
// before it rejoins, in [min, max], from the rejoin-delay stream. The draw
// is unconditional (no rate): every crash schedules exactly one rejoin.
func (i *Injector) RejoinDelayOps(min, max int) int {
	if min < 1 {
		min = 1
	}
	if max < min {
		max = min
	}
	if i == nil {
		return min
	}
	return min + i.rng[NodeRejoinDelay].Intn(max-min+1)
}

// ReplicaDiverges rolls the divergence stream (consulted per non-primary
// replica write); a hit silently drops that replica's copy of the write.
func (i *Injector) ReplicaDiverges() bool { return i.roll(ReplicaDivergence) }

// Counts returns how many faults fired so far.
func (i *Injector) Counts() Counts {
	if i == nil {
		return Counts{}
	}
	return i.counts
}

// Retry policy shared by every consumer of transient device errors: a
// bounded number of attempts with exponential backoff charged to the
// virtual clock.
const (
	// MaxRetries is how many times a transient error is retried before it
	// is surfaced as permanent.
	MaxRetries = 6
	// RetryBackoffBase is the virtual-time delay before the first retry;
	// each subsequent retry doubles it.
	RetryBackoffBase = 200 * time.Microsecond
)

// Backoff returns the virtual-time delay charged before retry `attempt`
// (0-based).
func Backoff(attempt int) time.Duration {
	if attempt < 0 {
		attempt = 0
	}
	if attempt > 16 {
		attempt = 16
	}
	return RetryBackoffBase << uint(attempt)
}
