package dedup

import (
	"crypto/sha1"
	"testing"
	"testing/quick"
)

func TestSumMatchesSHA1(t *testing.T) {
	data := []byte("inline data reduction")
	if Sum(data) != Fingerprint(sha1.Sum(data)) {
		t.Fatal("Sum must be SHA-1")
	}
}

func TestStringIsHex(t *testing.T) {
	fp := Sum([]byte("x"))
	s := fp.String()
	if len(s) != 40 {
		t.Fatalf("hex length: got %d, want 40", len(s))
	}
}

func TestBinSelectsLeadingBits(t *testing.T) {
	var fp Fingerprint
	fp[0] = 0xAB
	fp[1] = 0xCD
	if got := fp.Bin(8); got != 0xAB {
		t.Fatalf("Bin(8): got %#x, want 0xAB", got)
	}
	if got := fp.Bin(12); got != 0xABC {
		t.Fatalf("Bin(12): got %#x, want 0xABC", got)
	}
	if got := fp.Bin(0); got != 0 {
		t.Fatalf("Bin(0): got %d, want 0", got)
	}
	if got := fp.Bin(40); got != fp.Bin(32) {
		t.Fatal("Bin should clamp at 32 bits")
	}
}

func TestSuffixTruncation(t *testing.T) {
	fp := Sum([]byte("y"))
	full := fp.Suffix(0)
	if len(full) != FingerprintSize {
		t.Fatalf("Suffix(0) length %d", len(full))
	}
	two := fp.Suffix(2)
	if len(two) != FingerprintSize-2 {
		t.Fatalf("Suffix(2) length %d", len(two))
	}
	for i := range two {
		if two[i] != fp[i+2] {
			t.Fatal("suffix bytes misaligned")
		}
	}
	if len(fp.Suffix(-1)) != FingerprintSize || len(fp.Suffix(99)) != 0 {
		t.Fatal("Suffix should clamp out-of-range prefixes")
	}
}

func TestEntryBytesMatchesPaperArithmetic(t *testing.T) {
	// §3.1: 20-byte SHA-1 + metadata = 32 bytes/entry; a 2-byte prefix
	// saves 2 bytes/entry (1 GB of the 16 GB index for 4 TB at 8 KB).
	if EntryBytes(0) != 32 {
		t.Fatalf("EntryBytes(0) = %d, want 32", EntryBytes(0))
	}
	if EntryBytes(2) != 30 {
		t.Fatalf("EntryBytes(2) = %d, want 30", EntryBytes(2))
	}
	const (
		capacity  = 4 << 40 // 4 TB
		chunkSize = 8 << 10 // 8 KB
	)
	entries := int64(capacity / chunkSize)
	full := entries * int64(EntryBytes(0))
	if full != 16<<30 {
		t.Fatalf("full index: got %d bytes, want 16 GiB", full)
	}
	saved := entries * int64(EntryBytes(0)-EntryBytes(2))
	if saved != 1<<30 {
		t.Fatalf("2-byte prefix saving: got %d bytes, want 1 GiB", saved)
	}
}

// Property: bin id equals the integer formed by the first `bits` bits, and
// truncation+bin together preserve the full fingerprint identity when
// 8*prefix <= bits.
func TestBinPlusSuffixLossless(t *testing.T) {
	f := func(a, b [20]byte) bool {
		fa, fb := Fingerprint(a), Fingerprint(b)
		const bits, prefix = 16, 2
		if fa == fb {
			return true
		}
		// Different fingerprints must differ in (bin, suffix).
		sameBin := fa.Bin(bits) == fb.Bin(bits)
		sameSuffix := string(fa.Suffix(prefix)) == string(fb.Suffix(prefix))
		return !(sameBin && sameSuffix)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
