package dedup

import (
	"time"

	"inlinered/internal/gpu"
)

// GPUBatchHash fingerprints a batch of chunks on the GPU: the chunk
// payloads are DMAed to the device, one lane hashes each chunk (SHA-1 is a
// serial dependency chain, so a chunk cannot be split across lanes), and
// the 20-byte digests come back.
//
// The paper keeps hashing on the CPU; related work (GHOST, Kim et al.)
// offloads it. This kernel exists for the E15 analysis: raw hashing
// throughput on the device is competitive, but the offload must move the
// *entire chunk* across PCIe (4 KB per chunk, 200× the 20 bytes an
// index-probe offload moves), which is exactly the bandwidth the
// integrated design would rather spend on compression offload.
// A lost device fails the batch with fault.ErrDeviceLost; the caller
// re-hashes the same chunks on the CPU.
func GPUBatchHash(dev *gpu.Device, at time.Duration, chunks [][]byte) (time.Duration, []Fingerprint, gpu.Profile, error) {
	if len(chunks) == 0 {
		return at, nil, gpu.Profile{}, nil
	}
	total := 0
	for _, c := range chunks {
		total += len(c)
	}
	t := dev.TransferToDevice(at, total)

	fps := make([]Fingerprint, len(chunks))
	cost := dev.Cost
	perLane := make([]float64, len(chunks))
	kernel := gpu.KernelFunc{Label: "batch-sha1", Fn: func() gpu.Profile {
		for i, c := range chunks {
			fps[i] = Sum(c) // the real digest
			perLane[i] = float64(len(c)) * cost.HashCyclesPerByte
		}
		p := gpu.Wavefronts(perLane, dev.WavefrontSize)
		p.LocalBytes = int64(total)
		return p
	}}
	t, prof, err := dev.Launch(t, kernel)
	if err != nil {
		return t, nil, gpu.Profile{}, err
	}
	t = dev.TransferFromDevice(t, len(chunks)*FingerprintSize)
	return t, fps, prof, nil
}
