package dedup

import (
	"math/rand"
	"testing"

	"inlinered/internal/parallel"
)

func TestSumBatchMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	chunks := make([][]byte, 301)
	for i := range chunks {
		chunks[i] = make([]byte, rng.Intn(4096))
		rng.Read(chunks[i])
	}
	want := make([]Fingerprint, len(chunks))
	for i, c := range chunks {
		want[i] = Sum(c)
	}
	for _, workers := range []int{1, 2, 7, 16} {
		pool := parallel.New(workers)
		got := SumBatch(pool, chunks)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d chunk %d mismatch", workers, i)
			}
		}
		pool.Close()
	}
}

func TestBatchHasherReusesDst(t *testing.T) {
	pool := parallel.New(2)
	defer pool.Close()
	h := NewBatchHasher(pool)
	if got := h.SumInto(nil, nil); len(got) != 0 {
		t.Fatal("empty batch should produce empty result")
	}
	big := [][]byte{{1}, {2}, {3}, {4}}
	first := h.SumInto(nil, big)
	// A smaller follow-up batch must reuse the same backing array.
	small := h.SumInto(first, big[:2])
	if &first[0] != &small[0] {
		t.Fatal("SumInto reallocated although capacity sufficed")
	}
	for i, c := range big[:2] {
		if small[i] != Sum(c) {
			t.Fatalf("chunk %d mismatch after reuse", i)
		}
	}
}

// TestBatchHasherSteadyStateAllocFree pins the zero-alloc dispatch claim:
// once the fingerprint slice has grown to batch size, repeated SumInto
// calls allocate nothing.
func TestBatchHasherSteadyStateAllocFree(t *testing.T) {
	pool := parallel.New(1) // inline execution keeps AllocsPerRun exact
	defer pool.Close()
	h := NewBatchHasher(pool)
	chunks := make([][]byte, 64)
	for i := range chunks {
		chunks[i] = make([]byte, 512)
		chunks[i][0] = byte(i)
	}
	var fps []Fingerprint
	fps = h.SumInto(fps, chunks)
	if avg := testing.AllocsPerRun(50, func() {
		fps = h.SumInto(fps, chunks)
	}); avg != 0 {
		t.Fatalf("steady-state SumInto allocates %v per batch, want 0", avg)
	}
}
