package dedup

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// The index journal is the durable form of §3.3's bin-buffer flushes: "when
// the buffer is full, the hash is immediately flushed from the buffer to
// the storage. This creates the appropriate sequential writes for the SSD."
// Each flush appends one self-describing, checksummed record; replaying the
// journal after a crash rebuilds every flushed index entry. Entries still
// sitting in bin buffers at the moment of the crash were never journaled
// and are lost — the memory-only-index tradeoff: their future duplicates
// are simply stored again.
//
// Record format (little-endian):
//
//	magic byte 'J'
//	uvarint bin id
//	uvarint entry count
//	per entry: key suffix (fixed width = 20 - PrefixBytes), uvarint loc,
//	           uvarint size
//	crc32c (4 bytes LE) over everything above, magic included
//
// The trailing CRC makes torn (partially persisted) and bit-flipped
// records detectable: recovery truncates the journal at the first record
// whose checksum or structure does not hold, and everything before that
// point is a consistent prefix of the flush history.

// ErrJournalCorrupt is wrapped by every journal decode error.
var ErrJournalCorrupt = errors.New("dedup: corrupt journal")

const journalMagic = 'J'

// castagnoli is the CRC polynomial used by the journal records (the same
// one real storage stacks use for on-disk metadata).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// JournalWriter serializes bin-buffer flushes into a journal image.
type JournalWriter struct {
	prefixBytes int
	buf         bytes.Buffer
	scratch     []byte
	records     int
	torn        int
}

// NewJournalWriter returns a writer for an index with the given prefix
// truncation (the key width is implied by it).
func NewJournalWriter(prefixBytes int) *JournalWriter {
	if prefixBytes < 0 {
		prefixBytes = 0
	}
	if prefixBytes > FingerprintSize {
		prefixBytes = FingerprintSize
	}
	return &JournalWriter{prefixBytes: prefixBytes}
}

// encode serializes one flush record (checksum included) into dst.
func (w *JournalWriter) encode(dst []byte, f *Flush) []byte {
	dst = append(dst, journalMagic)
	var tmp [binary.MaxVarintLen64]byte
	put := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		dst = append(dst, tmp[:n]...)
	}
	put(uint64(f.Bin))
	put(uint64(len(f.Entries)))
	for _, e := range f.Entries {
		dst = append(dst, e.key...)
		put(uint64(e.val.Loc))
		put(uint64(e.val.Size))
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(dst, castagnoli))
	return append(dst, crc[:]...)
}

// Append serializes one flush record and returns the bytes written.
func (w *JournalWriter) Append(f *Flush) int {
	w.scratch = w.encode(w.scratch[:0], f)
	w.buf.Write(w.scratch)
	w.records++
	return len(w.scratch)
}

// AppendTorn simulates a crash mid-flush: only the leading frac of the
// record's bytes reach the image (at least one byte, never the whole
// record), so recovery will find a torn record at this offset and
// truncate there. Returns the bytes actually written.
func (w *JournalWriter) AppendTorn(f *Flush, frac float64) int {
	w.scratch = w.encode(w.scratch[:0], f)
	keep := int(frac * float64(len(w.scratch)))
	if keep < 1 {
		keep = 1
	}
	if keep >= len(w.scratch) {
		keep = len(w.scratch) - 1
	}
	w.buf.Write(w.scratch[:keep])
	w.torn++
	return keep
}

// Bytes returns the journal image accumulated so far.
func (w *JournalWriter) Bytes() []byte { return w.buf.Bytes() }

// Records returns the number of complete flush records appended.
func (w *JournalWriter) Records() int { return w.records }

// TornRecords returns the number of torn (partially persisted) records.
func (w *JournalWriter) TornRecords() int { return w.torn }

// JournalRecord is one decoded flush record and its extent in the image.
type JournalRecord struct {
	Offset int // byte offset of the record's magic
	Size   int // record length in bytes, checksum included
	Bin    uint32
	Keys   [][]byte
	Vals   []Entry
}

// Recovery describes what a lenient journal replay salvaged.
type Recovery struct {
	Records     int  // complete records applied
	Entries     int  // entries inserted into the recovered index
	Truncated   bool // the image ended in a torn or corrupt record
	TruncatedAt int  // byte offset of the first unusable record
	// Cause is the decode error at the truncation point (nil on a clean
	// image). It always wraps ErrJournalCorrupt.
	Cause error
}

// decodeRecord parses the record starting at off. It validates structure
// and checksum before returning; a failed parse reports the record
// unusable without partial effects.
func decodeRecord(image []byte, off int, keyLen, bins int) (JournalRecord, error) {
	rec := JournalRecord{Offset: off}
	corrupt := func(format string, args ...interface{}) (JournalRecord, error) {
		return rec, fmt.Errorf("%w: record at %d: %s", ErrJournalCorrupt, off, fmt.Sprintf(format, args...))
	}
	p := off
	if image[p] != journalMagic {
		return corrupt("bad magic %#x", image[p])
	}
	p++
	bin, n := binary.Uvarint(image[p:])
	if n <= 0 {
		return corrupt("bin id")
	}
	p += n
	if bin >= uint64(bins) {
		return corrupt("bin %d out of range", bin)
	}
	count, n := binary.Uvarint(image[p:])
	if n <= 0 || count > 1<<20 {
		return corrupt("entry count")
	}
	p += n
	rec.Bin = uint32(bin)
	for i := uint64(0); i < count; i++ {
		if p+keyLen > len(image) {
			return corrupt("truncated key")
		}
		key := image[p : p+keyLen]
		p += keyLen
		loc, n := binary.Uvarint(image[p:])
		if n <= 0 {
			return corrupt("loc")
		}
		p += n
		size, n := binary.Uvarint(image[p:])
		if n <= 0 || size > 1<<31 {
			return corrupt("size")
		}
		p += n
		rec.Keys = append(rec.Keys, key)
		rec.Vals = append(rec.Vals, Entry{Loc: int64(loc), Size: uint32(size)})
	}
	if p+4 > len(image) {
		return corrupt("truncated checksum")
	}
	want := binary.LittleEndian.Uint32(image[p : p+4])
	if got := crc32.Checksum(image[off:p], castagnoli); got != want {
		return corrupt("checksum mismatch (stored %#x, computed %#x)", want, got)
	}
	rec.Size = p + 4 - off
	return rec, nil
}

// ScanJournal decodes an image into its complete records, stopping at the
// first torn or corrupt one. cfg supplies the key width (PrefixBytes) and
// bin range the records were written under. The returned Recovery
// describes where (and why) the scan stopped; it never returns an error
// for image corruption — only callers that demand a pristine image
// (ReplayJournal) promote Recovery.Cause to a hard failure.
func ScanJournal(image []byte, cfg IndexConfig) ([]JournalRecord, Recovery) {
	keyLen := FingerprintSize - cfg.PrefixBytes
	bins := 1 << uint(cfg.BinBits)
	var recs []JournalRecord
	var rcv Recovery
	off := 0
	for off < len(image) {
		rec, err := decodeRecord(image, off, keyLen, bins)
		if err != nil {
			rcv.Truncated = true
			rcv.TruncatedAt = off
			rcv.Cause = err
			return recs, rcv
		}
		recs = append(recs, rec)
		rcv.Records++
		rcv.Entries += len(rec.Keys)
		off += rec.Size
	}
	return recs, rcv
}

// apply inserts a decoded record straight into the recovered index's bin
// tree (journaled entries had already flushed when they were written).
func applyRecord(idx *BinIndex, rec JournalRecord) {
	b := &idx.bins[rec.Bin]
	for i, key := range rec.Keys {
		k := make([]byte, len(key))
		copy(k, key)
		if _, replaced := b.tree.Insert(k, rec.Vals[i]); !replaced {
			idx.entries.Add(1)
		}
	}
}

// ReplayJournal rebuilds an index from a journal image in strict mode:
// any torn or corrupt record fails the whole replay with
// ErrJournalCorrupt. cfg must match the original index's configuration.
// Use RecoverJournal for crash recovery, where a trailing torn record is
// expected and the consistent prefix is wanted.
func ReplayJournal(image []byte, cfg IndexConfig) (*BinIndex, error) {
	idx, err := NewBinIndex(cfg)
	if err != nil {
		return nil, err
	}
	recs, rcv := ScanJournal(image, cfg)
	if rcv.Truncated {
		return nil, rcv.Cause
	}
	for _, rec := range recs {
		applyRecord(idx, rec)
	}
	return idx, nil
}

// RecoverJournal rebuilds an index from the longest consistent prefix of
// a journal image: decoding stops at the first torn or corrupt record
// (the crash point), every complete record before it is applied, and the
// returned Recovery reports what was salvaged and where the image was
// truncated. The error is non-nil only for an unusable configuration —
// corruption itself is recoverable by construction.
func RecoverJournal(image []byte, cfg IndexConfig) (*BinIndex, Recovery, error) {
	idx, err := NewBinIndex(cfg)
	if err != nil {
		return nil, Recovery{}, err
	}
	recs, rcv := ScanJournal(image, cfg)
	for _, rec := range recs {
		applyRecord(idx, rec)
	}
	return idx, rcv, nil
}
