package dedup

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
)

// The index journal is the durable form of §3.3's bin-buffer flushes: "when
// the buffer is full, the hash is immediately flushed from the buffer to
// the storage. This creates the appropriate sequential writes for the SSD."
// Each flush appends one self-describing record; replaying the journal
// after a crash rebuilds every flushed index entry. Entries still sitting
// in bin buffers at the moment of the crash were never journaled and are
// lost — the memory-only-index tradeoff: their future duplicates are simply
// stored again.
//
// Record format (little-endian):
//
//	magic byte 'J'
//	uvarint bin id
//	uvarint entry count
//	per entry: key suffix (fixed width = 20 - PrefixBytes), uvarint loc,
//	           uvarint size

// ErrJournalCorrupt is wrapped by every journal decode error.
var ErrJournalCorrupt = errors.New("dedup: corrupt journal")

const journalMagic = 'J'

// JournalWriter serializes bin-buffer flushes into a journal image.
type JournalWriter struct {
	prefixBytes int
	buf         bytes.Buffer
	records     int
}

// NewJournalWriter returns a writer for an index with the given prefix
// truncation (the key width is implied by it).
func NewJournalWriter(prefixBytes int) *JournalWriter {
	if prefixBytes < 0 {
		prefixBytes = 0
	}
	if prefixBytes > FingerprintSize {
		prefixBytes = FingerprintSize
	}
	return &JournalWriter{prefixBytes: prefixBytes}
}

// Append serializes one flush record and returns the bytes written.
func (w *JournalWriter) Append(f *Flush) int {
	before := w.buf.Len()
	w.buf.WriteByte(journalMagic)
	var tmp [binary.MaxVarintLen64]byte
	put := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		w.buf.Write(tmp[:n])
	}
	put(uint64(f.Bin))
	put(uint64(len(f.Entries)))
	for _, e := range f.Entries {
		w.buf.Write(e.key)
		put(uint64(e.val.Loc))
		put(uint64(e.val.Size))
	}
	w.records++
	return w.buf.Len() - before
}

// Bytes returns the journal image accumulated so far.
func (w *JournalWriter) Bytes() []byte { return w.buf.Bytes() }

// Records returns the number of flush records appended.
func (w *JournalWriter) Records() int { return w.records }

// ReplayJournal rebuilds an index from a journal image: every journaled
// entry is inserted (buffered then flushed), so the recovered index finds
// everything that had reached the bin trees before the crash. cfg must
// match the original index's configuration.
func ReplayJournal(image []byte, cfg IndexConfig) (*BinIndex, error) {
	idx, err := NewBinIndex(cfg)
	if err != nil {
		return nil, err
	}
	keyLen := FingerprintSize - cfg.PrefixBytes
	r := bytes.NewReader(image)
	for r.Len() > 0 {
		m, err := r.ReadByte()
		if err != nil || m != journalMagic {
			return nil, fmt.Errorf("%w: bad record magic %#x", ErrJournalCorrupt, m)
		}
		bin, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, fmt.Errorf("%w: bin id: %v", ErrJournalCorrupt, err)
		}
		if bin >= uint64(idx.Bins()) {
			return nil, fmt.Errorf("%w: bin %d out of range", ErrJournalCorrupt, bin)
		}
		count, err := binary.ReadUvarint(r)
		if err != nil || count > 1<<20 {
			return nil, fmt.Errorf("%w: entry count", ErrJournalCorrupt)
		}
		for i := uint64(0); i < count; i++ {
			key := make([]byte, keyLen)
			if _, err := r.Read(key); err != nil {
				return nil, fmt.Errorf("%w: truncated key", ErrJournalCorrupt)
			}
			loc, err := binary.ReadUvarint(r)
			if err != nil {
				return nil, fmt.Errorf("%w: loc", ErrJournalCorrupt)
			}
			size, err := binary.ReadUvarint(r)
			if err != nil || size > 1<<31 {
				return nil, fmt.Errorf("%w: size", ErrJournalCorrupt)
			}
			// Insert straight into the bin tree: journaled entries had
			// already flushed when they were written.
			b := &idx.bins[bin]
			if _, replaced := b.tree.Insert(key, Entry{Loc: int64(loc), Size: uint32(size)}); !replaced {
				idx.entries.Add(1)
			}
		}
	}
	return idx, nil
}
