package dedup

import "sync"

// LockedMap is the baseline the bin-based design is measured against in the
// scaling ablation (E8): a single global hash table shared by every
// computing thread behind one lock. Functionally it deduplicates exactly
// like BinIndex (without buffers, truncation, or caps); its purpose is to
// expose the serialization the paper's bin partitioning removes.
type LockedMap struct {
	mu      sync.Mutex
	entries map[Fingerprint]Entry
	lookups int64
	inserts int64
}

// NewLockedMap returns an empty locked index.
func NewLockedMap() *LockedMap {
	return &LockedMap{entries: make(map[Fingerprint]Entry)}
}

// Lookup probes the table under the global lock.
func (m *LockedMap) Lookup(fp Fingerprint) (Entry, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.lookups++
	e, ok := m.entries[fp]
	return e, ok
}

// Insert stores an entry under the global lock.
func (m *LockedMap) Insert(fp Fingerprint, e Entry) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.inserts++
	m.entries[fp] = e
}

// LookupOrInsert probes and, on a miss, installs the entry atomically —
// one critical section per chunk, as a single shared table forces.
func (m *LockedMap) LookupOrInsert(fp Fingerprint, e Entry) (Entry, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.lookups++
	if old, ok := m.entries[fp]; ok {
		return old, true
	}
	m.inserts++
	m.entries[fp] = e
	return e, false
}

// Len returns the number of entries.
func (m *LockedMap) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.entries)
}

// Ops returns the lookup and insert counts.
func (m *LockedMap) Ops() (lookups, inserts int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lookups, m.inserts
}
