package dedup

import "testing"

// FuzzReplayJournal: journal replay must never panic on arbitrary images
// and must accept every image the writer produces.
func FuzzReplayJournal(f *testing.F) {
	cfg := IndexConfig{BinBits: 6, BufferEntries: 4}
	idx, _ := NewBinIndex(cfg)
	w := NewJournalWriter(0)
	for i := 0; i < 64; i++ {
		if ir := idx.Insert(fpFor(i), Entry{Loc: int64(i)}); ir.Flush != nil {
			w.Append(ir.Flush)
		}
	}
	f.Add(w.Bytes())
	f.Add([]byte{journalMagic, 0x01, 0x00})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, img []byte) {
		rec, err := ReplayJournal(img, cfg)
		if err == nil && rec.Len() < 0 {
			t.Fatal("negative entry count")
		}
	})
}
