package dedup

import (
	"bytes"
)

// Tree is the "bin tree" of §3.1: the in-memory sorted store holding the
// bulk of a bin's hash-table entries. It is a left-leaning red-black tree
// keyed on truncated fingerprints, augmented with subtree sizes so a
// uniformly random entry can be selected for the random replacement policy
// of §3.3. Probe and insert report the number of nodes touched, which the
// CPU cost model converts into virtual time.
//
// A Tree is confined to its bin's owning worker, so it needs no locking —
// that is the point of the bin-based design.
type Tree struct {
	root *treeNode
}

type treeNode struct {
	key         []byte
	val         Entry
	left, right *treeNode
	size        int
	red         bool
}

func nodeSize(n *treeNode) int {
	if n == nil {
		return 0
	}
	return n.size
}

func isRed(n *treeNode) bool { return n != nil && n.red }

// Len returns the number of entries in the tree.
func (t *Tree) Len() int { return nodeSize(t.root) }

// Get looks up a key and returns its entry, the number of nodes visited,
// and whether it was found.
func (t *Tree) Get(key []byte) (Entry, int, bool) {
	n := t.root
	steps := 0
	for n != nil {
		steps++
		switch c := bytes.Compare(key, n.key); {
		case c < 0:
			n = n.left
		case c > 0:
			n = n.right
		default:
			return n.val, steps, true
		}
	}
	return Entry{}, steps, false
}

// Insert adds or replaces an entry and returns the number of nodes visited
// on the way down and whether an existing entry was replaced.
func (t *Tree) Insert(key []byte, v Entry) (steps int, replaced bool) {
	t.root, steps, replaced = insert(t.root, key, v)
	t.root.red = false
	return steps, replaced
}

func insert(n *treeNode, key []byte, v Entry) (*treeNode, int, bool) {
	if n == nil {
		return &treeNode{key: key, val: v, size: 1, red: true}, 1, false
	}
	var steps int
	var replaced bool
	switch c := bytes.Compare(key, n.key); {
	case c < 0:
		n.left, steps, replaced = insert(n.left, key, v)
	case c > 0:
		n.right, steps, replaced = insert(n.right, key, v)
	default:
		n.val = v
		return n, 1, true
	}
	return fixUp(n), steps + 1, replaced
}

// KeyAt returns the key and entry with the given in-order rank (0-based).
// It returns ok=false if rank is out of range.
func (t *Tree) KeyAt(rank int) (key []byte, v Entry, ok bool) {
	if rank < 0 || rank >= t.Len() {
		return nil, Entry{}, false
	}
	n := t.root
	for {
		ls := nodeSize(n.left)
		switch {
		case rank < ls:
			n = n.left
		case rank > ls:
			rank -= ls + 1
			n = n.right
		default:
			return n.key, n.val, true
		}
	}
}

// Delete removes a key if present and reports whether it was removed.
func (t *Tree) Delete(key []byte) bool {
	if t.root == nil {
		return false
	}
	if _, _, found := t.Get(key); !found {
		return false
	}
	t.root = del(t.root, key)
	if t.root != nil {
		t.root.red = false
	}
	return true
}

// DeleteAt removes the entry with the given in-order rank, returning the
// removed key and entry. Used by the random replacement policy.
func (t *Tree) DeleteAt(rank int) (key []byte, v Entry, ok bool) {
	key, v, ok = t.KeyAt(rank)
	if !ok {
		return nil, Entry{}, false
	}
	t.Delete(key)
	return key, v, true
}

// Walk visits every entry in key order; fn returning false stops the walk.
func (t *Tree) Walk(fn func(key []byte, v Entry) bool) {
	walk(t.root, fn)
}

func walk(n *treeNode, fn func([]byte, Entry) bool) bool {
	if n == nil {
		return true
	}
	return walk(n.left, fn) && fn(n.key, n.val) && walk(n.right, fn)
}

// --- LLRB mechanics (Sedgewick), size-augmented ---

func rotateLeft(n *treeNode) *treeNode {
	x := n.right
	n.right = x.left
	x.left = n
	x.red = n.red
	n.red = true
	x.size = n.size
	n.size = 1 + nodeSize(n.left) + nodeSize(n.right)
	return x
}

func rotateRight(n *treeNode) *treeNode {
	x := n.left
	n.left = x.right
	x.right = n
	x.red = n.red
	n.red = true
	x.size = n.size
	n.size = 1 + nodeSize(n.left) + nodeSize(n.right)
	return x
}

func flipColors(n *treeNode) {
	n.red = !n.red
	n.left.red = !n.left.red
	n.right.red = !n.right.red
}

func fixUp(n *treeNode) *treeNode {
	if isRed(n.right) && !isRed(n.left) {
		n = rotateLeft(n)
	}
	if isRed(n.left) && isRed(n.left.left) {
		n = rotateRight(n)
	}
	if isRed(n.left) && isRed(n.right) {
		flipColors(n)
	}
	n.size = 1 + nodeSize(n.left) + nodeSize(n.right)
	return n
}

func moveRedLeft(n *treeNode) *treeNode {
	flipColors(n)
	if isRed(n.right.left) {
		n.right = rotateRight(n.right)
		n = rotateLeft(n)
		flipColors(n)
	}
	return n
}

func moveRedRight(n *treeNode) *treeNode {
	flipColors(n)
	if isRed(n.left.left) {
		n = rotateRight(n)
		flipColors(n)
	}
	return n
}

func minNode(n *treeNode) *treeNode {
	for n.left != nil {
		n = n.left
	}
	return n
}

func deleteMin(n *treeNode) *treeNode {
	if n.left == nil {
		return nil
	}
	if !isRed(n.left) && !isRed(n.left.left) {
		n = moveRedLeft(n)
	}
	n.left = deleteMin(n.left)
	return fixUp(n)
}

func del(n *treeNode, key []byte) *treeNode {
	if bytes.Compare(key, n.key) < 0 {
		if !isRed(n.left) && !isRed(n.left.left) {
			n = moveRedLeft(n)
		}
		n.left = del(n.left, key)
	} else {
		if isRed(n.left) {
			n = rotateRight(n)
		}
		if bytes.Equal(key, n.key) && n.right == nil {
			return nil
		}
		if !isRed(n.right) && !isRed(n.right.left) {
			n = moveRedRight(n)
		}
		if bytes.Equal(key, n.key) {
			m := minNode(n.right)
			n.key, n.val = m.key, m.val
			n.right = deleteMin(n.right)
		} else {
			n.right = del(n.right, key)
		}
	}
	return fixUp(n)
}

// checkInvariants validates red-black and size invariants; used by tests.
// It returns the black height, or -1 if an invariant is violated.
func (t *Tree) checkInvariants() int {
	if isRed(t.root) {
		return -1
	}
	return check(t.root, nil, nil)
}

func check(n *treeNode, lo, hi []byte) int {
	if n == nil {
		return 0
	}
	if lo != nil && bytes.Compare(n.key, lo) <= 0 {
		return -1
	}
	if hi != nil && bytes.Compare(n.key, hi) >= 0 {
		return -1
	}
	if isRed(n.right) {
		return -1 // right-leaning red link
	}
	if isRed(n) && isRed(n.left) {
		return -1 // consecutive red links
	}
	if n.size != 1+nodeSize(n.left)+nodeSize(n.right) {
		return -1
	}
	lh := check(n.left, lo, n.key)
	rh := check(n.right, n.key, hi)
	if lh < 0 || rh < 0 || lh != rh {
		return -1
	}
	if !isRed(n) {
		return lh + 1
	}
	return lh
}
