package dedup

import (
	"encoding/binary"
	"math/rand"
	"testing"
)

func fpFor(i int) Fingerprint {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(i))
	return Sum(b[:])
}

func smallIndex(t *testing.T, cfg IndexConfig) *BinIndex {
	t.Helper()
	x, err := NewBinIndex(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return x
}

func TestIndexConfigValidation(t *testing.T) {
	bad := []IndexConfig{
		{BinBits: -1, BufferEntries: 4},
		{BinBits: 25, BufferEntries: 4},
		{BinBits: 8, BufferEntries: 0},
		{BinBits: 8, BufferEntries: 4, PrefixBytes: 2}, // needs 16 bin bits
		{BinBits: 8, BufferEntries: 4, MaxEntries: -1},
	}
	for i, cfg := range bad {
		if cfg.Validate() == nil {
			t.Errorf("config %d should be invalid: %+v", i, cfg)
		}
		if _, err := NewBinIndex(cfg); err == nil {
			t.Errorf("NewBinIndex should reject config %d", i)
		}
	}
	if err := DefaultIndexConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestLookupMissThenHit(t *testing.T) {
	x := smallIndex(t, IndexConfig{BinBits: 4, BufferEntries: 8})
	fp := fpFor(1)
	p := x.Lookup(fp)
	if p.Found {
		t.Fatal("empty index reported a hit")
	}
	x.Insert(fp, Entry{Loc: 7, Size: 100})
	p = x.Lookup(fp)
	if !p.Found || !p.InBuffer || p.Entry.Loc != 7 {
		t.Fatalf("buffered hit: %+v", p)
	}
	if x.Len() != 1 {
		t.Fatalf("len: %d", x.Len())
	}
}

func TestBufferFlushMovesToTree(t *testing.T) {
	x := smallIndex(t, IndexConfig{BinBits: 0, BufferEntries: 4}) // one bin
	var flush *Flush
	for i := 0; i < 4; i++ {
		r := x.Insert(fpFor(i), Entry{Loc: int64(i)})
		if i < 3 && r.Flush != nil {
			t.Fatalf("premature flush at %d", i)
		}
		if i == 3 {
			flush = r.Flush
		}
	}
	if flush == nil {
		t.Fatal("4th insert should flush a 4-entry buffer")
	}
	if len(flush.Entries) != 4 || flush.TreeSteps < 4 {
		t.Fatalf("flush: %d entries, %d steps", len(flush.Entries), flush.TreeSteps)
	}
	if flush.Bytes != 4*x.EntryBytes() {
		t.Fatalf("flush bytes: got %d", flush.Bytes)
	}
	if x.BufferedEntries() != 0 || x.TreeEntries() != 4 {
		t.Fatalf("post-flush: buffered=%d tree=%d", x.BufferedEntries(), x.TreeEntries())
	}
	// Entries remain findable, now via the tree.
	p := x.Lookup(fpFor(2))
	if !p.Found || p.InBuffer || p.TreeSteps < 1 {
		t.Fatalf("tree hit: %+v", p)
	}
	if len(flush.Keys()) != 4 || len(flush.Values()) != 4 {
		t.Fatal("flush accessors misaligned")
	}
}

func TestInsertDuplicateInBufferUpdates(t *testing.T) {
	x := smallIndex(t, IndexConfig{BinBits: 0, BufferEntries: 8})
	fp := fpFor(1)
	x.Insert(fp, Entry{Loc: 1})
	x.Insert(fp, Entry{Loc: 2})
	if x.Len() != 1 {
		t.Fatalf("duplicate buffer insert should not grow index: %d", x.Len())
	}
	if p := x.Lookup(fp); p.Entry.Loc != 2 {
		t.Fatalf("buffered update lost: %+v", p)
	}
}

func TestFlushCollapsesTreeDuplicates(t *testing.T) {
	x := smallIndex(t, IndexConfig{BinBits: 0, BufferEntries: 2})
	fp := fpFor(1)
	x.Insert(fp, Entry{Loc: 1})
	x.Insert(fpFor(2), Entry{Loc: 2}) // flush: both in tree
	// Re-inserting fp (e.g. after its duplicate was missed) buffers a copy
	// that collapses into the tree entry at the next flush.
	x.Insert(fp, Entry{Loc: 9})
	x.Insert(fpFor(3), Entry{Loc: 3}) // flush again
	if x.Len() != 3 {
		t.Fatalf("len after collapse: got %d, want 3", x.Len())
	}
	if p := x.Lookup(fp); !p.Found || p.Entry.Loc != 9 {
		t.Fatalf("latest value should win: %+v", p)
	}
}

func TestFlushAll(t *testing.T) {
	x := smallIndex(t, IndexConfig{BinBits: 4, BufferEntries: 100})
	for i := 0; i < 40; i++ {
		x.Insert(fpFor(i), Entry{Loc: int64(i)})
	}
	if x.TreeEntries() != 0 {
		t.Fatal("nothing should have flushed yet")
	}
	flushes := x.FlushAll()
	if len(flushes) == 0 {
		t.Fatal("FlushAll returned nothing")
	}
	total := 0
	for _, f := range flushes {
		total += len(f.Entries)
	}
	if total != 40 || x.BufferedEntries() != 0 || x.TreeEntries() != 40 {
		t.Fatalf("flushall: total=%d buffered=%d tree=%d", total, x.BufferedEntries(), x.TreeEntries())
	}
}

func TestPrefixTruncationStillDeduplicates(t *testing.T) {
	x := smallIndex(t, IndexConfig{BinBits: 16, BufferEntries: 4, PrefixBytes: 2})
	if x.EntryBytes() != 30 {
		t.Fatalf("entry bytes: %d", x.EntryBytes())
	}
	for i := 0; i < 1000; i++ {
		x.Insert(fpFor(i), Entry{Loc: int64(i)})
	}
	for i := 0; i < 1000; i++ {
		if p := x.Lookup(fpFor(i)); !p.Found || p.Entry.Loc != int64(i) {
			t.Fatalf("truncated lookup %d failed: %+v", i, p)
		}
	}
	if p := x.Lookup(fpFor(5000)); p.Found {
		t.Fatal("false positive under truncation")
	}
	if x.MemoryBytes() != x.Len()*30 {
		t.Fatalf("memory accounting: %d", x.MemoryBytes())
	}
}

func TestRandomReplacementCap(t *testing.T) {
	x := smallIndex(t, IndexConfig{BinBits: 2, BufferEntries: 2, MaxEntries: 64, Seed: 1})
	for i := 0; i < 1000; i++ {
		x.Insert(fpFor(i), Entry{Loc: int64(i)})
	}
	if x.Len() > 64 {
		t.Fatalf("cap exceeded: %d", x.Len())
	}
	if x.Evicted() == 0 {
		t.Fatal("expected evictions")
	}
	// The index still works: a freshly inserted key is findable.
	fp := fpFor(99999)
	x.Insert(fp, Entry{Loc: 1})
	if p := x.Lookup(fp); !p.Found {
		t.Fatal("fresh insert missing after evictions")
	}
}

func TestCapEvictionCausesMissedDuplicates(t *testing.T) {
	// §3.1 accepts that a memory-only index "cannot find some duplicate
	// data"; with a tiny cap, early fingerprints must eventually miss.
	x := smallIndex(t, IndexConfig{BinBits: 2, BufferEntries: 2, MaxEntries: 16, Seed: 1})
	for i := 0; i < 500; i++ {
		x.Insert(fpFor(i), Entry{Loc: int64(i)})
	}
	missed := 0
	for i := 0; i < 100; i++ {
		if !x.Lookup(fpFor(i)).Found {
			missed++
		}
	}
	if missed == 0 {
		t.Fatal("tiny capped index should miss old duplicates")
	}
}

func TestBinDistribution(t *testing.T) {
	x := smallIndex(t, IndexConfig{BinBits: 4, BufferEntries: 1 << 20})
	counts := make([]int, 16)
	for i := 0; i < 16000; i++ {
		counts[x.BinOf(fpFor(i))]++
	}
	for b, c := range counts {
		if c < 500 || c > 1500 {
			t.Fatalf("bin %d skewed: %d of 16000 (SHA-1 should spread evenly)", b, c)
		}
	}
}

func TestProbeWorkCounts(t *testing.T) {
	x := smallIndex(t, IndexConfig{BinBits: 0, BufferEntries: 16})
	for i := 0; i < 8; i++ {
		x.Insert(fpFor(i), Entry{})
	}
	// A miss scans the whole buffer.
	p := x.Lookup(fpFor(100))
	if p.BufferScanned != 8 {
		t.Fatalf("miss should scan all 8 buffered entries, scanned %d", p.BufferScanned)
	}
	// The most recent insert is found on the first comparison
	// (newest-first scan = temporal locality).
	p = x.Lookup(fpFor(7))
	if p.BufferScanned != 1 {
		t.Fatalf("newest entry should hit immediately, scanned %d", p.BufferScanned)
	}
}

func TestIndexDeduplicatesStream(t *testing.T) {
	// End-to-end: a stream with a known duplicate pattern deduplicates to
	// exactly the unique count.
	x := smallIndex(t, DefaultIndexConfig())
	rng := rand.New(rand.NewSource(4))
	const unique = 500
	dups := 0
	for i := 0; i < 3000; i++ {
		fp := fpFor(rng.Intn(unique))
		if p := x.Lookup(fp); p.Found {
			dups++
			continue
		}
		x.Insert(fp, Entry{Loc: int64(i)})
	}
	if got := int(x.Len()); got > unique {
		t.Fatalf("unique entries: got %d, want <= %d", got, unique)
	}
	if dups != 3000-int(x.Len()) {
		t.Fatalf("dups (%d) + uniques (%d) != stream length", dups, x.Len())
	}
}

func TestRemove(t *testing.T) {
	x := smallIndex(t, IndexConfig{BinBits: 4, BufferEntries: 4})
	// One entry in the buffer, several flushed into the tree.
	for i := 0; i < 9; i++ {
		x.Insert(fpFor(i), Entry{Loc: int64(i)})
	}
	before := x.Len()
	removed, bufScanned, _ := x.Remove(fpFor(8))
	if !removed || bufScanned == 0 {
		t.Fatalf("buffered entry should be removable: removed=%v scanned=%d", removed, bufScanned)
	}
	if x.Lookup(fpFor(8)).Found {
		t.Fatal("removed entry still found")
	}
	// Remove a tree-resident entry.
	removed, _, treeSteps := x.Remove(fpFor(0))
	if !removed {
		t.Fatal("tree entry should be removable")
	}
	if treeSteps == 0 && x.TreeEntries() > 0 {
		// Depending on bin layout the entry may have been buffered; only
		// require that it is gone.
		t.Log("entry was buffered, not in tree")
	}
	if x.Lookup(fpFor(0)).Found {
		t.Fatal("removed tree entry still found")
	}
	if x.Len() != before-2 {
		t.Fatalf("len after removes: %d, want %d", x.Len(), before-2)
	}
	// Removing a missing key is a no-op.
	if removed, _, _ := x.Remove(fpFor(1000)); removed {
		t.Fatal("missing key reported removed")
	}
}

func TestRemoveThenReinsert(t *testing.T) {
	x := smallIndex(t, DefaultIndexConfig())
	fp := fpFor(42)
	x.Insert(fp, Entry{Loc: 1})
	x.Remove(fp)
	x.Insert(fp, Entry{Loc: 2})
	if p := x.Lookup(fp); !p.Found || p.Entry.Loc != 2 {
		t.Fatalf("reinsert after remove broken: %+v", p)
	}
}
