package dedup

import (
	"errors"
	"fmt"
	"testing"

	"inlinered/internal/fault"
)

// writtenSet maps bin|key to the last journaled entry, built from the
// ground-truth flush history (not by decoding the image).
type writtenSet map[string]Entry

func (ws writtenSet) add(f *Flush) {
	for _, e := range f.Entries {
		ws[fmt.Sprintf("%d|%x", f.Bin, e.key)] = e.val
	}
}

// buildJournal journals n inserts plus a final FlushAll and returns the
// writer and the ground-truth entry set.
func buildJournal(t *testing.T, cfg IndexConfig, n int) (*JournalWriter, writtenSet) {
	t.Helper()
	idx, err := NewBinIndex(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w := NewJournalWriter(cfg.PrefixBytes)
	ws := writtenSet{}
	for i := 0; i < n; i++ {
		if ir := idx.Insert(fpFor(i), Entry{Loc: int64(i), Size: uint32(i)}); ir.Flush != nil {
			w.Append(ir.Flush)
			ws.add(ir.Flush)
		}
	}
	for _, f := range idx.FlushAll() {
		w.Append(f)
		ws.add(f)
	}
	return w, ws
}

// checkNoPhantoms asserts every entry in the recovered index was actually
// journaled, with matching metadata.
func checkNoPhantoms(t *testing.T, rec *BinIndex, ws writtenSet) {
	t.Helper()
	rec.Walk(func(bin uint32, key []byte, e Entry) bool {
		want, ok := ws[fmt.Sprintf("%d|%x", bin, key)]
		if !ok {
			t.Fatalf("phantom entry: bin %d key %x", bin, key)
		}
		if e != want {
			t.Fatalf("bin %d key %x: recovered %+v, written %+v", bin, key, e, want)
		}
		return true
	})
}

// A torn record mid-journal truncates recovery there: every record before
// it is applied, everything at and after it (even intact records) is lost.
func TestRecoverTruncatesAtTornRecord(t *testing.T) {
	cfg := IndexConfig{BinBits: 4, BufferEntries: 4}
	idx, err := NewBinIndex(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w := NewJournalWriter(cfg.PrefixBytes)
	var flushes []*Flush
	for i := 0; flushes == nil || len(flushes) < 8; i++ {
		if ir := idx.Insert(fpFor(i), Entry{Loc: int64(i)}); ir.Flush != nil {
			flushes = append(flushes, ir.Flush)
		}
	}
	goodBefore := 5
	ws := writtenSet{}
	for i, f := range flushes {
		switch {
		case i < goodBefore:
			w.Append(f)
			ws.add(f)
		case i == goodBefore:
			w.AppendTorn(f, 0.5)
		default:
			w.Append(f) // unreachable by recovery: behind the tear
		}
	}
	if w.TornRecords() != 1 {
		t.Fatalf("TornRecords = %d", w.TornRecords())
	}

	rec, rcv, err := RecoverJournal(w.Bytes(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rcv.Truncated {
		t.Fatal("recovery must report truncation")
	}
	if rcv.Records != goodBefore {
		t.Fatalf("recovered %d records, want %d", rcv.Records, goodBefore)
	}
	if !errors.Is(rcv.Cause, ErrJournalCorrupt) {
		t.Fatalf("cause must wrap ErrJournalCorrupt, got %v", rcv.Cause)
	}
	checkNoPhantoms(t, rec, ws)
	want := 0
	for _, f := range flushes[:goodBefore] {
		want += len(f.Entries)
	}
	if int(rec.Len()) > want {
		t.Fatalf("recovered %d entries from %d journaled", rec.Len(), want)
	}

	// Strict replay of the same image must refuse it.
	if _, err := ReplayJournal(w.Bytes(), cfg); !errors.Is(err, ErrJournalCorrupt) {
		t.Fatalf("strict replay of torn image: want ErrJournalCorrupt, got %v", err)
	}
}

// Crash-point suite: cut the journal image at every byte boundary. Each
// prefix must recover without error into a consistent prefix of the flush
// history — never a phantom, never a half-applied record, and the set of
// recovered records grows monotonically with the cut point.
func TestRecoverAtEveryCut(t *testing.T) {
	cfg := IndexConfig{BinBits: 8, BufferEntries: 4, PrefixBytes: 1}
	w, ws := buildJournal(t, cfg, 200)
	image := w.Bytes()
	recs, rcv := ScanJournal(image, cfg)
	if rcv.Truncated || len(recs) < 4 {
		t.Fatalf("need a clean multi-record image, got %d records (truncated=%v)", len(recs), rcv.Truncated)
	}

	// complete[c] = number of records fully contained in image[:c].
	complete := make([]int, len(image)+1)
	n := 0
	for c := range complete {
		if n < len(recs) && c >= recs[n].Offset+recs[n].Size {
			n++
		}
		complete[c] = n
	}

	prevRecords := 0
	for cut := 0; cut <= len(image); cut++ {
		rec, rcv, err := RecoverJournal(image[:cut], cfg)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if rcv.Records != complete[cut] {
			t.Fatalf("cut %d: recovered %d records, want %d", cut, rcv.Records, complete[cut])
		}
		// A cut strictly inside a record leaves trailing torn bytes: that
		// must be reported. A cut exactly on a record boundary is a clean
		// prefix — no truncation flag.
		cleanBoundary := cut == 0 || (complete[cut] > 0 &&
			cut == recs[complete[cut]-1].Offset+recs[complete[cut]-1].Size)
		if rcv.Truncated == cleanBoundary {
			t.Fatalf("cut %d: Truncated=%v, clean boundary=%v", cut, rcv.Truncated, cleanBoundary)
		}
		if rcv.Records < prevRecords {
			t.Fatalf("cut %d: recovered records shrank (%d -> %d)", cut, prevRecords, rcv.Records)
		}
		prevRecords = rcv.Records
		checkNoPhantoms(t, rec, ws)
	}
}

// Flipping any single byte of the image must leave recovery panic-free and
// phantom-free: the CRC catches the damage and recovery keeps only records
// before the damaged one.
func TestRecoverSurvivesBitFlips(t *testing.T) {
	cfg := IndexConfig{BinBits: 4, BufferEntries: 4}
	w, ws := buildJournal(t, cfg, 200)
	image := w.Bytes()
	recs, _ := ScanJournal(image, cfg)

	flipped := make([]byte, len(image))
	for pos := 0; pos < len(image); pos++ {
		copy(flipped, image)
		flipped[pos] ^= 0x41
		rec, rcv, err := RecoverJournal(flipped, cfg)
		if err != nil {
			t.Fatalf("flip at %d: %v", pos, err)
		}
		checkNoPhantoms(t, rec, ws)
		// Records wholly before the flipped byte always survive.
		before := 0
		for _, r := range recs {
			if r.Offset+r.Size <= pos {
				before++
			}
		}
		if rcv.Records < before {
			t.Fatalf("flip at %d: recovered %d records, >= %d expected", pos, rcv.Records, before)
		}
	}
}

// The injector's torn-fraction stream drives AppendTorn deterministically:
// same seed, same image.
func TestTornFractionDeterministicImage(t *testing.T) {
	build := func() []byte {
		inj := fault.New(fault.Config{Seed: 7, Rates: fault.Rates{JournalTorn: 0.3}})
		cfg := IndexConfig{BinBits: 4, BufferEntries: 4}
		idx, _ := NewBinIndex(cfg)
		w := NewJournalWriter(cfg.PrefixBytes)
		for i := 0; i < 400; i++ {
			ir := idx.Insert(fpFor(i), Entry{Loc: int64(i)})
			if ir.Flush == nil {
				continue
			}
			if frac, torn := inj.TornFraction(); torn {
				w.AppendTorn(ir.Flush, frac)
				// A tear is a crash: nothing after it is journaled.
				return w.Bytes()
			}
			w.Append(ir.Flush)
		}
		return w.Bytes()
	}
	a, b := build(), build()
	if string(a) != string(b) {
		t.Fatal("same fault seed must produce identical torn images")
	}
}

// FuzzJournalReplay mutates a valid journal image (overwrite one byte,
// then cut at an arbitrary point) and requires lenient recovery to stay
// panic-free and to never yield an entry that was not journaled.
func FuzzJournalReplay(f *testing.F) {
	cfg := IndexConfig{BinBits: 8, BufferEntries: 4, PrefixBytes: 1}
	idx, err := NewBinIndex(cfg)
	if err != nil {
		f.Fatal(err)
	}
	w := NewJournalWriter(cfg.PrefixBytes)
	ws := writtenSet{}
	for i := 0; i < 400; i++ {
		if ir := idx.Insert(fpFor(i), Entry{Loc: int64(i), Size: uint32(i)}); ir.Flush != nil {
			w.Append(ir.Flush)
			ws.add(ir.Flush)
		}
	}
	image := w.Bytes()
	if len(image) == 0 {
		f.Fatal("seed image empty")
	}
	f.Add(uint32(0), byte(0xFF), uint32(len(image)))
	f.Add(uint32(len(image)/2), byte(0x00), uint32(len(image)/2))
	f.Add(uint32(5), byte(journalMagic), uint32(len(image)))
	f.Fuzz(func(t *testing.T, pos uint32, val byte, cut uint32) {
		img := make([]byte, len(image))
		copy(img, image)
		img[int(pos)%len(img)] = val
		img = img[:int(cut)%(len(img)+1)]

		rec, rcv, err := RecoverJournal(img, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if rcv.Truncated && !errors.Is(rcv.Cause, ErrJournalCorrupt) {
			t.Fatalf("truncation cause must wrap ErrJournalCorrupt: %v", rcv.Cause)
		}
		checkNoPhantoms(t, rec, ws)

		// Strict replay on the same image: either it accepts (and matches
		// the lenient result) or it reports corruption — never panics.
		if strict, err := ReplayJournal(img, cfg); err == nil {
			if strict.Len() != rec.Len() {
				t.Fatalf("strict (%d) and lenient (%d) disagree on a clean image", strict.Len(), rec.Len())
			}
		} else if !errors.Is(err, ErrJournalCorrupt) {
			t.Fatalf("strict replay error must wrap ErrJournalCorrupt: %v", err)
		}
	})
}
