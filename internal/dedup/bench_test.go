package dedup

import (
	"testing"

	"inlinered/internal/parallel"
)

func BenchmarkSum4K(b *testing.B) {
	data := make([]byte, 4096)
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		Sum(data)
	}
}

func BenchmarkParallelSumBatch(b *testing.B) {
	chunks := make([][]byte, 1024)
	for i := range chunks {
		chunks[i] = make([]byte, 4096)
		chunks[i][0] = byte(i)
	}
	b.SetBytes(int64(len(chunks)) * 4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ParallelSum(chunks, 8)
	}
}

// BenchmarkSumBatch is the pooled counterpart of BenchmarkParallelSumBatch:
// same 1024×4 KB batch, dispatched through a persistent parallel.Pool by a
// reused BatchHasher — the engine's actual hash stage. allocs/op is the
// regression guard for the zero-alloc dispatch.
func BenchmarkSumBatch(b *testing.B) {
	chunks := make([][]byte, 1024)
	for i := range chunks {
		chunks[i] = make([]byte, 4096)
		chunks[i][0] = byte(i)
	}
	pool := parallel.New(8)
	defer pool.Close()
	h := NewBatchHasher(pool)
	var fps []Fingerprint
	b.SetBytes(int64(len(chunks)) * 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fps = h.SumInto(fps, chunks)
	}
}

func BenchmarkBinIndexLookupHit(b *testing.B) {
	x, _ := NewBinIndex(DefaultIndexConfig())
	const n = 1 << 18
	fps := make([]Fingerprint, n)
	for i := range fps {
		fps[i] = fpFor(i)
		x.Insert(fps[i], Entry{Loc: int64(i)})
	}
	x.FlushAll()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if p := x.Lookup(fps[i%n]); !p.Found {
			b.Fatal("miss")
		}
	}
}

func BenchmarkBinIndexLookupMiss(b *testing.B) {
	x, _ := NewBinIndex(DefaultIndexConfig())
	const n = 1 << 18
	for i := 0; i < n; i++ {
		x.Insert(fpFor(i), Entry{Loc: int64(i)})
	}
	x.FlushAll()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if p := x.Lookup(fpFor(n + i)); p.Found {
			b.Fatal("false hit")
		}
	}
}

func BenchmarkBinIndexInsert(b *testing.B) {
	x, _ := NewBinIndex(DefaultIndexConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Insert(fpFor(i), Entry{Loc: int64(i)})
	}
}

func BenchmarkLockedMapLookupOrInsert(b *testing.B) {
	m := NewLockedMap()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			m.LookupOrInsert(fpFor(i%100000), Entry{Loc: int64(i)})
			i++
		}
	})
}

func BenchmarkParallelIndexer8Workers(b *testing.B) {
	fps := make([]Fingerprint, 1<<16)
	for i := range fps {
		fps[i] = fpFor(i % (1 << 14))
	}
	b.SetBytes(int64(len(fps)))
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		x, _ := NewBinIndex(DefaultIndexConfig())
		pi := NewParallelIndexer(x, 8)
		b.StartTimer()
		pi.Process(fps, func(i int) Entry { return Entry{Loc: int64(i)} })
	}
}
