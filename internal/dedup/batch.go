package dedup

import (
	"inlinered/internal/parallel"
)

// BatchHasher fingerprints slices of chunks through a persistent
// parallel.Pool with zero steady-state allocations: the job closure is
// built once at construction and the batch inputs are threaded through
// fields, so a Map dispatch captures nothing per call. This replaces the
// goroutine-per-batch fan-out of ParallelSumInto on the engine's hot
// path — hashing has no cross-chunk dependency (§3.1), so the pool's
// atomic batch claiming is all the coordination the stage needs.
//
// A BatchHasher is owned by one dispatching goroutine; concurrent SumInto
// calls on the same hasher would race on the staged batch fields. The
// hashing itself fans out across the pool's workers.
type BatchHasher struct {
	pool   *parallel.Pool
	chunks [][]byte
	out    []Fingerprint
	fn     func(int)
}

// NewBatchHasher returns a hasher that dispatches on pool.
func NewBatchHasher(pool *parallel.Pool) *BatchHasher {
	h := &BatchHasher{pool: pool}
	h.fn = func(i int) { h.out[i] = Sum(h.chunks[i]) }
	return h
}

// SumInto fingerprints chunks into dst, growing it only when its capacity
// is insufficient; results are positionally aligned with chunks. Callers
// that recycle batches feed the previous return back in and reach a
// steady state with no allocations per batch.
func (h *BatchHasher) SumInto(dst []Fingerprint, chunks [][]byte) []Fingerprint {
	var out []Fingerprint
	if cap(dst) >= len(chunks) {
		out = dst[:len(chunks)]
	} else {
		out = make([]Fingerprint, len(chunks))
	}
	if len(chunks) == 0 {
		return out
	}
	h.chunks, h.out = chunks, out
	h.pool.Map(len(chunks), h.fn)
	// Drop the batch references so chunk payload buffers can be recycled
	// (or collected) without the hasher pinning them.
	h.chunks, h.out = nil, nil
	return out
}

// SumBatch fingerprints chunks through pool in one call — the convenience
// form for callers without a batch loop. Loop callers should hold a
// BatchHasher and use SumInto to amortize the dispatch state.
func SumBatch(pool *parallel.Pool, chunks [][]byte) []Fingerprint {
	return NewBatchHasher(pool).SumInto(nil, chunks)
}
