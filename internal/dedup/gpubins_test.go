package dedup

import (
	"testing"
	"time"

	"inlinered/internal/gpu"
)

func testDevice() *gpu.Device {
	cfg := gpu.DefaultConfig()
	cfg.DeviceMemBytes = 64 << 20
	return gpu.New(cfg)
}

func newTestGPUBins(t *testing.T, dev *gpu.Device, binBits, capPerBin, prefixBytes int) *GPUBins {
	t.Helper()
	g, err := NewGPUBins(dev, binBits, capPerBin, prefixBytes, 1)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewGPUBinsValidation(t *testing.T) {
	dev := testDevice()
	cases := []struct{ bits, cap, prefix int }{
		{-1, 4, 0},
		{25, 4, 0},
		{4, 0, 0},
		{4, 4, 1}, // prefix needs 8 bin bits
	}
	for i, c := range cases {
		if _, err := NewGPUBins(dev, c.bits, c.cap, c.prefix, 1); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
	// Out of device memory.
	small := gpu.DefaultConfig()
	small.DeviceMemBytes = 16
	if _, err := NewGPUBins(gpu.New(small), 12, 1024, 0, 1); err == nil {
		t.Fatal("allocation should exceed tiny device memory")
	}
}

func TestGPUBinsUpdateThenIndex(t *testing.T) {
	dev := testDevice()
	g := newTestGPUBins(t, dev, 8, 16, 0)

	fps := []Fingerprint{fpFor(1), fpFor(2), fpFor(3)}
	for i, fp := range fps {
		bin := fp.Bin(8)
		_, err := g.Update(0, bin, [][]byte{fp.Suffix(0)}, []Entry{{Loc: int64(100 + i)}})
		if err != nil {
			t.Fatal(err)
		}
	}
	if g.Len() != 3 {
		t.Fatalf("resident entries: %d", g.Len())
	}

	batch := []Fingerprint{fpFor(1), fpFor(99), fpFor(3)}
	done, hits, prof, _ := g.BatchIndex(0, batch)
	if done <= 0 {
		t.Fatal("batch index must consume virtual time")
	}
	if !hits[0].Found || hits[0].Entry.Loc != 100 {
		t.Fatalf("hit 0: %+v", hits[0])
	}
	if hits[1].Found {
		t.Fatal("unknown fingerprint reported found")
	}
	if !hits[2].Found || hits[2].Entry.Loc != 102 {
		t.Fatalf("hit 2: %+v", hits[2])
	}
	if prof.Items != 3 {
		t.Fatalf("profile items: %d", prof.Items)
	}
	h, m, _ := g.Stats()
	if h != 2 || m != 1 {
		t.Fatalf("stats: hits=%d misses=%d", h, m)
	}
}

func TestGPUBinsEmptyBatch(t *testing.T) {
	g := newTestGPUBins(t, testDevice(), 4, 4, 0)
	done, hits, prof, _ := g.BatchIndex(5*time.Microsecond, nil)
	if done != 5*time.Microsecond || hits != nil || prof.Items != 0 {
		t.Fatal("empty batch should be free")
	}
}

func TestGPUBinsLaunchOverheadDominatesSmallBatches(t *testing.T) {
	// The §3.1(3) effect: per-item time shrinks with batch size, but the
	// total never drops below the launch overhead.
	dev := testDevice()
	g := newTestGPUBins(t, dev, 8, 64, 0)
	done1, _, _, _ := g.BatchIndex(0, []Fingerprint{fpFor(1)})
	if done1 < dev.LaunchOverhead {
		t.Fatalf("one-item batch beat the launch floor: %v < %v", done1, dev.LaunchOverhead)
	}
	start := dev.NextFree()
	big := make([]Fingerprint, 4096)
	for i := range big {
		big[i] = fpFor(i)
	}
	done2, _, _, _ := g.BatchIndex(start, big)
	perItemSmall := done1
	perItemBig := (done2 - start) / 4096
	if perItemBig >= perItemSmall {
		t.Fatalf("batching should amortize the launch floor: %v/item vs %v/item", perItemBig, perItemSmall)
	}
}

func TestGPUBinsRandomReplacement(t *testing.T) {
	dev := testDevice()
	g := newTestGPUBins(t, dev, 0, 8, 0) // one bin, 8 slots
	for i := 0; i < 50; i++ {
		fp := fpFor(i)
		if _, err := g.Update(0, 0, [][]byte{fp.Suffix(0)}, []Entry{{Loc: int64(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	if g.Len() != 8 {
		t.Fatalf("full bin should stay at capacity: %d", g.Len())
	}
	_, _, replaced := g.Stats()
	if replaced != 42 {
		t.Fatalf("replacements: got %d, want 42", replaced)
	}
	// Whatever survived must be resolvable with correct metadata.
	batch := make([]Fingerprint, 50)
	for i := range batch {
		batch[i] = fpFor(i)
	}
	_, hits, _, _ := g.BatchIndex(0, batch)
	found := 0
	for i, h := range hits {
		if h.Found {
			found++
			if h.Entry.Loc != int64(i) {
				t.Fatalf("survivor %d has wrong metadata: %+v", i, h.Entry)
			}
		}
	}
	if found != 8 {
		t.Fatalf("survivors: got %d, want 8", found)
	}
}

func TestGPUBinsUpdateValidation(t *testing.T) {
	g := newTestGPUBins(t, testDevice(), 4, 4, 0)
	if _, err := g.Update(0, 999, nil, nil); err == nil {
		t.Fatal("out-of-range bin should error")
	}
	if _, err := g.Update(0, 0, [][]byte{{1}}, []Entry{{}, {}}); err == nil {
		t.Fatal("misaligned keys/values should error")
	}
	if _, err := g.Update(0, 0, [][]byte{{1, 2}}, []Entry{{}}); err == nil {
		t.Fatal("wrong key size should error")
	}
}

func TestGPUBinsWithPrefixTruncation(t *testing.T) {
	dev := testDevice()
	g := newTestGPUBins(t, dev, 16, 8, 2)
	if g.DeviceBytes() != (1<<16)*8*18 {
		t.Fatalf("device bytes: %d", g.DeviceBytes())
	}
	fp := fpFor(7)
	if _, err := g.Update(0, fp.Bin(16), [][]byte{fp.Suffix(2)}, []Entry{{Loc: 7}}); err != nil {
		t.Fatal(err)
	}
	_, hits, _, _ := g.BatchIndex(0, []Fingerprint{fp, fpFor(8)})
	if !hits[0].Found || hits[0].Entry.Loc != 7 || hits[1].Found {
		t.Fatalf("truncated GPU index broken: %+v", hits)
	}
}

func TestGPUBinsDivergenceFromUnevenBins(t *testing.T) {
	// Items probing bins of very different fill levels in the same
	// wavefront must produce divergence > 1.
	dev := testDevice()
	g := newTestGPUBins(t, dev, 8, 64, 0)
	// Fill one bin heavily.
	var heavy Fingerprint
	for i := 0; ; i++ {
		if fpFor(i).Bin(8) == 0 {
			heavy = fpFor(i)
			break
		}
	}
	for i := 0; i < 64; i++ {
		k := heavy.Suffix(0)
		k[19] = byte(i) // distinct keys in bin 0
		if _, err := g.Update(0, 0, [][]byte{k}, []Entry{{}}); err != nil {
			t.Fatal(err)
		}
	}
	batch := make([]Fingerprint, 64)
	for i := range batch {
		batch[i] = fpFor(i + 1000) // misses across many bins, most empty
	}
	batch[0] = heavy // forces a long scan in lane 0
	_, _, prof, _ := g.BatchIndex(0, batch)
	if f := prof.DivergenceFactor(dev.WavefrontSize); f <= 1.0 {
		t.Fatalf("expected SIMT divergence > 1, got %g", f)
	}
}
