// Package dedup implements the deduplication half of the paper's inline
// data reduction pipeline: SHA-1 chunk fingerprinting, the bin-based
// in-memory index of §3.1 (bin buffer + bin tree per bin, hash-prefix
// truncation, lock-free parallel indexing by bin ownership), a global
// locked-table baseline for the scaling ablation, and the GPU-resident
// linear bin tables of §3.1(2) with their batch indexing kernel.
package dedup

import (
	"crypto/sha1"
	"encoding/binary"
	"encoding/hex"
)

// FingerprintSize is the size of a chunk fingerprint (SHA-1, as in the
// paper's 20-byte hashes).
const FingerprintSize = sha1.Size

// Fingerprint identifies a chunk's content.
type Fingerprint [FingerprintSize]byte

// Sum fingerprints a chunk payload.
func Sum(data []byte) Fingerprint { return sha1.Sum(data) }

// String renders the fingerprint in hex.
func (f Fingerprint) String() string { return hex.EncodeToString(f[:]) }

// Bin returns the bin this fingerprint belongs to, selected from the
// fingerprint's leading bits so that prefix truncation (which drops leading
// bytes) never discards information the bin id does not already imply.
func (f Fingerprint) Bin(bits int) uint32 {
	if bits <= 0 {
		return 0
	}
	if bits > 32 {
		bits = 32
	}
	v := binary.BigEndian.Uint32(f[:4])
	return v >> (32 - uint(bits))
}

// Suffix returns the stored portion of the fingerprint after dropping
// prefixBytes leading bytes (§3.1's memory optimization: with the prefix
// implied by the bin id, only 20-n bytes per hash are kept).
func (f Fingerprint) Suffix(prefixBytes int) []byte {
	if prefixBytes < 0 {
		prefixBytes = 0
	}
	if prefixBytes > FingerprintSize {
		prefixBytes = FingerprintSize
	}
	s := make([]byte, FingerprintSize-prefixBytes)
	copy(s, f[prefixBytes:])
	return s
}

// Entry is the host-side metadata kept per indexed chunk. Together with the
// stored hash suffix this forms the paper's 32-byte index entry (20-byte
// SHA-1 + 12 bytes of metadata).
type Entry struct {
	Loc  int64  // location of the stored (compressed) chunk on the SSD
	Size uint32 // stored size in bytes
}

// EntryMetadataBytes is the metadata size per index entry.
const EntryMetadataBytes = 12

// EntryBytes returns the in-memory size of one index entry under a given
// prefix truncation, matching the paper's arithmetic (32 bytes at n=0).
func EntryBytes(prefixBytes int) int {
	if prefixBytes < 0 {
		prefixBytes = 0
	}
	if prefixBytes > FingerprintSize {
		prefixBytes = FingerprintSize
	}
	return FingerprintSize - prefixBytes + EntryMetadataBytes
}
