package dedup

import (
	"encoding/binary"
	"math/rand"
	"sync"
	"testing"
)

func TestParallelSumMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	chunks := make([][]byte, 257)
	for i := range chunks {
		chunks[i] = make([]byte, rng.Intn(4096))
		rng.Read(chunks[i])
	}
	want := make([]Fingerprint, len(chunks))
	for i, c := range chunks {
		want[i] = Sum(c)
	}
	for _, workers := range []int{1, 2, 7, 64, 1000} {
		got := ParallelSum(chunks, workers)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d chunk %d mismatch", workers, i)
			}
		}
	}
}

func TestParallelSumEmptyAndClamp(t *testing.T) {
	if got := ParallelSum(nil, 4); len(got) != 0 {
		t.Fatal("empty batch should produce empty result")
	}
	got := ParallelSum([][]byte{{1}}, 0) // workers clamped to 1
	if got[0] != Sum([]byte{1}) {
		t.Fatal("clamped workers broke hashing")
	}
}

func TestParallelIndexerMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	fps := make([]Fingerprint, 5000)
	for i := range fps {
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], uint64(rng.Intn(1200)))
		fps[i] = Sum(b[:])
	}
	run := func(workers int) (found []bool, entries int64) {
		x, err := NewBinIndex(IndexConfig{BinBits: 8, BufferEntries: 8})
		if err != nil {
			t.Fatal(err)
		}
		pi := NewParallelIndexer(x, workers)
		res, _ := pi.Process(fps, func(i int) Entry { return Entry{Loc: int64(i)} })
		found = make([]bool, len(res))
		for i, r := range res {
			found[i] = r.Probe.Found
		}
		return found, x.Len()
	}
	f1, n1 := run(1)
	for _, w := range []int{2, 4, 8} {
		fw, nw := run(w)
		if nw != n1 {
			t.Fatalf("workers=%d unique count %d != serial %d", w, nw, n1)
		}
		for i := range fw {
			if fw[i] != f1[i] {
				t.Fatalf("workers=%d item %d dup decision differs", w, i)
			}
		}
	}
}

func TestParallelIndexerWorkAccounting(t *testing.T) {
	x, _ := NewBinIndex(IndexConfig{BinBits: 6, BufferEntries: 4})
	pi := NewParallelIndexer(x, 4)
	fps := make([]Fingerprint, 300)
	for i := range fps {
		fps[i] = fpFor(i)
	}
	res, work := pi.Process(fps, func(i int) Entry { return Entry{Loc: int64(i)} })
	items := 0
	for _, w := range work {
		items += w.Items
	}
	if items != len(fps) {
		t.Fatalf("work items %d != batch %d", items, len(fps))
	}
	flushes := 0
	for _, w := range work {
		flushes += len(w.Flushes)
	}
	if flushes == 0 {
		t.Fatal("4-entry buffers over 300 uniques must flush")
	}
	for i, r := range res {
		if r.Probe.Found {
			t.Fatalf("item %d: all-unique stream reported a duplicate", i)
		}
	}
}

func TestParallelIndexerRejectsCappedIndex(t *testing.T) {
	x, _ := NewBinIndex(IndexConfig{BinBits: 4, BufferEntries: 4, MaxEntries: 10})
	defer func() {
		if recover() == nil {
			t.Fatal("capped index with >1 worker should panic")
		}
	}()
	NewParallelIndexer(x, 2)
}

func TestParallelIndexerFirstOccurrenceSemantics(t *testing.T) {
	// Every duplicate must resolve to the Entry of its first occurrence.
	x, _ := NewBinIndex(IndexConfig{BinBits: 6, BufferEntries: 1 << 16})
	pi := NewParallelIndexer(x, 8)
	fps := make([]Fingerprint, 0, 2000)
	for i := 0; i < 1000; i++ {
		fps = append(fps, fpFor(i))
	}
	for i := 0; i < 1000; i++ { // second pass: all duplicates
		fps = append(fps, fpFor(i))
	}
	res, _ := pi.Process(fps, func(i int) Entry { return Entry{Loc: int64(i)} })
	for i := 0; i < 1000; i++ {
		if res[i].Probe.Found {
			t.Fatalf("first occurrence %d reported duplicate", i)
		}
		d := res[1000+i]
		if !d.Probe.Found {
			t.Fatalf("second occurrence %d not deduplicated", i)
		}
		if d.Probe.Entry.Loc != int64(i) {
			t.Fatalf("dup %d resolved to loc %d, want %d", i, d.Probe.Entry.Loc, i)
		}
	}
}

func TestLockedMapBasics(t *testing.T) {
	m := NewLockedMap()
	fp := fpFor(1)
	if _, ok := m.Lookup(fp); ok {
		t.Fatal("empty map hit")
	}
	m.Insert(fp, Entry{Loc: 5})
	if e, ok := m.Lookup(fp); !ok || e.Loc != 5 {
		t.Fatalf("lookup: %v %v", e, ok)
	}
	e, dup := m.LookupOrInsert(fp, Entry{Loc: 9})
	if !dup || e.Loc != 5 {
		t.Fatalf("LookupOrInsert dup: %v %v", e, dup)
	}
	_, dup = m.LookupOrInsert(fpFor(2), Entry{Loc: 9})
	if dup {
		t.Fatal("fresh key reported dup")
	}
	if m.Len() != 2 {
		t.Fatalf("len: %d", m.Len())
	}
	lookups, inserts := m.Ops()
	if lookups != 4 || inserts != 2 {
		t.Fatalf("ops: %d lookups %d inserts", lookups, inserts)
	}
}

func TestLockedMapConcurrent(t *testing.T) {
	// Run with -race: the global lock must make concurrent use safe.
	m := NewLockedMap()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				m.LookupOrInsert(fpFor(i), Entry{Loc: int64(i)})
			}
		}(w)
	}
	wg.Wait()
	if m.Len() != 500 {
		t.Fatalf("len: %d, want 500", m.Len())
	}
}
