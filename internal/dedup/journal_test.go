package dedup

import (
	"errors"
	"testing"
)

// buildJournaledIndex inserts n fingerprints, journaling every flush, and
// returns the live index, the journal, and the fingerprints.
func buildJournaledIndex(t *testing.T, cfg IndexConfig, n int) (*BinIndex, *JournalWriter, []Fingerprint) {
	t.Helper()
	idx, err := NewBinIndex(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w := NewJournalWriter(cfg.PrefixBytes)
	fps := make([]Fingerprint, n)
	for i := range fps {
		fps[i] = fpFor(i)
		ir := idx.Insert(fps[i], Entry{Loc: int64(i), Size: uint32(i % 1000)})
		if ir.Flush != nil {
			w.Append(ir.Flush)
		}
	}
	return idx, w, fps
}

func TestJournalReplayRecoversFlushedEntries(t *testing.T) {
	cfg := IndexConfig{BinBits: 6, BufferEntries: 8}
	live, w, fps := buildJournaledIndex(t, cfg, 5000)
	if w.Records() == 0 {
		t.Fatal("no flushes journaled")
	}
	rec, err := ReplayJournal(w.Bytes(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Everything the live index flushed to its trees must be recovered,
	// with identical metadata.
	if int(rec.Len()) != live.TreeEntries() {
		t.Fatalf("recovered %d entries, live trees hold %d", rec.Len(), live.TreeEntries())
	}
	recoveredHits := 0
	for i, fp := range fps {
		p := rec.Lookup(fp)
		if !p.Found {
			continue
		}
		recoveredHits++
		if p.Entry.Loc != int64(i) || p.Entry.Size != uint32(i%1000) {
			t.Fatalf("fp %d recovered with wrong metadata: %+v", i, p.Entry)
		}
	}
	if recoveredHits != live.TreeEntries() {
		t.Fatalf("recovered hits %d != tree entries %d", recoveredHits, live.TreeEntries())
	}
	// Entries still buffered at the crash are lost — the documented
	// tradeoff.
	if live.BufferedEntries() == 0 {
		t.Fatal("test needs some unflushed entries to be meaningful")
	}
}

func TestJournalReplayAfterFlushAllIsComplete(t *testing.T) {
	cfg := IndexConfig{BinBits: 4, BufferEntries: 4}
	live, w, fps := buildJournaledIndex(t, cfg, 1000)
	for _, f := range live.FlushAll() {
		w.Append(f)
	}
	rec, err := ReplayJournal(w.Bytes(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, fp := range fps {
		if p := rec.Lookup(fp); !p.Found || p.Entry.Loc != int64(i) {
			t.Fatalf("fp %d missing after clean-shutdown replay", i)
		}
	}
	if rec.Len() != live.Len() {
		t.Fatalf("recovered %d vs live %d", rec.Len(), live.Len())
	}
}

func TestJournalWithPrefixTruncation(t *testing.T) {
	cfg := IndexConfig{BinBits: 16, BufferEntries: 4, PrefixBytes: 2}
	live, w, fps := buildJournaledIndex(t, cfg, 500)
	for _, f := range live.FlushAll() {
		w.Append(f)
	}
	rec, err := ReplayJournal(w.Bytes(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, fp := range fps {
		if p := rec.Lookup(fp); !p.Found {
			t.Fatalf("truncated fp %d missing after replay", i)
		}
	}
}

func TestJournalRejectsCorruption(t *testing.T) {
	cfg := IndexConfig{BinBits: 4, BufferEntries: 4}
	live, w, _ := buildJournaledIndex(t, cfg, 200)
	for _, f := range live.FlushAll() {
		w.Append(f)
	}
	good := w.Bytes()

	cases := map[string][]byte{
		"bad magic":  append([]byte{0xFF}, good[1:]...),
		"truncated":  good[:len(good)/2],
		"bin range":  {journalMagic, 0xFF, 0xFF, 0x01, 0x01},
		"junk count": {journalMagic, 0x01},
	}
	for name, img := range cases {
		if _, err := ReplayJournal(img, cfg); !errors.Is(err, ErrJournalCorrupt) {
			t.Errorf("%s: want ErrJournalCorrupt, got %v", name, err)
		}
	}
	// Mismatched config (different key width) must fail, not mis-replay.
	if _, err := ReplayJournal(good, IndexConfig{BinBits: 16, BufferEntries: 4, PrefixBytes: 2}); err == nil {
		t.Error("replay with mismatched prefix should fail")
	}
}

func TestJournalEmptyImage(t *testing.T) {
	cfg := DefaultIndexConfig()
	rec, err := ReplayJournal(nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Len() != 0 {
		t.Fatal("empty journal should recover an empty index")
	}
}

func TestJournalWriterClampsPrefix(t *testing.T) {
	if NewJournalWriter(-1) == nil || NewJournalWriter(100) == nil {
		t.Fatal("writer should clamp silly prefixes")
	}
}
