package dedup

import (
	"bytes"
	"fmt"
	"math/rand"
	"time"

	"inlinered/internal/gpu"
)

// GPUBins is the device-resident half of the index described in §3.1(2):
// every bin is a *linear* table of hash suffixes in device memory (not a
// tree), because contiguous layout lets wavefront lanes stage entries
// through local memory without branch-heavy pointer chasing. Only the hash
// values live on the device; per-chunk metadata stays in host memory and is
// resolved from the kernel's (hit, slot) result pairs, so device updates are
// plain array writes with no tree maintenance.
type GPUBins struct {
	dev       *gpu.Device
	buf       *gpu.Buffer
	binBits   int
	keySize   int
	capPerBin int
	counts    []int32   // host shadow of per-bin fill level
	meta      [][]Entry // host-side metadata per (bin, slot)
	// slots maps key bytes -> slot within the key's bin. The simulated
	// kernel's result is defined by a linear scan of the bin (and is
	// *costed* as one), but the scan's outcome — the first slot holding the
	// key, or a full-bin miss — is computed through this shadow in O(1) so
	// multi-gigabyte runs don't pay O(bin) wall-clock per probe.
	slots    map[string]int32
	rng      *rand.Rand
	hits     int64
	misses   int64
	replaced int64
}

// GPUHit is one item's batch-indexing outcome.
type GPUHit struct {
	Found bool
	Entry Entry
}

// NewGPUBins allocates device-resident bins: 2^binBits bins of capPerBin
// suffix slots each. prefixBytes matches the host index's truncation so the
// same key bytes are compared on both sides.
func NewGPUBins(dev *gpu.Device, binBits, capPerBin, prefixBytes, seed int) (*GPUBins, error) {
	if binBits < 0 || binBits > 24 {
		return nil, fmt.Errorf("dedup: gpu binBits must be in [0,24], got %d", binBits)
	}
	if capPerBin < 1 {
		return nil, fmt.Errorf("dedup: gpu capPerBin must be >= 1, got %d", capPerBin)
	}
	if prefixBytes < 0 || 8*prefixBytes > binBits {
		return nil, fmt.Errorf("dedup: gpu prefixBytes=%d needs binBits >= %d", prefixBytes, 8*prefixBytes)
	}
	bins := 1 << uint(binBits)
	keySize := FingerprintSize - prefixBytes
	buf, err := dev.Alloc("dedup-bins", bins*capPerBin*keySize)
	if err != nil {
		return nil, err
	}
	return &GPUBins{
		dev:       dev,
		buf:       buf,
		binBits:   binBits,
		keySize:   keySize,
		capPerBin: capPerBin,
		counts:    make([]int32, bins),
		meta:      make([][]Entry, bins),
		slots:     make(map[string]int32),
		rng:       rand.New(rand.NewSource(int64(seed))),
	}, nil
}

// Bins returns the bin count.
func (g *GPUBins) Bins() int { return len(g.counts) }

// Len returns the number of resident device entries.
func (g *GPUBins) Len() int {
	n := 0
	for _, c := range g.counts {
		n += int(c)
	}
	return n
}

// DeviceBytes returns the device-memory footprint of the bins.
func (g *GPUBins) DeviceBytes() int { return g.buf.Size() }

// Stats returns cumulative hit, miss, and random-replacement counts.
func (g *GPUBins) Stats() (hits, misses, replaced int64) {
	return g.hits, g.misses, g.replaced
}

func (g *GPUBins) slot(bin uint32, s int32) []byte {
	off := (int(bin)*g.capPerBin + int(s)) * g.keySize
	return g.buf.Data[off : off+g.keySize]
}

// BatchIndex probes a batch of fingerprints against the device bins: the
// hashes are DMAed to the device, one kernel thread per hash scans its
// bin's linear table, and the (hit, slot) pairs come back over PCIe; hits
// are resolved to Entry metadata host-side. It returns the completion time
// of the whole round trip and the per-item outcomes.
//
// Per §3.1(2), lanes in a wavefront run in lockstep, so a wavefront's scan
// costs its longest lane — the profile is built from the real per-item scan
// lengths.
// A lost device fails the batch with fault.ErrDeviceLost before any outcome
// is produced; the caller falls back to the host index.
func (g *GPUBins) BatchIndex(at time.Duration, fps []Fingerprint) (time.Duration, []GPUHit, gpu.Profile, error) {
	if len(fps) == 0 {
		return at, nil, gpu.Profile{}, nil
	}
	// Host -> device: the hash values only (metadata never crosses, §3.1(2)).
	t := g.dev.TransferToDevice(at, len(fps)*FingerprintSize)

	hits := make([]GPUHit, len(fps))
	cost := g.dev.Cost
	perItem := make([]float64, len(fps))
	var localBytes int64
	kernel := gpu.KernelFunc{Label: "bin-index", Fn: func() gpu.Profile {
		for i, fp := range fps {
			bin := fp.Bin(g.binBits)
			key := fp.Suffix(FingerprintSize - g.keySize)
			// Linear-scan outcome: the first slot holding the key, or a
			// full scan of the bin on a miss. The shadow map computes the
			// same outcome in O(1); sanity of the shadow is checked against
			// the device bytes.
			scanned := int(g.counts[bin])
			if s, ok := g.slots[string(key)]; ok {
				if !bytes.Equal(g.slot(bin, s), key) {
					panic("dedup: gpu slot shadow out of sync with device memory")
				}
				hits[i] = GPUHit{Found: true, Entry: g.meta[bin][s]}
				scanned = int(s) + 1
			}
			perItem[i] = cost.ProbeBaseCycles + float64(scanned)*cost.ProbeEntryCycles
			localBytes += int64(scanned * g.keySize)
		}
		p := gpu.Wavefronts(perItem, g.dev.WavefrontSize)
		p.LocalBytes = localBytes
		return p
	}}
	t, prof, err := g.dev.Launch(t, kernel)
	if err != nil {
		return t, nil, gpu.Profile{}, err
	}

	// Device -> host: one (hit, slot) pair per item.
	t = g.dev.TransferFromDevice(t, len(fps)*8)

	for _, h := range hits {
		if h.Found {
			g.hits++
		} else {
			g.misses++
		}
	}
	return t, hits, prof, nil
}

// Update pushes a flushed bin-buffer batch into the device bin, appending
// while there is room and falling back to the random replacement policy of
// §3.3 when the linear table is full. Because the bins are plain linear
// arrays, the update is "a direct update process" (§3.1(2)): the host
// computes the slot placements and DMAs the key bytes straight into the
// table — no kernel launch and "no other hash table update overhead on the
// GPU". Only the PCIe transfer is charged.
func (g *GPUBins) Update(at time.Duration, bin uint32, keys [][]byte, vals []Entry) (time.Duration, error) {
	if int(bin) >= len(g.counts) {
		return at, fmt.Errorf("dedup: gpu bin %d out of range (%d bins)", bin, len(g.counts))
	}
	if len(keys) != len(vals) {
		return at, fmt.Errorf("dedup: gpu update keys (%d) and values (%d) misaligned", len(keys), len(vals))
	}
	for i, key := range keys {
		if len(key) != g.keySize {
			return at, fmt.Errorf("dedup: gpu update key %d has %d bytes, want %d", i, len(key), g.keySize)
		}
		var s int32
		if int(g.counts[bin]) < g.capPerBin {
			s = g.counts[bin]
			g.counts[bin]++
			g.meta[bin] = append(g.meta[bin], Entry{})
		} else {
			s = int32(g.rng.Intn(g.capPerBin))
			g.replaced++
			delete(g.slots, string(g.slot(bin, s)))
		}
		copy(g.slot(bin, s), key)
		g.meta[bin][s] = vals[i]
		g.slots[string(key)] = s
	}
	return g.dev.TransferToDevice(at, len(keys)*g.keySize), nil
}
