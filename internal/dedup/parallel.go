package dedup

import (
	"crypto/sha1"
	"fmt"
	"sync"
)

// ParallelSum fingerprints a batch of chunks across workers goroutines.
// Hashing has no cross-chunk dependency (§3.1), so this is embarrassingly
// parallel; results are positionally aligned with the input.
func ParallelSum(chunks [][]byte, workers int) []Fingerprint {
	return ParallelSumInto(nil, chunks, workers)
}

// ParallelSumInto is ParallelSum writing into dst, which is grown only
// when its capacity is insufficient — callers that recycle batches reuse
// one fingerprint slice for the whole run.
func ParallelSumInto(dst []Fingerprint, chunks [][]byte, workers int) []Fingerprint {
	if workers < 1 {
		workers = 1
	}
	var out []Fingerprint
	if cap(dst) >= len(chunks) {
		out = dst[:len(chunks)]
	} else {
		out = make([]Fingerprint, len(chunks))
	}
	if len(chunks) == 0 {
		return out
	}
	if workers > len(chunks) {
		workers = len(chunks)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := sha1.New()
			for i := w; i < len(chunks); i += workers {
				h.Reset()
				h.Write(chunks[i])
				h.Sum(out[i][:0])
			}
		}(w)
	}
	wg.Wait()
	return out
}

// ItemResult is the outcome of indexing one chunk in a batch.
type ItemResult struct {
	Probe  Probe        // what the lookup did
	Insert InsertResult // what the insert did (zero when Probe.Found)
}

// WorkerWork aggregates the index work one worker performed, for costing.
type WorkerWork struct {
	Items         int
	BufferScanned int
	TreeSteps     int
	Flushes       []*Flush
}

// ParallelIndexer drives a BinIndex from several goroutines without any
// locking, using the paper's partitioning argument: each bin is owned by
// exactly one worker (bin mod workers), so no two goroutines ever touch the
// same bin. Items that share a fingerprint land in the same bin and are
// processed in stream order by its owner, preserving first-occurrence
// semantics.
type ParallelIndexer struct {
	Index   *BinIndex
	Workers int
}

// NewParallelIndexer returns an indexer over idx with the given worker
// count. It panics if workers < 1.
func NewParallelIndexer(idx *BinIndex, workers int) *ParallelIndexer {
	if workers < 1 {
		panic(fmt.Sprintf("dedup: need >= 1 worker, got %d", workers))
	}
	if idx.Config().MaxEntries != 0 && workers > 1 {
		// The random replacement policy shares one RNG and may evict from
		// other workers' bins, so capped indexes must be driven serially.
		panic("dedup: capped indexes (MaxEntries > 0) cannot be driven by multiple workers")
	}
	return &ParallelIndexer{Index: idx, Workers: workers}
}

// Process indexes a batch: for each fingerprint it performs a lookup and,
// on a miss, inserts the entry produced by makeEntry(i). Results are
// positionally aligned with fps; the per-worker work summaries let the
// simulation cost each worker's virtual time independently.
func (p *ParallelIndexer) Process(fps []Fingerprint, makeEntry func(i int) Entry) ([]ItemResult, []WorkerWork) {
	return p.ProcessInto(nil, nil, fps, makeEntry)
}

// ProcessInto is Process writing into caller-provided result slices, which
// are grown only when their capacity is insufficient; repeated batches can
// feed the previous call's returns back in to amortize the allocation.
// Passing nil for either slice allocates it fresh.
func (p *ParallelIndexer) ProcessInto(results []ItemResult, work []WorkerWork, fps []Fingerprint, makeEntry func(i int) Entry) ([]ItemResult, []WorkerWork) {
	if cap(results) >= len(fps) {
		results = results[:len(fps)]
		clear(results)
	} else {
		results = make([]ItemResult, len(fps))
	}
	if cap(work) >= p.Workers {
		work = work[:p.Workers]
		clear(work)
	} else {
		work = make([]WorkerWork, p.Workers)
	}
	var wg sync.WaitGroup
	for w := 0; w < p.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ww := &work[w]
			for i, fp := range fps {
				if int(p.Index.BinOf(fp))%p.Workers != w {
					continue
				}
				pr := p.Index.Lookup(fp)
				results[i].Probe = pr
				ww.Items++
				ww.BufferScanned += pr.BufferScanned
				ww.TreeSteps += pr.TreeSteps
				if pr.Found {
					continue
				}
				ir := p.Index.Insert(fp, makeEntry(i))
				results[i].Insert = ir
				ww.BufferScanned += ir.BufferScanned
				if ir.Flush != nil {
					ww.TreeSteps += ir.Flush.TreeSteps
					ww.Flushes = append(ww.Flushes, ir.Flush)
				}
			}
		}(w)
	}
	wg.Wait()
	return results, work
}
