package dedup

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func key(i int) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, uint64(i))
	return b
}

func TestTreeInsertGet(t *testing.T) {
	var tr Tree
	for i := 0; i < 100; i++ {
		steps, replaced := tr.Insert(key(i), Entry{Loc: int64(i)})
		if replaced {
			t.Fatalf("insert %d: unexpected replace", i)
		}
		if steps < 1 {
			t.Fatalf("insert %d: steps %d", i, steps)
		}
	}
	if tr.Len() != 100 {
		t.Fatalf("len: got %d, want 100", tr.Len())
	}
	for i := 0; i < 100; i++ {
		v, steps, ok := tr.Get(key(i))
		if !ok || v.Loc != int64(i) {
			t.Fatalf("get %d: ok=%v v=%+v", i, ok, v)
		}
		if steps < 1 || steps > 20 {
			t.Fatalf("get %d: implausible probe depth %d", i, steps)
		}
	}
	if _, _, ok := tr.Get(key(1000)); ok {
		t.Fatal("missing key reported found")
	}
}

func TestTreeReplace(t *testing.T) {
	var tr Tree
	tr.Insert(key(1), Entry{Loc: 1})
	_, replaced := tr.Insert(key(1), Entry{Loc: 2})
	if !replaced || tr.Len() != 1 {
		t.Fatalf("replace: replaced=%v len=%d", replaced, tr.Len())
	}
	v, _, _ := tr.Get(key(1))
	if v.Loc != 2 {
		t.Fatalf("replaced value: %+v", v)
	}
}

func TestTreeBalancedDepth(t *testing.T) {
	var tr Tree
	const n = 1 << 14
	for i := 0; i < n; i++ {
		tr.Insert(key(i), Entry{}) // adversarial sorted insertion order
	}
	maxSteps := 0
	for i := 0; i < n; i += 97 {
		_, steps, ok := tr.Get(key(i))
		if !ok {
			t.Fatalf("key %d missing", i)
		}
		if steps > maxSteps {
			maxSteps = steps
		}
	}
	// LLRB height <= 2*log2(n) ~ 28 for 16 Ki entries.
	if maxSteps > 30 {
		t.Fatalf("tree unbalanced: probe depth %d for %d sorted inserts", maxSteps, n)
	}
	if tr.checkInvariants() < 0 {
		t.Fatal("red-black invariants violated")
	}
}

func TestTreeKeyAt(t *testing.T) {
	var tr Tree
	perm := rand.New(rand.NewSource(1)).Perm(50)
	for _, i := range perm {
		tr.Insert(key(i), Entry{Loc: int64(i)})
	}
	for rank := 0; rank < 50; rank++ {
		k, v, ok := tr.KeyAt(rank)
		if !ok {
			t.Fatalf("rank %d missing", rank)
		}
		if !bytes.Equal(k, key(rank)) || v.Loc != int64(rank) {
			t.Fatalf("rank %d: got key %x", rank, k)
		}
	}
	if _, _, ok := tr.KeyAt(-1); ok {
		t.Fatal("negative rank should fail")
	}
	if _, _, ok := tr.KeyAt(50); ok {
		t.Fatal("out-of-range rank should fail")
	}
}

func TestTreeDelete(t *testing.T) {
	var tr Tree
	for i := 0; i < 200; i++ {
		tr.Insert(key(i), Entry{Loc: int64(i)})
	}
	for i := 0; i < 200; i += 2 {
		if !tr.Delete(key(i)) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if tr.Delete(key(0)) {
		t.Fatal("double delete should report false")
	}
	if tr.Len() != 100 {
		t.Fatalf("len after deletes: %d", tr.Len())
	}
	for i := 0; i < 200; i++ {
		_, _, ok := tr.Get(key(i))
		if want := i%2 == 1; ok != want {
			t.Fatalf("key %d: found=%v want=%v", i, ok, want)
		}
	}
	if tr.checkInvariants() < 0 {
		t.Fatal("invariants violated after deletes")
	}
}

func TestTreeDeleteAt(t *testing.T) {
	var tr Tree
	for i := 0; i < 10; i++ {
		tr.Insert(key(i), Entry{Loc: int64(i)})
	}
	k, v, ok := tr.DeleteAt(3)
	if !ok || !bytes.Equal(k, key(3)) || v.Loc != 3 {
		t.Fatalf("DeleteAt(3): k=%x v=%+v ok=%v", k, v, ok)
	}
	if tr.Len() != 9 {
		t.Fatalf("len: %d", tr.Len())
	}
	if _, _, ok := tr.DeleteAt(99); ok {
		t.Fatal("out-of-range DeleteAt should fail")
	}
}

func TestTreeWalkInOrder(t *testing.T) {
	var tr Tree
	perm := rand.New(rand.NewSource(2)).Perm(64)
	for _, i := range perm {
		tr.Insert(key(i), Entry{})
	}
	var keys [][]byte
	tr.Walk(func(k []byte, _ Entry) bool {
		keys = append(keys, k)
		return true
	})
	if len(keys) != 64 {
		t.Fatalf("walk visited %d", len(keys))
	}
	if !sort.SliceIsSorted(keys, func(i, j int) bool { return bytes.Compare(keys[i], keys[j]) < 0 }) {
		t.Fatal("walk not in key order")
	}
	// Early stop.
	n := 0
	tr.Walk(func([]byte, Entry) bool { n++; return n < 10 })
	if n != 10 {
		t.Fatalf("early stop visited %d", n)
	}
}

// Property: the tree agrees with a reference map under a random mix of
// inserts and deletes, and red-black + size invariants always hold.
func TestTreeMatchesMapProperty(t *testing.T) {
	f := func(seed int64, opsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		ops := int(opsRaw)%400 + 50
		var tr Tree
		ref := map[string]Entry{}
		for i := 0; i < ops; i++ {
			k := key(rng.Intn(64))
			if rng.Intn(3) == 0 {
				delTree := tr.Delete(k)
				_, inRef := ref[string(k)]
				if delTree != inRef {
					return false
				}
				delete(ref, string(k))
			} else {
				v := Entry{Loc: rng.Int63()}
				tr.Insert(k, v)
				ref[string(k)] = v
			}
		}
		if tr.Len() != len(ref) {
			return false
		}
		if tr.checkInvariants() < 0 {
			return false
		}
		for k, v := range ref {
			got, _, ok := tr.Get([]byte(k))
			if !ok || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: KeyAt enumerates exactly the sorted key set.
func TestTreeRankProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var tr Tree
		n := rng.Intn(100) + 1
		for i := 0; i < n; i++ {
			tr.Insert(key(rng.Intn(256)), Entry{})
		}
		var prev []byte
		for r := 0; r < tr.Len(); r++ {
			k, _, ok := tr.KeyAt(r)
			if !ok {
				return false
			}
			if prev != nil && bytes.Compare(prev, k) >= 0 {
				return false
			}
			prev = k
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
