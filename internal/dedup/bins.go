package dedup

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync/atomic"

	"inlinered/internal/fault"
)

// IndexConfig parameterizes the bin-based index of §3.1.
type IndexConfig struct {
	// BinBits selects 2^BinBits bins by the fingerprint's leading bits.
	BinBits int
	// BufferEntries is the per-bin bin-buffer capacity (§3.3). Recently
	// inserted hashes live here and are probed first, exploiting temporal
	// locality; a full buffer flushes to the bin tree (and, in the pipeline,
	// to the SSD as a sequential journal write and to the GPU bins).
	BufferEntries int
	// PrefixBytes drops the leading bytes of each stored hash (§3.1's
	// memory optimization). Must satisfy 8*PrefixBytes <= BinBits so the
	// bin id still implies the dropped bits.
	PrefixBytes int
	// MaxEntries caps total resident entries (buffers + trees); 0 means
	// unlimited. At the cap, a uniformly random entry of the inserting
	// bin's tree is evicted (random replacement, §3.3) — the index is
	// memory-only, so evicted duplicates are simply missed, which the
	// paper accepts for primary storage.
	MaxEntries int64
	// Seed drives the random replacement policy deterministically.
	Seed int64
}

// DefaultIndexConfig returns the configuration used by the paper-faithful
// pipeline: 1024 bins (ample for lock-free partitioning across 8 hardware
// threads), 16-entry bin buffers (a staging buffer sized so bins flush
// regularly and the tree/GPU side of the index actually fills), no prefix
// truncation, no cap.
func DefaultIndexConfig() IndexConfig {
	return IndexConfig{BinBits: 10, BufferEntries: 16}
}

// Validate reports whether the configuration is usable.
func (c IndexConfig) Validate() error {
	if c.BinBits < 0 || c.BinBits > 24 {
		return fmt.Errorf("dedup: BinBits must be in [0,24], got %d", c.BinBits)
	}
	if c.BufferEntries < 1 {
		return fmt.Errorf("dedup: BufferEntries must be >= 1, got %d", c.BufferEntries)
	}
	if c.PrefixBytes < 0 || 8*c.PrefixBytes > c.BinBits {
		return fmt.Errorf("dedup: PrefixBytes=%d needs BinBits >= %d (bin id must imply the dropped prefix)",
			c.PrefixBytes, 8*c.PrefixBytes)
	}
	if c.MaxEntries < 0 {
		return fmt.Errorf("dedup: MaxEntries must be >= 0, got %d", c.MaxEntries)
	}
	return nil
}

// bufEntry is one bin-buffer slot.
type bufEntry struct {
	key []byte
	val Entry
}

// bin is one partition of the index: a recency buffer plus a tree.
type bin struct {
	buf  []bufEntry // FIFO order, newest last
	tree Tree
}

// Probe reports what one lookup did; the cost model turns this into time.
type Probe struct {
	Found         bool
	InBuffer      bool  // hit was in the bin buffer
	Entry         Entry // valid when Found
	BufferScanned int   // buffer entries compared
	TreeSteps     int   // tree nodes visited
}

// InsertResult reports what one insert did.
type InsertResult struct {
	BufferScanned int    // buffer slots touched (append is 1)
	Flush         *Flush // non-nil when the bin buffer filled and flushed
	Evicted       int    // entries evicted by the random replacement policy
}

// Flush is the batch of entries that moved from a bin buffer into the bin
// tree. The pipeline destages it as one sequential journal write and pushes
// the same entries to the GPU bins.
type Flush struct {
	Bin       uint32
	Entries   []bufEntry
	TreeSteps int // total tree nodes visited inserting the batch
	Bytes     int // journal bytes (entries × entry size)
}

// Keys returns the flushed hash suffixes (for GPU bin updates).
func (f *Flush) Keys() [][]byte {
	keys := make([][]byte, len(f.Entries))
	for i, e := range f.Entries {
		keys[i] = e.key
	}
	return keys
}

// Values returns the flushed entries, aligned with Keys.
func (f *Flush) Values() []Entry {
	vals := make([]Entry, len(f.Entries))
	for i, e := range f.Entries {
		vals[i] = e.val
	}
	return vals
}

// BinIndex is the bin-based deduplication index. It is not safe for
// concurrent use as a whole, but disjoint bins are independent: see
// ParallelIndexer for the lock-free partitioned driver.
type BinIndex struct {
	cfg  IndexConfig
	bins []bin
	rng  *rand.Rand
	// entries and evicted are atomic because disjoint-bin workers (see
	// ParallelIndexer) update them concurrently; all other state is
	// per-bin and therefore race-free under bin partitioning.
	entries atomic.Int64
	evicted atomic.Int64

	// faults injects memory-pressure evictions (consulted once per
	// insert, on the sequential commit path only); faultEvicted counts
	// the entries it dropped, separately from the MaxEntries policy.
	faults       *fault.Injector
	faultEvicted int64
}

// NewBinIndex returns an index for cfg, or an error if cfg is invalid.
func NewBinIndex(cfg IndexConfig) (*BinIndex, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &BinIndex{
		cfg:  cfg,
		bins: make([]bin, 1<<uint(cfg.BinBits)),
		rng:  rand.New(rand.NewSource(cfg.Seed)),
	}, nil
}

// Config returns the index configuration.
func (x *BinIndex) Config() IndexConfig { return x.cfg }

// Bins returns the number of bins.
func (x *BinIndex) Bins() int { return len(x.bins) }

// Len returns the number of resident entries (buffers + trees).
func (x *BinIndex) Len() int64 { return x.entries.Load() }

// Evicted returns how many entries the random replacement policy dropped.
func (x *BinIndex) Evicted() int64 { return x.evicted.Load() }

// SetFaultInjector threads a deterministic fault injector through the
// index: each insert may be followed by a memory-pressure eviction of one
// resident tree entry (the degraded twin of the MaxEntries policy). Only
// the sequential insert path consults the injector; lookups never do, so
// read-only prediction passes cannot perturb the fault schedule.
func (x *BinIndex) SetFaultInjector(fi *fault.Injector) { x.faults = fi }

// FaultEvicted returns how many entries injected memory pressure dropped.
func (x *BinIndex) FaultEvicted() int64 { return x.faultEvicted }

// Walk visits every resident entry (bin buffers first, then bin trees)
// until fn returns false. Keys are the stored suffixes; callers must not
// retain or mutate them.
func (x *BinIndex) Walk(fn func(bin uint32, key []byte, e Entry) bool) {
	for i := range x.bins {
		b := &x.bins[i]
		for _, be := range b.buf {
			if !fn(uint32(i), be.key, be.val) {
				return
			}
		}
		stop := false
		b.tree.Walk(func(key []byte, v Entry) bool {
			if !fn(uint32(i), key, v) {
				stop = true
				return false
			}
			return true
		})
		if stop {
			return
		}
	}
}

// EntryBytes returns the per-entry memory footprint under this
// configuration's prefix truncation.
func (x *BinIndex) EntryBytes() int { return EntryBytes(x.cfg.PrefixBytes) }

// MemoryBytes returns the index's resident entry memory.
func (x *BinIndex) MemoryBytes() int64 { return x.Len() * int64(x.EntryBytes()) }

// BinOf returns the bin a fingerprint maps to.
func (x *BinIndex) BinOf(fp Fingerprint) uint32 { return fp.Bin(x.cfg.BinBits) }

// probeKey returns the stored suffix of *fp as a view into the caller's
// fingerprint, for probe-side comparisons only: unlike Suffix it performs
// no allocation (the serving front-end probes the index once per op, and
// a per-probe copy was one of its top allocators). The view must not be
// retained — Insert still copies via Suffix for stored entries.
func (x *BinIndex) probeKey(fp *Fingerprint) []byte {
	n := x.cfg.PrefixBytes
	if n < 0 {
		n = 0
	}
	if n > FingerprintSize {
		n = FingerprintSize
	}
	return fp[n:]
}

// Lookup probes the index for a fingerprint: bin buffer first (temporal
// locality, Figure 1), then the bin tree.
func (x *BinIndex) Lookup(fp Fingerprint) Probe {
	b := &x.bins[x.BinOf(fp)]
	key := x.probeKey(&fp)
	var p Probe
	// Scan the buffer newest-first: recent chunks are the likely repeats.
	for i := len(b.buf) - 1; i >= 0; i-- {
		p.BufferScanned++
		if bytes.Equal(b.buf[i].key, key) {
			p.Found, p.InBuffer, p.Entry = true, true, b.buf[i].val
			return p
		}
	}
	v, steps, found := b.tree.Get(key)
	p.TreeSteps = steps
	if found {
		p.Found, p.Entry = true, v
	}
	return p
}

// LookupBuffer probes only the bin buffer (recent entries), skipping the
// bin tree. The pipeline uses it for chunks the GPU has already screened:
// a GPU miss implies the hash is in no flushed bin, so only the
// not-yet-flushed buffer can hold it (modulo entries the GPU's random
// replacement dropped — those duplicates are missed, which the memory-only
// index design accepts).
func (x *BinIndex) LookupBuffer(fp Fingerprint) Probe {
	b := &x.bins[x.BinOf(fp)]
	key := x.probeKey(&fp)
	var p Probe
	for i := len(b.buf) - 1; i >= 0; i-- {
		p.BufferScanned++
		if bytes.Equal(b.buf[i].key, key) {
			p.Found, p.InBuffer, p.Entry = true, true, b.buf[i].val
			return p
		}
	}
	return p
}

// Insert adds a fingerprint to its bin buffer (the chunk was unique and has
// been stored at e.Loc). If the buffer reaches capacity it flushes into the
// bin tree and the flush batch is returned for destaging. Duplicate keys
// already buffered are updated in place.
func (x *BinIndex) Insert(fp Fingerprint, e Entry) InsertResult {
	binID := x.BinOf(fp)
	b := &x.bins[binID]
	probe := x.probeKey(&fp)
	var res InsertResult
	for i := len(b.buf) - 1; i >= 0; i-- {
		res.BufferScanned++
		if bytes.Equal(b.buf[i].key, probe) {
			b.buf[i].val = e
			return res
		}
	}
	res.BufferScanned++
	// Only an appended entry needs an owned copy of the suffix.
	b.buf = append(b.buf, bufEntry{key: fp.Suffix(x.cfg.PrefixBytes), val: e})
	x.entries.Add(1)
	res.Evicted = x.enforceCap(binID)
	if x.faults.EvictIndex() {
		res.Evicted += x.evictUnderPressure(binID)
	}
	if len(b.buf) >= x.cfg.BufferEntries {
		res.Flush = x.flush(binID)
	}
	return res
}

// evictUnderPressure drops one resident tree entry in response to an
// injected memory-pressure fault: the inserting bin's tree when it has
// entries, else the globally largest tree. Buffered (not-yet-flushed)
// entries are never dropped — memory pressure reclaims the cold, flushed
// part of the index, mirroring the MaxEntries policy.
func (x *BinIndex) evictUnderPressure(binID uint32) int {
	t := &x.bins[binID].tree
	if t.Len() == 0 {
		t = x.largestTree()
		if t == nil || t.Len() == 0 {
			return 0
		}
	}
	if _, _, ok := t.DeleteAt(x.faults.Rank(t.Len())); !ok {
		return 0
	}
	x.entries.Add(-1)
	x.faultEvicted++
	return 1
}

// flush moves the whole bin buffer into the bin tree.
func (x *BinIndex) flush(binID uint32) *Flush {
	b := &x.bins[binID]
	f := &Flush{Bin: binID, Entries: b.buf}
	for _, e := range b.buf {
		steps, replaced := b.tree.Insert(e.key, e.val)
		f.TreeSteps += steps
		if replaced {
			x.entries.Add(-1) // buffered duplicate of a tree entry collapses
		}
	}
	f.Bytes = len(b.buf) * x.EntryBytes()
	b.buf = nil
	return f
}

// Remove deletes a fingerprint from the index (buffer or tree), reporting
// whether it was present and the work done. Used by reference-counting
// chunk stores when a chunk's last reference goes away.
func (x *BinIndex) Remove(fp Fingerprint) (removed bool, bufferScanned, treeSteps int) {
	b := &x.bins[x.BinOf(fp)]
	key := x.probeKey(&fp)
	for i := len(b.buf) - 1; i >= 0; i-- {
		bufferScanned++
		if bytes.Equal(b.buf[i].key, key) {
			b.buf = append(b.buf[:i], b.buf[i+1:]...)
			x.entries.Add(-1)
			return true, bufferScanned, 0
		}
	}
	_, treeSteps, found := b.tree.Get(key)
	if !found {
		return false, bufferScanned, treeSteps
	}
	b.tree.Delete(key)
	x.entries.Add(-1)
	return true, bufferScanned, treeSteps
}

// FlushAll drains every bin buffer (end-of-stream barrier) and returns the
// non-empty flushes.
func (x *BinIndex) FlushAll() []*Flush {
	var out []*Flush
	for i := range x.bins {
		if len(x.bins[i].buf) > 0 {
			out = append(out, x.flush(uint32(i)))
		}
	}
	return out
}

// enforceCap applies the random replacement policy: while over MaxEntries,
// evict a uniformly random tree entry from the inserting bin (falling back
// to the globally largest tree when the bin's own tree is empty).
func (x *BinIndex) enforceCap(binID uint32) int {
	if x.cfg.MaxEntries == 0 {
		return 0
	}
	evicted := 0
	for x.entries.Load() > x.cfg.MaxEntries {
		t := &x.bins[binID].tree
		if t.Len() == 0 {
			t = x.largestTree()
			if t == nil || t.Len() == 0 {
				break // only buffered entries remain; nothing evictable
			}
		}
		if _, _, ok := t.DeleteAt(x.rng.Intn(t.Len())); ok {
			x.entries.Add(-1)
			evicted++
			x.evicted.Add(1)
		}
	}
	return evicted
}

func (x *BinIndex) largestTree() *Tree {
	var best *Tree
	bestLen := 0
	for i := range x.bins {
		if l := x.bins[i].tree.Len(); l > bestLen {
			best, bestLen = &x.bins[i].tree, l
		}
	}
	return best
}

// BufferedEntries reports how many entries currently sit in bin buffers.
func (x *BinIndex) BufferedEntries() int {
	n := 0
	for i := range x.bins {
		n += len(x.bins[i].buf)
	}
	return n
}

// TreeEntries reports how many entries currently sit in bin trees.
func (x *BinIndex) TreeEntries() int {
	n := 0
	for i := range x.bins {
		n += x.bins[i].tree.Len()
	}
	return n
}
