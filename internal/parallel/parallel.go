// Package parallel provides the persistent worker pool the data plane
// fans real computation out on. It exists for wall-clock speed only: the
// simulated virtual clock never depends on how many goroutines executed
// the work, so callers are free to size the pool to the host (the paper's
// "keep up with the storage device" argument applied to the reproduction
// itself).
//
// A Pool's goroutines are started lazily on the first Map call and live
// until Close, so per-batch fan-out does not pay goroutine creation —
// unlike a spawn-per-call helper, which at 4 KB chunk granularity spends a
// measurable share of its time in the scheduler.
package parallel

import (
	"runtime"
	"sync"
)

// Pool is a fixed-size persistent worker pool. The zero value is not
// usable; build one with New. A Pool with one worker runs everything
// inline on the calling goroutine, which keeps Parallelism=1 runs strictly
// single-threaded (useful for determinism baselines).
type Pool struct {
	workers int
	start   sync.Once
	tasks   chan func()
	closed  sync.Once
}

// New returns a pool with the given number of workers; workers <= 0 means
// runtime.NumCPU(). Worker goroutines are not started until first use.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	return &Pool{workers: workers}
}

// Workers returns the pool's worker count.
func (p *Pool) Workers() int { return p.workers }

// launch starts the worker goroutines (once).
func (p *Pool) launch() {
	p.start.Do(func() {
		p.tasks = make(chan func())
		for w := 0; w < p.workers-1; w++ {
			go func() {
				for fn := range p.tasks {
					fn()
				}
			}()
		}
	})
}

// Map runs fn(i) for every i in [0, n) and returns when all calls have
// completed. Work is split into contiguous spans, one per worker, and the
// calling goroutine executes one span itself so a W-worker pool uses
// exactly W threads. fn must be safe to call concurrently for distinct
// indices and must only write state owned by its own index.
func (p *Pool) Map(n int, fn func(int)) {
	if n <= 0 {
		return
	}
	spans := p.workers
	if spans > n {
		spans = n
	}
	if spans <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	p.launch()
	var wg sync.WaitGroup
	for s := 1; s < spans; s++ {
		lo, hi := s*n/spans, (s+1)*n/spans
		wg.Add(1)
		p.tasks <- func() {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}
	}
	// The caller works span 0 while the pool drains the rest.
	for i := 0; i < n/spans; i++ {
		fn(i)
	}
	wg.Wait()
}

// Close stops the worker goroutines. It is safe to call multiple times and
// safe to call on a pool whose workers never started; Map must not be
// called after Close.
func (p *Pool) Close() {
	p.closed.Do(func() {
		p.start.Do(func() {}) // mark started so a late launch cannot race Close
		if p.tasks != nil {
			close(p.tasks)
		}
	})
}
