// Package parallel provides the persistent worker pool the data plane
// fans real computation out on. It exists for wall-clock speed only: the
// simulated virtual clock never depends on how many goroutines executed
// the work, so callers are free to size the pool to the host (the paper's
// "keep up with the storage device" argument applied to the reproduction
// itself).
//
// A Pool's goroutines are started lazily on the first Map call and live
// until Close, so per-batch fan-out does not pay goroutine creation. Work
// distribution is deliberately low-overhead: a Map publishes one job
// (fn, n) and wakes the workers, and every participant — workers and the
// calling goroutine alike — claims contiguous index batches off a shared
// atomic counter until the range is exhausted. Steady-state Map calls
// allocate nothing and perform no per-task channel operations (one
// buffered-channel token per woken worker per Map, not per index), so the
// pool stays profitable even at 4 KB-chunk granularity, where a
// closure-per-span dispatch spends a measurable share of its time in the
// scheduler and the allocator.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"

	"inlinered/internal/metrics"
)

// grainShards is how many claimable batches each worker's fair share is
// split into: small enough that an unlucky worker stuck with expensive
// items sheds load to the others, large enough that the atomic counter is
// not contended per item.
const grainShards = 4

// Pool is a fixed-size persistent worker pool. The zero value is not
// usable; build one with New. A Pool with one worker runs everything
// inline on the calling goroutine, which keeps Parallelism=1 runs strictly
// single-threaded (useful for determinism baselines).
type Pool struct {
	workers int
	start   sync.Once
	closed  sync.Once

	// The published job. Written by Map before the wake tokens are sent
	// and read by workers only while holding one, so the channel provides
	// the happens-before edges; valid until Map returns.
	fn    func(int)
	n     int
	grain int
	pubNS int64        // metrics.Clock() at publish time, -1 when metrics are off
	next  atomic.Int64 // next unclaimed index
	out   atomic.Int64 // woken workers that have not yet checked out

	wake chan struct{} // one token per woken worker per Map
	done chan struct{} // signaled by the last worker to check out
}

// New returns a pool with the given number of workers; workers <= 0 means
// runtime.NumCPU(). Worker goroutines are not started until first use.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	return &Pool{workers: workers}
}

// Workers returns the pool's worker count.
func (p *Pool) Workers() int { return p.workers }

// launch starts the worker goroutines (once).
func (p *Pool) launch() {
	p.start.Do(func() {
		p.wake = make(chan struct{}, p.workers)
		p.done = make(chan struct{}, 1)
		for w := 0; w < p.workers-1; w++ {
			// Counter slot w+1; the calling goroutine records on slot 0.
			slot := w + 1
			go func() {
				// End of this worker's previous busy window, or -1 when
				// metrics were off then. Idle time is measured from there to
				// the next wake-up this worker services.
				idleFrom := int64(-1)
				for range p.wake {
					start := int64(-1)
					if p.pubNS >= 0 {
						start = metrics.Clock()
					}
					if start >= 0 {
						metrics.PoolClaimWait.Observe(start - p.pubNS)
						if idleFrom >= 0 {
							metrics.PoolIdle.AddAt(slot, start-idleFrom)
						}
					}
					p.run()
					idleFrom = -1
					if start >= 0 {
						if end := metrics.Clock(); end >= 0 {
							metrics.PoolBusy.AddAt(slot, end-start)
							idleFrom = end
						}
					}
					if p.out.Add(-1) == 0 {
						p.done <- struct{}{}
					}
				}
			}()
		}
	})
}

// run claims contiguous index batches until the job's range is exhausted.
func (p *Pool) run() {
	fn, n, grain := p.fn, p.n, p.grain
	record := p.pubNS >= 0
	for {
		lo := int(p.next.Add(int64(grain))) - grain
		if lo >= n {
			return
		}
		hi := lo + grain
		if hi > n {
			hi = n
		}
		if record {
			metrics.PoolBatchSize.Observe(int64(hi - lo))
		}
		for i := lo; i < hi; i++ {
			fn(i)
		}
	}
}

// Map runs fn(i) for every i in [0, n) and returns when all calls have
// completed. The calling goroutine always participates, so a W-worker pool
// uses exactly W threads; workers are woken only when there are enough
// batches to share. fn must be safe to call concurrently for distinct
// indices and must only write state owned by its own index.
func (p *Pool) Map(n int, fn func(int)) {
	if n <= 0 {
		return
	}
	if p.workers <= 1 || n == 1 {
		start := metrics.Clock()
		for i := 0; i < n; i++ {
			fn(i)
		}
		if start >= 0 {
			metrics.PoolMapCalls.Add(1)
			metrics.PoolItems.Add(int64(n))
			metrics.PoolBusy.AddSince(0, start)
		}
		return
	}
	p.launch()
	grain := n / (p.workers * grainShards)
	if grain < 1 {
		grain = 1
	}
	// Never wake more workers than there are batches beyond the caller's
	// own first claim; surplus wake-ups would only bounce off the counter.
	helpers := p.workers - 1
	if max := (n+grain-1)/grain - 1; helpers > max {
		helpers = max
	}
	// pubNS rides to the workers with the job fields: the wake channel's
	// happens-before edge covers it, and a -1 (metrics off at publish)
	// suppresses every clock read this Map would otherwise cause.
	p.fn, p.n, p.grain, p.pubNS = fn, n, grain, metrics.Clock()
	if p.pubNS >= 0 {
		metrics.PoolMapCalls.Add(1)
		metrics.PoolItems.Add(int64(n))
	}
	p.next.Store(0)
	if helpers > 0 {
		p.out.Store(int64(helpers))
		for i := 0; i < helpers; i++ {
			p.wake <- struct{}{}
		}
	}
	p.run()
	metrics.PoolBusy.AddSince(0, p.pubNS)
	if helpers > 0 {
		// Wait for every woken worker to check out: the job fields above
		// are reused by the next Map, and completion of all fn calls is
		// exactly "all participants returned from run".
		<-p.done
	}
	p.fn = nil
}

// Close stops the worker goroutines. It is safe to call multiple times and
// safe to call on a pool whose workers never started; Map must not be
// called after Close.
func (p *Pool) Close() {
	p.closed.Do(func() {
		p.start.Do(func() {}) // mark started so a late launch cannot race Close
		if p.wake != nil {
			close(p.wake)
		}
	})
}
