package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"

	"inlinered/internal/metrics"
)

func TestMapCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		p := New(workers)
		for _, n := range []int{0, 1, 7, 100, 1024} {
			hit := make([]int32, n)
			p.Map(n, func(i int) { atomic.AddInt32(&hit[i], 1) })
			for i := range hit {
				if hit[i] != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, hit[i])
				}
			}
		}
		p.Close()
	}
}

func TestMapReusesWorkersAcrossCalls(t *testing.T) {
	p := New(4)
	defer p.Close()
	var total atomic.Int64
	for round := 0; round < 50; round++ {
		p.Map(64, func(i int) { total.Add(int64(i)) })
	}
	want := int64(50 * 64 * 63 / 2)
	if total.Load() != want {
		t.Fatalf("sum: got %d, want %d", total.Load(), want)
	}
}

func TestSingleWorkerRunsInline(t *testing.T) {
	p := New(1)
	defer p.Close()
	// With one worker, Map must run on the calling goroutine in order.
	var order []int
	p.Map(16, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("inline order broken at %d: %v", i, order)
		}
	}
}

func TestDefaultWorkers(t *testing.T) {
	p := New(0)
	defer p.Close()
	if p.Workers() != runtime.NumCPU() {
		t.Fatalf("workers: got %d, want NumCPU=%d", p.Workers(), runtime.NumCPU())
	}
}

// TestMapZeroAllocSteadyState: after warm-up, Map itself must not
// allocate — the whole point of the persistent-worker, atomic-claim
// dispatch (the engine calls Map once per batch on the 4 KB-chunk path).
func TestMapZeroAllocSteadyState(t *testing.T) {
	p := New(4)
	defer p.Close()
	var sink atomic.Int64
	fn := func(i int) { sink.Add(int64(i)) }
	p.Map(256, fn) // warm-up: launch workers
	allocs := testing.AllocsPerRun(100, func() { p.Map(256, fn) })
	if allocs != 0 {
		t.Fatalf("Map allocates %.1f objects/op steady-state, want 0", allocs)
	}
}

// TestMapZeroAllocWithMetrics: enabling the wall-clock metrics layer must
// not reintroduce allocations on the Map hot path — every record is a
// plain atomic op on a pre-registered handle.
func TestMapZeroAllocWithMetrics(t *testing.T) {
	metrics.Enable()
	defer metrics.Disable()
	p := New(4)
	defer p.Close()
	var sink atomic.Int64
	fn := func(i int) { sink.Add(int64(i)) }
	p.Map(256, fn) // warm-up: launch workers
	allocs := testing.AllocsPerRun(100, func() { p.Map(256, fn) })
	if allocs != 0 {
		t.Fatalf("Map with metrics on allocates %.1f objects/op steady-state, want 0", allocs)
	}
	if n, _ := metrics.SeriesValue("inlinered_pool_map_calls_total", "subsystem", "parallel"); n < 100 {
		t.Fatalf("pool map calls = %d, want >= 100 recorded", n)
	}
	if busy := metrics.PoolBusy.Value(); busy <= 0 {
		t.Fatalf("pool busy ns = %d, want > 0", busy)
	}
	if metrics.PoolBatchSize.N() == 0 {
		t.Fatal("batch-size histogram recorded no samples")
	}
}

// TestMapManyRoundsStress hammers the claim/check-out protocol: uneven
// item costs, varying n (including n < workers), back-to-back rounds.
func TestMapManyRoundsStress(t *testing.T) {
	p := New(8)
	defer p.Close()
	var total atomic.Int64
	rounds := 0
	for _, n := range []int{1, 2, 3, 7, 8, 9, 63, 64, 1000} {
		for r := 0; r < 200; r++ {
			hit := make([]int32, n)
			p.Map(n, func(i int) {
				if i%17 == 0 {
					for k := 0; k < 100; k++ {
						total.Add(1)
					}
				}
				atomic.AddInt32(&hit[i], 1)
			})
			for i := range hit {
				if hit[i] != 1 {
					t.Fatalf("n=%d round=%d: index %d visited %d times", n, r, i, hit[i])
				}
			}
			rounds++
		}
	}
	if rounds != 9*200 {
		t.Fatalf("rounds = %d", rounds)
	}
}

func TestCloseIdempotentAndUnstarted(t *testing.T) {
	p := New(4)
	p.Close() // never started
	p.Close() // and again
	q := New(4)
	q.Map(8, func(int) {})
	q.Close()
	q.Close()
}
