package parallel

import (
	"sync/atomic"
	"testing"
)

// BenchmarkPoolMap measures the pool's dispatch overhead at the engine's
// working grain: one Map per 1024-item batch with a near-free body, so
// ns/op is almost pure coordination cost (wake tokens, atomic claims,
// check-out). Steady state must report 0 allocs/op — the alloc guard is
// TestMapZeroAllocSteadyState; this benchmark tracks the time side.
func BenchmarkPoolMap(b *testing.B) {
	for _, bc := range []struct {
		name    string
		workers int
		n       int
	}{
		{"w1n1024", 1, 1024},
		{"w4n1024", 4, 1024},
		{"w4n64", 4, 64},
	} {
		b.Run(bc.name, func(b *testing.B) {
			p := New(bc.workers)
			defer p.Close()
			var sink atomic.Int64
			fn := func(i int) { sink.Add(1) }
			p.Map(bc.n, fn) // warm-up
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Map(bc.n, fn)
			}
			b.StopTimer()
			if got := sink.Load(); got != int64((b.N+1)*bc.n) {
				b.Fatalf("executed %d items, want %d", got, int64((b.N+1)*bc.n))
			}
		})
	}
}
