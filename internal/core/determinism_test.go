package core

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"inlinered/internal/lz"
	"inlinered/internal/obs"
	"inlinered/internal/workload"
)

// TestParallelismDeterminism is the wall-clock parallelism contract: the
// host worker count changes only how fast the simulation runs, never what
// it computes. A serial run (Parallelism=1) and a fanned-out run
// (Parallelism=4) must produce bit-identical Reports, identical journal
// images, and both must verify against the source stream, across every
// integration mode and the extension paths (CDC chunking, entropy bypass,
// QuickLZ).
func TestParallelismDeterminism(t *testing.T) {
	type variant struct {
		name string
		plat Platform
		dd   float64 // workload dedup ratio
		cr   float64 // workload compression ratio
		mut  func(*Config)
	}
	variants := []variant{
		{"cpu-only", PaperPlatform(), 2.0, 2.0, func(c *Config) { c.Mode = CPUOnly }},
		{"gpu-dedup", PaperPlatform(), 2.0, 2.0, func(c *Config) { c.Mode = GPUDedup }},
		{"gpu-compress", PaperPlatform(), 2.0, 2.0, func(c *Config) { c.Mode = GPUCompress }},
		{"gpu-both", PaperPlatform(), 2.0, 2.0, func(c *Config) { c.Mode = GPUBoth }},
		{"cdc", PaperPlatform(), 2.0, 2.0, func(c *Config) {
			c.Mode = CPUOnly
			c.Chunker = CDCChunking
		}},
		{"entropy-bypass", PaperPlatform(), 1.5, 1.0, func(c *Config) {
			c.Mode = CPUOnly
			c.SkipIncompressible = true
		}},
		{"entropy-bypass-gpu", PaperPlatform(), 1.5, 1.0, func(c *Config) {
			c.Mode = GPUCompress
			c.SkipIncompressible = true
		}},
		{"qlz", PaperPlatform(), 2.0, 2.0, func(c *Config) {
			c.Mode = CPUOnly
			c.Codec = lz.CodecQLZ
		}},
		{"no-dedup", PaperPlatform(), 1.0, 2.0, func(c *Config) {
			c.Mode = CPUOnly
			c.Dedup = false
		}},
	}
	run := func(t *testing.T, v variant, par int) (*Engine, *Report) {
		t.Helper()
		cfg := testConfig(CPUOnly)
		v.mut(&cfg)
		cfg.Parallelism = par
		s := testStream(t, 6<<20, v.dd, v.cr, workload.RefUniform)
		eng, rep := runPipeline(t, v.plat, cfg, s)
		s.Reset()
		if err := eng.VerifyAgainst(s); err != nil {
			t.Fatalf("parallelism=%d: verify: %v", par, err)
		}
		return eng, rep
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			engSerial, repSerial := run(t, v, 1)
			engPar, repPar := run(t, v, 4)
			if !reflect.DeepEqual(repSerial, repPar) {
				t.Errorf("reports differ between serial and parallel runs:\nserial:   %+v\nparallel: %+v", repSerial, repPar)
			}
			if !bytes.Equal(engSerial.JournalImage(), engPar.JournalImage()) {
				t.Error("journal images differ between serial and parallel runs")
			}
		})
	}
}

// TestObservabilityDeterminism is the tracing contract: all recording runs
// on the sequential virtual-time commit path, so at a fixed seed the trace
// bytes and every histogram are bit-identical for any Parallelism, and a
// nil Recorder leaves the Report bit-identical to a run without
// observability (latency summaries aside, which only a recorder enables).
func TestObservabilityDeterminism(t *testing.T) {
	type variant struct {
		name string
		dd   float64
		cr   float64
		mut  func(*Config)
	}
	variants := []variant{
		{"cpu-only", 2.0, 2.0, func(c *Config) { c.Mode = CPUOnly }},
		{"gpu-both", 2.0, 2.0, func(c *Config) { c.Mode = GPUBoth }},
		{"entropy-bypass", 1.5, 1.0, func(c *Config) {
			c.Mode = GPUCompress
			c.SkipIncompressible = true
		}},
	}
	run := func(t *testing.T, v variant, par int, rec *obs.Recorder) *Report {
		t.Helper()
		cfg := testConfig(CPUOnly)
		v.mut(&cfg)
		cfg.Parallelism = par
		cfg.Obs = rec
		s := testStream(t, 4<<20, v.dd, v.cr, workload.RefUniform)
		_, rep := runPipeline(t, PaperPlatform(), cfg, s)
		return rep
	}
	traceBytes := func(t *testing.T, rec *obs.Recorder) []byte {
		t.Helper()
		var buf bytes.Buffer
		if err := rec.WriteTrace(&buf); err != nil {
			t.Fatalf("WriteTrace: %v", err)
		}
		return buf.Bytes()
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			recBase := obs.NewRecorder()
			repBase := run(t, v, 1, recBase)
			baseTrace := traceBytes(t, recBase)
			if recBase.Spans() == 0 {
				t.Fatal("recorder saw no spans")
			}
			for _, par := range []int{4, 16} {
				rec := obs.NewRecorder()
				rep := run(t, v, par, rec)
				if !reflect.DeepEqual(repBase, rep) {
					t.Errorf("parallelism=%d: reports differ:\nbase: %+v\ngot:  %+v", par, repBase, rep)
				}
				if !bytes.Equal(baseTrace, traceBytes(t, rec)) {
					t.Errorf("parallelism=%d: trace bytes differ from serial run", par)
				}
			}

			// A nil recorder must leave everything but the recorder-gated
			// latency summaries bit-identical, and must not leak a latency
			// line into the human-readable report.
			repOff := run(t, v, 4, nil)
			if repOff.Latency.Any() {
				t.Error("latency summaries populated without a recorder")
			}
			if strings.Contains(repOff.String(), "latency") {
				t.Errorf("obs-off String leaks latency line:\n%s", repOff)
			}
			repScrubbed := *repBase
			repScrubbed.Latency = PipelineLatency{}
			if !reflect.DeepEqual(&repScrubbed, repOff) {
				t.Errorf("obs-on report (latency aside) differs from obs-off report:\non:  %+v\noff: %+v", &repScrubbed, repOff)
			}
		})
	}
}
