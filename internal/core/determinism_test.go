package core

import (
	"bytes"
	"reflect"
	"testing"

	"inlinered/internal/lz"
	"inlinered/internal/workload"
)

// TestParallelismDeterminism is the wall-clock parallelism contract: the
// host worker count changes only how fast the simulation runs, never what
// it computes. A serial run (Parallelism=1) and a fanned-out run
// (Parallelism=4) must produce bit-identical Reports, identical journal
// images, and both must verify against the source stream, across every
// integration mode and the extension paths (CDC chunking, entropy bypass,
// QuickLZ).
func TestParallelismDeterminism(t *testing.T) {
	type variant struct {
		name string
		plat Platform
		dd   float64 // workload dedup ratio
		cr   float64 // workload compression ratio
		mut  func(*Config)
	}
	variants := []variant{
		{"cpu-only", PaperPlatform(), 2.0, 2.0, func(c *Config) { c.Mode = CPUOnly }},
		{"gpu-dedup", PaperPlatform(), 2.0, 2.0, func(c *Config) { c.Mode = GPUDedup }},
		{"gpu-compress", PaperPlatform(), 2.0, 2.0, func(c *Config) { c.Mode = GPUCompress }},
		{"gpu-both", PaperPlatform(), 2.0, 2.0, func(c *Config) { c.Mode = GPUBoth }},
		{"cdc", PaperPlatform(), 2.0, 2.0, func(c *Config) {
			c.Mode = CPUOnly
			c.Chunker = CDCChunking
		}},
		{"entropy-bypass", PaperPlatform(), 1.5, 1.0, func(c *Config) {
			c.Mode = CPUOnly
			c.SkipIncompressible = true
		}},
		{"entropy-bypass-gpu", PaperPlatform(), 1.5, 1.0, func(c *Config) {
			c.Mode = GPUCompress
			c.SkipIncompressible = true
		}},
		{"qlz", PaperPlatform(), 2.0, 2.0, func(c *Config) {
			c.Mode = CPUOnly
			c.Codec = lz.CodecQLZ
		}},
		{"no-dedup", PaperPlatform(), 1.0, 2.0, func(c *Config) {
			c.Mode = CPUOnly
			c.Dedup = false
		}},
	}
	run := func(t *testing.T, v variant, par int) (*Engine, *Report) {
		t.Helper()
		cfg := testConfig(CPUOnly)
		v.mut(&cfg)
		cfg.Parallelism = par
		s := testStream(t, 6<<20, v.dd, v.cr, workload.RefUniform)
		eng, rep := runPipeline(t, v.plat, cfg, s)
		s.Reset()
		if err := eng.VerifyAgainst(s); err != nil {
			t.Fatalf("parallelism=%d: verify: %v", par, err)
		}
		return eng, rep
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			engSerial, repSerial := run(t, v, 1)
			engPar, repPar := run(t, v, 4)
			if !reflect.DeepEqual(repSerial, repPar) {
				t.Errorf("reports differ between serial and parallel runs:\nserial:   %+v\nparallel: %+v", repSerial, repPar)
			}
			if !bytes.Equal(engSerial.JournalImage(), engPar.JournalImage()) {
				t.Error("journal images differ between serial and parallel runs")
			}
		})
	}
}
