// Package core implements the paper's primary contribution: the integrated
// inline data reduction pipeline of §3.3 (Figure 1), which chunks and
// fingerprints a write stream, deduplicates it through the bin-based index,
// compresses unique chunks with LZSS, and destages the survivors to the SSD
// — parallelized across the multi-core CPU and the GPU under one of the four
// integration options the evaluation compares (Figure 2), with the dummy-I/O
// calibration pass that picks the best option for the platform at hand.
//
// The pipeline runs on the virtual clock: every data-plane result (hash,
// duplicate decision, compressed byte) is computed for real, while stage
// timings come from the calibrated CPU/GPU/SSD cost models. See DESIGN.md
// for the substitution statement and calibration targets.
package core

import (
	"time"

	"inlinered/internal/cpusim"
	"inlinered/internal/gpu"
	"inlinered/internal/ssd"
)

// Platform describes the hardware the pipeline runs on.
type Platform struct {
	CPU    cpusim.Config
	GPU    gpu.Config
	HasGPU bool
	SSD    ssd.Config
}

// PaperPlatform returns the published testbed: an i7-3770K-class CPU, a
// Radeon HD 7970-class GPU, and an SSD 830-class drive.
func PaperPlatform() Platform {
	return Platform{
		CPU:    cpusim.DefaultConfig(),
		GPU:    gpu.DefaultConfig(),
		HasGPU: true,
		SSD:    ssd.DefaultConfig(),
	}
}

// CPUOnlyPlatform returns the paper testbed without its GPU ("the last
// option may be useful when the performance of the GPU is poor", §4(3)).
func CPUOnlyPlatform() Platform {
	p := PaperPlatform()
	p.HasGPU = false
	return p
}

// WeakGPUPlatform returns a platform whose GPU is so slow that the
// calibration pass should refuse to use it — the E5 scenario.
func WeakGPUPlatform() Platform {
	p := PaperPlatform()
	p.GPU.Name = "integrated-class weak GPU"
	p.GPU.ComputeUnits = 2
	p.GPU.ClockHz = 300e6
	p.GPU.LaunchOverhead = 400 * time.Microsecond
	p.GPU.PCIeBytesPerSec = 1e9
	return p
}
