package core

import (
	"fmt"

	"inlinered/internal/workload"
)

// CalibrationResult records the dummy-I/O pass of §4(3): the measured
// throughput of every integration option on this platform.
type CalibrationResult struct {
	Best    Mode
	Reports map[Mode]*Report
}

// Calibrate runs a short dummy-I/O stream through every integration option
// the platform supports and returns the fastest, exactly as the paper's
// final paragraph prescribes: "before assigning processors to each data
// reduction operation, the performance of these integration methods is
// compared using dummy I/O to determine the best fit for throughput.
// Therefore, we can ensure the best performance even if the target platform
// is different."
//
// sampleBytes controls the dummy stream length (64 MiB is plenty to rank
// the options); the stream mirrors the configured chunk size with the
// common 2.0/2.0 reduction ratios.
func Calibrate(plat Platform, cfg Config, sampleBytes int64) (*CalibrationResult, error) {
	if sampleBytes < int64(cfg.ChunkSize)*64 {
		sampleBytes = int64(cfg.ChunkSize) * 64
	}
	res := &CalibrationResult{Reports: make(map[Mode]*Report)}
	best := -1.0
	for _, m := range Modes {
		mcfg := cfg
		mcfg.Mode = m
		mcfg.Verify = false
		mcfg.Obs = nil // calibration probes must not pollute the run's trace
		needGPU := (mcfg.Dedup && m.UsesGPUDedup()) || (mcfg.Compress && m.UsesGPUCompress())
		if needGPU && !plat.HasGPU {
			continue
		}
		stream, err := workload.New(workload.Spec{
			TotalBytes: sampleBytes,
			ChunkSize:  cfg.ChunkSize,
			DedupRatio: 2.0,
			CompRatio:  2.0,
			Seed:       42,
		})
		if err != nil {
			return nil, fmt.Errorf("core: calibration stream: %w", err)
		}
		eng, err := NewEngine(plat, mcfg)
		if err != nil {
			return nil, err
		}
		rep, err := eng.Process(stream)
		if err != nil {
			return nil, fmt.Errorf("core: calibrating %s: %w", m, err)
		}
		res.Reports[m] = rep
		if rep.IOPS > best {
			best = rep.IOPS
			res.Best = m
		}
	}
	if best < 0 {
		return nil, fmt.Errorf("core: no integration option is runnable on this platform")
	}
	return res, nil
}
