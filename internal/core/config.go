package core

import (
	"fmt"

	"inlinered/internal/chunk"
	"inlinered/internal/dedup"
	"inlinered/internal/fault"
	"inlinered/internal/lz"
	"inlinered/internal/obs"
)

// Mode is one of the four integration options of §4(3): which data
// reduction operation, if any, owns the GPU.
type Mode int

const (
	// CPUOnly runs both operations on the multi-core CPU.
	CPUOnly Mode = iota
	// GPUDedup offloads indexing to the GPU (as a CPU co-processor, used
	// when the CPU is saturated, §3.1(3)); compression stays on the CPU.
	GPUDedup
	// GPUCompress runs compression on the GPU with CPU post-processing;
	// indexing stays on the CPU.
	GPUCompress
	// GPUBoth gives the GPU to both operations, sharing one command queue.
	GPUBoth
)

// Modes lists the four integration options in presentation order.
var Modes = []Mode{CPUOnly, GPUDedup, GPUCompress, GPUBoth}

// String names the mode as the figures label it.
func (m Mode) String() string {
	switch m {
	case CPUOnly:
		return "cpu-only"
	case GPUDedup:
		return "gpu-dedup"
	case GPUCompress:
		return "gpu-compress"
	case GPUBoth:
		return "gpu-both"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// ParseMode parses a mode name as String renders it ("cpu-only",
// "gpu-dedup", "gpu-compress", "gpu-both").
func ParseMode(s string) (Mode, error) {
	for _, m := range Modes {
		if m.String() == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("core: unknown mode %q (want cpu-only, gpu-dedup, gpu-compress, or gpu-both)", s)
}

// MarshalJSON encodes the mode as its figure label, keeping the report
// schema readable and stable against enum reordering.
func (m Mode) MarshalJSON() ([]byte, error) {
	return []byte(`"` + m.String() + `"`), nil
}

// UnmarshalJSON decodes a mode from its figure label.
func (m *Mode) UnmarshalJSON(data []byte) error {
	if len(data) < 2 || data[0] != '"' || data[len(data)-1] != '"' {
		return fmt.Errorf("core: mode must be a JSON string, got %s", data)
	}
	parsed, err := ParseMode(string(data[1 : len(data)-1]))
	if err != nil {
		return err
	}
	*m = parsed
	return nil
}

// UsesGPUDedup reports whether the mode gives the GPU to indexing.
func (m Mode) UsesGPUDedup() bool { return m == GPUDedup || m == GPUBoth }

// UsesGPUCompress reports whether the mode gives the GPU to compression.
func (m Mode) UsesGPUCompress() bool { return m == GPUCompress || m == GPUBoth }

// Chunking selects the chunking algorithm.
type Chunking int

const (
	// FixedChunking cuts the stream into ChunkSize blocks (the paper's
	// configuration; primary storage writes arrive block-aligned).
	FixedChunking Chunking = iota
	// CDCChunking uses the content-defined Gear chunker, which
	// resynchronizes chunk boundaries across inserted/shifted data —
	// an extension beyond the paper's fixed 4 KB chunks.
	CDCChunking
)

// Config tunes the pipeline.
type Config struct {
	// ChunkSize is the deduplication/compression unit (4 KB in §4).
	ChunkSize int
	// Chunker selects fixed-size (default, the paper's setting) or
	// content-defined chunking; Gear configures the latter.
	Chunker Chunking
	Gear    chunk.GearConfig
	// Batch is how many chunks flow through the pipeline stages together
	// (also the GPU indexing batch).
	Batch int
	// GPUCompressBatch is how many unique chunks accumulate before a GPU
	// compression kernel launches (it takes hundreds of 4 KB chunks to
	// fill the device, the weakness of [3] the paper fixes).
	GPUCompressBatch int
	// Lookahead is how many batches of chunking/hashing are scheduled
	// ahead of the downstream stages. The measurement is open-loop (the
	// input queue is never empty), so the CPU should always have hashing
	// work to overlap with GPU round-trip latency; a handful of batches
	// suffices.
	Lookahead int

	// Mode selects the integration option. Use Calibrate to pick one the
	// way §4(3)'s dummy-I/O pass does.
	Mode Mode
	// Dedup and Compress enable the two reduction operations; §4(1) and
	// §4(2) evaluate them in isolation, §4(3) together.
	Dedup    bool
	Compress bool

	// Index configures the CPU bin index; GPUBinBits/GPUBinCap configure
	// the device-resident linear bins (fewer, deeper bins than the CPU
	// side — linear tables suit the GPU's layout, §3.1(2)).
	Index      dedup.IndexConfig
	GPUBinBits int
	GPUBinCap  int

	// Codec selects the CPU compression algorithm (LZSS by default; the
	// QuickLZ-class codec matches the paper's CPU baseline family). LZ
	// tunes the LZSS encoder; Sub tunes the GPU sub-block kernel (always
	// LZSS — the paper's GPU algorithm).
	Codec lz.Codec
	LZ    lz.Params
	Sub   lz.SubBlockParams

	// SkipIncompressible enables the entropy bypass: chunks whose byte
	// entropy exceeds EntropyThreshold bits/byte are stored raw without
	// running the encoder (or, on the GPU path, without the PCIe round
	// trip). Already-compressed or encrypted content costs one histogram
	// pass instead of a full match search.
	SkipIncompressible bool
	// EntropyThreshold is the bypass cutoff in bits/byte; 0 means 7.2.
	EntropyThreshold float64

	// IncludeDestage counts SSD destage completion in the pipeline
	// makespan. The paper reports the throughput of the data reduction
	// operations themselves, with the SSD as the comparator line rather
	// than a stage on the critical path, so this defaults to false; the
	// drive's work is fully scheduled and accounted either way.
	IncludeDestage bool

	// Verify retains stored blobs in host memory and enables
	// Engine.VerifyAgainst for end-to-end data-integrity checks. Costs
	// memory proportional to the stored unique bytes; meant for tests.
	Verify bool

	// Parallelism is the number of host worker threads the engine uses for
	// its real computation (hashing, compression, GPU-batch post-processing).
	// It changes wall-clock speed only: the simulated virtual-time results
	// are bit-identical for every value. 0 means runtime.NumCPU().
	Parallelism int

	// Faults schedules deterministic fault injection across the drive, the
	// journal, the GPU device, and the index. The zero value injects
	// nothing and leaves the pipeline bit-identical to a build without
	// injection. With a fixed seed, two runs of the same workload produce
	// bit-identical Reports, fault counters included, for any Parallelism.
	Faults fault.Config

	// Obs attaches an observability recorder: virtual-time spans for every
	// committed CPU job, GPU kernel, DMA, and NAND operation, plus latency
	// histograms for journal flushes and GPU batch turnaround. Recording is
	// driven from the sequential commit path only, so with a fixed seed the
	// trace bytes and histograms are bit-identical for any Parallelism. A
	// nil Obs produces a Report bit-identical to a build without
	// observability.
	Obs *obs.Recorder
}

// DefaultConfig returns the paper-faithful configuration: 4 KB chunks,
// dedup before compression, both operations on.
func DefaultConfig() Config {
	return Config{
		ChunkSize:        4096,
		Gear:             chunk.DefaultGearConfig(),
		Batch:            1024,
		GPUCompressBatch: 512,
		Lookahead:        8,
		Mode:             CPUOnly,
		Dedup:            true,
		Compress:         true,
		Index:            dedup.DefaultIndexConfig(),
		GPUBinBits:       6,
		GPUBinCap:        16384,
		LZ:               lz.DefaultParams(),
		Sub:              lz.DefaultSubBlockParams(),
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.ChunkSize < 64 {
		return fmt.Errorf("core: chunk size must be >= 64, got %d", c.ChunkSize)
	}
	if c.Chunker != FixedChunking && c.Chunker != CDCChunking {
		return fmt.Errorf("core: unknown chunker %d", int(c.Chunker))
	}
	if c.Batch < 1 {
		return fmt.Errorf("core: batch must be >= 1, got %d", c.Batch)
	}
	if c.GPUCompressBatch < 1 {
		return fmt.Errorf("core: GPU compress batch must be >= 1, got %d", c.GPUCompressBatch)
	}
	if c.Lookahead < 1 {
		return fmt.Errorf("core: lookahead must be >= 1, got %d", c.Lookahead)
	}
	if !c.Dedup && !c.Compress {
		return fmt.Errorf("core: at least one reduction operation must be enabled")
	}
	if c.Dedup {
		if err := c.Index.Validate(); err != nil {
			return err
		}
	}
	if c.Mode < CPUOnly || c.Mode > GPUBoth {
		return fmt.Errorf("core: unknown mode %d", int(c.Mode))
	}
	if c.Parallelism < 0 {
		return fmt.Errorf("core: parallelism must be >= 0, got %d", c.Parallelism)
	}
	return nil
}
