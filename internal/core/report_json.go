package core

import (
	"bytes"
	"encoding/json"
)

// ReportSchema versions the machine-readable report envelope. Bump it when
// a field changes meaning or an existing key is renamed; adding fields is
// backward compatible and does not require a bump.
const ReportSchema = "inlinered/report/v1"

// reportEnvelope is the on-the-wire form of a Report: a schema tag plus the
// report body, so downstream tooling (the bench harness, CI diffing) can
// reject encodings it does not understand.
type reportEnvelope struct {
	Schema string  `json:"schema"`
	Report *Report `json:"report"`
}

// JSON encodes the report as stable, indented JSON with a schema envelope.
// All durations are integer nanoseconds and all fields are tagged, so two
// identical Reports encode to identical bytes — the machine-readable twin
// of String, locked by the same golden test.
func (r *Report) JSON() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(reportEnvelope{Schema: ReportSchema, Report: r}); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
