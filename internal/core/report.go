package core

import (
	"fmt"
	"strings"
	"time"

	"inlinered/internal/sim"
	"inlinered/internal/ssd"
)

// Breakdown is the virtual CPU time spent per pipeline stage, in seconds of
// core-busy time (summed over threads). It shows where the reduction cycles
// go — the paper's bottleneck analysis (hashing and indexing dominate
// dedup; the match search dominates compression).
type Breakdown struct {
	Chunking    float64
	Hashing     float64
	Indexing    float64
	Compression float64 // CPU compression (or raw-store staging)
	PostProcess float64 // refinement of GPU compression results
	Insert      float64 // bin-buffer/bin-tree updates and flushes
	GPUMerge    float64 // staging GPU index results
}

// Total returns the summed stage time.
func (b Breakdown) Total() float64 {
	return b.Chunking + b.Hashing + b.Indexing + b.Compression + b.PostProcess + b.Insert + b.GPUMerge
}

// Report summarizes one pipeline run. Throughput figures are in the paper's
// units: IOPS are chunk-sized writes per second of virtual time.
type Report struct {
	Mode  Mode
	Bytes int64 // stream bytes ingested

	Chunks       int64
	UniqueChunks int64
	UniqueBytes  int64
	DupChunks    int64

	// Duplicate hit breakdown across Figure 1's three probes, plus
	// duplicates of uniques still in flight to the GPU compressor.
	DupHitsGPU     int64
	DupHitsBuffer  int64
	DupHitsTree    int64
	DupHitsPending int64

	SkippedIncompressible int64 // uniques stored raw by the entropy bypass

	StoredBytes   int64 // compressed unique payload destaged
	JournalBytes  int64 // index journal flushed sequentially
	JournalWrites int64 // journal flush I/Os (bin-buffer flushes)

	Elapsed     time.Duration // reduction pipeline makespan (virtual)
	IOPS        float64
	BytesPerSec float64

	// Achieved ratios, measured on the real data.
	DedupRatio     float64 // chunks / unique chunks
	CompRatio      float64 // unique bytes / stored bytes
	ReductionRatio float64 // stream bytes / stored bytes

	CPUUtil     float64
	GPUUtil     float64
	GPULinkUtil float64
	SSDUtil     float64

	GPUKernels       int64
	GPUIndexBatches  int64
	GPUIndexedChunks int64

	IndexEntries   int64
	IndexMemory    int64
	IndexEvictions int64

	SSD         ssd.Stats
	SSDWriteAmp float64
	MaxErase    int

	Faults FaultStats

	Stages Breakdown
}

// FaultStats reports what the run survived: injected faults that fired and
// the recovery/degradation actions the pipeline took. All zero (and absent
// from String) when fault injection is off, keeping rate-0 Reports
// bit-identical to a build without injection.
type FaultStats struct {
	SSDWriteRetries      int64 // transient write errors cleared by retry
	SSDReadRetries       int64 // transient read errors cleared by retry
	LatencySpikes        int64 // injected latency spikes absorbed
	JournalTornRecords   int64 // flush records torn mid-write
	JournalWriteFailures int64 // permanent journal-write failures (journaling degraded off)
	GPUFallbackBatches   int64 // compression batches re-run on the CPU after device loss
	GPUDeviceLost        bool  // the GPU died mid-run and stayed dead
	IndexEvictions       int64 // entries evicted by injected memory pressure
}

// Any reports whether any fault activity was recorded.
func (f FaultStats) Any() bool { return f != (FaultStats{}) }

// SpeedupOver returns this report's IOPS relative to a baseline run.
func (r *Report) SpeedupOver(base *Report) float64 {
	if base == nil || base.IOPS == 0 {
		return 0
	}
	return r.IOPS / base.IOPS
}

// String renders a human-readable summary.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "mode=%s bytes=%d chunks=%d (unique=%d dup=%d)\n",
		r.Mode, r.Bytes, r.Chunks, r.UniqueChunks, r.DupChunks)
	fmt.Fprintf(&b, "  elapsed=%v  throughput=%.0f IOPS (%s)\n",
		r.Elapsed.Round(time.Microsecond), r.IOPS, sim.FormatRate(r.BytesPerSec))
	fmt.Fprintf(&b, "  ratios: dedup=%.2f comp=%.2f total=%.2f  stored=%d journal=%d\n",
		r.DedupRatio, r.CompRatio, r.ReductionRatio, r.StoredBytes, r.JournalBytes)
	fmt.Fprintf(&b, "  dup hits: gpu=%d buffer=%d tree=%d pending=%d  gpu-indexed=%d chunks in %d batches\n",
		r.DupHitsGPU, r.DupHitsBuffer, r.DupHitsTree, r.DupHitsPending, r.GPUIndexedChunks, r.GPUIndexBatches)
	fmt.Fprintf(&b, "  util: cpu=%.1f%% gpu=%.1f%% pcie=%.1f%% ssd=%.1f%%  kernels=%d\n",
		100*r.CPUUtil, 100*r.GPUUtil, 100*r.GPULinkUtil, 100*r.SSDUtil, r.GPUKernels)
	fmt.Fprintf(&b, "  ssd: hostW=%d nandW=%d WA=%.2f erases=%d maxErase=%d\n",
		r.SSD.HostWritePages, r.SSD.NANDWritePages, r.SSDWriteAmp, r.SSD.Erases, r.MaxErase)
	if r.Faults.Any() {
		fmt.Fprintf(&b, "  faults: ssd-write-retries=%d ssd-read-retries=%d spikes=%d journal-torn=%d journal-failed=%d gpu-lost=%v gpu-fallback=%d index-evict=%d\n",
			r.Faults.SSDWriteRetries, r.Faults.SSDReadRetries, r.Faults.LatencySpikes,
			r.Faults.JournalTornRecords, r.Faults.JournalWriteFailures,
			r.Faults.GPUDeviceLost, r.Faults.GPUFallbackBatches, r.Faults.IndexEvictions)
	}
	if total := r.Stages.Total(); total > 0 {
		fmt.Fprintf(&b, "  cpu stages: chunk=%.1f%% hash=%.1f%% index=%.1f%% compress=%.1f%% postproc=%.1f%% insert=%.1f%% gpu-merge=%.1f%%",
			100*r.Stages.Chunking/total, 100*r.Stages.Hashing/total, 100*r.Stages.Indexing/total,
			100*r.Stages.Compression/total, 100*r.Stages.PostProcess/total, 100*r.Stages.Insert/total,
			100*r.Stages.GPUMerge/total)
	}
	return b.String()
}
