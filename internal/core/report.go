package core

import (
	"fmt"
	"strings"
	"time"

	"inlinered/internal/sim"
	"inlinered/internal/ssd"
)

// Breakdown is the virtual CPU time spent per pipeline stage, in seconds of
// core-busy time (summed over threads). It shows where the reduction cycles
// go — the paper's bottleneck analysis (hashing and indexing dominate
// dedup; the match search dominates compression).
type Breakdown struct {
	Chunking    float64 `json:"chunking_s"`
	Hashing     float64 `json:"hashing_s"`
	Indexing    float64 `json:"indexing_s"`
	Compression float64 `json:"compression_s"`  // CPU compression (or raw-store staging)
	PostProcess float64 `json:"post_process_s"` // refinement of GPU compression results
	Insert      float64 `json:"insert_s"`       // bin-buffer/bin-tree updates and flushes
	GPUMerge    float64 `json:"gpu_merge_s"`    // staging GPU index results
}

// Total returns the summed stage time.
func (b Breakdown) Total() float64 {
	return b.Chunking + b.Hashing + b.Indexing + b.Compression + b.PostProcess + b.Insert + b.GPUMerge
}

// Report summarizes one pipeline run. Throughput figures are in the paper's
// units: IOPS are chunk-sized writes per second of virtual time.
type Report struct {
	Mode  Mode  `json:"mode"`
	Bytes int64 `json:"bytes"` // stream bytes ingested

	Chunks       int64 `json:"chunks"`
	UniqueChunks int64 `json:"unique_chunks"`
	UniqueBytes  int64 `json:"unique_bytes"`
	DupChunks    int64 `json:"dup_chunks"`

	// Duplicate hit breakdown across Figure 1's three probes, plus
	// duplicates of uniques still in flight to the GPU compressor.
	DupHitsGPU     int64 `json:"dup_hits_gpu"`
	DupHitsBuffer  int64 `json:"dup_hits_buffer"`
	DupHitsTree    int64 `json:"dup_hits_tree"`
	DupHitsPending int64 `json:"dup_hits_pending"`

	SkippedIncompressible int64 `json:"skipped_incompressible"` // uniques stored raw by the entropy bypass

	StoredBytes   int64 `json:"stored_bytes"`   // compressed unique payload destaged
	JournalBytes  int64 `json:"journal_bytes"`  // index journal flushed sequentially
	JournalWrites int64 `json:"journal_writes"` // journal flush I/Os (bin-buffer flushes)

	Elapsed     time.Duration `json:"elapsed_ns"` // reduction pipeline makespan (virtual)
	IOPS        float64       `json:"iops"`
	BytesPerSec float64       `json:"bytes_per_sec"`

	// Achieved ratios, measured on the real data.
	DedupRatio     float64 `json:"dedup_ratio"`     // chunks / unique chunks
	CompRatio      float64 `json:"comp_ratio"`      // unique bytes / stored bytes
	ReductionRatio float64 `json:"reduction_ratio"` // stream bytes / stored bytes

	CPUUtil     float64 `json:"cpu_util"`
	GPUUtil     float64 `json:"gpu_util"`
	GPULinkUtil float64 `json:"gpu_link_util"`
	SSDUtil     float64 `json:"ssd_util"`

	GPUKernels       int64 `json:"gpu_kernels"`
	GPUIndexBatches  int64 `json:"gpu_index_batches"`
	GPUIndexedChunks int64 `json:"gpu_indexed_chunks"`

	IndexEntries   int64 `json:"index_entries"`
	IndexMemory    int64 `json:"index_memory"`
	IndexEvictions int64 `json:"index_evictions"`

	SSD         ssd.Stats `json:"ssd"`
	SSDWriteAmp float64   `json:"ssd_write_amp"`
	MaxErase    int       `json:"max_erase"`

	Faults FaultStats `json:"faults"`

	// Latency is populated only when Config.Obs is attached (observability
	// runs); an obs-off Report stays bit-identical to a build without it.
	Latency PipelineLatency `json:"latency"`

	Stages Breakdown `json:"stages"`
}

// PipelineLatency digests the engine-level latency histograms: how long a
// bin-buffer flush takes to land in the journal region, and the host-side
// turnaround of a GPU compression batch (batch ready → compressed lanes
// back in host memory — the round trip §3.2(2) amortizes by batching).
type PipelineLatency struct {
	JournalFlush sim.LatencySummary `json:"journal_flush"`
	GPUBatch     sim.LatencySummary `json:"gpu_batch"`
}

// Any reports whether any latency samples were recorded.
func (l PipelineLatency) Any() bool { return l != (PipelineLatency{}) }

// FaultStats reports what the run survived: injected faults that fired and
// the recovery/degradation actions the pipeline took. All zero (and absent
// from String) when fault injection is off, keeping rate-0 Reports
// bit-identical to a build without injection.
type FaultStats struct {
	SSDWriteRetries      int64 `json:"ssd_write_retries"`      // transient write errors cleared by retry
	SSDReadRetries       int64 `json:"ssd_read_retries"`       // transient read errors cleared by retry
	LatencySpikes        int64 `json:"latency_spikes"`         // injected latency spikes absorbed
	JournalTornRecords   int64 `json:"journal_torn_records"`   // flush records torn mid-write
	JournalWriteFailures int64 `json:"journal_write_failures"` // permanent journal-write failures (journaling degraded off)
	GPUFallbackBatches   int64 `json:"gpu_fallback_batches"`   // compression batches re-run on the CPU after device loss
	GPUDeviceLost        bool  `json:"gpu_device_lost"`        // the GPU died mid-run and stayed dead
	IndexEvictions       int64 `json:"index_evictions"`        // entries evicted by injected memory pressure
}

// Any reports whether any fault activity was recorded.
func (f FaultStats) Any() bool { return f != (FaultStats{}) }

// SpeedupOver returns this report's IOPS relative to a baseline run.
func (r *Report) SpeedupOver(base *Report) float64 {
	if base == nil || base.IOPS == 0 {
		return 0
	}
	return r.IOPS / base.IOPS
}

// String renders a human-readable summary.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "mode=%s bytes=%d chunks=%d (unique=%d dup=%d)\n",
		r.Mode, r.Bytes, r.Chunks, r.UniqueChunks, r.DupChunks)
	fmt.Fprintf(&b, "  elapsed=%v  throughput=%.0f IOPS (%s)\n",
		r.Elapsed.Round(time.Microsecond), r.IOPS, sim.FormatRate(r.BytesPerSec))
	fmt.Fprintf(&b, "  ratios: dedup=%.2f comp=%.2f total=%.2f  stored=%d journal=%d\n",
		r.DedupRatio, r.CompRatio, r.ReductionRatio, r.StoredBytes, r.JournalBytes)
	fmt.Fprintf(&b, "  dup hits: gpu=%d buffer=%d tree=%d pending=%d  gpu-indexed=%d chunks in %d batches\n",
		r.DupHitsGPU, r.DupHitsBuffer, r.DupHitsTree, r.DupHitsPending, r.GPUIndexedChunks, r.GPUIndexBatches)
	fmt.Fprintf(&b, "  util: cpu=%.1f%% gpu=%.1f%% pcie=%.1f%% ssd=%.1f%%  kernels=%d\n",
		100*r.CPUUtil, 100*r.GPUUtil, 100*r.GPULinkUtil, 100*r.SSDUtil, r.GPUKernels)
	fmt.Fprintf(&b, "  ssd: hostW=%d nandW=%d WA=%.2f erases=%d maxErase=%d\n",
		r.SSD.HostWritePages, r.SSD.NANDWritePages, r.SSDWriteAmp, r.SSD.Erases, r.MaxErase)
	if r.Faults.Any() {
		fmt.Fprintf(&b, "  faults: ssd-write-retries=%d ssd-read-retries=%d spikes=%d journal-torn=%d journal-failed=%d gpu-lost=%v gpu-fallback=%d index-evict=%d\n",
			r.Faults.SSDWriteRetries, r.Faults.SSDReadRetries, r.Faults.LatencySpikes,
			r.Faults.JournalTornRecords, r.Faults.JournalWriteFailures,
			r.Faults.GPUDeviceLost, r.Faults.GPUFallbackBatches, r.Faults.IndexEvictions)
	}
	if r.Latency.Any() {
		jf, gb := r.Latency.JournalFlush, r.Latency.GPUBatch
		fmt.Fprintf(&b, "  latency: journal-flush[p50=%v p95=%v p99=%v max=%v n=%d] gpu-batch[p50=%v p95=%v p99=%v max=%v n=%d]\n",
			jf.P50, jf.P95, jf.P99, jf.Max, jf.Count,
			gb.P50, gb.P95, gb.P99, gb.Max, gb.Count)
	}
	if total := r.Stages.Total(); total > 0 {
		fmt.Fprintf(&b, "  cpu stages: chunk=%.1f%% hash=%.1f%% index=%.1f%% compress=%.1f%% postproc=%.1f%% insert=%.1f%% gpu-merge=%.1f%%",
			100*r.Stages.Chunking/total, 100*r.Stages.Hashing/total, 100*r.Stages.Indexing/total,
			100*r.Stages.Compression/total, 100*r.Stages.PostProcess/total, 100*r.Stages.Insert/total,
			100*r.Stages.GPUMerge/total)
	}
	return b.String()
}
