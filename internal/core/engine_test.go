package core

import (
	"bytes"
	"io"
	"math"
	"strings"
	"testing"

	"inlinered/internal/dedup"
	"inlinered/internal/parallel"
	"inlinered/internal/workload"
)

// testStream builds a small calibrated stream.
func testStream(t *testing.T, totalBytes int64, dd, cr float64, pattern workload.RefPattern) *workload.Stream {
	t.Helper()
	s, err := workload.New(workload.Spec{
		TotalBytes: totalBytes,
		ChunkSize:  4096,
		DedupRatio: dd,
		CompRatio:  cr,
		Pattern:    pattern,
		Seed:       3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// testConfig returns a small, fast configuration with verification on.
func testConfig(mode Mode) Config {
	cfg := DefaultConfig()
	cfg.Mode = mode
	cfg.Batch = 128
	cfg.GPUCompressBatch = 64
	cfg.Lookahead = 4
	cfg.Verify = true
	return cfg
}

func runPipeline(t *testing.T, plat Platform, cfg Config, s *workload.Stream) (*Engine, *Report) {
	t.Helper()
	eng, err := NewEngine(plat, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.Process(s)
	if err != nil {
		t.Fatal(err)
	}
	return eng, rep
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.ChunkSize = 1 },
		func(c *Config) { c.Batch = 0 },
		func(c *Config) { c.GPUCompressBatch = 0 },
		func(c *Config) { c.Lookahead = 0 },
		func(c *Config) { c.Dedup, c.Compress = false, false },
		func(c *Config) { c.Mode = Mode(9) },
		func(c *Config) { c.Index.BufferEntries = 0 },
	}
	for i, mut := range bad {
		cfg := DefaultConfig()
		mut(&cfg)
		if cfg.Validate() == nil {
			t.Errorf("case %d should be invalid", i)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestModeStrings(t *testing.T) {
	want := map[Mode]string{
		CPUOnly: "cpu-only", GPUDedup: "gpu-dedup",
		GPUCompress: "gpu-compress", GPUBoth: "gpu-both", Mode(7): "mode(7)",
	}
	for m, s := range want {
		if m.String() != s {
			t.Errorf("mode %d: %q", int(m), m.String())
		}
	}
	if !GPUBoth.UsesGPUDedup() || !GPUBoth.UsesGPUCompress() || CPUOnly.UsesGPUDedup() {
		t.Fatal("mode predicates broken")
	}
}

func TestGPUModeNeedsGPU(t *testing.T) {
	for _, m := range []Mode{GPUDedup, GPUCompress, GPUBoth} {
		cfg := testConfig(m)
		if _, err := NewEngine(CPUOnlyPlatform(), cfg); err == nil {
			t.Errorf("mode %s should be rejected without a GPU", m)
		}
	}
}

func TestEngineSingleUse(t *testing.T) {
	s := testStream(t, 1<<20, 1.0, 1.0, workload.RefUniform)
	eng, _ := runPipeline(t, PaperPlatform(), testConfig(CPUOnly), s)
	if _, err := eng.Process(strings.NewReader("x")); err == nil {
		t.Fatal("second Process should fail")
	}
}

func TestPipelineVerifiesAllModes(t *testing.T) {
	for _, m := range Modes {
		s := testStream(t, 8<<20, 2.0, 2.0, workload.RefUniform)
		eng, rep := runPipeline(t, PaperPlatform(), testConfig(m), s)
		if rep.Chunks != int64(s.Chunks()) {
			t.Fatalf("%s: processed %d of %d chunks", m, rep.Chunks, s.Chunks())
		}
		s.Reset()
		if err := eng.VerifyAgainst(s); err != nil {
			t.Fatalf("%s: %v", m, err)
		}
	}
}

func TestDedupRatioObserved(t *testing.T) {
	s := testStream(t, 8<<20, 2.0, 2.0, workload.RefUniform)
	_, rep := runPipeline(t, PaperPlatform(), testConfig(CPUOnly), s)
	if math.Abs(rep.DedupRatio-2.0) > 0.1 {
		t.Fatalf("dedup ratio: got %g, want ~2.0", rep.DedupRatio)
	}
	if rep.DupChunks+rep.UniqueChunks != rep.Chunks {
		t.Fatalf("chunk accounting: %d + %d != %d", rep.DupChunks, rep.UniqueChunks, rep.Chunks)
	}
	hits := rep.DupHitsGPU + rep.DupHitsBuffer + rep.DupHitsTree + rep.DupHitsPending
	if hits != rep.DupChunks {
		t.Fatalf("hit breakdown (%d) != dup chunks (%d)", hits, rep.DupChunks)
	}
}

func TestCompressionRatioObserved(t *testing.T) {
	s := testStream(t, 8<<20, 1.0, 2.0, workload.RefUniform)
	cfg := testConfig(CPUOnly)
	cfg.Dedup = false
	_, rep := runPipeline(t, PaperPlatform(), cfg, s)
	if math.Abs(rep.CompRatio-2.0) > 0.25 {
		t.Fatalf("compression ratio: got %g, want ~2.0", rep.CompRatio)
	}
	if rep.StoredBytes >= rep.Bytes {
		t.Fatal("compression should reduce stored bytes")
	}
}

func TestReductionRatioIntegrated(t *testing.T) {
	s := testStream(t, 8<<20, 2.0, 2.0, workload.RefUniform)
	_, rep := runPipeline(t, PaperPlatform(), testConfig(CPUOnly), s)
	// dedup 2.0 × compression 2.0 ≈ 4× total reduction.
	if rep.ReductionRatio < 3.2 || rep.ReductionRatio > 4.8 {
		t.Fatalf("total reduction: got %g, want ~4", rep.ReductionRatio)
	}
}

func TestNoDedupStoresEverything(t *testing.T) {
	s := testStream(t, 4<<20, 2.0, 1.0, workload.RefUniform)
	cfg := testConfig(CPUOnly)
	cfg.Dedup = false
	cfg.Compress = false
	t.Run("invalid", func(t *testing.T) {
		if _, err := NewEngine(PaperPlatform(), cfg); err == nil {
			t.Fatal("both operations off should be rejected")
		}
	})
	cfg.Compress = true
	eng, rep := runPipeline(t, PaperPlatform(), cfg, s)
	if rep.UniqueChunks != rep.Chunks || rep.DupChunks != 0 {
		t.Fatal("without dedup every chunk is unique")
	}
	s.Reset()
	if err := eng.VerifyAgainst(s); err != nil {
		t.Fatal(err)
	}
}

func TestRawStoreWithoutCompression(t *testing.T) {
	s := testStream(t, 4<<20, 2.0, 4.0, workload.RefUniform)
	cfg := testConfig(CPUOnly)
	cfg.Compress = false
	eng, rep := runPipeline(t, PaperPlatform(), cfg, s)
	// Raw store: stored bytes ≈ unique bytes (plus tiny headers).
	uniqueBytes := rep.UniqueChunks * 4096
	if rep.StoredBytes < uniqueBytes || rep.StoredBytes > uniqueBytes+uniqueBytes/100 {
		t.Fatalf("raw store: %d stored for %d unique bytes", rep.StoredBytes, uniqueBytes)
	}
	s.Reset()
	if err := eng.VerifyAgainst(s); err != nil {
		t.Fatal(err)
	}
}

func TestGPUDedupActuallyScreens(t *testing.T) {
	s := testStream(t, 16<<20, 2.0, 2.0, workload.RefUniform)
	_, rep := runPipeline(t, PaperPlatform(), testConfig(GPUDedup), s)
	if rep.GPUIndexBatches == 0 || rep.GPUIndexedChunks == 0 {
		t.Fatal("GPU dedup mode never used the GPU for indexing")
	}
	if rep.GPUKernels == 0 {
		t.Fatal("no kernels launched")
	}
}

func TestGPUCompressUsesDevice(t *testing.T) {
	s := testStream(t, 8<<20, 1.0, 2.0, workload.RefUniform)
	cfg := testConfig(GPUCompress)
	cfg.Dedup = false
	_, rep := runPipeline(t, PaperPlatform(), cfg, s)
	if rep.GPUKernels == 0 || rep.GPUUtil == 0 {
		t.Fatal("GPU compress mode never used the GPU")
	}
	if rep.CompRatio < 1.5 {
		t.Fatalf("sub-block compression ratio too low: %g", rep.CompRatio)
	}
}

func TestThroughputConsistency(t *testing.T) {
	s := testStream(t, 8<<20, 2.0, 2.0, workload.RefUniform)
	_, rep := runPipeline(t, PaperPlatform(), testConfig(CPUOnly), s)
	if rep.Elapsed <= 0 {
		t.Fatal("no virtual time elapsed")
	}
	wantIOPS := float64(rep.Chunks) / rep.Elapsed.Seconds()
	if math.Abs(rep.IOPS-wantIOPS)/wantIOPS > 1e-9 {
		t.Fatalf("IOPS inconsistent: %g vs %g", rep.IOPS, wantIOPS)
	}
	if rep.CPUUtil <= 0 || rep.CPUUtil > 1.0000001 {
		t.Fatalf("CPU utilization out of range: %g", rep.CPUUtil)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() *Report {
		s := testStream(t, 8<<20, 2.0, 2.0, workload.RefRecent)
		_, rep := runPipeline(t, PaperPlatform(), testConfig(GPUBoth), s)
		return rep
	}
	a, b := run(), run()
	if a.Elapsed != b.Elapsed || a.UniqueChunks != b.UniqueChunks || a.StoredBytes != b.StoredBytes {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestSSDAccounting(t *testing.T) {
	s := testStream(t, 8<<20, 2.0, 2.0, workload.RefUniform)
	_, rep := runPipeline(t, PaperPlatform(), testConfig(CPUOnly), s)
	if rep.SSD.HostWritePages == 0 {
		t.Fatal("destage wrote nothing")
	}
	// Stored bytes at comp ratio 2 ≈ half the unique pages plus journal.
	minPages := rep.StoredBytes / 4096
	if rep.SSD.HostWritePages < minPages {
		t.Fatalf("host pages %d below stored bytes %d", rep.SSD.HostWritePages, rep.StoredBytes)
	}
	if rep.JournalBytes == 0 {
		t.Fatal("bin buffer flushes should journal to the SSD")
	}
}

func TestIncludeDestageExtendsElapsed(t *testing.T) {
	mk := func(include bool) *Report {
		s := testStream(t, 4<<20, 1.0, 1.0, workload.RefUniform)
		cfg := testConfig(CPUOnly)
		cfg.Dedup = false
		cfg.IncludeDestage = include
		_, rep := runPipeline(t, PaperPlatform(), cfg, s)
		return rep
	}
	with, without := mk(true), mk(false)
	if with.Elapsed < without.Elapsed {
		t.Fatalf("destage-inclusive elapsed (%v) < exclusive (%v)", with.Elapsed, without.Elapsed)
	}
}

func TestVerifyNeedsFlag(t *testing.T) {
	s := testStream(t, 1<<20, 1.0, 1.0, workload.RefUniform)
	cfg := testConfig(CPUOnly)
	cfg.Verify = false
	eng, _ := runPipeline(t, PaperPlatform(), cfg, s)
	if err := eng.VerifyAgainst(bytes.NewReader(nil)); err == nil {
		t.Fatal("VerifyAgainst without Verify should fail")
	}
}

func TestVerifyCatchesCorruption(t *testing.T) {
	s := testStream(t, 2<<20, 2.0, 2.0, workload.RefUniform)
	eng, _ := runPipeline(t, PaperPlatform(), testConfig(CPUOnly), s)
	// Corrupt one stored blob.
	for loc := range eng.blobs {
		b := eng.blobs[loc]
		if len(b) > 4 {
			b[len(b)-1] ^= 0xFF
			break
		}
	}
	s.Reset()
	if err := eng.VerifyAgainst(s); err == nil {
		t.Fatal("verification should detect corruption")
	}
}

func TestVerifyCatchesWrongStream(t *testing.T) {
	s := testStream(t, 2<<20, 1.0, 1.0, workload.RefUniform)
	eng, _ := runPipeline(t, PaperPlatform(), testConfig(CPUOnly), s)
	other := testStream(t, 2<<20, 1.0, 1.0, workload.RefUniform)
	otherData, _ := io.ReadAll(other)
	otherData[0] ^= 1
	if err := eng.VerifyAgainst(bytes.NewReader(otherData)); err == nil {
		t.Fatal("verification should reject a different stream")
	}
}

func TestDriveFullError(t *testing.T) {
	plat := PaperPlatform()
	plat.SSD.BlocksPerChannel = 4
	plat.SSD.PagesPerBlock = 8
	plat.SSD.Channels = 2
	cfg := testConfig(CPUOnly)
	cfg.Dedup = false
	cfg.Compress = false
	cfg.Compress = true // keep one op on; incompressible data defeats it
	s := testStream(t, 4<<20, 1.0, 1.0, workload.RefUniform)
	eng, err := NewEngine(plat, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Process(s); err == nil || !strings.Contains(err.Error(), "full") {
		t.Fatalf("tiny drive should fill up, got %v", err)
	}
}

func TestPendingDuplicatesResolved(t *testing.T) {
	// A stream where neighbours duplicate within the GPU batching window:
	// the inflight table must catch them and verification must still pass.
	chunkA := bytes.Repeat([]byte{0xAA}, 4096)
	chunkB := bytes.Repeat([]byte{0xBB}, 4096)
	var stream []byte
	for i := 0; i < 64; i++ {
		stream = append(stream, chunkA...)
		stream = append(stream, chunkB...)
	}
	cfg := testConfig(GPUCompress)
	cfg.GPUCompressBatch = 32 // force several in-flight windows
	eng, err := NewEngine(PaperPlatform(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.Process(bytes.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	if rep.UniqueChunks != 2 {
		t.Fatalf("unique chunks: got %d, want 2", rep.UniqueChunks)
	}
	if rep.DupHitsPending == 0 {
		t.Fatal("expected in-flight duplicate hits")
	}
	if err := eng.VerifyAgainst(bytes.NewReader(stream)); err != nil {
		t.Fatal(err)
	}
}

func TestReportString(t *testing.T) {
	s := testStream(t, 2<<20, 2.0, 2.0, workload.RefUniform)
	_, rep := runPipeline(t, PaperPlatform(), testConfig(GPUCompress), s)
	str := rep.String()
	for _, want := range []string{"gpu-compress", "IOPS", "dedup", "ssd"} {
		if !strings.Contains(str, want) {
			t.Errorf("report string missing %q:\n%s", want, str)
		}
	}
	if rep.SpeedupOver(nil) != 0 || rep.SpeedupOver(rep) != 1 {
		t.Fatal("SpeedupOver broken")
	}
}

func TestCalibratePicksAMode(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Batch = 128
	cfg.GPUCompressBatch = 64
	res, err := Calibrate(PaperPlatform(), cfg, 8<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) != 4 {
		t.Fatalf("expected all 4 modes calibrated, got %d", len(res.Reports))
	}
	best := res.Reports[res.Best].IOPS
	for m, r := range res.Reports {
		if r.IOPS > best {
			t.Fatalf("calibration picked %s (%.0f) but %s is faster (%.0f)", res.Best, best, m, r.IOPS)
		}
	}
}

func TestCalibrateCPUOnlyPlatform(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Batch = 128
	res, err := Calibrate(CPUOnlyPlatform(), cfg, 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best != CPUOnly || len(res.Reports) != 1 {
		t.Fatalf("GPU-less platform must pick cpu-only: %+v", res.Best)
	}
}

func TestStageBreakdown(t *testing.T) {
	s := testStream(t, 8<<20, 2.0, 2.0, workload.RefUniform)
	_, rep := runPipeline(t, PaperPlatform(), testConfig(CPUOnly), s)
	b := rep.Stages
	if b.Total() <= 0 {
		t.Fatal("no stage time recorded")
	}
	// Hashing and compression are the heavyweights in a CPU-only
	// integrated run; both paper bottlenecks must be visible.
	if b.Hashing <= 0 || b.Compression <= 0 || b.Indexing <= 0 || b.Insert <= 0 {
		t.Fatalf("missing stage time: %+v", b)
	}
	if b.PostProcess != 0 || b.GPUMerge != 0 {
		t.Fatalf("CPU-only run should have no GPU stages: %+v", b)
	}
	// The breakdown total must equal the pool's busy time (all CPU jobs
	// are attributed to exactly one stage).
	busy := rep.CPUUtil * rep.Elapsed.Seconds() * 8
	if math.Abs(b.Total()-busy)/busy > 0.02 {
		t.Fatalf("stage breakdown (%.4fs) != CPU busy time (%.4fs)", b.Total(), busy)
	}
}

func TestStageBreakdownGPUCompress(t *testing.T) {
	s := testStream(t, 8<<20, 2.0, 2.0, workload.RefUniform)
	_, rep := runPipeline(t, PaperPlatform(), testConfig(GPUCompress), s)
	if rep.Stages.PostProcess <= 0 {
		t.Fatal("GPU compression must show CPU post-processing time")
	}
	if rep.Stages.Compression != 0 {
		t.Fatal("GPU compression mode should not charge CPU compression")
	}
}

func TestAccessors(t *testing.T) {
	s := testStream(t, 1<<20, 2.0, 1.0, workload.RefUniform)
	eng, _ := runPipeline(t, PaperPlatform(), testConfig(CPUOnly), s)
	if eng.Drive() == nil || eng.Index() == nil {
		t.Fatal("accessors should expose the run's resources")
	}
	if eng.Index().Len() == 0 {
		t.Fatal("index should hold the uniques")
	}
	if eng.Drive().Stats().HostWritePages == 0 {
		t.Fatal("drive should have absorbed the destage")
	}
}

func TestWeakGPUPlatformShape(t *testing.T) {
	p := WeakGPUPlatform()
	if !p.HasGPU {
		t.Fatal("weak GPU platform still has a GPU")
	}
	strong := PaperPlatform()
	if p.GPU.ComputeUnits >= strong.GPU.ComputeUnits || p.GPU.LaunchOverhead <= strong.GPU.LaunchOverhead {
		t.Fatal("weak GPU should be weaker than the paper GPU")
	}
}

func TestParallelMapCoversAllIndices(t *testing.T) {
	pool := parallel.New(4)
	defer pool.Close()
	for _, n := range []int{0, 1, 7, 100} {
		hit := make([]bool, n)
		pool.Map(n, func(i int) { hit[i] = true })
		for i, h := range hit {
			if !h {
				t.Fatalf("n=%d: index %d not visited", n, i)
			}
		}
	}
}

func TestEntropyBypass(t *testing.T) {
	// A fully incompressible stream: with the bypass, every unique chunk
	// skips the encoder and the run is much faster in virtual time.
	mk := func(skip bool) *Report {
		s := testStream(t, 8<<20, 1.0, 1.0, workload.RefUniform)
		cfg := testConfig(CPUOnly)
		cfg.Dedup = false
		cfg.SkipIncompressible = skip
		eng, rep := runPipeline(t, PaperPlatform(), cfg, s)
		s.Reset()
		if err := eng.VerifyAgainst(s); err != nil {
			t.Fatal(err)
		}
		return rep
	}
	with, without := mk(true), mk(false)
	if with.SkippedIncompressible == 0 {
		t.Fatal("bypass never triggered on random data")
	}
	if without.SkippedIncompressible != 0 {
		t.Fatal("bypass triggered while disabled")
	}
	if with.IOPS <= without.IOPS*1.5 {
		t.Fatalf("bypass should be much faster on incompressible data: %.0f vs %.0f", with.IOPS, without.IOPS)
	}
}

func TestEntropyBypassLeavesCompressibleAlone(t *testing.T) {
	s := testStream(t, 8<<20, 1.0, 3.0, workload.RefUniform)
	cfg := testConfig(CPUOnly)
	cfg.Dedup = false
	cfg.SkipIncompressible = true
	_, rep := runPipeline(t, PaperPlatform(), cfg, s)
	if rep.SkippedIncompressible != 0 {
		t.Fatalf("compressible chunks skipped: %d", rep.SkippedIncompressible)
	}
	if rep.CompRatio < 2.5 {
		t.Fatalf("compression should still happen: ratio %g", rep.CompRatio)
	}
}

func TestJournalRecovery(t *testing.T) {
	s := testStream(t, 16<<20, 2.0, 2.0, workload.RefUniform)
	eng, rep := runPipeline(t, PaperPlatform(), testConfig(CPUOnly), s)
	if len(eng.JournalImage()) == 0 {
		t.Fatal("dedup run should journal its flushes")
	}
	rec, rcv, err := eng.RecoverIndex()
	if err != nil {
		t.Fatal(err)
	}
	if rcv.Truncated {
		t.Fatalf("clean shutdown journal reported truncation: %+v", rcv)
	}
	// Clean shutdown (finalFlush journals everything): the recovered index
	// holds every unique chunk's entry.
	if rec.Len() != eng.Index().Len() {
		t.Fatalf("recovered %d entries, live %d", rec.Len(), eng.Index().Len())
	}
	if rec.Len() != rep.UniqueChunks {
		t.Fatalf("recovered %d, uniques %d", rec.Len(), rep.UniqueChunks)
	}
	// And resolves a re-run of the stream entirely as duplicates.
	s.Reset()
	ck := 0
	for i := 0; i < 200; i++ {
		if p := rec.Lookup(workloadFP(s, i)); p.Found {
			ck++
		}
	}
	if ck != 200 {
		t.Fatalf("recovered index resolved %d/200 chunks", ck)
	}
}

func workloadFP(s *workload.Stream, i int) dedup.Fingerprint {
	return dedup.Sum(s.Chunk(i))
}

func TestRecoverIndexWithoutDedup(t *testing.T) {
	cfg := testConfig(CPUOnly)
	cfg.Dedup = false
	s := testStream(t, 1<<20, 1.0, 1.0, workload.RefUniform)
	eng, _ := runPipeline(t, PaperPlatform(), cfg, s)
	if _, _, err := eng.RecoverIndex(); err == nil {
		t.Fatal("recovery without dedup should error")
	}
	if eng.JournalImage() != nil {
		t.Fatal("no journal expected without dedup")
	}
}

// Property: for arbitrary small workload specs and modes, the pipeline
// conserves chunks (unique + dup = total), reports consistent ratios, and
// reconstructs the stream bit-for-bit.
func TestPipelineConservationProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property sweep")
	}
	seeds := []int64{1, 2, 3}
	dds := []float64{1.0, 1.7, 3.0}
	crs := []float64{1.0, 2.5}
	modes := []Mode{CPUOnly, GPUCompress, GPUBoth}
	for i, seed := range seeds {
		dd, cr, m := dds[i%len(dds)], crs[i%len(crs)], modes[i%len(modes)]
		s, err := workload.New(workload.Spec{
			TotalBytes: 6 << 20, ChunkSize: 4096,
			DedupRatio: dd, CompRatio: cr, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		cfg := testConfig(m)
		eng, rep := runPipeline(t, PaperPlatform(), cfg, s)
		if rep.UniqueChunks+rep.DupChunks != rep.Chunks {
			t.Fatalf("seed %d: chunk conservation broken", seed)
		}
		if rep.Chunks != int64(s.Chunks()) {
			t.Fatalf("seed %d: processed %d of %d", seed, rep.Chunks, s.Chunks())
		}
		if rep.StoredBytes <= 0 || rep.StoredBytes > rep.Bytes+rep.Bytes/50 {
			t.Fatalf("seed %d: stored bytes %d out of range", seed, rep.StoredBytes)
		}
		if rep.Elapsed <= 0 || rep.IOPS <= 0 {
			t.Fatalf("seed %d: no progress", seed)
		}
		s.Reset()
		if err := eng.VerifyAgainst(s); err != nil {
			t.Fatalf("seed %d (dd=%g cr=%g mode=%s): %v", seed, dd, cr, m, err)
		}
	}
}

func TestCDCWithGPUModes(t *testing.T) {
	// Variable-size CDC chunks through every GPU path: screening batches,
	// the sub-block compression kernel, and post-processing must all
	// handle non-uniform chunk sizes, and the data must reconstruct.
	for _, m := range []Mode{GPUCompress, GPUBoth} {
		s := testStream(t, 8<<20, 2.0, 2.0, workload.RefUniform)
		cfg := testConfig(m)
		cfg.Chunker = CDCChunking
		eng, rep := runPipeline(t, PaperPlatform(), cfg, s)
		if rep.UniqueBytes == rep.UniqueChunks*int64(cfg.ChunkSize) {
			t.Fatalf("%s: CDC should produce variable chunk sizes", m)
		}
		s.Reset()
		if err := eng.VerifyAgainst(s); err != nil {
			t.Fatalf("%s: %v", m, err)
		}
	}
}
