package core

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"inlinered/internal/obs"
	"inlinered/internal/workload"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from the current output")

// goldenReport runs a fixed gpu-both pipeline with a recorder attached; the
// run is fully deterministic, so its report can be locked byte-for-byte.
func goldenReport(t *testing.T) *Report {
	t.Helper()
	cfg := testConfig(GPUBoth)
	cfg.Verify = false
	cfg.Obs = obs.NewRecorder()
	s := testStream(t, 2<<20, 2.0, 2.0, workload.RefUniform)
	_, rep := runPipeline(t, PaperPlatform(), cfg, s)
	return rep
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s: output changed; run with -update if intentional.\ngot:\n%s\nwant:\n%s", name, got, want)
	}
}

// TestReportGolden locks both machine- and human-readable encodings of the
// run report: the stable JSON envelope and Report.String. Any change to
// either format must update the golden files deliberately.
func TestReportGolden(t *testing.T) {
	rep := goldenReport(t)

	js, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "report.json", js)
	checkGolden(t, "report.txt", []byte(rep.String()+"\n"))

	// The envelope must round-trip: schema tag present, report decodable.
	var env struct {
		Schema string `json:"schema"`
		Report Report `json:"report"`
	}
	if err := json.Unmarshal(js, &env); err != nil {
		t.Fatalf("report JSON does not round-trip: %v", err)
	}
	if env.Schema != ReportSchema {
		t.Errorf("schema = %q, want %q", env.Schema, ReportSchema)
	}
	if env.Report.Mode != rep.Mode || env.Report.Chunks != rep.Chunks || env.Report.Elapsed != rep.Elapsed {
		t.Errorf("decoded report differs: got mode=%v chunks=%d elapsed=%v", env.Report.Mode, env.Report.Chunks, env.Report.Elapsed)
	}
	if env.Report.Latency.JournalFlush.Count == 0 {
		t.Error("latency summary lost in round-trip")
	}
}
