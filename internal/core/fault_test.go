package core

import (
	"bytes"
	"fmt"
	"os"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"inlinered/internal/dedup"
	"inlinered/internal/fault"
	"inlinered/internal/workload"
)

// faultSeeds returns the fault seeds to sweep: the FAULT_SEEDS environment
// variable (comma-separated, set by the CI fault matrix) or a fixed default.
func faultSeeds(t *testing.T) []int64 {
	env := os.Getenv("FAULT_SEEDS")
	if env == "" {
		return []int64{1, 7}
	}
	var seeds []int64
	for _, f := range strings.Split(env, ",") {
		s, err := strconv.ParseInt(strings.TrimSpace(f), 10, 64)
		if err != nil {
			t.Fatalf("FAULT_SEEDS: %v", err)
		}
		seeds = append(seeds, s)
	}
	return seeds
}

// indexEntrySet flattens an index into bin|key -> entry for subset checks.
func indexEntrySet(idx *dedup.BinIndex) map[string]dedup.Entry {
	m := make(map[string]dedup.Entry)
	idx.Walk(func(bin uint32, key []byte, e dedup.Entry) bool {
		m[fmt.Sprintf("%d|%x", bin, key)] = e
		return true
	})
	return m
}

// TestFaultSeedDeterminism is the fault-injection determinism contract: a
// fixed fault seed makes the run reproducible — two runs of the same
// workload produce bit-identical Reports (fault counters included) and
// journal images, for any host Parallelism, in every integration mode, and
// the degraded pipeline still verifies byte-exactly against the source.
func TestFaultSeedDeterminism(t *testing.T) {
	run := func(t *testing.T, mode Mode, seed int64, par int) (*Engine, *Report) {
		t.Helper()
		cfg := testConfig(mode)
		cfg.Parallelism = par
		cfg.Faults = fault.Config{Seed: seed, Rates: fault.Uniform(0.01)}
		s := testStream(t, 4<<20, 2.0, 2.0, workload.RefUniform)
		eng, rep := runPipeline(t, PaperPlatform(), cfg, s)
		s.Reset()
		if err := eng.VerifyAgainst(s); err != nil {
			t.Fatalf("mode=%v seed=%d par=%d: verify under faults: %v", mode, seed, par, err)
		}
		return eng, rep
	}
	for _, mode := range Modes {
		for _, seed := range faultSeeds(t) {
			t.Run(fmt.Sprintf("%v/seed=%d", mode, seed), func(t *testing.T) {
				engA, repA := run(t, mode, seed, 1)
				engB, repB := run(t, mode, seed, 4)
				engC, repC := run(t, mode, seed, 4)
				if !reflect.DeepEqual(repA, repB) {
					t.Errorf("reports differ between parallelism 1 and 4:\npar=1: %+v\npar=4: %+v", repA, repB)
				}
				if !reflect.DeepEqual(repB, repC) {
					t.Errorf("reports differ between two identical runs:\nrun1: %+v\nrun2: %+v", repB, repC)
				}
				if !bytes.Equal(engA.JournalImage(), engB.JournalImage()) ||
					!bytes.Equal(engB.JournalImage(), engC.JournalImage()) {
					t.Error("journal images differ for the same fault seed")
				}
				if !repA.Faults.Any() {
					t.Error("uniform 1% rates over this stream should fire at least one fault")
				}
			})
		}
	}
}

// TestZeroRateIdentity: a zero-valued fault config must leave the Report
// and journal image bit-identical to a run with no fault machinery at all.
func TestZeroRateIdentity(t *testing.T) {
	run := func(cfgMut func(*Config)) (*Engine, *Report) {
		cfg := testConfig(CPUOnly)
		cfgMut(&cfg)
		s := testStream(t, 4<<20, 2.0, 2.0, workload.RefUniform)
		return runPipeline(t, PaperPlatform(), cfg, s)
	}
	engOff, repOff := run(func(c *Config) {})
	engZero, repZero := run(func(c *Config) { c.Faults = fault.Config{Seed: 1234} })
	if !reflect.DeepEqual(repOff, repZero) {
		t.Errorf("zero-rate faults changed the report:\noff:  %+v\nzero: %+v", repOff, repZero)
	}
	if !bytes.Equal(engOff.JournalImage(), engZero.JournalImage()) {
		t.Error("zero-rate faults changed the journal image")
	}
	if repZero.Faults.Any() {
		t.Errorf("zero rates recorded fault activity: %+v", repZero.Faults)
	}
	if !strings.Contains(repOff.String(), "ssd:") || strings.Contains(repOff.String(), "faults:") {
		t.Error("fault line must be absent from a fault-free report")
	}
}

// TestGPUDeviceLostFallsBackToCPU: with device loss certain on the first
// kernel launch, every GPU mode must complete the stream on the CPU path,
// record the loss and the fallback, and still verify byte-exactly.
func TestGPUDeviceLostFallsBackToCPU(t *testing.T) {
	for _, mode := range []Mode{GPUDedup, GPUCompress, GPUBoth} {
		t.Run(mode.String(), func(t *testing.T) {
			cfg := testConfig(mode)
			cfg.Faults = fault.Config{Seed: 5, Rates: fault.Rates{GPUDeviceLost: 1}}
			s := testStream(t, 4<<20, 2.0, 2.0, workload.RefUniform)
			eng, rep := runPipeline(t, PaperPlatform(), cfg, s)
			if !rep.Faults.GPUDeviceLost {
				t.Fatal("report must record the device loss")
			}
			// In GPUCompress mode the first launch is a compression kernel,
			// so a whole batch falls back. In GPUBoth the screening probe
			// dies first: nothing is pending yet, and later chunks route
			// down the ordinary CPU path without a fallback batch.
			if mode == GPUCompress && rep.Faults.GPUFallbackBatches == 0 {
				t.Fatal("compression batches must have fallen back to the CPU")
			}
			if mode.UsesGPUCompress() && rep.UniqueChunks > 0 && rep.StoredBytes == 0 {
				t.Fatal("fallback stored nothing")
			}
			s.Reset()
			if err := eng.VerifyAgainst(s); err != nil {
				t.Fatalf("verify after device loss: %v", err)
			}
		})
	}
}

// TestDeviceLostMidRun: loss on a later launch (not the first) leaves the
// already-retired GPU batches valid and re-runs only the pending work.
func TestDeviceLostMidRun(t *testing.T) {
	cfg := testConfig(GPUCompress)
	cfg.Faults = fault.Config{Seed: 11, Rates: fault.Rates{GPUDeviceLost: 0.25}}
	s := testStream(t, 8<<20, 2.0, 2.0, workload.RefUniform)
	eng, rep := runPipeline(t, PaperPlatform(), cfg, s)
	if !rep.Faults.GPUDeviceLost {
		t.Skip("loss did not fire at this seed/rate; covered by the rate-1 test")
	}
	if rep.GPUKernels == 0 {
		t.Fatal("want at least one successful kernel before the loss")
	}
	s.Reset()
	if err := eng.VerifyAgainst(s); err != nil {
		t.Fatalf("verify after mid-run loss: %v", err)
	}
}

// TestTransientWriteRetriesAbsorbed: transient SSD write errors at a rate
// well under the retry budget never surface; the report counts the retries
// and the pipeline's output is unharmed.
func TestTransientWriteRetriesAbsorbed(t *testing.T) {
	cfg := testConfig(CPUOnly)
	cfg.Faults = fault.Config{Seed: 21, Rates: fault.Rates{SSDWriteTransient: 0.2}}
	s := testStream(t, 4<<20, 2.0, 2.0, workload.RefUniform)
	eng, rep := runPipeline(t, PaperPlatform(), cfg, s)
	if rep.Faults.SSDWriteRetries == 0 {
		t.Fatal("20% transient write faults should force retries")
	}
	if rep.SSD.WriteFaults == 0 {
		t.Fatal("drive stats should count the rejected writes")
	}
	s.Reset()
	if err := eng.VerifyAgainst(s); err != nil {
		t.Fatalf("verify under transient write faults: %v", err)
	}
}

// TestTornJournalStillRecovers: injected torn flush records truncate
// recovery at the tear; what is recovered is a consistent prefix (a subset
// of the live index with identical metadata), never garbage.
func TestTornJournalStillRecovers(t *testing.T) {
	cfg := testConfig(CPUOnly)
	cfg.Faults = fault.Config{Seed: 31, Rates: fault.Rates{JournalTorn: 0.02}}
	s := testStream(t, 8<<20, 2.0, 2.0, workload.RefUniform)
	eng, rep := runPipeline(t, PaperPlatform(), cfg, s)
	if rep.Faults.JournalTornRecords == 0 {
		t.Fatal("2% torn rate over this stream should tear at least one record")
	}
	rec, rcv, err := eng.RecoverIndex()
	if err != nil {
		t.Fatal(err)
	}
	if !rcv.Truncated {
		t.Fatal("a torn journal must report truncation")
	}
	live := indexEntrySet(eng.Index())
	for k, e := range indexEntrySet(rec) {
		le, ok := live[k]
		if !ok {
			t.Fatalf("recovered phantom entry %s", k)
		}
		if e != le {
			t.Fatalf("entry %s: recovered %+v, live %+v", k, e, le)
		}
	}
	// Strict replay must refuse the torn image.
	if _, err := eng.RecoverIndexStrict(); err == nil {
		t.Fatal("strict replay must reject a torn journal")
	}
}

// TestEngineCrashPoints cuts the engine's journal image at every byte (a
// crash at every possible persistence point) and requires each prefix to
// recover into a consistent prefix index: no error, no phantom entries,
// record count monotone in the cut point.
func TestEngineCrashPoints(t *testing.T) {
	cfg := testConfig(CPUOnly)
	cfg.Index.BufferEntries = 8 // frequent flushes: more records, denser cuts
	s := testStream(t, 2<<20, 2.0, 2.0, workload.RefUniform)
	eng, _ := runPipeline(t, PaperPlatform(), cfg, s)
	image := eng.JournalImage()
	if len(image) == 0 {
		t.Fatal("run journaled nothing")
	}
	live := indexEntrySet(eng.Index())
	prev := 0
	for cut := 0; cut <= len(image); cut++ {
		rec, rcv, err := dedup.RecoverJournal(image[:cut], cfg.Index)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if rcv.Records < prev {
			t.Fatalf("cut %d: records shrank %d -> %d", cut, prev, rcv.Records)
		}
		prev = rcv.Records
		rec.Walk(func(bin uint32, key []byte, e dedup.Entry) bool {
			k := fmt.Sprintf("%d|%x", bin, key)
			le, ok := live[k]
			if !ok {
				t.Fatalf("cut %d: phantom entry %s", cut, k)
			}
			if e != le {
				t.Fatalf("cut %d: entry %s: recovered %+v, live %+v", cut, k, e, le)
			}
			return true
		})
	}
}

// TestIndexEvictionUnderPressure: injected memory-pressure evictions drop
// resident entries (reducing dedup) but never break correctness.
func TestIndexEvictionUnderPressure(t *testing.T) {
	cfg := testConfig(CPUOnly)
	// Few bins with small buffers: entries reach the bin trees quickly, so
	// injected pressure has resident entries to reclaim.
	cfg.Index.BinBits = 6
	cfg.Index.BufferEntries = 4
	cfg.Faults = fault.Config{Seed: 41, Rates: fault.Rates{IndexEvict: 0.05}}
	s := testStream(t, 4<<20, 3.0, 2.0, workload.RefUniform)
	eng, rep := runPipeline(t, PaperPlatform(), cfg, s)
	if rep.Faults.IndexEvictions == 0 {
		t.Fatal("5% eviction rate should evict something")
	}
	s.Reset()
	if err := eng.VerifyAgainst(s); err != nil {
		t.Fatalf("verify under index evictions: %v", err)
	}
}

// TestJournalWriteFailureDegrades drives the journal write path into a
// permanent failure directly: journaling must switch off (not fail the
// run), count the failure, and stop appending to the image.
func TestJournalWriteFailureDegrades(t *testing.T) {
	cfg := testConfig(CPUOnly)
	cfg.Faults = fault.Config{Seed: 3, Rates: fault.Rates{SSDWritePermanent: 1}}
	eng, err := NewEngine(PaperPlatform(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Fabricate one real flush via a scratch index.
	scratch, err := dedup.NewBinIndex(dedup.IndexConfig{BinBits: cfg.Index.BinBits, BufferEntries: 1})
	if err != nil {
		t.Fatal(err)
	}
	var flush *dedup.Flush
	for i := 0; flush == nil; i++ {
		var b [8]byte
		b[0] = byte(i)
		if ir := scratch.Insert(dedup.Sum(b[:]), dedup.Entry{Loc: int64(i)}); ir.Flush != nil {
			flush = ir.Flush
		}
	}
	eng.journalFlush(0, flush)
	if !eng.journalDead {
		t.Fatal("permanent journal-write failure must degrade journaling off")
	}
	if eng.rep.Faults.JournalWriteFailures != 1 {
		t.Fatalf("JournalWriteFailures = %d, want 1", eng.rep.Faults.JournalWriteFailures)
	}
	if len(eng.JournalImage()) != 0 {
		t.Fatal("a record whose write failed must not reach the journal image")
	}
	eng.journalFlush(0, flush) // dead journal: silent no-op
	if eng.rep.Faults.JournalWriteFailures != 1 {
		t.Fatal("dead journal must not count further failures")
	}
}
