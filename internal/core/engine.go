package core

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"inlinered/internal/chunk"
	"inlinered/internal/cpusim"
	"inlinered/internal/dedup"
	"inlinered/internal/fault"
	"inlinered/internal/gpu"
	"inlinered/internal/lz"
	"inlinered/internal/metrics"
	"inlinered/internal/obs"
	"inlinered/internal/parallel"
	"inlinered/internal/sim"
	"inlinered/internal/ssd"
)

// Engine runs the integrated inline data reduction pipeline of Figure 1
// over one write stream. An Engine is single-use: build one per run with
// NewEngine, call Process once, then read the Report. It is not safe for
// concurrent use.
type Engine struct {
	plat  Platform
	cfg   Config
	cpu   *cpusim.CPU
	dev   *gpu.Device
	drive *ssd.Drive
	index *dedup.BinIndex
	gbins *dedup.GPUBins

	dataCursor   int64 // next free data byte (blobs pack into pages log-structured)
	dataLimit    int64 // data region size in bytes
	journalBase  int64 // first page of the journal region
	journalCur   int64
	journalLimit int64

	pendGPU  []gpuPending // unique chunks awaiting a GPU compression kernel
	retired  []retiredBatch
	inflight map[dedup.Fingerprint]*inflightRef

	journal *dedup.JournalWriter // durable image of every bin-buffer flush

	// Fault machinery. The injector is consulted only on the sequential
	// commit path (drive writes, journal flushes, kernel launches, index
	// inserts), never in the read-only prediction pass, so a fixed fault
	// seed stays bit-identical across Parallelism settings.
	faults      *fault.Injector
	gpuLost     bool // the device died; all GPU work re-routes to the CPU
	journalDead bool // journal writes failed permanently; index is memory-only

	// Observability. Like the fault injector, the recorder is driven only
	// from the sequential commit path, so a fixed seed traces identically
	// for any Parallelism; nil means off and bit-identical to HEAD.
	obs          *obs.Recorder
	cpuLanes     []obs.Lane // one trace lane per virtual hardware thread
	histJournal  sim.Histogram
	histGPUBatch sim.Histogram

	rep   Report
	ran   bool
	blobs map[int64][]byte // loc -> stored blob (Verify only)
	locs  []int64          // per chunk -> loc of its stored content (Verify only)

	// Wall-clock machinery. None of this affects the virtual clock: the
	// pool fans real computation out across host cores, and the buffer
	// pools recycle chunk payloads and blob destinations so the steady
	// state allocates nothing per chunk.
	par       int                // host workers (Config.Parallelism; 0 → NumCPU)
	pool      *parallel.Pool     // persistent workers for hash/compress fan-out
	hasher    *dedup.BatchHasher // batched fingerprinting through pool
	chunkBufs bufPool            // chunk payload buffers (chunker → pipeline)
	blobBufs  bufPool            // compression destination buffers

	// Per-batch scratch, reused across batches.
	ready       []time.Duration            // stage-2 ready times (hashEnd copy)
	pre         []preChunk                 // parallel pass results by chunk index
	uniq        []int                      // predicted-unique chunk indices
	seen        map[dedup.Fingerprint]bool // batch-local first occurrences
	hbFree      []*hashedBatch             // recycled batch headers
	batchSlices [][][]byte                 // recycled chunk-pointer slices

	// The precompute fan-out body, built once in NewEngine so the
	// per-batch Map call allocates no closure; its inputs ride in the
	// pre* fields below, published before Map and read only by workers
	// inside it.
	preFn        func(int)
	preChunks    [][]byte
	preGPUMode   bool
	preThreshold float64

	// GPU compression batch scratch, reused across kernel launches.
	subResults []lz.SubBlockResult
	subErrs    []error
	perLane    []float64
}

// bufPool is a LIFO free list of byte buffers. Unlike sync.Pool it never
// boxes the slice header into an interface, so a steady-state Get/Put
// cycle is allocation-free (the whole point of threading it through the
// data plane). Safe for concurrent use by the compression workers.
type bufPool struct {
	mu   sync.Mutex
	free [][]byte
}

// Get returns a zero-length buffer with at least the requested capacity.
func (b *bufPool) Get(capacity int) []byte {
	b.mu.Lock()
	for n := len(b.free); n > 0; n = len(b.free) {
		buf := b.free[n-1]
		b.free = b.free[:n-1]
		if cap(buf) >= capacity {
			b.mu.Unlock()
			return buf
		}
		// Undersized stragglers (e.g. a short final chunk) are dropped.
	}
	b.mu.Unlock()
	return make([]byte, 0, capacity)
}

// Put returns a buffer to the pool once its contents are dead.
func (b *bufPool) Put(buf []byte) {
	if cap(buf) == 0 {
		return
	}
	b.mu.Lock()
	b.free = append(b.free, buf[:0])
	b.mu.Unlock()
}

// gpuPending is one unique chunk queued for the GPU compression kernel.
type gpuPending struct {
	data  []byte
	fp    dedup.Fingerprint
	ready time.Duration // index decision completed
	idx   int64         // stream chunk index (Verify bookkeeping)
}

// retiredBatch is a GPU compression batch whose kernel has completed at
// virtual time t; its CPU post-processing is scheduled once the CPU
// frontier catches up, so the commit order matches the virtual-time order.
type retiredBatch struct {
	t     time.Duration
	pend  []gpuPending
	blobs [][]byte
}

// inflightRef tracks a unique chunk between its index miss and its index
// insert (the dedup-before-compression window of Figure 1: the bin buffer
// is only updated after compression). Later occurrences of the same
// fingerprint inside that window are duplicates of a chunk that has no
// location yet.
type inflightRef struct {
	waiters []int64 // chunk indices awaiting the location (Verify only)
}

// NewEngine builds a pipeline for the platform and configuration.
func NewEngine(plat Platform, cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	needGPU := (cfg.Dedup && cfg.Mode.UsesGPUDedup()) || (cfg.Compress && cfg.Mode.UsesGPUCompress())
	if needGPU && !plat.HasGPU {
		return nil, fmt.Errorf("core: mode %s needs a GPU but the platform has none", cfg.Mode)
	}
	e := &Engine{plat: plat, cfg: cfg}
	e.cpu = cpusim.New(plat.CPU)
	e.drive = ssd.New(plat.SSD)
	if plat.HasGPU && needGPU {
		e.dev = gpu.New(plat.GPU)
	}
	if cfg.Dedup {
		idx, err := dedup.NewBinIndex(cfg.Index)
		if err != nil {
			return nil, err
		}
		e.index = idx
		e.journal = dedup.NewJournalWriter(cfg.Index.PrefixBytes)
		if cfg.Mode.UsesGPUDedup() {
			if cfg.GPUBinBits > cfg.Index.BinBits {
				return nil, fmt.Errorf("core: GPU bins (%d bits) must be no finer than CPU bins (%d bits) so one flush lands in one GPU bin",
					cfg.GPUBinBits, cfg.Index.BinBits)
			}
			g, err := dedup.NewGPUBins(e.dev, cfg.GPUBinBits, cfg.GPUBinCap, cfg.Index.PrefixBytes, 1)
			if err != nil {
				return nil, err
			}
			e.gbins = g
		}
	}
	// Carve the journal region out of the top of the logical space.
	logical := e.drive.LogicalPages()
	reserve := logical / 16
	if reserve < 1 {
		reserve = 1
	}
	e.journalBase = logical - reserve
	e.journalCur = e.journalBase
	e.journalLimit = logical
	e.dataLimit = e.journalBase * int64(e.drive.PageSize)
	if cfg.Faults.Enabled() {
		e.faults = fault.New(cfg.Faults)
		e.drive.SetFaultInjector(e.faults)
		if e.dev != nil {
			e.dev.SetFaultInjector(e.faults)
		}
		if e.index != nil {
			e.index.SetFaultInjector(e.faults)
		}
	}
	if cfg.Obs != nil {
		e.obs = cfg.Obs
		// Lane registration order fixes the pid/tid assignment: CPU hardware
		// threads first, then the SSD channels, then the GPU queue and link.
		e.cpuLanes = make([]obs.Lane, e.cpu.Pool.Servers())
		for i := range e.cpuLanes {
			e.cpuLanes[i] = cfg.Obs.Lane("cpu", fmt.Sprintf("t%d", i))
		}
		e.drive.SetRecorder(cfg.Obs)
		e.drive.MarkJournalRegion(e.journalBase)
		if e.dev != nil {
			e.dev.SetRecorder(cfg.Obs)
		}
	}
	if cfg.Verify {
		e.blobs = make(map[int64][]byte)
	}
	e.inflight = make(map[dedup.Fingerprint]*inflightRef)
	e.par = cfg.Parallelism
	if e.par <= 0 {
		e.par = runtime.NumCPU()
	}
	e.pool = parallel.New(e.par)
	e.hasher = dedup.NewBatchHasher(e.pool)
	e.preFn = func(k int) {
		i := e.uniq[k]
		c := e.preChunks[i]
		pc := &e.pre[i]
		if e.cfg.SkipIncompressible {
			pc.entropy = true
			pc.incompressible = lz.LikelyIncompressible(c, e.preThreshold)
			if pc.incompressible {
				pc.blob = lz.StoreRaw(e.blobBufs.Get(len(c)+blobHeadroom), c)
				pc.done = true
				return
			}
		}
		if e.preGPUMode {
			return // the chunk joins the GPU pending queue instead
		}
		pc.blob, pc.stats = lz.CompressCodec(e.cfg.Codec, e.blobBufs.Get(len(c)+blobHeadroom), c, e.cfg.LZ)
		pc.done = true
	}
	if cfg.Dedup {
		e.seen = make(map[dedup.Fingerprint]bool)
	}
	e.rep.Mode = cfg.Mode
	return e, nil
}

// Drive exposes the engine's SSD for post-run inspection (endurance
// experiments).
func (e *Engine) Drive() *ssd.Drive { return e.drive }

// Index exposes the engine's CPU bin index for post-run inspection.
func (e *Engine) Index() *dedup.BinIndex { return e.index }

// JournalImage returns the serialized index journal — the durable form of
// every bin-buffer flush the run wrote to the SSD's journal region.
func (e *Engine) JournalImage() []byte {
	if e.journal == nil {
		return nil
	}
	return e.journal.Bytes()
}

// RecoverIndex rebuilds an index from the run's journal — what a restart
// after a crash would reconstruct. Recovery is lenient: a trailing torn or
// corrupt record truncates the journal there, and everything before the
// truncation point is applied as a consistent prefix of the flush history
// (the returned Recovery says what was salvaged). Entries still in bin
// buffers at the crash point (never journaled) are absent; their future
// duplicates would be stored again, the memory-only-index tradeoff of §3.1.
func (e *Engine) RecoverIndex() (*dedup.BinIndex, dedup.Recovery, error) {
	if e.journal == nil {
		return nil, dedup.Recovery{}, fmt.Errorf("core: no journal: deduplication disabled")
	}
	return dedup.RecoverJournal(e.journal.Bytes(), e.cfg.Index)
}

// RecoverIndexStrict replays the journal refusing any corruption: a torn
// or bit-flipped record fails the whole replay with dedup.ErrJournalCorrupt.
// Use it when the journal is expected pristine (clean shutdown).
func (e *Engine) RecoverIndexStrict() (*dedup.BinIndex, error) {
	if e.journal == nil {
		return nil, fmt.Errorf("core: no journal: deduplication disabled")
	}
	return dedup.ReplayJournal(e.journal.Bytes(), e.cfg.Index)
}

// Process runs the whole stream through the pipeline and returns the run
// report. It may be called once per Engine.
func (e *Engine) Process(r io.Reader) (*Report, error) {
	if e.ran {
		return nil, fmt.Errorf("core: Engine.Process is single-use; build a new Engine")
	}
	e.ran = true

	defer e.pool.Close()

	// Chunking/hashing has no dependency on anything downstream, so batch
	// N+1's hashing is scheduled before batch N's indexing and compression:
	// this keeps the virtual CPU pool work-conserving, the way an open-loop
	// pipeline with a full input queue behaves on real hardware.
	ck := e.newChunker(r)
	var window []*hashedBatch
	batch := e.getBatchSlice()
	for {
		// Wall-clock chunk stage (metrics side channel; the virtual-time
		// charge for chunking happens in hashBatch, untouched).
		ckStart := metrics.Clock()
		c, err := ck.Next()
		metrics.StageChunk.ObserveSince(ckStart)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("core: reading stream: %w", err)
		}
		batch = append(batch, c.Data)
		if len(batch) == e.cfg.Batch {
			window = append(window, e.hashBatch(batch))
			batch = e.getBatchSlice()
			if len(window) > e.cfg.Lookahead {
				// Screen the batch that will be processed next while this
				// one runs: the GPU round trip hides behind one batch of
				// CPU work, and the device snapshot is at most one batch
				// stale.
				if len(window) > 1 {
					e.screen(window[1])
				}
				if err := e.downstream(window[0]); err != nil {
					return nil, err
				}
				e.recycleBatch(window[0])
				window = window[1:]
			}
		}
	}
	if len(batch) > 0 {
		window = append(window, e.hashBatch(batch))
	}
	for i, hb := range window {
		if i+1 < len(window) {
			e.screen(window[i+1])
		}
		if err := e.downstream(hb); err != nil {
			return nil, err
		}
		e.recycleBatch(hb)
	}
	if err := e.flushGPUCompress(); err != nil {
		return nil, err
	}
	for len(e.retired) > 0 {
		if err := e.retireBatch(e.retired[0]); err != nil {
			return nil, err
		}
		e.retired = e.retired[1:]
	}
	e.finalFlush()
	e.finish()
	return &e.rep, nil
}

// newChunker builds the configured chunker over r, with chunk payload
// buffers drawn from the engine's pool (the pipeline returns each buffer
// once the chunk's data is dead).
func (e *Engine) newChunker(r io.Reader) chunk.Chunker {
	if e.cfg.Chunker == CDCChunking {
		g := chunk.NewGear(r, e.cfg.Gear)
		g.SetBuffers(&e.chunkBufs)
		return g
	}
	f := chunk.NewFixed(r, e.cfg.ChunkSize)
	f.SetBuffers(&e.chunkBufs)
	return f
}

// getBatchSlice returns an empty chunk-pointer slice, recycled from a
// completed batch when possible.
func (e *Engine) getBatchSlice() [][]byte {
	if n := len(e.batchSlices); n > 0 {
		s := e.batchSlices[n-1]
		e.batchSlices = e.batchSlices[:n-1]
		return s
	}
	return make([][]byte, 0, e.cfg.Batch)
}

// recycleBatch reclaims a fully processed batch's header and slices. The
// chunk payload buffers themselves were already returned as each chunk
// committed (or handed to the GPU pending queue).
func (e *Engine) recycleBatch(hb *hashedBatch) {
	e.batchSlices = append(e.batchSlices, hb.chunks[:0])
	hb.chunks = nil
	hb.ghits = nil
	hb.screened = false
	hb.ready = 0
	hb.screenEnd = 0
	e.hbFree = append(e.hbFree, hb)
}

// hashedBatch is a batch that has been through stage 1 (chunk + hash) and,
// when the GPU owns dedup, GPU screening.
type hashedBatch struct {
	chunks  [][]byte
	fps     []dedup.Fingerprint
	hashEnd []time.Duration
	ready   time.Duration // max hash end

	screened  bool
	ghits     []dedup.GPUHit
	screenEnd time.Duration
}

// hashBatch schedules stage 1: chunking + fingerprinting on the CPU pool
// (no cross-chunk dependency, §3.1 — every hardware thread hashes chunks
// independently; every chunk "arrives" at time zero, open loop).
func (e *Engine) hashBatch(chunks [][]byte) *hashedBatch {
	hashStart := metrics.Clock()
	defer metrics.StageHash.ObserveSince(hashStart)
	cost := e.cpu.Cost
	var hb *hashedBatch
	if n := len(e.hbFree); n > 0 {
		hb, e.hbFree = e.hbFree[n-1], e.hbFree[:n-1]
	} else {
		hb = &hashedBatch{}
	}
	hb.chunks = chunks
	hb.fps = e.hasher.SumInto(hb.fps, chunks)
	if cap(hb.hashEnd) >= len(chunks) {
		hb.hashEnd = hb.hashEnd[:len(chunks)]
	} else {
		hb.hashEnd = make([]time.Duration, len(chunks))
	}
	for i, c := range chunks {
		chunkCycles := cost.ChunkCycles(len(c)) + cost.StageOverheadCycles
		hashCycles := 0.0
		if e.cfg.Dedup {
			hashCycles = cost.HashCycles(len(c))
		}
		var start time.Duration
		start, hb.hashEnd[i] = e.cpu.Run(0, chunkCycles+hashCycles)
		e.cpuSpan("chunk+hash", start, hb.hashEnd[i])
		hb.ready = sim.MaxTime(hb.ready, hb.hashEnd[i])
		e.rep.Stages.Chunking += e.seconds(chunkCycles)
		e.rep.Stages.Hashing += e.seconds(hashCycles)
	}
	return hb
}

// screen runs the GPU batch-indexing round trip for a freshly hashed batch
// (§3.1(3)): the hashes are on hand long before a CPU worker picks the
// batch up (the input queue is deep in an open-loop measurement — the
// paper's "CPU utilization is full" regime), so the GPU prescreens the
// batch while it waits, unless the GPU itself is backlogged ("we decide to
// use GPU only when ... there is still some work to do for indexing" — a
// busy GPU queue means there is not).
func (e *Engine) screen(hb *hashedBatch) {
	if e.gbins == nil || hb.screened || e.gpuLost {
		return
	}
	// Anchor at the later of hash completion and the CPU frontier (the
	// screening is issued as the previous batch starts processing).
	// Figure 1's rule: "GPU indexing is performed if the GPU is available"
	// — a backlogged queue (compression kernels in GPUBoth, or a slow
	// device) means the batch takes the CPU path instead. This is also
	// §3.1(3)'s "still some work to do" guard.
	at := sim.MaxTime(hb.ready, e.cpu.Pool.NextFree())
	if e.dev.NextFree() > at {
		return
	}
	gdone, ghits, _, err := e.gbins.BatchIndex(at, hb.fps)
	if err != nil {
		// The only failure a batch probe can hit is device loss. The batch
		// simply stays unscreened: the CPU index path below handles it, and
		// every later batch skips the GPU entirely.
		e.gpuDied()
		return
	}
	// Host-side result merge: one staging pass over the batch.
	mergeCycles := e.cpu.Cost.MemcpyCycles(8*len(hb.fps)) + e.cpu.Cost.StageOverheadCycles
	mergeStart, mergeEnd := e.cpu.Run(gdone, mergeCycles)
	e.cpuSpan("merge-results", mergeStart, mergeEnd)
	e.rep.Stages.GPUMerge += e.seconds(mergeCycles)
	hb.screened = true
	hb.ghits = ghits
	hb.screenEnd = mergeEnd
	e.rep.GPUIndexBatches++
	e.rep.GPUIndexedChunks += int64(len(hb.fps))
}

// preChunk is one chunk's precomputed real computation: the entropy
// decision and, when the chunk stays on the CPU, its finished blob and
// encode stats. Produced by the parallel pass, consumed (or returned to
// the buffer pool) by the commit pass.
type preChunk struct {
	entropy        bool // incompressible below is valid
	incompressible bool
	done           bool // blob (and stats, for compressed blobs) are valid
	blob           []byte
	stats          lz.Stats
}

// entropyThreshold returns the bypass cutoff in bits/byte.
func (e *Engine) entropyThreshold() float64 {
	if e.cfg.EntropyThreshold != 0 {
		return e.cfg.EntropyThreshold
	}
	return 7.2
}

// precompute is the wall-clock fan-out half of the tentpole: a sequential
// dedup-decision pass predicts which chunks the commit pass will treat as
// unique (cheap read-only probes, first-occurrence semantics), then the
// persistent worker pool runs the real computation — entropy pre-checks
// and CPU LZSS/QLZ encodes — for those chunks concurrently. The commit
// pass remains the source of truth: it re-probes with interleaved inserts
// so the virtual-time accounting is bit-identical to a serial run, and it
// falls back to inline computation for the rare chunk whose prediction was
// upset by a concurrent-capacity eviction. Returns nil when there is
// nothing worth fanning out (serial runs, GPU-owned compression).
func (e *Engine) precompute(hb *hashedBatch) []preChunk {
	if e.par <= 1 || !e.cfg.Compress {
		return nil
	}
	gpuMode := e.cfg.Mode.UsesGPUCompress() && !e.gpuLost
	if gpuMode && !e.cfg.SkipIncompressible {
		return nil // all real compression happens in the GPU batch path
	}
	chunks, fps := hb.chunks, hb.fps

	// Pass 1 — sequential dedup decisions. A chunk will commit as unique
	// iff no screening hit, no index hit, no in-flight twin, and no earlier
	// first occurrence in this same batch.
	decideStart := metrics.Clock()
	uniq := e.uniq[:0]
	if !e.cfg.Dedup {
		for i := range chunks {
			uniq = append(uniq, i)
		}
	} else {
		clear(e.seen)
		for i := range chunks {
			if hb.screened && hb.ghits[i].Found {
				continue
			}
			var found bool
			if hb.screened {
				found = e.index.LookupBuffer(fps[i]).Found
			} else {
				found = e.index.Lookup(fps[i]).Found
			}
			if found {
				continue
			}
			if _, ok := e.inflight[fps[i]]; ok {
				continue
			}
			if e.seen[fps[i]] {
				continue
			}
			e.seen[fps[i]] = true
			uniq = append(uniq, i)
		}
	}
	e.uniq = uniq
	metrics.StageDedupDecide.ObserveSince(decideStart)
	if len(uniq) == 0 {
		return nil
	}

	// Pass 2 — parallel real computation over the predicted uniques,
	// through the persistent closure (preFn) so the per-batch Map call
	// allocates nothing.
	pre := e.pre[:0]
	for len(pre) < len(chunks) {
		pre = append(pre, preChunk{})
	}
	e.pre = pre
	e.preChunks = chunks
	e.preGPUMode = gpuMode
	e.preThreshold = e.entropyThreshold()
	compressStart := metrics.Clock()
	e.pool.Map(len(uniq), e.preFn)
	metrics.StageCompress.ObserveSince(compressStart)
	e.preChunks = nil
	return pre
}

// blobHeadroom is the extra destination capacity beyond the source length
// a blob may need (mode byte + uvarint length for the raw fallback).
const blobHeadroom = 16

// releasePre returns an unconsumed precomputed blob to the pool (the
// chunk turned out to be a duplicate).
func (e *Engine) releasePre(pre []preChunk, i int) {
	if pre == nil || !pre[i].done {
		return
	}
	e.blobBufs.Put(pre[i].blob)
	pre[i] = preChunk{}
}

// downstream pushes a hashed batch through index → compress → insert/destage.
func (e *Engine) downstream(hb *hashedBatch) error {
	if err := e.retireDue(); err != nil {
		return err
	}
	cost := e.cpu.Cost
	chunks, fps := hb.chunks, hb.fps

	// Parallel pass: fan the batch's real computation out across the host
	// cores before the sequential commit below (wall-clock only — the
	// virtual clock is charged in the commit pass, in stream order).
	pre := e.precompute(hb)

	// Wall-clock commit stage: everything below — probes, inserts, inline
	// fallbacks, destage — runs sequentially on this goroutine.
	commitStart := metrics.Clock()
	defer metrics.StageCommit.ObserveSince(commitStart)

	// Stages 2+ commit per chunk in stream order: probe (Figure 1: GPU
	// screening result, bin buffer, bin tree), then for uniques compress →
	// insert → destage. Running probe and insert in stream order keeps
	// within-batch duplicates exact: a chunk's probe sees every earlier
	// chunk's insert (or its in-flight entry while the GPU compressor
	// holds it). The ready times are a scratch copy so the per-chunk
	// updates below never mutate the batch's own hashEnd record.
	ready := append(e.ready[:0], hb.hashEnd...)
	e.ready = ready
	if hb.screened {
		for i := range ready {
			ready[i] = hb.screenEnd
		}
	}
	for i, c := range chunks {
		e.rep.Chunks++
		e.rep.Bytes += int64(len(c))
		dup := false
		var dupLoc int64
		if e.cfg.Dedup {
			switch {
			case hb.screened && hb.ghits[i].Found:
				dup = true
				dupLoc = hb.ghits[i].Entry.Loc
				e.rep.DupHitsGPU++
			default:
				// A GPU-screened miss can only be a recent (unflushed)
				// hash: everything the tree holds is mirrored in the GPU
				// bins, so the CPU checks the bin buffer only. Unscreened
				// chunks take the full path: bin buffer, then bin tree.
				var p dedup.Probe
				if hb.screened {
					p = e.index.LookupBuffer(fps[i])
				} else {
					p = e.index.Lookup(fps[i])
				}
				probeCycles := cost.ProbeCycles(p.BufferScanned, p.TreeSteps)
				start, end := e.cpu.Run(ready[i], probeCycles)
				e.cpuSpan("probe", start, end)
				ready[i] = end
				e.rep.Stages.Indexing += e.seconds(probeCycles)
				if p.Found {
					dup = true
					dupLoc = p.Entry.Loc
					if p.InBuffer {
						e.rep.DupHitsBuffer++
					} else {
						e.rep.DupHitsTree++
					}
				}
			}
			if !dup {
				// The chunk may duplicate a unique still in flight to the
				// GPU compressor (not yet inserted into the index).
				if ref, ok := e.inflight[fps[i]]; ok {
					e.rep.DupChunks++
					e.rep.DupHitsPending++
					if e.cfg.Verify {
						ref.waiters = append(ref.waiters, e.rep.Chunks-1)
						e.locs = append(e.locs, -1)
					}
					e.releasePre(pre, i)
					e.chunkBufs.Put(c)
					continue
				}
			}
		}
		if dup {
			e.rep.DupChunks++
			if e.cfg.Verify {
				e.locs = append(e.locs, dupLoc)
			}
			e.releasePre(pre, i)
			e.chunkBufs.Put(c)
			continue
		}
		e.rep.UniqueChunks++
		e.rep.UniqueBytes += int64(len(c))
		skipCycles := 0.0
		if e.cfg.Compress && e.cfg.SkipIncompressible {
			skipCycles = cost.EntropyCycles(len(c))
			var incompressible bool
			if pre != nil && pre[i].entropy {
				incompressible = pre[i].incompressible
			} else {
				incompressible = lz.LikelyIncompressible(c, e.entropyThreshold())
			}
			if incompressible {
				// Bypass: store raw; the histogram pass is the only cost.
				e.rep.SkippedIncompressible++
				var blob []byte
				if pre != nil && pre[i].done {
					blob = pre[i].blob
					pre[i] = preChunk{}
				} else {
					blob = lz.StoreRaw(e.blobBufs.Get(len(c)+blobHeadroom), c)
				}
				base := skipCycles + cost.MemcpyCycles(len(blob)) + cost.StageOverheadCycles
				e.rep.Stages.Compression += e.seconds(base)
				err := e.finishUnique(fps[i], blob, ready[i], base, int(e.rep.Chunks-1), "store-raw")
				e.chunkBufs.Put(c)
				if err != nil {
					return err
				}
				continue
			}
		}
		if e.cfg.Compress && e.cfg.Mode.UsesGPUCompress() && !e.gpuLost {
			if e.cfg.Dedup {
				e.inflight[fps[i]] = &inflightRef{}
			}
			// The chunk buffer rides along: it is recycled when the GPU
			// batch's blobs have been computed (flushGPUCompress).
			e.pendGPU = append(e.pendGPU, gpuPending{data: c, fp: fps[i], ready: ready[i], idx: e.rep.Chunks - 1})
			if e.cfg.Verify {
				e.locs = append(e.locs, -1) // patched when the GPU batch retires
			}
			if len(e.pendGPU) >= e.cfg.GPUCompressBatch {
				if err := e.flushGPUCompress(); err != nil {
					return err
				}
			}
			continue
		}
		// CPU compression (or raw store when compression is off). The
		// compress and index-insert work is fused into one CPU job: the
		// worker thread that compressed the chunk finishes it. The blob
		// and stats normally come from the parallel pass; the inline path
		// covers serial runs and prediction upsets (see precompute).
		var blob []byte
		var baseCycles float64
		spanName := "store-raw"
		if e.cfg.Compress {
			var st lz.Stats
			if pre != nil && pre[i].done {
				blob, st = pre[i].blob, pre[i].stats
				pre[i] = preChunk{}
			} else {
				blob, st = lz.CompressCodec(e.cfg.Codec, e.blobBufs.Get(len(c)+blobHeadroom), c, e.cfg.LZ)
			}
			baseCycles = skipCycles + cost.CompressCycles(st.Positions, st.SearchSteps, st.DstBytes) + cost.StageOverheadCycles
			spanName = "compress+insert"
		} else {
			blob = lz.StoreRaw(e.blobBufs.Get(len(c)+blobHeadroom), c)
			baseCycles = cost.MemcpyCycles(len(blob)) + cost.StageOverheadCycles
		}
		e.rep.Stages.Compression += e.seconds(baseCycles)
		err := e.finishUnique(fps[i], blob, ready[i], baseCycles, int(e.rep.Chunks-1), spanName)
		e.chunkBufs.Put(c)
		if err != nil {
			return err
		}
	}
	return nil
}

// flushGPUCompress launches one GPU compression kernel over the pending
// unique chunks (§3.2(2)): DMA the chunk batch to the device, run
// SubBlocks lanes per chunk, DMA the raw lane streams back, and
// post-process each chunk on the CPU.
func (e *Engine) flushGPUCompress() error {
	if len(e.pendGPU) == 0 {
		return nil
	}
	pend := e.pendGPU
	e.pendGPU = nil

	batchReady := time.Duration(0)
	srcBytes := 0
	for _, p := range pend {
		batchReady = sim.MaxTime(batchReady, p.ready)
		srcBytes += len(p.data)
	}
	if e.gpuLost {
		// The device died after these chunks were queued (a screening probe
		// found it first): the whole batch takes the CPU path.
		return e.fallbackCPUCompress(pend, batchReady)
	}
	gcost := e.dev.Cost
	t := e.dev.TransferToDevice(batchReady, srcBytes)

	// The kernel: every chunk gets Sub.SubBlocks lanes, each compressing
	// its own sub-block for real. Lane costs come from the real encoder
	// work; wavefront lockstep and divergence are charged by the profile.
	// The result/lane-cost slices are engine scratch, reused per launch.
	results := e.subResults[:0]
	for len(results) < len(pend) {
		results = append(results, lz.SubBlockResult{})
	}
	e.subResults = results
	gpuCompressStart := metrics.Clock()
	e.pool.Map(len(pend), func(i int) {
		results[i] = lz.CompressSubBlocks(pend[i].data, e.cfg.Sub)
	})
	metrics.StageCompress.ObserveSince(gpuCompressStart)
	perLane := e.perLane[:0]
	rawBytes := 0
	for _, res := range results {
		for _, l := range res.Lanes {
			perLane = append(perLane, gcost.CompressBaseCycles+
				float64(l.Stats.Positions)*gcost.CompressCyclesPerPosition+
				float64(l.Stats.SearchSteps)*gcost.MatchStepCycles+
				float64(l.Stats.DstBytes)*gcost.EmitCyclesPerByte)
		}
		rawBytes += res.RawBytes()
	}
	e.perLane = perLane
	kernel := gpu.KernelFunc{Label: "subblock-lz", Fn: func() gpu.Profile {
		p := gpu.Wavefronts(perLane, e.dev.WavefrontSize)
		p.LocalBytes = int64(srcBytes)
		return p
	}}
	var err error
	t, _, err = e.dev.Launch(t, kernel)
	if err != nil {
		if !errors.Is(err, fault.ErrDeviceLost) {
			return err
		}
		// Device lost mid-kernel: the host learns from the failed dispatch,
		// abandons the device results, and re-runs the batch on the CPU.
		// Already-retired batches stay valid; everything from here on is
		// CPU-only.
		e.gpuDied()
		return e.fallbackCPUCompress(pend, t)
	}
	t = e.dev.TransferFromDevice(t, rawBytes+8*len(pend))
	if e.obs != nil {
		// GPU batch turnaround: from the batch being ready on the host to
		// the compressed lanes landing back in host memory.
		e.histGPUBatch.Observe(t - batchReady)
	}

	// CPU post-processing: stitch each chunk's lanes into the final blob.
	// The blobs are computed now, but their CPU jobs are committed when the
	// CPU frontier reaches the kernel completion time (retireDue), so the
	// virtual pool stays work-conserving.
	blobs := make([][]byte, len(pend)) // escapes into the retired batch
	errs := e.subErrs[:0]
	for len(errs) < len(pend) {
		errs = append(errs, nil)
	}
	e.subErrs = errs
	postStart := metrics.Clock()
	e.pool.Map(len(pend), func(i int) {
		blobs[i], _, errs[i] = lz.PostProcessOrRaw(e.blobBufs.Get(len(pend[i].data)+blobHeadroom), pend[i].data, results[i])
	})
	metrics.StageCompress.ObserveSince(postStart)
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	// The blobs are self-contained copies, so the chunk payload buffers are
	// dead from here on.
	for i := range pend {
		e.chunkBufs.Put(pend[i].data)
		pend[i].data = nil
	}
	e.retired = append(e.retired, retiredBatch{t: t, pend: pend, blobs: blobs})
	return nil
}

// gpuDied records an injected device loss: the GPU is dead for the rest of
// the run, and all of its work re-routes to the CPU paths.
func (e *Engine) gpuDied() {
	e.gpuLost = true
	e.rep.Faults.GPUDeviceLost = true
}

// fallbackCPUCompress is the degraded path for a GPU compression batch whose
// kernel could not run: the pending unique chunks are compressed with the
// CPU codec (fanned out across host workers for wall-clock, charged to the
// virtual CPU pool in stream order) and committed exactly as CPU-mode
// uniques. The chunks become ready no earlier than at, the virtual time the
// host learned of the loss.
func (e *Engine) fallbackCPUCompress(pend []gpuPending, at time.Duration) error {
	e.rep.Faults.GPUFallbackBatches++
	cost := e.cpu.Cost
	blobs := make([][]byte, len(pend))
	stats := make([]lz.Stats, len(pend))
	fbStart := metrics.Clock()
	e.pool.Map(len(pend), func(i int) {
		blobs[i], stats[i] = lz.CompressCodec(e.cfg.Codec, e.blobBufs.Get(len(pend[i].data)+blobHeadroom), pend[i].data, e.cfg.LZ)
	})
	metrics.StageCompress.ObserveSince(fbStart)
	for i, p := range pend {
		base := cost.CompressCycles(stats[i].Positions, stats[i].SearchSteps, stats[i].DstBytes) + cost.StageOverheadCycles
		e.rep.Stages.Compression += e.seconds(base)
		err := e.finishUnique(p.fp, blobs[i], sim.MaxTime(p.ready, at), base, int(p.idx), "cpu-fallback")
		e.chunkBufs.Put(pend[i].data)
		pend[i].data = nil
		if err != nil {
			return err
		}
	}
	return nil
}

// retireDue commits the post-processing of every GPU compression batch
// whose kernel has completed by the current CPU frontier.
func (e *Engine) retireDue() error {
	for len(e.retired) > 0 && e.retired[0].t <= e.cpu.Pool.NextFree() {
		if err := e.retireBatch(e.retired[0]); err != nil {
			return err
		}
		e.retired = e.retired[1:]
	}
	return nil
}

// retireBatch schedules a retired GPU batch's CPU post-processing and
// finishes its chunks.
func (e *Engine) retireBatch(rb retiredBatch) error {
	cost := e.cpu.Cost
	for i, p := range rb.pend {
		base := cost.PostProcessCycles(len(rb.blobs[i])) + cost.StageOverheadCycles
		e.rep.Stages.PostProcess += e.seconds(base)
		if err := e.finishUnique(p.fp, rb.blobs[i], rb.t, base, int(p.idx), "post-process+insert"); err != nil {
			return err
		}
	}
	return nil
}

// finishUnique finishes a unique chunk: one fused CPU job (compression or
// post-processing plus the bin-buffer insert — the worker that produced the
// blob also files it, so no dependency bubble), then the destage write and,
// on a bin-buffer flush, the sequential journal write plus the GPU bin
// update (Figure 1).
//
// Blobs pack into SSD pages log-structured: the blob lands at the next free
// byte offset, and the destage write covers exactly the pages the blob
// completes, so compression savings translate into page savings.
func (e *Engine) finishUnique(fp dedup.Fingerprint, blob []byte, ready time.Duration, baseCycles float64, chunkIdx int, spanName string) error {
	cost := e.cpu.Cost
	loc := e.dataCursor
	if loc+int64(len(blob)) > e.dataLimit {
		return fmt.Errorf("core: drive full: data region needs byte %d of %d", loc+int64(len(blob)), e.dataLimit)
	}
	pageSize := int64(e.drive.PageSize)
	firstPage := loc / pageSize
	e.dataCursor += int64(len(blob))
	pages := e.dataCursor/pageSize - firstPage // pages this blob completes
	e.rep.StoredBytes += int64(len(blob))
	if e.cfg.Verify {
		e.blobs[loc] = blob
		if chunkIdx < len(e.locs) && e.locs[chunkIdx] == -1 {
			e.locs[chunkIdx] = loc // GPU-batched chunk retiring late
		} else {
			e.locs = append(e.locs, loc)
		}
	}

	cycles := baseCycles
	var flush *dedup.Flush
	if e.cfg.Dedup {
		if ref, ok := e.inflight[fp]; ok {
			for _, w := range ref.waiters {
				e.locs[w] = loc
			}
			delete(e.inflight, fp)
		}
		ir := e.index.Insert(fp, dedup.Entry{Loc: loc, Size: uint32(len(blob))})
		insCycles := cost.InsertCycles + float64(ir.BufferScanned)*cost.BufferEntryCycles
		if ir.Flush != nil {
			insCycles += float64(ir.Flush.TreeSteps) * cost.TreeStepCycles
			flush = ir.Flush
		}
		cycles += insCycles
		e.rep.Stages.Insert += e.seconds(insCycles)
	}
	start, end := e.cpu.Run(ready, cycles)
	e.cpuSpan(spanName, start, end)
	if pages > 0 {
		if _, err := e.writeDrive(end, firstPage, int(pages)); err != nil {
			return err
		}
	}
	if flush != nil {
		e.journalFlush(end, flush)
		if e.gbins != nil && !e.gpuLost {
			if _, err := e.gbins.Update(end, e.gpuBin(flush.Bin), flush.Keys(), flush.Values()); err != nil {
				return err
			}
		}
	}
	if !e.cfg.Verify {
		// Verify retains the blob in e.blobs; otherwise it is dead now.
		e.blobBufs.Put(blob)
	}
	return nil
}

// seconds converts CPU cycles into seconds of core time for the stage
// breakdown.
func (e *Engine) seconds(cycles float64) float64 {
	return cycles / e.plat.CPU.ClockHz
}

// cpuSpan records one committed CPU job on the trace lane of the virtual
// hardware thread that ran it (the server the pool just placed the job on).
// Must be called immediately after the e.cpu.Run that scheduled the job.
func (e *Engine) cpuSpan(name string, start, end time.Duration) {
	if e.obs == nil {
		return
	}
	e.obs.Span(e.cpuLanes[e.cpu.Pool.LastServer()], name, start, end)
}

// gpuBin maps a CPU bin id onto the coarser GPU bin grid: both are leading
// fingerprint bits, so the GPU bin is the CPU bin's top GPUBinBits bits.
func (e *Engine) gpuBin(cpuBin uint32) uint32 {
	return cpuBin >> uint(e.cfg.Index.BinBits-e.cfg.GPUBinBits)
}

// writeDrive issues one drive write with the shared bounded-retry policy:
// transient errors are retried up to fault.MaxRetries times with
// exponential backoff charged to the virtual clock; a permanent error (or
// an exhausted retry budget) surfaces to the caller.
func (e *Engine) writeDrive(at time.Duration, lpn int64, pages int) (time.Duration, error) {
	for attempt := 0; ; attempt++ {
		end, err := e.drive.Write(at, lpn, pages)
		if err == nil {
			return end, nil
		}
		if !fault.IsTransient(err) || attempt >= fault.MaxRetries {
			return end, err
		}
		e.rep.Faults.SSDWriteRetries++
		at += fault.Backoff(attempt)
	}
}

// journalFlush persists one bin-buffer flush record. An injected torn
// record simulates a crash mid-write: only the leading bytes of the record
// reach the image, so recovery truncates the journal there. A permanent
// journal-write failure degrades gracefully — journaling stops, the run
// continues with a memory-only index (§3.3's documented tradeoff), and the
// failure is counted.
func (e *Engine) journalFlush(at time.Duration, f *dedup.Flush) {
	if e.journal == nil || e.journalDead {
		return
	}
	flushStart := metrics.Clock()
	defer metrics.StageJournalCore.ObserveSince(flushStart)
	if frac, torn := e.faults.TornFraction(); torn {
		e.journal.AppendTorn(f, frac)
		e.rep.Faults.JournalTornRecords++
		_, _ = e.writeJournal(at, f.Bytes) // the partial write still happened
		return
	}
	end, err := e.writeJournal(at, f.Bytes)
	if err != nil {
		e.journalDead = true
		e.rep.Faults.JournalWriteFailures++
		return
	}
	if e.obs != nil {
		e.histJournal.Observe(end - at)
	}
	e.journal.Append(f)
}

// writeJournal appends one bin-buffer flush to the sequential journal
// region ("this creates the appropriate sequential writes for the SSD",
// §3.3), wrapping at the region end.
func (e *Engine) writeJournal(at time.Duration, bytes int) (time.Duration, error) {
	pages := int64(e.drive.Pages(bytes))
	if pages == 0 {
		pages = 1
	}
	if e.journalCur+pages > e.journalLimit {
		e.journalCur = e.journalBase
	}
	end, err := e.writeDrive(at, e.journalCur, int(pages))
	if err != nil {
		return end, err
	}
	e.journalCur += pages
	e.rep.JournalBytes += int64(bytes)
	e.rep.JournalWrites++
	return end, nil
}

// finalFlush writes the final partial data page and drains the bin buffers
// at end of stream.
func (e *Engine) finalFlush() {
	at := e.cpu.Pool.Horizon()
	if e.dataCursor%int64(e.drive.PageSize) != 0 {
		// The final partial page of the data log.
		_, _ = e.writeDrive(at, e.dataCursor/int64(e.drive.PageSize), 1)
	}
	if e.index == nil {
		return
	}
	for _, f := range e.index.FlushAll() {
		var start time.Duration
		start, at = e.cpu.Run(at, float64(f.TreeSteps)*e.cpu.Cost.TreeStepCycles)
		e.cpuSpan("flush-drain", start, at)
		e.journalFlush(at, f)
		if e.gbins != nil && !e.gpuLost {
			_, _ = e.gbins.Update(at, e.gpuBin(f.Bin), f.Keys(), f.Values())
		}
	}
}

// finish computes the report's derived figures.
func (e *Engine) finish() {
	r := &e.rep
	elapsed := e.cpu.Pool.Horizon()
	if e.dev != nil {
		elapsed = sim.MaxTime(elapsed, e.dev.Horizon())
	}
	if e.cfg.IncludeDestage {
		elapsed = sim.MaxTime(elapsed, e.drive.Horizon())
	}
	r.Elapsed = elapsed
	r.IOPS = sim.Throughput(float64(r.Chunks), elapsed)
	r.BytesPerSec = sim.Throughput(float64(r.Bytes), elapsed)
	if r.UniqueChunks > 0 {
		r.DedupRatio = float64(r.Chunks) / float64(r.UniqueChunks)
	}
	if r.StoredBytes > 0 {
		r.CompRatio = float64(r.UniqueBytes) / float64(r.StoredBytes)
		r.ReductionRatio = float64(r.Bytes) / float64(r.StoredBytes)
	}
	r.CPUUtil = e.cpu.Utilization(elapsed)
	if e.dev != nil {
		r.GPUUtil = e.dev.Utilization(elapsed)
		r.GPULinkUtil = e.dev.LinkUtilization(elapsed)
		r.GPUKernels = e.dev.Kernels()
	}
	r.SSDUtil = e.drive.Utilization(elapsed)
	r.SSD = e.drive.Stats()
	r.SSDWriteAmp = r.SSD.WriteAmplification()
	r.MaxErase = e.drive.MaxErase()
	if e.index != nil {
		r.IndexEntries = e.index.Len()
		r.IndexMemory = e.index.MemoryBytes()
		r.IndexEvictions = e.index.Evicted()
	}
	r.Latency.JournalFlush = e.histJournal.Summary()
	r.Latency.GPUBatch = e.histGPUBatch.Summary()
	if e.faults != nil {
		r.Faults.LatencySpikes = r.SSD.LatencySpikes
		if e.journal != nil {
			r.Faults.JournalTornRecords = int64(e.journal.TornRecords())
		}
		if e.index != nil {
			r.Faults.IndexEvictions = e.index.FaultEvicted()
		}
	}
}

// VerifyAgainst re-reads the original stream and checks that every chunk is
// reconstructable from what the pipeline stored: duplicates resolve to
// their original's blob, blobs decompress to the exact source bytes.
// Requires Config.Verify.
func (e *Engine) VerifyAgainst(r io.Reader) error {
	if !e.cfg.Verify {
		return fmt.Errorf("core: VerifyAgainst needs Config.Verify")
	}
	ck := e.newChunker(r)
	var out []byte
	for i := 0; ; i++ {
		c, err := ck.Next()
		if err == io.EOF {
			if int64(i) != e.rep.Chunks {
				return fmt.Errorf("core: verify stream has %d chunks, pipeline saw %d", i, e.rep.Chunks)
			}
			return nil
		}
		if err != nil {
			return err
		}
		if i >= len(e.locs) {
			return fmt.Errorf("core: chunk %d has no stored location", i)
		}
		blob, ok := e.blobs[e.locs[i]]
		if !ok {
			return fmt.Errorf("core: chunk %d points at unknown location %d", i, e.locs[i])
		}
		out, err = lz.Decompress(out[:0], blob)
		if err != nil {
			return fmt.Errorf("core: chunk %d: %w", i, err)
		}
		match := string(out) == string(c.Data)
		e.chunkBufs.Put(c.Data)
		if !match {
			return fmt.Errorf("core: chunk %d: stored data does not reconstruct the source", i)
		}
	}
}
