// Package volume layers block-device semantics over the inline data
// reduction substrates — the "primary storage system" the paper's pipeline
// serves. Where internal/core measures open-loop stream throughput (the
// paper's evaluation), Volume implements the full storage lifecycle a
// primary array needs around the reduction pipeline:
//
//   - LBA-addressed writes and reads at block (= chunk) granularity;
//   - reference-counted chunk storage, so overwriting or trimming a block
//     releases its chunk when the last reference disappears;
//   - a log-structured store with dead-byte accounting and segment
//     cleaning, so reclaimed space is actually reusable;
//   - the inline reduction write path itself: fingerprint → bin-index
//     lookup → LZSS compression → log append, all on the virtual clock.
//
// Volume is a closed-loop, latency-oriented consumer of the substrates (one
// outstanding request; each operation reports its virtual latency), which
// complements the engine's open-loop throughput measurements. The GPU
// offload paths stay in internal/core; Volume uses the CPU path.
package volume

import (
	"fmt"
	"sort"
	"time"

	"inlinered/internal/cpusim"
	"inlinered/internal/dedup"
	"inlinered/internal/fault"
	"inlinered/internal/lz"
	"inlinered/internal/metrics"
	"inlinered/internal/obs"
	"inlinered/internal/sim"
	"inlinered/internal/ssd"
)

// Config describes a volume.
type Config struct {
	BlockSize int   // block = chunk size in bytes
	Blocks    int64 // logical capacity in blocks
	Compress  bool  // compress unique chunks
	Codec     lz.Codec
	Index     dedup.IndexConfig
	LZ        lz.Params
	CPU       cpusim.Config
	SSD       ssd.Config
	// SegmentBytes is the log segment size for space accounting and
	// cleaning; CleanThreshold is the garbage fraction at which a segment
	// becomes a cleaning candidate.
	SegmentBytes   int
	CleanThreshold float64
	// CacheBytes bounds the content-addressed DRAM read cache (0 disables
	// it). Cached blocks serve reads without SSD pages or decompression.
	CacheBytes int64
	// SubBlocks > 1 compresses each unique chunk as that many independent
	// sub-blocks packed into an indexed container (lz.ModeSubIdx), whose
	// boundary table lets the batch read path decode the sub-blocks in
	// parallel. 0 or 1 keeps the single-stream codec path. Ignored when
	// Compress is false.
	SubBlocks int
	// Faults schedules deterministic fault injection across the drive, the
	// index journal, and the index. The zero value injects nothing and
	// leaves the volume bit-identical to a build without injection.
	Faults fault.Config
	// Obs attaches an observability recorder: one trace lane for the
	// request stream plus lanes for the virtual CPU threads and NAND
	// channels, all stamped in virtual time. A recorder should serve one
	// Volume (or one core.Engine) — the lanes map onto that instance's
	// simulated resources. Nil means off.
	Obs *obs.Recorder
}

// DefaultConfig returns a small-testbed volume: 4 KB blocks on the paper's
// CPU and SSD models.
func DefaultConfig() Config {
	return Config{
		BlockSize:      4096,
		Blocks:         1 << 18, // 1 GiB logical
		Compress:       true,
		Index:          dedup.DefaultIndexConfig(),
		LZ:             lz.DefaultParams(),
		CPU:            cpusim.DefaultConfig(),
		SSD:            ssd.DefaultConfig(),
		SegmentBytes:   4 << 20,
		CleanThreshold: 0.5,
		CacheBytes:     16 << 20,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.BlockSize < 64 {
		return fmt.Errorf("volume: block size must be >= 64, got %d", c.BlockSize)
	}
	if c.Blocks < 1 {
		return fmt.Errorf("volume: need at least one block")
	}
	if c.SegmentBytes < c.BlockSize*4 {
		return fmt.Errorf("volume: segment must hold several blocks, got %d", c.SegmentBytes)
	}
	if c.CleanThreshold <= 0 || c.CleanThreshold >= 1 {
		return fmt.Errorf("volume: clean threshold must be in (0,1), got %g", c.CleanThreshold)
	}
	return c.Index.Validate()
}

// chunkRef is the refcounted record of one stored unique chunk.
type chunkRef struct {
	fp   dedup.Fingerprint
	loc  int64 // byte offset in the log
	size int32 // stored blob bytes
	refs int32
}

// segment tracks one log segment's occupancy.
type segment struct {
	live int64 // live blob bytes
	used int64 // appended blob bytes (live + dead)
}

// logCursor is the current append position: a segment and an offset into it.
type logCursor struct {
	seg int
	off int64
}

// Stats reports volume space and activity accounting.
type Stats struct {
	Writes    int64 `json:"writes"`
	Reads     int64 `json:"reads"`
	Trims     int64 `json:"trims"`
	DedupHits int64 `json:"dedup_hits"`

	// Read-cache accounting, from the scan-resistant admission policy:
	// hits/misses count lookups, admissions counts entries placed in (or
	// promoted into) the protected segment, and ghost hits count inserts
	// whose fingerprint was recently evicted — the 2Q re-admission signal.
	CacheHits       int64 `json:"cache_hits"`
	CacheMisses     int64 `json:"cache_misses"`
	CacheAdmissions int64 `json:"cache_admissions"`
	CacheGhostHits  int64 `json:"cache_ghost_hits"`

	LogicalBytes int64 `json:"logical_bytes"` // live user data (mapped blocks × block size)
	StoredBytes  int64 `json:"stored_bytes"`  // live compressed bytes in the log
	LogBytes     int64 `json:"log_bytes"`     // total log bytes appended (live + dead)
	GarbageBytes int64 `json:"garbage_bytes"` // dead bytes awaiting cleaning
	CleanRuns    int64 `json:"clean_runs"`
	MovedBytes   int64 `json:"moved_bytes"` // live bytes rewritten by the cleaner

	// Per-operation virtual latency digests (always on: the closed-loop
	// volume is latency-oriented, so every request contributes a sample).
	// Unmapped reads never touch media but still pay the zero-fill staging
	// copy into the caller's buffer, charged like a cache hit's copy.
	WriteLat        sim.LatencySummary `json:"write_lat"`
	ReadLat         sim.LatencySummary `json:"read_lat"`
	TrimLat         sim.LatencySummary `json:"trim_lat"`
	JournalFlushLat sim.LatencySummary `json:"journal_flush_lat"`

	// Index journal accounting (the durable form of bin-buffer flushes,
	// destaged sequentially to the journal region).
	JournalRecords int64 `json:"journal_records"`
	JournalBytes   int64 `json:"journal_bytes"`

	// Fault-injection accounting. All zero when Config.Faults is the zero
	// value, keeping rate-0 stats bit-identical to a build without
	// injection.
	SSDWriteRetries      int64 `json:"ssd_write_retries"`      // transient write errors cleared by retry
	SSDReadRetries       int64 `json:"ssd_read_retries"`       // transient read errors cleared by retry
	LatencySpikes        int64 `json:"latency_spikes"`         // injected latency spikes absorbed
	JournalTornRecords   int64 `json:"journal_torn_records"`   // flush records torn mid-write
	JournalWriteFailures int64 `json:"journal_write_failures"` // permanent journal-write failures (journaling degraded off)
	IndexEvictions       int64 `json:"index_evictions"`        // entries evicted by injected memory pressure
}

// AddCounters accumulates st's counter fields into s. Latency summaries
// are deliberately left untouched: summaries cannot be merged — merge the
// underlying histograms (Volume.Histograms, Array.MergedHistograms) and
// recompute. Both the sharded front-end and the cluster tier merge through
// this one helper so a new Stats counter cannot be forgotten in one of
// them.
func (s *Stats) AddCounters(st Stats) {
	s.Writes += st.Writes
	s.Reads += st.Reads
	s.Trims += st.Trims
	s.DedupHits += st.DedupHits
	s.CacheHits += st.CacheHits
	s.CacheMisses += st.CacheMisses
	s.CacheAdmissions += st.CacheAdmissions
	s.CacheGhostHits += st.CacheGhostHits
	s.LogicalBytes += st.LogicalBytes
	s.StoredBytes += st.StoredBytes
	s.LogBytes += st.LogBytes
	s.GarbageBytes += st.GarbageBytes
	s.CleanRuns += st.CleanRuns
	s.MovedBytes += st.MovedBytes
	s.JournalRecords += st.JournalRecords
	s.JournalBytes += st.JournalBytes
	s.SSDWriteRetries += st.SSDWriteRetries
	s.SSDReadRetries += st.SSDReadRetries
	s.LatencySpikes += st.LatencySpikes
	s.JournalTornRecords += st.JournalTornRecords
	s.JournalWriteFailures += st.JournalWriteFailures
	s.IndexEvictions += st.IndexEvictions
}

// ReductionRatio reports logical bytes per stored byte.
func (s Stats) ReductionRatio() float64 {
	if s.StoredBytes == 0 {
		return 0
	}
	return float64(s.LogicalBytes) / float64(s.StoredBytes)
}

// Volume is a deduplicating, compressing block device on the virtual clock.
// It is not safe for concurrent use.
type Volume struct {
	cfg   Config
	cpu   *cpusim.CPU
	drive *ssd.Drive
	index *dedup.BinIndex

	lbaMap map[int64]dedup.Fingerprint // mapped blocks
	chunks map[dedup.Fingerprint]*chunkRef
	blobs  map[int64][]byte // log offset -> stored blob (host copy)

	segments []segment
	freeSegs []int // cleaned segments available for reuse
	cur      logCursor
	maxSegs  int

	// The index journal mirrors internal/core: bin-buffer flushes destage
	// as sequential writes into a region carved from the top of the drive's
	// logical space, and the serialized image is what a post-crash restart
	// replays.
	journal      *dedup.JournalWriter
	journalBase  int64 // first page of the journal region
	journalCur   int64
	journalLimit int64
	journalDead  bool // a permanent journal-write failure degraded journaling off

	faults *fault.Injector // nil when injection is off

	cache *blockCache

	// compScratch is the reusable compression output buffer for the write
	// path: the encoder appends into it, and only the exact-size retained
	// blob is allocated per unique chunk.
	compScratch []byte

	// Observability. Latency histograms are always on (the closed-loop
	// volume exists to measure latency); span recording needs Config.Obs.
	obs      *obs.Recorder
	laneOps  obs.Lane   // one lane for the sequential request stream
	cpuLanes []obs.Lane // one lane per virtual CPU thread
	histW    sim.Histogram
	histR    sim.Histogram
	histT    sim.Histogram
	histJF   sim.Histogram

	now   time.Duration // closed-loop clock: completion of the last request
	stats Stats
}

// New builds a volume.
func New(cfg Config) (*Volume, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	v := &Volume{
		cfg:    cfg,
		cpu:    cpusim.New(cfg.CPU),
		drive:  ssd.New(cfg.SSD),
		lbaMap: make(map[int64]dedup.Fingerprint),
		chunks: make(map[dedup.Fingerprint]*chunkRef),
		blobs:  make(map[int64][]byte),
	}
	idx, err := dedup.NewBinIndex(cfg.Index)
	if err != nil {
		return nil, err
	}
	v.index = idx
	// Carve the journal region out of the top of the logical space; the
	// log segments pack into what remains.
	logical := v.drive.LogicalPages()
	reserve := logical / 16
	if reserve < 1 {
		reserve = 1
	}
	v.journalBase = logical - reserve
	v.journalCur = v.journalBase
	v.journalLimit = logical
	v.journal = dedup.NewJournalWriter(cfg.Index.PrefixBytes)
	logBytes := v.journalBase * int64(v.drive.PageSize)
	v.maxSegs = int(logBytes / int64(cfg.SegmentBytes))
	if v.maxSegs < 2 {
		return nil, fmt.Errorf("volume: drive too small for two %d-byte segments", cfg.SegmentBytes)
	}
	v.segments = append(v.segments, segment{})
	v.cache = newBlockCache(cfg.CacheBytes)
	if cfg.Faults.Enabled() {
		v.faults = fault.New(cfg.Faults)
		v.drive.SetFaultInjector(v.faults)
		v.index.SetFaultInjector(v.faults)
	}
	if cfg.Obs != nil {
		v.obs = cfg.Obs
		v.laneOps = cfg.Obs.Lane("volume", "ops")
		v.cpuLanes = make([]obs.Lane, v.cpu.Pool.Servers())
		for i := range v.cpuLanes {
			v.cpuLanes[i] = cfg.Obs.Lane("cpu", fmt.Sprintf("t%d", i))
		}
		v.drive.SetRecorder(cfg.Obs)
		v.drive.MarkJournalRegion(v.journalBase)
	}
	return v, nil
}

// cpuSpan records one committed CPU job on the trace lane of the virtual
// hardware thread that ran it. Must be called immediately after the
// v.cpu.Run that scheduled the job.
func (v *Volume) cpuSpan(name string, start, end time.Duration) {
	if v.obs == nil {
		return
	}
	v.obs.Span(v.cpuLanes[v.cpu.Pool.LastServer()], name, start, end)
}

// Now returns the volume's virtual clock (completion time of the last
// request).
func (v *Volume) Now() time.Duration { return v.now }

// Stats returns space and activity accounting.
func (v *Volume) Stats() Stats {
	st := v.stats
	st.WriteLat = v.histW.Summary()
	st.ReadLat = v.histR.Summary()
	st.TrimLat = v.histT.Summary()
	st.JournalFlushLat = v.histJF.Summary()
	st.CacheHits = v.cache.hits
	st.CacheMisses = v.cache.misses
	st.CacheAdmissions = v.cache.admissions
	st.CacheGhostHits = v.cache.ghostHits
	st.JournalRecords = int64(v.journal.Records())
	st.JournalTornRecords = int64(v.journal.TornRecords())
	st.LatencySpikes = v.drive.Stats().LatencySpikes
	st.IndexEvictions = v.index.FaultEvicted()
	return st
}

// Histograms returns copies of the per-op latency histograms (write, read,
// trim, journal flush). Copies, not pointers: callers merge them across
// shards without racing the volume's sequential commit path.
func (v *Volume) Histograms() (write, read, trim, journalFlush sim.Histogram) {
	return v.histW, v.histR, v.histT, v.histJF
}

// Drive exposes the underlying SSD for endurance inspection.
func (v *Volume) Drive() *ssd.Drive { return v.drive }

// JournalImage returns the serialized index journal — the durable form of
// every bin-buffer flush the volume destaged to the journal region.
func (v *Volume) JournalImage() []byte { return v.journal.Bytes() }

// RecoverIndex rebuilds an index from the volume's journal — what a restart
// after a crash would reconstruct. Recovery is lenient: a trailing torn or
// corrupt record truncates the journal there, and everything before the
// truncation point is applied as a consistent prefix of the flush history.
// Entries still in bin buffers at the crash point (never journaled) are
// absent; their future duplicates would be stored again.
func (v *Volume) RecoverIndex() (*dedup.BinIndex, dedup.Recovery, error) {
	return dedup.RecoverJournal(v.journal.Bytes(), v.cfg.Index)
}

// RecoverIndexStrict replays the journal refusing any corruption: a torn or
// bit-flipped record fails the whole replay with dedup.ErrJournalCorrupt.
func (v *Volume) RecoverIndexStrict() (*dedup.BinIndex, error) {
	return dedup.ReplayJournal(v.journal.Bytes(), v.cfg.Index)
}

// writeDrive is drive.Write with the shared bounded-retry policy: transient
// injected errors are retried up to fault.MaxRetries times, each retry
// charged exponential backoff on the virtual clock. Permanent errors (and
// exhausted retries) surface to the caller.
func (v *Volume) writeDrive(at time.Duration, lpn int64, pages int) (time.Duration, error) {
	for attempt := 0; ; attempt++ {
		end, err := v.drive.Write(at, lpn, pages)
		if err == nil {
			return end, nil
		}
		if !fault.IsTransient(err) || attempt >= fault.MaxRetries {
			return end, err
		}
		v.stats.SSDWriteRetries++
		at += fault.Backoff(attempt)
	}
}

// readDrive is drive.Read with the same bounded-retry policy.
func (v *Volume) readDrive(at time.Duration, lpn int64, pages int) (time.Duration, error) {
	for attempt := 0; ; attempt++ {
		end, err := v.drive.Read(at, lpn, pages)
		if err == nil {
			return end, nil
		}
		if !fault.IsTransient(err) || attempt >= fault.MaxRetries {
			return end, err
		}
		v.stats.SSDReadRetries++
		at += fault.Backoff(attempt)
	}
}

// journalFlush destages one bin-buffer flush to the sequential journal
// region and appends it to the durable image. Crash semantics under
// injection: a torn record persists only its prefix (recovery truncates
// there), and a permanent write failure degrades journaling off for the
// rest of the run — the volume keeps serving I/O from the in-memory index,
// it just loses crash recoverability, and the failure is counted. Returns
// the completion time of the journal write.
//
// Histogram contract: torn flushes COUNT in the journal-flush histogram —
// the partial write consumed real drive time, and hiding it would make
// JournalFlushLat lie about the time the volume spent flushing. So
// JournalFlushLat.Count == JournalRecords + JournalTornRecords. Flushes
// dropped by a permanent write failure (or while journaling is degraded
// off) consume no drive time and are NOT observed.
func (v *Volume) journalFlush(at time.Duration, f *dedup.Flush) time.Duration {
	if v.journalDead {
		return at
	}
	flushStart := metrics.Clock()
	defer metrics.VolumeJournalFlush.ObserveSince(flushStart)
	if frac, torn := v.faults.TornFraction(); torn {
		v.journal.AppendTorn(f, frac)
		end, _ := v.writeJournal(at, f.Bytes) // the partial write still happened
		v.histJF.Observe(end - at)
		return end
	}
	end, err := v.writeJournal(at, f.Bytes)
	if err != nil {
		v.journalDead = true
		v.stats.JournalWriteFailures++
		return at
	}
	v.histJF.Observe(end - at)
	v.journal.Append(f)
	return end
}

// writeJournal appends one flush record to the sequential journal region,
// wrapping at the region end.
func (v *Volume) writeJournal(at time.Duration, bytes int) (time.Duration, error) {
	pages := int64(v.drive.Pages(bytes))
	if pages == 0 {
		pages = 1
	}
	if v.journalCur+pages > v.journalLimit {
		v.journalCur = v.journalBase
	}
	end, err := v.writeDrive(at, v.journalCur, int(pages))
	if err != nil {
		return at, err
	}
	v.journalCur += pages
	v.stats.JournalBytes += int64(bytes)
	return end, nil
}

func (v *Volume) segOf(loc int64) int { return int(loc / int64(v.cfg.SegmentBytes)) }

func (v *Volume) segAt(i int) *segment {
	for len(v.segments) <= i {
		v.segments = append(v.segments, segment{})
	}
	return &v.segments[i]
}

// Write stores one block at lba through the inline reduction path and
// returns the request's virtual latency. Failed writes follow the same
// error-path accounting contract as Read: once past argument validation,
// the request's elapsed virtual time is committed to the clock and the
// write histogram, and the request counts in Stats.Writes, success or
// failure.
func (v *Volume) Write(lba int64, data []byte) (time.Duration, error) {
	if lba < 0 || lba >= v.cfg.Blocks {
		return 0, fmt.Errorf("volume: lba %d outside [0,%d)", lba, v.cfg.Blocks)
	}
	if len(data) != v.cfg.BlockSize {
		return 0, fmt.Errorf("volume: write of %d bytes, block size is %d", len(data), v.cfg.BlockSize)
	}
	start := v.now
	cost := v.cpu.Cost

	// Fingerprint + index probe (Figure 1's CPU path).
	fp := dedup.Sum(data)
	cs, t := v.cpu.Run(v.now, cost.ChunkCycles(len(data))+cost.HashCycles(len(data))+cost.StageOverheadCycles)
	v.cpuSpan("chunk+hash", cs, t)
	p := v.index.Lookup(fp)
	ps, t := v.cpu.Run(t, cost.ProbeCycles(p.BufferScanned, p.TreeSteps))
	v.cpuSpan("probe", ps, t)

	// The chunk store is authoritative for the duplicate decision (the
	// probe above charges the index work); a stored chunk is referenced
	// even if a capped index evicted its entry.
	if ref, ok := v.chunks[fp]; ok {
		ref.refs++
		v.stats.DedupHits++
	} else {
		// Unique: compress, append to the log, then index it.
		// Encode into the reusable scratch buffer, then retain an
		// exact-size copy: the blob lives in v.blobs for the chunk's
		// lifetime, so right-sizing it beats keeping the encoder's
		// capacity-grown slice alive.
		var cycles float64
		spanName := "store-raw"
		if v.cfg.Compress && v.cfg.SubBlocks > 1 {
			// Sub-block mode: independent lanes plus the indexed container
			// the parallel read path needs (raw fallback when the container
			// would not pay for itself).
			sp := lz.SubBlockParams{Params: v.cfg.LZ, SubBlocks: v.cfg.SubBlocks, Overlap: lz.Window / 8}
			res := lz.CompressSubBlocks(data, sp)
			var st lz.Stats
			var perr error
			v.compScratch, st, perr = lz.PostProcessOrRaw(v.compScratch[:0], data, res)
			if perr != nil {
				return 0, perr // impossible by construction: res came from data
			}
			cycles = cost.CompressCycles(st.Positions, st.SearchSteps, st.DstBytes)
			spanName = "compress-sub"
		} else if v.cfg.Compress {
			var st lz.Stats
			v.compScratch, st = lz.CompressCodec(v.cfg.Codec, v.compScratch[:0], data, v.cfg.LZ)
			cycles = cost.CompressCycles(st.Positions, st.SearchSteps, st.DstBytes)
			spanName = "compress"
		} else {
			v.compScratch = lz.StoreRaw(v.compScratch[:0], data)
			cycles = cost.MemcpyCycles(len(v.compScratch))
		}
		blob := append([]byte(nil), v.compScratch...)
		loc, err := v.alloc(len(blob))
		if err != nil {
			return v.failWrite(start, t, lba), err
		}
		var zs time.Duration
		zs, t = v.cpu.Run(t, cycles+cost.StageOverheadCycles)
		v.cpuSpan(spanName, zs, t)
		// Crash-consistent ordering: the data lands in the log before any
		// index or journal record can point at it.
		t, err = v.appendBlob(t, fp, loc, blob)
		if err != nil {
			return v.failWrite(start, t, lba), err
		}
		ir := v.index.Insert(fp, dedup.Entry{Loc: loc, Size: uint32(len(blob))})
		icycles := cost.InsertCycles + float64(ir.BufferScanned)*cost.BufferEntryCycles
		if ir.Flush != nil {
			icycles += float64(ir.Flush.TreeSteps) * cost.TreeStepCycles
		}
		var is time.Duration
		is, t = v.cpu.Run(t, icycles)
		v.cpuSpan("insert", is, t)
		if ir.Flush != nil {
			t = v.journalFlush(t, ir.Flush)
		}
	}

	// Release the overwritten mapping last (crash-consistent ordering:
	// the new data is referenced before the old reference drops).
	if old, ok := v.lbaMap[lba]; ok {
		v.deref(old)
	} else {
		v.stats.LogicalBytes += int64(v.cfg.BlockSize)
	}
	v.lbaMap[lba] = fp
	v.stats.Writes++
	v.now = t
	v.histW.Observe(t - start)
	if v.obs != nil {
		v.obs.SpanN(v.laneOps, "write", start, t, "lba", lba)
	}
	return t - start, nil
}

// failWrite commits a failed write to the clock, the stats, and the
// latency histogram — the same error-path accounting contract as failRead:
// CPU work and retry/backoff time a rejected write really consumed stays on
// the clock and in the latency summaries.
func (v *Volume) failWrite(start, end time.Duration, lba int64) time.Duration {
	v.stats.Writes++
	v.now = end
	v.histW.Observe(end - start)
	if v.obs != nil {
		v.obs.SpanN(v.laneOps, "write-error", start, end, "lba", lba)
	}
	return end - start
}

// curLoc returns the byte offset of the current append position.
func (v *Volume) curLoc() int64 {
	return int64(v.cur.seg)*int64(v.cfg.SegmentBytes) + v.cur.off
}

// alloc reserves n contiguous log bytes (within one segment), advancing to
// a fresh segment when the current one cannot fit the blob. Cleaned
// segments are reused before new ones are opened.
func (v *Volume) alloc(n int) (int64, error) {
	if n > v.cfg.SegmentBytes {
		return 0, fmt.Errorf("volume: blob of %d bytes exceeds segment size %d", n, v.cfg.SegmentBytes)
	}
	if v.cur.off+int64(n) > int64(v.cfg.SegmentBytes) {
		// Seal this segment (the skipped tail was never written) and open
		// the next: a cleaned segment if one is free, else a fresh one.
		next := -1
		if len(v.freeSegs) > 0 {
			next = v.freeSegs[0]
			v.freeSegs = v.freeSegs[1:]
		} else if len(v.segments) < v.maxSegs {
			next = len(v.segments)
			v.segments = append(v.segments, segment{})
		} else {
			return 0, fmt.Errorf("volume: log full (%d segments, none free — run Clean or trim data)", v.maxSegs)
		}
		v.cur = logCursor{seg: next, off: 0}
	}
	loc := v.curLoc()
	v.cur.off += int64(n)
	return loc, nil
}

// appendBlob lands a unique blob at its allocated log position and
// registers its chunkRef. On error it returns the virtual time the failed
// write reached (retries and backoff included), so callers can commit it.
func (v *Volume) appendBlob(at time.Duration, fp dedup.Fingerprint, loc int64, blob []byte) (time.Duration, error) {
	end, err := v.writeLog(at, loc, len(blob))
	if err != nil {
		return end, err
	}
	v.blobs[loc] = blob
	v.chunks[fp] = &chunkRef{fp: fp, loc: loc, size: int32(len(blob)), refs: 1}
	seg := v.segAt(v.segOf(loc))
	seg.live += int64(len(blob))
	seg.used += int64(len(blob))
	v.stats.StoredBytes += int64(len(blob))
	v.stats.LogBytes += int64(len(blob))
	return end, nil
}

// writeLog charges the SSD pages covering [loc, loc+n), absorbing
// transient faults through the bounded-retry policy.
func (v *Volume) writeLog(at time.Duration, loc int64, n int) (time.Duration, error) {
	pageSize := int64(v.drive.PageSize)
	first := loc / pageSize
	last := (loc + int64(n) - 1) / pageSize
	return v.writeDrive(at, first, int(last-first+1))
}

// deref drops one reference to fp, reclaiming the chunk at zero.
func (v *Volume) deref(fp dedup.Fingerprint) {
	ref, ok := v.chunks[fp]
	if !ok {
		return
	}
	ref.refs--
	if ref.refs > 0 {
		return
	}
	// Last reference gone: drop from index, store, and space accounting.
	v.index.Remove(fp)
	delete(v.chunks, fp)
	delete(v.blobs, ref.loc)
	v.segAt(v.segOf(ref.loc)).live -= int64(ref.size)
	v.stats.StoredBytes -= int64(ref.size)
	v.stats.GarbageBytes += int64(ref.size)
}

// Read returns the block at lba (zeros when unmapped) and the request's
// virtual latency.
//
// Error-path accounting contract: once a request passes argument
// validation, every virtual nanosecond it consumes is committed to the
// clock and its latency histogram, and the request is counted in Stats,
// whether it succeeds or fails — retry/backoff time spent on a read that
// ultimately errors must not vanish from the latency summaries.
func (v *Volume) Read(lba int64) ([]byte, time.Duration, error) {
	return v.ReadInto(nil, lba)
}

// ReadInto is Read appending the block's payload to dst (reusing dst's
// backing array when its capacity suffices), so closed-loop callers that
// issue many reads can recycle one buffer instead of allocating a block per
// request. On error the original dst is returned unchanged; virtual-time
// accounting is identical to Read.
func (v *Volume) ReadInto(dst []byte, lba int64) ([]byte, time.Duration, error) {
	if lba < 0 || lba >= v.cfg.Blocks {
		return dst, 0, fmt.Errorf("volume: lba %d outside [0,%d)", lba, v.cfg.Blocks)
	}
	start := v.now
	base := len(dst)
	fp, ok := v.lbaMap[lba]
	if !ok {
		// Unmapped: the array synthesizes zeros without touching media, but
		// the staging copy into the caller's buffer is real work — charged
		// exactly like a cache hit's copy, so an unmapped read can never be
		// cheaper than a cached one.
		zs, t := v.cpu.Run(v.now, v.cpu.Cost.MemcpyCycles(v.cfg.BlockSize)+v.cpu.Cost.StageOverheadCycles)
		v.cpuSpan("zero-fill", zs, t)
		v.stats.Reads++
		v.now = t
		v.histR.Observe(t - start)
		if v.obs != nil {
			v.obs.SpanN(v.laneOps, "read", start, t, "lba", lba)
		}
		return appendZeros(dst, v.cfg.BlockSize), t - start, nil
	}
	// Content-addressed cache: a hit skips the SSD and the decoder, paying
	// one staging copy.
	if data := v.cache.get(fp); data != nil {
		ms, t := v.cpu.Run(v.now, v.cpu.Cost.MemcpyCycles(len(data))+v.cpu.Cost.StageOverheadCycles)
		v.cpuSpan("cache-copy", ms, t)
		v.stats.Reads++
		v.now = t
		v.histR.Observe(t - start)
		if v.obs != nil {
			v.obs.SpanN(v.laneOps, "read", start, t, "lba", lba)
		}
		return append(dst, data...), t - start, nil
	}

	ref := v.chunks[fp]
	blob := v.blobs[ref.loc]

	// SSD read of the pages holding the blob, then CPU decompression.
	pageSize := int64(v.drive.PageSize)
	first := ref.loc / pageSize
	last := (ref.loc + int64(ref.size) - 1) / pageSize
	t, err := v.readDrive(v.now, first, int(last-first+1))
	if err != nil {
		return dst, v.failRead(start, t, lba), fmt.Errorf("volume: lba %d: %w", lba, err)
	}
	out, err := lz.Decompress(dst, blob)
	if err != nil {
		return dst, v.failRead(start, t, lba), fmt.Errorf("volume: lba %d: %w", lba, err)
	}
	ds, t := v.cpu.Run(t, v.cpu.Cost.DecompressCycles(len(out)-base)+v.cpu.Cost.StageOverheadCycles)
	v.cpuSpan("decompress", ds, t)
	v.cache.put(fp, out[base:])
	v.stats.Reads++
	v.now = t
	v.histR.Observe(t - start)
	if v.obs != nil {
		v.obs.SpanN(v.laneOps, "read", start, t, "lba", lba)
	}
	return out, t - start, nil
}

// appendZeros appends n zero bytes to dst, reusing capacity when possible.
func appendZeros(dst []byte, n int) []byte {
	base := len(dst)
	if cap(dst) >= base+n {
		out := dst[:base+n]
		clear(out[base:])
		return out
	}
	out := make([]byte, base+n)
	copy(out, dst)
	return out
}

// failRead commits a failed read to the clock, the stats, and the latency
// histogram (the error-path accounting contract: time a request really
// spent — retries, backoff, the partial work before the failure — never
// vanishes). Returns the request's latency for the caller to surface
// alongside the error.
func (v *Volume) failRead(start, end time.Duration, lba int64) time.Duration {
	v.stats.Reads++
	v.now = end
	v.histR.Observe(end - start)
	if v.obs != nil {
		v.obs.SpanN(v.laneOps, "read-error", start, end, "lba", lba)
	}
	return end - start
}

// Trim unmaps a block, releasing its chunk reference, and returns the
// request's virtual latency (one FTL metadata update on the CPU — no NAND
// time, but a real request in the closed loop).
func (v *Volume) Trim(lba int64) (time.Duration, error) {
	if lba < 0 || lba >= v.cfg.Blocks {
		return 0, fmt.Errorf("volume: lba %d outside [0,%d)", lba, v.cfg.Blocks)
	}
	start := v.now
	ts, t := v.cpu.Run(v.now, v.cpu.Cost.StageOverheadCycles)
	v.cpuSpan("trim", ts, t)
	if fp, ok := v.lbaMap[lba]; ok {
		delete(v.lbaMap, lba)
		v.deref(fp)
		v.stats.LogicalBytes -= int64(v.cfg.BlockSize)
	}
	v.stats.Trims++
	v.now = t
	v.histT.Observe(t - start)
	if v.obs != nil {
		v.obs.SpanN(v.laneOps, "trim", start, t, "lba", lba)
	}
	return t - start, nil
}

// Clean compacts log segments whose garbage fraction exceeds the threshold:
// live blobs are read and re-appended (charging SSD and CPU time), and the
// segment's space returns to the free pool. Returns the number of segments
// cleaned.
func (v *Volume) Clean() (int, error) {
	cleaned := 0
	// The active segment is never cleaned.
	for i := range v.segments {
		if i == v.cur.seg {
			continue
		}
		seg := &v.segments[i]
		if seg.used == 0 {
			continue
		}
		garbage := seg.used - seg.live
		if float64(garbage)/float64(seg.used) < v.cfg.CleanThreshold {
			continue
		}
		if err := v.cleanSegment(i); err != nil {
			return cleaned, err
		}
		cleaned++
	}
	return cleaned, nil
}

// cleanSegment moves a segment's live blobs to the log head.
//
// Accounting is per-chunk so a mid-move failure leaves Stats consistent:
// each successfully moved blob immediately leaves the source segment's
// live count and turns its old copy into garbage; the final reconciliation
// only retires the garbage the freed segment still holds. On any error the
// elapsed virtual time is committed to the clock before returning (the
// error-path accounting contract), the already-moved chunks stay moved,
// and the partially cleaned segment remains a candidate for the next pass.
func (v *Volume) cleanSegment(i int) error {
	segStart := int64(i) * int64(v.cfg.SegmentBytes)
	segEnd := segStart + int64(v.cfg.SegmentBytes)
	v.stats.CleanRuns++

	// Collect live chunks resident in this segment, in log order (map
	// iteration order must not leak into the move schedule — the fault
	// injector and the virtual clock both depend on it).
	var live []*chunkRef
	for _, ref := range v.chunks {
		if ref.loc >= segStart && ref.loc < segEnd {
			live = append(live, ref)
		}
	}
	sort.Slice(live, func(a, b int) bool { return live[a].loc < live[b].loc })
	t := v.now
	// Whatever happens below, the elapsed virtual time and the cleaning
	// span are committed — a failed move must not make drive time vanish.
	defer func() {
		if v.obs != nil {
			v.obs.SpanN(v.laneOps, "clean-segment", v.now, t, "segment", int64(i))
		}
		v.now = t
	}()
	pageSize := int64(v.drive.PageSize)
	for _, ref := range live {
		blob := v.blobs[ref.loc]
		// Read the blob's pages, re-append at the log head.
		first := ref.loc / pageSize
		last := (ref.loc + int64(ref.size) - 1) / pageSize
		end, err := v.readDrive(t, first, int(last-first+1))
		t = end
		if err != nil {
			return fmt.Errorf("volume: during cleaning: %w", err)
		}
		newLoc, err := v.alloc(len(blob))
		if err != nil {
			return fmt.Errorf("volume: during cleaning: %w", err)
		}
		end, err = v.writeLog(t, newLoc, len(blob))
		t = end
		if err != nil {
			// The failed append leaves a never-written hole at newLoc; it
			// belongs to no segment's accounting and is simply lost capacity.
			return fmt.Errorf("volume: during cleaning: %w", err)
		}
		delete(v.blobs, ref.loc)
		v.blobs[newLoc] = blob
		ref.loc = newLoc
		// Keep the index pointing at the moved blob; a flush it triggers is
		// journaled like any other (the moved location must win over the
		// stale one in any post-crash replay).
		if ir := v.index.Insert(ref.fp, dedup.Entry{Loc: newLoc, Size: uint32(ref.size)}); ir.Flush != nil {
			t = v.journalFlush(t, ir.Flush)
		}
		ns := v.segAt(v.segOf(newLoc))
		ns.live += int64(ref.size)
		ns.used += int64(ref.size)
		// The chunk has left the source segment: its old copy is garbage
		// now, not at end-of-segment reconciliation time. (segAt, not a
		// held pointer: alloc may have grown v.segments.)
		v.segAt(i).live -= int64(ref.size)
		v.stats.GarbageBytes += int64(ref.size)
		v.stats.MovedBytes += int64(ref.size)
		v.stats.LogBytes += int64(ref.size)
		var mvs time.Duration
		mvs, t = v.cpu.Run(t, v.cpu.Cost.MemcpyCycles(len(blob)))
		v.cpuSpan("gc-copy", mvs, t)
	}
	// Every live blob has moved out: retire the garbage the segment still
	// holds (its originally dead bytes plus the copies the moves above just
	// orphaned) and return it to the free pool.
	seg := v.segAt(i)
	v.stats.GarbageBytes -= seg.used - seg.live
	seg.live, seg.used = 0, 0
	v.freeSegs = append(v.freeSegs, i)
	// Trim the reclaimed segment's pages so the FTL can reuse them.
	segStartPage := int64(i) * int64(v.cfg.SegmentBytes) / pageSize
	v.drive.Trim(segStartPage, v.cfg.SegmentBytes/int(pageSize))
	return nil
}
