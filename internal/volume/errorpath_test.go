package volume

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"inlinered/internal/cpusim"
	"inlinered/internal/fault"
	"inlinered/internal/obs"
)

// armFaults swaps in a fresh injector mid-run, so a test can build clean
// state first and then fault a specific operation.
func armFaults(v *Volume, cfg fault.Config) {
	v.faults = fault.New(cfg)
	v.drive.SetFaultInjector(v.faults)
}

func disarmFaults(v *Volume) {
	v.faults = nil
	v.drive.SetFaultInjector(nil)
}

// segGarbage recomputes the garbage invariant from first principles:
// Stats.GarbageBytes must equal the dead bytes summed over all segments.
func segGarbage(v *Volume) int64 {
	var g int64
	for i := range v.segments {
		g += v.segments[i].used - v.segments[i].live
	}
	return g
}

// segLive sums live bytes over all segments; it must equal
// Stats.StoredBytes (each referenced blob lives in exactly one segment).
// A mid-move cleaning failure that credits the destination segment without
// debiting the source double-counts the moved blob and breaks this.
func segLive(v *Volume) int64 {
	var l int64
	for i := range v.segments {
		l += v.segments[i].live
	}
	return l
}

// checkSpaceInvariants asserts the two segment-accounting invariants.
func checkSpaceInvariants(t *testing.T, v *Volume, context string) {
	t.Helper()
	st := v.Stats()
	if st.GarbageBytes < 0 {
		t.Fatalf("%s: GarbageBytes went negative: %d", context, st.GarbageBytes)
	}
	if got := segGarbage(v); st.GarbageBytes != got {
		t.Fatalf("%s: GarbageBytes=%d but segments hold %d dead bytes", context, st.GarbageBytes, got)
	}
	if got := segLive(v); st.StoredBytes != got {
		t.Fatalf("%s: StoredBytes=%d but segments hold %d live bytes", context, st.StoredBytes, got)
	}
}

// retryBackoffTotal is the virtual time a request that exhausts every retry
// must have spent backing off.
func retryBackoffTotal() time.Duration {
	var d time.Duration
	for a := 0; a < fault.MaxRetries; a++ {
		d += fault.Backoff(a)
	}
	return d
}

// TestReadErrorCommitsTimeAndStats locks down the Read error-path contract:
// a read that exhausts its transient retries surfaces an error AND commits
// the retry/backoff time to the clock, counts in Stats.Reads, and shows up
// in the read histogram. Before the fix, the error return skipped all
// three — the spent virtual time simply vanished.
func TestReadErrorCommitsTimeAndStats(t *testing.T) {
	cfg := faultConfig()
	rec := obs.NewRecorder()
	cfg.Obs = rec
	v := newVolume(t, cfg)
	if _, err := v.Write(7, block(7)); err != nil {
		t.Fatal(err)
	}
	before := v.Stats()
	now := v.Now()
	armFaults(v, fault.Config{Seed: 21, Rates: fault.Rates{SSDReadTransient: 1}})

	_, lat, err := v.Read(7)
	if err == nil {
		t.Fatal("rate-1 transient read faults must exhaust retries and surface")
	}
	backoffs := retryBackoffTotal()
	if lat < backoffs {
		t.Fatalf("failed-read latency %v < total retry backoff %v: spent time vanished", lat, backoffs)
	}
	if got := v.Now(); got != now+lat {
		t.Fatalf("clock did not commit the failed read: now=%v, want %v", got, now+lat)
	}
	st := v.Stats()
	if st.Reads != before.Reads+1 {
		t.Fatalf("failed read not counted: Reads=%d, want %d", st.Reads, before.Reads+1)
	}
	if st.ReadLat.Count != before.ReadLat.Count+1 {
		t.Fatalf("failed read invisible in histogram: count=%d, want %d",
			st.ReadLat.Count, before.ReadLat.Count+1)
	}
	if st.ReadLat.Max < backoffs {
		t.Fatalf("read histogram max %v < backoff total %v: failed read not observed", st.ReadLat.Max, backoffs)
	}
	if st.SSDReadRetries != before.SSDReadRetries+fault.MaxRetries {
		t.Fatalf("retries: %d, want %d", st.SSDReadRetries, before.SSDReadRetries+fault.MaxRetries)
	}

	// The failure is visible in the trace as a read-error span.
	var buf bytes.Buffer
	if err := rec.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("read-error")) {
		t.Fatal("trace has no read-error span for the failed read")
	}

	// The fault was injected, not real: disarmed, the data is still there.
	disarmFaults(v)
	got, _, err := v.Read(7)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, block(7)) {
		t.Fatal("data corrupted by a failed read")
	}
}

// TestUnmappedReadObserved checks the consistency half of the Read fix:
// unmapped reads count in Stats, observe the zero-fill staging-copy charge
// in the latency histogram (they used to count at zero latency, making an
// unmapped read cheaper than a cache hit of the same bytes), and emit a
// span like every mapped read.
func TestUnmappedReadObserved(t *testing.T) {
	cfg := smallConfig()
	rec := obs.NewRecorder()
	cfg.Obs = rec
	v := newVolume(t, cfg)
	got, lat, err := v.Read(3)
	if err != nil {
		t.Fatal(err)
	}
	cpu := cpusim.New(cfg.CPU)
	_, want := cpu.Run(0, cpu.Cost.MemcpyCycles(cfg.BlockSize)+cpu.Cost.StageOverheadCycles)
	if lat != want {
		t.Fatalf("unmapped read latency = %v, want the zero-fill copy charge %v", lat, want)
	}
	for _, b := range got {
		if b != 0 {
			t.Fatal("unmapped read must return zeros")
		}
	}
	st := v.Stats()
	if st.Reads != 1 {
		t.Fatalf("Reads = %d, want 1", st.Reads)
	}
	if st.ReadLat.Count != 1 {
		t.Fatalf("unmapped read missing from the histogram: count = %d, want 1", st.ReadLat.Count)
	}
	if st.ReadLat.Max != want || st.ReadLat.Min != want {
		t.Fatalf("histogram must pin the zero-fill charge: min=%v max=%v want=%v",
			st.ReadLat.Min, st.ReadLat.Max, want)
	}
	if rec.Spans() == 0 {
		t.Fatal("unmapped read emitted no span")
	}
}

// TestWriteErrorCommitsTimeAndStats is the Write twin of the Read test: a
// permanently failed append still counts the CPU time the request consumed
// (fingerprint, probe, compress) on the clock and in the write histogram.
func TestWriteErrorCommitsTimeAndStats(t *testing.T) {
	v := newVolume(t, faultConfig())
	armFaults(v, fault.Config{Seed: 4, Rates: fault.Rates{SSDWritePermanent: 1}})
	now := v.Now()

	lat, err := v.Write(0, block(0))
	if err == nil {
		t.Fatal("rate-1 permanent write faults must surface")
	}
	if lat <= 0 {
		t.Fatal("failed write consumed CPU time before the append; latency must be > 0")
	}
	if got := v.Now(); got != now+lat {
		t.Fatalf("clock did not commit the failed write: now=%v, want %v", got, now+lat)
	}
	st := v.Stats()
	if st.Writes != 1 {
		t.Fatalf("failed write not counted: Writes=%d, want 1", st.Writes)
	}
	if st.WriteLat.Count != 1 {
		t.Fatalf("failed write invisible in histogram: count=%d, want 1", st.WriteLat.Count)
	}
	// The failed write must not have mapped the LBA or leaked live bytes.
	if st.LogicalBytes != 0 || st.StoredBytes != 0 {
		t.Fatalf("failed write leaked space accounting: %+v", st)
	}

	disarmFaults(v)
	if _, err := v.Write(0, block(0)); err != nil {
		t.Fatalf("write after disarm: %v", err)
	}
	if got, _, err := v.Read(0); err != nil || !bytes.Equal(got, block(0)) {
		t.Fatal("round trip after a failed write broke")
	}
}

// dirtyVolume builds a volume whose early segments are half garbage, so
// Clean has real moving to do.
func dirtyVolume(t *testing.T) *Volume {
	t.Helper()
	cfg := faultConfig()
	cfg.Compress = false // raw blobs: predictable sizes, many per segment
	cfg.SegmentBytes = 128 << 10
	cfg.CleanThreshold = 0.3
	v := newVolume(t, cfg)
	const n = 256
	for i := 0; i < n; i++ {
		if _, err := v.Write(int64(i), block(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i += 2 {
		if _, err := v.Trim(int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	return v
}

// TestCleanErrorCommitsTime checks that a cleaning pass killed by a
// permanent write fault still commits the read time it consumed to the
// virtual clock. Before the fix, cleanSegment returned without v.now = t.
func TestCleanErrorCommitsTime(t *testing.T) {
	v := dirtyVolume(t)
	armFaults(v, fault.Config{Seed: 2, Rates: fault.Rates{SSDWritePermanent: 1}})
	now := v.Now()
	if _, err := v.Clean(); err == nil {
		t.Fatal("permanent write faults must surface from cleaning")
	}
	if got := v.Now(); got <= now {
		t.Fatalf("failed clean's drive time vanished: now=%v, was %v", got, now)
	}
	checkSpaceInvariants(t, v, "after failed clean")
}

// TestCleanMidMoveFailureKeepsAccountingConsistent is the regression test
// for the per-chunk accounting fix: find a seed where cleaning moves at
// least one blob and then dies, and require the garbage invariant
// (Stats.GarbageBytes == dead bytes summed over segments, and >= 0) to hold
// at the failure point and through recovery. Before the fix, moved chunks
// bumped the destination segment but the source segment and GarbageBytes
// were only reconciled on success, so the failure point broke the invariant.
func TestCleanMidMoveFailureKeepsAccountingConsistent(t *testing.T) {
	for seed := int64(0); seed < 64; seed++ {
		v := dirtyVolume(t)
		movedBefore := v.Stats().MovedBytes
		armFaults(v, fault.Config{Seed: seed, Rates: fault.Rates{SSDWritePermanent: 0.3}})
		now := v.Now()
		_, err := v.Clean()
		st := v.Stats()
		if v.Now() < now {
			t.Fatalf("seed %d: clock went backwards across Clean", seed)
		}
		checkSpaceInvariants(t, v, fmt.Sprintf("seed %d after Clean (err=%v)", seed, err))
		if err == nil || st.MovedBytes == movedBefore {
			continue // not the shape we're hunting: need moves, then a failure
		}

		// Found a mid-move failure. Recovery: disarm and clean to completion.
		disarmFaults(v)
		if _, err := v.Clean(); err != nil {
			t.Fatalf("seed %d: clean after disarm: %v", seed, err)
		}
		checkSpaceInvariants(t, v, fmt.Sprintf("seed %d after recovery clean", seed))
		// Every surviving block still reads back byte-identical.
		for i := 1; i < 256; i += 2 {
			got, _, err := v.Read(int64(i))
			if err != nil {
				t.Fatalf("seed %d: lba %d after recovery: %v", seed, i, err)
			}
			if !bytes.Equal(got, block(i)) {
				t.Fatalf("seed %d: lba %d corrupted by interrupted cleaning", seed, i)
			}
		}
		return
	}
	t.Fatal("no seed in [0,64) produced a mid-move cleaning failure after a successful move")
}

// TestTornFlushCountsInJournalHistogram locks down the torn-flush decision:
// a torn record consumed real drive time, so it counts —
// JournalFlushLat.Count == JournalRecords + JournalTornRecords.
func TestTornFlushCountsInJournalHistogram(t *testing.T) {
	cfg := faultConfig()
	cfg.Faults = fault.Config{Seed: 5, Rates: fault.Rates{JournalTorn: 0.2}}
	v := newVolume(t, cfg)
	for i := 0; i < 300; i++ {
		if _, err := v.Write(int64(i), block(i)); err != nil {
			t.Fatal(err)
		}
	}
	st := v.Stats()
	if st.JournalTornRecords == 0 {
		t.Fatal("20% torn rate over 300 writes should have fired")
	}
	if want := st.JournalRecords + st.JournalTornRecords; st.JournalFlushLat.Count != want {
		t.Fatalf("journal-flush histogram count %d != records %d + torn %d",
			st.JournalFlushLat.Count, st.JournalRecords, st.JournalTornRecords)
	}
}

// TestDegradedFlushesNotObserved is the other half of the torn-flush
// contract: flushes dropped by a permanent journal-write failure (and all
// later drops in degraded mode) consume no drive time and must NOT count.
func TestDegradedFlushesNotObserved(t *testing.T) {
	v := newVolume(t, faultConfig())
	before := v.Stats().JournalFlushLat.Count
	armFaults(v, fault.Config{Seed: 3, Rates: fault.Rates{SSDWritePermanent: 1}})
	flush := fabricateFlush(t)
	v.journalFlush(0, flush) // permanent failure: degrades journaling off
	v.journalFlush(0, flush) // degraded: dropped silently
	if got := v.Stats().JournalFlushLat.Count; got != before {
		t.Fatalf("dropped flushes counted in the histogram: %d, want %d", got, before)
	}
}

// TestClockMonotoneUnderErrors sweeps a mixed op stream through aggressive
// fault rates — including error-surfacing permanent faults — and checks the
// global accounting contract: the clock never goes backwards, every issued
// op is counted and observed exactly once (success or failure), and the
// garbage invariant holds throughout.
func TestClockMonotoneUnderErrors(t *testing.T) {
	cfg := faultConfig()
	cfg.SegmentBytes = 128 << 10
	v := newVolume(t, cfg)
	armFaults(v, fault.Config{Seed: 77, Rates: fault.Rates{
		SSDWriteTransient: 0.3,
		SSDReadTransient:  0.3,
		SSDWritePermanent: 0.02,
		JournalTorn:       0.1,
	}})
	rng := rand.New(rand.NewSource(1))
	last := v.Now()
	var writes, reads, trims int64
	sawError := false
	for op := 0; op < 600; op++ {
		lba := rng.Int63n(96)
		var err error
		switch rng.Intn(8) {
		case 0, 1, 2, 3:
			_, err = v.Write(lba, block(rng.Intn(64)))
			writes++
		case 4:
			_, err = v.Trim(lba)
			trims++
		case 5:
			_, err = v.Clean()
		default:
			_, _, err = v.Read(lba)
			reads++
		}
		if err != nil {
			sawError = true
		}
		if v.Now() < last {
			t.Fatalf("virtual clock went backwards at op %d", op)
		}
		last = v.Now()
		checkSpaceInvariants(t, v, fmt.Sprintf("op %d", op))
	}
	if !sawError {
		t.Fatal("2% permanent write rate over 600 ops should have surfaced an error")
	}
	st := v.Stats()
	if st.Writes != writes || st.Reads != reads || st.Trims != trims {
		t.Fatalf("op counts drifted: stats %d/%d/%d, issued %d/%d/%d",
			st.Writes, st.Reads, st.Trims, writes, reads, trims)
	}
	if st.WriteLat.Count != writes || st.ReadLat.Count != reads || st.TrimLat.Count != trims {
		t.Fatalf("histogram counts drifted: %d/%d/%d, issued %d/%d/%d",
			st.WriteLat.Count, st.ReadLat.Count, st.TrimLat.Count, writes, reads, trims)
	}
}
