package volume

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"inlinered/internal/fault"
	"inlinered/internal/parallel"
)

// subConfig is smallConfig with the indexed sub-block write path on, so
// batch reads exercise the parallel per-part decode.
func subConfig() Config {
	cfg := smallConfig()
	cfg.SubBlocks = 4
	return cfg
}

// fillVolume writes n deterministic blocks (with some duplicates to
// exercise dedup-shared fingerprints) and returns the written images.
func fillVolume(t *testing.T, v *Volume, n int) [][]byte {
	t.Helper()
	blocks := make([][]byte, n)
	for i := 0; i < n; i++ {
		data := block(i % (n * 3 / 4)) // last quarter duplicates earlier content
		if _, err := v.Write(int64(i), data); err != nil {
			t.Fatal(err)
		}
		blocks[i] = data
	}
	return blocks
}

// stormLBAs is a deterministic boot-storm-ish request stream: repeated
// sweeps over a hot set plus some unmapped holes.
func stormLBAs(n int64, reads int) []int64 {
	lbas := make([]int64, reads)
	for i := range lbas {
		switch {
		case i%17 == 0:
			lbas[i] = n + int64(i%7) // unmapped hole
		default:
			lbas[i] = int64((i * 13) % int(n))
		}
	}
	return lbas
}

// TestReadBatchMatchesSerial: on a healthy volume, one ReadBatch must be
// indistinguishable from the same reads issued serially — same bytes, same
// per-request latencies, same final clock, stats, and histogram summary.
func TestReadBatchMatchesSerial(t *testing.T) {
	for _, sub := range []int{0, 4} {
		t.Run(fmt.Sprintf("subblocks=%d", sub), func(t *testing.T) {
			cfg := smallConfig()
			cfg.SubBlocks = sub
			vs := newVolume(t, cfg)
			vb := newVolume(t, cfg)
			fillVolume(t, vs, 64)
			fillVolume(t, vb, 64)
			lbas := stormLBAs(64, 200)

			type res struct {
				data []byte
				lat  int64
			}
			serial := make([]res, len(lbas))
			var buf []byte
			for i, lba := range lbas {
				out, lat, err := vs.ReadInto(buf[:0], lba)
				if err != nil {
					t.Fatal(err)
				}
				serial[i] = res{data: append([]byte(nil), out...), lat: int64(lat)}
				buf = out
			}

			b, err := vb.ReadBatch(nil, lbas, nil)
			if err != nil {
				t.Fatal(err)
			}
			if b.Len() != len(lbas) {
				t.Fatalf("batch len %d, want %d", b.Len(), len(lbas))
			}
			for i := range lbas {
				if err := b.Err(i); err != nil {
					t.Fatalf("read %d: %v", i, err)
				}
				if !bytes.Equal(b.Block(i), serial[i].data) {
					t.Fatalf("read %d (lba %d): batch bytes diverge from serial", i, lbas[i])
				}
				if int64(b.Latency(i)) != serial[i].lat {
					t.Fatalf("read %d (lba %d): batch latency %v, serial %v",
						i, lbas[i], b.Latency(i), serial[i].lat)
				}
			}
			if vs.Now() != vb.Now() {
				t.Fatalf("clock diverged: serial %v, batch %v", vs.Now(), vb.Now())
			}
			ss, bs := vs.Stats(), vb.Stats()
			if ss != bs {
				t.Fatalf("stats diverged:\nserial %+v\nbatch  %+v", ss, bs)
			}
		})
	}
}

// TestReadBatchDeterministicAcrossWorkers: the committed batch (bytes,
// latencies, stats) must be bit-identical whether the decode phase runs
// inline or fanned out over any pool size.
func TestReadBatchDeterministicAcrossWorkers(t *testing.T) {
	lbas := stormLBAs(64, 300)
	var ref *Volume
	var refB *ReadBatch
	for _, workers := range []int{0, 1, 2, 4, 8} {
		v := newVolume(t, subConfig())
		fillVolume(t, v, 64)
		var pool *parallel.Pool
		if workers > 0 {
			pool = parallel.New(workers)
		}
		b, err := v.ReadBatch(nil, lbas, pool)
		if pool != nil {
			pool.Close()
		}
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref, refB = v, b
			if b.DecodedParts() <= b.DecodedBlobs() {
				t.Fatalf("sub-block mode produced no parallel fan-out: %d parts over %d blobs",
					b.DecodedParts(), b.DecodedBlobs())
			}
			continue
		}
		for i := range lbas {
			if !bytes.Equal(b.Block(i), refB.Block(i)) {
				t.Fatalf("workers=%d: read %d bytes diverge", workers, i)
			}
			if b.Latency(i) != refB.Latency(i) {
				t.Fatalf("workers=%d: read %d latency diverges", workers, i)
			}
		}
		if v.Now() != ref.Now() {
			t.Fatalf("workers=%d: clock diverged", workers)
		}
		if v.Stats() != ref.Stats() {
			t.Fatalf("workers=%d: stats diverged", workers)
		}
	}
}

// TestReadBatchReuse: recycling one batch across many calls must not leak
// state between batches.
func TestReadBatchReuse(t *testing.T) {
	v := newVolume(t, subConfig())
	blocks := fillVolume(t, v, 32)
	var b *ReadBatch
	var err error
	for round := 0; round < 4; round++ {
		lbas := stormLBAs(32, 50+round*37)
		b, err = v.ReadBatch(b, lbas, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i, lba := range lbas {
			if err := b.Err(i); err != nil {
				t.Fatal(err)
			}
			want := make([]byte, v.cfg.BlockSize)
			if lba < 32 {
				want = blocks[lba]
			}
			if !bytes.Equal(b.Block(i), want) {
				t.Fatalf("round %d read %d (lba %d): bytes diverge", round, i, lba)
			}
		}
	}
}

// TestReadBatchReuseIndexedThenRaw: recycled item slots must not leak
// deferred overlap copies across batches. Batch 1 decodes an indexed
// container whose sub-parts defer cross-lane matches; batch 2 reuses the
// same ReadBatch to read raw-fallback blobs, whose whole-blob items recycle
// those slots — stale deferred entries would be patched into the freshly
// decoded blocks at commit as silent corruption.
func TestReadBatchReuseIndexedThenRaw(t *testing.T) {
	v := newVolume(t, subConfig())
	bs := v.cfg.BlockSize

	// lba 0: short repeating pattern — the indexed container's later parts
	// encode matches reaching into earlier lanes' output, which defer.
	indexed := bytes.Repeat([]byte{0x10, 0x33, 0x52, 0x71, 0x9c, 0xbe, 0xd4, 0xf7}, bs/8)
	// lbas 1, 2: incompressible content stores as raw blobs, decoded by the
	// whole-blob fallback items that recycle batch 1's sub-part slots.
	rng := rand.New(rand.NewSource(7))
	raw1, raw2 := make([]byte, bs), make([]byte, bs)
	rng.Read(raw1)
	rng.Read(raw2)
	for lba, data := range map[int64][]byte{0: indexed, 1: raw1, 2: raw2} {
		if _, err := v.Write(lba, data); err != nil {
			t.Fatal(err)
		}
	}

	b, err := v.ReadBatch(nil, []int64{0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Err(0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b.Block(0), indexed) {
		t.Fatal("indexed read returned wrong bytes")
	}
	if b.DecodedParts() < 2 {
		t.Fatalf("indexed blob decoded as %d items; the scenario needs sub-part fan-out", b.DecodedParts())
	}
	deferred := 0
	for i := range b.items {
		deferred += len(b.items[i].deferred)
	}
	if deferred == 0 {
		t.Fatal("indexed decode produced no deferred copies; the scenario needs stale entries to leak")
	}

	b, err = v.ReadBatch(b, []int64{1, 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range [][]byte{raw1, raw2} {
		if err := b.Err(i); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b.Block(i), want) {
			t.Fatalf("raw read %d corrupted by stale deferred copies from the previous batch", i)
		}
	}
}

// TestReadBatchDriveError: a failed SSD read inside a batch follows the
// serial error-path accounting contract (time committed, read counted) and
// only fails its own request.
func TestReadBatchDriveError(t *testing.T) {
	v := newVolume(t, subConfig())
	fillVolume(t, v, 16)
	// Rate-1 transient read errors exhaust the bounded retries, surfacing
	// as permanent failures.
	armFaults(v, fault.Config{Seed: 11, Rates: fault.Rates{SSDReadTransient: 1}})
	before := v.Stats()
	lbas := []int64{0, 1, 2}
	b, err := v.ReadBatch(nil, lbas, nil)
	if err != nil {
		t.Fatal(err)
	}
	if b.Errors() != len(lbas) {
		t.Fatalf("errors = %d, want %d (every uncached read hits the drive)", b.Errors(), len(lbas))
	}
	st := v.Stats()
	if st.Reads != before.Reads+int64(len(lbas)) {
		t.Fatalf("failed batch reads missing from Stats.Reads: %d -> %d", before.Reads, st.Reads)
	}
	if st.ReadLat.Count != before.ReadLat.Count+int64(len(lbas)) {
		t.Fatalf("failed batch reads missing from the histogram")
	}
	// The volume still serves the blocks once the fault clears.
	disarmFaults(v)
	b, err = v.ReadBatch(b, lbas, nil)
	if err != nil {
		t.Fatal(err)
	}
	if b.Errors() != 0 {
		t.Fatalf("reads still failing after faults cleared: %d", b.Errors())
	}
}

// TestReadBatchCorruptBlob: a blob corrupted in the store fails its read at
// commit, never populates the cache with garbage, and leaves the other
// reads in the batch intact.
func TestReadBatchCorruptBlob(t *testing.T) {
	v := newVolume(t, subConfig())
	blocks := fillVolume(t, v, 8)
	// Corrupt lba 2's stored blob in place (flip a token byte, keeping the
	// container header plausible).
	fp := v.lbaMap[2]
	ref := v.chunks[fp]
	blob := v.blobs[ref.loc]
	blob[len(blob)-1] ^= 0xFF
	lbas := []int64{0, 2, 1, 2}
	b, err := v.ReadBatch(nil, lbas, nil)
	if err != nil {
		t.Fatal(err)
	}
	if b.Err(1) == nil || b.Err(3) == nil {
		t.Fatal("corrupt blob must fail both reads that need it")
	}
	if b.Err(0) != nil || b.Err(2) != nil {
		t.Fatalf("healthy reads failed: %v / %v", b.Err(0), b.Err(2))
	}
	if !bytes.Equal(b.Block(0), blocks[0]) || !bytes.Equal(b.Block(2), blocks[1]) {
		t.Fatal("healthy reads corrupted by a failing neighbour")
	}
	// The reserved cache slot must have been removed: a retry decodes from
	// the store again and fails again (it must NOT hit a garbage entry).
	b, err = v.ReadBatch(b, []int64{2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if b.Err(0) == nil {
		t.Fatal("corrupt blob served from cache after a failed decode")
	}
}
