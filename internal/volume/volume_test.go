package volume

import (
	"bytes"
	"math/rand"
	"testing"

	"inlinered/internal/cpusim"
	"inlinered/internal/workload"
)

// smallConfig keeps tests fast: a modest drive and small segments so
// cleaning paths get exercised.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Blocks = 4096
	cfg.SSD.BlocksPerChannel = 128 // 8ch * 128blk * 128pg * 4K = 512 MiB
	cfg.SegmentBytes = 1 << 20
	return cfg
}

func newVolume(t *testing.T, cfg Config) *Volume {
	t.Helper()
	v, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// block materializes deterministic block content with moderate
// compressibility.
func block(id int) []byte {
	return workload.UniqueChunk(99, int32(id), 4096, 0.5)
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.BlockSize = 8 },
		func(c *Config) { c.Blocks = 0 },
		func(c *Config) { c.SegmentBytes = 1024 },
		func(c *Config) { c.CleanThreshold = 0 },
		func(c *Config) { c.CleanThreshold = 1.5 },
		func(c *Config) { c.Index.BufferEntries = 0 },
	}
	for i, mut := range bad {
		cfg := smallConfig()
		mut(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d should be rejected", i)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	v := newVolume(t, smallConfig())
	for i := 0; i < 64; i++ {
		lat, err := v.Write(int64(i), block(i))
		if err != nil {
			t.Fatal(err)
		}
		if lat <= 0 {
			t.Fatal("write must consume virtual time")
		}
	}
	for i := 0; i < 64; i++ {
		got, lat, err := v.Read(int64(i))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, block(i)) {
			t.Fatalf("lba %d: read mismatch", i)
		}
		if lat <= 0 {
			t.Fatal("read must consume virtual time")
		}
	}
}

func TestUnmappedReadsZeros(t *testing.T) {
	cfg := smallConfig()
	v := newVolume(t, cfg)
	got, lat, err := v.Read(7)
	if err != nil {
		t.Fatal(err)
	}
	// The zero block never touches media, but the staging copy into the
	// caller's buffer is charged like a cache hit's copy: pin the latency to
	// exactly the memcpy + stage-overhead cost on an idle CPU.
	cpu := cpusim.New(cfg.CPU)
	_, want := cpu.Run(0, cpu.Cost.MemcpyCycles(cfg.BlockSize)+cpu.Cost.StageOverheadCycles)
	if lat != want {
		t.Fatalf("unmapped read latency = %v, want the zero-fill copy charge %v", lat, want)
	}
	for _, b := range got {
		if b != 0 {
			t.Fatal("unmapped read must return zeros")
		}
	}
}

func TestBoundsChecking(t *testing.T) {
	v := newVolume(t, smallConfig())
	if _, err := v.Write(-1, block(0)); err == nil {
		t.Fatal("negative lba accepted")
	}
	if _, err := v.Write(v.cfg.Blocks, block(0)); err == nil {
		t.Fatal("out-of-range lba accepted")
	}
	if _, err := v.Write(0, []byte{1, 2, 3}); err == nil {
		t.Fatal("short write accepted")
	}
	if _, _, err := v.Read(-1); err == nil {
		t.Fatal("negative read accepted")
	}
	if _, err := v.Trim(1 << 40); err == nil {
		t.Fatal("out-of-range trim accepted")
	}
}

func TestDedupRefcounting(t *testing.T) {
	v := newVolume(t, smallConfig())
	data := block(1)
	for lba := int64(0); lba < 100; lba++ {
		if _, err := v.Write(lba, data); err != nil {
			t.Fatal(err)
		}
	}
	st := v.Stats()
	if st.DedupHits != 99 {
		t.Fatalf("dedup hits: %d, want 99", st.DedupHits)
	}
	// One stored blob serves 100 blocks.
	if st.StoredBytes > int64(len(data)) {
		t.Fatalf("stored %d bytes for one unique block", st.StoredBytes)
	}
	if st.LogicalBytes != 100*4096 {
		t.Fatalf("logical bytes: %d", st.LogicalBytes)
	}
	if r := st.ReductionRatio(); r < 100 {
		t.Fatalf("reduction ratio %g for 100x duplication", r)
	}
}

func TestOverwriteReleasesChunk(t *testing.T) {
	v := newVolume(t, smallConfig())
	v.Write(0, block(1))
	before := v.Stats().StoredBytes
	v.Write(0, block(2)) // overwrite with different content
	st := v.Stats()
	if st.GarbageBytes == 0 {
		t.Fatal("overwrite should orphan the old chunk")
	}
	if st.StoredBytes >= before*2 {
		t.Fatalf("old chunk still counted live: %d", st.StoredBytes)
	}
	got, _, _ := v.Read(0)
	if !bytes.Equal(got, block(2)) {
		t.Fatal("overwrite lost the new data")
	}
}

func TestOverwriteSharedChunkKeepsIt(t *testing.T) {
	v := newVolume(t, smallConfig())
	v.Write(0, block(1))
	v.Write(1, block(1)) // second reference
	v.Write(0, block(2)) // drop one reference
	if got, _, _ := v.Read(1); !bytes.Equal(got, block(1)) {
		t.Fatal("shared chunk prematurely reclaimed")
	}
	if v.Stats().GarbageBytes != 0 {
		t.Fatal("refcounted chunk should not be garbage yet")
	}
}

func TestTrim(t *testing.T) {
	v := newVolume(t, smallConfig())
	v.Write(0, block(1))
	if _, err := v.Trim(0); err != nil {
		t.Fatal(err)
	}
	st := v.Stats()
	if st.LogicalBytes != 0 || st.GarbageBytes == 0 {
		t.Fatalf("trim accounting: %+v", st)
	}
	got, _, _ := v.Read(0)
	for _, b := range got {
		if b != 0 {
			t.Fatal("trimmed block must read zeros")
		}
	}
	// Idempotent.
	if _, err := v.Trim(0); err != nil {
		t.Fatal(err)
	}
}

func TestCleaningReclaimsSpace(t *testing.T) {
	cfg := smallConfig()
	cfg.SegmentBytes = 64 << 10 // small segments, quick turnover
	v := newVolume(t, cfg)
	// Fill and overwrite to generate garbage.
	for pass := 0; pass < 4; pass++ {
		for lba := int64(0); lba < 64; lba++ {
			if _, err := v.Write(lba, block(pass*1000+int(lba))); err != nil {
				t.Fatal(err)
			}
		}
	}
	if v.Stats().GarbageBytes == 0 {
		t.Fatal("overwrites should create garbage")
	}
	cleaned, err := v.Clean()
	if err != nil {
		t.Fatal(err)
	}
	if cleaned == 0 {
		t.Fatal("cleaner found nothing despite heavy overwrite")
	}
	st := v.Stats()
	if st.CleanRuns == 0 {
		t.Fatal("no clean runs recorded")
	}
	if len(v.freeSegs) == 0 {
		t.Fatal("cleaning should free segments")
	}
	// All data still readable.
	for lba := int64(0); lba < 64; lba++ {
		got, _, err := v.Read(lba)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, block(3*1000+int(lba))) {
			t.Fatalf("lba %d corrupted by cleaning", lba)
		}
	}
}

func TestSpaceReuseUnderChurn(t *testing.T) {
	// Sustained overwrites within a bounded working set must never fill
	// the log as long as the volume is cleaned periodically.
	cfg := smallConfig()
	cfg.SSD.BlocksPerChannel = 16 // tiny drive: 64 MiB
	cfg.SegmentBytes = 256 << 10
	v := newVolume(t, cfg)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 4000; i++ {
		lba := rng.Int63n(256)
		if _, err := v.Write(lba, block(i)); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		if i%256 == 0 {
			if _, err := v.Clean(); err != nil {
				t.Fatalf("clean at %d: %v", i, err)
			}
		}
	}
	if v.Stats().MovedBytes == 0 {
		t.Fatal("churn should force the cleaner to move live data")
	}
}

func TestVolumeMatchesReferenceModel(t *testing.T) {
	// Property: under a random mix of writes, overwrites, trims, reads,
	// and cleans, the volume always agrees with a plain map[LBA][]byte.
	cfg := smallConfig()
	cfg.SegmentBytes = 128 << 10
	v := newVolume(t, cfg)
	ref := map[int64][]byte{}
	rng := rand.New(rand.NewSource(9))
	for op := 0; op < 3000; op++ {
		lba := rng.Int63n(128)
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4, 5: // write
			data := block(rng.Intn(200)) // small content pool -> lots of dedup
			if _, err := v.Write(lba, data); err != nil {
				t.Fatal(err)
			}
			ref[lba] = data
		case 6: // trim
			if _, err := v.Trim(lba); err != nil {
				t.Fatal(err)
			}
			delete(ref, lba)
		case 7: // clean
			if _, err := v.Clean(); err != nil {
				t.Fatal(err)
			}
		default: // read
			got, _, err := v.Read(lba)
			if err != nil {
				t.Fatal(err)
			}
			want, ok := ref[lba]
			if !ok {
				want = make([]byte, cfg.BlockSize)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("op %d: lba %d diverged from reference", op, lba)
			}
		}
	}
	// Final sweep.
	for lba := int64(0); lba < 128; lba++ {
		got, _, err := v.Read(lba)
		if err != nil {
			t.Fatal(err)
		}
		want, ok := ref[lba]
		if !ok {
			want = make([]byte, cfg.BlockSize)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("final: lba %d diverged", lba)
		}
	}
	// Space accounting invariants.
	st := v.Stats()
	if st.LogicalBytes != int64(len(ref))*4096 {
		t.Fatalf("logical bytes %d != %d mapped blocks", st.LogicalBytes, len(ref))
	}
	if st.StoredBytes < 0 || st.GarbageBytes < 0 {
		t.Fatalf("negative space accounting: %+v", st)
	}
}

func TestVirtualClockAdvances(t *testing.T) {
	v := newVolume(t, smallConfig())
	t0 := v.Now()
	v.Write(0, block(1))
	t1 := v.Now()
	if t1 <= t0 {
		t.Fatal("clock must advance on writes")
	}
	v.Read(0)
	if v.Now() <= t1 {
		t.Fatal("clock must advance on reads")
	}
}

func TestDuplicateWriteFasterThanUnique(t *testing.T) {
	v := newVolume(t, smallConfig())
	uniqLat, _ := v.Write(0, block(1))
	dupLat, _ := v.Write(1, block(1))
	if dupLat >= uniqLat {
		t.Fatalf("duplicate write (%v) should be faster than unique (%v): no compression, no destage", dupLat, uniqLat)
	}
}

func TestNoCompressMode(t *testing.T) {
	cfg := smallConfig()
	cfg.Compress = false
	v := newVolume(t, cfg)
	v.Write(0, block(1))
	st := v.Stats()
	if st.StoredBytes < 4096 {
		t.Fatalf("raw mode stored %d bytes for a 4K block", st.StoredBytes)
	}
	got, _, _ := v.Read(0)
	if !bytes.Equal(got, block(1)) {
		t.Fatal("raw mode round trip failed")
	}
}

func TestReadCacheHitsAndSpeed(t *testing.T) {
	cfg := smallConfig()
	cfg.CacheBytes = 1 << 20
	v := newVolume(t, cfg)
	v.Write(0, block(1))
	_, missLat, err := v.Read(0)
	if err != nil {
		t.Fatal(err)
	}
	got, hitLat, err := v.Read(0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, block(1)) {
		t.Fatal("cached read returned wrong data")
	}
	if v.Stats().CacheHits != 1 {
		t.Fatalf("cache hits: %d", v.Stats().CacheHits)
	}
	if hitLat >= missLat {
		t.Fatalf("cache hit (%v) should be faster than SSD+decode (%v)", hitLat, missLat)
	}
}

func TestReadCacheServesDuplicateBlocks(t *testing.T) {
	cfg := smallConfig()
	cfg.CacheBytes = 1 << 20
	v := newVolume(t, cfg)
	v.Write(0, block(1))
	v.Write(1, block(1)) // same content, different LBA
	v.Read(0)            // warms the cache by fingerprint
	if _, _, err := v.Read(1); err != nil {
		t.Fatal(err)
	}
	if v.Stats().CacheHits != 1 {
		t.Fatalf("content-addressed cache should serve the duplicate block: hits=%d", v.Stats().CacheHits)
	}
}

func TestReadCacheCannotGoStale(t *testing.T) {
	cfg := smallConfig()
	cfg.CacheBytes = 1 << 20
	v := newVolume(t, cfg)
	v.Write(0, block(1))
	v.Read(0) // cache block(1)
	v.Write(0, block(2))
	got, _, err := v.Read(0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, block(2)) {
		t.Fatal("overwrite must never be masked by the cache")
	}
}

func TestReadCacheEviction(t *testing.T) {
	cfg := smallConfig()
	cfg.CacheBytes = 3 * 4096 // three blocks
	v := newVolume(t, cfg)
	for i := int64(0); i < 8; i++ {
		v.Write(i, block(int(i)))
		v.Read(i)
	}
	if v.cache.len() > 3 {
		t.Fatalf("cache exceeded capacity: %d blocks", v.cache.len())
	}
	if v.cache.usedBytes > cfg.CacheBytes {
		t.Fatalf("cache bytes exceeded: %d", v.cache.usedBytes)
	}
	// Oldest entries evicted; most recent present.
	v.Read(7)
	if v.Stats().CacheHits == 0 {
		t.Fatal("most recent block should still be cached")
	}
}

func TestReadCacheDisabled(t *testing.T) {
	cfg := smallConfig()
	cfg.CacheBytes = 0
	v := newVolume(t, cfg)
	v.Write(0, block(1))
	v.Read(0)
	v.Read(0)
	if v.Stats().CacheHits != 0 {
		t.Fatal("disabled cache must not hit")
	}
}

func TestCacheCopiesOnPutAndGet(t *testing.T) {
	cfg := smallConfig()
	cfg.CacheBytes = 1 << 20
	v := newVolume(t, cfg)
	v.Write(0, block(1))
	out1, _, _ := v.Read(0)
	out1[0] ^= 0xFF // caller scribbles on its buffer
	out2, _, _ := v.Read(0)
	if !bytes.Equal(out2, block(1)) {
		t.Fatal("caller mutation leaked into the cache")
	}
}
