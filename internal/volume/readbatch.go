package volume

import (
	"fmt"
	"sync"
	"time"

	"inlinered/internal/dedup"
	"inlinered/internal/lz"
	"inlinered/internal/parallel"
)

// The batch read path splits a group of reads into the same three phases
// the write-side pipeline uses:
//
//	Plan   — sequential decision phase: for each LBA, run exactly the
//	         lookup / cache / SSD / accounting steps the serial ReadInto
//	         would, on the virtual clock, in request order. Decode work is
//	         *charged* here but recorded as jobs instead of executed.
//	Run    — parallel work phase: decode items (one per sub-block of an
//	         indexed container, one per whole blob otherwise) execute in
//	         any order, on any number of goroutines, writing only their
//	         own disjoint output ranges.
//	Commit — sequential commit phase: per-job deferred overlap copies are
//	         patched in job order, reserved cache slots are filled (or
//	         un-reserved on decode failure), and reads that hit a
//	         pending-decode cache entry copy their bytes out.
//
// Because every virtual-clock mutation happens in Plan, in request order,
// the report is bit-identical to the serial loop for any worker count.
// The only divergences from N serial ReadInto calls are corrupt-data
// corner cases, documented on ReadBatch.

// batchOp source kinds.
const (
	srcZero    = int8(iota) // unmapped: zeros synthesized at plan time
	srcCache                // cache hit on a filled entry: copied at plan time
	srcPending              // cache hit on an entry reserved earlier in this batch
	srcDecode               // cache miss: bytes arrive via this op's decode job
)

type batchOp struct {
	lba int64
	src int8
	job int32 // decode job index (srcDecode/srcPending), -1 otherwise
	lat time.Duration
	err error
}

// batchJob is one blob decode charged at plan time and executed in the
// parallel phase.
type batchJob struct {
	op        int // owning op: the job decodes into that op's buffer region
	fp        dedup.Fingerprint
	blob      []byte
	sub       bool         // indexed container: one item per sub-block
	lay       lz.SubLayout // valid when sub
	cacheSlot []byte       // reserved cache entry bytes, nil when not cached
	firstItem int
	items     int
	err       error
}

// batchItem is one unit of parallel decode work: a (job, sub-block) pair,
// or a whole-blob serial decode when part < 0.
type batchItem struct {
	job      int32
	part     int32
	deferred []lz.DeferredCopy
	err      error
}

// ReadBatch executes batches of reads through the phased plan / run /
// commit split. A ReadBatch is reusable: each Plan call resets it, and its
// buffers (including sub-block layouts and deferred-copy lists) are
// recycled across batches. Between Plan and Commit, RunItem calls for
// distinct items are safe to run concurrently; everything else must be
// called from one goroutine.
//
// Corrupt-data divergences from the serial path (healthy volumes are
// bit-identical): the decompression cycles charged at plan time stand even
// if the decode later fails, a read hitting the cache entry of a decode
// that fails is priced as a cache hit but reports the decode error, and a
// blob that decodes to the wrong size is an error here (the serial path
// returns whatever the blob holds).
type ReadBatch struct {
	v       *Volume
	buf     []byte // len(ops) × BlockSize output regions
	ops     []batchOp
	jobs    []batchJob
	items   []batchItem
	pending map[dedup.Fingerprint]int32 // fp -> job decoding it this batch

	// Cache-counter deltas over the last Plan, for batch reports.
	cacheHits, cacheMisses, cacheAdmissions, cacheGhostHits int64
}

// batchPool recycles whole ReadBatch values — backing buffer, op/job/item
// arrays, sub-block layouts, deferred-copy lists, and the pending map all
// survive from one batch's lifetime to the next, so a fresh
// NewReadBatch/Release cycle costs no steady-state allocations. Entries
// carry no volume affinity: Release scrubs every reference into the old
// volume's data.
var batchPool = sync.Pool{New: func() any { return new(ReadBatch) }}

// NewReadBatch returns an empty batch bound to v, recycled from the
// package pool when one is available. Pass it back to Release when done
// with it (serve shards do this on Array.Close) — or don't: an unreleased
// batch is ordinary garbage.
func (v *Volume) NewReadBatch() *ReadBatch {
	b := batchPool.Get().(*ReadBatch)
	b.v = v
	return b
}

// Release scrubs the batch's references into volume-owned memory (blobs,
// cache slots, token streams) and returns it to the package pool. The
// capacities that make reuse cheap — buffer, op/job/item arrays, layouts,
// deferred lists, the pending map — are kept. The batch must not be used
// after Release.
func (b *ReadBatch) Release() {
	if b == nil {
		return
	}
	jobs := b.jobs[:cap(b.jobs)]
	for i := range jobs {
		jb := &jobs[i]
		jb.blob = nil
		jb.cacheSlot = nil
		jb.err = nil
		parts := jb.lay.Parts[:cap(jb.lay.Parts)]
		for p := range parts {
			parts[p].Tokens = nil
		}
	}
	items := b.items[:cap(b.items)]
	for i := range items {
		items[i].err = nil
	}
	ops := b.ops[:cap(b.ops)]
	for i := range ops {
		ops[i].err = nil
	}
	b.ops = b.ops[:0]
	b.jobs = b.jobs[:0]
	b.items = b.items[:0]
	clear(b.pending)
	b.v = nil
	batchPool.Put(b)
}

// grow extends sl by one without clearing the recycled element's backing
// arrays (layouts, deferred lists). Callers must reset every scalar field.
func growJob(sl []batchJob) []batchJob {
	if len(sl) < cap(sl) {
		return sl[:len(sl)+1]
	}
	return append(sl, batchJob{})
}

func growItem(sl []batchItem) []batchItem {
	if len(sl) < cap(sl) {
		return sl[:len(sl)+1]
	}
	return append(sl, batchItem{})
}

// Plan is the sequential decision phase. It validates every LBA up front
// (an invalid LBA fails the whole batch before any accounting, mirroring
// the serial path's pre-validation), then charges each read on the virtual
// clock exactly as ReadInto would, recording decode work as items for the
// parallel phase. After Plan returns, Items reports how much parallel work
// there is.
func (b *ReadBatch) Plan(lbas []int64) error {
	v := b.v
	for _, lba := range lbas {
		if lba < 0 || lba >= v.cfg.Blocks {
			return fmt.Errorf("volume: lba %d outside [0,%d)", lba, v.cfg.Blocks)
		}
	}
	b.ops = b.ops[:0]
	b.jobs = b.jobs[:0]
	b.items = b.items[:0]
	clear(b.pending) // no-op on the nil map of a batch that never missed
	b.cacheHits, b.cacheMisses = 0, 0
	b.cacheAdmissions, b.cacheGhostHits = 0, 0
	h0, m0 := v.cache.hits, v.cache.misses
	a0, g0 := v.cache.admissions, v.cache.ghostHits
	bs := v.cfg.BlockSize
	if need := len(lbas) * bs; cap(b.buf) < need {
		b.buf = make([]byte, need)
	} else {
		b.buf = b.buf[:need]
	}
	cost := v.cpu.Cost

	for i, lba := range lbas {
		start := v.now
		region := b.buf[i*bs : (i+1)*bs]
		op := batchOp{lba: lba, job: -1}

		fp, ok := v.lbaMap[lba]
		if !ok {
			// Unmapped: zero-fill, charged like ReadInto's.
			zs, t := v.cpu.Run(v.now, cost.MemcpyCycles(bs)+cost.StageOverheadCycles)
			v.cpuSpan("zero-fill", zs, t)
			v.stats.Reads++
			v.now = t
			v.histR.Observe(t - start)
			if v.obs != nil {
				v.obs.SpanN(v.laneOps, "read", start, t, "lba", lba)
			}
			clear(region)
			op.src = srcZero
			op.lat = t - start
			b.ops = append(b.ops, op)
			continue
		}

		if e, hit := v.cache.getRef(fp); hit {
			ms, t := v.cpu.Run(v.now, cost.MemcpyCycles(bs)+cost.StageOverheadCycles)
			v.cpuSpan("cache-copy", ms, t)
			v.stats.Reads++
			v.now = t
			v.histR.Observe(t - start)
			if v.obs != nil {
				v.obs.SpanN(v.laneOps, "read", start, t, "lba", lba)
			}
			op.lat = t - start
			if j, pend := b.pending[fp]; pend {
				// The entry was reserved by an earlier read in this batch;
				// its bytes exist only after that job decodes. Copy at
				// commit.
				op.src = srcPending
				op.job = j
			} else {
				op.src = srcCache
				copy(region, e.data)
			}
			b.ops = append(b.ops, op)
			continue
		}

		// Cache miss: SSD pages, then a decode charged now and executed in
		// the parallel phase.
		ref := v.chunks[fp]
		blob := v.blobs[ref.loc]
		pageSize := int64(v.drive.PageSize)
		first := ref.loc / pageSize
		last := (ref.loc + int64(ref.size) - 1) / pageSize
		t, err := v.readDrive(v.now, first, int(last-first+1))
		if err != nil {
			op.err = fmt.Errorf("volume: lba %d: %w", lba, err)
			op.lat = v.failRead(start, t, lba)
			op.src = srcDecode
			b.ops = append(b.ops, op)
			continue
		}
		ds, t := v.cpu.Run(t, cost.DecompressCycles(bs)+cost.StageOverheadCycles)
		v.cpuSpan("decompress", ds, t)
		v.stats.Reads++
		v.now = t
		v.histR.Observe(t - start)
		if v.obs != nil {
			v.obs.SpanN(v.laneOps, "read", start, t, "lba", lba)
		}
		op.lat = t - start
		op.src = srcDecode

		j := len(b.jobs)
		b.jobs = growJob(b.jobs)
		jb := &b.jobs[j]
		jb.op = i
		jb.fp = fp
		jb.blob = blob
		jb.sub = false
		jb.err = nil
		jb.firstItem = len(b.items)
		jb.items = 0
		// Reserve the cache slot at decision time so admission and eviction
		// state advance exactly as the serial path's put would. Only a
		// reserved slot can produce a pending hit, so the map (allocated
		// lazily, on the first cached miss ever) stays empty — and untouched
		// — on cache-disabled volumes.
		jb.cacheSlot = v.cache.reserve(fp, bs)
		if jb.cacheSlot != nil {
			if b.pending == nil {
				b.pending = make(map[dedup.Fingerprint]int32, 64)
			}
			b.pending[fp] = int32(j)
		}
		op.job = int32(j)
		b.ops = append(b.ops, op)

		// Boundary resolution (pass 1 of the two-pass decode): table-only,
		// cheap, and sequential — it decides how many parallel items the
		// blob contributes.
		indexed, rerr := lz.ResolveSubBlocks(&jb.lay, blob)
		switch {
		case rerr != nil:
			jb.err = rerr // corrupt table: surfaces at commit
		case indexed && jb.lay.SrcLen == bs:
			jb.sub = true
			jb.items = len(jb.lay.Parts)
			for p := 0; p < jb.items; p++ {
				b.items = growItem(b.items)
				it := &b.items[len(b.items)-1]
				it.job = int32(j)
				it.part = int32(p)
				it.err = nil
			}
		default:
			// Raw, legacy, or wrong-size container: one whole-blob item on
			// the retained serial decoder.
			jb.items = 1
			b.items = growItem(b.items)
			it := &b.items[len(b.items)-1]
			it.job = int32(j)
			it.part = -1
			it.err = nil
		}
	}
	b.cacheHits = v.cache.hits - h0
	b.cacheMisses = v.cache.misses - m0
	b.cacheAdmissions = v.cache.admissions - a0
	b.cacheGhostHits = v.cache.ghostHits - g0
	return nil
}

// CacheHits returns how many of the batch's reads were served from cache
// (including pending hits on entries reserved earlier in the batch).
func (b *ReadBatch) CacheHits() int64 { return b.cacheHits }

// CacheMisses returns how many of the batch's reads missed the cache.
// Unmapped reads look nothing up, so hits+misses can be less than Len.
func (b *ReadBatch) CacheMisses() int64 { return b.cacheMisses }

// CacheAdmissions returns how many entries the batch admitted to (or
// promoted into) the cache's protected segment.
func (b *ReadBatch) CacheAdmissions() int64 { return b.cacheAdmissions }

// CacheGhostHits returns how many of the batch's inserts re-referenced a
// recently evicted fingerprint.
func (b *ReadBatch) CacheGhostHits() int64 { return b.cacheGhostHits }

// Items returns the number of parallel decode items Plan produced.
func (b *ReadBatch) Items() int { return len(b.items) }

// RunItem executes decode item i. Distinct items may run concurrently:
// each writes only its own output range and its own item record.
func (b *ReadBatch) RunItem(i int) {
	it := &b.items[i]
	jb := &b.jobs[it.job]
	if jb.err != nil {
		return // boundary resolution already failed at plan time
	}
	bs := b.v.cfg.BlockSize
	region := b.buf[jb.op*bs : (jb.op+1)*bs]
	if it.part >= 0 {
		if it.deferred == nil {
			// Presize cold slots: deferred lists are short (overlap history
			// plus hole chains), so one up-front block replaces append's
			// doubling walk on the first batch through this slot.
			it.deferred = make([]lz.DeferredCopy, 0, 16)
		}
		it.deferred = it.deferred[:0]
		it.deferred, _, it.err = lz.DecodeSubPart(region, &jb.lay, int(it.part), it.deferred)
		return
	}
	// A recycled item slot may hold deferred copies from an earlier batch's
	// sub-part decode; Commit patches deferred unconditionally, so a stale
	// list here would corrupt the freshly decoded block.
	it.deferred = it.deferred[:0]
	// Three-index slice: region's capacity must not leak into the next
	// op's region if a corrupt blob over-decodes (append would reallocate
	// instead, and the size check below rejects it).
	out, err := lz.Decompress(region[0:0:bs], jb.blob)
	if err != nil {
		it.err = err
		return
	}
	if len(out) != bs {
		it.err = fmt.Errorf("volume: blob decoded to %d bytes, block size is %d", len(out), bs)
		return
	}
	if &out[0] != &region[0] {
		copy(region, out)
	}
}

// Commit is the sequential commit phase: deferred overlap copies are
// patched per job in item order, reserved cache entries are filled (or
// removed when their decode failed), and pending-hit reads copy out of the
// decoding op's region. After Commit, Block/Err/Latency are valid.
func (b *ReadBatch) Commit() {
	v := b.v
	bs := v.cfg.BlockSize
	for j := range b.jobs {
		jb := &b.jobs[j]
		region := b.buf[jb.op*bs : (jb.op+1)*bs]
		if jb.err == nil {
			for k := jb.firstItem; k < jb.firstItem+jb.items; k++ {
				it := &b.items[k]
				if it.err != nil {
					jb.err = it.err
					break
				}
				// Per-part deferred lists patched in part order are exactly
				// the concatenated global list.
				lz.ResolveDeferred(region, it.deferred)
			}
		}
		if jb.err != nil {
			op := &b.ops[jb.op]
			op.err = fmt.Errorf("volume: lba %d: %w", op.lba, jb.err)
			// Un-reserve: a garbage block must never serve later reads.
			v.cache.remove(jb.fp)
		} else if jb.cacheSlot != nil {
			copy(jb.cacheSlot, region)
		}
	}
	for i := range b.ops {
		op := &b.ops[i]
		if op.src != srcPending {
			continue
		}
		jb := &b.jobs[op.job]
		if jb.err != nil {
			op.err = fmt.Errorf("volume: lba %d: %w", op.lba, jb.err)
			continue
		}
		copy(b.buf[i*bs:(i+1)*bs], b.buf[jb.op*bs:(jb.op+1)*bs])
	}
}

// Len returns the number of reads in the committed batch.
func (b *ReadBatch) Len() int { return len(b.ops) }

// Block returns read i's bytes (zeros when unmapped, garbage when Err(i)
// is non-nil). The slice aliases the batch's buffer and is valid until the
// next Plan.
func (b *ReadBatch) Block(i int) []byte {
	bs := b.v.cfg.BlockSize
	return b.buf[i*bs : (i+1)*bs]
}

// Latency returns read i's virtual latency.
func (b *ReadBatch) Latency(i int) time.Duration { return b.ops[i].lat }

// Err returns read i's error, nil on success.
func (b *ReadBatch) Err(i int) error { return b.ops[i].err }

// Errors counts failed reads in the batch.
func (b *ReadBatch) Errors() int {
	n := 0
	for i := range b.ops {
		if b.ops[i].err != nil {
			n++
		}
	}
	return n
}

// DecodedBlobs returns how many blob decodes the batch executed (cache
// hits, pending hits, and unmapped reads decode nothing).
func (b *ReadBatch) DecodedBlobs() int { return len(b.jobs) }

// DecodedParts returns how many parallel sub-block decode items ran
// (whole-blob fallback decodes count one each).
func (b *ReadBatch) DecodedParts() int { return len(b.items) }

// ReadBatch plans, decodes, and commits lbas in one call. The parallel
// phase fans out over pool when it is non-nil (a nil pool decodes inline,
// the determinism baseline). b may be nil to allocate a fresh batch;
// passing a previous batch back in recycles its buffers. The returned
// batch holds the per-read results.
//
// Virtual-time accounting is bit-identical to calling ReadInto per LBA in
// order, for any pool size — the clock only advances in Plan.
func (v *Volume) ReadBatch(b *ReadBatch, lbas []int64, pool *parallel.Pool) (*ReadBatch, error) {
	if b == nil {
		b = v.NewReadBatch()
	}
	if err := b.Plan(lbas); err != nil {
		return b, err
	}
	if pool != nil {
		pool.Map(b.Items(), b.RunItem)
	} else {
		for i := 0; i < b.Items(); i++ {
			b.RunItem(i)
		}
	}
	b.Commit()
	return b, nil
}
