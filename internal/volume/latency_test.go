package volume

import (
	"bytes"
	"testing"

	"inlinered/internal/obs"
	"inlinered/internal/sim"
)

func checkSummary(t *testing.T, name string, s sim.LatencySummary, wantCount int64) {
	t.Helper()
	if s.Count != wantCount {
		t.Errorf("%s: count = %d, want %d", name, s.Count, wantCount)
	}
	if s.Min > s.Mean || s.Mean > s.Max {
		t.Errorf("%s: min/mean/max not ordered: %+v", name, s)
	}
	if !(s.Min <= s.P50 && s.P50 <= s.P95 && s.P95 <= s.P99 && s.P99 <= s.Max) {
		t.Errorf("%s: quantiles not monotone: %+v", name, s)
	}
}

// TestStatsLatencySummaries checks the always-on per-op histograms: counts
// track the operations issued, summaries are ordered, and trims charge real
// virtual time.
func TestStatsLatencySummaries(t *testing.T) {
	cfg := smallConfig()
	cfg.Index.BufferEntries = 1 // every insert flushes, so journal latency is observed
	v := newVolume(t, cfg)
	const n = 64
	for i := 0; i < n; i++ {
		if _, err := v.Write(int64(i), block(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		if _, _, err := v.Read(int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8; i++ {
		lat, err := v.Trim(int64(i))
		if err != nil {
			t.Fatal(err)
		}
		if lat <= 0 {
			t.Errorf("trim %d: latency %v, want > 0", i, lat)
		}
	}
	st := v.Stats()
	checkSummary(t, "write", st.WriteLat, n)
	checkSummary(t, "read", st.ReadLat, n)
	checkSummary(t, "trim", st.TrimLat, 8)
	if st.WriteLat.Max <= 0 || st.ReadLat.Max <= 0 || st.TrimLat.Max <= 0 {
		t.Errorf("zero max latency: w=%+v r=%+v t=%+v", st.WriteLat, st.ReadLat, st.TrimLat)
	}
	if st.JournalFlushLat.Count == 0 {
		t.Errorf("no journal flushes observed: %+v", st.JournalFlushLat)
	}
}

// TestVolumeTraceDeterministic drives two identical volumes, one op mix
// each, and requires bit-identical trace exports.
func TestVolumeTraceDeterministic(t *testing.T) {
	runOnce := func() []byte {
		cfg := smallConfig()
		rec := obs.NewRecorder()
		cfg.Obs = rec
		v := newVolume(t, cfg)
		for i := 0; i < 32; i++ {
			if _, err := v.Write(int64(i), block(i%8)); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 16; i++ {
			if _, _, err := v.Read(int64(i)); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := v.Trim(3); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := rec.WriteTrace(&buf); err != nil {
			t.Fatal(err)
		}
		if rec.Spans() == 0 {
			t.Fatal("no spans recorded")
		}
		return buf.Bytes()
	}
	if !bytes.Equal(runOnce(), runOnce()) {
		t.Error("identical volume runs produced different trace bytes")
	}
}
