package volume

import (
	"encoding/binary"

	"inlinered/internal/dedup"
	"inlinered/internal/metrics"
)

// blockCache is a content-addressed, scan-resistant read cache over
// decompressed chunks. Keying by fingerprint rather than LBA has two nice
// properties in a deduplicating array: a cached chunk serves reads of
// *every* block that maps to it, and entries can never go stale — an
// overwrite changes the block's fingerprint mapping, it never mutates
// chunk content.
//
// Admission is a deterministic 2Q/TinyLFU hybrid rather than a pure LRU,
// because the cache's worst enemy is the VDI boot storm: a one-touch
// cyclic scan over a working set larger than the cache defeats LRU
// completely (every block is evicted strictly before its next use — the
// second storm pass hits 0%). The policy splits capacity into
//
//	probation — a small FIFO (about a quarter of the budget) that absorbs
//	            first-touch entries, so a scan churns only this segment;
//	protected — an LRU holding entries that proved reuse. New entries are
//	            admitted here only when the ghost list or the frequency
//	            sketch vouches for them, and once the segment is full a
//	            candidate must be strictly more frequent than the LRU
//	            victim to displace it — equally-good candidates are turned
//	            away, so a uniform scan cannot rotate the hot set.
//
// Two cheap structures provide the evidence: a ghost list remembers the
// fingerprints of recently evicted entries (a re-reference after eviction
// is the classic 2Q promotion signal), and a 4-bit count-min sketch
// estimates each fingerprint's recent access frequency, halved
// periodically so stale popularity ages out. Everything is a pure function
// of the access sequence — no randomness, no host time — so cache state
// (and therefore every virtual-time report) is bit-identical for any
// Parallelism, client count, or GOMAXPROCS.
type blockCache struct {
	capBytes  int64
	usedBytes int64

	// protBudget caps the protected segment's bytes; the probation FIFO
	// uses whatever the protected segment does not.
	protBudget int64
	protBytes  int64
	probBytes  int64

	// Intrusive doubly-linked lists (front = most recent / newest) plus a
	// free list of recycled nodes, so steady-state cache maintenance
	// allocates only entry payloads.
	prot cacheList // protected LRU
	prob cacheList // probation FIFO
	byFP map[dedup.Fingerprint]*cacheEntry
	free *cacheEntry

	ghost  ghostList
	sketch freqSketch

	hits, misses, admissions, ghostHits, evictions int64
}

// segment tags for cacheEntry.where.
const (
	inProbation = int8(iota)
	inProtected
)

type cacheEntry struct {
	fp         dedup.Fingerprint
	data       []byte
	where      int8
	prev, next *cacheEntry
}

// cacheList is an intrusive doubly-linked list over cacheEntry.
type cacheList struct {
	head, tail *cacheEntry
	n          int
}

func (l *cacheList) pushFront(e *cacheEntry) {
	e.prev = nil
	e.next = l.head
	if l.head != nil {
		l.head.prev = e
	}
	l.head = e
	if l.tail == nil {
		l.tail = e
	}
	l.n++
}

func (l *cacheList) remove(e *cacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		l.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		l.tail = e.prev
	}
	e.prev, e.next = nil, nil
	l.n--
}

func (l *cacheList) moveToFront(e *cacheEntry) {
	if l.head == e {
		return
	}
	l.remove(e)
	l.pushFront(e)
}

// ghostList remembers the fingerprints of recently evicted entries in a
// bounded FIFO ring with O(1) membership. It holds no payload — just the
// fact that a fingerprint was here recently, the 2Q re-admission signal.
// Sized lazily on first insert (capacity is a function of the entry size,
// which the cache does not know until then), so construction allocates
// nothing for disabled caches.
type ghostList struct {
	ring []dedup.Fingerprint
	in   map[dedup.Fingerprint]struct{}
	head int // next overwrite position
}

func (g *ghostList) init(entries int) {
	if g.ring != nil {
		return
	}
	if entries < 16 {
		entries = 16
	}
	if entries > 1<<16 {
		entries = 1 << 16
	}
	g.ring = make([]dedup.Fingerprint, 0, entries)
	g.in = make(map[dedup.Fingerprint]struct{}, entries)
}

func (g *ghostList) contains(fp dedup.Fingerprint) bool {
	if g.in == nil {
		return false
	}
	_, ok := g.in[fp]
	return ok
}

func (g *ghostList) removeIfPresent(fp dedup.Fingerprint) {
	// The ring slot keeps the stale fingerprint until overwritten; only the
	// membership map decides hits, and a stale slot deletes a key that is
	// simply absent — harmless and still O(1).
	if g.in != nil {
		delete(g.in, fp)
	}
}

func (g *ghostList) push(fp dedup.Fingerprint) {
	if g.ring == nil {
		return
	}
	if _, ok := g.in[fp]; ok {
		return
	}
	if len(g.ring) < cap(g.ring) {
		g.ring = append(g.ring, fp)
	} else {
		delete(g.in, g.ring[g.head])
		g.ring[g.head] = fp
		g.head++
		if g.head == len(g.ring) {
			g.head = 0
		}
	}
	g.in[fp] = struct{}{}
}

// freqSketch is a 4-bit two-row count-min sketch over fingerprints. It
// estimates how often a fingerprint was touched recently; every
// sampleLimit increments, all counters halve, so the estimate is a
// recency-weighted frequency rather than an all-time count (the TinyLFU
// aging rule). Counters saturate at 15.
type freqSketch struct {
	nibbles     []uint8 // two 4-bit counters per byte, rows interleaved
	mask        uint32  // counters per row - 1 (power of two)
	samples     int
	sampleLimit int
}

func (s *freqSketch) init(counters int) {
	if s.nibbles != nil {
		return
	}
	n := 1024
	for n < counters {
		n <<= 1
	}
	if n > 1<<20 {
		n = 1 << 20
	}
	s.nibbles = make([]uint8, n) // n counters per row × 2 rows, 2 per byte
	s.mask = uint32(n - 1)
	s.sampleLimit = n * 8
}

// slots derives the two row positions from the fingerprint. Fingerprints
// are SHA-1 sums, so independent words of the digest are as good as two
// hash functions.
func (s *freqSketch) slots(fp dedup.Fingerprint) (uint32, uint32) {
	return uint32(binary.LittleEndian.Uint64(fp[0:8])) & s.mask,
		uint32(binary.LittleEndian.Uint64(fp[8:16])) & s.mask
}

// Counter addressing: row r, slot i lives in nibbles[i] (row 0 = low
// nibble, row 1 = high nibble). Packing both rows into one byte array
// keeps the sketch at one byte per slot.
func (s *freqSketch) get(row int, slot uint32) uint8 {
	b := s.nibbles[slot]
	if row == 0 {
		return b & 0x0F
	}
	return b >> 4
}

func (s *freqSketch) bump(row int, slot uint32) {
	b := s.nibbles[slot]
	if row == 0 {
		if b&0x0F < 15 {
			s.nibbles[slot] = b + 1
		}
	} else {
		if b>>4 < 15 {
			s.nibbles[slot] = b + 0x10
		}
	}
}

func (s *freqSketch) increment(fp dedup.Fingerprint) {
	if s.nibbles == nil {
		return
	}
	i, j := s.slots(fp)
	s.bump(0, i)
	s.bump(1, j)
	s.samples++
	if s.samples >= s.sampleLimit {
		s.age()
	}
}

func (s *freqSketch) estimate(fp dedup.Fingerprint) uint8 {
	if s.nibbles == nil {
		return 0
	}
	i, j := s.slots(fp)
	a, b := s.get(0, i), s.get(1, j)
	if a < b {
		return a
	}
	return b
}

// age halves every counter — the deterministic TinyLFU reset that turns
// the sketch into a sliding-window frequency estimate.
func (s *freqSketch) age() {
	for i, b := range s.nibbles {
		s.nibbles[i] = (b >> 1) & 0x77 // halve both nibbles in place
	}
	s.samples = 0
}

// admitEstimateMin is the sketch estimate at which a first-touch entry
// qualifies for the protected segment: 2 means "seen at least once before
// this access" (the access itself already incremented the sketch).
const admitEstimateMin = 2

// newBlockCache returns a cache bounded to capBytes of payload (zero or
// negative capacity disables caching).
func newBlockCache(capBytes int64) *blockCache {
	c := &blockCache{
		capBytes:   capBytes,
		protBudget: capBytes - capBytes/4,
		byFP:       make(map[dedup.Fingerprint]*cacheEntry),
	}
	return c
}

// lazyInit sizes the ghost list and sketch once the entry size is known.
func (c *blockCache) lazyInit(n int) {
	if c.ghost.ring == nil {
		entries := int(c.capBytes / int64(n))
		c.ghost.init(entries * 4)
		c.sketch.init(entries * 8)
	}
}

// get returns the cached block and promotes it, or nil on a miss.
func (c *blockCache) get(fp dedup.Fingerprint) []byte {
	e, ok := c.getRef(fp)
	if !ok {
		return nil
	}
	return e.data
}

// getRef is get returning the entry itself: the batch read path needs the
// hit/promote bookkeeping of a lookup while sourcing the bytes elsewhere
// (an entry reserved earlier in the same batch holds its data only at
// commit). Same counters, sketch update, and segment movement as get.
func (c *blockCache) getRef(fp dedup.Fingerprint) (*cacheEntry, bool) {
	if c.capBytes <= 0 {
		return nil, false
	}
	c.sketch.increment(fp)
	e, ok := c.byFP[fp]
	if !ok {
		c.misses++
		if metrics.Enabled() {
			metrics.CacheMissesM.Add(1)
		}
		return nil, false
	}
	c.hits++
	if metrics.Enabled() {
		metrics.CacheHitsM.Add(1)
	}
	if e.where == inProtected {
		c.prot.moveToFront(e)
	} else {
		// A hit while still on probation is proof of reuse: promote to the
		// protected segment (2Q's A1in → Am move), demoting from the
		// protected tail if the promotion pushes it over budget.
		c.prob.remove(e)
		c.probBytes -= int64(len(e.data))
		e.where = inProtected
		c.prot.pushFront(e)
		c.protBytes += int64(len(e.data))
		c.admissions++
		if metrics.Enabled() {
			metrics.CacheAdmissionsM.Add(1)
		}
		c.rebalance()
	}
	return e, true
}

// rebalance demotes protected-tail entries into probation until the
// protected segment is back under its budget. Demotion moves bytes
// between segments; total usage is unchanged.
func (c *blockCache) rebalance() {
	for c.protBytes > c.protBudget && c.prot.tail != nil {
		e := c.prot.tail
		c.prot.remove(e)
		c.protBytes -= int64(len(e.data))
		e.where = inProbation
		c.prob.pushFront(e)
		c.probBytes += int64(len(e.data))
	}
}

// evictOne removes the best victim to free space: the probation tail when
// probation holds anything (first-touch entries go first — the scan
// resistance), else the protected tail. The victim's fingerprint goes to
// the ghost list so a re-reference can earn direct re-admission.
func (c *blockCache) evictOne() {
	e := c.prob.tail
	if e != nil {
		c.prob.remove(e)
		c.probBytes -= int64(len(e.data))
	} else {
		e = c.prot.tail
		if e == nil {
			return
		}
		c.prot.remove(e)
		c.protBytes -= int64(len(e.data))
	}
	delete(c.byFP, e.fp)
	c.usedBytes -= int64(len(e.data))
	c.ghost.push(e.fp)
	c.evictions++
	if metrics.Enabled() {
		metrics.CacheEvictionsM.Add(1)
	}
	c.recycle(e)
}

// recycle returns a node to the free list. The payload is dropped, not
// reused: the batch read path may still hold the old data slice as a
// pending fill target (reserve's contract — filling an orphan is
// harmless), so handing that buffer to a new fingerprint would let a
// stale fill poison fresh content.
func (c *blockCache) recycle(e *cacheEntry) {
	e.data = nil
	e.prev = nil
	e.next = c.free
	c.free = e
}

func (c *blockCache) node() *cacheEntry {
	if e := c.free; e != nil {
		c.free = e.next
		e.next = nil
		return e
	}
	return &cacheEntry{}
}

// insert places a new n-byte entry for fp and returns it (nil when the
// cache is off or n oversized). Shared by put and reserve, so the serial
// read path and the batch plan phase drive identical admission decisions.
func (c *blockCache) insert(fp dedup.Fingerprint, n int) *cacheEntry {
	if c.capBytes <= 0 || int64(n) > c.capBytes {
		return nil
	}
	c.lazyInit(n)

	// Admission evidence, gathered before any eviction disturbs it.
	ghostHit := c.ghost.contains(fp)
	qualified := ghostHit || c.sketch.estimate(fp) >= admitEstimateMin
	if ghostHit {
		c.ghostHits++
		if metrics.Enabled() {
			metrics.CacheGhostHitsM.Add(1)
		}
		c.ghost.removeIfPresent(fp)
	}

	toProtected := false
	if qualified {
		if c.protBytes+int64(n) <= c.protBudget {
			toProtected = true
		} else if v := c.prot.tail; v != nil &&
			c.sketch.estimate(fp) > c.sketch.estimate(v.fp) {
			// TinyLFU victim comparison: displace the protected tail only
			// for a strictly more frequent candidate. Ties lose, so a
			// uniform scan (every block equally frequent) cannot rotate
			// the protected set once it is full — that pinning is what
			// makes the second storm pass hit.
			toProtected = true
		}
	}

	for c.usedBytes+int64(n) > c.capBytes {
		c.evictOne()
	}

	e := c.node()
	e.fp = fp
	e.data = make([]byte, n)
	if toProtected {
		e.where = inProtected
		c.prot.pushFront(e)
		c.protBytes += int64(n)
		c.admissions++
		if metrics.Enabled() {
			metrics.CacheAdmissionsM.Add(1)
		}
		c.rebalance()
	} else {
		e.where = inProbation
		c.prob.pushFront(e)
		c.probBytes += int64(n)
	}
	c.byFP[fp] = e
	c.usedBytes += int64(n)
	return e
}

// reserve inserts an n-byte entry whose bytes the caller fills later and
// returns its data slice (nil when the cache is off or n oversized). The
// batch read path reserves at decision time so admission, eviction, and
// segment state advance exactly as the serial path's put would, even
// though the decoded bytes only land at commit. The returned slice stays
// valid if the entry is evicted before the fill — filling an orphan is
// harmless (eviction drops the buffer, it never reassigns it).
func (c *blockCache) reserve(fp dedup.Fingerprint, n int) []byte {
	if c.capBytes <= 0 || int64(n) > c.capBytes {
		return nil
	}
	if e, ok := c.byFP[fp]; ok {
		c.touch(e)
		return e.data
	}
	e := c.insert(fp, n)
	if e == nil {
		return nil
	}
	return e.data
}

// touch refreshes an already-present entry on a re-insert (put/reserve of
// a resident fingerprint): protected entries move to the LRU front;
// probation entries stay put — promotion evidence comes only from getRef
// hits, and put/reserve always follow a getRef that already saw the entry.
func (c *blockCache) touch(e *cacheEntry) {
	if e.where == inProtected {
		c.prot.moveToFront(e)
	}
}

// remove drops fp's entry if present (a failed decode un-reserves its
// slot so a garbage block can never serve later reads). Deliberately no
// ghost-list push: the entry was never valid, so its fingerprint has
// earned no re-admission credit.
func (c *blockCache) remove(fp dedup.Fingerprint) {
	e, ok := c.byFP[fp]
	if !ok {
		return
	}
	if e.where == inProtected {
		c.prot.remove(e)
		c.protBytes -= int64(len(e.data))
	} else {
		c.prob.remove(e)
		c.probBytes -= int64(len(e.data))
	}
	delete(c.byFP, e.fp)
	c.usedBytes -= int64(len(e.data))
	c.recycle(e)
}

// put inserts a block through the admission policy, evicting to stay
// within capacity. Oversized blocks are simply not cached. The cache owns
// a private copy: the caller keeps (and may mutate) its slice.
func (c *blockCache) put(fp dedup.Fingerprint, data []byte) {
	if c.capBytes <= 0 || int64(len(data)) > c.capBytes {
		return
	}
	if e, ok := c.byFP[fp]; ok {
		c.touch(e)
		return
	}
	if e := c.insert(fp, len(data)); e != nil {
		copy(e.data, data)
	}
}

// len returns the number of cached blocks.
func (c *blockCache) len() int { return c.prot.n + c.prob.n }
