package volume

import (
	"container/list"

	"inlinered/internal/dedup"
)

// blockCache is a content-addressed LRU read cache over decompressed
// chunks. Keying by fingerprint rather than LBA has two nice properties in
// a deduplicating array: a cached chunk serves reads of *every* block that
// maps to it, and entries can never go stale — an overwrite changes the
// block's fingerprint mapping, it never mutates chunk content.
type blockCache struct {
	capBytes  int64
	usedBytes int64
	lru       *list.List // front = most recent; values are *cacheEntry
	byFP      map[dedup.Fingerprint]*list.Element

	hits, misses int64
}

type cacheEntry struct {
	fp   dedup.Fingerprint
	data []byte
}

// newBlockCache returns a cache bounded to capBytes of payload (nil-safe
// zero capacity disables caching).
func newBlockCache(capBytes int64) *blockCache {
	return &blockCache{
		capBytes: capBytes,
		lru:      list.New(),
		byFP:     make(map[dedup.Fingerprint]*list.Element),
	}
}

// get returns the cached block and promotes it, or nil on a miss.
func (c *blockCache) get(fp dedup.Fingerprint) []byte {
	e, ok := c.getRef(fp)
	if !ok {
		return nil
	}
	return e.data
}

// getRef is get returning the entry itself: the batch read path needs the
// hit/promote bookkeeping of a lookup while sourcing the bytes elsewhere
// (an entry reserved earlier in the same batch holds its data only at
// commit). Same counters and LRU movement as get.
func (c *blockCache) getRef(fp dedup.Fingerprint) (*cacheEntry, bool) {
	if c.capBytes <= 0 {
		return nil, false
	}
	el, ok := c.byFP[fp]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.lru.MoveToFront(el)
	return el.Value.(*cacheEntry), true
}

// reserve inserts an n-byte entry whose bytes the caller fills later and
// returns its data slice (nil when the cache is off or n oversized). The
// batch read path reserves at decision time so eviction and LRU state
// advance exactly as the serial path's put would, even though the decoded
// bytes only land at commit. The returned slice stays valid if the entry
// is evicted before the fill — filling an orphan is harmless.
func (c *blockCache) reserve(fp dedup.Fingerprint, n int) []byte {
	if c.capBytes <= 0 || int64(n) > c.capBytes {
		return nil
	}
	if el, ok := c.byFP[fp]; ok {
		c.lru.MoveToFront(el)
		return el.Value.(*cacheEntry).data
	}
	for c.usedBytes+int64(n) > c.capBytes {
		tail := c.lru.Back()
		if tail == nil {
			break
		}
		e := tail.Value.(*cacheEntry)
		c.lru.Remove(tail)
		delete(c.byFP, e.fp)
		c.usedBytes -= int64(len(e.data))
	}
	data := make([]byte, n)
	c.byFP[fp] = c.lru.PushFront(&cacheEntry{fp: fp, data: data})
	c.usedBytes += int64(n)
	return data
}

// remove drops fp's entry if present (a failed decode un-reserves its
// slot so a garbage block can never serve later reads).
func (c *blockCache) remove(fp dedup.Fingerprint) {
	el, ok := c.byFP[fp]
	if !ok {
		return
	}
	e := el.Value.(*cacheEntry)
	c.lru.Remove(el)
	delete(c.byFP, e.fp)
	c.usedBytes -= int64(len(e.data))
}

// put inserts a block, evicting from the LRU tail to stay within capacity.
// Oversized blocks are simply not cached.
func (c *blockCache) put(fp dedup.Fingerprint, data []byte) {
	if c.capBytes <= 0 || int64(len(data)) > c.capBytes {
		return
	}
	if el, ok := c.byFP[fp]; ok {
		c.lru.MoveToFront(el)
		return
	}
	for c.usedBytes+int64(len(data)) > c.capBytes {
		tail := c.lru.Back()
		if tail == nil {
			break
		}
		e := tail.Value.(*cacheEntry)
		c.lru.Remove(tail)
		delete(c.byFP, e.fp)
		c.usedBytes -= int64(len(e.data))
	}
	// Own a private copy: the caller keeps (and may mutate) its slice.
	owned := make([]byte, len(data))
	copy(owned, data)
	c.byFP[fp] = c.lru.PushFront(&cacheEntry{fp: fp, data: owned})
	c.usedBytes += int64(len(data))
}

// len returns the number of cached blocks.
func (c *blockCache) len() int { return c.lru.Len() }
