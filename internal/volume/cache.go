package volume

import (
	"container/list"

	"inlinered/internal/dedup"
)

// blockCache is a content-addressed LRU read cache over decompressed
// chunks. Keying by fingerprint rather than LBA has two nice properties in
// a deduplicating array: a cached chunk serves reads of *every* block that
// maps to it, and entries can never go stale — an overwrite changes the
// block's fingerprint mapping, it never mutates chunk content.
type blockCache struct {
	capBytes  int64
	usedBytes int64
	lru       *list.List // front = most recent; values are *cacheEntry
	byFP      map[dedup.Fingerprint]*list.Element

	hits, misses int64
}

type cacheEntry struct {
	fp   dedup.Fingerprint
	data []byte
}

// newBlockCache returns a cache bounded to capBytes of payload (nil-safe
// zero capacity disables caching).
func newBlockCache(capBytes int64) *blockCache {
	return &blockCache{
		capBytes: capBytes,
		lru:      list.New(),
		byFP:     make(map[dedup.Fingerprint]*list.Element),
	}
}

// get returns the cached block and promotes it, or nil on a miss.
func (c *blockCache) get(fp dedup.Fingerprint) []byte {
	if c.capBytes <= 0 {
		return nil
	}
	el, ok := c.byFP[fp]
	if !ok {
		c.misses++
		return nil
	}
	c.hits++
	c.lru.MoveToFront(el)
	return el.Value.(*cacheEntry).data
}

// put inserts a block, evicting from the LRU tail to stay within capacity.
// Oversized blocks are simply not cached.
func (c *blockCache) put(fp dedup.Fingerprint, data []byte) {
	if c.capBytes <= 0 || int64(len(data)) > c.capBytes {
		return
	}
	if el, ok := c.byFP[fp]; ok {
		c.lru.MoveToFront(el)
		return
	}
	for c.usedBytes+int64(len(data)) > c.capBytes {
		tail := c.lru.Back()
		if tail == nil {
			break
		}
		e := tail.Value.(*cacheEntry)
		c.lru.Remove(tail)
		delete(c.byFP, e.fp)
		c.usedBytes -= int64(len(e.data))
	}
	// Own a private copy: the caller keeps (and may mutate) its slice.
	owned := make([]byte, len(data))
	copy(owned, data)
	c.byFP[fp] = c.lru.PushFront(&cacheEntry{fp: fp, data: owned})
	c.usedBytes += int64(len(data))
}

// len returns the number of cached blocks.
func (c *blockCache) len() int { return c.lru.Len() }
