package volume

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"inlinered/internal/dedup"
	"inlinered/internal/fault"
)

// faultConfig is smallConfig with the read cache off (so reads exercise the
// SSD path) and a small bin index (so inserts actually flush to the journal).
func faultConfig() Config {
	cfg := smallConfig()
	cfg.CacheBytes = 0
	cfg.Index.BinBits = 4
	cfg.Index.BufferEntries = 4
	return cfg
}

// --- satellite error paths (no injection) ---

func TestTrimNeverWrittenLBA(t *testing.T) {
	v := newVolume(t, smallConfig())
	if _, err := v.Trim(5); err != nil {
		t.Fatal(err)
	}
	st := v.Stats()
	if st.Trims != 1 {
		t.Fatalf("trims: %d", st.Trims)
	}
	if st.LogicalBytes != 0 || st.GarbageBytes != 0 || st.StoredBytes != 0 {
		t.Fatalf("trim of a never-written lba must not move space accounting: %+v", st)
	}
	got, _, err := v.Read(5)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range got {
		if b != 0 {
			t.Fatal("never-written lba must read zeros")
		}
	}
}

func TestAllocOutOfSpaceAndCleanOnFullDrive(t *testing.T) {
	// A tiny drive with raw (uncompressed) unique blocks fills fast.
	cfg := smallConfig()
	cfg.SSD.BlocksPerChannel = 4 // 8ch * 4blk * 128pg * 4K = 16 MiB physical
	cfg.Compress = false
	cfg.CacheBytes = 0
	v := newVolume(t, cfg)

	// Fill until the log refuses.
	var full error
	var written int64
	for lba := int64(0); lba < v.cfg.Blocks; lba++ {
		if _, err := v.Write(lba, block(int(lba))); err != nil {
			full = err
			break
		}
		written++
	}
	if full == nil {
		t.Fatal("tiny drive never filled")
	}
	if written == 0 {
		t.Fatal("no writes landed before the log filled")
	}
	// The failed write must not have corrupted anything: every accepted
	// block still reads back.
	for _, lba := range []int64{0, written / 2, written - 1} {
		got, _, err := v.Read(lba)
		if err != nil {
			t.Fatalf("lba %d after full: %v", lba, err)
		}
		if !bytes.Equal(got, block(int(lba))) {
			t.Fatalf("lba %d corrupted by out-of-space write", lba)
		}
	}

	// Cleaning a full drive with live data everywhere has no headroom to
	// move blobs into: it must fail gracefully, not corrupt.
	for lba := int64(0); lba < written; lba += 2 {
		if _, err := v.Trim(lba); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := v.Clean(); err == nil {
		t.Fatal("cleaning a headroom-less full drive should report the allocation failure")
	}
	if got, _, err := v.Read(1); err != nil || !bytes.Equal(got, block(1)) {
		t.Fatal("failed clean corrupted surviving data")
	}

	// Dropping the rest makes whole segments dead; cleaning then reclaims
	// them and the volume accepts writes again.
	for lba := int64(1); lba < written; lba += 2 {
		if _, err := v.Trim(lba); err != nil {
			t.Fatal(err)
		}
	}
	cleaned, err := v.Clean()
	if err != nil {
		t.Fatal(err)
	}
	if cleaned == 0 {
		t.Fatal("fully-dead segments should be reclaimed")
	}
	if _, err := v.Write(0, block(424242)); err != nil {
		t.Fatalf("write after cleaning a full drive: %v", err)
	}
	if got, _, err := v.Read(0); err != nil || !bytes.Equal(got, block(424242)) {
		t.Fatal("post-clean write round trip failed")
	}
}

// --- injected faults ---

func TestVolumeTransientFaultsAbsorbed(t *testing.T) {
	cfg := faultConfig()
	cfg.Faults = fault.Config{
		Seed: 42,
		Rates: fault.Rates{
			SSDWriteTransient: 0.1,
			SSDReadTransient:  0.1,
			SSDLatencySpike:   0.05,
		},
	}
	v := newVolume(t, cfg)
	const n = 200
	for i := 0; i < n; i++ {
		if _, err := v.Write(int64(i), block(i)); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	for i := 0; i < n; i++ {
		got, _, err := v.Read(int64(i))
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if !bytes.Equal(got, block(i)) {
			t.Fatalf("lba %d corrupted under transient faults", i)
		}
	}
	st := v.Stats()
	if st.SSDWriteRetries == 0 {
		t.Fatal("no write retries at 10% transient-write rate")
	}
	if st.SSDReadRetries == 0 {
		t.Fatal("no read retries at 10% transient-read rate")
	}
	if st.LatencySpikes == 0 {
		t.Fatal("no latency spikes at 5% spike rate")
	}
	if st.JournalRecords == 0 {
		t.Fatal("small bin buffers should have journaled flushes")
	}
}

func TestVolumeFaultDeterminism(t *testing.T) {
	run := func() (Stats, int64) {
		cfg := faultConfig()
		cfg.SegmentBytes = 128 << 10
		cfg.Faults = fault.Config{Seed: 11, Rates: fault.Uniform(0.05)}
		v := newVolume(t, cfg)
		rng := rand.New(rand.NewSource(77))
		for op := 0; op < 800; op++ {
			lba := rng.Int63n(128)
			switch rng.Intn(8) {
			case 0, 1, 2, 3:
				if _, err := v.Write(lba, block(rng.Intn(100))); err != nil {
					t.Fatal(err)
				}
			case 4:
				if _, err := v.Trim(lba); err != nil {
					t.Fatal(err)
				}
			case 5:
				if _, err := v.Clean(); err != nil {
					t.Fatal(err)
				}
			default:
				if _, _, err := v.Read(lba); err != nil {
					t.Fatal(err)
				}
			}
		}
		return v.Stats(), int64(v.Now())
	}
	st1, now1 := run()
	st2, now2 := run()
	if !reflect.DeepEqual(st1, st2) {
		t.Fatalf("stats diverged for same fault seed:\n%+v\n%+v", st1, st2)
	}
	if now1 != now2 {
		t.Fatalf("virtual clock diverged for same fault seed: %d vs %d", now1, now2)
	}
	if st1.SSDWriteRetries+st1.SSDReadRetries+st1.LatencySpikes == 0 {
		t.Fatal("uniform 5% rates over 800 ops should have fired")
	}
}

func TestVolumeZeroRateIdentity(t *testing.T) {
	run := func(fc fault.Config) (Stats, int64) {
		cfg := faultConfig()
		cfg.Faults = fc
		v := newVolume(t, cfg)
		for i := 0; i < 150; i++ {
			if _, err := v.Write(int64(i%64), block(i%40)); err != nil {
				t.Fatal(err)
			}
		}
		for i := int64(0); i < 64; i++ {
			if _, _, err := v.Read(i); err != nil {
				t.Fatal(err)
			}
		}
		return v.Stats(), int64(v.Now())
	}
	stOff, nowOff := run(fault.Config{})
	stZero, nowZero := run(fault.Config{Seed: 1234}) // seed set, all rates zero
	if !reflect.DeepEqual(stOff, stZero) || nowOff != nowZero {
		t.Fatalf("zero-rate injection perturbed the run:\n%+v (now=%d)\n%+v (now=%d)",
			stOff, nowOff, stZero, nowZero)
	}
	if stZero.SSDWriteRetries != 0 || stZero.LatencySpikes != 0 || stZero.JournalTornRecords != 0 {
		t.Fatalf("zero-rate run recorded fault activity: %+v", stZero)
	}
}

func TestVolumeTornJournalRecovers(t *testing.T) {
	cfg := faultConfig()
	cfg.Faults = fault.Config{Seed: 5, Rates: fault.Rates{JournalTorn: 0.15}}
	v := newVolume(t, cfg)
	for i := 0; i < 300; i++ {
		if _, err := v.Write(int64(i), block(i)); err != nil {
			t.Fatal(err)
		}
	}
	st := v.Stats()
	if st.JournalTornRecords == 0 {
		t.Fatal("15% torn rate over many flushes should have fired")
	}
	idx, rcv, err := v.RecoverIndex()
	if err != nil {
		t.Fatal(err)
	}
	if !rcv.Truncated {
		t.Fatal("recovery over a torn image should truncate")
	}
	// Every recovered entry must point at a live, correctly-sized blob.
	locs := liveLocs(v)
	idx.Walk(func(bin uint32, key []byte, e dedup.Entry) bool {
		ref, ok := locs[e.Loc]
		if !ok {
			t.Fatalf("recovered entry points at unknown loc %d", e.Loc)
		}
		if uint32(ref.size) != e.Size {
			t.Fatalf("recovered size %d != stored %d at loc %d", e.Size, ref.size, e.Loc)
		}
		return true
	})
	if _, err := v.RecoverIndexStrict(); !errors.Is(err, dedup.ErrJournalCorrupt) {
		t.Fatalf("strict replay of a torn journal: want ErrJournalCorrupt, got %v", err)
	}
}

func TestVolumeJournalWriteFailureDegrades(t *testing.T) {
	v := newVolume(t, faultConfig())
	// Arm a permanent-write injector directly (uniform injection can't
	// reach this path: a data write would fail first and surface).
	v.faults = fault.New(fault.Config{Seed: 3, Rates: fault.Rates{SSDWritePermanent: 1}})
	v.drive.SetFaultInjector(v.faults)

	flush := fabricateFlush(t)
	v.journalFlush(0, flush)
	if !v.journalDead {
		t.Fatal("permanent journal-write failure must degrade journaling off")
	}
	if v.stats.JournalWriteFailures != 1 {
		t.Fatalf("failures: %d", v.stats.JournalWriteFailures)
	}
	if len(v.JournalImage()) != 0 {
		t.Fatal("a failed journal write must not reach the durable image")
	}
	// Degraded mode: later flushes are dropped silently, the volume lives on.
	v.journalFlush(0, flush)
	if v.stats.JournalWriteFailures != 1 {
		t.Fatal("degraded journaling must not re-count failures")
	}
	v.faults = nil
	v.drive.SetFaultInjector(nil)
	if _, err := v.Write(0, block(1)); err != nil {
		t.Fatalf("degraded volume must keep serving writes: %v", err)
	}
	if got, _, err := v.Read(0); err != nil || !bytes.Equal(got, block(1)) {
		t.Fatal("degraded volume round trip failed")
	}
}

// fabricateFlush builds a real bin-buffer flush from a scratch index.
func fabricateFlush(t *testing.T) *dedup.Flush {
	t.Helper()
	idx, err := dedup.NewBinIndex(dedup.IndexConfig{BinBits: 4, BufferEntries: 1})
	if err != nil {
		t.Fatal(err)
	}
	ir := idx.Insert(dedup.Sum(block(9)), dedup.Entry{Loc: 64, Size: 128})
	if ir.Flush == nil {
		t.Fatal("1-entry buffer should flush on insert")
	}
	return ir.Flush
}

// --- crash consistency ---

// liveLocs maps log offsets to their live chunkRefs.
func liveLocs(v *Volume) map[int64]*chunkRef {
	locs := make(map[int64]*chunkRef, len(v.chunks))
	for _, ref := range v.chunks {
		locs[ref.loc] = ref
	}
	return locs
}

// TestVolumeCrashPoints cuts the journal image at every byte boundary and
// checks the acceptance criterion: each cut recovers a consistent prefix of
// the flush history, and every pre-crash location the recovered index
// references reads back byte-identical through the volume.
func TestVolumeCrashPoints(t *testing.T) {
	cfg := faultConfig()
	v := newVolume(t, cfg)
	const n = 200
	for i := 0; i < n; i++ {
		if _, err := v.Write(int64(i), block(i)); err != nil {
			t.Fatal(err)
		}
	}
	image := v.JournalImage()
	if len(image) == 0 {
		t.Fatal("workload produced no journal")
	}
	locs := liveLocs(v)
	locToLBA := make(map[int64]int64, len(v.lbaMap))
	for lba, fp := range v.lbaMap {
		locToLBA[v.chunks[fp].loc] = lba
	}

	verified := make(map[int64]bool) // locs whose read-back already checked
	prevRecords := 0
	for cut := 0; cut <= len(image); cut++ {
		idx, rcv, err := dedup.RecoverJournal(image[:cut], cfg.Index)
		if err != nil {
			t.Fatalf("cut %d: recovery must be lenient: %v", cut, err)
		}
		if rcv.Records < prevRecords {
			t.Fatalf("cut %d: recovered records went backwards (%d -> %d)", cut, prevRecords, rcv.Records)
		}
		prevRecords = rcv.Records
		idx.Walk(func(bin uint32, key []byte, e dedup.Entry) bool {
			ref, ok := locs[e.Loc]
			if !ok {
				t.Fatalf("cut %d: recovered entry references unwritten loc %d", cut, e.Loc)
			}
			if uint32(ref.size) != e.Size {
				t.Fatalf("cut %d: size mismatch at loc %d", cut, e.Loc)
			}
			if !verified[e.Loc] {
				lba := locToLBA[e.Loc]
				got, _, err := v.Read(lba)
				if err != nil {
					t.Fatalf("cut %d: read-back of lba %d: %v", cut, lba, err)
				}
				if !bytes.Equal(got, block(int(lba))) {
					t.Fatalf("cut %d: lba %d not byte-identical after recovery", cut, lba)
				}
				verified[e.Loc] = true
			}
			return true
		})
	}
	if prevRecords == 0 {
		t.Fatal("full image recovered zero records")
	}
	// The clean, uncut image must also satisfy the strict replayer.
	if _, err := v.RecoverIndexStrict(); err != nil {
		t.Fatalf("strict replay of a clean journal: %v", err)
	}
}
