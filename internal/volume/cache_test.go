package volume

import (
	"encoding/binary"
	"testing"

	"inlinered/internal/dedup"
)

// tfp builds a distinct fingerprint whose sketch slots are also distinct
// (the sketch hashes words [0:8) and [8:16) of the digest).
func tfp(i uint64) dedup.Fingerprint {
	var fp dedup.Fingerprint
	binary.LittleEndian.PutUint64(fp[0:8], i+1)
	binary.LittleEndian.PutUint64(fp[8:16], (i+1)*0x9E3779B97F4A7C15)
	return fp
}

func TestFreqSketchEstimateAndAging(t *testing.T) {
	var s freqSketch
	s.init(64)
	a, b := tfp(1), tfp(2)
	if s.estimate(a) != 0 {
		t.Fatalf("fresh sketch estimate: %d", s.estimate(a))
	}
	for i := 0; i < 5; i++ {
		s.increment(a)
	}
	s.increment(b)
	if got := s.estimate(a); got != 5 {
		t.Fatalf("estimate after 5 increments: %d", got)
	}
	if got := s.estimate(b); got != 1 {
		t.Fatalf("estimate after 1 increment: %d", got)
	}
	// Saturation at 15.
	for i := 0; i < 40; i++ {
		s.increment(a)
	}
	if got := s.estimate(a); got != 15 {
		t.Fatalf("estimate must saturate at 15, got %d", got)
	}
	// Aging halves every counter.
	s.age()
	if got := s.estimate(a); got != 7 {
		t.Fatalf("estimate after aging: %d (want 15/2)", got)
	}
	if got := s.estimate(b); got != 0 {
		t.Fatalf("cold entry after aging: %d (want 1/2)", got)
	}
	if s.samples != 0 {
		t.Fatalf("aging must reset the sample count, got %d", s.samples)
	}
}

func TestFreqSketchAutoAges(t *testing.T) {
	var s freqSketch
	s.init(1) // min size: 1024 counters, sampleLimit 8192
	a := tfp(7)
	for i := 0; i < 20; i++ {
		s.increment(a)
	}
	before := s.estimate(a)
	// Drive unrelated fingerprints until the sample limit trips.
	for i := uint64(0); int(i) < s.sampleLimit; i++ {
		s.increment(tfp(100 + i))
	}
	if got := s.estimate(a); got >= before {
		t.Fatalf("hot estimate must decay after the sample window: %d -> %d", before, got)
	}
}

func TestGhostListBoundedFIFO(t *testing.T) {
	var g ghostList
	g.init(4)              // below the floor:
	if cap(g.ring) != 16 { // bounded, but never degenerate
		t.Fatalf("ghost floor: cap %d, want 16", cap(g.ring))
	}
	for i := uint64(0); i < 20; i++ {
		g.push(tfp(i))
	}
	if g.contains(tfp(0)) || g.contains(tfp(3)) {
		t.Fatal("oldest ghosts must be overwritten")
	}
	for i := uint64(4); i < 20; i++ {
		if !g.contains(tfp(i)) {
			t.Fatalf("recent ghost %d missing", i)
		}
	}
	g.removeIfPresent(tfp(10))
	if g.contains(tfp(10)) {
		t.Fatal("removed ghost still reported")
	}
	// Re-pushing an already-present fingerprint must not duplicate it.
	g.push(tfp(19))
	g.push(tfp(19))
	if !g.contains(tfp(19)) {
		t.Fatal("re-push lost membership")
	}
}

// TestCacheScanResistance is the policy's reason to exist, in miniature: a
// small hot set accessed repeatedly, then a long one-touch scan several
// times the cache's size. A pure LRU forgets the hot set (every scan
// entry evicts one resident); the admission policy must keep it — scans
// only churn the probation segment, and a one-touch fingerprint never
// qualifies for the protected one.
func TestCacheScanResistance(t *testing.T) {
	const bs = 64
	c := newBlockCache(8 * bs)
	data := make([]byte, bs)
	hot := []dedup.Fingerprint{tfp(1), tfp(2)}
	// Serial-path access pattern: lookup, insert on miss.
	touch := func(fp dedup.Fingerprint) bool {
		if c.get(fp) != nil {
			return true
		}
		c.put(fp, data)
		return false
	}
	for round := 0; round < 4; round++ {
		for _, fp := range hot {
			touch(fp)
		}
	}
	if c.admissions == 0 {
		t.Fatal("re-accessed entries must be promoted to the protected segment")
	}
	for i := uint64(100); i < 200; i++ {
		if touch(tfp(i)) {
			t.Fatalf("one-touch scan entry %d cannot hit", i)
		}
	}
	for _, fp := range hot {
		if c.get(fp) == nil {
			t.Fatal("scan evicted the hot set — admission policy not scan-resistant")
		}
	}
	if c.usedBytes > c.capBytes {
		t.Fatalf("over capacity: %d > %d", c.usedBytes, c.capBytes)
	}
}

// TestCacheCyclicScanConverges is the failing-before/passing-after
// boot-storm kernel: a strict cyclic scan over a working set 4× the cache.
// Under the old pure-LRU cache this access pattern NEVER hits — every
// block is evicted strictly before its reuse, on every pass, forever.
// Under the admission policy the ghost list recognizes second-pass inserts
// as re-references and pins a protected set, so later passes hit.
func TestCacheCyclicScanConverges(t *testing.T) {
	const bs, blocks, workingSet, passes = 64, 8, 32, 5
	c := newBlockCache(blocks * bs)
	data := make([]byte, bs)
	perPass := make([]int64, passes)
	for p := 0; p < passes; p++ {
		before := c.hits
		for i := uint64(0); i < workingSet; i++ {
			if c.get(tfp(i)) == nil {
				c.put(tfp(i), data)
			}
		}
		perPass[p] = c.hits - before
	}
	if perPass[0] != 0 {
		t.Fatalf("cold pass cannot hit, got %d", perPass[0])
	}
	if c.ghostHits == 0 {
		t.Fatal("cyclic re-inserts must register as ghost hits")
	}
	last := perPass[passes-1]
	if last == 0 {
		t.Fatalf("steady-state pass still hits nothing (LRU behavior): %v", perPass)
	}
	// The protected segment is ~3/4 of capacity; a converged pass should
	// hit about that many blocks each cycle.
	if want := int64(blocks/2) + 1; last < want {
		t.Fatalf("converged pass hit %d blocks, want >= %d of %d: %v", last, want, blocks, perPass)
	}
	if c.len() > blocks {
		t.Fatalf("cache exceeded capacity: %d blocks", c.len())
	}
}

// TestCacheCountersConsistent checks the counter algebra the reports rely
// on: every enabled lookup is a hit or a miss, admissions never exceed
// inserts + promotions, and the disabled cache counts nothing.
func TestCacheCountersConsistent(t *testing.T) {
	const bs = 64
	c := newBlockCache(4 * bs)
	data := make([]byte, bs)
	lookups := int64(0)
	for i := uint64(0); i < 50; i++ {
		fp := tfp(i % 10)
		lookups++
		if c.get(fp) == nil {
			c.put(fp, data)
		}
	}
	if c.hits+c.misses != lookups {
		t.Fatalf("hits %d + misses %d != lookups %d", c.hits, c.misses, lookups)
	}
	if c.hits == 0 || c.misses == 0 {
		t.Fatalf("mixed trace must produce both hits (%d) and misses (%d)", c.hits, c.misses)
	}

	off := newBlockCache(0)
	if off.get(tfp(1)) != nil {
		t.Fatal("disabled cache returned data")
	}
	off.put(tfp(1), data)
	if off.hits != 0 || off.misses != 0 || off.len() != 0 {
		t.Fatal("disabled cache must count nothing")
	}
}

// TestCacheReserveMatchesPut: the batch path's reserve must drive the same
// admission machinery as the serial path's put — same residency, same
// counters — so batch and serial runs stay bit-identical.
func TestCacheReserveMatchesPut(t *testing.T) {
	const bs = 64
	data := make([]byte, bs)
	trace := make([]uint64, 0, 200)
	for p := 0; p < 4; p++ {
		for i := uint64(0); i < 12; i++ {
			trace = append(trace, i)
		}
	}
	a, b := newBlockCache(6*bs), newBlockCache(6*bs)
	for _, i := range trace {
		if a.get(tfp(i)) == nil {
			a.put(tfp(i), data)
		}
		if _, ok := b.getRef(tfp(i)); !ok {
			if slot := b.reserve(tfp(i), bs); slot != nil {
				copy(slot, data)
			}
		}
	}
	if a.hits != b.hits || a.misses != b.misses ||
		a.admissions != b.admissions || a.ghostHits != b.ghostHits {
		t.Fatalf("serial (h=%d m=%d adm=%d gh=%d) and batch (h=%d m=%d adm=%d gh=%d) counters diverge",
			a.hits, a.misses, a.admissions, a.ghostHits,
			b.hits, b.misses, b.admissions, b.ghostHits)
	}
	if a.len() != b.len() || a.usedBytes != b.usedBytes {
		t.Fatalf("residency diverges: %d/%d blocks, %d/%d bytes",
			a.len(), b.len(), a.usedBytes, b.usedBytes)
	}
}
