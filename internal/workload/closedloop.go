package workload

import (
	"fmt"
	"math/rand"
)

// OpKind is a closed-loop block operation kind.
type OpKind byte

const (
	// OpWrite stores a block whose content derives from Op.Content.
	OpWrite OpKind = 'W'
	// OpRead fetches a block.
	OpRead OpKind = 'R'
	// OpTrim unmaps a block.
	OpTrim OpKind = 'T'
)

// Op is one closed-loop block operation. Content ids stand in for payloads
// (two writes with the same id carry identical bytes), so op lists stay
// compact and dedup behaviour is encoded in the list itself — the same
// convention as the trace format.
type Op struct {
	Kind    OpKind
	LBA     int64
	Content int32 // write content id; ignored for reads and trims
}

// ClosedLoopSpec parameterizes the closed-loop op-mix generator that feeds
// the multi-client serving front-end.
type ClosedLoopSpec struct {
	Ops        int     // operations to generate after the fill pass
	Blocks     int64   // LBA space
	WriteFrac  float64 // fraction of ops that are writes
	TrimFrac   float64 // fraction of ops that are trims (rest are reads)
	DedupRatio float64 // writes per distinct content id, >= 1
	Hotspot    float64 // fraction of ops hitting the hot 10% of the LBA space
	Seed       int64
}

// Validate reports whether the spec is usable.
func (s ClosedLoopSpec) Validate() error {
	if s.Ops < 1 || s.Blocks < 1 {
		return fmt.Errorf("workload: need ops >= 1 and blocks >= 1: %+v", s)
	}
	if s.WriteFrac < 0 || s.TrimFrac < 0 || s.WriteFrac+s.TrimFrac > 1 {
		return fmt.Errorf("workload: fractions must be non-negative and sum <= 1: %+v", s)
	}
	if s.DedupRatio < 1 {
		return fmt.Errorf("workload: dedup ratio must be >= 1: %+v", s)
	}
	if s.Hotspot < 0 || s.Hotspot > 1 {
		return fmt.Errorf("workload: hotspot must be in [0,1]: %+v", s)
	}
	return nil
}

// ReadMostlySpec returns the read-mostly closed-loop preset: a 90/9/1
// read/write/trim mix with the generator's usual dedup and hotspot
// defaults. Recovery scenarios lean on it — a cluster riding out a node
// crash is dominated by reads that must be served from a fallback
// replica, so the cluster tests drive this preset through the outage.
func ReadMostlySpec(ops int, blocks, seed int64) ClosedLoopSpec {
	return ClosedLoopSpec{
		Ops:        ops,
		Blocks:     blocks,
		WriteFrac:  0.09,
		TrimFrac:   0.01,
		DedupRatio: 2.0,
		Hotspot:    0.5,
		Seed:       seed,
	}
}

// ClosedLoop generates a deterministic closed-loop op list: a sequential
// fill of the LBA space (so reads and trims have something to hit) followed
// by the requested mix, with an optional hotspot. The list is a pure
// function of the spec — the serving front-end relies on that to promise
// bit-identical reports for any client count.
func ClosedLoop(spec ClosedLoopSpec) ([]Op, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	contents := int32(float64(spec.Ops)/spec.DedupRatio + 1)
	ops := make([]Op, 0, spec.Ops+int(spec.Blocks))
	for lba := int64(0); lba < spec.Blocks; lba++ {
		ops = append(ops, Op{Kind: OpWrite, LBA: lba, Content: rng.Int31n(contents)})
	}
	hot := spec.Blocks / 10
	if hot < 1 {
		hot = 1
	}
	pick := func() int64 {
		if spec.Hotspot > 0 && rng.Float64() < spec.Hotspot {
			return rng.Int63n(hot)
		}
		return rng.Int63n(spec.Blocks)
	}
	for i := 0; i < spec.Ops; i++ {
		p := rng.Float64()
		switch {
		case p < spec.WriteFrac:
			ops = append(ops, Op{Kind: OpWrite, LBA: pick(), Content: rng.Int31n(contents)})
		case p < spec.WriteFrac+spec.TrimFrac:
			ops = append(ops, Op{Kind: OpTrim, LBA: pick()})
		default:
			ops = append(ops, Op{Kind: OpRead, LBA: pick()})
		}
	}
	return ops, nil
}
