package workload

import (
	"bytes"
	"io"
	"math"
	"testing"

	"inlinered/internal/dedup"
	"inlinered/internal/lz"
)

// TestUniqueChunkIntoMatchesUniqueChunk: the reusing variant must produce
// byte-identical payloads whether it recycles a dirty buffer or allocates,
// for any fill — the serve report's bit-identity depends on it.
func TestUniqueChunkIntoMatchesUniqueChunk(t *testing.T) {
	scratch := make([]byte, 4096)
	for i := range scratch {
		scratch[i] = 0xAB // dirty: UniqueChunkInto must fully overwrite
	}
	for _, fill := range []float64{0, 0.25, 0.5, 1} {
		for id := int32(0); id < 8; id++ {
			want := UniqueChunk(11, id, 4096, fill)
			got := UniqueChunkInto(scratch[:0], 11, id, 4096, fill)
			if !bytes.Equal(got, want) {
				t.Fatalf("fill=%g id=%d: reused-buffer payload differs", fill, id)
			}
			if len(got) != 4096 {
				t.Fatalf("fill=%g id=%d: length %d", fill, id, len(got))
			}
			small := UniqueChunkInto(make([]byte, 0, 16), 11, id, 4096, fill)
			if !bytes.Equal(small, want) {
				t.Fatalf("fill=%g id=%d: undersized-dst payload differs", fill, id)
			}
		}
	}
}

func spec() Spec {
	return Spec{
		TotalBytes: 4 << 20,
		ChunkSize:  4096,
		DedupRatio: 2.0,
		CompRatio:  2.0,
		Seed:       1,
	}
}

func TestSpecValidation(t *testing.T) {
	bad := []func(*Spec){
		func(s *Spec) { s.ChunkSize = 8 },
		func(s *Spec) { s.TotalBytes = 100 },
		func(s *Spec) { s.DedupRatio = 0.5 },
		func(s *Spec) { s.CompRatio = 0.5 },
	}
	for i, mut := range bad {
		sp := spec()
		mut(&sp)
		if _, err := New(sp); err == nil {
			t.Errorf("case %d: spec should be rejected: %+v", i, sp)
		}
	}
}

func TestDedupRatioAchieved(t *testing.T) {
	for _, ratio := range []float64{1.0, 1.5, 2.0, 3.0, 4.0} {
		sp := spec()
		sp.DedupRatio = ratio
		s, err := New(sp)
		if err != nil {
			t.Fatal(err)
		}
		got := s.ActualDedupRatio()
		if math.Abs(got-ratio)/ratio > 0.02 {
			t.Errorf("ratio %g: schedule produced %g", ratio, got)
		}
	}
}

func TestMeasuredDedupRatioViaIndex(t *testing.T) {
	// The real dedup index must observe the configured ratio: duplicates
	// are byte-identical chunks, not just schedule bookkeeping.
	s, err := New(spec())
	if err != nil {
		t.Fatal(err)
	}
	seen := map[dedup.Fingerprint]bool{}
	dups := 0
	for i := 0; i < s.Chunks(); i++ {
		fp := dedup.Sum(s.Chunk(i))
		if seen[fp] {
			dups++
		}
		seen[fp] = true
	}
	got := float64(s.Chunks()) / float64(len(seen))
	if math.Abs(got-2.0) > 0.1 {
		t.Fatalf("measured dedup ratio %g, want ~2.0", got)
	}
	if dups == 0 {
		t.Fatal("no byte-identical duplicates generated")
	}
}

func TestCompressionRatioCalibrated(t *testing.T) {
	for _, ratio := range []float64{1.0, 1.5, 2.0, 3.0, 4.0} {
		sp := spec()
		sp.CompRatio = ratio
		s, err := New(sp)
		if err != nil {
			t.Fatal(err)
		}
		var src, dst int
		for id := int32(0); id < 32; id++ {
			c := UniqueChunk(sp.Seed, id, sp.ChunkSize, s.fill)
			_, st := lz.Compress(nil, c, lz.DefaultParams())
			src += st.SrcBytes
			dst += st.DstBytes
		}
		got := float64(src) / float64(dst)
		if math.Abs(got-ratio)/ratio > 0.10 {
			t.Errorf("target %g: measured LZSS ratio %g", ratio, got)
		}
	}
}

func TestStreamDeterministic(t *testing.T) {
	a, _ := New(spec())
	b, _ := New(spec())
	ba, _ := io.ReadAll(a)
	bb, _ := io.ReadAll(b)
	if !bytes.Equal(ba, bb) {
		t.Fatal("same spec must generate identical bytes")
	}
	if int64(len(ba)) != a.Bytes() {
		t.Fatalf("reader produced %d bytes, want %d", len(ba), a.Bytes())
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, _ := New(spec())
	sp := spec()
	sp.Seed = 2
	b, _ := New(sp)
	if bytes.Equal(a.Chunk(0), b.Chunk(0)) {
		t.Fatal("different seeds should differ")
	}
}

func TestReaderMatchesChunks(t *testing.T) {
	s, _ := New(spec())
	all, err := io.ReadAll(s)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < s.Chunks(); i += 37 {
		want := s.Chunk(i)
		got := all[i*s.spec.ChunkSize : (i+1)*s.spec.ChunkSize]
		if !bytes.Equal(got, want) {
			t.Fatalf("chunk %d differs between Read and Chunk", i)
		}
	}
}

func TestReset(t *testing.T) {
	s, _ := New(spec())
	first := make([]byte, 100)
	io.ReadFull(s, first)
	s.Reset()
	again := make([]byte, 100)
	io.ReadFull(s, again)
	if !bytes.Equal(first, again) {
		t.Fatal("Reset should rewind the stream")
	}
}

func TestRecentPatternHasTemporalLocality(t *testing.T) {
	mk := func(p RefPattern) float64 {
		sp := spec()
		sp.TotalBytes = 8 << 20
		sp.DedupRatio = 3.0
		sp.Pattern = p
		s, err := New(sp)
		if err != nil {
			t.Fatal(err)
		}
		// Measure mean re-reference distance (in uniques) for duplicates.
		lastSeen := map[int32]int{}
		uniquesBefore := map[int32]bool{}
		var sum, n float64
		emitted := 0
		for i := 0; i < s.Chunks(); i++ {
			id := s.ChunkID(i)
			if !uniquesBefore[id] {
				uniquesBefore[id] = true
				emitted++
			} else {
				sum += float64(i - lastSeen[id])
				n++
			}
			lastSeen[id] = i
		}
		if n == 0 {
			t.Fatal("no duplicates")
		}
		return sum / n
	}
	recent, uniform := mk(RefRecent), mk(RefUniform)
	if recent >= uniform {
		t.Fatalf("RefRecent mean re-reference distance (%g) should beat RefUniform (%g)", recent, uniform)
	}
}

func TestUniqueChunkFillBounds(t *testing.T) {
	zeroes := UniqueChunk(1, 0, 4096, 0)
	for _, b := range zeroes {
		if b != 0 {
			t.Fatal("fill=0 must be all zeros")
		}
	}
	full := UniqueChunk(1, 0, 4096, 1)
	nonzero := 0
	for _, b := range full {
		if b != 0 {
			nonzero++
		}
	}
	if nonzero < 4096*9/10 {
		t.Fatalf("fill=1 should be essentially all random, %d nonzero", nonzero)
	}
	// Clamping.
	if !bytes.Equal(UniqueChunk(1, 0, 128, -3), UniqueChunk(1, 0, 128, 0)) {
		t.Fatal("negative fill should clamp to 0")
	}
}

func TestUniqueChunksDistinct(t *testing.T) {
	seen := map[dedup.Fingerprint]bool{}
	for id := int32(0); id < 1000; id++ {
		fp := dedup.Sum(UniqueChunk(7, id, 4096, 0.6))
		if seen[fp] {
			t.Fatalf("unique ids collided at %d", id)
		}
		seen[fp] = true
	}
}

func TestCalibrateFillMonotonic(t *testing.T) {
	f2 := CalibrateFill(2.0, 4096, 1)
	f3 := CalibrateFill(3.0, 4096, 1)
	f4 := CalibrateFill(4.0, 4096, 1)
	if !(f2 > f3 && f3 > f4) {
		t.Fatalf("higher target ratio needs fewer random bytes: %g %g %g", f2, f3, f4)
	}
	if CalibrateFill(1.0, 4096, 1) != 1.0 {
		t.Fatal("ratio 1.0 should be fully random")
	}
	if CalibrateFill(1000, 4096, 1) != 0 {
		t.Fatal("unreachable ratio should clamp to all-zero fill")
	}
}
