package workload

import (
	"reflect"
	"testing"
)

func TestClosedLoopValidation(t *testing.T) {
	good := ClosedLoopSpec{Ops: 100, Blocks: 64, WriteFrac: 0.5, TrimFrac: 0.1, DedupRatio: 2, Seed: 1}
	bad := []func(*ClosedLoopSpec){
		func(s *ClosedLoopSpec) { s.Ops = 0 },
		func(s *ClosedLoopSpec) { s.Blocks = 0 },
		func(s *ClosedLoopSpec) { s.WriteFrac = 0.8; s.TrimFrac = 0.4 },
		func(s *ClosedLoopSpec) { s.WriteFrac = -0.1 },
		func(s *ClosedLoopSpec) { s.DedupRatio = 0.5 },
		func(s *ClosedLoopSpec) { s.Hotspot = 1.5 },
	}
	if _, err := ClosedLoop(good); err != nil {
		t.Fatalf("good spec rejected: %v", err)
	}
	for i, mut := range bad {
		s := good
		mut(&s)
		if _, err := ClosedLoop(s); err == nil {
			t.Errorf("case %d should be rejected", i)
		}
	}
}

func TestClosedLoopShape(t *testing.T) {
	spec := ClosedLoopSpec{Ops: 2000, Blocks: 256, WriteFrac: 0.5, TrimFrac: 0.1, DedupRatio: 2, Hotspot: 0.3, Seed: 5}
	ops, err := ClosedLoop(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != spec.Ops+int(spec.Blocks) {
		t.Fatalf("len = %d, want fill %d + mix %d", len(ops), spec.Blocks, spec.Ops)
	}
	// The fill pass writes every LBA once, in order.
	for i := int64(0); i < spec.Blocks; i++ {
		if ops[i].Kind != OpWrite || ops[i].LBA != i {
			t.Fatalf("fill op %d: %+v", i, ops[i])
		}
	}
	var w, r, tr int
	for _, op := range ops[spec.Blocks:] {
		if op.LBA < 0 || op.LBA >= spec.Blocks {
			t.Fatalf("lba %d out of range", op.LBA)
		}
		switch op.Kind {
		case OpWrite:
			w++
		case OpRead:
			r++
		case OpTrim:
			tr++
		default:
			t.Fatalf("unknown kind %q", op.Kind)
		}
	}
	// Mix fractions land near the spec (loose bounds; the draw is random
	// but deterministic).
	if w < spec.Ops/3 || tr == 0 || r == 0 {
		t.Fatalf("mix off: w=%d r=%d t=%d", w, r, tr)
	}
	// Determinism: same spec, same list.
	again, err := ClosedLoop(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ops, again) {
		t.Fatal("same spec produced different op lists")
	}
}

// TestReadMostlyPreset: the recovery-scenario preset validates, is
// read-dominated (~90/9/1), and is deterministic.
func TestReadMostlyPreset(t *testing.T) {
	spec := ReadMostlySpec(10000, 512, 3)
	if err := spec.Validate(); err != nil {
		t.Fatalf("preset invalid: %v", err)
	}
	ops, err := ClosedLoop(spec)
	if err != nil {
		t.Fatal(err)
	}
	var w, r, tr int
	for _, op := range ops[spec.Blocks:] { // skip the fill pass
		switch op.Kind {
		case OpWrite:
			w++
		case OpRead:
			r++
		case OpTrim:
			tr++
		}
	}
	total := float64(spec.Ops)
	if frac := float64(r) / total; frac < 0.85 || frac > 0.95 {
		t.Fatalf("read fraction %.3f, want ~0.90", frac)
	}
	if frac := float64(w) / total; frac < 0.06 || frac > 0.12 {
		t.Fatalf("write fraction %.3f, want ~0.09", frac)
	}
	if tr == 0 {
		t.Fatal("preset generated no trims")
	}
	again, _ := ClosedLoop(ReadMostlySpec(10000, 512, 3))
	if !reflect.DeepEqual(ops, again) {
		t.Fatal("preset not deterministic")
	}
}
