package workload

import (
	"bytes"
	"fmt"
	"math/rand"
)

// ShiftSpec describes a shifted-duplicate stream: a corpus of files, each
// re-emitted several times with a random number of bytes inserted at its
// front. Fixed-size chunking loses almost all duplicate detection on the
// shifted copies (every boundary moves), while content-defined chunking
// resynchronizes — the classic motivation for CDC, used by the E11
// extension experiment.
type ShiftSpec struct {
	Files    int     // distinct files in the corpus
	FileSize int     // bytes per file
	Repeats  int     // total emissions per file (first + shifted copies)
	MaxShift int     // maximum inserted prefix per re-emission
	Fill     float64 // random-byte fraction (compressibility), as UniqueChunk
	Seed     int64
}

// Validate reports whether the spec is usable.
func (s ShiftSpec) Validate() error {
	if s.Files < 1 || s.FileSize < 1024 || s.Repeats < 1 {
		return fmt.Errorf("workload: shifted spec needs files>=1, filesize>=1024, repeats>=1: %+v", s)
	}
	if s.MaxShift < 0 || s.MaxShift >= s.FileSize {
		return fmt.Errorf("workload: MaxShift must be in [0, filesize): %+v", s)
	}
	return nil
}

// NewShifted materializes a shifted-duplicate stream. The emission order
// interleaves files round-robin so repeats are spread across the stream.
func NewShifted(spec ShiftSpec) (*bytes.Reader, int64, error) {
	if err := spec.Validate(); err != nil {
		return nil, 0, err
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	files := make([][]byte, spec.Files)
	for i := range files {
		// Reuse the calibrated chunk filler for deterministic content with
		// controllable compressibility.
		var f []byte
		for len(f) < spec.FileSize {
			f = append(f, UniqueChunk(spec.Seed+1, int32(i*1024+len(f)/4096), 4096, spec.Fill)...)
		}
		files[i] = f[:spec.FileSize]
	}
	var out []byte
	for r := 0; r < spec.Repeats; r++ {
		for i := range files {
			if r > 0 && spec.MaxShift > 0 {
				shift := rng.Intn(spec.MaxShift) + 1
				prefix := make([]byte, shift)
				rng.Read(prefix)
				out = append(out, prefix...)
			}
			out = append(out, files[i]...)
		}
	}
	return bytes.NewReader(out), int64(len(out)), nil
}
