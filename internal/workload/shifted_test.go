package workload

import (
	"bytes"
	"io"
	"testing"

	"inlinered/internal/chunk"
	"inlinered/internal/dedup"
)

func shiftSpec() ShiftSpec {
	return ShiftSpec{Files: 4, FileSize: 128 << 10, Repeats: 3, MaxShift: 512, Fill: 0.5, Seed: 1}
}

func TestShiftedValidation(t *testing.T) {
	bad := []func(*ShiftSpec){
		func(s *ShiftSpec) { s.Files = 0 },
		func(s *ShiftSpec) { s.FileSize = 100 },
		func(s *ShiftSpec) { s.Repeats = 0 },
		func(s *ShiftSpec) { s.MaxShift = -1 },
		func(s *ShiftSpec) { s.MaxShift = s.FileSize },
	}
	for i, mut := range bad {
		sp := shiftSpec()
		mut(&sp)
		if _, _, err := NewShifted(sp); err == nil {
			t.Errorf("case %d should be rejected", i)
		}
	}
}

func TestShiftedSizeAndDeterminism(t *testing.T) {
	r1, n1, err := NewShifted(shiftSpec())
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := io.ReadAll(r1)
	if int64(len(b1)) != n1 {
		t.Fatalf("reported %d bytes, produced %d", n1, len(b1))
	}
	r2, _, _ := NewShifted(shiftSpec())
	b2, _ := io.ReadAll(r2)
	if !bytes.Equal(b1, b2) {
		t.Fatal("same spec must be deterministic")
	}
}

func TestShiftedDefeatsFixedChunkingButNotCDC(t *testing.T) {
	r, _, err := NewShifted(shiftSpec())
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(r)

	uniqueRatio := func(c chunk.Chunker) float64 {
		seen := map[dedup.Fingerprint]bool{}
		total := 0
		for {
			ch, err := c.Next()
			if err != nil {
				break
			}
			total++
			seen[dedup.Sum(ch.Data)] = true
		}
		return float64(total) / float64(len(seen))
	}
	fixed := uniqueRatio(chunk.NewFixed(bytes.NewReader(data), 4096))
	cdc := uniqueRatio(chunk.NewGear(bytes.NewReader(data), chunk.DefaultGearConfig()))
	if fixed > 1.3 {
		t.Fatalf("fixed chunking should find almost no shifted dups: %.2f", fixed)
	}
	if cdc < 2.0 {
		t.Fatalf("CDC should recover most shifted dups: %.2f", cdc)
	}
}

func TestShiftedNoShiftDedupsWithFixed(t *testing.T) {
	sp := shiftSpec()
	sp.MaxShift = 0
	r, _, err := NewShifted(sp)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(r)
	seen := map[dedup.Fingerprint]bool{}
	total := 0
	c := chunk.NewFixed(bytes.NewReader(data), 4096)
	for {
		ch, err := c.Next()
		if err != nil {
			break
		}
		total++
		seen[dedup.Sum(ch.Data)] = true
	}
	if ratio := float64(total) / float64(len(seen)); ratio < 2.5 {
		t.Fatalf("aligned repeats should dedup with fixed chunking: %.2f", ratio)
	}
}
