package workload

import (
	"reflect"
	"testing"
)

func TestBootStormDeterministic(t *testing.T) {
	spec := DefaultBootStormSpec()
	f1, err := spec.Fill()
	if err != nil {
		t.Fatal(err)
	}
	s1, err := spec.Storm()
	if err != nil {
		t.Fatal(err)
	}
	f2, _ := spec.Fill()
	s2, _ := spec.Storm()
	if !reflect.DeepEqual(f1, f2) || !reflect.DeepEqual(s1, s2) {
		t.Fatal("boot storm must be a pure function of the spec")
	}
	if len(s1) != spec.Clients*spec.ReadsPerClient {
		t.Fatalf("storm length %d, want %d", len(s1), spec.Clients*spec.ReadsPerClient)
	}
	hot := spec.UniqueBlocks
	for _, lba := range s1 {
		if lba < 0 || lba >= hot {
			t.Fatalf("storm read outside the hot set: %d", lba)
		}
	}
	// Round-robin interleave: consecutive reads belong to different
	// clients, so position i and i+Clients are the same client's walk,
	// one step apart.
	if s1[0] == s1[1] && s1[1] == s1[2] && s1[2] == s1[3] {
		t.Fatal("storm does not look interleaved (jittered clients collided 4-wide)")
	}
	if (s1[spec.Clients]-s1[0]+hot)%hot != 1 {
		t.Fatalf("client 0's walk is not sequential: %d then %d", s1[0], s1[spec.Clients])
	}
}

func TestBootStormLockstep(t *testing.T) {
	spec := DefaultBootStormSpec()
	spec.Jitter = false
	s, err := spec.Storm()
	if err != nil {
		t.Fatal(err)
	}
	// Lockstep: within one round, every client reads the same block.
	for c := 1; c < spec.Clients; c++ {
		if s[c] != s[0] {
			t.Fatalf("lockstep storm diverged at client %d", c)
		}
	}
}

func TestBootStormValidate(t *testing.T) {
	bad := []BootStormSpec{
		{Clients: 0, ImageBlocks: 1, ReadsPerClient: 1},
		{Clients: 1, ImageBlocks: 0, ReadsPerClient: 1},
		{Clients: 1, ImageBlocks: 1, ReadsPerClient: 0},
		{Clients: 1, ImageBlocks: 4, ReadsPerClient: 1, UniqueBlocks: 5},
	}
	for i, spec := range bad {
		if _, err := spec.Storm(); err == nil {
			t.Fatalf("spec %d: invalid spec accepted", i)
		}
	}
}
