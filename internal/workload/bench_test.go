package workload

import (
	"io"
	"testing"
)

func BenchmarkGenerate64M(b *testing.B) {
	b.SetBytes(64 << 20)
	for i := 0; i < b.N; i++ {
		s, err := New(Spec{TotalBytes: 64 << 20, ChunkSize: 4096, DedupRatio: 2, CompRatio: 2, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCalibrateFill(b *testing.B) {
	for i := 0; i < b.N; i++ {
		CalibrateFill(2.0, 4096, int64(i))
	}
}
