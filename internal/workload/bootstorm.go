package workload

import (
	"fmt"
	"math/rand"
)

// BootStormSpec parameterizes the VDI boot-storm generator: many clients
// booting clones of one golden image at once. The read stream is massively
// redundant (every client walks the same image blocks) and read-only —
// the workload the parallel batch-read path exists for.
type BootStormSpec struct {
	Clients        int   // virtual desktops booting concurrently
	ImageBlocks    int64 // golden image size in blocks
	ReadsPerClient int   // boot sequence length per client
	// UniqueBlocks is how many blocks of the image a boot actually touches
	// (the hot boot working set; 0 means the whole image).
	UniqueBlocks int64
	// Jitter desynchronizes clients: each client's boot sequence starts at
	// its own offset into the image walk. 0 keeps all clients in lockstep
	// (the worst-case storm).
	Jitter bool
	Seed   int64
}

// DefaultBootStormSpec is a modest storm sized for tests and examples:
// 32 desktops booting a 256-block image.
func DefaultBootStormSpec() BootStormSpec {
	return BootStormSpec{
		Clients:        32,
		ImageBlocks:    256,
		ReadsPerClient: 128,
		UniqueBlocks:   128,
		Jitter:         true,
		Seed:           1,
	}
}

// Validate reports whether the spec is usable.
func (s BootStormSpec) Validate() error {
	if s.Clients < 1 || s.ImageBlocks < 1 || s.ReadsPerClient < 1 {
		return fmt.Errorf("workload: boot storm needs clients, image blocks, and reads per client >= 1: %+v", s)
	}
	if s.UniqueBlocks < 0 || s.UniqueBlocks > s.ImageBlocks {
		return fmt.Errorf("workload: unique blocks must be in [0,%d]: %+v", s.ImageBlocks, s)
	}
	return nil
}

// Fill returns the write op list that installs the golden image: one write
// per image block, with content ids drawn so that clone images share most
// blocks (boot images dedup hard in practice).
func (s BootStormSpec) Fill() ([]Op, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(s.Seed))
	// A quarter of the image blocks are distinct contents; the rest repeat
	// them, mirroring how OS images dedup.
	contents := int32(s.ImageBlocks/4 + 1)
	ops := make([]Op, s.ImageBlocks)
	for lba := int64(0); lba < s.ImageBlocks; lba++ {
		ops[lba] = Op{Kind: OpWrite, LBA: lba, Content: rng.Int31n(contents)}
	}
	return ops, nil
}

// Storm returns the boot-storm read stream: clients' boot sequences
// interleaved round-robin (the arrival order an array sees when every
// desktop powers on together). Each client walks the hot working set in
// image order, offset by its jitter. The result is a pure function of the
// spec.
func (s BootStormSpec) Storm() ([]int64, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	hot := s.UniqueBlocks
	if hot == 0 {
		hot = s.ImageBlocks
	}
	rng := rand.New(rand.NewSource(s.Seed + 1))
	offsets := make([]int64, s.Clients)
	for c := range offsets {
		if s.Jitter {
			offsets[c] = rng.Int63n(hot)
		}
	}
	lbas := make([]int64, 0, s.Clients*s.ReadsPerClient)
	for r := 0; r < s.ReadsPerClient; r++ {
		for c := 0; c < s.Clients; c++ {
			lbas = append(lbas, (offsets[c]+int64(r))%hot)
		}
	}
	return lbas, nil
}
