package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"inlinered/internal/serve"
)

// ReadBatchOptions tune a cluster batch read. Nothing here may affect the
// report.
type ReadBatchOptions struct {
	// Clients is the number of worker goroutines draining node batches
	// (0 means one per node). Wall clock only.
	Clients int
	// Sink receives every read's result during commit, keyed by the
	// read's position in the batch. Called concurrently; block aliases
	// internal buffers and is valid only for the duration of the call.
	Sink func(i int, block []byte, err error)
}

// NodeReadReport is one node's slice of a cluster batch read.
type NodeReadReport struct {
	Reads           int           `json:"reads"`
	Errors          int64         `json:"errors"`
	DecodedBlobs    int64         `json:"decoded_blobs"`
	DecodedParts    int64         `json:"decoded_parts"`
	CacheHits       int64         `json:"cache_hits"`
	CacheMisses     int64         `json:"cache_misses"`
	CacheAdmissions int64         `json:"cache_admissions"`
	CacheGhostHits  int64         `json:"cache_ghost_hits"`
	Elapsed         time.Duration `json:"elapsed_ns"`
}

// readScratch holds ReadBatch's reusable routing buffers. One batch owns
// it at a time (TryLock); a concurrent ReadBatch falls back to fresh
// allocations, so reuse never changes behavior — the serveScratch pattern.
type readScratch struct {
	mu     sync.Mutex
	queues [][]int64
	pos    [][]int
	reps   []*serve.ReadBatchReport
}

// ReadBatchReport summarizes one Cluster.ReadBatch run. Like the batch
// Serve report it excludes client counts, decode parallelism, and wall
// clocks: runs differing only in scheduling encode to identical bytes.
type ReadBatchReport struct {
	Nodes        int   `json:"nodes"`
	Reads        int   `json:"reads"`
	Errors       int64 `json:"errors"`
	Fallbacks    int64 `json:"fallbacks"` // reads served off-primary (stale primary copy)
	DecodedBlobs int64 `json:"decoded_blobs"`
	DecodedParts int64 `json:"decoded_parts"`

	// Chunk-cache accounting summed over nodes (deterministic: every
	// counter moves in the per-shard sequential plan phases).
	CacheHits       int64 `json:"cache_hits"`
	CacheMisses     int64 `json:"cache_misses"`
	CacheAdmissions int64 `json:"cache_admissions"`
	CacheGhostHits  int64 `json:"cache_ghost_hits"`

	Elapsed time.Duration    `json:"elapsed_ns"` // slowest node's virtual elapsed time
	PerNode []NodeReadReport `json:"per_node"`
}

// HitRate returns the batch's cache hit fraction over lookups (0 when the
// batch looked nothing up).
func (r *ReadBatchReport) HitRate() float64 {
	lookups := r.CacheHits + r.CacheMisses
	if lookups == 0 {
		return 0
	}
	return float64(r.CacheHits) / float64(lookups)
}

// ReadBatchReportSchema versions the cluster batch-read report envelope.
// v2 added the cache_* counters from the scan-resistant admission policy.
const ReadBatchReportSchema = "inlinered/cluster-readbatch-report/v2"

// JSON encodes the report as stable, indented JSON with a schema envelope.
func (r *ReadBatchReport) JSON() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	env := struct {
		Schema string           `json:"schema"`
		Report *ReadBatchReport `json:"report"`
	}{ReadBatchReportSchema, r}
	if err := enc.Encode(env); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// String renders a one-look summary.
func (r *ReadBatchReport) String() string {
	return fmt.Sprintf(
		"nodes=%d reads=%d errors=%d fallbacks=%d decoded blobs=%d parts=%d cache hits=%d/%d (%.1f%%) elapsed=%v",
		r.Nodes, r.Reads, r.Errors, r.Fallbacks, r.DecodedBlobs, r.DecodedParts,
		r.CacheHits, r.CacheHits+r.CacheMisses, 100*r.HitRate(),
		r.Elapsed.Round(time.Microsecond))
}

// Close releases every node array's decode worker pool (see
// serve.Array.Close). Idempotent; the cluster stays usable.
func (c *Cluster) Close() {
	c.mu.Lock()
	nodes := c.nodes
	c.mu.Unlock()
	for _, n := range nodes {
		n.arr.Close()
	}
}

// ReadBatch executes a batch of reads across the cluster: a sequential
// routing phase sends each read to its first non-stale replica (primary
// unless a diverged copy is known there), then workers drain whole
// per-node queues through serve.Array.ReadBatch — the three-stage
// plan/decode/commit split one level down.
//
// ReadBatch is the healthy-cluster fast path (the VDI boot storm: every
// desktop reading the golden image at once). Unlike batch Serve it
// consults no fault stream and performs no repairs — known-stale copies
// are routed around, not rewritten, and membership does not change
// mid-batch. Routing is sequential and each node's batch is deterministic,
// so the report is bit-identical for any Clients, Parallelism, or
// GOMAXPROCS.
func (c *Cluster) ReadBatch(lbas []int64, opt ReadBatchOptions) (*ReadBatchReport, error) {
	c.mu.Lock()
	for i, lba := range lbas {
		if lba < 0 || lba >= c.blocks {
			c.mu.Unlock()
			return nil, fmt.Errorf("cluster: read %d: lba %d outside [0,%d)", i, lba, c.blocks)
		}
	}
	nodes := c.nodes
	// Routing buffers come from the cluster scratch when it is free; the
	// queues keep their per-node capacities across batches, so routing a
	// steady storm allocates nothing.
	var queues [][]int64
	var pos [][]int
	var reps []*serve.ReadBatchReport
	scratch := c.rsc.mu.TryLock()
	if scratch {
		defer c.rsc.mu.Unlock()
		if cap(c.rsc.queues) < len(nodes) {
			c.rsc.queues = make([][]int64, len(nodes))
			c.rsc.pos = make([][]int, len(nodes))
			c.rsc.reps = make([]*serve.ReadBatchReport, len(nodes))
		}
		queues = c.rsc.queues[:len(nodes)]
		pos = c.rsc.pos[:len(nodes)]
		reps = c.rsc.reps[:len(nodes)]
		for n := range queues {
			queues[n] = queues[n][:0]
			pos[n] = pos[n][:0]
			reps[n] = nil
		}
	} else {
		queues = make([][]int64, len(nodes))
		pos = make([][]int, len(nodes))
		reps = make([]*serve.ReadBatchReport, len(nodes))
	}
	var fallbacks int64
	for i, lba := range lbas {
		owners := c.owners(lba)
		from := owners[0]
		for _, n := range owners {
			if !c.stale[stKey{n, lba}] {
				from = n
				break
			}
		}
		if from != owners[0] {
			fallbacks++
		}
		queues[from] = append(queues[from], lba)
		pos[from] = append(pos[from], i)
	}
	c.mu.Unlock()

	clients := opt.Clients
	if clients <= 0 {
		clients = len(nodes)
	}
	per := make([]NodeReadReport, len(nodes))
	var firstErr atomic.Value
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				n := int(next.Add(1)) - 1
				if n >= len(nodes) {
					return
				}
				if len(queues[n]) == 0 {
					continue
				}
				var sink func(k int, block []byte, err error)
				if opt.Sink != nil {
					p := pos[n]
					outer := opt.Sink
					sink = func(k int, block []byte, err error) { outer(p[k], block, err) }
				}
				rep, err := nodes[n].arr.ReadBatch(queues[n], serve.ReadBatchOptions{Sink: sink})
				if err != nil {
					firstErr.Store(err)
					return
				}
				reps[n] = rep
			}
		}()
	}
	wg.Wait()
	if err, _ := firstErr.Load().(error); err != nil {
		return nil, err
	}

	out := &ReadBatchReport{Nodes: len(nodes), Reads: len(lbas), Fallbacks: fallbacks, PerNode: per}
	for n, rep := range reps {
		if rep == nil {
			continue
		}
		per[n] = NodeReadReport{
			Reads:           rep.Reads,
			Errors:          rep.Errors,
			DecodedBlobs:    rep.DecodedBlobs,
			DecodedParts:    rep.DecodedParts,
			CacheHits:       rep.CacheHits,
			CacheMisses:     rep.CacheMisses,
			CacheAdmissions: rep.CacheAdmissions,
			CacheGhostHits:  rep.CacheGhostHits,
			Elapsed:         rep.Elapsed,
		}
		out.Errors += rep.Errors
		out.DecodedBlobs += rep.DecodedBlobs
		out.DecodedParts += rep.DecodedParts
		out.CacheHits += rep.CacheHits
		out.CacheMisses += rep.CacheMisses
		out.CacheAdmissions += rep.CacheAdmissions
		out.CacheGhostHits += rep.CacheGhostHits
		if rep.Elapsed > out.Elapsed {
			out.Elapsed = rep.Elapsed
		}
	}
	return out, nil
}
