// Package cluster is the replicated tier over serve.Array: N nodes, each a
// sharded array with its own virtual clock and fault streams, with LBA
// ranges placed on R of the N nodes by rendezvous hashing. Writes replicate
// to every live owner, reads prefer the primary and fall back to the next
// live replica, and a node that crashes mid-batch queues the mutations it
// missed and replays them — read-repair — when it rejoins.
//
// Determinism contract: the cluster parallelizes the WALL clock only, the
// same promise serve.Array makes one level down. A batch Serve call runs a
// single-threaded sequencing phase first — membership events (crash,
// rejoin), replica routing, divergence draws, and repair synthesis are all
// decided in op-index order from the node-level fault streams before any
// goroutine runs — and only then do workers drain whole per-node queues
// through serve.Array.Serve, which is itself deterministic. Merged cluster
// reports therefore compare bit-for-bit across client counts and
// GOMAXPROCS at a fixed seed, node count, replica count, and shard count.
//
// Failure model: single-failure, fail-stop. The NodeCrash stream is
// consulted once per sequenced op while all nodes are up; a crash picks a
// victim and a rejoin delay measured in op indexes (virtual time advances
// per node, so op index is the only cross-node notion of "when" that is
// schedule-independent). While a node is down its owned writes and trims
// are queued as dirty state; rejoin replays them — a write repair charges a
// read on the surviving source replica and a write on the rejoined node.
// ReplicaDivergence models an asynchronous replica silently dropping a
// write (the primary is synchronous and never diverges); a later read that
// prefers the stale replica detects and repairs it, and Scrub sweeps the
// full range for anything reads never touched. Every batch force-rejoins
// all down nodes at the end, so a Serve call always returns with the
// cluster healed (though possibly still stale — Scrub proves agreement).
//
// Repair payloads are synthesized from content ids, not copied bytes: the
// sequencing phase remembers the last content id written per LBA, so a
// repair is just another op in the rejoined node's queue and node queues
// stay independent — no cross-node data dependency at drain time, which is
// what keeps the execution phase embarrassingly parallel. This requires a
// stable ContentSeed across the batches of one cluster's lifetime.
package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"inlinered/internal/fault"
	"inlinered/internal/metrics"
	"inlinered/internal/obs"
	"inlinered/internal/serve"
	"inlinered/internal/sim"
	"inlinered/internal/volume"
	"inlinered/internal/workload"
)

// nodeSeedStride separates per-node device fault streams, the same trick
// serve uses per shard (with a distinct constant so node i / shard j
// streams never collide). Node 0 keeps the caller's seed, so a 1-node
// 1-replica cluster reproduces a raw serve.Array exactly.
const nodeSeedStride = 0x510E527FADE682D1

// Config describes a replicated cluster.
type Config struct {
	// Volume is the per-node volume configuration. Blocks is the CLUSTER's
	// logical capacity; every node's array spans the full LBA space (the
	// address maps are sparse, so unowned ranges cost nothing) and the
	// placement directory decides which nodes actually store each range.
	Volume volume.Config
	// Nodes is the node count (0 means 1).
	Nodes int
	// Replicas is the replication factor R: each LBA range lives on R
	// nodes (0 means 1). Must be <= Nodes.
	Replicas int
	// ShardsPerNode is each node's serve.Array shard count (0 means 1).
	ShardsPerNode int
	// Parallelism is each node array's decode worker count for the batch
	// read path (see serve.Config.Parallelism). Wall clock only — reports
	// are bit-identical for any value.
	Parallelism int
	// RangeBlocks is the placement granularity: consecutive runs of this
	// many LBAs share an owner set (0 means 64).
	RangeBlocks int64
	// NodeFaults drives the node-level streams (NodeCrash,
	// ReplicaDivergence, rejoin delays). Device-level kinds belong in
	// Volume.Faults; node kinds set here never touch the volumes.
	NodeFaults fault.Config
	// RejoinMinOps/RejoinMaxOps bound the crash-to-rejoin delay in
	// sequenced op indexes (0,0 means 50..200).
	RejoinMinOps int
	RejoinMaxOps int
	// Obs optionally records membership events (crash/rejoin/repair
	// instants) on a "cluster"/"membership" lane. The timeline is the
	// cumulative sequenced op index in microseconds — the cluster's only
	// schedule-independent notion of time.
	Obs *obs.Recorder
}

// node is one cluster member.
type node struct {
	arr *serve.Array
}

// stKey identifies a (node, LBA) replica copy known to be stale.
type stKey struct {
	node int
	lba  int64
}

// Cluster is the replicated front-end. The batch Serve path, the direct
// ops, Scrub, and AddNode are all safe for concurrent use (a cluster-wide
// mutex serializes metadata; per-node arrays lock independently), but only
// the batch path promises bit-identical reports.
type Cluster struct {
	cfg         Config
	blocks      int64
	rangeBlocks int64
	replicas    int

	mu    sync.Mutex
	nodes []*node
	dir   [][]int // owner set per range, primary first
	inj   *fault.Injector

	// Directory-plane truth, maintained by the sequencing phase and the
	// direct ops: last content id written per LBA (batch writes only),
	// mapped-ness, and known-stale replica copies.
	content map[int64]int32
	mapped  map[int64]bool
	stale   map[stKey]bool

	opBase int64 // cumulative sequenced ops, for the membership timeline

	// Batch read path's reusable routing buffers (see readScratch).
	rsc readScratch

	obs  *obs.Recorder
	lane obs.Lane
}

// New builds a cluster of cfg.Nodes independent arrays.
func New(cfg Config) (*Cluster, error) {
	nn := cfg.Nodes
	if nn == 0 {
		nn = 1
	}
	rr := cfg.Replicas
	if rr == 0 {
		rr = 1
	}
	if nn < 1 {
		return nil, fmt.Errorf("cluster: nodes must be >= 1, got %d", nn)
	}
	if rr < 1 || rr > nn {
		return nil, fmt.Errorf("cluster: replicas must be in [1,%d], got %d", nn, rr)
	}
	rb := cfg.RangeBlocks
	if rb == 0 {
		rb = 64
	}
	if rb < 1 {
		return nil, fmt.Errorf("cluster: range blocks must be >= 1, got %d", rb)
	}
	min, max := cfg.RejoinMinOps, cfg.RejoinMaxOps
	if min == 0 && max == 0 {
		min, max = 50, 200
	}
	if min < 1 || max < min {
		return nil, fmt.Errorf("cluster: rejoin delay bounds [%d,%d] invalid", min, max)
	}
	c := &Cluster{
		cfg:         cfg,
		blocks:      cfg.Volume.Blocks,
		rangeBlocks: rb,
		replicas:    rr,
		content:     make(map[int64]int32),
		mapped:      make(map[int64]bool),
		stale:       make(map[stKey]bool),
		obs:         cfg.Obs,
	}
	c.cfg.RejoinMinOps, c.cfg.RejoinMaxOps = min, max
	if cfg.NodeFaults.Enabled() {
		c.inj = fault.New(cfg.NodeFaults)
	}
	if c.obs != nil {
		c.lane = c.obs.Lane("cluster", "membership")
	}
	for i := 0; i < nn; i++ {
		n, err := c.newNode(i)
		if err != nil {
			return nil, err
		}
		c.nodes = append(c.nodes, n)
	}
	c.dir = c.buildDirectory(len(c.nodes))
	return c, nil
}

// newNode builds node id's array: the full cluster config with the device
// fault seed offset per node so each node injects from its own streams.
func (c *Cluster) newNode(id int) (*node, error) {
	sc := serve.Config{Volume: c.cfg.Volume, Shards: c.cfg.ShardsPerNode, Parallelism: c.cfg.Parallelism}
	sc.Volume.Faults.Seed += int64(id) * nodeSeedStride
	arr, err := serve.New(sc)
	if err != nil {
		return nil, fmt.Errorf("cluster: node %d: %w", id, err)
	}
	return &node{arr: arr}, nil
}

// mix64 is the SplitMix64 finalizer, the same mixer the fault package uses
// to split seeds.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// rendezvousScore ranks node n for range r. Highest-random-weight hashing:
// adding a node perturbs only the ranges the new node wins, so rebalancing
// moves the minimum number of ranges.
func rendezvousScore(r int, n int) uint64 {
	return mix64(uint64(r+1)*0x9e3779b97f4a7c15 ^ uint64(n+1)*0xbf58476d1ce4e5b9)
}

// buildDirectory computes the owner set (top-Replicas nodes by rendezvous
// score, primary first) for every placement range over nn nodes.
func (c *Cluster) buildDirectory(nn int) [][]int {
	ranges := int((c.blocks + c.rangeBlocks - 1) / c.rangeBlocks)
	dir := make([][]int, ranges)
	backing := make([]int, ranges*c.replicas)
	taken := make([]bool, nn)
	for r := range dir {
		owners := backing[r*c.replicas : (r+1)*c.replicas]
		for i := range taken {
			taken[i] = false
		}
		for k := 0; k < c.replicas; k++ {
			best, bestScore := -1, uint64(0)
			for n := 0; n < nn; n++ {
				if taken[n] {
					continue
				}
				if s := rendezvousScore(r, n); best < 0 || s > bestScore {
					best, bestScore = n, s
				}
			}
			owners[k] = best
			taken[best] = true
		}
		dir[r] = owners
	}
	return dir
}

// owners returns the owner set for an LBA, primary first. The returned
// slice aliases the directory; callers must not mutate it.
func (c *Cluster) owners(lba int64) []int {
	return c.dir[lba/c.rangeBlocks]
}

// Nodes returns the node count.
func (c *Cluster) Nodes() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.nodes)
}

// Replicas returns the replication factor.
func (c *Cluster) Replicas() int { return c.replicas }

// Blocks returns the cluster's logical capacity in blocks.
func (c *Cluster) Blocks() int64 { return c.blocks }

// Now returns the cluster's virtual clock: the slowest node's clock (nodes
// run concurrently in simulated time).
func (c *Cluster) Now() time.Duration {
	c.mu.Lock()
	nodes := c.nodes
	c.mu.Unlock()
	var now time.Duration
	for _, n := range nodes {
		if t := n.arr.Now(); t > now {
			now = t
		}
	}
	return now
}

// NodeStats returns each node's merged array stats, in node order.
func (c *Cluster) NodeStats() []volume.Stats {
	c.mu.Lock()
	nodes := c.nodes
	c.mu.Unlock()
	out := make([]volume.Stats, len(nodes))
	for i, n := range nodes {
		out[i] = n.arr.Stats()
	}
	return out
}

// Stats returns cluster-merged stats: counters summed across nodes, and
// latency summaries recomputed from the histograms merged across every
// node's shards (bucket merges are order-independent, so the result is
// deterministic for any enumeration).
func (c *Cluster) Stats() volume.Stats {
	c.mu.Lock()
	nodes := c.nodes
	c.mu.Unlock()
	var out volume.Stats
	var hw, hr, ht, hjf sim.Histogram
	for _, n := range nodes {
		out.AddCounters(n.arr.Stats())
		w, r, tr, jf := n.arr.MergedHistograms()
		hw.Merge(&w)
		hr.Merge(&r)
		ht.Merge(&tr)
		hjf.Merge(&jf)
	}
	out.WriteLat = hw.Summary()
	out.ReadLat = hr.Summary()
	out.TrimLat = ht.Summary()
	out.JournalFlushLat = hjf.Summary()
	return out
}

// instant records a membership event on the cluster lane at the cumulative
// sequenced op index (in microseconds) — called only from single-threaded
// sections, so the trace is deterministic.
func (c *Cluster) instant(name string, nodeID int, opIdx int) {
	if c.obs == nil {
		return
	}
	at := time.Duration(c.opBase+int64(opIdx)) * time.Microsecond
	c.obs.Instant(c.lane, fmt.Sprintf("%s-n%d", name, nodeID), at)
}

// FaultCounters tallies the degraded-mode work a batch performed.
type FaultCounters struct {
	// NodeCrashes / NodeRejoins count membership transitions (every crash
	// rejoins by end of batch, so these match in any completed report).
	NodeCrashes int64 `json:"node_crashes"`
	NodeRejoins int64 `json:"node_rejoins"`
	// ReadsFallback served from a non-primary replica because the primary
	// was down or stale-with-a-fresh-sibling; ReadsStale had no fresh live
	// replica and served possibly-old data; ReadsUnserved had no live
	// replica at all (impossible under the single-failure model with R>=2).
	ReadsFallback int64 `json:"reads_fallback"`
	ReadsStale    int64 `json:"reads_stale"`
	ReadsUnserved int64 `json:"reads_unserved"`
	// WritesQueued / TrimsQueued are mutations a down owner missed, queued
	// as dirty state for replay at rejoin.
	WritesQueued int64 `json:"writes_queued"`
	TrimsQueued  int64 `json:"trims_queued"`
	// Divergences are replica writes silently dropped by injection;
	// ReadRepairs are reads that detected a stale preferred replica and
	// repaired it inline.
	Divergences int64 `json:"divergences"`
	ReadRepairs int64 `json:"read_repairs"`
	// RepairWrites / RepairReads are the repair ops synthesized into node
	// queues: mutations replayed into a rejoined or stale replica, and the
	// charged source reads on a surviving replica.
	RepairWrites int64 `json:"repair_writes"`
	RepairReads  int64 `json:"repair_reads"`
}

// Total returns the sum of all counters.
func (f FaultCounters) Total() int64 {
	return f.NodeCrashes + f.NodeRejoins + f.ReadsFallback + f.ReadsStale +
		f.ReadsUnserved + f.WritesQueued + f.TrimsQueued + f.Divergences +
		f.ReadRepairs + f.RepairWrites + f.RepairReads
}

// RunOptions tune a batch Serve run. As with serve.RunOptions, only
// Clients affects the wall clock; nothing here besides the op list and the
// cluster's configuration may affect the report.
type RunOptions struct {
	// Clients is the number of workers draining node queues (0 means one
	// per node). Each node's array fans out further across its own shards.
	Clients int
	// ContentSeed derives write payloads from content ids. Keep it stable
	// across the batches of one cluster: repair payloads are re-derived
	// from remembered content ids, so changing the seed mid-life would
	// repair with different bytes than the original write stored.
	ContentSeed int64
	// Fill is the compressibility fill for payloads (0 means 0.5).
	Fill float64
	// CleanEvery runs each shard's cleaner every N ops on that shard.
	CleanEvery int
}

// Report summarizes a batch Serve run. Like serve.Report it excludes the
// client count and wall-clock measurements: two runs differing only in
// scheduling must encode to identical bytes.
type Report struct {
	Nodes    int   `json:"nodes"`
	Replicas int   `json:"replicas"`
	Ops      int   `json:"ops"` // client ops (repair ops are extra, counted in Faults)
	Writes   int64 `json:"writes"`
	Reads    int64 `json:"reads"`
	Trims    int64 `json:"trims"`
	// Errors sums per-op injected device faults across nodes.
	Errors int64 `json:"errors"`
	// Elapsed is the slowest node's virtual elapsed time for the batch.
	Elapsed time.Duration `json:"elapsed_ns"`
	Faults  FaultCounters `json:"faults"`
	// Merged is the cluster's lifetime merged stats (same cumulative
	// semantics as serve.Report.Merged).
	Merged  volume.Stats   `json:"merged"`
	PerNode []serve.Report `json:"per_node"`
}

// ReportSchema versions the cluster report envelope.
const ReportSchema = "inlinered/cluster-report/v1"

// JSON encodes the report as stable, indented JSON with a schema envelope.
func (r *Report) JSON() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	env := struct {
		Schema string  `json:"schema"`
		Report *Report `json:"report"`
	}{ReportSchema, r}
	if err := enc.Encode(env); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// String renders a one-look summary.
func (r *Report) String() string {
	return fmt.Sprintf(
		"nodes=%d replicas=%d ops=%d (w=%d r=%d t=%d) errors=%d elapsed=%v\n"+
			"  membership: crashes=%d rejoins=%d divergences=%d\n"+
			"  degraded: fallback-reads=%d stale-reads=%d unserved=%d queued w=%d t=%d\n"+
			"  repair: read-repairs=%d writes=%d reads=%d\n"+
			"  space: logical=%d stored=%d reduction=%.2fx dedup hits=%d",
		r.Nodes, r.Replicas, r.Ops, r.Writes, r.Reads, r.Trims, r.Errors,
		r.Elapsed.Round(time.Microsecond),
		r.Faults.NodeCrashes, r.Faults.NodeRejoins, r.Faults.Divergences,
		r.Faults.ReadsFallback, r.Faults.ReadsStale, r.Faults.ReadsUnserved,
		r.Faults.WritesQueued, r.Faults.TrimsQueued,
		r.Faults.ReadRepairs, r.Faults.RepairWrites, r.Faults.RepairReads,
		r.Merged.LogicalBytes, r.Merged.StoredBytes,
		r.Merged.ReductionRatio(), r.Merged.DedupHits)
}

// sequencer holds the batch sequencing phase's per-call state.
type sequencer struct {
	queues   [][]workload.Op
	down     []bool
	rejoinAt []int
	dirty    []map[int64]byte // per down node: lba -> 'W' or 'T'
	downCnt  int
	fc       FaultCounters
}

// Serve executes a batch of client operations across the cluster and
// returns the merged report.
//
// Phase 1 (single-threaded, under the cluster mutex): walk ops in index
// order, driving the membership schedule from the node fault streams and
// routing each op to the live owners — appending queued-mutation replays
// and read-repairs as extra ops in the affected nodes' queues. Phase 2:
// workers claim WHOLE node queues via an atomic counter and drain them
// through serve.Array.Serve, so scheduling decides only WHEN a node
// executes, never WHAT.
func (c *Cluster) Serve(ops []workload.Op, opt RunOptions) (*Report, error) {
	c.mu.Lock()
	nn := len(c.nodes)
	seq := &sequencer{
		queues:   make([][]workload.Op, nn),
		down:     make([]bool, nn),
		rejoinAt: make([]int, nn),
		dirty:    make([]map[int64]byte, nn),
	}
	for i, op := range ops {
		switch op.Kind {
		case workload.OpWrite, workload.OpRead, workload.OpTrim:
		default:
			c.mu.Unlock()
			return nil, fmt.Errorf("cluster: op %d: unknown kind %q", i, op.Kind)
		}
		if op.LBA < 0 || op.LBA >= c.blocks {
			c.mu.Unlock()
			return nil, fmt.Errorf("cluster: op %d: lba %d outside [0,%d)", i, op.LBA, c.blocks)
		}
		// Rejoins due at this index replay their dirty state first, so the
		// current op sees a healed owner set when the outage just ended.
		for n := 0; n < nn; n++ {
			if seq.down[n] && seq.rejoinAt[n] <= i {
				c.rejoin(seq, n, i)
			}
		}
		// Single-failure model: the crash stream is consulted once per op
		// while the cluster is whole, never during an outage — keeping the
		// stream's consult count a pure function of the op list.
		if seq.downCnt == 0 && c.inj.NodeCrashes() {
			victim := c.inj.CrashVictim(nn)
			seq.down[victim] = true
			seq.downCnt++
			seq.rejoinAt[victim] = i + c.inj.RejoinDelayOps(c.cfg.RejoinMinOps, c.cfg.RejoinMaxOps)
			seq.dirty[victim] = make(map[int64]byte)
			seq.fc.NodeCrashes++
			c.instant("node-crash", victim, i)
		}
		owners := c.owners(op.LBA)
		switch op.Kind {
		case workload.OpWrite:
			c.routeWrite(seq, op, owners)
		case workload.OpTrim:
			c.routeTrim(seq, op, owners)
		case workload.OpRead:
			c.routeRead(seq, op, owners)
		}
	}
	// A batch always ends whole: force-rejoin stragglers so the repair
	// debt is settled inside the report that incurred it.
	for n := 0; n < nn; n++ {
		if seq.down[n] {
			c.rejoin(seq, n, len(ops))
		}
	}
	c.opBase += int64(len(ops))
	fc := seq.fc
	nodes := c.nodes
	c.mu.Unlock()

	// Phase 2: drain node queues concurrently. Claiming whole queues keeps
	// each node's op order fixed; serve.Array.Serve is deterministic below.
	clients := opt.Clients
	if clients <= 0 {
		clients = nn
	}
	nodeOpt := serve.RunOptions{
		Clients:     c.cfg.ShardsPerNode,
		ContentSeed: opt.ContentSeed,
		Fill:        opt.Fill,
		CleanEvery:  opt.CleanEvery,
	}
	per := make([]serve.Report, nn)
	errs := make([]error, nn)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= nn {
					return
				}
				serveStart := metrics.Clock()
				rep, err := nodes[i].arr.Serve(seq.queues[i], nodeOpt)
				metrics.ClusterNodeServe.ObserveSince(serveStart)
				if err != nil {
					errs[i] = err
					continue
				}
				per[i] = *rep
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("cluster: node %d: %w", i, err)
		}
	}

	rep := &Report{Nodes: nn, Replicas: c.replicas, Ops: len(ops), Faults: fc, PerNode: per}
	for i := range per {
		rep.Errors += per[i].Errors
		if per[i].Elapsed > rep.Elapsed {
			rep.Elapsed = per[i].Elapsed
		}
	}
	for _, op := range ops {
		switch op.Kind {
		case workload.OpWrite:
			rep.Writes++
		case workload.OpRead:
			rep.Reads++
		case workload.OpTrim:
			rep.Trims++
		}
	}
	rep.Merged = c.Stats()
	return rep, nil
}

// rejoin replays node n's dirty state (in ascending LBA order, so the
// replay sequence is deterministic) and marks it live again. Caller holds
// the cluster mutex.
func (c *Cluster) rejoin(seq *sequencer, n int, opIdx int) {
	replayStart := metrics.Clock()
	defer metrics.ClusterReplay.ObserveSince(replayStart)
	lbas := make([]int64, 0, len(seq.dirty[n]))
	for lba := range seq.dirty[n] {
		lbas = append(lbas, lba)
	}
	sort.Slice(lbas, func(i, j int) bool { return lbas[i] < lbas[j] })
	for _, lba := range lbas {
		switch seq.dirty[n][lba] {
		case 'T':
			seq.queues[n] = append(seq.queues[n], workload.Op{Kind: workload.OpTrim, LBA: lba})
			seq.fc.RepairWrites++
		case 'W':
			content, ok := c.content[lba]
			if !ok {
				continue
			}
			seq.queues[n] = append(seq.queues[n], workload.Op{Kind: workload.OpWrite, LBA: lba, Content: content})
			seq.fc.RepairWrites++
			delete(c.stale, stKey{n, lba})
			// Charge the source read on the first surviving owner: a real
			// repair streams the block from a live replica.
			for _, src := range c.owners(lba) {
				if src != n && !seq.down[src] {
					seq.queues[src] = append(seq.queues[src], workload.Op{Kind: workload.OpRead, LBA: lba})
					seq.fc.RepairReads++
					break
				}
			}
		}
	}
	seq.dirty[n] = nil
	seq.down[n] = false
	seq.downCnt--
	seq.fc.NodeRejoins++
	c.instant("node-rejoin", n, opIdx)
}

// routeWrite replicates a write to every owner: down owners queue it as
// dirty, a live non-primary may silently diverge (dropped by injection),
// everyone else gets the op. Caller holds the cluster mutex.
func (c *Cluster) routeWrite(seq *sequencer, op workload.Op, owners []int) {
	c.content[op.LBA] = op.Content
	c.mapped[op.LBA] = true
	for j, n := range owners {
		if seq.down[n] {
			seq.dirty[n][op.LBA] = 'W'
			seq.fc.WritesQueued++
			continue
		}
		// The primary commits synchronously and never diverges; replica
		// divergence models an async copy dropping the update.
		if j > 0 && c.inj.ReplicaDiverges() {
			c.stale[stKey{n, op.LBA}] = true
			seq.fc.Divergences++
			continue
		}
		delete(c.stale, stKey{n, op.LBA})
		seq.queues[n] = append(seq.queues[n], op)
	}
}

// routeTrim replicates a trim. Trims never diverge (metadata ops ack
// synchronously on every replica); a down owner queues the unmap for
// replay. Caller holds the cluster mutex.
func (c *Cluster) routeTrim(seq *sequencer, op workload.Op, owners []int) {
	delete(c.content, op.LBA)
	delete(c.mapped, op.LBA)
	for _, n := range owners {
		// The trim supersedes any missed write, so staleness clears even
		// on a down owner (its replayed trim restores agreement).
		delete(c.stale, stKey{n, op.LBA})
		if seq.down[n] {
			seq.dirty[n][op.LBA] = 'T'
			seq.fc.TrimsQueued++
			continue
		}
		seq.queues[n] = append(seq.queues[n], op)
	}
}

// routeRead picks the serving replica — the primary when live, else the
// first live replica (a fallback read) — and read-repairs every live stale
// copy of the LBA it touches: the read compares live replica versions and
// rewrites a diverged copy from the authoritative content. A repair aimed
// at the serving replica is enqueued BEFORE the read on the same node
// queue, so the read returns fresh data. Caller holds the cluster mutex.
func (c *Cluster) routeRead(seq *sequencer, op workload.Op, owners []int) {
	serveAt, serveIdx := -1, -1
	for j, n := range owners {
		if seq.down[n] {
			continue
		}
		if serveAt < 0 {
			serveAt, serveIdx = n, j
		}
		if c.stale[stKey{n, op.LBA}] {
			if content, ok := c.content[op.LBA]; ok {
				seq.queues[n] = append(seq.queues[n],
					workload.Op{Kind: workload.OpWrite, LBA: op.LBA, Content: content})
				seq.fc.ReadRepairs++
				seq.fc.RepairWrites++
				delete(c.stale, stKey{n, op.LBA})
			} else if n == serveAt {
				// Content not reconstructible (shouldn't happen: direct
				// writes and trims clear staleness); serve degraded.
				seq.fc.ReadsStale++
			}
		}
	}
	if serveAt < 0 {
		// No live owner. Unreachable under the single-failure model with
		// R >= 2; counted so the acceptance test can assert zero.
		seq.fc.ReadsUnserved++
		return
	}
	if serveIdx > 0 {
		seq.fc.ReadsFallback++
	}
	seq.queues[serveAt] = append(seq.queues[serveAt], op)
}

// Write stores one block on every owner synchronously (membership only
// changes inside a batch, so all owners are live here). Returns the
// slowest replica's latency — a replicated write completes when its last
// copy does.
func (c *Cluster) Write(lba int64, data []byte) (time.Duration, error) {
	c.mu.Lock()
	if lba < 0 || lba >= c.blocks {
		c.mu.Unlock()
		return 0, fmt.Errorf("cluster: lba %d outside [0,%d)", lba, c.blocks)
	}
	owners := c.owners(lba)
	nodes := c.nodes
	c.mapped[lba] = true
	// Direct writes carry raw bytes, not content ids; drop any stale
	// content-id memory so a later repair never resurrects old bytes.
	delete(c.content, lba)
	for _, n := range owners {
		delete(c.stale, stKey{n, lba})
	}
	c.mu.Unlock()
	var worst time.Duration
	var firstErr error
	for _, n := range owners {
		lat, err := nodes[n].arr.Write(lba, data)
		if lat > worst {
			worst = lat
		}
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return worst, firstErr
}

// Read fetches one block from the primary replica (zeros when unmapped).
func (c *Cluster) Read(lba int64) ([]byte, time.Duration, error) {
	c.mu.Lock()
	if lba < 0 || lba >= c.blocks {
		c.mu.Unlock()
		return nil, 0, fmt.Errorf("cluster: lba %d outside [0,%d)", lba, c.blocks)
	}
	owners := c.owners(lba)
	from := owners[0]
	for _, n := range owners {
		if !c.stale[stKey{n, lba}] {
			from = n
			break
		}
	}
	nodes := c.nodes
	c.mu.Unlock()
	return nodes[from].arr.Read(lba)
}

// Trim unmaps one block on every owner.
func (c *Cluster) Trim(lba int64) (time.Duration, error) {
	c.mu.Lock()
	if lba < 0 || lba >= c.blocks {
		c.mu.Unlock()
		return 0, fmt.Errorf("cluster: lba %d outside [0,%d)", lba, c.blocks)
	}
	owners := c.owners(lba)
	nodes := c.nodes
	delete(c.content, lba)
	delete(c.mapped, lba)
	for _, n := range owners {
		delete(c.stale, stKey{n, lba})
	}
	c.mu.Unlock()
	var worst time.Duration
	var firstErr error
	for _, n := range owners {
		lat, err := nodes[n].arr.Trim(lba)
		if lat > worst {
			worst = lat
		}
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return worst, firstErr
}

// ScrubReport summarizes a full-range replica-agreement sweep.
type ScrubReport struct {
	Blocks     int64 `json:"blocks"`     // LBAs scanned
	Compared   int64 `json:"compared"`   // replica copies compared against the primary
	Mismatched int64 `json:"mismatched"` // copies that disagreed
	Repaired   int64 `json:"repaired"`   // copies rewritten or trimmed back into agreement
	Errors     int64 `json:"errors"`     // injected device faults hit during the sweep
}

// Scrub sweeps the full LBA range comparing every replica copy against its
// primary (the authoritative copy) and repairing disagreements — rewriting
// the primary's bytes into a divergent replica, or trimming a replica that
// holds data the primary unmapped. It is sequential and consults no fault
// stream of its own, so a scrub is deterministic given the cluster state.
func (c *Cluster) Scrub() (*ScrubReport, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	rep := &ScrubReport{Blocks: c.blocks}
	for lba := int64(0); lba < c.blocks; lba++ {
		owners := c.owners(lba)
		want, _, err := c.nodes[owners[0]].arr.Read(lba)
		if err != nil {
			rep.Errors++
			continue
		}
		for _, n := range owners[1:] {
			got, _, err := c.nodes[n].arr.Read(lba)
			if err != nil {
				rep.Errors++
				continue
			}
			rep.Compared++
			if bytes.Equal(got, want) {
				continue
			}
			rep.Mismatched++
			if c.mapped[lba] {
				_, err = c.nodes[n].arr.Write(lba, want)
			} else {
				_, err = c.nodes[n].arr.Trim(lba)
			}
			if err != nil {
				rep.Errors++
				continue
			}
			rep.Repaired++
			delete(c.stale, stKey{n, lba})
		}
	}
	return rep, nil
}

// RebalanceReport summarizes a membership-change migration.
type RebalanceReport struct {
	Node          int   `json:"node"`   // id of the node that joined
	Ranges        int   `json:"ranges"` // total placement ranges
	RangesMoved   int   `json:"ranges_moved"`
	BlocksCopied  int64 `json:"blocks_copied"`
	BlocksTrimmed int64 `json:"blocks_trimmed"`
}

// AddNode grows the cluster by one node and migrates the ranges whose
// rendezvous owner set changed: mapped blocks are copied from the old
// primary to newly-added owners and trimmed from displaced ones.
// Rendezvous hashing guarantees only ranges the new node wins move, so the
// migration is minimal. Must not run concurrently with Serve.
func (c *Cluster) AddNode() (*RebalanceReport, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	id := len(c.nodes)
	n, err := c.newNode(id)
	if err != nil {
		return nil, err
	}
	c.nodes = append(c.nodes, n)
	oldDir := c.dir
	c.dir = c.buildDirectory(len(c.nodes))
	rep := &RebalanceReport{Node: id, Ranges: len(c.dir)}
	for r := range c.dir {
		oldOwners, newOwners := oldDir[r], c.dir[r]
		if ownersEqual(oldOwners, newOwners) {
			continue
		}
		rep.RangesMoved++
		added := ownersDiff(newOwners, oldOwners)
		removed := ownersDiff(oldOwners, newOwners)
		lo := int64(r) * c.rangeBlocks
		hi := lo + c.rangeBlocks
		if hi > c.blocks {
			hi = c.blocks
		}
		for lba := lo; lba < hi; lba++ {
			if !c.mapped[lba] {
				continue
			}
			if len(added) > 0 {
				data, _, err := c.nodes[oldOwners[0]].arr.Read(lba)
				if err != nil {
					return rep, fmt.Errorf("cluster: migrate lba %d: %w", lba, err)
				}
				for _, a := range added {
					if _, err := c.nodes[a].arr.Write(lba, data); err != nil {
						return rep, fmt.Errorf("cluster: migrate lba %d to node %d: %w", lba, a, err)
					}
					rep.BlocksCopied++
				}
			}
			for _, rm := range removed {
				if _, err := c.nodes[rm].arr.Trim(lba); err != nil {
					return rep, fmt.Errorf("cluster: evict lba %d from node %d: %w", lba, rm, err)
				}
				rep.BlocksTrimmed++
				delete(c.stale, stKey{rm, lba})
			}
		}
	}
	return rep, nil
}

// ownersEqual reports whether two owner slices match element-wise.
func ownersEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ownersDiff returns the members of a not present in b, in a's order.
func ownersDiff(a, b []int) []int {
	var out []int
	for _, x := range a {
		found := false
		for _, y := range b {
			if x == y {
				found = true
				break
			}
		}
		if !found {
			out = append(out, x)
		}
	}
	return out
}
