package cluster

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from the current output")

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s: output changed; run with -update if intentional.\ngot:\n%s\nwant:\n%s", name, got, want)
	}
}

// TestClusterReportGolden locks both encodings of the cluster report —
// the stable JSON envelope and the String summary — for a fixed recovery
// run with crashes, rejoins, divergence, and repairs all firing. Any
// change to the report format or to the membership/repair schedule must
// update the golden files deliberately.
func TestClusterReportGolden(t *testing.T) {
	cfg := testConfig(3, 2, 0.004, 0.05)
	_, rep, js := runCluster(t, cfg, testOps(t, 2000), 4)

	// The golden run must actually exercise the recovery machinery —
	// a quiet report would lock in nothing worth locking.
	fc := rep.Faults
	if fc.NodeCrashes == 0 || fc.NodeRejoins == 0 || fc.Divergences == 0 ||
		fc.RepairWrites == 0 || fc.ReadsFallback == 0 {
		t.Fatalf("golden run too quiet: %+v", fc)
	}

	checkGolden(t, "cluster_report.json", js)
	checkGolden(t, "cluster_report.txt", []byte(rep.String()+"\n"))
}
