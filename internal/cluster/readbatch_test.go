package cluster

import (
	"bytes"
	"testing"

	"inlinered/internal/workload"
)

// stormCluster builds a fault-free cluster (device and node streams off,
// so the batch read path sees a clean healthy-cluster boot storm) with the
// golden image installed.
func stormCluster(t *testing.T, parallelism int) (*Cluster, []int64) {
	t.Helper()
	vc := testVolume()
	vc.Faults.Rates.SSDWriteTransient = 0
	vc.Faults.Rates.SSDReadTransient = 0
	vc.Faults.Rates.SSDLatencySpike = 0
	vc.Faults.Rates.JournalTorn = 0
	vc.CacheBytes = 1 << 20
	vc.SubBlocks = 4
	c, err := New(Config{
		Volume:        vc,
		Nodes:         3,
		Replicas:      2,
		ShardsPerNode: 2,
		Parallelism:   parallelism,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	spec := workload.DefaultBootStormSpec()
	fill, err := spec.Fill()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Serve(fill, RunOptions{}); err != nil {
		t.Fatal(err)
	}
	lbas, err := spec.Storm()
	if err != nil {
		t.Fatal(err)
	}
	return c, lbas
}

// TestClusterReadBatchMatchesDirect: batch bytes must equal the direct
// Read path's for every request in the storm.
func TestClusterReadBatchMatchesDirect(t *testing.T) {
	c, lbas := stormCluster(t, 2)
	ref, _ := stormCluster(t, 2)
	want := make([][]byte, len(lbas))
	for i, lba := range lbas {
		data, _, err := ref.Read(lba)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = data
	}
	got := make([][]byte, len(lbas))
	rep, err := c.ReadBatch(lbas, ReadBatchOptions{Sink: func(i int, block []byte, err error) {
		if err != nil {
			t.Errorf("read %d: %v", i, err)
		}
		got[i] = append([]byte(nil), block...)
	}})
	if err != nil {
		t.Fatal(err)
	}
	for i := range lbas {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("read %d (lba %d): batch bytes diverge from direct reads", i, lbas[i])
		}
	}
	if rep.Reads != len(lbas) || rep.Errors != 0 || rep.Fallbacks != 0 {
		t.Fatalf("healthy-cluster report: %+v", rep)
	}
	if rep.DecodedParts <= rep.DecodedBlobs {
		t.Fatalf("sub-block fan-out missing: %d parts over %d blobs", rep.DecodedParts, rep.DecodedBlobs)
	}
}

// TestClusterReadBatchDeterminism: reports encode identically across
// client counts and decode parallelism.
func TestClusterReadBatchDeterminism(t *testing.T) {
	var ref []byte
	for _, par := range []int{1, 4} {
		for _, clients := range []int{1, 3} {
			c, lbas := stormCluster(t, par)
			rep, err := c.ReadBatch(lbas, ReadBatchOptions{Clients: clients})
			if err != nil {
				t.Fatal(err)
			}
			js, err := rep.JSON()
			if err != nil {
				t.Fatal(err)
			}
			if ref == nil {
				ref = js
			} else if !bytes.Equal(js, ref) {
				t.Fatalf("parallelism=%d clients=%d: cluster batch report diverged:\n%s\nwant:\n%s",
					par, clients, js, ref)
			}
		}
	}
}

// TestClusterReadBatchReadMostly: the read-mostly preset's reads replay
// through the cluster batch path without errors after a mixed Serve pass.
func TestClusterReadBatchReadMostly(t *testing.T) {
	c, _ := stormCluster(t, 2)
	ops, err := workload.ClosedLoop(workload.ReadMostlySpec(400, 256, 9))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Serve(ops, RunOptions{}); err != nil {
		t.Fatal(err)
	}
	lbas := make([]int64, 0, len(ops))
	for _, op := range ops {
		if op.Kind == workload.OpRead {
			lbas = append(lbas, op.LBA)
		}
	}
	rep, err := c.ReadBatch(lbas, ReadBatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("read-mostly replay errors: %d", rep.Errors)
	}
	if rep.Reads != len(lbas) {
		t.Fatalf("reads %d, want %d", rep.Reads, len(lbas))
	}
}

// TestClusterReadBatchValidation: an out-of-range LBA fails the whole
// batch.
func TestClusterReadBatchValidation(t *testing.T) {
	c, _ := stormCluster(t, 1)
	if _, err := c.ReadBatch([]int64{0, c.Blocks()}, ReadBatchOptions{}); err == nil {
		t.Fatal("out-of-range lba accepted")
	}
}
