package cluster

import (
	"bytes"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"inlinered/internal/fault"
	"inlinered/internal/serve"
	"inlinered/internal/volume"
	"inlinered/internal/workload"
)

// faultSeeds returns the node-fault seeds to sweep: the FAULT_SEEDS
// environment variable (comma-separated, set by the CI cluster-recovery
// matrix) or a fixed default.
func faultSeeds(t *testing.T) []int64 {
	env := os.Getenv("FAULT_SEEDS")
	if env == "" {
		return []int64{1, 1337}
	}
	var seeds []int64
	for _, f := range strings.Split(env, ",") {
		s, err := strconv.ParseInt(strings.TrimSpace(f), 10, 64)
		if err != nil {
			t.Fatalf("FAULT_SEEDS: %v", err)
		}
		seeds = append(seeds, s)
	}
	return seeds
}

// testVolume is the per-node volume fixture: small enough for fast tests,
// with device faults armed so determinism covers the injected streams too.
func testVolume() volume.Config {
	vc := volume.DefaultConfig()
	vc.Blocks = 1024
	vc.SSD.BlocksPerChannel = 128
	vc.SegmentBytes = 1 << 20
	vc.CacheBytes = 0
	vc.Index.BinBits = 4
	vc.Index.BufferEntries = 4
	vc.Faults = fault.Config{Seed: 42, Rates: fault.Rates{
		SSDWriteTransient: 0.05,
		SSDReadTransient:  0.05,
		SSDLatencySpike:   0.02,
		JournalTorn:       0.05,
	}}
	return vc
}

// testConfig arms node-level faults: crashes at a rate that fires several
// times over the test workload, with divergence configurable per test.
func testConfig(nodes, replicas int, crashRate, divergenceRate float64) Config {
	return Config{
		Volume:        testVolume(),
		Nodes:         nodes,
		Replicas:      replicas,
		ShardsPerNode: 2,
		RangeBlocks:   32,
		NodeFaults: fault.Config{
			Seed:  1337,
			Rates: fault.NodeUniform(crashRate, divergenceRate),
		},
		RejoinMinOps: 40,
		RejoinMaxOps: 120,
	}
}

// testOps is the read-mostly recovery workload: outages are dominated by
// reads that must come from a fallback replica.
func testOps(t *testing.T, ops int) []workload.Op {
	t.Helper()
	list, err := workload.ClosedLoop(workload.ReadMostlySpec(ops, 1024, 3))
	if err != nil {
		t.Fatal(err)
	}
	return list
}

func runCluster(t *testing.T, cfg Config, ops []workload.Op, clients int) (*Cluster, *Report, []byte) {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Serve(ops, RunOptions{Clients: clients, ContentSeed: 9, CleanEvery: 100})
	if err != nil {
		t.Fatal(err)
	}
	js, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return c, rep, js
}

// TestClusterCrashRejoinDeterminism is the tentpole acceptance test: with
// NodeCrash faults armed at a fixed seed, a closed-loop run over 3 nodes
// with R=2 produces bit-identical merged cluster reports for any client
// count and any GOMAXPROCS; every read during an outage is served from a
// surviving replica (zero unserved at divergence rate 0); and post-rejoin
// repair restores replica agreement, verified by a full-range scrub.
func TestClusterCrashRejoinDeterminism(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	cfg := testConfig(3, 2, 0.004, 0)
	ops := testOps(t, 3000)

	var wantJS []byte
	var last *Cluster
	var lastRep *Report
	for _, clients := range []int{1, 4, 16} {
		for _, procs := range []int{1, runtime.NumCPU()} {
			runtime.GOMAXPROCS(procs)
			c, rep, js := runCluster(t, cfg, ops, clients)
			if wantJS == nil {
				wantJS = js
			} else if !bytes.Equal(js, wantJS) {
				t.Fatalf("clients=%d procs=%d: report differs from baseline", clients, procs)
			}
			last, lastRep = c, rep
		}
	}

	fc := lastRep.Faults
	if fc.NodeCrashes == 0 {
		t.Fatal("crash rate never fired; the test exercised nothing")
	}
	if fc.NodeRejoins != fc.NodeCrashes {
		t.Fatalf("rejoins %d != crashes %d: a batch must end whole", fc.NodeRejoins, fc.NodeCrashes)
	}
	if fc.ReadsFallback == 0 {
		t.Fatal("no reads served from a fallback replica during outages")
	}
	if fc.ReadsUnserved != 0 {
		t.Fatalf("%d reads unserved: data loss under single failure with R=2", fc.ReadsUnserved)
	}
	if fc.WritesQueued == 0 || fc.RepairWrites == 0 {
		t.Fatalf("no queued mutations or repairs despite %d crashes: %+v", fc.NodeCrashes, fc)
	}

	// Post-rejoin agreement: every replica copy matches its primary.
	scrub, err := last.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if scrub.Mismatched != 0 {
		t.Fatalf("scrub found %d divergent copies after rejoin repair: %+v", scrub.Mismatched, scrub)
	}
	if scrub.Compared == 0 {
		t.Fatal("scrub compared nothing")
	}
}

// TestClusterSeedSweep re-runs the recovery contract across the CI fault
// matrix: for every swept node-fault seed, crashes and divergences fire on
// a different schedule, yet the merged report stays client-count
// independent, no outage read goes unserved, and two scrub passes restore
// full replica agreement.
func TestClusterSeedSweep(t *testing.T) {
	for _, seed := range faultSeeds(t) {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			cfg := testConfig(3, 2, 0.004, 0.05)
			cfg.NodeFaults.Seed = seed
			ops := testOps(t, 2000)
			_, _, one := runCluster(t, cfg, ops, 1)
			c, rep, many := runCluster(t, cfg, ops, 8)
			if !bytes.Equal(one, many) {
				t.Fatal("report depends on client count")
			}
			if rep.Faults.ReadsUnserved != 0 {
				t.Fatalf("%d reads unserved under single failure with R=2", rep.Faults.ReadsUnserved)
			}
			if _, err := c.Scrub(); err != nil {
				t.Fatal(err)
			}
			scrub, err := c.Scrub()
			if err != nil {
				t.Fatal(err)
			}
			if scrub.Mismatched != 0 {
				t.Fatalf("seed %d: %d divergent copies survive scrub", seed, scrub.Mismatched)
			}
		})
	}
}

// TestClusterSingleNodeMatchesServe: a 1-node, 1-replica cluster is
// bit-identical to a bare serve.Array with the same config — node 0 keeps
// the caller's fault seed and the cluster layer adds no overhead to the
// virtual clock.
func TestClusterSingleNodeMatchesServe(t *testing.T) {
	ops := testOps(t, 1500)
	opt := RunOptions{ContentSeed: 9, CleanEvery: 100}

	c, err := New(Config{Volume: testVolume(), Nodes: 1, Replicas: 1, ShardsPerNode: 2})
	if err != nil {
		t.Fatal(err)
	}
	crep, err := c.Serve(ops, opt)
	if err != nil {
		t.Fatal(err)
	}

	a, err := serve.New(serve.Config{Volume: testVolume(), Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	srep, err := a.Serve(ops, serve.RunOptions{
		Clients: 2, ContentSeed: opt.ContentSeed, CleanEvery: opt.CleanEvery})
	if err != nil {
		t.Fatal(err)
	}

	cjs, err := crep.PerNode[0].JSON()
	if err != nil {
		t.Fatal(err)
	}
	sjs, err := srep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cjs, sjs) {
		t.Fatalf("1-node cluster diverged from bare array:\ncluster: %s\narray: %s", cjs, sjs)
	}
	if crep.Elapsed != srep.Elapsed || crep.Errors != srep.Errors {
		t.Fatalf("summary fields diverged: cluster(%v,%d) array(%v,%d)",
			crep.Elapsed, crep.Errors, srep.Elapsed, srep.Errors)
	}
	if crep.Faults.Total() != 0 {
		t.Fatalf("faultless single-node run recorded degraded work: %+v", crep.Faults)
	}
}

// TestClusterDivergenceReadRepair: with replica divergence armed, reads
// detect stale copies and repair them inline, and a scrub sweep mops up
// whatever reads never touched — a second scrub must find full agreement.
func TestClusterDivergenceReadRepair(t *testing.T) {
	cfg := testConfig(3, 2, 0, 0.2)
	c, rep, _ := runCluster(t, cfg, testOps(t, 2000), 3)

	if rep.Faults.Divergences == 0 {
		t.Fatal("divergence rate never fired")
	}
	if rep.Faults.ReadRepairs == 0 {
		t.Fatal("reads never repaired a stale replica")
	}
	if rep.Faults.NodeCrashes != 0 {
		t.Fatalf("crash fired with rate 0: %+v", rep.Faults)
	}

	first, err := c.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if first.Repaired != first.Mismatched {
		t.Fatalf("scrub left mismatches unrepaired: %+v", first)
	}
	second, err := c.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if second.Mismatched != 0 {
		t.Fatalf("second scrub still found %d divergent copies", second.Mismatched)
	}
}

// TestClusterRebalance: adding a node moves only the ranges the new node
// wins (rendezvous placement), data survives the migration byte-for-byte,
// and the grown cluster is in full replica agreement.
func TestClusterRebalance(t *testing.T) {
	cfg := testConfig(3, 2, 0, 0)
	cfg.NodeFaults = fault.Config{}
	c, _, _ := runCluster(t, cfg, testOps(t, 1000), 3)

	// Snapshot a spread of blocks before the membership change.
	before := make(map[int64][]byte)
	for lba := int64(0); lba < c.Blocks(); lba += 37 {
		data, _, err := c.Read(lba)
		if err != nil {
			t.Fatal(err)
		}
		before[lba] = bytes.Clone(data)
	}

	reb, err := c.AddNode()
	if err != nil {
		t.Fatal(err)
	}
	if c.Nodes() != 4 {
		t.Fatalf("nodes = %d after AddNode, want 4", c.Nodes())
	}
	if reb.RangesMoved == 0 || reb.BlocksCopied == 0 {
		t.Fatalf("rebalance moved nothing: %+v", reb)
	}
	if reb.RangesMoved == reb.Ranges {
		t.Fatalf("rebalance moved every range (%d): not minimal", reb.RangesMoved)
	}

	for lba, want := range before {
		got, _, err := c.Read(lba)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("lba %d changed across rebalance", lba)
		}
	}
	scrub, err := c.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if scrub.Mismatched != 0 {
		t.Fatalf("replica disagreement after rebalance: %+v", scrub)
	}

	// The new directory must still place every range on R distinct nodes.
	for r, owners := range c.dir {
		if len(owners) != c.Replicas() {
			t.Fatalf("range %d has %d owners", r, len(owners))
		}
		seen := map[int]bool{}
		for _, n := range owners {
			if n < 0 || n >= c.Nodes() || seen[n] {
				t.Fatalf("range %d owner set invalid: %v", r, owners)
			}
			seen[n] = true
		}
	}
}

// TestClusterDirectOps: the direct replicated path round-trips data,
// places copies on every owner, and trims all of them.
func TestClusterDirectOps(t *testing.T) {
	cfg := testConfig(3, 2, 0, 0)
	cfg.NodeFaults = fault.Config{}
	cfg.Volume.Faults = fault.Config{}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0xAB}, int(cfg.Volume.BlockSize))
	const lba = 129
	if _, err := c.Write(lba, payload); err != nil {
		t.Fatal(err)
	}
	got, _, err := c.Read(lba)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("direct read returned different bytes")
	}
	for _, n := range c.owners(lba) {
		copyGot, _, err := c.nodes[n].arr.Read(lba)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(copyGot, payload) {
			t.Fatalf("replica on node %d disagrees after direct write", n)
		}
	}
	if _, err := c.Trim(lba); err != nil {
		t.Fatal(err)
	}
	got, _, err = c.Read(lba)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range got {
		if b != 0 {
			t.Fatal("read after trim returned nonzero data")
		}
	}
}

// TestClusterValidation: bad configurations and bad ops are rejected.
func TestClusterValidation(t *testing.T) {
	base := func() Config {
		cfg := testConfig(3, 2, 0, 0)
		cfg.NodeFaults = fault.Config{}
		return cfg
	}
	bad := []func(*Config){
		func(c *Config) { c.Nodes = -1 },
		func(c *Config) { c.Replicas = 4 }, // > nodes
		func(c *Config) { c.Replicas = -1 },
		func(c *Config) { c.RangeBlocks = -5 },
		func(c *Config) { c.RejoinMinOps = 10; c.RejoinMaxOps = 5 },
		func(c *Config) { c.Volume.Blocks = 0 },
	}
	for i, mut := range bad {
		cfg := base()
		mut(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}

	c, err := New(base())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Serve([]workload.Op{{Kind: 'X', LBA: 0}}, RunOptions{}); err == nil {
		t.Error("unknown op kind accepted")
	}
	if _, err := c.Serve([]workload.Op{{Kind: workload.OpRead, LBA: 1 << 40}}, RunOptions{}); err == nil {
		t.Error("out-of-range lba accepted")
	}
	if _, err := c.Write(-1, nil); err == nil {
		t.Error("direct write to negative lba accepted")
	}
	if _, _, err := c.Read(c.Blocks()); err == nil {
		t.Error("direct read past capacity accepted")
	}
	if _, err := c.Trim(c.Blocks()); err == nil {
		t.Error("direct trim past capacity accepted")
	}
}

// TestClusterServesAcrossBatches: dirty/stale bookkeeping carries across
// Serve calls — a second batch on the same cluster stays deterministic and
// scrubs clean.
func TestClusterServesAcrossBatches(t *testing.T) {
	run := func() ([]byte, *ScrubReport) {
		cfg := testConfig(3, 2, 0.004, 0.05)
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		opt := RunOptions{Clients: 4, ContentSeed: 9, CleanEvery: 100}
		if _, err := c.Serve(testOps(t, 1200), opt); err != nil {
			t.Fatal(err)
		}
		rep, err := c.Serve(testOps(t, 1200), opt)
		if err != nil {
			t.Fatal(err)
		}
		js, err := rep.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Scrub(); err != nil {
			t.Fatal(err)
		}
		scrub, err := c.Scrub()
		if err != nil {
			t.Fatal(err)
		}
		return js, scrub
	}
	a, scrubA := run()
	b, scrubB := run()
	if !bytes.Equal(a, b) {
		t.Fatal("second-batch reports differ across identical runs")
	}
	if scrubA.Mismatched != 0 || fmt.Sprintf("%+v", scrubA) != fmt.Sprintf("%+v", scrubB) {
		t.Fatalf("post-batch scrub not clean/deterministic: %+v vs %+v", scrubA, scrubB)
	}
}
