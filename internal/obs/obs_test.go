package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestNilRecorder checks every method is a no-op on a nil recorder and that
// the nil trace is still valid JSON.
func TestNilRecorder(t *testing.T) {
	var r *Recorder
	l := r.Lane("cpu", "t0")
	if l.Valid() {
		t.Fatalf("nil recorder returned a valid lane")
	}
	r.Span(l, "work", 0, time.Millisecond)
	r.SpanN(l, "work", 0, time.Millisecond, "bytes", 4096)
	r.Instant(l, "fault", time.Millisecond)
	if r.Events() != 0 || r.Spans() != 0 {
		t.Fatalf("nil recorder counted events")
	}
	var buf bytes.Buffer
	if err := r.WriteTrace(&buf); err != nil {
		t.Fatalf("WriteTrace on nil recorder: %v", err)
	}
	var doc map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("nil trace is not valid JSON: %v\n%s", err, buf.String())
	}
}

// TestZeroLaneDropped checks recording on the zero Lane of a live recorder
// is dropped rather than attributed to a bogus pid/tid.
func TestZeroLaneDropped(t *testing.T) {
	r := NewRecorder()
	r.Span(Lane{}, "work", 0, time.Millisecond)
	r.Instant(Lane{}, "fault", 0)
	if r.Events() != 0 {
		t.Fatalf("zero-lane events were recorded: %d", r.Events())
	}
}

func record(r *Recorder) {
	cpu0 := r.Lane("cpu", "t0")
	cpu1 := r.Lane("cpu", "t1")
	gpu := r.Lane("gpu", "kernels")
	pcie := r.Lane("gpu", "pcie")
	r.Span(cpu0, "chunk+hash", 0, 2*time.Microsecond)
	r.SpanN(pcie, "h2d", time.Microsecond, 3*time.Microsecond, "bytes", 1<<20)
	r.SpanN(gpu, "lz-batch", 3*time.Microsecond, 9*time.Microsecond, "items", 64)
	r.Span(cpu1, "post-process", 9*time.Microsecond+500*time.Nanosecond, 11*time.Microsecond)
	r.Instant(cpu0, "write-error", 5*time.Microsecond)
}

// TestTraceDeterministicAndValid locks the two core properties: identical
// recordings yield identical bytes, and the output parses as Chrome
// trace-event JSON with the expected event count and lane metadata.
func TestTraceDeterministicAndValid(t *testing.T) {
	a, b := NewRecorder(), NewRecorder()
	record(a)
	record(b)
	var ba, bb bytes.Buffer
	if err := a.WriteTrace(&ba); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteTrace(&bb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ba.Bytes(), bb.Bytes()) {
		t.Fatalf("identical recordings produced different trace bytes")
	}

	var doc struct {
		TraceEvents []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal(ba.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, ba.String())
	}
	var spans, instants, meta int
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "X":
			spans++
		case "i":
			instants++
		case "M":
			meta++
		}
	}
	if spans != 4 || instants != 1 {
		t.Fatalf("got %d spans, %d instants; want 4, 1", spans, instants)
	}
	// 2 processes + 4 threads of metadata.
	if meta != 6 {
		t.Fatalf("got %d metadata events, want 6", meta)
	}
	if a.Events() != 5 || a.Spans() != 4 {
		t.Fatalf("Events=%d Spans=%d, want 5, 4", a.Events(), a.Spans())
	}
	// Sub-microsecond timestamps survive with nanosecond precision.
	if !strings.Contains(ba.String(), `"ts":9.500`) {
		t.Fatalf("nanosecond-precision timestamp missing:\n%s", ba.String())
	}
}

// TestLaneIdentity checks lanes are stable across repeated registration and
// distinct across names.
func TestLaneIdentity(t *testing.T) {
	r := NewRecorder()
	a := r.Lane("ssd", "ch0")
	b := r.Lane("ssd", "ch1")
	c := r.Lane("ssd", "ch0")
	if a != c {
		t.Fatalf("re-registering a lane minted a new identity: %v vs %v", a, c)
	}
	if a == b {
		t.Fatalf("distinct threads share a lane")
	}
	if n := r.Events(); n != 0 {
		t.Fatalf("registration counted as events: %d", n)
	}
}

// TestSpanClamp checks inverted spans clamp to zero length instead of
// rendering negative durations.
func TestSpanClamp(t *testing.T) {
	r := NewRecorder()
	l := r.Lane("cpu", "t0")
	r.Span(l, "x", 5*time.Microsecond, 3*time.Microsecond)
	var buf bytes.Buffer
	if err := r.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"dur":0.000`) {
		t.Fatalf("inverted span not clamped:\n%s", buf.String())
	}
}
