// Package obs is the observability layer for the virtual-time pipeline: a
// nil-safe span/event recorder whose timestamps come from the simulation's
// virtual clock, exported as Chrome trace-event JSON (viewable in Perfetto
// or chrome://tracing).
//
// Design rules, shared with the rest of the repository's determinism
// contract:
//
//   - All recording happens on the sequential virtual-time commit path —
//     never inside the wall-clock worker pool — so for a fixed seed the
//     recorded byte stream is bit-identical for any Config.Parallelism.
//   - A nil *Recorder is a valid recorder: every method no-ops, costs one
//     nil check, and leaves the run bit-identical to a build without
//     observability.
//   - Lanes map one-to-one onto simulated resources (a CPU hardware thread,
//     the GPU command queue, the PCIe link, an SSD channel), so spans on one
//     lane never overlap and the trace renders the schedule the paper's
//     figures describe: dedup-before-compression overlap on the CPU threads,
//     kernels and DMAs interleaving on the GPU, journal writes riding the
//     SSD channels between destage traffic.
//
// The trace encoder is hand-rolled over ordered fields (no maps), so the
// output bytes are a pure function of the recorded events.
package obs

import (
	"bufio"
	"io"
	"strconv"
	"time"
)

// Lane is a handle to one timeline: a (process, thread) pair in the Chrome
// trace model, standing for one simulated resource. The zero Lane is
// inert — spans recorded on it are dropped — so callers may hold lanes
// unconditionally and only register them when a recorder is attached.
type Lane struct {
	pid, tid int32
}

// Valid reports whether the lane was registered on a recorder.
func (l Lane) Valid() bool { return l.pid != 0 }

// event is one recorded trace event. ph follows the Chrome trace-event
// phases: 'X' complete span, 'i' instant; 'P' and 'T' are internal markers
// for process/thread metadata emitted at registration time.
type event struct {
	ph       byte
	pid, tid int32
	ts, dur  time.Duration
	name     string
	argKey   string
	argVal   int64
	hasArg   bool
}

// Recorder accumulates virtual-time spans and instants. The zero value via
// NewRecorder is ready to use; a nil *Recorder no-ops every method. Not safe
// for concurrent use — recording is driven from the sequential simulation
// path by design.
type Recorder struct {
	procs   map[string]int32 // process name -> pid
	lanes   map[string]Lane  // "process\x00thread" -> registered lane
	nextTID map[int32]int32  // pid -> last assigned tid
	events  []event
	spans   int64
	instant int64
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{
		procs:   make(map[string]int32),
		lanes:   make(map[string]Lane),
		nextTID: make(map[int32]int32),
	}
}

// Lane registers (or retrieves) the lane for one simulated resource, named
// by a process group (e.g. "cpu", "gpu", "ssd") and a thread within it
// (e.g. "t3", "ch0", "pcie"). Process and thread ids are assigned in first-
// registration order, so a deterministic registration sequence yields a
// deterministic trace. On a nil recorder it returns the inert zero Lane.
func (r *Recorder) Lane(process, thread string) Lane {
	if r == nil {
		return Lane{}
	}
	key := process + "\x00" + thread
	if l, ok := r.lanes[key]; ok {
		return l
	}
	pid, ok := r.procs[process]
	if !ok {
		pid = int32(len(r.procs) + 1)
		r.procs[process] = pid
		r.events = append(r.events, event{ph: 'P', pid: pid, name: process})
	}
	tid := r.nextTID[pid] + 1
	r.nextTID[pid] = tid
	l := Lane{pid: pid, tid: tid}
	r.lanes[key] = l
	r.events = append(r.events, event{ph: 'T', pid: pid, tid: tid, name: thread})
	return l
}

// Span records a complete span [start, end] on a lane. Zero-length spans
// are kept (they mark scheduling decisions); spans on the zero Lane or a
// nil recorder are dropped.
func (r *Recorder) Span(l Lane, name string, start, end time.Duration) {
	if r == nil || !l.Valid() {
		return
	}
	if end < start {
		end = start
	}
	r.events = append(r.events, event{ph: 'X', pid: l.pid, tid: l.tid, ts: start, dur: end - start, name: name})
	r.spans++
}

// SpanN records a span with one integer argument (e.g. bytes moved, pages
// programmed, kernel items) shown in the trace viewer's detail pane.
func (r *Recorder) SpanN(l Lane, name string, start, end time.Duration, argKey string, argVal int64) {
	if r == nil || !l.Valid() {
		return
	}
	if end < start {
		end = start
	}
	r.events = append(r.events, event{
		ph: 'X', pid: l.pid, tid: l.tid, ts: start, dur: end - start,
		name: name, argKey: argKey, argVal: argVal, hasArg: true,
	})
	r.spans++
}

// Instant records a point event (e.g. an injected fault firing) on a lane.
func (r *Recorder) Instant(l Lane, name string, at time.Duration) {
	if r == nil || !l.Valid() {
		return
	}
	r.events = append(r.events, event{ph: 'i', pid: l.pid, tid: l.tid, ts: at, name: name})
	r.instant++
}

// Spans reports the number of recorded spans.
func (r *Recorder) Spans() int64 {
	if r == nil {
		return 0
	}
	return r.spans
}

// Events reports the number of recorded span and instant events (metadata
// excluded).
func (r *Recorder) Events() int64 {
	if r == nil {
		return 0
	}
	return r.spans + r.instant
}

// WriteTrace writes the recorded events as Chrome trace-event JSON (the
// object form, one event per line). Timestamps are virtual microseconds
// with nanosecond precision. The byte stream is a pure function of the
// recorded events: two runs that record the same events produce identical
// files. A nil recorder writes an empty, valid trace.
func (r *Recorder) WriteTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	if r != nil {
		first := true
		var buf []byte
		for _, ev := range r.events {
			if !first {
				bw.WriteString(",\n")
			}
			first = false
			buf = appendEvent(buf[:0], ev)
			if _, err := bw.Write(buf); err != nil {
				return err
			}
		}
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// appendEvent renders one event as a single JSON object with a fixed field
// order.
func appendEvent(b []byte, ev event) []byte {
	switch ev.ph {
	case 'P':
		b = append(b, `{"ph":"M","pid":`...)
		b = strconv.AppendInt(b, int64(ev.pid), 10)
		b = append(b, `,"tid":0,"name":"process_name","args":{"name":`...)
		b = strconv.AppendQuote(b, ev.name)
		b = append(b, `}}`...)
	case 'T':
		b = append(b, `{"ph":"M","pid":`...)
		b = strconv.AppendInt(b, int64(ev.pid), 10)
		b = append(b, `,"tid":`...)
		b = strconv.AppendInt(b, int64(ev.tid), 10)
		b = append(b, `,"name":"thread_name","args":{"name":`...)
		b = strconv.AppendQuote(b, ev.name)
		b = append(b, `}}`...)
	case 'X':
		b = append(b, `{"ph":"X","pid":`...)
		b = strconv.AppendInt(b, int64(ev.pid), 10)
		b = append(b, `,"tid":`...)
		b = strconv.AppendInt(b, int64(ev.tid), 10)
		b = append(b, `,"ts":`...)
		b = appendMicros(b, ev.ts)
		b = append(b, `,"dur":`...)
		b = appendMicros(b, ev.dur)
		b = append(b, `,"name":`...)
		b = strconv.AppendQuote(b, ev.name)
		if ev.hasArg {
			b = append(b, `,"args":{`...)
			b = strconv.AppendQuote(b, ev.argKey)
			b = append(b, ':')
			b = strconv.AppendInt(b, ev.argVal, 10)
			b = append(b, '}')
		}
		b = append(b, '}')
	case 'i':
		b = append(b, `{"ph":"i","pid":`...)
		b = strconv.AppendInt(b, int64(ev.pid), 10)
		b = append(b, `,"tid":`...)
		b = strconv.AppendInt(b, int64(ev.tid), 10)
		b = append(b, `,"ts":`...)
		b = appendMicros(b, ev.ts)
		b = append(b, `,"s":"t","name":`...)
		b = strconv.AppendQuote(b, ev.name)
		b = append(b, '}')
	}
	return b
}

// appendMicros renders a virtual duration as decimal microseconds with
// exactly three fractional digits (nanosecond precision), using integer
// arithmetic only.
func appendMicros(b []byte, d time.Duration) []byte {
	if d < 0 {
		d = 0
	}
	us := int64(d) / 1000
	ns := int64(d) % 1000
	b = strconv.AppendInt(b, us, 10)
	b = append(b, '.')
	b = append(b, byte('0'+ns/100), byte('0'+(ns/10)%10), byte('0'+ns%10))
	return b
}
