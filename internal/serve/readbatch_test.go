package serve

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"

	"inlinered/internal/volume"
	"inlinered/internal/workload"
)

func batchConfig(shards, parallelism int) Config {
	vc := volume.DefaultConfig()
	vc.Blocks = 4096
	vc.SSD.BlocksPerChannel = 128
	vc.SegmentBytes = 1 << 20
	vc.SubBlocks = 4
	return Config{Volume: vc, Shards: shards, Parallelism: parallelism}
}

// storm builds a filled array plus the boot-storm read stream.
func storm(t *testing.T, cfg Config) (*Array, []int64) {
	t.Helper()
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(a.Close)
	spec := workload.DefaultBootStormSpec()
	fill, err := spec.Fill()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Serve(fill, RunOptions{}); err != nil {
		t.Fatal(err)
	}
	lbas, err := spec.Storm()
	if err != nil {
		t.Fatal(err)
	}
	return a, lbas
}

// TestReadBatchMatchesSerialReads: the batch path must return the same
// bytes as per-read Array.Read calls, and its report must agree with the
// per-shard virtual clocks.
func TestReadBatchMatchesSerialReads(t *testing.T) {
	a, lbas := storm(t, batchConfig(4, 2))
	want := make([][]byte, len(lbas))
	ref, _ := storm(t, batchConfig(4, 2))
	for i, lba := range lbas {
		data, _, err := ref.Read(lba)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = data
	}
	got := make([][]byte, len(lbas))
	rep, err := a.ReadBatch(lbas, ReadBatchOptions{Sink: func(i int, block []byte, err error) {
		if err != nil {
			t.Errorf("read %d: %v", i, err)
		}
		got[i] = append([]byte(nil), block...)
	}})
	if err != nil {
		t.Fatal(err)
	}
	for i := range lbas {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("read %d (lba %d): batch bytes diverge from serial", i, lbas[i])
		}
	}
	if rep.Reads != len(lbas) || rep.Errors != 0 {
		t.Fatalf("report: %+v", rep)
	}
	if rep.DecodedParts <= rep.DecodedBlobs {
		t.Fatalf("sub-block fan-out missing: %d parts over %d blobs", rep.DecodedParts, rep.DecodedBlobs)
	}
	if rep.Elapsed <= 0 {
		t.Fatal("batch must consume virtual time")
	}
}

// TestReadBatchDeterminism: reports must encode to identical bytes across
// client counts, decode parallelism, and GOMAXPROCS — the read-path
// determinism matrix CI runs.
func TestReadBatchDeterminism(t *testing.T) {
	var ref []byte
	for _, procs := range []int{1, runtime.NumCPU()} {
		prev := runtime.GOMAXPROCS(procs)
		for _, clients := range []int{1, 2, 8} {
			for _, par := range []int{1, 4} {
				a, lbas := storm(t, batchConfig(4, par))
				rep, err := a.ReadBatch(lbas, ReadBatchOptions{Clients: clients})
				if err != nil {
					t.Fatal(err)
				}
				js, err := rep.JSON()
				if err != nil {
					t.Fatal(err)
				}
				if ref == nil {
					ref = js
				} else if !bytes.Equal(js, ref) {
					t.Fatalf("procs=%d clients=%d parallelism=%d: report diverged:\n%s\nwant:\n%s",
						procs, clients, par, js, ref)
				}
			}
		}
		runtime.GOMAXPROCS(prev)
	}
}

// TestReadBatchShardEquivalence: a 1-shard array's batch must be
// bit-identical to the raw volume's own ReadBatch (the serve tier adds
// routing, not accounting).
func TestReadBatchShardEquivalence(t *testing.T) {
	cfg := batchConfig(1, 1)
	a, lbas := storm(t, cfg)
	v, err := volume.New(cfg.Volume)
	if err != nil {
		t.Fatal(err)
	}
	spec := workload.DefaultBootStormSpec()
	fill, _ := spec.Fill()
	var payload []byte
	for _, op := range fill {
		payload = workload.UniqueChunkInto(payload[:0], 0, op.Content, cfg.Volume.BlockSize, 0.5)
		if _, err := v.Write(op.LBA, payload); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := a.ReadBatch(lbas, ReadBatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := v.ReadBatch(nil, lbas, nil)
	if err != nil {
		t.Fatal(err)
	}
	if b.Errors() != int(rep.Errors) {
		t.Fatalf("errors diverge: %d vs %d", b.Errors(), rep.Errors)
	}
	if v.Now() != rep.PerShard[0].Now {
		t.Fatalf("1-shard array clock %v, raw volume %v", rep.PerShard[0].Now, v.Now())
	}
	if int64(b.DecodedBlobs()) != rep.DecodedBlobs || int64(b.DecodedParts()) != rep.DecodedParts {
		t.Fatalf("decode counters diverge: (%d,%d) vs (%d,%d)",
			b.DecodedBlobs(), b.DecodedParts(), rep.DecodedBlobs, rep.DecodedParts)
	}
}

// TestReadBatchReadMostlyPreset: the read-mostly closed-loop preset drives
// a mixed Serve pass, then its reads replay through the batch path —
// the batch must agree with the shard clocks advanced by exactly those
// reads, for any parallelism.
func TestReadBatchReadMostlyPreset(t *testing.T) {
	ops, err := workload.ClosedLoop(workload.ReadMostlySpec(500, 512, 7))
	if err != nil {
		t.Fatal(err)
	}
	lbas := ReadOps(ops)
	if len(lbas) < 400 {
		t.Fatalf("read-mostly preset produced only %d reads", len(lbas))
	}
	var ref []byte
	for _, par := range []int{1, 4} {
		cfg := batchConfig(4, par)
		a, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(a.Close)
		// Fill with the preset's write prefix so reads mostly hit mapped
		// blocks.
		if _, err := a.Serve(ops[:512], RunOptions{}); err != nil {
			t.Fatal(err)
		}
		rep, err := a.ReadBatch(lbas, ReadBatchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		js, err := rep.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = js
		} else if !bytes.Equal(js, ref) {
			t.Fatalf("parallelism=%d: read-mostly batch report diverged", par)
		}
	}
}

// TestReadBatchValidation: an out-of-range LBA fails the whole batch
// before any shard state changes.
func TestReadBatchValidation(t *testing.T) {
	a, _ := storm(t, batchConfig(2, 1))
	before := a.Stats()
	if _, err := a.ReadBatch([]int64{0, a.Blocks()}, ReadBatchOptions{}); err == nil {
		t.Fatal("out-of-range lba accepted")
	}
	if a.Stats() != before {
		t.Fatal("failed validation mutated shard state")
	}
}

func BenchmarkServeReadBatch(b *testing.B) {
	for _, par := range []int{1, 4} {
		b.Run(fmt.Sprintf("parallelism=%d", par), func(b *testing.B) {
			cfg := batchConfig(4, par)
			a, err := New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer a.Close()
			spec := workload.DefaultBootStormSpec()
			fill, _ := spec.Fill()
			if _, err := a.Serve(fill, RunOptions{}); err != nil {
				b.Fatal(err)
			}
			lbas, _ := spec.Storm()
			b.SetBytes(int64(len(lbas)) * int64(cfg.Volume.BlockSize))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := a.ReadBatch(lbas, ReadBatchOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestCacheAdmissionDeterminism: with an undersized cache under storm
// pressure — the regime where the admission policy makes every kind of
// decision (evictions, ghost hits, victim comparisons) — reports must
// still encode to identical bytes for any decode parallelism and
// GOMAXPROCS. Admission runs entirely in the sequential plan phase, so
// cache state is a pure function of the op order.
func TestCacheAdmissionDeterminism(t *testing.T) {
	spec := workload.DefaultBootStormSpec()
	var ref []byte
	var refStats volume.Stats
	for _, procs := range []int{1, 4} {
		prev := runtime.GOMAXPROCS(procs)
		for _, par := range []int{0, 1, 4, 8} {
			cfg := batchConfig(4, par)
			// A quarter of the image's unique content: small enough that the
			// storm evicts constantly.
			cfg.Volume.CacheBytes = int64(spec.ImageBlocks) * int64(cfg.Volume.BlockSize) / 16
			a, lbas := storm(t, cfg)
			var rep *ReadBatchReport
			var err error
			for pass := 0; pass < 3; pass++ {
				rep, err = a.ReadBatch(lbas, ReadBatchOptions{})
				if err != nil {
					t.Fatal(err)
				}
			}
			js, err := rep.JSON()
			if err != nil {
				t.Fatal(err)
			}
			st := a.Stats()
			if ref == nil {
				ref = js
				refStats = st
				if rep.CacheHits == 0 || rep.CacheMisses == 0 || st.CacheAdmissions == 0 {
					t.Fatalf("sweep must exercise the policy: %+v", rep)
				}
			} else {
				if !bytes.Equal(js, ref) {
					t.Fatalf("procs=%d parallelism=%d: report diverged:\n%s\nwant:\n%s", procs, par, js, ref)
				}
				if st.CacheHits != refStats.CacheHits || st.CacheMisses != refStats.CacheMisses ||
					st.CacheAdmissions != refStats.CacheAdmissions || st.CacheGhostHits != refStats.CacheGhostHits {
					t.Fatalf("procs=%d parallelism=%d: cache counters diverged: %+v vs %+v", procs, par, st, refStats)
				}
			}
		}
		runtime.GOMAXPROCS(prev)
	}
}

// TestBootStormWarmPassHitsCache: with a cache a quarter the size of the
// image's unique content, repeated storm passes must settle into a real
// hit rate — the pure-LRU cache this policy replaced measured ~0 here
// (each pass's scan evicted everything the previous pass cached).
func TestBootStormWarmPassHitsCache(t *testing.T) {
	spec := workload.DefaultBootStormSpec()
	cfg := batchConfig(4, 2)
	cfg.Volume.CacheBytes = int64(spec.ImageBlocks) * int64(cfg.Volume.BlockSize) / 16
	a, lbas := storm(t, cfg)
	cold, err := a.ReadBatch(lbas, ReadBatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var warm *ReadBatchReport
	for pass := 0; pass < 2; pass++ {
		warm, err = a.ReadBatch(lbas, ReadBatchOptions{})
		if err != nil {
			t.Fatal(err)
		}
	}
	if warm.CacheHits == 0 {
		t.Fatalf("warm storm pass hit nothing: cold=%v warm=%v", cold, warm)
	}
	if warm.HitRate() <= cold.HitRate() {
		t.Fatalf("warm pass hit rate %.3f must beat the cold pass's %.3f",
			warm.HitRate(), cold.HitRate())
	}
	if warm.HitRate() < 0.05 {
		t.Fatalf("warm pass hit rate %.3f below the boot-storm floor", warm.HitRate())
	}
	// The counters must reconcile: every read either hit, missed, or was
	// unmapped (and the storm reads only mapped blocks).
	if warm.CacheHits+warm.CacheMisses != int64(warm.Reads) {
		t.Fatalf("hits %d + misses %d != reads %d", warm.CacheHits, warm.CacheMisses, warm.Reads)
	}
}
