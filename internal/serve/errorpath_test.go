package serve

import (
	"bytes"
	"fmt"
	"testing"

	"inlinered/internal/fault"
	"inlinered/internal/volume"
	"inlinered/internal/workload"
)

// armShard swaps a fresh drive-level injector into one shard mid-run, the
// serve-layer analogue of the volume error-path tests' armFaults: build
// clean state first, then fault specific operations.
func armShard(a *Array, i int, cfg fault.Config) {
	a.shards[i].v.Drive().SetFaultInjector(fault.New(cfg))
}

func disarmShard(a *Array, i int) {
	a.shards[i].v.Drive().SetFaultInjector(nil)
}

// dirtyArray builds a faultless array whose shards hold half-garbage
// segments, so Clean has real moving to do on every shard.
func dirtyArray(t *testing.T, shards int) *Array {
	t.Helper()
	cfg := testConfig(shards)
	cfg.Volume.Faults = fault.Config{}
	cfg.Volume.Compress = false // raw blobs: predictable sizes, many per segment
	cfg.Volume.SegmentBytes = 128 << 10
	cfg.Volume.CleanThreshold = 0.3
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, cfg.Volume.BlockSize)
	const n = 512
	for i := 0; i < n; i++ {
		for b := range payload {
			payload[b] = byte(i + b)
		}
		if _, err := a.Write(int64(i), payload); err != nil {
			t.Fatal(err)
		}
	}
	// Trim every other SHARD-LOCAL block (lba/shards is the local address),
	// so every shard ends up half garbage regardless of the shard count.
	for i := 0; i < n; i++ {
		if (i/shards)%2 == 0 {
			if _, err := a.Trim(int64(i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	return a
}

// TestArrayCleanFirstErrorPropagation locks the Clean contract at the
// array layer: one shard dying on a permanent write fault surfaces the
// error, but every OTHER shard still cleans (the error is collected, not
// short-circuited), the failing shard's spent drive time commits to the
// clock, and the merged garbage accounting stays sane.
func TestArrayCleanFirstErrorPropagation(t *testing.T) {
	a := dirtyArray(t, 4)
	armShard(a, 1, fault.Config{Seed: 2, Rates: fault.Rates{SSDWritePermanent: 1}})
	now := a.Now()

	cleaned, err := a.Clean()
	if err == nil {
		t.Fatal("permanent write faults on shard 1 must surface from Clean")
	}
	if cleaned == 0 {
		t.Fatal("error on one shard starved the others: nothing cleaned")
	}
	if got := a.Now(); got <= now {
		t.Fatalf("failed clean's drive time vanished: now=%v, was %v", got, now)
	}
	st := a.Stats()
	if st.GarbageBytes < 0 {
		t.Fatalf("GarbageBytes went negative: %d", st.GarbageBytes)
	}
	if st.CleanRuns == 0 {
		t.Fatal("clean runs not counted across shards")
	}

	// Recovery: disarm and clean to completion; surviving data intact.
	disarmShard(a, 1)
	if _, err := a.Clean(); err != nil {
		t.Fatalf("clean after disarm: %v", err)
	}
	payload := make([]byte, a.cfg.Volume.BlockSize)
	for i := 0; i < 512; i++ {
		if (i/4)%2 == 0 {
			continue // trimmed by dirtyArray
		}
		for b := range payload {
			payload[b] = byte(i + b)
		}
		got, _, err := a.Read(int64(i))
		if err != nil {
			t.Fatalf("lba %d after recovery: %v", i, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("lba %d corrupted by interrupted cleaning", i)
		}
	}
}

// TestArrayTrimErrorPath: trims reject out-of-range LBAs, succeed on
// unmapped blocks, and — under aggressive injected faults on every shard —
// still count exactly once in the merged stats and histograms with a
// monotone clock (the error-path accounting contract, one layer up).
func TestArrayTrimErrorPath(t *testing.T) {
	a := dirtyArray(t, 4)
	if _, err := a.Trim(-1); err == nil {
		t.Fatal("negative lba accepted")
	}
	if _, err := a.Trim(a.Blocks()); err == nil {
		t.Fatal("lba past capacity accepted")
	}
	for i := range a.shards {
		armShard(a, i, fault.Config{Seed: int64(i), Rates: fault.Rates{
			SSDWriteTransient: 0.3,
			SSDReadTransient:  0.3,
			SSDWritePermanent: 0.05,
		}})
	}
	before := a.Stats()
	last := a.Now()
	var trims int64
	for lba := int64(0); lba < 256; lba++ { // half mapped, half already trimmed
		if _, err := a.Trim(lba); err != nil {
			t.Fatalf("trim lba %d under faults: %v", lba, err)
		}
		trims++
		if now := a.Now(); now < last {
			t.Fatalf("clock went backwards at trim %d", lba)
		} else {
			last = now
		}
	}
	st := a.Stats()
	if st.Trims != before.Trims+trims {
		t.Fatalf("trims drifted: %d, want %d", st.Trims, before.Trims+trims)
	}
	if st.TrimLat.Count != before.TrimLat.Count+trims {
		t.Fatalf("trim histogram drifted: %d, want %d", st.TrimLat.Count, before.TrimLat.Count+trims)
	}
	if st.GarbageBytes < 0 {
		t.Fatalf("GarbageBytes went negative: %d", st.GarbageBytes)
	}
}

// TestServeCountsFaultedOps: a batch whose reads all exhaust their
// transient retries reports every failure in Errors — and the failed ops
// still commit to the clock, the stats, and the histograms exactly once.
func TestServeCountsFaultedOps(t *testing.T) {
	cfg := testConfig(2)
	cfg.Volume.Faults = fault.Config{}
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Map some blocks first (unmapped reads never touch media, so they
	// cannot fault).
	fill := make([]workload.Op, 64)
	for i := range fill {
		fill[i] = workload.Op{Kind: workload.OpWrite, LBA: int64(i), Content: int32(i)}
	}
	if _, err := a.Serve(fill, RunOptions{ContentSeed: 9}); err != nil {
		t.Fatal(err)
	}
	for i := range a.shards {
		armShard(a, i, fault.Config{Seed: int64(i), Rates: fault.Rates{SSDReadTransient: 1}})
	}
	before := a.Stats()
	reads := make([]workload.Op, 64)
	for i := range reads {
		reads[i] = workload.Op{Kind: workload.OpRead, LBA: int64(i)}
	}
	rep, err := a.Serve(reads, RunOptions{ContentSeed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != int64(len(reads)) {
		t.Fatalf("errors = %d, want %d (every mapped read must exhaust retries)", rep.Errors, len(reads))
	}
	if rep.Elapsed <= 0 {
		t.Fatal("failed reads consumed no virtual time")
	}
	st := a.Stats()
	if st.Reads != before.Reads+int64(len(reads)) {
		t.Fatalf("failed reads not counted: %d, want %d", st.Reads, before.Reads+int64(len(reads)))
	}
	if st.ReadLat.Count != before.ReadLat.Count+int64(len(reads)) {
		t.Fatalf("failed reads invisible in histogram: %d, want %d",
			st.ReadLat.Count, before.ReadLat.Count+int64(len(reads)))
	}
	if st.SSDReadRetries != before.SSDReadRetries+int64(len(reads))*fault.MaxRetries {
		t.Fatalf("retries: %d, want %d", st.SSDReadRetries,
			before.SSDReadRetries+int64(len(reads))*fault.MaxRetries)
	}

	// Disarmed, the same batch serves clean: injected faults never
	// corrupted the stored data.
	for i := range a.shards {
		disarmShard(a, i)
	}
	rep, err = a.Serve(reads, RunOptions{ContentSeed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("errors after disarm: %d", rep.Errors)
	}
}

// TestShardStatsSumToMerged cross-checks the merge: per-shard counter sums
// must equal the merged counters for a mixed faulted run.
func TestShardStatsSumToMerged(t *testing.T) {
	a, err := New(testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Serve(testOps(t), RunOptions{ContentSeed: 9, CleanEvery: 50}); err != nil {
		t.Fatal(err)
	}
	var sum volume.Stats
	for _, st := range a.ShardStats() {
		sum.AddCounters(st)
	}
	merged := a.Stats()
	merged.WriteLat, merged.ReadLat, merged.TrimLat, merged.JournalFlushLat = sum.WriteLat, sum.ReadLat, sum.TrimLat, sum.JournalFlushLat
	if fmt.Sprintf("%+v", merged) != fmt.Sprintf("%+v", sum) {
		t.Fatalf("shard counters do not sum to merged stats:\nsum:    %+v\nmerged: %+v", sum, merged)
	}
}
