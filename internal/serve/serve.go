// Package serve is the sharded, goroutine-safe serving front-end over the
// deduplicating volume. A single volume.Volume is strictly single-threaded
// — one caller, one virtual clock — which caps a multi-tenant array at one
// outstanding request. serve routes LBAs across N independent volume shards
// (lba % N picks the shard, lba / N is the shard-local address), each with
// its own virtual clock, fault-injector stream, recorder lanes, and journal
// region, so concurrent clients drive shards in parallel on the wall clock.
//
// Determinism contract: sharding parallelizes the WALL clock, never the
// virtual one. Each shard's state is a pure function of (its op sequence,
// its fault seed), and the batch Serve path fixes every shard's op sequence
// up front — an order-preserving partition of the caller's op list — before
// any goroutine runs. Workers claim whole shard queues, so scheduling
// decides only WHEN a shard executes, never WHAT it executes. Merged
// reports therefore compare bit-for-bit across GOMAXPROCS and client
// counts at a fixed seed and shard count; only the shard count changes
// results. The direct Write/Read/Trim methods are goroutine-safe (per-shard
// mutexes) but interleave in arrival order, so only the batch path promises
// bit-identity.
package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"inlinered/internal/metrics"
	"inlinered/internal/obs"
	"inlinered/internal/parallel"
	"inlinered/internal/sim"
	"inlinered/internal/volume"
	"inlinered/internal/workload"
)

// shardSeedStride separates per-shard fault streams: shard i injects from
// Seed + i*stride. Shard 0 keeps the caller's seed unchanged, so a 1-shard
// array reproduces a raw volume exactly.
const shardSeedStride = 0x6A09E667F3BCC909

// Config describes a sharded array.
type Config struct {
	// Volume is the per-array configuration. Blocks is the ARRAY's logical
	// capacity; it is distributed across shards by the routing rule. Each
	// shard gets its own drive, cache, index, and journal region (shards
	// model independent backend volumes, so physical capacity scales with
	// the shard count).
	Volume volume.Config
	// Shards is the number of independent volumes (0 means 1).
	Shards int
	// Obs optionally attaches one recorder per shard (a recorder serves
	// exactly one volume's lanes). Length must be 0 or Shards.
	Obs []*obs.Recorder
	// Parallelism is the decode worker count for the batch read path
	// (Array.ReadBatch): sub-block decode items fan out over one shared
	// worker pool of this size. 0 or 1 decodes inline. Like Clients, it
	// changes only the wall clock — reports are bit-identical for any
	// value.
	Parallelism int
}

// shard pairs a volume with the mutex that serializes direct calls into it.
type shard struct {
	mu sync.Mutex
	v  *volume.Volume
	// payload and readBuf are the batch path's per-op staging buffers,
	// reused across ops and Serve calls under mu. The volume retains
	// neither: Write copies what it keeps and ReadInto appends into the
	// caller's buffer.
	payload []byte
	readBuf []byte
	// rb is the shard's reusable batch-read state (lazily created; owned
	// by whoever holds mu).
	rb *volume.ReadBatch
	// lbas is the batch read path's per-shard queue: local LBAs plus the
	// original batch positions for routing results back.
	lbas []int64
	pos  []int
}

// serveScratch holds the batch path's reusable partition and report
// buffers. One Serve call owns it at a time (TryLock); a concurrent Serve
// falls back to fresh allocations, so reuse never changes behavior.
type serveScratch struct {
	mu     sync.Mutex
	queues [][]workload.Op
	ops    []workload.Op // one backing array carved into per-shard queues
	counts []int
	per    []ShardReport
}

// readScratch holds Array.ReadBatch's reusable per-call state. ReadBatch
// holds every shard lock for its whole run, so concurrent callers
// serialize on shard 0's mutex and the scratch needs no lock of its own.
type readScratch struct {
	startNow  []time.Duration
	prefix    []int             // per-shard item-count prefix sums
	itemShard []int32           // global item index -> owning shard
	per       []ReadShardReport // per-shard report slots, reused per call
	run       func(k int)       // stage-2 body, built once per array
}

// Array is the sharded front-end. All methods are safe for concurrent use.
type Array struct {
	cfg     Config
	blocks  int64
	shards  []*shard
	scratch serveScratch
	rsc     readScratch

	// Decode worker pool for the batch read path, created on first use.
	// One pool per array: parallel.Pool.Map is not reentrant, so ReadBatch
	// issues exactly one Map over all shards' decode items.
	poolMu sync.Mutex
	pool   *parallel.Pool
}

// New builds an array of cfg.Shards independent volumes.
func New(cfg Config) (*Array, error) {
	n := cfg.Shards
	if n == 0 {
		n = 1
	}
	if n < 1 {
		return nil, fmt.Errorf("serve: shards must be >= 1, got %d", n)
	}
	if int64(n) > cfg.Volume.Blocks {
		return nil, fmt.Errorf("serve: %d shards over %d blocks leaves empty shards", n, cfg.Volume.Blocks)
	}
	if len(cfg.Obs) != 0 && len(cfg.Obs) != n {
		return nil, fmt.Errorf("serve: need 0 or %d recorders, got %d", n, len(cfg.Obs))
	}
	a := &Array{cfg: cfg, blocks: cfg.Volume.Blocks, shards: make([]*shard, n)}
	for i := 0; i < n; i++ {
		vc := cfg.Volume
		// Shard i owns the LBAs congruent to i mod n.
		q, r := cfg.Volume.Blocks/int64(n), cfg.Volume.Blocks%int64(n)
		vc.Blocks = q
		if int64(i) < r {
			vc.Blocks++
		}
		// Independent fault streams per shard; shard 0 keeps the original
		// seed so the 1-shard array is bit-identical to a raw volume.
		vc.Faults.Seed += int64(i) * shardSeedStride
		vc.Obs = nil
		if len(cfg.Obs) == n {
			vc.Obs = cfg.Obs[i]
		}
		v, err := volume.New(vc)
		if err != nil {
			return nil, fmt.Errorf("serve: shard %d: %w", i, err)
		}
		a.shards[i] = &shard{v: v}
	}
	return a, nil
}

// Shards returns the shard count.
func (a *Array) Shards() int { return len(a.shards) }

// Blocks returns the array's logical capacity in blocks.
func (a *Array) Blocks() int64 { return a.blocks }

// route maps an array LBA to its shard and shard-local LBA.
func (a *Array) route(lba int64) (*shard, int64, error) {
	if lba < 0 || lba >= a.blocks {
		return nil, 0, fmt.Errorf("serve: lba %d outside [0,%d)", lba, a.blocks)
	}
	n := int64(len(a.shards))
	return a.shards[lba%n], lba / n, nil
}

// Write stores one block. Safe for concurrent use; requests to the same
// shard serialize on its virtual clock.
func (a *Array) Write(lba int64, data []byte) (time.Duration, error) {
	s, local, err := a.route(lba)
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.v.Write(local, data)
}

// Read fetches one block (zeros when unmapped). Safe for concurrent use.
func (a *Array) Read(lba int64) ([]byte, time.Duration, error) {
	s, local, err := a.route(lba)
	if err != nil {
		return nil, 0, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.v.Read(local)
}

// Trim unmaps one block. Safe for concurrent use.
func (a *Array) Trim(lba int64) (time.Duration, error) {
	s, local, err := a.route(lba)
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.v.Trim(local)
}

// Clean runs every shard's segment cleaner and returns the total segments
// reclaimed. The first error is returned after all shards have run.
func (a *Array) Clean() (int, error) {
	total := 0
	var firstErr error
	for _, s := range a.shards {
		s.mu.Lock()
		n, err := s.v.Clean()
		s.mu.Unlock()
		total += n
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return total, firstErr
}

// Now returns the array's virtual clock: the slowest shard's completion
// time (shards run concurrently in simulated time, so the array is done
// when its last shard is).
func (a *Array) Now() time.Duration {
	var now time.Duration
	for _, s := range a.shards {
		s.mu.Lock()
		t := s.v.Now()
		s.mu.Unlock()
		if t > now {
			now = t
		}
	}
	return now
}

// ShardStats returns each shard's stats, in shard order.
func (a *Array) ShardStats() []volume.Stats {
	out := make([]volume.Stats, len(a.shards))
	for i, s := range a.shards {
		s.mu.Lock()
		out[i] = s.v.Stats()
		s.mu.Unlock()
	}
	return out
}

// MergedHistograms returns the array's per-op latency histograms (write,
// read, trim, journal flush) merged across shards. Bucket merges are
// order-independent, so the result is deterministic for any shard
// enumeration; callers one level up (the cluster tier) merge these again
// across arrays and recompute summaries from the merged buckets.
func (a *Array) MergedHistograms() (write, read, trim, journalFlush sim.Histogram) {
	for _, s := range a.shards {
		s.mu.Lock()
		w, r, tr, jf := s.v.Histograms()
		s.mu.Unlock()
		write.Merge(&w)
		read.Merge(&r)
		trim.Merge(&tr)
		journalFlush.Merge(&jf)
	}
	return write, read, trim, journalFlush
}

// Stats returns the merged array stats: counters sum, and the latency
// summaries are recomputed from the merged per-shard histograms (bucket
// counts are order-independent, so the merge is deterministic for any
// shard enumeration).
func (a *Array) Stats() volume.Stats {
	var out volume.Stats
	var hw, hr, ht, hjf sim.Histogram
	for _, s := range a.shards {
		s.mu.Lock()
		st := s.v.Stats()
		w, r, tr, jf := s.v.Histograms()
		s.mu.Unlock()
		out.AddCounters(st)
		hw.Merge(&w)
		hr.Merge(&r)
		ht.Merge(&tr)
		hjf.Merge(&jf)
	}
	out.WriteLat = hw.Summary()
	out.ReadLat = hr.Summary()
	out.TrimLat = ht.Summary()
	out.JournalFlushLat = hjf.Summary()
	return out
}

// RunOptions tune a batch Serve run. Only Clients affects the wall clock;
// nothing in RunOptions besides the op list and the array's seed/shard
// count may affect the report.
type RunOptions struct {
	// Clients is the number of worker goroutines draining shard queues
	// (0 means one per shard). It appears nowhere in the Report.
	Clients int
	// ContentSeed derives write payloads from op content ids.
	ContentSeed int64
	// Fill is the compressibility fill for payloads (0 means 0.5, the
	// replayer's default; use workload.CalibrateFill for a target ratio).
	Fill float64
	// CleanEvery runs a shard's segment cleaner every N ops executed on
	// that shard (0 disables periodic cleaning).
	CleanEvery int
}

// ShardReport is one shard's slice of a Serve run.
type ShardReport struct {
	Ops     int           `json:"ops"`
	Errors  int64         `json:"errors"`
	Cleaned int           `json:"cleaned"`
	Elapsed time.Duration `json:"elapsed_ns"`
	Now     time.Duration `json:"now_ns"`
	Stats   volume.Stats  `json:"stats"`
}

// Report summarizes a batch Serve run. It deliberately excludes the client
// count and any wall-clock measurement: two runs that differ only in
// scheduling must encode to identical bytes.
type Report struct {
	Shards   int           `json:"shards"`
	Ops      int           `json:"ops"`
	Writes   int64         `json:"writes"`
	Reads    int64         `json:"reads"`
	Trims    int64         `json:"trims"`
	Errors   int64         `json:"errors"`
	Cleaned  int           `json:"cleaned"`
	Elapsed  time.Duration `json:"elapsed_ns"` // slowest shard's virtual elapsed time
	Merged   volume.Stats  `json:"merged"`
	PerShard []ShardReport `json:"per_shard"`
}

// ReportSchema versions the serve report envelope.
const ReportSchema = "inlinered/serve-report/v1"

// JSON encodes the report as stable, indented JSON with a schema envelope,
// mirroring trace.Report.JSON.
func (r *Report) JSON() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	env := struct {
		Schema string  `json:"schema"`
		Report *Report `json:"report"`
	}{ReportSchema, r}
	if err := enc.Encode(env); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// String renders a one-look summary.
func (r *Report) String() string {
	return fmt.Sprintf(
		"shards=%d ops=%d (w=%d r=%d t=%d) errors=%d cleaned=%d elapsed=%v\n"+
			"  space: logical=%d stored=%d garbage=%d reduction=%.2fx dedup hits=%d\n"+
			"  write p99=%v read p99=%v trim p99=%v",
		r.Shards, r.Ops, r.Writes, r.Reads, r.Trims, r.Errors, r.Cleaned,
		r.Elapsed.Round(time.Microsecond),
		r.Merged.LogicalBytes, r.Merged.StoredBytes, r.Merged.GarbageBytes,
		r.Merged.ReductionRatio(), r.Merged.DedupHits,
		r.Merged.WriteLat.P99, r.Merged.ReadLat.P99, r.Merged.TrimLat.P99)
}

// Serve executes a batch of operations across the shards with concurrent
// workers and returns the merged report.
//
// The op list is partitioned into per-shard queues first (an
// order-preserving projection: shard i sees exactly the subsequence of ops
// routed to it, in list order), then workers claim WHOLE queues via an
// atomic counter — each shard is drained by exactly one worker, so its op
// order, virtual clock, and fault stream never depend on how many workers
// run or how the host schedules them. Per-op errors (injected faults) are
// counted, not fatal: a serving front-end keeps serving.
func (a *Array) Serve(ops []workload.Op, opt RunOptions) (*Report, error) {
	n := int64(len(a.shards))
	nsh := len(a.shards)

	// Partition and report buffers come from the array's scratch when it is
	// free; a concurrent Serve (legal — shards lock independently) just
	// allocates its own set, so reuse is invisible to callers.
	sc := &a.scratch
	var queues [][]workload.Op
	var backing []workload.Op
	var counts []int
	var per []ShardReport
	if sc.mu.TryLock() {
		defer sc.mu.Unlock()
		if cap(sc.queues) < nsh {
			sc.queues = make([][]workload.Op, nsh)
		}
		if cap(sc.counts) < nsh {
			sc.counts = make([]int, nsh)
		}
		if cap(sc.per) < nsh {
			sc.per = make([]ShardReport, nsh)
		}
		if cap(sc.ops) < len(ops) {
			sc.ops = make([]workload.Op, len(ops))
		}
		queues, counts, per = sc.queues[:nsh], sc.counts[:nsh], sc.per[:nsh]
		backing = sc.ops[:len(ops)]
		clear(counts)
		clear(per)
	} else {
		queues = make([][]workload.Op, nsh)
		counts = make([]int, nsh)
		per = make([]ShardReport, nsh)
		backing = make([]workload.Op, len(ops))
	}

	// Count-then-fill: validate every op and size each shard's queue, then
	// carve exact-capacity queues out of one backing array.
	dispatchStart := metrics.Clock()
	for i, op := range ops {
		switch op.Kind {
		case workload.OpWrite, workload.OpRead, workload.OpTrim:
		default:
			return nil, fmt.Errorf("serve: op %d: unknown kind %q", i, op.Kind)
		}
		if op.LBA < 0 || op.LBA >= a.blocks {
			return nil, fmt.Errorf("serve: op %d: lba %d outside [0,%d)", i, op.LBA, a.blocks)
		}
		counts[op.LBA%n]++
	}
	off := 0
	for s := range queues {
		queues[s] = backing[off : off : off+counts[s]]
		off += counts[s]
	}
	for _, op := range ops {
		s := op.LBA % n
		op.LBA /= n // shard-local address
		queues[s] = append(queues[s], op)
	}
	// Dispatch ends when every shard queue is filled; from here each
	// queue's wall time until a worker claims it is queue wait.
	readyNS := metrics.Clock()
	metrics.ServeDispatch.ObserveSince(dispatchStart)

	clients := opt.Clients
	if clients <= 0 {
		clients = len(a.shards)
	}
	fill := opt.Fill
	if fill == 0 {
		fill = 0.5
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(a.shards) {
					return
				}
				metrics.ServeQueueWait.ObserveSince(readyNS)
				drainStart := metrics.Clock()
				per[i] = a.serveShard(i, queues[i], opt, fill)
				metrics.ServeShardDrain.ObserveSince(drainStart)
			}
		}()
	}
	wg.Wait()

	// The report retains PerShard, so the scratch is copied out, never
	// aliased.
	perOut := make([]ShardReport, nsh)
	copy(perOut, per)
	rep := &Report{Shards: len(a.shards), Ops: len(ops), PerShard: perOut}
	per = perOut
	for i := range per {
		rep.Errors += per[i].Errors
		rep.Cleaned += per[i].Cleaned
		if per[i].Elapsed > rep.Elapsed {
			rep.Elapsed = per[i].Elapsed
		}
	}
	for _, op := range ops {
		switch op.Kind {
		case workload.OpWrite:
			rep.Writes++
		case workload.OpRead:
			rep.Reads++
		case workload.OpTrim:
			rep.Trims++
		}
	}
	rep.Merged = a.Stats()
	return rep, nil
}

// serveShard drains one shard's queue. The shard lock is held for the
// whole drain: the queue claim already guarantees exclusive ownership
// among workers, and the lock only fences off concurrent direct-API calls.
func (a *Array) serveShard(i int, queue []workload.Op, opt RunOptions, fill float64) ShardReport {
	s := a.shards[i]
	s.mu.Lock()
	defer s.mu.Unlock()
	start := s.v.Now()
	rep := ShardReport{Ops: len(queue)}
	blockSize := a.cfg.Volume.BlockSize
	for k, op := range queue {
		var err error
		switch op.Kind {
		case workload.OpWrite:
			s.payload = workload.UniqueChunkInto(s.payload[:0], opt.ContentSeed, op.Content, blockSize, fill)
			_, err = s.v.Write(op.LBA, s.payload)
		case workload.OpRead:
			s.readBuf, _, err = s.v.ReadInto(s.readBuf[:0], op.LBA)
		case workload.OpTrim:
			_, err = s.v.Trim(op.LBA)
		}
		if err != nil {
			rep.Errors++
		}
		if opt.CleanEvery > 0 && (k+1)%opt.CleanEvery == 0 {
			cleaned, err := s.v.Clean()
			rep.Cleaned += cleaned
			if err != nil {
				rep.Errors++
			}
		}
	}
	rep.Now = s.v.Now()
	rep.Elapsed = rep.Now - start
	rep.Stats = s.v.Stats()
	return rep
}
