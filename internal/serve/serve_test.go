package serve

import (
	"bytes"
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"inlinered/internal/fault"
	"inlinered/internal/obs"
	"inlinered/internal/volume"
	"inlinered/internal/workload"
)

// testConfig is a small array config with faults armed, so determinism
// covers the injected-fault streams too.
func testConfig(shards int) Config {
	vc := volume.DefaultConfig()
	vc.Blocks = 4096
	vc.SSD.BlocksPerChannel = 128
	vc.SegmentBytes = 1 << 20
	vc.CacheBytes = 0
	vc.Index.BinBits = 4
	vc.Index.BufferEntries = 4
	vc.Faults = fault.Config{Seed: 42, Rates: fault.Rates{
		SSDWriteTransient: 0.05,
		SSDReadTransient:  0.05,
		SSDLatencySpike:   0.02,
		JournalTorn:       0.05,
	}}
	return Config{Volume: vc, Shards: shards}
}

func testOps(t *testing.T) []workload.Op {
	t.Helper()
	ops, err := workload.ClosedLoop(workload.ClosedLoopSpec{
		Ops:        1200,
		Blocks:     512,
		WriteFrac:  0.5,
		TrimFrac:   0.1,
		DedupRatio: 2.0,
		Hotspot:    0.2,
		Seed:       7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ops
}

func runServe(t *testing.T, shards, clients int) (*Report, []byte) {
	t.Helper()
	a, err := New(testConfig(shards))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := a.Serve(testOps(t), RunOptions{Clients: clients, ContentSeed: 9, CleanEvery: 100})
	if err != nil {
		t.Fatal(err)
	}
	js, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return rep, js
}

// TestServeMergeDeterminism is the tentpole acceptance test: for each shard
// count, the merged report and the per-shard stats are bit-identical for
// any client count and any GOMAXPROCS. Only the shard count may change the
// results.
func TestServeMergeDeterminism(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, shards := range []int{1, 2, 8} {
		var wantRep *Report
		var wantJS []byte
		for _, clients := range []int{1, 4, 16} {
			for _, procs := range []int{1, runtime.NumCPU()} {
				runtime.GOMAXPROCS(procs)
				rep, js := runServe(t, shards, clients)
				if wantJS == nil {
					wantRep, wantJS = rep, js
					continue
				}
				if !bytes.Equal(js, wantJS) {
					t.Fatalf("shards=%d: report JSON diverged at clients=%d procs=%d", shards, clients, procs)
				}
				if !reflect.DeepEqual(rep.PerShard, wantRep.PerShard) {
					t.Fatalf("shards=%d: per-shard stats diverged at clients=%d procs=%d", shards, clients, procs)
				}
			}
		}
		if wantRep.Errors == 0 && wantRep.Merged.SSDWriteRetries == 0 {
			t.Fatalf("shards=%d: fault rates never fired; determinism test is vacuous", shards)
		}
	}
}

// TestServeOneShardMatchesRawVolume proves the 1-shard array is the raw
// volume: same routing (identity), same seed, same clock, same stats.
func TestServeOneShardMatchesRawVolume(t *testing.T) {
	cfg := testConfig(1)
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	v, err := volume.New(cfg.Volume)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range testOps(t) {
		switch op.Kind {
		case workload.OpWrite:
			data := workload.UniqueChunk(9, op.Content, cfg.Volume.BlockSize, 0.5)
			a.Write(op.LBA, data)
			v.Write(op.LBA, data)
		case workload.OpRead:
			a.Read(op.LBA)
			v.Read(op.LBA)
		case workload.OpTrim:
			a.Trim(op.LBA)
			v.Trim(op.LBA)
		}
	}
	if a.Now() != v.Now() {
		t.Fatalf("1-shard clock %v != raw volume clock %v", a.Now(), v.Now())
	}
	if !reflect.DeepEqual(a.Stats(), v.Stats()) {
		t.Fatalf("1-shard stats diverged from raw volume:\n%+v\n%+v", a.Stats(), v.Stats())
	}
}

// TestServeShardCountChangesCapacityNotCorrectness: every written block
// reads back byte-identical regardless of shard count.
func TestServeRoundTripAcrossShardCounts(t *testing.T) {
	for _, shards := range []int{1, 3, 8} {
		cfg := testConfig(shards)
		cfg.Volume.Faults = fault.Config{} // clean media for exact round trips
		a, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		const n = 257 // not a multiple of any shard count above
		for i := int64(0); i < n; i++ {
			data := workload.UniqueChunk(1, int32(i%40), cfg.Volume.BlockSize, 0.5)
			if _, err := a.Write(i, data); err != nil {
				t.Fatalf("shards=%d write %d: %v", shards, i, err)
			}
		}
		for i := int64(0); i < n; i++ {
			want := workload.UniqueChunk(1, int32(i%40), cfg.Volume.BlockSize, 0.5)
			got, _, err := a.Read(i)
			if err != nil {
				t.Fatalf("shards=%d read %d: %v", shards, i, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("shards=%d lba %d: round trip mismatch", shards, i)
			}
		}
		if st := a.Stats(); st.Writes != n || st.Reads != n {
			t.Fatalf("shards=%d merged counts: %+v", shards, st)
		}
		// Out-of-range LBAs are rejected at the front door.
		if _, err := a.Write(cfg.Volume.Blocks, make([]byte, cfg.Volume.BlockSize)); err == nil {
			t.Fatal("out-of-range write accepted")
		}
	}
}

// TestServeConcurrentDirectAPI hammers the direct (non-batch) API from 16
// goroutines over 8 shards — the configuration CI runs under -race — and
// verifies every goroutine's blocks read back correctly. Direct calls are
// goroutine-safe; they just don't promise cross-run bit-identity.
func TestServeConcurrentDirectAPI(t *testing.T) {
	const (
		shards     = 8
		goroutines = 16
		perG       = 64
	)
	cfg := testConfig(shards)
	cfg.Volume.Faults = fault.Config{}
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Disjoint LBA range per goroutine; the ranges still stripe
			// across all shards, so shard mutexes are genuinely contended.
			base := int64(g * perG)
			for i := int64(0); i < perG; i++ {
				lba := base + i
				data := workload.UniqueChunk(3, int32(lba), cfg.Volume.BlockSize, 0.5)
				if _, err := a.Write(lba, data); err != nil {
					errs <- fmt.Errorf("g%d write %d: %v", g, lba, err)
					return
				}
			}
			for i := int64(0); i < perG; i++ {
				lba := base + i
				got, _, err := a.Read(lba)
				if err != nil {
					errs <- fmt.Errorf("g%d read %d: %v", g, lba, err)
					return
				}
				if !bytes.Equal(got, workload.UniqueChunk(3, int32(lba), cfg.Volume.BlockSize, 0.5)) {
					errs <- fmt.Errorf("g%d lba %d: corrupted", g, lba)
					return
				}
			}
			if _, err := a.Trim(base); err != nil {
				errs <- fmt.Errorf("g%d trim: %v", g, err)
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := a.Stats()
	if st.Writes != goroutines*perG || st.Reads != goroutines*perG || st.Trims != goroutines {
		t.Fatalf("merged counts under concurrency: %+v", st)
	}
	if st.WriteLat.Count != st.Writes || st.ReadLat.Count != st.Reads {
		t.Fatalf("histogram counts drifted under concurrency: %+v", st)
	}
}

// TestServeConcurrentBatch runs the batch path under -race with many more
// clients than shards (workers must exit cleanly when queues run out).
func TestServeConcurrentBatch(t *testing.T) {
	a, err := New(testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := a.Serve(testOps(t), RunOptions{Clients: 16, ContentSeed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ops != 1200+512 || rep.Shards != 4 {
		t.Fatalf("report shape: %+v", rep)
	}
	var perOps int
	for _, sr := range rep.PerShard {
		perOps += sr.Ops
	}
	if perOps != rep.Ops {
		t.Fatalf("per-shard ops %d != total %d", perOps, rep.Ops)
	}
	if rep.Merged.Writes+rep.Merged.Reads+rep.Merged.Trims != int64(rep.Ops) {
		t.Fatalf("merged op counts don't cover the batch: %+v", rep.Merged)
	}
}

// TestServeScratchReuseBitIdentical proves buffer reuse is invisible: a
// Serve that reuses the warm scratch, a Serve whose scratch is cold, and a
// Serve forced onto the fallback-allocation path (scratch held by someone
// else, as during a concurrent Serve) all produce bit-identical reports
// from identical array states.
func TestServeScratchReuseBitIdentical(t *testing.T) {
	ops := testOps(t)
	mk := func() *Array {
		a, err := New(testConfig(4))
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	run := func(a *Array) []byte {
		rep, err := a.Serve(ops, RunOptions{Clients: 3, ContentSeed: 9, CleanEvery: 100})
		if err != nil {
			t.Fatal(err)
		}
		js, err := rep.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return js
	}
	warm, fallback := mk(), mk()
	first := run(warm) // cold scratch
	fallback.scratch.mu.Lock()
	firstFB := run(fallback) // fallback allocations
	fallback.scratch.mu.Unlock()
	if !bytes.Equal(first, firstFB) {
		t.Fatal("fallback-allocation Serve diverged from scratch Serve")
	}
	// Same state on both arrays now; second round exercises warm scratch vs
	// cold scratch.
	second := run(warm)       // warm scratch (reused queues, backing, per)
	secondFB := run(fallback) // cold scratch
	if !bytes.Equal(second, secondFB) {
		t.Fatal("warm-scratch Serve diverged from cold-scratch Serve")
	}
	if bytes.Equal(first, second) {
		t.Fatal("second batch should differ from the first (state advanced); test is vacuous")
	}
}

// TestServeBatchMatchesDirect: the batch path's reused payload and read
// buffers must leave the virtual clock and stats exactly where per-op
// direct calls with freshly allocated buffers leave them.
func TestServeBatchMatchesDirect(t *testing.T) {
	ops := testOps(t)
	cfg := testConfig(1)
	batch, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := volume.New(cfg.Volume)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := batch.Serve(ops, RunOptions{ContentSeed: 9, Fill: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range ops {
		switch op.Kind {
		case workload.OpWrite:
			direct.Write(op.LBA, workload.UniqueChunk(9, op.Content, cfg.Volume.BlockSize, 0.5))
		case workload.OpRead:
			direct.Read(op.LBA)
		case workload.OpTrim:
			direct.Trim(op.LBA)
		}
	}
	if rep.Elapsed != direct.Now() {
		t.Fatalf("batch clock %v != direct clock %v", rep.Elapsed, direct.Now())
	}
	if !reflect.DeepEqual(rep.Merged, direct.Stats()) {
		t.Fatalf("batch stats diverged from direct:\n%+v\n%+v", rep.Merged, direct.Stats())
	}
}

// TestServeReadAllocCeiling guards the zero-alloc read path: once the
// shard's read buffer and the Serve scratch are warm, a read-only batch
// must stay under a small per-op allocation budget (reads decompress into
// the reused buffer; only per-Serve bookkeeping may allocate).
func TestServeReadAllocCeiling(t *testing.T) {
	cfg := testConfig(1)
	cfg.Volume.Faults = fault.Config{} // deterministic media, no retries
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const blocks = 64
	for i := int64(0); i < blocks; i++ {
		data := workload.UniqueChunk(5, int32(i), cfg.Volume.BlockSize, 0.5)
		if _, err := a.Write(i, data); err != nil {
			t.Fatal(err)
		}
	}
	reads := make([]workload.Op, 512)
	for i := range reads {
		reads[i] = workload.Op{Kind: workload.OpRead, LBA: int64(i % blocks)}
	}
	serve := func() {
		if _, err := a.Serve(reads, RunOptions{Clients: 1}); err != nil {
			t.Fatal(err)
		}
	}
	serve() // warm the scratch and the shard's read buffer
	allocs := testing.AllocsPerRun(5, serve)
	// Budget: well under one allocation per op. The old path allocated the
	// decode output plus decode-time growth for every read (several/op).
	if perOp := allocs / float64(len(reads)); perOp > 0.25 {
		t.Fatalf("read path allocates %.2f objects/op after warm-up (%.0f total), want <= 0.25", perOp, allocs)
	}
}

// TestServeConfigValidation rejects bad shapes at construction.
func TestServeConfigValidation(t *testing.T) {
	bad := []Config{
		func() Config { c := testConfig(1); c.Shards = -1; return c }(),
		func() Config { c := testConfig(2); c.Volume.Blocks = 1; return c }(),
		func() Config { c := testConfig(2); c.Obs = []*obs.Recorder{obs.NewRecorder()}; return c }(),
		func() Config { c := testConfig(1); c.Volume.BlockSize = 8; return c }(),
	}
	for i, c := range bad {
		if _, err := New(c); err == nil {
			t.Errorf("case %d: bad config accepted", i)
		}
	}
}
