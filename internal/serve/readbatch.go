package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"inlinered/internal/parallel"
	"inlinered/internal/workload"
)

// ReadBatchOptions tune a batch read run. Nothing here may affect the
// report — only the op list and the array's configuration do.
type ReadBatchOptions struct {
	// Clients is the number of worker goroutines planning and committing
	// shard batches (0 means one per shard). Wall clock only.
	Clients int
	// Sink, when non-nil, receives every read's result during the commit
	// stage: i is the read's position in the batch, block aliases internal
	// buffers and is valid only for the duration of the call. Sink is
	// called concurrently from multiple goroutines (at most one per shard
	// at a time), so it must be safe for concurrent use — writing to
	// distinct per-i slots is the intended pattern. Sink runs while
	// ReadBatch holds every shard lock, so it must not call back into the
	// Array (Read, Write, Stats, ReadBatch, ...) — a re-entrant call
	// deadlocks.
	Sink func(i int, block []byte, err error)
}

// ReadShardReport is one shard's slice of a batch read.
type ReadShardReport struct {
	Reads           int           `json:"reads"`
	Errors          int64         `json:"errors"`
	DecodedBlobs    int64         `json:"decoded_blobs"`
	DecodedParts    int64         `json:"decoded_parts"`
	CacheHits       int64         `json:"cache_hits"`
	CacheMisses     int64         `json:"cache_misses"`
	CacheAdmissions int64         `json:"cache_admissions"`
	CacheGhostHits  int64         `json:"cache_ghost_hits"`
	Elapsed         time.Duration `json:"elapsed_ns"`
	Now             time.Duration `json:"now_ns"`
}

// ReadBatchReport summarizes one Array.ReadBatch run. Like Report, it
// excludes the client count, the decode parallelism, and any wall-clock
// measurement: runs differing only in scheduling encode to identical
// bytes.
type ReadBatchReport struct {
	Shards       int   `json:"shards"`
	Reads        int   `json:"reads"`
	Errors       int64 `json:"errors"`
	DecodedBlobs int64 `json:"decoded_blobs"` // blob decodes executed (misses)
	DecodedParts int64 `json:"decoded_parts"` // parallel decode items (sub-blocks)

	// Chunk-cache accounting for the batch, summed over shards (all taken
	// during the sequential plan phase, so they are as deterministic as the
	// virtual clock). Hits + misses can undercount Reads: unmapped reads
	// never consult the cache.
	CacheHits       int64 `json:"cache_hits"`
	CacheMisses     int64 `json:"cache_misses"`
	CacheAdmissions int64 `json:"cache_admissions"`
	CacheGhostHits  int64 `json:"cache_ghost_hits"`

	Elapsed  time.Duration     `json:"elapsed_ns"` // slowest shard's virtual elapsed time
	PerShard []ReadShardReport `json:"per_shard"`
}

// HitRate returns the batch's cache hit fraction over lookups (0 when the
// batch looked nothing up).
func (r *ReadBatchReport) HitRate() float64 {
	lookups := r.CacheHits + r.CacheMisses
	if lookups == 0 {
		return 0
	}
	return float64(r.CacheHits) / float64(lookups)
}

// ReadBatchReportSchema versions the batch-read report envelope. v2 added
// the cache_* counters from the scan-resistant admission policy.
const ReadBatchReportSchema = "inlinered/serve-readbatch-report/v2"

// JSON encodes the report as stable, indented JSON with a schema envelope.
func (r *ReadBatchReport) JSON() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	env := struct {
		Schema string           `json:"schema"`
		Report *ReadBatchReport `json:"report"`
	}{ReadBatchReportSchema, r}
	if err := enc.Encode(env); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// String renders a one-look summary.
func (r *ReadBatchReport) String() string {
	return fmt.Sprintf(
		"shards=%d reads=%d errors=%d decoded blobs=%d parts=%d cache hits=%d/%d (%.1f%%) elapsed=%v",
		r.Shards, r.Reads, r.Errors, r.DecodedBlobs, r.DecodedParts,
		r.CacheHits, r.CacheHits+r.CacheMisses, 100*r.HitRate(),
		r.Elapsed.Round(time.Microsecond))
}

// decodePool returns the array's shared decode pool, creating it on first
// use (nil when Config.Parallelism keeps decoding inline).
func (a *Array) decodePool() *parallel.Pool {
	if a.cfg.Parallelism <= 1 {
		return nil
	}
	a.poolMu.Lock()
	defer a.poolMu.Unlock()
	if a.pool == nil {
		a.pool = parallel.New(a.cfg.Parallelism)
	}
	return a.pool
}

// Close releases the decode worker pool and returns every shard's batch
// state to the package recycling pool. Idempotent, and the array stays
// usable — a later ReadBatch recreates both. Arrays that never call
// ReadBatch (or run with Parallelism <= 1) need not call Close.
func (a *Array) Close() {
	a.poolMu.Lock()
	if a.pool != nil {
		a.pool.Close()
		a.pool = nil
	}
	a.poolMu.Unlock()
	for _, s := range a.shards {
		s.mu.Lock()
		if s.rb != nil {
			s.rb.Release()
			s.rb = nil
		}
		s.mu.Unlock()
	}
}

// ReadBatch executes a batch of reads across the shards through the
// sequential-decision / parallel-decode / sequential-commit split:
//
//  1. Plan: workers claim whole shards (the Serve pattern) and run each
//     shard's sequential decision phase — cache, SSD, and virtual-clock
//     accounting in that shard's op order.
//  2. Decode: ONE pool.Map fans every shard's decode items (one per
//     sub-block of an indexed container) over the array's shared worker
//     pool. Items write disjoint output ranges; nothing here touches a
//     virtual clock.
//  3. Commit: workers claim shards again, patch deferred overlap copies,
//     fill cache reservations, and hand results to opt.Sink.
//
// Shard queues are an order-preserving partition of lbas, so each shard's
// virtual state is a pure function of its subsequence — the report is
// bit-identical for any Clients, Config.Parallelism, or GOMAXPROCS.
func (a *Array) ReadBatch(lbas []int64, opt ReadBatchOptions) (*ReadBatchReport, error) {
	n := int64(len(a.shards))
	for i, lba := range lbas {
		if lba < 0 || lba >= a.blocks {
			return nil, fmt.Errorf("serve: read %d: lba %d outside [0,%d)", i, lba, a.blocks)
		}
	}

	// Hold every shard for the whole batch (acquired in shard order; Serve
	// and the direct API lock one shard at a time, so ascending acquisition
	// cannot deadlock): the decode stage's pool workers touch shard state,
	// which must stay fenced from concurrent direct calls.
	for _, s := range a.shards {
		s.mu.Lock()
	}
	defer func() {
		for _, s := range a.shards {
			s.mu.Unlock()
		}
	}()

	// Count-then-fill partition into per-shard local-LBA queues, keeping
	// each read's batch position for the commit stage.
	for _, s := range a.shards {
		s.lbas = s.lbas[:0]
		s.pos = s.pos[:0]
	}
	for i, lba := range lbas {
		s := a.shards[lba%n]
		s.lbas = append(s.lbas, lba/n)
		s.pos = append(s.pos, i)
	}

	clients := opt.Clients
	if clients <= 0 {
		clients = len(a.shards)
	}
	// Per-call scratch, reused across batches (safe: all shard locks are
	// held for the duration of the call, and the scratch is touched only
	// here).
	if cap(a.rsc.startNow) < len(a.shards) {
		a.rsc.startNow = make([]time.Duration, len(a.shards))
		a.rsc.prefix = make([]int, len(a.shards)+1)
		a.rsc.per = make([]ReadShardReport, len(a.shards))
	}
	startNow := a.rsc.startNow[:len(a.shards)]

	// Stage 1: sequential decision phase, one worker per claimed shard.
	var next atomic.Int64
	var wg sync.WaitGroup
	var planErr atomic.Value
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(a.shards) {
					return
				}
				s := a.shards[i]
				if s.rb == nil {
					s.rb = s.v.NewReadBatch()
				}
				startNow[i] = s.v.Now()
				if err := s.rb.Plan(s.lbas); err != nil {
					planErr.Store(err)
				}
			}
		}()
	}
	wg.Wait()
	if err, _ := planErr.Load().(error); err != nil {
		return nil, err
	}

	// Stage 2: one global fan-out over the concatenation of every shard's
	// decode items (Pool.Map is not reentrant, so there is exactly one).
	// The item→shard map is materialized once, turning each worker's shard
	// lookup from a binary search over the prefix table into one indexed
	// load — the searches were a measurable slice of per-item dispatch cost
	// with 4 KiB sub-blocks.
	prefix := a.rsc.prefix[:len(a.shards)+1]
	prefix[0] = 0
	for i, s := range a.shards {
		prefix[i+1] = prefix[i] + s.rb.Items()
	}
	total := prefix[len(a.shards)]
	if cap(a.rsc.itemShard) < total {
		a.rsc.itemShard = make([]int32, total)
	}
	itemShard := a.rsc.itemShard[:total]
	for i := range a.shards {
		sub := itemShard[prefix[i]:prefix[i+1]]
		for k := range sub {
			sub[k] = int32(i)
		}
	}
	if a.rsc.run == nil {
		// Built once per array: the closure reads the scratch through a, so
		// it stays valid as the backing arrays are regrown.
		a.rsc.run = func(k int) {
			i := a.rsc.itemShard[k]
			a.shards[i].rb.RunItem(k - a.rsc.prefix[i])
		}
	}
	if pool := a.decodePool(); pool != nil {
		pool.Map(total, a.rsc.run)
	} else {
		for k := 0; k < total; k++ {
			a.rsc.run(k)
		}
	}

	// Stage 3: sequential commit phase, workers claiming shards again.
	per := a.rsc.per[:len(a.shards)]
	for i := range per {
		per[i] = ReadShardReport{}
	}
	next.Store(0)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(a.shards) {
					return
				}
				s := a.shards[i]
				s.rb.Commit()
				pr := &per[i]
				pr.Reads = s.rb.Len()
				pr.Errors = int64(s.rb.Errors())
				pr.DecodedBlobs = int64(s.rb.DecodedBlobs())
				pr.DecodedParts = int64(s.rb.DecodedParts())
				pr.CacheHits = s.rb.CacheHits()
				pr.CacheMisses = s.rb.CacheMisses()
				pr.CacheAdmissions = s.rb.CacheAdmissions()
				pr.CacheGhostHits = s.rb.CacheGhostHits()
				pr.Now = s.v.Now()
				pr.Elapsed = pr.Now - startNow[i]
				if opt.Sink != nil {
					for k := 0; k < s.rb.Len(); k++ {
						opt.Sink(s.pos[k], s.rb.Block(k), s.rb.Err(k))
					}
				}
			}
		}()
	}
	wg.Wait()

	// The report owns its per-shard slice: per is array scratch and the
	// next batch overwrites it.
	own := make([]ReadShardReport, len(per))
	copy(own, per)
	rep := &ReadBatchReport{Shards: len(a.shards), Reads: len(lbas), PerShard: own}
	for i := range own {
		rep.Errors += own[i].Errors
		rep.DecodedBlobs += own[i].DecodedBlobs
		rep.DecodedParts += own[i].DecodedParts
		rep.CacheHits += own[i].CacheHits
		rep.CacheMisses += own[i].CacheMisses
		rep.CacheAdmissions += own[i].CacheAdmissions
		rep.CacheGhostHits += own[i].CacheGhostHits
		if own[i].Elapsed > rep.Elapsed {
			rep.Elapsed = own[i].Elapsed
		}
	}
	return rep, nil
}

// ReadOps filters a workload op list down to its reads' LBAs — the bridge
// from a mixed ClosedLoop/preset stream to the batch read path.
func ReadOps(ops []workload.Op) []int64 {
	lbas := make([]int64, 0, len(ops))
	for _, op := range ops {
		if op.Kind == workload.OpRead {
			lbas = append(lbas, op.LBA)
		}
	}
	return lbas
}
