package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"inlinered/internal/parallel"
	"inlinered/internal/workload"
)

// ReadBatchOptions tune a batch read run. Nothing here may affect the
// report — only the op list and the array's configuration do.
type ReadBatchOptions struct {
	// Clients is the number of worker goroutines planning and committing
	// shard batches (0 means one per shard). Wall clock only.
	Clients int
	// Sink, when non-nil, receives every read's result during the commit
	// stage: i is the read's position in the batch, block aliases internal
	// buffers and is valid only for the duration of the call. Sink is
	// called concurrently from multiple goroutines (at most one per shard
	// at a time), so it must be safe for concurrent use — writing to
	// distinct per-i slots is the intended pattern. Sink runs while
	// ReadBatch holds every shard lock, so it must not call back into the
	// Array (Read, Write, Stats, ReadBatch, ...) — a re-entrant call
	// deadlocks.
	Sink func(i int, block []byte, err error)
}

// ReadShardReport is one shard's slice of a batch read.
type ReadShardReport struct {
	Reads        int           `json:"reads"`
	Errors       int64         `json:"errors"`
	DecodedBlobs int64         `json:"decoded_blobs"`
	DecodedParts int64         `json:"decoded_parts"`
	Elapsed      time.Duration `json:"elapsed_ns"`
	Now          time.Duration `json:"now_ns"`
}

// ReadBatchReport summarizes one Array.ReadBatch run. Like Report, it
// excludes the client count, the decode parallelism, and any wall-clock
// measurement: runs differing only in scheduling encode to identical
// bytes.
type ReadBatchReport struct {
	Shards       int               `json:"shards"`
	Reads        int               `json:"reads"`
	Errors       int64             `json:"errors"`
	DecodedBlobs int64             `json:"decoded_blobs"` // blob decodes executed (misses)
	DecodedParts int64             `json:"decoded_parts"` // parallel decode items (sub-blocks)
	Elapsed      time.Duration     `json:"elapsed_ns"`    // slowest shard's virtual elapsed time
	PerShard     []ReadShardReport `json:"per_shard"`
}

// ReadBatchReportSchema versions the batch-read report envelope.
const ReadBatchReportSchema = "inlinered/serve-readbatch-report/v1"

// JSON encodes the report as stable, indented JSON with a schema envelope.
func (r *ReadBatchReport) JSON() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	env := struct {
		Schema string           `json:"schema"`
		Report *ReadBatchReport `json:"report"`
	}{ReadBatchReportSchema, r}
	if err := enc.Encode(env); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// String renders a one-look summary.
func (r *ReadBatchReport) String() string {
	return fmt.Sprintf(
		"shards=%d reads=%d errors=%d decoded blobs=%d parts=%d elapsed=%v",
		r.Shards, r.Reads, r.Errors, r.DecodedBlobs, r.DecodedParts,
		r.Elapsed.Round(time.Microsecond))
}

// decodePool returns the array's shared decode pool, creating it on first
// use (nil when Config.Parallelism keeps decoding inline).
func (a *Array) decodePool() *parallel.Pool {
	if a.cfg.Parallelism <= 1 {
		return nil
	}
	a.poolMu.Lock()
	defer a.poolMu.Unlock()
	if a.pool == nil {
		a.pool = parallel.New(a.cfg.Parallelism)
	}
	return a.pool
}

// Close releases the decode worker pool. Idempotent, and the array stays
// usable — a later ReadBatch recreates the pool. Arrays that never call
// ReadBatch (or run with Parallelism <= 1) need not call Close.
func (a *Array) Close() {
	a.poolMu.Lock()
	defer a.poolMu.Unlock()
	if a.pool != nil {
		a.pool.Close()
		a.pool = nil
	}
}

// ReadBatch executes a batch of reads across the shards through the
// sequential-decision / parallel-decode / sequential-commit split:
//
//  1. Plan: workers claim whole shards (the Serve pattern) and run each
//     shard's sequential decision phase — cache, SSD, and virtual-clock
//     accounting in that shard's op order.
//  2. Decode: ONE pool.Map fans every shard's decode items (one per
//     sub-block of an indexed container) over the array's shared worker
//     pool. Items write disjoint output ranges; nothing here touches a
//     virtual clock.
//  3. Commit: workers claim shards again, patch deferred overlap copies,
//     fill cache reservations, and hand results to opt.Sink.
//
// Shard queues are an order-preserving partition of lbas, so each shard's
// virtual state is a pure function of its subsequence — the report is
// bit-identical for any Clients, Config.Parallelism, or GOMAXPROCS.
func (a *Array) ReadBatch(lbas []int64, opt ReadBatchOptions) (*ReadBatchReport, error) {
	n := int64(len(a.shards))
	for i, lba := range lbas {
		if lba < 0 || lba >= a.blocks {
			return nil, fmt.Errorf("serve: read %d: lba %d outside [0,%d)", i, lba, a.blocks)
		}
	}

	// Hold every shard for the whole batch (acquired in shard order; Serve
	// and the direct API lock one shard at a time, so ascending acquisition
	// cannot deadlock): the decode stage's pool workers touch shard state,
	// which must stay fenced from concurrent direct calls.
	for _, s := range a.shards {
		s.mu.Lock()
	}
	defer func() {
		for _, s := range a.shards {
			s.mu.Unlock()
		}
	}()

	// Count-then-fill partition into per-shard local-LBA queues, keeping
	// each read's batch position for the commit stage.
	for _, s := range a.shards {
		s.lbas = s.lbas[:0]
		s.pos = s.pos[:0]
	}
	for i, lba := range lbas {
		s := a.shards[lba%n]
		s.lbas = append(s.lbas, lba/n)
		s.pos = append(s.pos, i)
	}

	clients := opt.Clients
	if clients <= 0 {
		clients = len(a.shards)
	}
	startNow := make([]time.Duration, len(a.shards))

	// Stage 1: sequential decision phase, one worker per claimed shard.
	var next atomic.Int64
	var wg sync.WaitGroup
	var planErr atomic.Value
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(a.shards) {
					return
				}
				s := a.shards[i]
				if s.rb == nil {
					s.rb = s.v.NewReadBatch()
				}
				startNow[i] = s.v.Now()
				if err := s.rb.Plan(s.lbas); err != nil {
					planErr.Store(err)
				}
			}
		}()
	}
	wg.Wait()
	if err, _ := planErr.Load().(error); err != nil {
		return nil, err
	}

	// Stage 2: one global fan-out over the concatenation of every shard's
	// decode items (Pool.Map is not reentrant, so there is exactly one).
	prefix := make([]int, len(a.shards)+1)
	for i, s := range a.shards {
		prefix[i+1] = prefix[i] + s.rb.Items()
	}
	total := prefix[len(a.shards)]
	run := func(k int) {
		i := sort.SearchInts(prefix, k+1) - 1
		a.shards[i].rb.RunItem(k - prefix[i])
	}
	if pool := a.decodePool(); pool != nil {
		pool.Map(total, run)
	} else {
		for k := 0; k < total; k++ {
			run(k)
		}
	}

	// Stage 3: sequential commit phase, workers claiming shards again.
	per := make([]ReadShardReport, len(a.shards))
	next.Store(0)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(a.shards) {
					return
				}
				s := a.shards[i]
				s.rb.Commit()
				pr := &per[i]
				pr.Reads = s.rb.Len()
				pr.Errors = int64(s.rb.Errors())
				pr.DecodedBlobs = int64(s.rb.DecodedBlobs())
				pr.DecodedParts = int64(s.rb.DecodedParts())
				pr.Now = s.v.Now()
				pr.Elapsed = pr.Now - startNow[i]
				if opt.Sink != nil {
					for k := 0; k < s.rb.Len(); k++ {
						opt.Sink(s.pos[k], s.rb.Block(k), s.rb.Err(k))
					}
				}
			}
		}()
	}
	wg.Wait()

	rep := &ReadBatchReport{Shards: len(a.shards), Reads: len(lbas), PerShard: per}
	for i := range per {
		rep.Errors += per[i].Errors
		rep.DecodedBlobs += per[i].DecodedBlobs
		rep.DecodedParts += per[i].DecodedParts
		if per[i].Elapsed > rep.Elapsed {
			rep.Elapsed = per[i].Elapsed
		}
	}
	return rep, nil
}

// ReadOps filters a workload op list down to its reads' LBAs — the bridge
// from a mixed ClosedLoop/preset stream to the batch read path.
func ReadOps(ops []workload.Op) []int64 {
	lbas := make([]int64, 0, len(ops))
	for _, op := range ops {
		if op.Kind == workload.OpRead {
			lbas = append(lbas, op.LBA)
		}
	}
	return lbas
}
