// Package cpusim models the host multi-core CPU on the virtual clock.
//
// The CPU is a sim.Pool with one server per hardware thread plus a cycle-cost
// model for every data reduction operation the pipeline runs on the host:
// chunking, SHA-1 hashing, bin-buffer/bin-tree index probes, LZSS
// compression, and post-processing of GPU compression results. Costs are
// expressed in cycles so the same model scales to any clock frequency, and
// they are parameterized by the *actual work performed* (bytes scanned, match
// search steps, tree depth) as reported by the real data-plane
// implementations — so, for example, highly compressible data is cheaper to
// compress in virtual time exactly as it is on real hardware.
//
// The default constants approximate the paper's testbed CPU (an Ivy Bridge
// i7-3770K-class part: 4 cores / 8 threads at 3.5 GHz) and were calibrated so
// the preliminary experiment in §3.1 and the three §4 results land near the
// published factors; see DESIGN.md.
package cpusim

import (
	"fmt"
	"time"

	"inlinered/internal/sim"
)

// Config describes a simulated CPU.
type Config struct {
	Name    string    // label used in reports
	Threads int       // hardware threads (servers in the pool)
	ClockHz float64   // core clock in Hz
	Cost    CostModel // per-operation cycle costs
}

// DefaultConfig returns the paper-testbed CPU: 4 cores / 8 threads at
// 3.5 GHz with the default cost model.
func DefaultConfig() Config {
	return Config{
		Name:    "i7-3770K-class (4C/8T @ 3.5 GHz)",
		Threads: 8,
		ClockHz: 3.5e9,
		Cost:    DefaultCostModel(),
	}
}

// CostModel holds per-operation cycle costs for the host CPU. All costs are
// in cycles; convert with CPU.Time. Zero values are legal (free operations)
// but the defaults should be used for paper-faithful results.
type CostModel struct {
	// ChunkCyclesPerByte covers the chunking stage: the rolling-hash scan
	// for content-defined chunking, or the copy/bookkeeping for fixed-size
	// chunking (fixed chunking is cheap; CDC dominates).
	ChunkCyclesPerByte float64

	// HashCyclesPerByte and HashSetupCycles cover SHA-1 fingerprinting of a
	// chunk. ~7 cycles/byte is typical for unaccelerated SHA-1 on Ivy
	// Bridge-class cores.
	HashCyclesPerByte float64
	HashSetupCycles   float64

	// ProbeBaseCycles is the fixed cost of one index lookup (function call,
	// bin selection, cache miss on the bin header).
	ProbeBaseCycles float64
	// BufferEntryCycles is the per-entry cost of scanning the bin buffer.
	BufferEntryCycles float64
	// TreeStepCycles is the per-node cost of descending the bin tree.
	TreeStepCycles float64
	// InsertCycles is the fixed extra cost of inserting a new entry
	// (rebalancing amortized in).
	InsertCycles float64

	// Compression: cost = CompressBaseCycles
	//                   + positions*CompressCyclesPerPosition
	//                   + searchSteps*MatchStepCycles
	//                   + dstBytes*EmitCyclesPerByte.
	// positions and searchSteps come from the real encoder (lz.Stats):
	// every literal or match is one position, and a long match advances
	// many input bytes in one position — which is exactly why compressible
	// data is faster to compress, on hardware and here.
	CompressBaseCycles        float64
	CompressCyclesPerPosition float64
	MatchStepCycles           float64
	EmitCyclesPerByte         float64

	// StageOverheadCycles is charged once per chunk per pipeline stage:
	// queueing, buffer staging, and framework bookkeeping that inline
	// reduction stacks pay around each operation. (Calibrated; see DESIGN.md.)
	StageOverheadCycles float64

	// DecompressCyclesPerByte covers LZSS decode (per output byte).
	DecompressCyclesPerByte float64

	// Post-processing of GPU compression results: stitching per-thread
	// sub-block streams into the container and re-encoding boundary tokens.
	PostProcessBaseCycles    float64
	PostProcessCyclesPerByte float64

	// MemcpyCyclesPerByte covers staging copies (host-side buffer moves).
	MemcpyCyclesPerByte float64

	// EntropyCyclesPerByte covers the byte-histogram entropy estimate used
	// by the incompressible-chunk bypass (one pass, one table update per
	// byte).
	EntropyCyclesPerByte float64
}

// DefaultCostModel returns the calibrated host cost model. See the package
// comment for the calibration targets.
func DefaultCostModel() CostModel {
	return CostModel{
		ChunkCyclesPerByte: 2.0,

		// SHA-1 on small buffers with framework overhead lands well above
		// the textbook cycles/byte; hashing is one of the paper's two
		// stated dedup bottlenecks.
		HashCyclesPerByte: 20.0,
		HashSetupCycles:   2000,

		// A probe into a many-million-entry in-memory index is a chain of
		// dependent uncached pointer dereferences: ~570 ns (≈2000 cycles)
		// per tree level once TLB misses, DRAM row misses, and cross-socket
		// traffic are counted — indexing is the paper's other stated
		// bottleneck, on par with hashing.
		ProbeBaseCycles:   2000,
		BufferEntryCycles: 20,
		TreeStepCycles:    2000,
		InsertCycles:      4000,

		CompressBaseCycles:        3000,
		CompressCyclesPerPosition: 125,
		MatchStepCycles:           14,
		EmitCyclesPerByte:         4,

		StageOverheadCycles: 10000,

		DecompressCyclesPerByte: 1.8,

		PostProcessBaseCycles:    4000,
		PostProcessCyclesPerByte: 4.0,

		MemcpyCyclesPerByte: 0.25,

		EntropyCyclesPerByte: 1.0,
	}
}

// HashCycles returns the cycle cost of fingerprinting n bytes.
func (m CostModel) HashCycles(n int) float64 {
	return m.HashSetupCycles + float64(n)*m.HashCyclesPerByte
}

// ChunkCycles returns the cycle cost of chunking n bytes.
func (m CostModel) ChunkCycles(n int) float64 {
	return float64(n) * m.ChunkCyclesPerByte
}

// ProbeCycles returns the cycle cost of one index lookup that scanned
// bufEntries bin-buffer entries and descended treeSteps tree nodes.
func (m CostModel) ProbeCycles(bufEntries, treeSteps int) float64 {
	return m.ProbeBaseCycles + float64(bufEntries)*m.BufferEntryCycles + float64(treeSteps)*m.TreeStepCycles
}

// CompressCycles returns the cycle cost of an encode that processed the
// given number of positions, examined searchSteps match candidates, and
// emitted dstBytes.
func (m CostModel) CompressCycles(positions, searchSteps, dstBytes int) float64 {
	return m.CompressBaseCycles +
		float64(positions)*m.CompressCyclesPerPosition +
		float64(searchSteps)*m.MatchStepCycles +
		float64(dstBytes)*m.EmitCyclesPerByte
}

// DecompressCycles returns the cycle cost of decoding to n output bytes.
func (m CostModel) DecompressCycles(n int) float64 {
	return float64(n) * m.DecompressCyclesPerByte
}

// PostProcessCycles returns the cycle cost of refining a GPU compression
// result of n container bytes.
func (m CostModel) PostProcessCycles(n int) float64 {
	return m.PostProcessBaseCycles + float64(n)*m.PostProcessCyclesPerByte
}

// MemcpyCycles returns the cycle cost of staging n bytes.
func (m CostModel) MemcpyCycles(n int) float64 {
	return float64(n) * m.MemcpyCyclesPerByte
}

// EntropyCycles returns the cycle cost of the entropy pre-check over n
// bytes.
func (m CostModel) EntropyCycles(n int) float64 {
	return float64(n) * m.EntropyCyclesPerByte
}

// CPU is a multi-core CPU on the virtual clock.
type CPU struct {
	Config
	Pool *sim.Pool
}

// New returns a CPU for cfg. It panics on a non-positive thread count or
// clock.
func New(cfg Config) *CPU {
	if cfg.Threads < 1 {
		panic(fmt.Sprintf("cpusim: need at least one thread, got %d", cfg.Threads))
	}
	if cfg.ClockHz <= 0 {
		panic(fmt.Sprintf("cpusim: need a positive clock, got %g", cfg.ClockHz))
	}
	return &CPU{Config: cfg, Pool: sim.NewPool("cpu:"+cfg.Name, cfg.Threads)}
}

// Time converts a cycle count into virtual time at this CPU's clock.
func (c *CPU) Time(cycles float64) time.Duration {
	if cycles <= 0 {
		return 0
	}
	return sim.Cycles(cycles, c.ClockHz)
}

// Run schedules cycles of work arriving at virtual time at on the
// earliest-free hardware thread and returns start and completion times.
func (c *CPU) Run(at time.Duration, cycles float64) (start, end time.Duration) {
	return c.Pool.Acquire(at, c.Time(cycles))
}

// Saturated reports whether every hardware thread is busy at virtual time
// at. The pipeline uses this as the "CPU utilization is full" signal from
// §3.1(3) when deciding to offload indexing to the GPU.
func (c *CPU) Saturated(at time.Duration) bool { return c.Pool.Saturated(at) }

// Utilization reports mean thread utilization over [0, until].
func (c *CPU) Utilization(until time.Duration) float64 { return c.Pool.Utilization(until) }

// Reset clears the CPU's timeline and statistics.
func (c *CPU) Reset() { c.Pool.Reset() }
