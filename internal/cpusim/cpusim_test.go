package cpusim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestNewValidation(t *testing.T) {
	for _, cfg := range []Config{
		{Threads: 0, ClockHz: 1e9},
		{Threads: 4, ClockHz: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%+v) should panic", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

func TestTimeConversion(t *testing.T) {
	c := New(Config{Name: "t", Threads: 1, ClockHz: 1e9})
	if got := c.Time(1000); got != time.Microsecond {
		t.Fatalf("1000 cycles at 1 GHz: got %v, want 1µs", got)
	}
	if got := c.Time(-5); got != 0 {
		t.Fatalf("negative cycles: got %v, want 0", got)
	}
}

func TestRunUsesAllThreads(t *testing.T) {
	c := New(Config{Name: "t", Threads: 4, ClockHz: 1e9})
	var last time.Duration
	for i := 0; i < 8; i++ {
		_, end := c.Run(0, 1000)
		last = end
	}
	// 8 jobs of 1µs on 4 threads: 2 waves.
	if last != 2*time.Microsecond {
		t.Fatalf("makespan: got %v, want 2µs", last)
	}
	if got := c.Utilization(last); got != 1.0 {
		t.Fatalf("utilization: got %g, want 1", got)
	}
}

func TestSaturated(t *testing.T) {
	c := New(Config{Name: "t", Threads: 2, ClockHz: 1e9})
	if c.Saturated(0) {
		t.Fatal("idle CPU should not be saturated")
	}
	c.Run(0, 1e6)
	c.Run(0, 1e6)
	if !c.Saturated(0) {
		t.Fatal("both threads busy: should be saturated")
	}
	c.Reset()
	if c.Saturated(0) {
		t.Fatal("reset CPU should not be saturated")
	}
}

func TestDefaultConfigSane(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Threads != 8 || cfg.ClockHz != 3.5e9 {
		t.Fatalf("default config changed unexpectedly: %+v", cfg)
	}
	c := New(cfg)
	// Hashing a 4 KB chunk should take on the order of 10 µs, not ms.
	d := c.Time(cfg.Cost.HashCycles(4096))
	if d < time.Microsecond || d > 100*time.Microsecond {
		t.Fatalf("4 KB SHA-1 cost out of plausible range: %v", d)
	}
}

func TestCostModelMonotonicity(t *testing.T) {
	m := DefaultCostModel()
	if m.HashCycles(8192) <= m.HashCycles(4096) {
		t.Fatal("hash cost must grow with size")
	}
	if m.ProbeCycles(10, 5) <= m.ProbeCycles(0, 0) {
		t.Fatal("probe cost must grow with work")
	}
	if m.CompressCycles(4096, 2048, 100) <= m.CompressCycles(4096, 2048, 0) {
		t.Fatal("compress cost must grow with search steps")
	}
}

// Property: all cost functions are non-negative and monotone in each work
// parameter for non-negative inputs.
func TestCostNonNegativeProperty(t *testing.T) {
	m := DefaultCostModel()
	f := func(a, b, c uint16) bool {
		n, d, s := int(a), int(b), int(c)
		return m.HashCycles(n) >= 0 &&
			m.ChunkCycles(n) >= 0 &&
			m.ProbeCycles(n, d) >= 0 &&
			m.CompressCycles(n, d, s) >= 0 &&
			m.DecompressCycles(n) >= 0 &&
			m.PostProcessCycles(n) >= 0 &&
			m.MemcpyCycles(n) >= 0 &&
			m.CompressCycles(n+1, d, s) >= m.CompressCycles(n, d, s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
