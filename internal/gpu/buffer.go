package gpu

import (
	"errors"
	"fmt"
)

// ErrOutOfDeviceMemory is returned by Alloc when the device memory budget
// would be exceeded.
var ErrOutOfDeviceMemory = errors.New("gpu: out of device memory")

// Buffer is a device-memory allocation. Data holds the buffer's real
// contents — kernels operate on it directly — while the allocation size is
// charged against the device's memory budget.
type Buffer struct {
	name string
	dev  *Device
	Data []byte
}

// Name returns the label the buffer was allocated with.
func (b *Buffer) Name() string { return b.name }

// Size returns the allocation size in bytes.
func (b *Buffer) Size() int { return len(b.Data) }

// Alloc reserves an n-byte device buffer. It returns ErrOutOfDeviceMemory
// if the device budget would be exceeded.
func (d *Device) Alloc(name string, n int) (*Buffer, error) {
	if n < 0 {
		return nil, fmt.Errorf("gpu: negative allocation %d for %q", n, name)
	}
	if d.memUsed+int64(n) > d.DeviceMemBytes {
		return nil, fmt.Errorf("%w: %q needs %d bytes, %d of %d in use",
			ErrOutOfDeviceMemory, name, n, d.memUsed, d.DeviceMemBytes)
	}
	d.memUsed += int64(n)
	return &Buffer{name: name, dev: d, Data: make([]byte, n)}, nil
}

// Free releases a buffer's device memory. Freeing a nil or already-freed
// buffer is a no-op.
func (d *Device) Free(b *Buffer) {
	if b == nil || b.Data == nil || b.dev != d {
		return
	}
	d.memUsed -= int64(len(b.Data))
	b.Data = nil
}

// MemUsed reports bytes currently allocated on the device.
func (d *Device) MemUsed() int64 { return d.memUsed }
