package gpu

import (
	"fmt"

	"inlinered/internal/lz"
)

// DecompressKernel is the read-side mirror of the sub-block compression
// kernel: a batch of mode-4 indexed containers decoded in the two-dispatch
// shape massively-parallel decompressors use (Sitaridi et al., GPULZ).
//
// Dispatch 1 (boundary resolution) runs one lane per blob: each lane walks
// only the boundary/length table PostProcess wrote — never a token — and
// resolves where every sub-block's tokens start and where its output
// lands. Dispatch 2 (decode) runs one lane per sub-block: lanes decode
// their token streams independently into disjoint output ranges. Matches
// reaching into the overlap history another lane owns are deferred; the
// patch-up is the host's post-processing job (the same CPU refinement role
// PostProcess plays on the write side) and is executed here after the
// lanes finish, uncharged to the device.
//
// Results are real: Outs holds the exact decoded bytes. The profile charges
// the real per-lane work (table entries walked, tokens decoded, bytes
// produced) folded through the lockstep wavefront rule, so a batch with one
// pathological sub-block pays divergence exactly as hardware would.
type DecompressKernel struct {
	Blobs     [][]byte // compressed mode-4 (or raw) blobs, device-resident
	Outs      [][]byte // per-blob output buffers, sized by the caller
	Cost      CostModel
	Wavefront int // lanes per wavefront (Config.WavefrontSize)

	// Outputs, valid after Run.
	SubParts int   // decode lanes launched in dispatch 2
	Err      error // first decode error (corrupt blob); profile still valid
}

// Name implements Kernel.
func (k *DecompressKernel) Name() string { return "decompress" }

// Run implements Kernel: both dispatches execute functionally, and their
// lockstep-folded profiles are summed (the command queue runs them
// back-to-back; Launch charges one dispatch overhead, which slightly
// favours the GPU — the cost model's decode constants absorb it).
func (k *DecompressKernel) Run() Profile {
	w := k.Wavefront
	if w < 1 {
		w = 1
	}
	resolveCycles := make([]float64, 0, len(k.Blobs))
	var decodeCycles []float64

	type partJob struct {
		blob int
		part int
	}
	layouts := make([]lz.SubLayout, len(k.Blobs))
	indexed := make([]bool, len(k.Blobs))
	var jobs []partJob

	// Dispatch 1: one lane per blob resolves the boundary table.
	for i, blob := range k.Blobs {
		ok, err := lz.ResolveSubBlocks(&layouts[i], blob)
		if err != nil {
			k.setErr(fmt.Errorf("gpu: blob %d: %w", i, err))
			continue
		}
		indexed[i] = ok
		cycles := k.Cost.DecodeBaseCycles
		if ok {
			cycles += float64(len(layouts[i].Parts)) * k.Cost.DecodeCyclesPerToken
			for p := range layouts[i].Parts {
				jobs = append(jobs, partJob{blob: i, part: p})
			}
		}
		resolveCycles = append(resolveCycles, cycles)
	}

	// Dispatch 2: one lane per sub-block decodes its token span.
	deferred := make([][]lz.DeferredCopy, len(k.Blobs))
	for _, j := range jobs {
		lay := &layouts[j.blob]
		var tokens int
		var err error
		deferred[j.blob], tokens, err = lz.DecodeSubPart(k.Outs[j.blob], lay, j.part, deferred[j.blob])
		if err != nil {
			k.setErr(fmt.Errorf("gpu: blob %d: %w", j.blob, err))
		}
		decodeCycles = append(decodeCycles,
			k.Cost.DecodeBaseCycles+
				float64(tokens)*k.Cost.DecodeCyclesPerToken+
				float64(lay.Parts[j.part].OutLen)*k.Cost.DecodeCyclesPerByte)
	}
	k.SubParts = len(jobs)

	// Non-indexed blobs (raw stores, legacy containers) decode whole-blob
	// on their resolve lane's follow-up; charged per output byte since no
	// token count is available from the serial decoder.
	for i, blob := range k.Blobs {
		if indexed[i] || len(blob) == 0 {
			continue
		}
		out, err := lz.Decompress(k.Outs[i][:0], blob)
		if err != nil {
			k.setErr(fmt.Errorf("gpu: blob %d: %w", i, err))
			continue
		}
		if len(out) != len(k.Outs[i]) {
			k.setErr(fmt.Errorf("gpu: blob %d: decoded %d bytes into a %d-byte buffer", i, len(out), len(k.Outs[i])))
			continue
		}
		copy(k.Outs[i], out)
		decodeCycles = append(decodeCycles,
			k.Cost.DecodeBaseCycles+float64(len(out))*2*k.Cost.DecodeCyclesPerByte)
	}

	// Host post-process: patch in the cross-lane overlap copies, then the
	// strict whole-blob check mirrors the serial decoder's.
	var local int64
	for i := range k.Blobs {
		if indexed[i] {
			lz.ResolveDeferred(k.Outs[i], deferred[i])
		}
		local += int64(len(k.Outs[i]))
	}

	p := Wavefronts(resolveCycles, w)
	d := Wavefronts(decodeCycles, w)
	p.Items += d.Items
	p.Waves += d.Waves
	p.SumWaveCycles += d.SumWaveCycles
	p.LaneCycles += d.LaneCycles
	if d.MaxWaveCycles > p.MaxWaveCycles {
		p.MaxWaveCycles = d.MaxWaveCycles
	}
	p.LocalBytes = local
	return p
}

func (k *DecompressKernel) setErr(err error) {
	if k.Err == nil {
		k.Err = err
	}
}
