// Package gpu simulates a discrete GPU accelerator of the class the paper
// evaluates on (an AMD Radeon HD 7970 driven through OpenCL).
//
// The simulator reproduces the three architectural properties §3.1(2) of the
// paper builds its design around:
//
//  1. The GPU hangs off PCIe: every batch pays a DMA setup latency plus
//     bytes/bandwidth to move between system and device memory (sim.Link).
//  2. Execution is SIMT: threads run in wavefronts that execute in lockstep,
//     so a wavefront costs as many cycles as its *slowest* lane — branch
//     divergence is charged for real, computed by each kernel from the
//     actual per-item work it performed.
//  3. Kernel dispatch has a fixed launch overhead (tens of microseconds on
//     the OpenCL stacks of the era), which puts a floor under small-batch
//     kernels. This is precisely why the paper finds CPU indexing 4.16–5.45×
//     faster than GPU indexing and decides to use the GPU for indexing only
//     when the CPU is saturated.
//
// Kernels are real Go code operating on real device-buffer bytes; they
// return a Profile describing the work they did, and the device converts
// that profile into virtual time. Only time is simulated — results are real.
package gpu

import (
	"fmt"
	"time"

	"inlinered/internal/fault"
	"inlinered/internal/obs"
	"inlinered/internal/sim"
)

// Config describes a simulated GPU.
type Config struct {
	Name            string
	ComputeUnits    int           // concurrent wavefront slots (32 on HD 7970)
	WavefrontSize   int           // lanes per wavefront (64 on GCN)
	ClockHz         float64       // shader clock (925 MHz on HD 7970)
	DeviceMemBytes  int64         // device memory capacity (3 GiB on HD 7970)
	LaunchOverhead  time.Duration // fixed per-kernel dispatch cost
	PCIeSetup       time.Duration // per-DMA setup latency
	PCIeBytesPerSec float64       // host<->device bandwidth
	Cost            CostModel     // per-operation device cycle costs
}

// DefaultConfig returns the paper-testbed GPU: a Radeon HD 7970-class part
// on PCIe with OpenCL-era launch overhead.
func DefaultConfig() Config {
	return Config{
		Name:            "Radeon HD 7970-class (32 CU x 64 @ 925 MHz)",
		ComputeUnits:    32,
		WavefrontSize:   64,
		ClockHz:         925e6,
		DeviceMemBytes:  3 << 30,
		LaunchOverhead:  90 * time.Microsecond,
		PCIeSetup:       15 * time.Microsecond,
		PCIeBytesPerSec: 8e9, // PCIe 3.0 x8 effective
		Cost:            DefaultCostModel(),
	}
}

// CostModel holds per-operation device cycle costs. GPU lanes are scalar,
// in-order and clocked low, so per-step costs are higher than host cycles
// for branchy work (index probes) and lower in aggregate for regular
// streaming work (LZ scanning) because thousands of lanes run at once.
type CostModel struct {
	// ProbeEntryCycles is the per-entry cost of scanning a linear bin table
	// (coalesced loads through local memory, one compare per entry).
	ProbeEntryCycles float64
	// ProbeBaseCycles is the fixed per-item cost of a probe (bin selection,
	// result write).
	ProbeBaseCycles float64

	// Compression: per-lane cost = CompressBaseCycles
	//                            + positions*CompressCyclesPerPosition
	//                            + searchSteps*MatchStepCycles
	//                            + dstBytes*EmitCyclesPerByte,
	// evaluated on the sub-block each lane owns (positions/steps/bytes come
	// from the real encoder run for that lane).
	CompressBaseCycles        float64
	CompressCyclesPerPosition float64
	MatchStepCycles           float64
	EmitCyclesPerByte         float64

	// Decompression: dispatch 1 (boundary resolution) costs
	// DecodeBaseCycles + tableEntries*DecodeCyclesPerToken per blob lane;
	// dispatch 2 (sub-block decode) costs DecodeBaseCycles
	// + tokens*DecodeCyclesPerToken + outBytes*DecodeCyclesPerByte per
	// sub-block lane (tokens/bytes from the real decode of that lane).
	DecodeBaseCycles     float64
	DecodeCyclesPerToken float64
	DecodeCyclesPerByte  float64

	// HashCyclesPerByte is the per-lane cost of fingerprinting a chunk
	// (SHA-1 is a serial dependency chain per chunk: one lane per chunk,
	// ALU-bound rounds plus global-memory loads of the chunk words).
	HashCyclesPerByte float64

	// LocalCopyCyclesPerByte is the cost of staging data from global to
	// local memory (charged when a kernel declares local traffic).
	LocalCopyCyclesPerByte float64
}

// DefaultCostModel returns the calibrated device cost model.
func DefaultCostModel() CostModel {
	return CostModel{
		// A linear-bin scan is one dependent global-memory load per entry
		// per lane; lanes in a wavefront scan *different* bins, so loads
		// never coalesce and each costs full memory latency.
		ProbeEntryCycles: 230,
		ProbeBaseCycles:  2000,

		// Effective per-position cost of the sub-block LZ kernel at
		// single-wavefront occupancy: each position chases ~10 dependent
		// global/local accesses (hash lookup, chain candidates, match
		// extension) at ~350-400 cycles each, with no other wavefront
		// resident to hide the latency.
		CompressBaseCycles:        3000,
		CompressCyclesPerPosition: 4300,
		MatchStepCycles:           25,
		EmitCyclesPerByte:         10,

		// Decode is a serial dependency chain per lane (flag byte, token,
		// copy), every step a dependent global/local access, but with none
		// of compression's match search: per token roughly one load pair,
		// per output byte one store. Still far slower per lane than a host
		// core — the win is thousands of lanes.
		DecodeBaseCycles:     1500,
		DecodeCyclesPerToken: 30,
		DecodeCyclesPerByte:  2,

		HashCyclesPerByte: 55,

		LocalCopyCyclesPerByte: 0.25,
	}
}

// Profile is a kernel's self-reported work profile. Kernels compute
// SumWaveCycles from the real per-item work: items are grouped into
// wavefronts of Config.WavefrontSize, each wavefront costs the maximum of
// its lanes' cycle counts (lockstep execution), and SumWaveCycles is the sum
// over all wavefronts. See Wavefronts for the standard aggregation helper.
type Profile struct {
	Items         int     // global work size (threads launched)
	Waves         int     // wavefronts executed
	SumWaveCycles float64 // Σ over wavefronts of max lane cycles
	MaxWaveCycles float64 // most expensive single wavefront (makespan floor)
	LaneCycles    float64 // Σ over lanes of their individual cycles (for divergence accounting)
	LocalBytes    int64   // bytes staged through local memory
}

// DivergenceFactor reports SIMT efficiency loss: executed wave cycles times
// wavefront width divided by useful lane cycles. 1.0 means no divergence;
// 2.0 means half the lanes idled on average. Returns 1 for empty profiles.
func (p Profile) DivergenceFactor(wavefrontSize int) float64 {
	if p.LaneCycles <= 0 {
		return 1
	}
	return p.SumWaveCycles * float64(wavefrontSize) / p.LaneCycles
}

// Wavefronts folds a slice of per-item cycle counts into a Profile using the
// lockstep rule: the kernel's items are packed into wavefronts of size w in
// order, and each wavefront costs its maximum lane.
func Wavefronts(perItemCycles []float64, w int) Profile {
	if w < 1 {
		panic("gpu: wavefront size must be >= 1")
	}
	p := Profile{Items: len(perItemCycles)}
	for i := 0; i < len(perItemCycles); i += w {
		end := i + w
		if end > len(perItemCycles) {
			end = len(perItemCycles)
		}
		var max float64
		for _, c := range perItemCycles[i:end] {
			p.LaneCycles += c
			if c > max {
				max = c
			}
		}
		p.SumWaveCycles += max
		if max > p.MaxWaveCycles {
			p.MaxWaveCycles = max
		}
		p.Waves++
	}
	return p
}

// Kernel is a unit of GPU work. Run executes the kernel functionally
// (producing real results in device buffers or host memory) and returns the
// work profile the device charges for.
type Kernel interface {
	Name() string
	Run() Profile
}

// KernelFunc adapts a function to the Kernel interface.
type KernelFunc struct {
	Label string
	Fn    func() Profile
}

// Name returns the kernel's label.
func (k KernelFunc) Name() string { return k.Label }

// Run invokes the wrapped function.
func (k KernelFunc) Run() Profile { return k.Fn() }

// Device is a simulated GPU. The command queue is in-order (one kernel at a
// time), matching the single OpenCL queue the paper's design uses; the PCIe
// link is shared by both transfer directions. Device is not safe for
// concurrent use.
type Device struct {
	Config
	queue      *sim.Pool
	link       *sim.Link
	memUsed    int64
	kernels    int64
	profiles   Profiles
	faults     *fault.Injector
	lost       bool
	rec        *obs.Recorder
	laneKernel obs.Lane // command-queue timeline
	lanePCIe   obs.Lane // DMA timeline
}

// Profiles accumulates device-wide kernel statistics.
type Profiles struct {
	Items         int64
	Waves         int64
	SumWaveCycles float64
	LaneCycles    float64
}

// New returns a Device for cfg. It panics on nonsensical configurations.
func New(cfg Config) *Device {
	switch {
	case cfg.ComputeUnits < 1:
		panic(fmt.Sprintf("gpu: need >=1 compute unit, got %d", cfg.ComputeUnits))
	case cfg.WavefrontSize < 1:
		panic(fmt.Sprintf("gpu: need >=1 lane per wavefront, got %d", cfg.WavefrontSize))
	case cfg.ClockHz <= 0:
		panic(fmt.Sprintf("gpu: need a positive clock, got %g", cfg.ClockHz))
	case cfg.PCIeBytesPerSec <= 0:
		panic(fmt.Sprintf("gpu: need positive PCIe bandwidth, got %g", cfg.PCIeBytesPerSec))
	}
	return &Device{
		Config: cfg,
		queue:  sim.NewPool("gpu:"+cfg.Name, 1),
		link:   sim.NewLink("pcie:"+cfg.Name, cfg.PCIeSetup, cfg.PCIeBytesPerSec),
	}
}

// Lanes returns the number of concurrently executing lanes
// (ComputeUnits × WavefrontSize).
func (d *Device) Lanes() int { return d.ComputeUnits * d.WavefrontSize }

// ComputeTime converts a kernel profile into pure compute time: wavefronts
// are distributed across compute units, so the makespan is
// SumWaveCycles/ComputeUnits — but never less than the most expensive
// single wavefront, which floors small launches that cannot fill the
// device (this is what makes assigning several lanes per chunk worthwhile,
// §3.2(2)). Local-memory staging is amortized across compute units.
func (d *Device) ComputeTime(p Profile) time.Duration {
	cycles := p.SumWaveCycles / float64(d.ComputeUnits)
	if p.MaxWaveCycles > cycles {
		cycles = p.MaxWaveCycles
	}
	cycles += float64(p.LocalBytes) * d.Cost.LocalCopyCyclesPerByte / float64(d.ComputeUnits)
	return sim.Cycles(cycles, d.ClockHz)
}

// SetFaultInjector threads a deterministic fault injector through kernel
// launches: a roll of the device-lost stream kills the device mid-dispatch,
// and every launch after that fails immediately. A nil injector disables
// injection.
func (d *Device) SetFaultInjector(fi *fault.Injector) { d.faults = fi }

// SetRecorder attaches an observability recorder with two trace lanes: one
// for the in-order command queue (kernel spans named after the kernel, with
// the item count as an argument) and one for the PCIe link ("h2d"/"d2h"
// spans carrying byte counts), so host-compute/DMA overlap is visible the
// way arXiv:1202.3669 renders it. A nil recorder disables recording.
func (d *Device) SetRecorder(r *obs.Recorder) {
	d.rec = r
	d.laneKernel = r.Lane("gpu", "kernels")
	d.lanePCIe = r.Lane("gpu", "pcie")
}

// Lost reports whether an injected device loss has killed the GPU. Once
// lost, the device stays lost; results of kernels that completed before the
// loss remain valid (they were already copied back or retired).
func (d *Device) Lost() bool { return d.lost }

// Launch runs kernel k, enqueued at virtual time at, and returns the kernel
// completion time together with the kernel's profile. The launch pays the
// fixed dispatch overhead and then the profile's compute time; kernels on
// the queue serialize.
//
// A launch on a lost device fails with fault.ErrDeviceLost without running
// the kernel. An injected device loss fires during dispatch: the launch
// overhead is charged (the host only learns of the loss from the failed
// dispatch), the kernel does not run, and the device is dead from then on.
func (d *Device) Launch(at time.Duration, k Kernel) (end time.Duration, p Profile, err error) {
	if d.lost {
		return at, Profile{}, fmt.Errorf("gpu: launch %s: %w", k.Name(), fault.ErrDeviceLost)
	}
	if d.faults.DeviceLost() {
		d.lost = true
		_, end = d.queue.Acquire(at, d.LaunchOverhead)
		d.rec.Instant(d.laneKernel, "device-lost", end)
		return end, Profile{}, fmt.Errorf("gpu: launch %s: %w", k.Name(), fault.ErrDeviceLost)
	}
	p = k.Run()
	dur := d.LaunchOverhead + d.ComputeTime(p)
	var start time.Duration
	start, end = d.queue.Acquire(at, dur)
	d.rec.SpanN(d.laneKernel, k.Name(), start, end, "items", int64(p.Items))
	d.kernels++
	d.profiles.Items += int64(p.Items)
	d.profiles.Waves += int64(p.Waves)
	d.profiles.SumWaveCycles += p.SumWaveCycles
	d.profiles.LaneCycles += p.LaneCycles
	return end, p, nil
}

// TransferToDevice charges an n-byte host-to-device DMA arriving at virtual
// time at and returns its completion time.
func (d *Device) TransferToDevice(at time.Duration, n int) time.Duration {
	start, end := d.link.Transfer(at, n)
	d.rec.SpanN(d.lanePCIe, "h2d", start, end, "bytes", int64(n))
	return end
}

// TransferFromDevice charges an n-byte device-to-host DMA.
func (d *Device) TransferFromDevice(at time.Duration, n int) time.Duration {
	start, end := d.link.Transfer(at, n)
	d.rec.SpanN(d.lanePCIe, "d2h", start, end, "bytes", int64(n))
	return end
}

// TransferTime returns the unqueued time for an n-byte DMA.
func (d *Device) TransferTime(n int) time.Duration { return d.link.TransferTime(n) }

// Busy reports whether the command queue is occupied at virtual time at.
func (d *Device) Busy(at time.Duration) bool { return d.queue.Saturated(at) }

// NextFree reports when the command queue frees up.
func (d *Device) NextFree() time.Duration { return d.queue.NextFree() }

// Horizon reports the device's latest scheduled completion (kernels and
// transfers).
func (d *Device) Horizon() time.Duration {
	return sim.MaxTime(d.queue.Horizon(), d.link.Horizon())
}

// Kernels reports the number of kernels launched so far.
func (d *Device) Kernels() int64 { return d.kernels }

// Stats returns accumulated kernel statistics.
func (d *Device) Stats() Profiles { return d.profiles }

// Utilization reports command-queue occupancy over [0, until].
func (d *Device) Utilization(until time.Duration) float64 { return d.queue.Utilization(until) }

// LinkUtilization reports PCIe occupancy over [0, until].
func (d *Device) LinkUtilization(until time.Duration) float64 { return d.link.Utilization(until) }

// Reset clears the device timeline, statistics, and nothing else: allocated
// buffers and their contents survive, matching a persistent device-resident
// index across runs. Use FreeAll to drop buffers too.
func (d *Device) Reset() {
	d.queue.Reset()
	d.link.Reset()
	d.kernels = 0
	d.profiles = Profiles{}
}
