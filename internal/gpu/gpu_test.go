package gpu

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"inlinered/internal/fault"
)

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.ComputeUnits = 2
	cfg.WavefrontSize = 4
	cfg.ClockHz = 1e9
	cfg.LaunchOverhead = 10 * time.Microsecond
	cfg.PCIeSetup = time.Microsecond
	cfg.PCIeBytesPerSec = 1e9
	cfg.DeviceMemBytes = 1 << 20
	return cfg
}

func TestWavefrontsLockstep(t *testing.T) {
	// 8 items, wavefront of 4: waves cost max(1,2,3,4)=4 and max(10,1,1,1)=10.
	p := Wavefronts([]float64{1, 2, 3, 4, 10, 1, 1, 1}, 4)
	if p.Items != 8 || p.Waves != 2 {
		t.Fatalf("items/waves: %d/%d", p.Items, p.Waves)
	}
	if p.SumWaveCycles != 14 {
		t.Fatalf("SumWaveCycles: got %g, want 14", p.SumWaveCycles)
	}
	if p.LaneCycles != 23 {
		t.Fatalf("LaneCycles: got %g, want 23", p.LaneCycles)
	}
}

func TestWavefrontsPartialWave(t *testing.T) {
	p := Wavefronts([]float64{5, 7}, 4)
	if p.Waves != 1 || p.SumWaveCycles != 7 {
		t.Fatalf("partial wave: waves=%d sum=%g", p.Waves, p.SumWaveCycles)
	}
}

func TestDivergenceFactor(t *testing.T) {
	// Uniform lanes: no divergence.
	p := Wavefronts([]float64{3, 3, 3, 3}, 4)
	if got := p.DivergenceFactor(4); got != 1.0 {
		t.Fatalf("uniform divergence: got %g, want 1", got)
	}
	// One hot lane: wave costs 8, lanes total 8+3 = 11; factor = 8*4/11.
	p = Wavefronts([]float64{8, 1, 1, 1}, 4)
	want := 8.0 * 4 / 11
	if got := p.DivergenceFactor(4); got != want {
		t.Fatalf("divergence: got %g, want %g", got, want)
	}
	if (Profile{}).DivergenceFactor(4) != 1 {
		t.Fatal("empty profile should report factor 1")
	}
}

func TestLaunchChargesOverheadAndCompute(t *testing.T) {
	d := New(testConfig())
	// 2 waves of 1000 cycles each on 2 CUs -> 1000 cycles at 1 GHz = 1 µs.
	k := KernelFunc{Label: "k", Fn: func() Profile {
		return Profile{Items: 8, Waves: 2, SumWaveCycles: 2000, LaneCycles: 8000}
	}}
	end, _, _ := d.Launch(0, k)
	want := 10*time.Microsecond + time.Microsecond
	if end != want {
		t.Fatalf("launch end: got %v, want %v", end, want)
	}
	if d.Kernels() != 1 {
		t.Fatalf("kernel count: %d", d.Kernels())
	}
}

func TestLaunchSerializesOnQueue(t *testing.T) {
	d := New(testConfig())
	k := KernelFunc{Label: "k", Fn: func() Profile { return Profile{} }}
	end1, _, _ := d.Launch(0, k)
	end2, _, _ := d.Launch(0, k)
	if end2 != end1+d.LaunchOverhead {
		t.Fatalf("second kernel should queue: end1=%v end2=%v", end1, end2)
	}
	if !d.Busy(0) {
		t.Fatal("device should be busy at t=0")
	}
}

func TestLaunchOverheadFloor(t *testing.T) {
	// The architectural point of §3.1(3): tiny kernels cost the launch
	// overhead no matter how little work they do.
	d := New(testConfig())
	k := KernelFunc{Label: "tiny", Fn: func() Profile {
		return Wavefronts([]float64{1}, d.WavefrontSize)
	}}
	end, _, _ := d.Launch(0, k)
	if end < d.LaunchOverhead {
		t.Fatalf("kernel finished before launch overhead: %v < %v", end, d.LaunchOverhead)
	}
}

func TestTransfers(t *testing.T) {
	d := New(testConfig())
	end := d.TransferToDevice(0, 1000) // 1 µs setup + 1 µs wire
	if end != 2*time.Microsecond {
		t.Fatalf("HtoD: got %v, want 2µs", end)
	}
	// Shares one link: queued behind the first transfer.
	end2 := d.TransferFromDevice(0, 0)
	if end2 != end+time.Microsecond {
		t.Fatalf("DtoH should queue on the shared link: got %v", end2)
	}
}

func TestAllocFree(t *testing.T) {
	d := New(testConfig())
	b, err := d.Alloc("bins", 1<<19)
	if err != nil {
		t.Fatal(err)
	}
	if d.MemUsed() != 1<<19 || b.Size() != 1<<19 {
		t.Fatalf("mem accounting: used=%d size=%d", d.MemUsed(), b.Size())
	}
	if _, err := d.Alloc("too-big", 1<<20); !errors.Is(err, ErrOutOfDeviceMemory) {
		t.Fatalf("expected out-of-memory, got %v", err)
	}
	d.Free(b)
	if d.MemUsed() != 0 {
		t.Fatalf("free should return memory: used=%d", d.MemUsed())
	}
	d.Free(b) // double free is a no-op
	if _, err := d.Alloc("neg", -1); err == nil {
		t.Fatal("negative alloc should error")
	}
}

func TestResetKeepsBuffers(t *testing.T) {
	d := New(testConfig())
	b, _ := d.Alloc("persistent", 128)
	b.Data[0] = 42
	d.Launch(0, KernelFunc{Label: "k", Fn: func() Profile { return Profile{} }})
	d.Reset()
	if d.Kernels() != 0 || d.Busy(0) {
		t.Fatal("reset should clear timeline")
	}
	if b.Data[0] != 42 || d.MemUsed() != 128 {
		t.Fatal("reset must not free device buffers (the index persists)")
	}
}

func TestNewValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.ComputeUnits = 0 },
		func(c *Config) { c.WavefrontSize = 0 },
		func(c *Config) { c.ClockHz = 0 },
		func(c *Config) { c.PCIeBytesPerSec = 0 },
	}
	for i, mut := range bad {
		cfg := testConfig()
		mut(&cfg)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: New should panic", i)
				}
			}()
			New(cfg)
		}()
	}
}

// Property: Wavefronts conserves lane cycles and its wave sum is bounded by
// [LaneCycles/w, LaneCycles] (max per wave is between mean and sum).
func TestWavefrontsBoundsProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8, wRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%200) + 1
		w := int(wRaw%16) + 1
		cycles := make([]float64, n)
		var total float64
		for i := range cycles {
			cycles[i] = float64(rng.Intn(1000))
			total += cycles[i]
		}
		p := Wavefronts(cycles, w)
		if p.LaneCycles != total {
			return false
		}
		return p.SumWaveCycles >= total/float64(w)-1e-9 && p.SumWaveCycles <= total+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: divergence factor is always >= 1.
func TestDivergenceAtLeastOneProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%100) + 1
		cycles := make([]float64, n)
		for i := range cycles {
			cycles[i] = float64(rng.Intn(100) + 1)
		}
		p := Wavefronts(cycles, 8)
		return p.DivergenceFactor(8) >= 1-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDeviceAccessors(t *testing.T) {
	cfg := testConfig()
	d := New(cfg)
	if d.Lanes() != cfg.ComputeUnits*cfg.WavefrontSize {
		t.Fatalf("lanes: %d", d.Lanes())
	}
	if d.TransferTime(0) != cfg.PCIeSetup {
		t.Fatalf("zero-byte transfer should cost setup only: %v", d.TransferTime(0))
	}
	k := KernelFunc{Label: "acc", Fn: func() Profile {
		return Wavefronts([]float64{100, 200}, 2)
	}}
	if k.Name() != "acc" {
		t.Fatal("kernel name")
	}
	end, _, _ := d.Launch(0, k)
	if d.NextFree() != end {
		t.Fatalf("NextFree: %v vs %v", d.NextFree(), end)
	}
	tEnd := d.TransferToDevice(0, 1000)
	if d.Horizon() < tEnd || d.Horizon() < end {
		t.Fatal("horizon must cover queue and link")
	}
	st := d.Stats()
	if st.Items != 2 || st.Waves != 1 {
		t.Fatalf("device stats: %+v", st)
	}
	if u := d.Utilization(end); u <= 0 || u > 1 {
		t.Fatalf("utilization: %g", u)
	}
	if u := d.LinkUtilization(tEnd); u <= 0 || u > 1 {
		t.Fatalf("link utilization: %g", u)
	}
	b, _ := d.Alloc("named", 8)
	if b.Name() != "named" {
		t.Fatal("buffer name")
	}
}

// --- fault injection ---

func TestDeviceLostKillsLaunches(t *testing.T) {
	d := New(testConfig())
	d.SetFaultInjector(fault.New(fault.Config{
		Seed:  1,
		Rates: fault.Rates{GPUDeviceLost: 1},
	}))
	ran := false
	k := KernelFunc{Label: "victim", Fn: func() Profile { ran = true; return Profile{} }}

	end, _, err := d.Launch(0, k)
	if err == nil || !errors.Is(err, fault.ErrDeviceLost) {
		t.Fatalf("want ErrDeviceLost, got %v", err)
	}
	if ran {
		t.Fatal("kernel must not run on a lost device")
	}
	if !d.Lost() {
		t.Fatal("device must report itself lost")
	}
	// The failed dispatch still charged its launch overhead.
	if end != d.LaunchOverhead {
		t.Fatalf("failed dispatch end = %v, want %v", end, d.LaunchOverhead)
	}
	if d.Kernels() != 0 {
		t.Fatalf("no kernel completed, counter says %d", d.Kernels())
	}

	// Every later launch fails fast, without further timeline charges.
	end2, _, err := d.Launch(end, k)
	if err == nil || !errors.Is(err, fault.ErrDeviceLost) {
		t.Fatalf("launch after loss: want ErrDeviceLost, got %v", err)
	}
	if end2 != end {
		t.Fatalf("launch on a dead device must not advance time: %v -> %v", end, end2)
	}
}

func TestDeviceLossIsDeterministic(t *testing.T) {
	run := func() int {
		d := New(testConfig())
		d.SetFaultInjector(fault.New(fault.Config{
			Seed:  99,
			Rates: fault.Rates{GPUDeviceLost: 0.05},
		}))
		k := KernelFunc{Label: "k", Fn: func() Profile { return Profile{Items: 1} }}
		var at time.Duration
		for i := 0; i < 400; i++ {
			end, _, err := d.Launch(at, k)
			if err != nil {
				return i
			}
			at = end
		}
		return -1
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("loss point diverged for same seed: %d vs %d", a, b)
	}
	if a < 0 {
		t.Fatal("rate 0.05 over 400 launches should have fired")
	}
}
