package gpu

import (
	"bytes"
	"math/rand"
	"testing"

	"inlinered/internal/lz"
)

func decompressCorpus() [][]byte {
	rng := rand.New(rand.NewSource(23))
	random := make([]byte, 4096)
	rng.Read(random)
	text := bytes.Repeat([]byte("vdi boot storm reads the golden image again and again. "), 80)[:4096]
	mixed := append(append([]byte{}, random[:2048]...), make([]byte, 2048)...)
	return [][]byte{random, text, mixed, make([]byte, 4096), []byte("tiny")}
}

// TestDecompressKernelDifferential: the kernel's decoded bytes must equal
// the serial decoder's for every corpus chunk, through both the indexed
// container and the raw fallback.
func TestDecompressKernelDifferential(t *testing.T) {
	chunks := decompressCorpus()
	var blobs, outs [][]byte
	for _, data := range chunks {
		res := lz.CompressSubBlocks(data, lz.DefaultSubBlockParams())
		blob, _, err := lz.PostProcessOrRaw(nil, data, res)
		if err != nil {
			t.Fatal(err)
		}
		blobs = append(blobs, blob)
		outs = append(outs, make([]byte, len(data)))
	}
	k := &DecompressKernel{Blobs: blobs, Outs: outs, Cost: DefaultCostModel(), Wavefront: 64}
	p := k.Run()
	if k.Err != nil {
		t.Fatal(k.Err)
	}
	for i, data := range chunks {
		if !bytes.Equal(outs[i], data) {
			t.Fatalf("chunk %d: kernel decode diverges from source", i)
		}
	}
	if p.Items < len(blobs) || p.Waves < 1 || p.SumWaveCycles <= 0 {
		t.Fatalf("implausible profile: %+v", p)
	}
	if f := p.DivergenceFactor(64); f < 1 {
		t.Fatalf("divergence factor %g < 1", f)
	}
	if k.SubParts < 4 {
		t.Fatalf("expected sub-block decode lanes, got %d", k.SubParts)
	}
}

// TestDecompressKernelCorrupt: a corrupt blob surfaces in Err, the other
// blobs still decode, and the kernel never panics.
func TestDecompressKernelCorrupt(t *testing.T) {
	data := bytes.Repeat([]byte("abcdefgh"), 512)
	res := lz.CompressSubBlocks(data, lz.DefaultSubBlockParams())
	good, _ := lz.PostProcess(nil, res)
	bad := append([]byte(nil), good...)
	bad[len(bad)-2] ^= 0xFF
	outs := [][]byte{make([]byte, len(data)), make([]byte, len(data))}
	k := &DecompressKernel{Blobs: [][]byte{good, bad}, Outs: outs, Cost: DefaultCostModel(), Wavefront: 64}
	k.Run()
	if !bytes.Equal(outs[0], data) {
		t.Fatal("good blob must decode despite a corrupt neighbour")
	}
	if k.Err == nil {
		t.Fatal("corrupt blob must surface an error")
	}
}

// TestDecompressKernelOnDevice: launching the kernel charges dispatch
// overhead plus folded compute time on the command queue.
func TestDecompressKernelOnDevice(t *testing.T) {
	d := New(DefaultConfig())
	data := bytes.Repeat([]byte("the boot sequence of a shared golden image "), 100)[:4096]
	res := lz.CompressSubBlocks(data, lz.DefaultSubBlockParams())
	blob, _ := lz.PostProcess(nil, res)
	k := &DecompressKernel{Blobs: [][]byte{blob}, Outs: [][]byte{make([]byte, len(data))}, Cost: d.Cost, Wavefront: d.WavefrontSize}
	end, p, err := d.Launch(0, k)
	if err != nil || k.Err != nil {
		t.Fatalf("launch: %v / %v", err, k.Err)
	}
	if end < d.LaunchOverhead {
		t.Fatalf("launch must charge at least the dispatch overhead, got %v", end)
	}
	if want := d.LaunchOverhead + d.ComputeTime(p); end != want {
		t.Fatalf("end %v, want overhead+compute %v", end, want)
	}
	if !bytes.Equal(k.Outs[0], data) {
		t.Fatal("device decode diverges from source")
	}
}
