package lz

import (
	"encoding/binary"
	"fmt"
)

// SubBlockParams tune the GPU-shaped encoder of §3.2(2).
type SubBlockParams struct {
	Params
	// SubBlocks is the number of lanes assigned to one chunk; each lane
	// compresses its own contiguous sub-block.
	SubBlocks int
	// Overlap is how many bytes of the preceding sub-block each lane
	// preloads as history ("adjacent threads inspect overlapping regions
	// by the size of the history buffer"). Clamped to the format window.
	Overlap int
}

// DefaultSubBlockParams matches the paper's setting for 4 KB chunks:
// four lanes per chunk, each seeing half a window of its neighbour.
func DefaultSubBlockParams() SubBlockParams {
	return SubBlockParams{Params: DefaultParams(), SubBlocks: 4, Overlap: Window / 8}
}

// LaneResult is the raw output of one GPU lane: an unrefined token stream
// plus the work it took. This is what travels back over PCIe for the CPU to
// post-process.
type LaneResult struct {
	Tokens []byte
	Stats  Stats
}

// SubBlockResult is one chunk's worth of raw lane outputs.
type SubBlockResult struct {
	SrcLen int
	Lanes  []LaneResult
}

// RawBytes returns the total un-refined payload the lanes produced (what
// the device-to-host transfer carries).
func (r SubBlockResult) RawBytes() int {
	n := 0
	for _, l := range r.Lanes {
		n += len(l.Tokens)
	}
	return n
}

// CompressSubBlocks runs the GPU compression kernel's algorithm: the chunk
// is split into p.SubBlocks contiguous sub-blocks, each compressed
// independently by "its own LZ compression algorithm with its own history
// buffer and look-ahead buffer", with each lane preloading p.Overlap bytes
// of its left neighbour as history. The per-lane Stats feed the GPU cost
// model (each lane is one SIMT work item).
//
// The result is intentionally unrefined — assembling a decodable container
// is the CPU's post-processing job (PostProcess), as in the paper.
func CompressSubBlocks(src []byte, p SubBlockParams) SubBlockResult {
	if p.SubBlocks < 1 {
		p.SubBlocks = 1
	}
	if p.Overlap < 0 {
		p.Overlap = 0
	}
	if p.Overlap > Window {
		p.Overlap = Window
	}
	res := SubBlockResult{SrcLen: len(src)}
	if len(src) == 0 {
		return res
	}
	n := p.SubBlocks
	if n > len(src) {
		n = len(src)
	}
	for i := 0; i < n; i++ {
		start := i * len(src) / n
		end := (i + 1) * len(src) / n
		histStart := start - p.Overlap
		if histStart < 0 {
			histStart = 0
		}
		// Lane token streams are retained in the result (they travel back
		// over the simulated PCIe link), so they are not scratch-pooled.
		tokens, st := encodeRange(nil, src[histStart:end], start-histStart, p.Params)
		res.Lanes = append(res.Lanes, LaneResult{Tokens: tokens, Stats: st})
	}
	return res
}

// PostProcess is the CPU refinement step: it stitches the raw lane streams
// into the final mode-4 indexed container, or falls back to a raw store
// when the lanes' combined output does not beat the source ("the CPU must
// refine the results", §3.2(2)). The boundary table it writes — per part,
// the token-stream length AND the exact output length (each lane's
// Stats.SrcBytes, the span it encoded) — is what lets the read path
// resolve every part's output range in one cheap pass and decode the parts
// independently (ResolveSubBlocks/DecodeSubPart). The returned Stats
// describe the final blob; its SearchSteps are zero because the search
// already happened on the device.
func PostProcess(dst []byte, res SubBlockResult) ([]byte, Stats) {
	var st Stats
	st.SrcBytes = res.SrcLen

	var table []byte
	payload := 0
	for _, l := range res.Lanes {
		var tmp [2 * binary.MaxVarintLen64]byte
		k := binary.PutUvarint(tmp[:], uint64(len(l.Tokens)))
		k += binary.PutUvarint(tmp[k:], uint64(l.Stats.SrcBytes))
		table = append(table, tmp[:k]...)
		payload += len(l.Tokens)
		st.Literals += l.Stats.Literals
		st.Matches += l.Stats.Matches
		st.Positions += l.Stats.Positions
	}
	var hdr [2 * binary.MaxVarintLen64]byte
	hn := binary.PutUvarint(hdr[:], uint64(res.SrcLen))
	var pc [binary.MaxVarintLen64]byte
	pn := binary.PutUvarint(pc[:], uint64(len(res.Lanes)))

	total := 1 + hn + pn + len(table) + payload
	dst = append(dst, ModeSubIdx)
	dst = append(dst, hdr[:hn]...)
	dst = append(dst, pc[:pn]...)
	dst = append(dst, table...)
	for _, l := range res.Lanes {
		dst = append(dst, l.Tokens...)
	}
	st.DstBytes = total
	return dst, st
}

// PostProcessOrRaw refines the lane results like PostProcess but falls back
// to a mode-0 raw store of src when the container would not be smaller.
// src must be the exact chunk that produced res.
func PostProcessOrRaw(dst, src []byte, res SubBlockResult) ([]byte, Stats, error) {
	if len(src) != res.SrcLen {
		return dst, Stats{}, fmt.Errorf("lz: source (%d bytes) does not match lane result (%d bytes)", len(src), res.SrcLen)
	}
	blob, st := PostProcess(nil, res)
	var hdr [binary.MaxVarintLen64 + 1]byte
	n := binary.PutUvarint(hdr[1:], uint64(len(src)))
	if len(blob) >= len(src)+n+1 {
		hdr[0] = ModeRaw
		dst = append(dst, hdr[:n+1]...)
		dst = append(dst, src...)
		return dst, Stats{SrcBytes: len(src), DstBytes: n + 1 + len(src)}, nil
	}
	return append(dst, blob...), st, nil
}
