package lz

import (
	"encoding/binary"
	"fmt"
)

// This file implements a QuickLZ-class codec — the paper's CPU compression
// baseline is "parallel QuickLZ" (§6). Compared to the LZSS encoder it
// trades ratio for speed the way QuickLZ level 1 does:
//
//   - single-probe match search: one hash-table slot per position, no
//     chains (SearchSteps ≈ one per position);
//   - greedy, unbounded-ish matches: 8-bit length field (up to 258 bytes
//     per token) instead of LZSS's 18-byte cap, so runs collapse fast;
//   - 32-item control words instead of per-8 flag bytes.
//
// Format (mode 3 payload): repeated groups of one little-endian uint32
// control word followed by its items, LSB first; bit 0 = literal (1 byte),
// bit 1 = match (3 bytes: 16-bit offset-1, 8-bit length-QLZMinMatch).
const (
	// QLZWindow is the match reach (16-bit offsets).
	QLZWindow = 1 << 16
	// QLZMinMatch is the shortest encodable match.
	QLZMinMatch = 3
	// QLZMaxMatch is the longest encodable match (8-bit length field).
	QLZMaxMatch = QLZMinMatch + 255
)

// qlzWriter emits the control-word interleaved stream.
type qlzWriter struct {
	out      []byte
	ctrlPos  int
	ctrl     uint32
	ctrlBit  uint
	literals int
	matches  int
}

func (w *qlzWriter) item(isMatch bool) {
	if w.ctrlBit == 0 {
		w.flushCtrl()
		w.ctrlPos = len(w.out)
		w.out = append(w.out, 0, 0, 0, 0)
	}
	if isMatch {
		w.ctrl |= 1 << w.ctrlBit
	}
	w.ctrlBit++
	if w.ctrlBit == 32 {
		w.flushCtrl()
	}
}

func (w *qlzWriter) flushCtrl() {
	if w.ctrlPos+4 <= len(w.out) && (w.ctrlBit > 0 || w.ctrl != 0) {
		binary.LittleEndian.PutUint32(w.out[w.ctrlPos:], w.ctrl)
	}
	w.ctrl, w.ctrlBit = 0, 0
}

func (w *qlzWriter) literal(b byte) {
	w.item(false)
	w.out = append(w.out, b)
	w.literals++
}

func (w *qlzWriter) match(offset, length int) {
	w.item(true)
	w.out = append(w.out, byte(offset-1), byte((offset-1)>>8), byte(length-QLZMinMatch))
	w.matches++
}

func (w *qlzWriter) finish() []byte {
	w.flushCtrl()
	return w.out
}

// qlzEncode compresses src with the single-probe greedy search.
func qlzEncode(out []byte, src []byte) ([]byte, Stats) {
	var st Stats
	st.SrcBytes = len(src)
	w := qlzWriter{out: out}
	var table [1 << hashBits]int32
	for i := range table {
		table[i] = -1
	}
	pos := 0
	for pos < len(src) {
		if pos+4 > len(src) {
			w.literal(src[pos])
			st.Positions++
			pos++
			continue
		}
		h := hash4(binary.LittleEndian.Uint32(src[pos:]))
		cand := table[h]
		table[h] = int32(pos)
		st.Positions++
		if cand >= 0 && pos-int(cand) <= QLZWindow {
			st.SearchSteps++
			maxLen := len(src) - pos
			if maxLen > QLZMaxMatch {
				maxLen = QLZMaxMatch
			}
			l := matchLen(src, int(cand), pos, maxLen)
			if l >= QLZMinMatch {
				w.match(pos-int(cand), l)
				// Sparse table refresh inside the match (QuickLZ skips
				// most interior positions — part of its speed).
				for i := pos + 1; i < pos+l && i+4 <= len(src); i += 4 {
					table[hash4(binary.LittleEndian.Uint32(src[i:]))] = int32(i)
				}
				pos += l
				continue
			}
		}
		w.literal(src[pos])
		pos++
	}
	tokens := w.finish()
	st.Literals, st.Matches = w.literals, w.matches
	return tokens, st
}

// CompressQLZ encodes src as a self-describing blob with the QuickLZ-class
// codec (mode 3, or mode 0 raw when compression does not pay), appended to
// dst. Decode with the regular Decompress.
func CompressQLZ(dst, src []byte) ([]byte, Stats) {
	sc := tokenScratchPool.Get().(*tokenScratch)
	tokens, st := qlzEncode(sc.buf[:0], src)
	var hdr [binary.MaxVarintLen64 + 1]byte
	n := binary.PutUvarint(hdr[1:], uint64(len(src)))
	if len(tokens)+n+1 >= len(src) {
		hdr[0] = ModeRaw
		dst = append(dst, hdr[:n+1]...)
		dst = append(dst, src...)
		st = Stats{SrcBytes: len(src), SearchSteps: st.SearchSteps,
			Positions: st.Positions, DstBytes: n + 1 + len(src)}
	} else {
		hdr[0] = ModeQLZ
		dst = append(dst, hdr[:n+1]...)
		dst = append(dst, tokens...)
		st.DstBytes = n + 1 + len(tokens)
	}
	sc.buf = tokens
	tokenScratchPool.Put(sc)
	return dst, st
}

// decodeQLZ decodes a mode-3 payload, appending to dst.
func decodeQLZ(dst, stream []byte, base int) ([]byte, error) {
	i := 0
	for i < len(stream) {
		if i+4 > len(stream) {
			return dst, fmt.Errorf("%w: truncated control word", ErrCorrupt)
		}
		ctrl := binary.LittleEndian.Uint32(stream[i:])
		i += 4
		for bit := 0; bit < 32 && i < len(stream); bit++ {
			if ctrl&(1<<uint(bit)) == 0 {
				dst = append(dst, stream[i])
				i++
				continue
			}
			if i+3 > len(stream) {
				return dst, fmt.Errorf("%w: truncated match token", ErrCorrupt)
			}
			offset := int(stream[i]) | int(stream[i+1])<<8
			offset++
			length := int(stream[i+2]) + QLZMinMatch
			i += 3
			p := len(dst)
			if p-offset < base {
				return dst, fmt.Errorf("%w: match offset %d reaches before output start", ErrCorrupt, offset)
			}
			for j := 0; j < length; j++ {
				dst = append(dst, dst[p-offset+j])
			}
		}
	}
	return dst, nil
}
