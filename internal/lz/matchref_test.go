package lz

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"math/rand"
	"testing"
)

// matchLenRef is the original scalar byte-at-a-time comparison loop, kept
// as the reference the word-wise matchLen must agree with exactly. The
// differential tests and FuzzMatchLen below hold the two together over
// random and adversarial overlaps; the golden table further down pins the
// encoder's observable output (token bytes and SearchSteps) to the values
// the scalar loop produced, so the optimization cannot drift the virtual
// cost model.
func matchLenRef(data []byte, a, b, max int) int {
	n := 0
	for n < max && data[a+n] == data[b+n] {
		n++
	}
	return n
}

// matchLenCases enumerates (data, a, b, max) triples that exercise the
// word-wise loop's edges: mismatches inside the first word, on every byte
// lane, exactly at the tail, and runs longer than several words.
func matchLenCases() [][]byte {
	rng := rand.New(rand.NewSource(7))
	var cases [][]byte
	// Fully equal halves of varying lengths, including non-multiples of 8.
	for _, n := range []int{0, 1, 3, 7, 8, 9, 15, 16, 17, 31, 64, 255, 256, 300} {
		half := make([]byte, n)
		rng.Read(half)
		cases = append(cases, append(append([]byte{}, half...), half...))
	}
	// Equal halves with a single mismatch planted at every early position.
	for planted := 0; planted < 24; planted++ {
		half := make([]byte, 40)
		rng.Read(half)
		data := append(append([]byte{}, half...), half...)
		data[len(half)+planted] ^= 0x5a
		cases = append(cases, data)
	}
	// Pure random (mismatch almost immediately) and all-equal bytes.
	random := make([]byte, 512)
	rng.Read(random)
	cases = append(cases, random, bytes.Repeat([]byte{0xee}, 512))
	return cases
}

func TestMatchLenMatchesReference(t *testing.T) {
	for ci, data := range matchLenCases() {
		for a := 0; a < len(data) && a < 48; a++ {
			for b := a + 1; b < len(data); b += 7 {
				for _, max := range []int{0, 1, 4, 7, 8, 16, 18, 256, len(data) - b} {
					if max > len(data)-b {
						continue
					}
					got := matchLen(data, a, b, max)
					want := matchLenRef(data, a, b, max)
					if got != want {
						t.Fatalf("case %d a=%d b=%d max=%d: matchLen=%d, ref=%d", ci, a, b, max, got, want)
					}
				}
			}
		}
	}
}

// TestMatchLenOverlapping covers the self-referential case the encoder
// relies on for run-length-style matches: a and b close together, so the
// compared ranges overlap.
func TestMatchLenOverlapping(t *testing.T) {
	data := bytes.Repeat([]byte{1, 2, 3}, 100)
	for a := 0; a < 12; a++ {
		for b := a + 1; b < 24; b++ {
			for max := 0; max <= len(data)-b; max += 5 {
				got := matchLen(data, a, b, max)
				want := matchLenRef(data, a, b, max)
				if got != want {
					t.Fatalf("a=%d b=%d max=%d: matchLen=%d, ref=%d", a, b, max, got, want)
				}
			}
		}
	}
}

// encoderGoldens pins Compress/CompressQLZ output bytes (sha256 prefix) and
// SearchSteps on the shared test corpus to the values recorded with the
// scalar matcher, before matchLen went word-wise and find gained the
// best-len rejection probe. SearchSteps feeds the virtual-time cost model,
// and the token bytes feed the golden Report/trace files in internal/core —
// neither may move.
var encoderGoldens = []struct {
	name, cfg string
	steps     int
	dstBytes  int
	sum       string
}{
	{"empty", "default", 0, 2, "96a296d224f285c6"},
	{"empty", "best", 0, 2, "96a296d224f285c6"},
	{"empty", "qlz", 0, 2, "96a296d224f285c6"},
	{"mixed", "default", 366, 2551, "78df75e04e7d6353"},
	{"mixed", "best", 367, 2551, "78df75e04e7d6353"},
	{"mixed", "qlz", 235, 2336, "97efdc6ebdf9d168"},
	{"onebyte", "default", 0, 3, "e5d8594f7b3e3d1e"},
	{"onebyte", "best", 0, 3, "e5d8594f7b3e3d1e"},
	{"onebyte", "qlz", 0, 3, "e5d8594f7b3e3d1e"},
	{"periodic", "default", 272, 589, "e60c8a8ace704e4a"},
	{"periodic", "best", 273, 589, "e60c8a8ace704e4a"},
	{"periodic", "qlz", 19, 71, "912ecf7681035c72"},
	{"random", "default", 1093, 4099, "c4fa2661692f006e"},
	{"random", "best", 1093, 4099, "c4fa2661692f006e"},
	{"random", "qlz", 904, 4099, "c4fa2661692f006e"},
	{"text", "default", 299, 580, "7d131088e8c64e0f"},
	{"text", "best", 301, 579, "9a815dfe9155002b"},
	{"text", "qlz", 20, 111, "dbab4789fa0057d7"},
	{"tiny", "default", 0, 5, "757f0dea9aa0c1f8"},
	{"tiny", "best", 0, 5, "757f0dea9aa0c1f8"},
	{"tiny", "qlz", 0, 5, "757f0dea9aa0c1f8"},
	{"zeros", "default", 228, 489, "edb395802de7131d"},
	{"zeros", "best", 229, 489, "edb395802de7131d"},
	{"zeros", "qlz", 16, 56, "f24b930d5df6fc17"},
}

func TestEncoderOutputUnchangedByMatcherOptimization(t *testing.T) {
	data := corpus()
	for _, g := range encoderGoldens {
		var blob []byte
		var st Stats
		switch g.cfg {
		case "default":
			blob, st = Compress(nil, data[g.name], DefaultParams())
		case "best":
			blob, st = Compress(nil, data[g.name], BestParams())
		case "qlz":
			blob, st = CompressQLZ(nil, data[g.name])
		default:
			t.Fatalf("unknown config %q", g.cfg)
		}
		if st.SearchSteps != g.steps {
			t.Errorf("%s/%s: SearchSteps %d, golden %d (virtual-time cost model would shift)", g.name, g.cfg, st.SearchSteps, g.steps)
		}
		if st.DstBytes != g.dstBytes {
			t.Errorf("%s/%s: DstBytes %d, golden %d", g.name, g.cfg, st.DstBytes, g.dstBytes)
		}
		sum := sha256.Sum256(blob)
		if got := fmt.Sprintf("%x", sum[:8]); got != g.sum {
			t.Errorf("%s/%s: token bytes hash %s, golden %s", g.name, g.cfg, got, g.sum)
		}
	}
}
