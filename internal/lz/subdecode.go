package lz

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// This file is the read-side mirror of CompressSubBlocks/PostProcess: the
// two-pass parallel decoder for mode-4 indexed sub-block containers.
//
// Massively-parallel decompression (Sitaridi et al., GPULZ) hinges on one
// trick: token streams are sequential, so before lanes can decode
// sub-blocks independently someone must know where each sub-block's tokens
// begin and where its output lands. Pass 1 (ResolveSubBlocks) reads the
// boundary/length table PostProcess wrote and resolves both without
// touching a single token. Pass 2 (DecodeSubPart, one call per part, safe
// to run concurrently) decodes each part into its own disjoint slice of
// the output. The only coupling left is the overlap history: a match near
// a part's start may reach back into bytes a *different* lane owns, which
// are not guaranteed to exist yet — those copies are deferred and patched
// in by a cheap sequential pass (ResolveDeferred) once all lanes finish.

// SubPart is one lane's slice of an indexed sub-block container: its token
// stream and the exact output range it must produce.
type SubPart struct {
	Tokens   []byte // this part's token stream (aliases the blob)
	OutStart int    // offset of the part's output within the chunk
	OutLen   int    // exact bytes the part must produce (strict: enforced)
}

// SubLayout is the result of boundary resolution (pass 1) over a mode-4
// blob. The zero value is ready for use; Resolve reuses its backing arrays
// across blobs.
type SubLayout struct {
	SrcLen int
	Parts  []SubPart

	tokLens []int // parse scratch
}

// DeferredCopy is a match whose source bytes another lane owns (overlap
// history) or whose source overlaps a hole an earlier deferred match left:
// the parallel pass skips it and ResolveDeferred patches it in afterwards.
// Offsets are absolute indices into the chunk's output buffer.
type DeferredCopy struct {
	Dst, Src, Len int32
}

// ResolveSubBlocks performs pass 1 on blob: it parses the mode-4 header and
// boundary table into lay, validating part counts, per-part token/output
// lengths, and their sums, without decoding any tokens. It returns
// ok=false (and no error) when blob is not a mode-4 container — the caller
// falls back to the serial Decompress path.
func ResolveSubBlocks(lay *SubLayout, blob []byte) (ok bool, err error) {
	if len(blob) == 0 || blob[0] != ModeSubIdx {
		return false, nil
	}
	srcLen, n := binary.Uvarint(blob[1:])
	if n <= 0 {
		return true, fmt.Errorf("%w: bad length varint", ErrCorrupt)
	}
	if srcLen > 1<<30 {
		return true, fmt.Errorf("%w: implausible source length %d", ErrCorrupt, srcLen)
	}
	lay.SrcLen = int(srcLen)
	return true, parseSubIdx(lay, blob[1+n:])
}

// parseSubIdx parses a mode-4 payload (part count, boundary table, token
// streams) into lay, whose SrcLen the caller has already set. The table is
// fully cross-checked: token lengths must consume the payload exactly and
// output lengths must sum to SrcLen, so any truncation — of the table or
// of a stream — is caught here or by the per-part strict decode, never
// masked by a later part.
func parseSubIdx(lay *SubLayout, payload []byte) error {
	parts, n := binary.Uvarint(payload)
	if n <= 0 || parts > 1<<16 {
		return fmt.Errorf("%w: bad part count", ErrCorrupt)
	}
	payload = payload[n:]
	// Each part contributes at least two table bytes. Bounding the count by
	// the remaining payload before allocating keeps a tiny corrupt blob
	// from provoking a part-table allocation far larger than the input.
	if parts*2 > uint64(len(payload)) {
		return fmt.Errorf("%w: part count %d exceeds payload", ErrCorrupt, parts)
	}
	if cap(lay.Parts) < int(parts) {
		lay.Parts = make([]SubPart, parts)
		lay.tokLens = make([]int, parts)
	}
	lay.Parts = lay.Parts[:parts]
	lay.tokLens = lay.tokLens[:parts]
	outTotal := 0
	for i := range lay.Parts {
		tl, k := binary.Uvarint(payload)
		if k <= 0 || tl > 1<<30 {
			return fmt.Errorf("%w: bad token length for part %d", ErrCorrupt, i)
		}
		payload = payload[k:]
		ol, k2 := binary.Uvarint(payload)
		if k2 <= 0 || ol > 1<<30 {
			return fmt.Errorf("%w: bad output length for part %d", ErrCorrupt, i)
		}
		payload = payload[k2:]
		// A token stream expands at most MaxMatch/2 ×: a match token is two
		// stream bytes for up to MaxMatch output bytes, and flag bytes only
		// dilute that. A part promising more is corrupt — rejecting it here
		// (not at decode) keeps a few-byte table from vouching for a huge
		// SrcLen that callers sizing output buffers would allocate first.
		if ol > tl*(MaxMatch/2) {
			return fmt.Errorf("%w: part %d output length %d implausible for %d token bytes", ErrCorrupt, i, ol, tl)
		}
		lay.tokLens[i] = int(tl)
		lay.Parts[i] = SubPart{OutStart: outTotal, OutLen: int(ol)}
		outTotal += int(ol)
	}
	if outTotal != lay.SrcLen {
		return fmt.Errorf("%w: part outputs sum to %d bytes, header says %d", ErrCorrupt, outTotal, lay.SrcLen)
	}
	off := 0
	for i := range lay.Parts {
		tl := lay.tokLens[i]
		if off+tl > len(payload) {
			return fmt.Errorf("%w: part %d token stream truncated", ErrCorrupt, i)
		}
		lay.Parts[i].Tokens = payload[off : off+tl]
		off += tl
	}
	if off != len(payload) {
		return fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(payload)-off)
	}
	return nil
}

// DecodeSubPart is pass 2 for one part: it decodes part's token stream
// into out (which must be exactly lay.SrcLen bytes), writing only the
// bytes in [OutStart, OutStart+OutLen). Matches whose source reaches
// before OutStart (the overlap history, owned by another lane) or overlaps
// a hole an earlier deferred match left are appended to deferred instead
// of copied. It returns the grown deferred list, the number of tokens
// decoded (the GPU cost model's work term), and the first corruption
// found.
//
// Strictness is per part: a stream that produces more or fewer bytes than
// the boundary table promises is an error here, so a truncated part can
// never be masked by its neighbours. Distinct parts may decode
// concurrently over one shared out — each writes only its own range.
func DecodeSubPart(out []byte, lay *SubLayout, part int, deferred []DeferredCopy) ([]DeferredCopy, int, error) {
	p := lay.Parts[part]
	stream := p.Tokens
	pos, end := p.OutStart, p.OutStart+p.OutLen
	tokens := 0
	base := len(deferred) // this part's own deferred entries = its holes
	for i := 0; i < len(stream); {
		flags := stream[i]
		i++
		if i == len(stream) {
			return deferred, tokens, fmt.Errorf("%w: part %d: dangling flag byte", ErrCorrupt, part)
		}
		if flags == 0 {
			// All-literal group — the dominant case for poorly-compressible
			// data: one bounds check and one copy in place of eight bit
			// tests and eight byte stores.
			n := len(stream) - i
			if n > 8 {
				n = 8
			}
			if pos+n > end {
				return deferred, tokens, overrunErr(part, p)
			}
			copy(out[pos:pos+n], stream[i:i+n])
			pos += n
			i += n
			tokens += n
			continue
		}
		for bit := 0; bit < 8 && i < len(stream); bit++ {
			if flags&(1<<uint(bit)) == 0 {
				if pos >= end {
					return deferred, tokens, overrunErr(part, p)
				}
				out[pos] = stream[i]
				i++
				pos++
				tokens++
				continue
			}
			if i+2 > len(stream) {
				return deferred, tokens, fmt.Errorf("%w: part %d: truncated match token", ErrCorrupt, part)
			}
			v := uint16(stream[i])<<8 | uint16(stream[i+1])
			i += 2
			offset := int(v>>4) + 1
			length := int(v&0xF) + MinMatch
			if pos+length > end {
				return deferred, tokens, overrunErr(part, p)
			}
			src := pos - offset
			if src < 0 {
				return deferred, tokens, fmt.Errorf("%w: part %d: match offset %d reaches before output start", ErrCorrupt, part, offset)
			}
			tokens++
			if src < p.OutStart ||
				(len(deferred) > base && overlapsHole(deferred[base:], src, length)) {
				deferred = append(deferred, DeferredCopy{Dst: int32(pos), Src: int32(src), Len: int32(length)})
				pos += length
				continue
			}
			if offset >= length {
				// Source and destination are disjoint: memmove beats the
				// byte loop for every length over a few bytes.
				copy(out[pos:pos+length], out[src:src+length])
			} else {
				// Overlapping self-copy replicates byte-by-byte, as in the
				// serial decoder.
				for j := 0; j < length; j++ {
					out[pos+j] = out[src+j]
				}
			}
			pos += length
		}
	}
	if pos != end {
		return deferred, tokens, fmt.Errorf("%w: part %d decoded %d bytes, boundary table says %d", ErrCorrupt, part, pos-p.OutStart, p.OutLen)
	}
	return deferred, tokens, nil
}

func overrunErr(part int, p SubPart) error {
	return fmt.Errorf("%w: part %d produces more than the boundary table's %d bytes", ErrCorrupt, part, p.OutLen)
}

// overlapsHole reports whether [src, src+length) intersects any hole in
// holes (this part's earlier deferred matches, ascending in Dst). A source
// overlapping a hole would read bytes the parallel pass has not written,
// so the match must defer too.
func overlapsHole(holes []DeferredCopy, src, length int) bool {
	if len(holes) == 0 {
		return false
	}
	// First hole ending after src; it is the only candidate that can
	// intersect, holes being disjoint and ascending.
	i := sort.Search(len(holes), func(i int) bool {
		return int(holes[i].Dst+holes[i].Len) > src
	})
	return i < len(holes) && int(holes[i].Dst) < src+length
}

// ResolveDeferred patches in the copies the parallel pass deferred.
// Entries must be in the order DecodeSubPart produced them, parts in
// ascending order — the list is then ascending in Dst, so every entry's
// source bytes (always at lower offsets) are final before it runs, and
// byte order within an entry replicates overlapping self-copies exactly
// like the serial decoder.
func ResolveDeferred(out []byte, deferred []DeferredCopy) {
	for _, d := range deferred {
		for j := int32(0); j < d.Len; j++ {
			out[d.Dst+j] = out[d.Src+j]
		}
	}
}

// DecodeSub is the one-call driver over the two-pass scheme: parts decode
// in order on the calling goroutine, then deferred copies resolve. It
// exists for callers that want the indexed decode path without managing a
// worker pool (and as the reference the parallel drivers must match
// byte-for-byte). out must be exactly lay.SrcLen bytes. Returns total
// tokens decoded.
func DecodeSub(out []byte, lay *SubLayout, deferred []DeferredCopy) (int, error) {
	if len(out) != lay.SrcLen {
		return 0, fmt.Errorf("lz: output buffer is %d bytes, layout needs %d", len(out), lay.SrcLen)
	}
	deferred = deferred[:0]
	tokens := 0
	for i := range lay.Parts {
		var t int
		var err error
		deferred, t, err = DecodeSubPart(out, lay, i, deferred)
		if err != nil {
			return tokens, err
		}
		tokens += t
	}
	ResolveDeferred(out, deferred)
	return tokens, nil
}
