package lz

import "math"

// Entropy returns the Shannon entropy of src's byte histogram in bits per
// byte (0 for empty or constant input, up to 8 for uniform random bytes).
// Inline reduction pipelines use it as a cheap pre-check: chunks whose
// entropy is already near 8 bits/byte will not compress, so the encoder
// (and, on the GPU path, the PCIe round trip) can be skipped entirely.
func Entropy(src []byte) float64 {
	if len(src) == 0 {
		return 0
	}
	var hist [256]int
	for _, b := range src {
		hist[b]++
	}
	n := float64(len(src))
	h := 0.0
	for _, c := range hist {
		if c == 0 {
			continue
		}
		p := float64(c) / n
		h -= p * math.Log2(p)
	}
	return h
}

// LikelyIncompressible reports whether a chunk's entropy exceeds the given
// threshold in bits/byte. A threshold around 7.2 keeps ordinary text,
// code, and zero-padded data compressible while skipping already-compressed
// or encrypted content.
func LikelyIncompressible(src []byte, thresholdBits float64) bool {
	return Entropy(src) > thresholdBits
}
