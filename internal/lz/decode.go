package lz

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrCorrupt is wrapped by every decode error.
var ErrCorrupt = errors.New("lz: corrupt input")

// Decompress decodes a blob produced by Compress or PostProcess, appending
// the output to dst. It validates the format strictly: bad modes, offsets
// reaching before the output start, truncated streams, and length
// mismatches all return errors wrapping ErrCorrupt.
func Decompress(dst, src []byte) ([]byte, error) {
	if len(src) == 0 {
		return dst, fmt.Errorf("%w: empty blob", ErrCorrupt)
	}
	mode := src[0]
	srcLen, n := binary.Uvarint(src[1:])
	if n <= 0 {
		return dst, fmt.Errorf("%w: bad length varint", ErrCorrupt)
	}
	if srcLen > 1<<30 {
		return dst, fmt.Errorf("%w: implausible source length %d", ErrCorrupt, srcLen)
	}
	payload := src[1+n:]
	base := len(dst)
	switch mode {
	case ModeRaw:
		if uint64(len(payload)) != srcLen {
			return dst, fmt.Errorf("%w: raw payload %d bytes, header says %d", ErrCorrupt, len(payload), srcLen)
		}
		return append(dst, payload...), nil
	case ModeLZSS:
		out, _, err := decodeTokens(dst, payload, base)
		if err != nil {
			return dst, err
		}
		if len(out)-base != int(srcLen) {
			return dst, fmt.Errorf("%w: decoded %d bytes, header says %d", ErrCorrupt, len(out)-base, srcLen)
		}
		return out, nil
	case ModeQLZ:
		out, err := decodeQLZ(dst, payload, base)
		if err != nil {
			return dst, err
		}
		if len(out)-base != int(srcLen) {
			return dst, fmt.Errorf("%w: decoded %d bytes, header says %d", ErrCorrupt, len(out)-base, srcLen)
		}
		return out, nil
	case ModeSub:
		parts, n2 := binary.Uvarint(payload)
		if n2 <= 0 || parts > 1<<16 {
			return dst, fmt.Errorf("%w: bad part count", ErrCorrupt)
		}
		payload = payload[n2:]
		// Each part needs at least one table varint byte: bounding the
		// count by the payload before allocating keeps a tiny corrupt blob
		// from provoking a part-table allocation far larger than the input.
		if parts > uint64(len(payload)) {
			return dst, fmt.Errorf("%w: part count %d exceeds payload", ErrCorrupt, parts)
		}
		// Read the part table.
		lens := make([]uint64, parts)
		for i := range lens {
			l, k := binary.Uvarint(payload)
			if k <= 0 {
				return dst, fmt.Errorf("%w: bad part length %d", ErrCorrupt, i)
			}
			lens[i] = l
			payload = payload[k:]
		}
		out := dst
		for i, l := range lens {
			if uint64(len(payload)) < l {
				return dst, fmt.Errorf("%w: part %d truncated", ErrCorrupt, i)
			}
			var err error
			// Parts share one output buffer: matches may reach back into
			// the previous parts' bytes (the overlap history), but never
			// before this blob's own output start.
			out, _, err = decodeTokens(out, payload[:l], base)
			if err != nil {
				return dst, fmt.Errorf("part %d: %w", i, err)
			}
			payload = payload[l:]
		}
		if len(payload) != 0 {
			return dst, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(payload))
		}
		if len(out)-base != int(srcLen) {
			return dst, fmt.Errorf("%w: decoded %d bytes, header says %d", ErrCorrupt, len(out)-base, srcLen)
		}
		return out, nil
	case ModeSubIdx:
		// The retained serial decoder for indexed containers: parts decode
		// in order into one shared buffer (matches may reach back into the
		// previous parts' overlap history), each checked strictly against
		// the boundary table — a truncated part is an error here, never
		// masked by the parts after it. The parallel path (ResolveSubBlocks
		// + DecodeSubPart) must stay byte-identical to this.
		var lay SubLayout
		lay.SrcLen = int(srcLen)
		if err := parseSubIdx(&lay, payload); err != nil {
			return dst, err
		}
		out := dst
		for i := range lay.Parts {
			var produced int
			var err error
			out, produced, err = decodeTokens(out, lay.Parts[i].Tokens, base)
			if err != nil {
				return dst, fmt.Errorf("part %d: %w", i, err)
			}
			if produced != lay.Parts[i].OutLen {
				return dst, fmt.Errorf("%w: part %d decoded %d bytes, boundary table says %d", ErrCorrupt, i, produced, lay.Parts[i].OutLen)
			}
		}
		return out, nil
	default:
		return dst, fmt.Errorf("%w: unknown mode %d", ErrCorrupt, mode)
	}
}

// decodeTokens decodes one flag-interleaved token stream, appending to dst.
// Matches may reach back to dst[base:]. It returns the extended buffer and
// the number of output bytes produced.
func decodeTokens(dst, stream []byte, base int) ([]byte, int, error) {
	produced := 0
	i := 0
	for i < len(stream) {
		flags := stream[i]
		i++
		if i == len(stream) {
			// The encoder emits a flag byte only when it is about to write
			// an item (tokenWriter), so a stream ending right after one is
			// provably truncated — without this check a cut mid-flag-group
			// just produces short output with no error.
			return dst, produced, fmt.Errorf("%w: dangling flag byte", ErrCorrupt)
		}
		for bit := 0; bit < 8 && i < len(stream); bit++ {
			if flags&(1<<uint(bit)) == 0 {
				dst = append(dst, stream[i])
				i++
				produced++
				continue
			}
			if i+2 > len(stream) {
				return dst, produced, fmt.Errorf("%w: truncated match token", ErrCorrupt)
			}
			v := uint16(stream[i])<<8 | uint16(stream[i+1])
			i += 2
			offset := int(v>>4) + 1
			length := int(v&0xF) + MinMatch
			pos := len(dst)
			if pos-offset < base {
				return dst, produced, fmt.Errorf("%w: match offset %d reaches before output start", ErrCorrupt, offset)
			}
			for j := 0; j < length; j++ {
				dst = append(dst, dst[pos-offset+j])
			}
			produced += length
		}
	}
	return dst, produced, nil
}

// MustDecompress decodes or panics; for tests and examples where the input
// is known good.
func MustDecompress(src []byte) []byte {
	out, err := Decompress(nil, src)
	if err != nil {
		panic(err)
	}
	return out
}
