// Package lz implements the LZ compression half of the pipeline: a real
// LZSS codec of the class primary storage systems use inline (§2: history
// buffer + look-ahead buffer, match replaces the look-ahead sequence with a
// pointer into the history buffer), in the three shapes the paper needs:
//
//   - Compress/Decompress: the single-stream CPU codec (the "previously
//     studied compression algorithm" each CPU worker thread runs per chunk,
//     §3.2(1); QuickLZ-class in the paper's evaluation).
//   - CompressSubBlocks: the GPU kernel's shape (§3.2(2)) — several lanes
//     per 4 KB chunk, each compressing its own sub-block with its own
//     history/look-ahead buffers, adjacent lanes overlapping by part of the
//     history window so cross-boundary redundancy is not all lost.
//   - PostProcess: the CPU refinement step (§3.2(2)) that stitches the raw
//     per-lane token streams into the final container and falls back to a
//     raw store when compression did not pay.
//
// Every encoder reports Stats with the real work performed (bytes, tokens,
// match-search steps), which the CPU and GPU cost models convert into
// virtual time — so compressible data is faster, exactly as on hardware.
//
// # Format
//
// A compressed blob is: one mode byte, a uvarint source length, then a
// payload.
//
//	mode 0 (raw):  payload is the source verbatim.
//	mode 1 (lzss): payload is an LZSS token stream.
//	mode 2 (sub):  uvarint part count, then per part a uvarint payload
//	               length, then the parts' LZSS token streams. Parts decode
//	               sequentially into one output buffer, so a part's matches
//	               may reach back into the previous part (the overlap).
//	               Legacy: retained for decode compatibility only.
//	mode 4 (sub, indexed): uvarint part count, then per part a uvarint
//	               token length AND a uvarint output length (the boundary
//	               table), then the token streams. The output lengths let a
//	               decoder resolve every part's output range without
//	               touching a token — sub-blocks then decode independently
//	               (see ResolveSubBlocks/DecodeSubPart) — and pin each
//	               part's produced bytes exactly, so a truncated part is an
//	               error instead of being masked by the parts after it.
//	               This is what PostProcess writes.
//
// The token stream is flag-byte interleaved: each flag byte describes the
// next 8 items, LSB first; bit 0 = literal (1 byte), bit 1 = match (2
// bytes: 12-bit offset-1, 4-bit length-MinMatch).
package lz

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"sync"
)

// Format constants. Window/offset/length widths are fixed by the 2-byte
// match token encoding.
const (
	Window    = 4096 // history buffer size (12-bit offsets)
	MinMatch  = 3    // shortest encodable match
	MaxMatch  = 18   // longest encodable match (4-bit length field)
	hashBits  = 13
	hashShift = 32 - hashBits
)

// Blob modes.
const (
	ModeRaw  = 0
	ModeLZSS = 1
	ModeSub  = 2 // legacy sub-block container (no boundary table); decode only
	ModeQLZ  = 3
	// ModeSubIdx is the indexed sub-block container: mode 2 plus a per-part
	// output-length table, written so sub-blocks can decode independently.
	ModeSubIdx = 4
)

// Codec selects the CPU compression algorithm.
type Codec int

const (
	// CodecLZSS is the hash-chain LZSS encoder (better ratio).
	CodecLZSS Codec = iota
	// CodecQLZ is the QuickLZ-class single-probe encoder (faster, the
	// paper's CPU baseline family).
	CodecQLZ
)

// String names the codec.
func (c Codec) String() string {
	switch c {
	case CodecLZSS:
		return "lzss"
	case CodecQLZ:
		return "qlz"
	default:
		return fmt.Sprintf("codec(%d)", int(c))
	}
}

// CompressCodec dispatches to the selected codec. Params applies to LZSS
// only (QLZ has no tuning knobs, like its namesake's level 1).
func CompressCodec(c Codec, dst, src []byte, p Params) ([]byte, Stats) {
	if c == CodecQLZ {
		return CompressQLZ(dst, src)
	}
	return Compress(dst, src, p)
}

// Params tune the encoder's match search.
type Params struct {
	// MaxChain bounds the hash-chain probes per position: the encoder's
	// effort/ratio knob. Higher finds better matches but costs more
	// search steps (virtual time).
	MaxChain int
	// Lazy enables one-step lazy matching: when a match is found, the
	// encoder also tries the next position and emits a literal instead if
	// the deferred match is strictly longer. Better ratio for roughly one
	// extra search per match.
	Lazy bool
}

// DefaultParams returns the fast, storage-inline-grade search depth.
func DefaultParams() Params { return Params{MaxChain: 16} }

// BestParams returns the slower, better-ratio configuration (deep chains
// plus lazy matching) for offline or background recompression.
func BestParams() Params { return Params{MaxChain: 64, Lazy: true} }

// Stats reports the real work an encode performed.
type Stats struct {
	SrcBytes  int // input bytes
	DstBytes  int // output bytes including header
	Literals  int // literal tokens emitted
	Matches   int // match tokens emitted
	Positions int // encoder positions processed (literals + matches); the
	// dominant work term — long matches advance many bytes per position,
	// which is why compressible data encodes faster
	SearchSteps int // hash-chain candidates examined
}

// Ratio returns SrcBytes/DstBytes (the paper's "compression ratio"), or 0
// when nothing was produced.
func (s Stats) Ratio() float64 {
	if s.DstBytes == 0 {
		return 0
	}
	return float64(s.SrcBytes) / float64(s.DstBytes)
}

func hash4(v uint32) uint32 {
	return (v * 2654435761) >> hashShift
}

// matcher is a hash-chain match finder over one contiguous buffer. The
// head table stores position+1 (0 = empty chain), so resetting it is one
// memclr instead of a -1 fill; prev stores real positions (-1 = end).
type matcher struct {
	head [1 << hashBits]int32
	prev []int32
	data []byte
	size int // pool size class (see matcherPools)
}

// matcherPools recycle matchers across encodes, bucketed by the prev
// chain's power-of-two size class: the head table and prev chain together
// are ~48 KB per 4 KB chunk, by far the codec's largest allocation, and
// resetting them is much cheaper than reallocating under GC pressure.
// Bucketing by size keeps a matcher sized for 4 KB chunks from ping-ponging
// with the sub-block encoder's much smaller lanes (or an occasional large
// buffer), so a Get almost never reallocates prev. Each pool is safe for
// the engine's concurrent compression workers.
var matcherPools [32]sync.Pool

// matcherSizeClass returns the bucket index for a buffer of n bytes: the
// smallest power of two >= n (class 0 holds n <= 1).
func matcherSizeClass(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

func newMatcher(data []byte) *matcher {
	class := matcherSizeClass(len(data))
	m, _ := matcherPools[class].Get().(*matcher)
	if m == nil {
		m = &matcher{prev: make([]int32, 1<<class), size: class}
	}
	m.data = data
	m.prev = m.prev[:len(data)]
	clear(m.head[:])
	return m
}

// release returns the matcher to the pool; the caller must not use it
// afterwards.
func (m *matcher) release() {
	m.data = nil
	matcherPools[m.size].Put(m)
}

func (m *matcher) insert(pos int) {
	if pos+4 > len(m.data) {
		return
	}
	h := hash4(binary.LittleEndian.Uint32(m.data[pos:]))
	m.prev[pos] = m.head[h] - 1
	m.head[h] = int32(pos) + 1
}

// find returns the best match for pos looking back at most `reach` bytes
// (bounded by the format window) and reports the chain steps examined.
//
// The steps accounting is part of the virtual-time cost model and counts
// chain candidates EXAMINED, exactly as the original scalar walk did; the
// best-len-first rejection probe below only avoids the full matchLen walk
// for candidates that cannot beat the current best (their byte at offset
// bestLen differs, so their match length is <= bestLen), never changing
// which candidates count as a step or what the function returns.
func (m *matcher) find(pos, reach, maxChain int) (offset, length, steps int) {
	if pos+4 > len(m.data) {
		// Too close to the end to hash a 4-byte group; emit literals.
		return 0, 0, 0
	}
	if reach > Window {
		reach = Window
	}
	limit := pos - reach
	if limit < 0 {
		limit = 0
	}
	maxLen := len(m.data) - pos
	if maxLen > MaxMatch {
		maxLen = MaxMatch
	}
	h := hash4(binary.LittleEndian.Uint32(m.data[pos:]))
	cand := m.head[h] - 1
	bestLen, bestOff := 0, 0
	data := m.data
	for cand >= 0 && int(cand) >= limit && steps < maxChain {
		steps++
		c := int(cand)
		// Rejection probe: while bestLen < maxLen (guaranteed — a maxLen
		// match breaks out below), a candidate whose byte at bestLen
		// mismatches can only match <= bestLen bytes and cannot improve
		// the result; skip its compare loop entirely.
		if c < pos && data[c+bestLen] == data[pos+bestLen] {
			l := matchLen(data, c, pos, maxLen)
			if l > bestLen {
				bestLen, bestOff = l, pos-c
				if l == maxLen {
					break
				}
			}
		}
		cand = m.prev[cand]
	}
	if bestLen < MinMatch {
		return 0, 0, steps
	}
	return bestOff, bestLen, steps
}

// matchLen returns how many of the first max bytes at data[a:] and
// data[b:] are equal, comparing word-at-a-time with a scalar tail. Callers
// guarantee a < b and b+max <= len(data), so every 8-byte load inside the
// word loop (n+8 <= max) is in bounds for both positions. Overlapping
// ranges (b-a < 8) are fine: each load reads the bytes as they are, which
// is exactly what the scalar reference loop compares. Must return
// identically to matchLenRef (differential + fuzz tested).
func matchLen(data []byte, a, b, max int) int {
	n := 0
	for n+8 <= max {
		x := binary.LittleEndian.Uint64(data[a+n:]) ^ binary.LittleEndian.Uint64(data[b+n:])
		if x != 0 {
			return n + bits.TrailingZeros64(x)>>3
		}
		n += 8
	}
	for n < max && data[a+n] == data[b+n] {
		n++
	}
	return n
}

// tokenWriter emits the flag-interleaved token stream.
type tokenWriter struct {
	out      []byte
	flagPos  int // index of the pending flag byte
	flagBit  uint
	literals int
	matches  int
}

func (w *tokenWriter) item(isMatch bool) {
	if w.flagBit == 0 {
		w.flagPos = len(w.out)
		w.out = append(w.out, 0)
		w.flagBit = 1
	}
	if isMatch {
		w.out[w.flagPos] |= byte(w.flagBit)
	}
	w.flagBit <<= 1
	if w.flagBit == 1<<8 {
		w.flagBit = 0
	}
}

func (w *tokenWriter) literal(b byte) {
	w.item(false)
	w.out = append(w.out, b)
	w.literals++
}

func (w *tokenWriter) match(offset, length int) {
	w.item(true)
	v := uint16(offset-1)<<4 | uint16(length-MinMatch)
	w.out = append(w.out, byte(v>>8), byte(v))
	w.matches++
}

// encodeRange compresses data[from:] as one token stream appended to out
// (pass nil to allocate, or a recycled scratch to avoid it), allowing
// matches to reach back into data[:from] (the preloaded history). It
// returns the token stream and stats for the encoded range.
func encodeRange(out, data []byte, from int, p Params) ([]byte, Stats) {
	if p.MaxChain < 1 {
		p.MaxChain = 1
	}
	m := newMatcher(data)
	defer m.release()
	for i := 0; i < from; i++ {
		m.insert(i)
	}
	w := tokenWriter{out: out}
	var st Stats
	st.SrcBytes = len(data) - from
	pos := from
	for pos < len(data) {
		off, l, steps := m.find(pos, pos, p.MaxChain)
		st.SearchSteps += steps
		if l >= MinMatch && p.Lazy && pos+1 < len(data) && l < MaxMatch {
			// One-step lazy evaluation: if the match starting one byte
			// later is strictly longer, emit this byte as a literal and
			// take the longer match on the next iteration.
			m.insert(pos)
			off2, l2, steps2 := m.find(pos+1, pos+1, p.MaxChain)
			st.SearchSteps += steps2
			if l2 > l {
				w.literal(data[pos])
				pos++
				off, l = off2, l2
			} else {
				// Keep the current match; pos is already inserted.
				w.match(off, l)
				for i := 1; i < l; i++ {
					m.insert(pos + i)
				}
				pos += l
				continue
			}
			w.match(off, l)
			for i := 0; i < l; i++ {
				m.insert(pos + i)
			}
			pos += l
			continue
		}
		if l >= MinMatch {
			w.match(off, l)
			for i := 0; i < l; i++ {
				m.insert(pos + i)
			}
			pos += l
		} else {
			w.literal(data[pos])
			m.insert(pos)
			pos++
		}
	}
	st.Literals, st.Matches = w.literals, w.matches
	st.Positions = w.literals + w.matches
	return w.out, st
}

// StoreRaw encodes src as a mode-0 (uncompressed) blob appended to dst.
// Used by pipelines that store chunks without compression but want the
// uniform self-describing container.
func StoreRaw(dst, src []byte) []byte {
	var hdr [binary.MaxVarintLen64 + 1]byte
	hdr[0] = ModeRaw
	n := binary.PutUvarint(hdr[1:], uint64(len(src)))
	dst = append(dst, hdr[:n+1]...)
	return append(dst, src...)
}

// tokenScratch recycles token-stream staging buffers: the encoder writes
// tokens into a scratch buffer that is copied into the caller's dst and
// immediately reusable, so steady-state encodes allocate nothing.
type tokenScratch struct{ buf []byte }

var tokenScratchPool = sync.Pool{New: func() any { return new(tokenScratch) }}

// Compress encodes src as a self-describing blob (mode 1, or mode 0 when
// compression does not pay) appended to dst, returning the result and the
// encode stats. An empty src produces a valid empty blob.
func Compress(dst, src []byte, p Params) ([]byte, Stats) {
	sc := tokenScratchPool.Get().(*tokenScratch)
	tokens, st := encodeRange(sc.buf[:0], src, 0, p)
	var hdr [binary.MaxVarintLen64 + 1]byte
	n := binary.PutUvarint(hdr[1:], uint64(len(src)))
	if len(tokens)+n+1 >= len(src) {
		// Store raw: compression did not pay.
		hdr[0] = ModeRaw
		dst = append(dst, hdr[:n+1]...)
		dst = append(dst, src...)
		st = Stats{SrcBytes: len(src), SearchSteps: st.SearchSteps, Positions: st.Positions, DstBytes: n + 1 + len(src)}
	} else {
		hdr[0] = ModeLZSS
		dst = append(dst, hdr[:n+1]...)
		dst = append(dst, tokens...)
		st.DstBytes = n + 1 + len(tokens)
	}
	sc.buf = tokens
	tokenScratchPool.Put(sc)
	return dst, st
}
