package lz

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSubBlockRoundTrip(t *testing.T) {
	for name, data := range corpus() {
		for _, subs := range []int{1, 2, 4, 8} {
			p := SubBlockParams{Params: DefaultParams(), SubBlocks: subs, Overlap: Window / 8}
			res := CompressSubBlocks(data, p)
			blob, st, err := PostProcessOrRaw(nil, data, res)
			if err != nil {
				t.Fatalf("%s/%d: %v", name, subs, err)
			}
			if st.DstBytes != len(blob) {
				t.Fatalf("%s/%d: stats/blob mismatch", name, subs)
			}
			out, err := Decompress(nil, blob)
			if err != nil {
				t.Fatalf("%s/%d: decode: %v", name, subs, err)
			}
			if !bytes.Equal(out, data) {
				t.Fatalf("%s/%d: round trip mismatch", name, subs)
			}
		}
	}
}

func TestSubBlockLaneCount(t *testing.T) {
	data := make([]byte, 4096)
	res := CompressSubBlocks(data, SubBlockParams{Params: DefaultParams(), SubBlocks: 4, Overlap: 128})
	if len(res.Lanes) != 4 {
		t.Fatalf("lanes: %d", len(res.Lanes))
	}
	total := 0
	for i, l := range res.Lanes {
		if l.Stats.SrcBytes != 1024 {
			t.Fatalf("lane %d src bytes %d", i, l.Stats.SrcBytes)
		}
		total += l.Stats.SrcBytes
	}
	if total != len(data) {
		t.Fatalf("lanes cover %d of %d bytes", total, len(data))
	}
	if res.RawBytes() <= 0 {
		t.Fatal("raw payload accounting broken")
	}
}

func TestSubBlockMoreLanesThanBytes(t *testing.T) {
	data := []byte{1, 2}
	res := CompressSubBlocks(data, SubBlockParams{Params: DefaultParams(), SubBlocks: 8, Overlap: 16})
	if len(res.Lanes) != 2 {
		t.Fatalf("lanes clamp to bytes: %d", len(res.Lanes))
	}
	blob, _, err := PostProcessOrRaw(nil, data, res)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Decompress(nil, blob)
	if err != nil || !bytes.Equal(out, data) {
		t.Fatalf("tiny chunk round trip: %v", err)
	}
}

func TestSubBlockEmpty(t *testing.T) {
	res := CompressSubBlocks(nil, DefaultSubBlockParams())
	if len(res.Lanes) != 0 || res.SrcLen != 0 {
		t.Fatal("empty input should produce no lanes")
	}
	blob, _, err := PostProcessOrRaw(nil, nil, res)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Decompress(nil, blob)
	if err != nil || len(out) != 0 {
		t.Fatalf("empty round trip: %v", err)
	}
}

func TestSubBlockRatioLoss(t *testing.T) {
	// Splitting a chunk across lanes resets the history at each boundary,
	// so the ratio can only degrade (or stay equal) versus single-stream —
	// the tradeoff E10 quantifies.
	data := bytes.Repeat([]byte("abcdefgh123"), 400) // highly compressible
	_, single := Compress(nil, data, DefaultParams())
	res := CompressSubBlocks(data, SubBlockParams{Params: DefaultParams(), SubBlocks: 8, Overlap: 0})
	_, st, _ := PostProcessOrRaw(nil, data, res)
	if st.DstBytes < single.DstBytes {
		t.Fatalf("sub-block beat single-stream: %d < %d", st.DstBytes, single.DstBytes)
	}
}

func TestOverlapRecoversRatio(t *testing.T) {
	// With overlap, lanes can match into their neighbour's bytes, so the
	// ratio with overlap must be at least as good as with none.
	data := bytes.Repeat([]byte("abcdefgh123"), 400)
	p0 := SubBlockParams{Params: DefaultParams(), SubBlocks: 8, Overlap: 0}
	p1 := SubBlockParams{Params: DefaultParams(), SubBlocks: 8, Overlap: Window / 4}
	_, st0, _ := PostProcessOrRaw(nil, data, CompressSubBlocks(data, p0))
	_, st1, _ := PostProcessOrRaw(nil, data, CompressSubBlocks(data, p1))
	if st1.DstBytes > st0.DstBytes {
		t.Fatalf("overlap hurt ratio: %d > %d", st1.DstBytes, st0.DstBytes)
	}
}

func TestPostProcessOrRawFallsBackOnRandom(t *testing.T) {
	data := make([]byte, 4096)
	rand.New(rand.NewSource(12)).Read(data)
	res := CompressSubBlocks(data, DefaultSubBlockParams())
	blob, st, err := PostProcessOrRaw(nil, data, res)
	if err != nil {
		t.Fatal(err)
	}
	if blob[0] != ModeRaw {
		t.Fatalf("random data should fall back to raw, mode %d", blob[0])
	}
	if st.DstBytes > len(data)+4 {
		t.Fatalf("raw fallback overhead: %d", st.DstBytes)
	}
}

func TestPostProcessOrRawValidatesSource(t *testing.T) {
	res := CompressSubBlocks([]byte("abcd"), DefaultSubBlockParams())
	if _, _, err := PostProcessOrRaw(nil, []byte("abc"), res); err == nil {
		t.Fatal("mismatched source should error")
	}
}

func TestSubBlockParamClamping(t *testing.T) {
	data := bytes.Repeat([]byte{9}, 256)
	res := CompressSubBlocks(data, SubBlockParams{Params: DefaultParams(), SubBlocks: 0, Overlap: -5})
	if len(res.Lanes) != 1 {
		t.Fatalf("SubBlocks=0 should clamp to 1, got %d lanes", len(res.Lanes))
	}
	res = CompressSubBlocks(data, SubBlockParams{Params: DefaultParams(), SubBlocks: 2, Overlap: 1 << 20})
	blob, _, _ := PostProcessOrRaw(nil, data, res)
	out, err := Decompress(nil, blob)
	if err != nil || !bytes.Equal(out, data) {
		t.Fatal("oversized overlap should clamp and still round trip")
	}
}

// Property: sub-block compression round trips for arbitrary data, lane
// counts, and overlaps.
func TestSubBlockRoundTripProperty(t *testing.T) {
	f := func(data []byte, subsRaw, overlapRaw uint8) bool {
		p := SubBlockParams{
			Params:    DefaultParams(),
			SubBlocks: int(subsRaw%12) + 1,
			Overlap:   int(overlapRaw) * 8,
		}
		res := CompressSubBlocks(data, p)
		blob, _, err := PostProcessOrRaw(nil, data, res)
		if err != nil {
			return false
		}
		out, err := Decompress(nil, blob)
		return err == nil && bytes.Equal(out, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: lanes' source coverage always sums to the chunk length.
func TestSubBlockCoverageProperty(t *testing.T) {
	f := func(lenRaw uint16, subsRaw uint8) bool {
		data := make([]byte, lenRaw%8192)
		p := SubBlockParams{Params: DefaultParams(), SubBlocks: int(subsRaw%16) + 1}
		res := CompressSubBlocks(data, p)
		total := 0
		for _, l := range res.Lanes {
			if l.Stats.SrcBytes < 0 {
				return false
			}
			total += l.Stats.SrcBytes
		}
		return total == len(data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
