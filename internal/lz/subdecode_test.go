package lz

import (
	"bytes"
	"encoding/binary"
	"runtime"
	"strings"
	"testing"
)

// buildSub hand-assembles a sub-block container for corruption tests:
// mode 2 takes only token lengths, mode 4 takes the boundary table
// (tokenLen, outLen) pairs.
func buildSub(mode byte, srcLen int, streams [][]byte, outLens []int) []byte {
	blob := []byte{mode}
	var tmp [binary.MaxVarintLen64]byte
	put := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		blob = append(blob, tmp[:n]...)
	}
	put(uint64(srcLen))
	put(uint64(len(streams)))
	for i, s := range streams {
		put(uint64(len(s)))
		if mode == ModeSubIdx {
			put(uint64(outLens[i]))
		}
	}
	for _, s := range streams {
		blob = append(blob, s...)
	}
	return blob
}

// litStream builds a flag-interleaved stream of literals.
func litStream(lits string) []byte {
	var out []byte
	for i := 0; i < len(lits); i += 8 {
		end := i + 8
		if end > len(lits) {
			end = len(lits)
		}
		out = append(out, 0x00)
		out = append(out, lits[i:end]...)
	}
	return out
}

// TestTruncatedPartMasking pins the decode-hardening bugfix: a part whose
// stream was cut mid-flag-group produces short output with no intrinsic
// error, and in the legacy mode-2 container a later part can make up the
// bytes so the whole-blob length check passes — silent corruption. The
// mode-4 boundary table catches it per part, in both the serial and the
// parallel decoder.
func TestTruncatedPartMasking(t *testing.T) {
	truncated := litStream("ab")   // claims to be part of "abcd"
	padded := litStream("efghij") // a later part "compensating" 2 bytes

	// Legacy container: decodes without error — the masking this PR fixes.
	v1 := buildSub(ModeSub, 8, [][]byte{truncated, padded}, nil)
	out, err := Decompress(nil, v1)
	if err != nil || len(out) != 8 {
		t.Fatalf("legacy container should silently mask the truncation (got err=%v len=%d)", err, len(out))
	}

	// Indexed container: the table says part 0 produces 4 bytes; it
	// produces 2. Serial decode must reject it.
	v2 := buildSub(ModeSubIdx, 8, [][]byte{truncated, padded}, []int{4, 4})
	if _, err := Decompress(nil, v2); err == nil {
		t.Fatal("boundary table must catch the truncated part")
	} else if !strings.Contains(err.Error(), "part 0") {
		t.Fatalf("error should name part 0: %v", err)
	}

	// Parallel decode must reject it identically.
	var lay SubLayout
	ok, err := ResolveSubBlocks(&lay, v2)
	if !ok || err != nil {
		t.Fatalf("resolve: ok=%v err=%v", ok, err)
	}
	buf := make([]byte, lay.SrcLen)
	if _, err := DecodeSub(buf, &lay, nil); err == nil {
		t.Fatal("parallel decode must catch the truncated part")
	}
}

// TestDanglingFlagByte: a stream ending right after a flag byte is provably
// corrupt (the encoder emits flag bytes only when about to write an item).
// Before the fix both blobs decoded silently — the second one even passed
// the whole-blob length check with trailing garbage.
func TestDanglingFlagByte(t *testing.T) {
	empty := []byte{ModeLZSS, 0, 0x00} // srcLen 0, payload = lone flag byte
	if _, err := Decompress(nil, empty); err == nil {
		t.Fatal("lone flag byte must be corrupt")
	}
	trailing := append([]byte{ModeLZSS, 4}, litStream("abcd")...)
	trailing = append(trailing, 0x00) // dangling flag after a valid group
	if _, err := Decompress(nil, trailing); err == nil {
		t.Fatal("dangling trailing flag byte must be corrupt")
	}
}

// TestPartCountAllocBounded pins the allocation bugfix: a few corrupt bytes
// claiming 65535 parts must not provoke a half-megabyte part-table
// allocation per failed decode. TotalAlloc is monotonic, so the delta over
// many decodes bounds what each one allocated.
func TestPartCountAllocBounded(t *testing.T) {
	blobs := [][]byte{
		{ModeSub, 0x04, 0xFF, 0xFF, 0x03},    // parts=65535, empty payload
		{ModeSubIdx, 0x04, 0xFF, 0xFF, 0x03}, // same for the indexed mode
	}
	for _, blob := range blobs {
		if _, err := Decompress(nil, blob); err == nil {
			t.Fatal("corrupt part count must error")
		}
	}
	const iters = 200
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < iters; i++ {
		for _, blob := range blobs {
			_, _ = Decompress(nil, blob)
		}
	}
	runtime.ReadMemStats(&after)
	perDecode := (after.TotalAlloc - before.TotalAlloc) / (2 * iters)
	// Before the fix each decode allocated 64 KiB (mode 2: 65535 uint64s
	// would be 512 KiB; the 1<<16 cap applies after) — with the payload
	// bound an error costs only the wrapped error values.
	if perDecode > 4096 {
		t.Fatalf("corrupt blob costs %d bytes per failed decode", perDecode)
	}
}

// TestImplausibleOutLenRejectedAtParse: a part's claimed output is bounded
// by its token stream's maximum expansion at parse time. Without the bound,
// a few-byte table claiming tl=0/ol=SrcLen passes every resolve-time
// cross-check and only fails at decode — after an external caller sizing
// its buffer from lay.SrcLen (as DecodeSub requires) has allocated up to
// 1 GiB from a handful of corrupt input bytes.
func TestImplausibleOutLenRejectedAtParse(t *testing.T) {
	cases := map[string][]byte{
		// The reviewer's reproduction: one part, empty stream, huge output.
		"empty stream": buildSub(ModeSubIdx, 1<<20, [][]byte{{}}, []int{1 << 20}),
		// A 2-byte stream (flag + literal) can produce 1 byte, never 1 MiB.
		"tiny stream": buildSub(ModeSubIdx, 1<<20, [][]byte{litStream("a")}, []int{1 << 20}),
		// A healthy first part must not launder an implausible second one.
		"mixed parts": buildSub(ModeSubIdx, 4+1<<20,
			[][]byte{litStream("abcd"), {}}, []int{4, 1 << 20}),
	}
	for name, blob := range cases {
		var lay SubLayout
		ok, err := ResolveSubBlocks(&lay, blob)
		if !ok {
			t.Fatalf("%s: blob not recognized as indexed", name)
		}
		if err == nil {
			t.Fatalf("%s: implausible output length must fail boundary resolution", name)
		}
		if _, err := Decompress(nil, blob); err == nil {
			t.Fatalf("%s: serial decode must reject it too", name)
		}
	}
	// The bound must not reject maximal legitimate expansion: a run-heavy
	// block compresses to near the MaxMatch/2 ceiling and still round-trips.
	runs := bytes.Repeat([]byte{0xAB}, 1<<14)
	res := CompressSubBlocks(runs, SubBlockParams{SubBlocks: 4})
	blob, _ := PostProcess(nil, res)
	out, err := Decompress(nil, blob)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, runs) {
		t.Fatal("run-heavy round trip diverged")
	}
}

// TestSubDecodeParallelDifferential: the two-pass parallel decoder must be
// byte-identical to the retained serial decoder across all golden corpora,
// lane counts, and overlaps — including when parts decode out of order
// (reverse here), which is exactly what a worker pool does.
func TestSubDecodeParallelDifferential(t *testing.T) {
	for name, data := range corpus() {
		for _, subs := range []int{1, 2, 4, 8} {
			for _, overlap := range []int{0, Window / 8, Window} {
				res := CompressSubBlocks(data, SubBlockParams{Params: DefaultParams(), SubBlocks: subs, Overlap: overlap})
				blob, _ := PostProcess(nil, res)
				serial, err := Decompress(nil, blob)
				if err != nil {
					t.Fatalf("%s/%d/%d: serial: %v", name, subs, overlap, err)
				}
				if !bytes.Equal(serial, data) {
					t.Fatalf("%s/%d/%d: serial decode mismatch", name, subs, overlap)
				}

				var lay SubLayout
				ok, err := ResolveSubBlocks(&lay, blob)
				if !ok || err != nil {
					t.Fatalf("%s/%d/%d: resolve: ok=%v err=%v", name, subs, overlap, ok, err)
				}
				// Reverse part order: each part's writes and deferred list
				// must be independent of scheduling.
				out := make([]byte, lay.SrcLen)
				defs := make([][]DeferredCopy, len(lay.Parts))
				for i := len(lay.Parts) - 1; i >= 0; i-- {
					var derr error
					defs[i], _, derr = DecodeSubPart(out, &lay, i, nil)
					if derr != nil {
						t.Fatalf("%s/%d/%d: part %d: %v", name, subs, overlap, i, derr)
					}
				}
				var all []DeferredCopy
				for _, d := range defs {
					all = append(all, d...)
				}
				ResolveDeferred(out, all)
				if !bytes.Equal(out, serial) {
					t.Fatalf("%s/%d/%d: parallel (reverse order) diverges from serial", name, subs, overlap)
				}

				// And through the one-call driver.
				out2 := make([]byte, lay.SrcLen)
				if _, err := DecodeSub(out2, &lay, nil); err != nil {
					t.Fatalf("%s/%d/%d: DecodeSub: %v", name, subs, overlap, err)
				}
				if !bytes.Equal(out2, serial) {
					t.Fatalf("%s/%d/%d: DecodeSub diverges from serial", name, subs, overlap)
				}
			}
		}
	}
}

// FuzzSubDecodeParallel: for arbitrary bytes, the parallel two-pass decode
// and the serial decoder must agree on accept/reject, and on the bytes
// when both accept.
func FuzzSubDecodeParallel(f *testing.F) {
	for _, data := range corpus() {
		res := CompressSubBlocks(data, DefaultSubBlockParams())
		blob, _ := PostProcess(nil, res)
		f.Add(blob)
		if len(blob) > 8 {
			bad := append([]byte(nil), blob...)
			bad[len(bad)/2] ^= 0x40
			f.Add(bad)
			f.Add(blob[:len(blob)-3])
		}
	}
	f.Add(buildSub(ModeSubIdx, 8, [][]byte{litStream("ab"), litStream("efghij")}, []int{4, 4}))
	f.Fuzz(func(t *testing.T, junk []byte) {
		var lay SubLayout
		ok, rerr := ResolveSubBlocks(&lay, junk)
		serial, serr := Decompress(nil, junk)
		if !ok {
			return // not a mode-4 blob; nothing to compare
		}
		if rerr != nil {
			if serr == nil {
				t.Fatalf("resolve rejected what serial accepted: %v", rerr)
			}
			return
		}
		out := make([]byte, lay.SrcLen)
		_, perr := DecodeSub(out, &lay, nil)
		if (serr == nil) != (perr == nil) {
			t.Fatalf("serial err=%v, parallel err=%v", serr, perr)
		}
		if serr == nil && !bytes.Equal(serial, out) {
			t.Fatal("parallel decode diverges from serial")
		}
	})
}
