package lz

import (
	"bytes"
	"encoding/binary"
	"testing"
)

func appendUvarint(dst []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	return append(dst, tmp[:n]...)
}

// FuzzDecompress: the decoder must never panic and never mis-handle
// arbitrary input; valid blobs from both codecs must round trip.
func FuzzDecompress(f *testing.F) {
	for _, data := range corpus() {
		blob, _ := Compress(nil, data, DefaultParams())
		f.Add(blob)
		qblob, _ := CompressQLZ(nil, data)
		f.Add(qblob)
	}
	for _, data := range corpus() {
		// Sub-block containers with the boundary table (what PostProcess
		// writes) and the legacy table-less layout (decode compatibility).
		res := CompressSubBlocks(data, DefaultSubBlockParams())
		iblob, _ := PostProcess(nil, res)
		f.Add(iblob)
		var legacy []byte
		legacy = append(legacy, ModeSub)
		legacy = appendUvarint(legacy, uint64(len(data)))
		legacy = appendUvarint(legacy, uint64(len(res.Lanes)))
		for _, l := range res.Lanes {
			legacy = appendUvarint(legacy, uint64(len(l.Tokens)))
		}
		for _, l := range res.Lanes {
			legacy = append(legacy, l.Tokens...)
		}
		f.Add(legacy)
	}
	f.Add([]byte{ModeSub, 4, 2, 1, 1, 0, 0})
	f.Add([]byte{ModeSub, 0x04, 0xFF, 0xFF, 0x03})    // part count > payload
	f.Add([]byte{ModeSubIdx, 0x04, 0xFF, 0xFF, 0x03}) // same, indexed mode
	f.Add([]byte{ModeSubIdx, 0, 0})                   // empty indexed container
	f.Add([]byte{99, 0})
	f.Fuzz(func(t *testing.T, junk []byte) {
		out, err := Decompress(nil, junk)
		if err == nil && len(junk) > 0 {
			// A valid blob must re-encode/round trip consistently.
			re, _ := Compress(nil, out, DefaultParams())
			back, err2 := Decompress(nil, re)
			if err2 != nil || !bytes.Equal(back, out) {
				t.Fatalf("re-encode of valid decode failed: %v", err2)
			}
		}
	})
}

// FuzzMatchLen: the word-wise matchLen must agree with the scalar
// reference loop for every (data, a, b, max) the encoder can legally form,
// including overlapping ranges (b-a < 8) and mismatches at every byte lane.
func FuzzMatchLen(f *testing.F) {
	for _, data := range corpus() {
		f.Add(data, 0, 1, MaxMatch)
		f.Add(data, 3, 5, 256)
	}
	f.Add(bytes.Repeat([]byte{7}, 64), 0, 1, 63)
	f.Fuzz(func(t *testing.T, data []byte, a, b, max int) {
		if len(data) == 0 {
			return
		}
		// Normalize to the encoder's contract: 0 <= a < b < len(data),
		// 0 <= max <= len(data)-b.
		a %= len(data)
		if a < 0 {
			a = -a % len(data)
		}
		b %= len(data)
		if b < 0 {
			b = -b % len(data)
		}
		if a == b {
			return
		}
		if a > b {
			a, b = b, a
		}
		if max < 0 {
			max = -max
		}
		if max > len(data)-b {
			max %= len(data) - b + 1
		}
		got := matchLen(data, a, b, max)
		want := matchLenRef(data, a, b, max)
		if got != want {
			t.Fatalf("a=%d b=%d max=%d: matchLen=%d, ref=%d", a, b, max, got, want)
		}
	})
}

// FuzzCompressRoundTrip: both codecs must round trip any input.
func FuzzCompressRoundTrip(f *testing.F) {
	for _, data := range corpus() {
		f.Add(data, true)
		f.Add(data, false)
	}
	f.Fuzz(func(t *testing.T, data []byte, useQLZ bool) {
		codec := CodecLZSS
		if useQLZ {
			codec = CodecQLZ
		}
		blob, st := CompressCodec(codec, nil, data, DefaultParams())
		if st.DstBytes != len(blob) {
			t.Fatal("stats mismatch")
		}
		out, err := Decompress(nil, blob)
		if err != nil || !bytes.Equal(out, data) {
			t.Fatalf("round trip failed: %v", err)
		}
	})
}
