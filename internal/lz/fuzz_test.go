package lz

import (
	"bytes"
	"testing"
)

// FuzzDecompress: the decoder must never panic and never mis-handle
// arbitrary input; valid blobs from both codecs must round trip.
func FuzzDecompress(f *testing.F) {
	for _, data := range corpus() {
		blob, _ := Compress(nil, data, DefaultParams())
		f.Add(blob)
		qblob, _ := CompressQLZ(nil, data)
		f.Add(qblob)
	}
	f.Add([]byte{ModeSub, 4, 2, 1, 1, 0, 0})
	f.Add([]byte{99, 0})
	f.Fuzz(func(t *testing.T, junk []byte) {
		out, err := Decompress(nil, junk)
		if err == nil && len(junk) > 0 {
			// A valid blob must re-encode/round trip consistently.
			re, _ := Compress(nil, out, DefaultParams())
			back, err2 := Decompress(nil, re)
			if err2 != nil || !bytes.Equal(back, out) {
				t.Fatalf("re-encode of valid decode failed: %v", err2)
			}
		}
	})
}

// FuzzCompressRoundTrip: both codecs must round trip any input.
func FuzzCompressRoundTrip(f *testing.F) {
	for _, data := range corpus() {
		f.Add(data, true)
		f.Add(data, false)
	}
	f.Fuzz(func(t *testing.T, data []byte, useQLZ bool) {
		codec := CodecLZSS
		if useQLZ {
			codec = CodecQLZ
		}
		blob, st := CompressCodec(codec, nil, data, DefaultParams())
		if st.DstBytes != len(blob) {
			t.Fatal("stats mismatch")
		}
		out, err := Decompress(nil, blob)
		if err != nil || !bytes.Equal(out, data) {
			t.Fatalf("round trip failed: %v", err)
		}
	})
}
