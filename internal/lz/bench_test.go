package lz

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

func benchChunk(fill float64) []byte {
	rng := rand.New(rand.NewSource(1))
	out := make([]byte, 4096)
	for i := 0; i < len(out); i += 64 {
		n := int(fill * 64)
		rng.Read(out[i : i+n])
	}
	return out
}

// BenchmarkMatchLen measures the innermost compare loop at the match
// lengths that dominate real streams: barely-minimum (4), typical (16),
// and long raw runs (256, the sub-block/QLZ regime).
func BenchmarkMatchLen(b *testing.B) {
	for _, ml := range []int{4, 16, 256} {
		b.Run(fmt.Sprintf("len%d", ml), func(b *testing.B) {
			data := make([]byte, 2*ml+16)
			rng := rand.New(rand.NewSource(int64(ml)))
			rng.Read(data[:ml])
			copy(data[ml:2*ml], data[:ml])
			data[2*ml] = ^data[ml] // force the mismatch exactly at ml
			b.SetBytes(int64(ml))
			for i := 0; i < b.N; i++ {
				if got := matchLen(data, 0, ml, ml+8); got != ml {
					b.Fatalf("matchLen = %d, want %d", got, ml)
				}
			}
		})
	}
}

func BenchmarkCompress4KIncompressible(b *testing.B) {
	data := benchChunk(1.0)
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		Compress(nil, data, DefaultParams())
	}
}

func BenchmarkCompress4KHalfCompressible(b *testing.B) {
	data := benchChunk(0.5)
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		Compress(nil, data, DefaultParams())
	}
}

func BenchmarkCompress4KZeros(b *testing.B) {
	data := make([]byte, 4096)
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		Compress(nil, data, DefaultParams())
	}
}

func BenchmarkDecompress4K(b *testing.B) {
	data := bytes.Repeat([]byte("inline data reduction on primary storage "), 100)[:4096]
	blob, _ := Compress(nil, data, DefaultParams())
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		if _, err := Decompress(nil, blob); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSubDecode4K compares the two decode paths over one indexed
// 4-lane container: the retained serial decoder versus the two-pass
// resolve + per-part decode + deferred patch-up (run on one goroutine
// here — the per-part overhead is the interesting number; the wall-clock
// win from fanning parts out is measured by BenchmarkReadPathWallClock).
func BenchmarkSubDecode4K(b *testing.B) {
	data := benchChunk(0.5)
	res := CompressSubBlocks(data, DefaultSubBlockParams())
	blob, _ := PostProcess(nil, res)
	b.Run("serial", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		var out []byte
		for i := 0; i < b.N; i++ {
			var err error
			out, err = Decompress(out[:0], blob)
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("indexed", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		var lay SubLayout
		out := make([]byte, len(data))
		var deferred []DeferredCopy
		for i := 0; i < b.N; i++ {
			ok, err := ResolveSubBlocks(&lay, blob)
			if !ok || err != nil {
				b.Fatalf("resolve: ok=%v err=%v", ok, err)
			}
			deferred = deferred[:0]
			for p := range lay.Parts {
				var derr error
				deferred, _, derr = DecodeSubPart(out, &lay, p, deferred)
				if derr != nil {
					b.Fatal(derr)
				}
			}
			ResolveDeferred(out, deferred)
		}
	})
}

func BenchmarkSubBlocks4Lanes(b *testing.B) {
	data := benchChunk(0.5)
	p := DefaultSubBlockParams()
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		CompressSubBlocks(data, p)
	}
}

func BenchmarkPostProcess(b *testing.B) {
	data := benchChunk(0.5)
	res := CompressSubBlocks(data, DefaultSubBlockParams())
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		if _, _, err := PostProcessOrRaw(nil, data, res); err != nil {
			b.Fatal(err)
		}
	}
}
