package lz

import (
	"bytes"
	"math/rand"
	"testing"
)

func benchChunk(fill float64) []byte {
	rng := rand.New(rand.NewSource(1))
	out := make([]byte, 4096)
	for i := 0; i < len(out); i += 64 {
		n := int(fill * 64)
		rng.Read(out[i : i+n])
	}
	return out
}

func BenchmarkCompress4KIncompressible(b *testing.B) {
	data := benchChunk(1.0)
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		Compress(nil, data, DefaultParams())
	}
}

func BenchmarkCompress4KHalfCompressible(b *testing.B) {
	data := benchChunk(0.5)
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		Compress(nil, data, DefaultParams())
	}
}

func BenchmarkCompress4KZeros(b *testing.B) {
	data := make([]byte, 4096)
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		Compress(nil, data, DefaultParams())
	}
}

func BenchmarkDecompress4K(b *testing.B) {
	data := bytes.Repeat([]byte("inline data reduction on primary storage "), 100)[:4096]
	blob, _ := Compress(nil, data, DefaultParams())
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		if _, err := Decompress(nil, blob); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSubBlocks4Lanes(b *testing.B) {
	data := benchChunk(0.5)
	p := DefaultSubBlockParams()
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		CompressSubBlocks(data, p)
	}
}

func BenchmarkPostProcess(b *testing.B) {
	data := benchChunk(0.5)
	res := CompressSubBlocks(data, DefaultSubBlockParams())
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		if _, _, err := PostProcessOrRaw(nil, data, res); err != nil {
			b.Fatal(err)
		}
	}
}
