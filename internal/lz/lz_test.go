package lz

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

// corpus builds test payloads of varying compressibility.
func corpus() map[string][]byte {
	rng := rand.New(rand.NewSource(11))
	random := make([]byte, 4096)
	rng.Read(random)
	text := bytes.Repeat([]byte("the quick brown fox jumps over the lazy dog. "), 100)
	periodic := bytes.Repeat([]byte{1, 2, 3, 4, 5, 6, 7}, 700)
	mixed := append(append([]byte{}, random[:2048]...), bytes.Repeat([]byte{0}, 2048)...)
	return map[string][]byte{
		"empty":    {},
		"onebyte":  {42},
		"zeros":    make([]byte, 4096),
		"random":   random,
		"text":     text,
		"periodic": periodic,
		"mixed":    mixed,
		"tiny":     []byte("abc"),
	}
}

func TestCompressRoundTrip(t *testing.T) {
	for name, data := range corpus() {
		blob, st := Compress(nil, data, DefaultParams())
		if st.SrcBytes != len(data) || st.DstBytes != len(blob) {
			t.Fatalf("%s: stats mismatch: %+v vs blob %d", name, st, len(blob))
		}
		out, err := Decompress(nil, blob)
		if err != nil {
			t.Fatalf("%s: decompress: %v", name, err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("%s: round trip mismatch", name)
		}
	}
}

func TestCompressibleDataCompresses(t *testing.T) {
	data := corpus()
	for _, name := range []string{"zeros", "text", "periodic"} {
		_, st := Compress(nil, data[name], DefaultParams())
		if st.Ratio() < 2.0 {
			t.Errorf("%s: ratio %.2f, want >= 2", name, st.Ratio())
		}
	}
}

func TestRandomDataStoredRaw(t *testing.T) {
	data := corpus()["random"]
	blob, st := Compress(nil, data, DefaultParams())
	if blob[0] != ModeRaw {
		t.Fatalf("random data should store raw, mode %d", blob[0])
	}
	if st.DstBytes > len(data)+4 {
		t.Fatalf("raw overhead too large: %d vs %d", st.DstBytes, len(data))
	}
	if st.Ratio() > 1.0 {
		t.Fatalf("raw ratio should be <= 1: %g", st.Ratio())
	}
}

func TestZerosRatioHigh(t *testing.T) {
	_, st := Compress(nil, make([]byte, 4096), DefaultParams())
	// 4096 zero bytes: matches of 18 bytes cost 2 bytes + flag bits.
	if st.Ratio() < 7 {
		t.Fatalf("all-zeros ratio only %.2f", st.Ratio())
	}
	if st.Matches == 0 {
		t.Fatal("no matches on all-zeros input")
	}
}

func TestSearchStepsTracked(t *testing.T) {
	_, st := Compress(nil, corpus()["text"], DefaultParams())
	if st.SearchSteps == 0 {
		t.Fatal("text input must exercise the match search")
	}
	// Deeper chains do at least as much work.
	_, deep := Compress(nil, corpus()["text"], Params{MaxChain: 256})
	if deep.SearchSteps < st.SearchSteps {
		t.Fatalf("deeper chain searched less: %d < %d", deep.SearchSteps, st.SearchSteps)
	}
}

func TestMaxChainImprovesOrEqualRatio(t *testing.T) {
	data := corpus()["text"]
	_, shallow := Compress(nil, data, Params{MaxChain: 1})
	_, deep := Compress(nil, data, Params{MaxChain: 64})
	if deep.DstBytes > shallow.DstBytes {
		t.Fatalf("deeper search compressed worse: %d > %d", deep.DstBytes, shallow.DstBytes)
	}
}

func TestCompressAppendsToDst(t *testing.T) {
	prefix := []byte("header")
	blob, _ := Compress(append([]byte{}, prefix...), []byte("payload payload payload"), DefaultParams())
	if !bytes.HasPrefix(blob, prefix) {
		t.Fatal("Compress must append to dst")
	}
	out, err := Decompress(nil, blob[len(prefix):])
	if err != nil || string(out) != "payload payload payload" {
		t.Fatalf("decode after prefix: %q %v", out, err)
	}
}

func TestDecompressAppendsToDst(t *testing.T) {
	blob, _ := Compress(nil, []byte("xyz"), DefaultParams())
	out, err := Decompress([]byte("pre"), blob)
	if err != nil || string(out) != "prexyz" {
		t.Fatalf("append decode: %q %v", out, err)
	}
}

func TestDecompressRejectsCorruption(t *testing.T) {
	blob, _ := Compress(nil, corpus()["text"], DefaultParams())
	cases := map[string][]byte{
		"empty":     {},
		"bad mode":  {99, 1, 'a'},
		"truncated": blob[:len(blob)/2],
		"short raw": {ModeRaw, 10, 'a'},
	}
	for name, b := range cases {
		if _, err := Decompress(nil, b); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: want ErrCorrupt, got %v", name, err)
		}
	}
}

func TestDecompressRejectsBadOffset(t *testing.T) {
	// Handcraft a stream whose first item is a match (nothing to point at).
	stream := []byte{ModeLZSS, 3, 0x01, 0x00, 0x10} // flags=1 -> match, offset 1 len 3 at pos 0
	if _, err := Decompress(nil, stream); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("offset before start: got %v", err)
	}
}

func TestDecompressLengthMismatch(t *testing.T) {
	blob, _ := Compress(nil, []byte("aaaaaaaaaaaaaaaaaaaaaaaaaaaa"), DefaultParams())
	blob[1] = 5 // lie about the source length
	if _, err := Decompress(nil, blob); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("length mismatch: got %v", err)
	}
}

func TestMustDecompressPanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustDecompress should panic on corrupt input")
		}
	}()
	MustDecompress([]byte{77})
}

func TestMatchTokenBounds(t *testing.T) {
	// Exercise maximum-length matches and window-distance matches.
	data := make([]byte, 0, 8192)
	pattern := make([]byte, 64)
	rand.New(rand.NewSource(3)).Read(pattern)
	data = append(data, pattern...)
	filler := make([]byte, Window-len(pattern))
	rand.New(rand.NewSource(4)).Read(filler)
	data = append(data, filler...)
	data = append(data, pattern...) // exactly Window away
	blob, _ := Compress(nil, data, Params{MaxChain: 1024})
	out, err := Decompress(nil, blob)
	if err != nil || !bytes.Equal(out, data) {
		t.Fatalf("window-edge round trip failed: %v", err)
	}
}

// Property: round trip is identity for arbitrary inputs and chain depths.
func TestRoundTripProperty(t *testing.T) {
	f := func(data []byte, chainRaw uint8) bool {
		p := Params{MaxChain: int(chainRaw%64) + 1}
		blob, st := Compress(nil, data, p)
		if st.DstBytes != len(blob) {
			return false
		}
		out, err := Decompress(nil, blob)
		return err == nil && bytes.Equal(out, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: repetitive generated inputs round trip and never expand by more
// than the header.
func TestRepetitiveRoundTripProperty(t *testing.T) {
	f := func(seed int64, period uint8, lenRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		p := int(period%32) + 1
		n := int(lenRaw % 8192)
		pat := make([]byte, p)
		rng.Read(pat)
		data := bytes.Repeat(pat, n/p+1)[:n]
		blob, st := Compress(nil, data, DefaultParams())
		if st.DstBytes > len(data)+4 {
			return false
		}
		out, err := Decompress(nil, blob)
		return err == nil && bytes.Equal(out, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Fuzz-ish property: the decoder never panics on arbitrary input.
func TestDecoderTotalProperty(t *testing.T) {
	f := func(junk []byte) bool {
		defer func() {
			if recover() != nil {
				t.Fatal("decoder panicked")
			}
		}()
		_, _ = Decompress(nil, junk)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestLazyRoundTripProperty(t *testing.T) {
	f := func(data []byte, chainRaw uint8) bool {
		p := Params{MaxChain: int(chainRaw%64) + 1, Lazy: true}
		blob, _ := Compress(nil, data, p)
		out, err := Decompress(nil, blob)
		return err == nil && bytes.Equal(out, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestLazyNeverWorseOnCorpus(t *testing.T) {
	for name, data := range corpus() {
		_, greedy := Compress(nil, data, Params{MaxChain: 32})
		_, lazy := Compress(nil, data, Params{MaxChain: 32, Lazy: true})
		if lazy.DstBytes > greedy.DstBytes+greedy.DstBytes/50 {
			t.Errorf("%s: lazy clearly worse: %d vs %d", name, lazy.DstBytes, greedy.DstBytes)
		}
	}
}

func TestLazyImprovesAdversarialInput(t *testing.T) {
	// Classic lazy-matching win: a short match at pos hides a longer one
	// at pos+1. Layout: "ab" + X + "b" + Y where a greedy encoder takes
	// the short "ab" match and misses the long run starting at "b".
	long := bytes.Repeat([]byte("0123456789ABCDEF"), 8)
	data := append([]byte{}, []byte("ab")...)
	data = append(data, long...)
	data = append(data, 'a') // greedy bait: matches "ab" prefix...
	data = append(data, 'b')
	data = append(data, long...) // ...hiding this full repeat at +1
	_, greedy := Compress(nil, data, Params{MaxChain: 64})
	_, lazy := Compress(nil, data, Params{MaxChain: 64, Lazy: true})
	if lazy.DstBytes > greedy.DstBytes {
		t.Fatalf("lazy should not lose on the adversarial layout: %d vs %d", lazy.DstBytes, greedy.DstBytes)
	}
	if lazy.SearchSteps < greedy.SearchSteps {
		t.Fatal("lazy matching should never search less than greedy")
	}
}

func TestBestParams(t *testing.T) {
	p := BestParams()
	if !p.Lazy || p.MaxChain <= DefaultParams().MaxChain {
		t.Fatalf("BestParams should be deeper and lazy: %+v", p)
	}
	data := corpus()["text"]
	_, def := Compress(nil, data, DefaultParams())
	_, best := Compress(nil, data, BestParams())
	if best.DstBytes > def.DstBytes {
		t.Fatalf("BestParams compressed worse: %d vs %d", best.DstBytes, def.DstBytes)
	}
}
