package lz

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestQLZRoundTrip(t *testing.T) {
	for name, data := range corpus() {
		blob, st := CompressQLZ(nil, data)
		if st.SrcBytes != len(data) || st.DstBytes != len(blob) {
			t.Fatalf("%s: stats mismatch", name)
		}
		out, err := Decompress(nil, blob)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("%s: round trip mismatch", name)
		}
	}
}

func TestQLZCompressesRepetitiveData(t *testing.T) {
	data := corpus()
	for _, name := range []string{"zeros", "text", "periodic"} {
		_, st := CompressQLZ(nil, data[name])
		if st.Ratio() < 2.0 {
			t.Errorf("%s: ratio %.2f, want >= 2", name, st.Ratio())
		}
	}
}

func TestQLZLongMatchesBeatLZSSOnZeros(t *testing.T) {
	// QLZ's 258-byte matches collapse runs harder than LZSS's 18-byte cap.
	data := make([]byte, 4096)
	_, qlz := CompressQLZ(nil, data)
	_, lzss := Compress(nil, data, DefaultParams())
	if qlz.DstBytes >= lzss.DstBytes {
		t.Fatalf("qlz should beat lzss on runs: %d vs %d", qlz.DstBytes, lzss.DstBytes)
	}
}

func TestQLZFasterSearchThanLZSS(t *testing.T) {
	// The speed model: single-probe search does far fewer steps than
	// hash-chain search on matchy data — the QuickLZ tradeoff.
	data := corpus()["text"]
	_, qlz := CompressQLZ(nil, data)
	_, lzss := Compress(nil, data, Params{MaxChain: 64})
	if qlz.SearchSteps >= lzss.SearchSteps {
		t.Fatalf("qlz searched more than deep lzss: %d vs %d", qlz.SearchSteps, lzss.SearchSteps)
	}
	if qlz.SearchSteps > qlz.Positions {
		t.Fatalf("single probe means steps (%d) <= positions (%d)", qlz.SearchSteps, qlz.Positions)
	}
}

func TestQLZRandomDataStoredRaw(t *testing.T) {
	blob, st := CompressQLZ(nil, corpus()["random"])
	if blob[0] != ModeRaw {
		t.Fatalf("random data should store raw, mode %d", blob[0])
	}
	if st.Ratio() > 1.0 {
		t.Fatalf("raw ratio %g", st.Ratio())
	}
}

func TestQLZMaxMatchBoundary(t *testing.T) {
	// A run longer than QLZMaxMatch forces multiple max-length tokens.
	data := append([]byte("start"), bytes.Repeat([]byte{7}, 3*QLZMaxMatch+11)...)
	blob, _ := CompressQLZ(nil, data)
	out, err := Decompress(nil, blob)
	if err != nil || !bytes.Equal(out, data) {
		t.Fatalf("max-match boundary round trip: %v", err)
	}
}

func TestCodecDispatch(t *testing.T) {
	data := corpus()["text"]
	for _, c := range []Codec{CodecLZSS, CodecQLZ} {
		blob, st := CompressCodec(c, nil, data, DefaultParams())
		if st.DstBytes != len(blob) {
			t.Fatalf("%s: stats mismatch", c)
		}
		out, err := Decompress(nil, blob)
		if err != nil || !bytes.Equal(out, data) {
			t.Fatalf("%s: round trip failed: %v", c, err)
		}
	}
	if CodecLZSS.String() != "lzss" || CodecQLZ.String() != "qlz" || Codec(9).String() != "codec(9)" {
		t.Fatal("codec names")
	}
}

func TestQLZDecoderRejectsCorruption(t *testing.T) {
	cases := map[string][]byte{
		"truncated control": {ModeQLZ, 8, 0x01, 0x00},
		"truncated match":   {ModeQLZ, 8, 0x01, 0x00, 0x00, 0x00, 0x05},
		"bad offset":        {ModeQLZ, 3, 0x01, 0x00, 0x00, 0x00, 0xFF, 0x00, 0x00},
	}
	for name, b := range cases {
		if _, err := Decompress(nil, b); err == nil {
			t.Errorf("%s: should be rejected", name)
		}
	}
}

// Property: QLZ round trips for arbitrary inputs.
func TestQLZRoundTripProperty(t *testing.T) {
	f := func(data []byte) bool {
		blob, _ := CompressQLZ(nil, data)
		out, err := Decompress(nil, blob)
		return err == nil && bytes.Equal(out, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// Property: repetitive inputs round trip and never expand past the raw
// fallback bound under both codecs.
func TestBothCodecsBoundedExpansionProperty(t *testing.T) {
	f := func(pat []byte, repRaw uint8) bool {
		if len(pat) == 0 {
			pat = []byte{0}
		}
		data := bytes.Repeat(pat, int(repRaw)+1)
		if len(data) > 1<<16 {
			data = data[:1<<16]
		}
		for _, c := range []Codec{CodecLZSS, CodecQLZ} {
			blob, _ := CompressCodec(c, nil, data, DefaultParams())
			if len(blob) > len(data)+6 {
				return false
			}
			out, err := Decompress(nil, blob)
			if err != nil || !bytes.Equal(out, data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEntropy(t *testing.T) {
	if Entropy(nil) != 0 {
		t.Fatal("empty entropy should be 0")
	}
	if Entropy(make([]byte, 1024)) != 0 {
		t.Fatal("constant input entropy should be 0")
	}
	uniform := make([]byte, 256*16)
	for i := range uniform {
		uniform[i] = byte(i)
	}
	if h := Entropy(uniform); h < 7.99 || h > 8.01 {
		t.Fatalf("uniform bytes entropy %g, want ~8", h)
	}
	text := corpus()["text"]
	if h := Entropy(text); h <= 2 || h >= 6 {
		t.Fatalf("english-ish text entropy %g, want mid-range", h)
	}
	if !LikelyIncompressible(corpus()["random"], 7.2) {
		t.Fatal("random bytes should be flagged incompressible")
	}
	if LikelyIncompressible(text, 7.2) {
		t.Fatal("text should not be flagged incompressible")
	}
}
