package chunk

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
)

func benchData() []byte {
	data := make([]byte, 1<<20)
	rand.New(rand.NewSource(1)).Read(data)
	return data
}

func BenchmarkFixed4K(b *testing.B) {
	data := benchData()
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		if _, err := Split(NewFixed(bytes.NewReader(data), 4096)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGearCDC(b *testing.B) {
	data := benchData()
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		if _, err := Split(NewGear(bytes.NewReader(data), DefaultGearConfig())); err != nil {
			b.Fatal(err)
		}
	}
}

// testPool is a minimal Buffers implementation: a LIFO free list, like the
// engine's pool but without the locking the single-threaded benchmarks
// don't need.
type testPool struct{ free [][]byte }

func (p *testPool) Get(capacity int) []byte {
	for n := len(p.free); n > 0; n = len(p.free) {
		buf := p.free[n-1]
		p.free = p.free[:n-1]
		if cap(buf) >= capacity {
			return buf
		}
	}
	return make([]byte, 0, capacity)
}

func (p *testPool) Put(buf []byte) { p.free = append(p.free, buf[:0]) }

// drain runs a chunker to EOF, returning every chunk buffer to the pool —
// the engine's steady-state pattern.
func drain(b *testing.B, ck Chunker, pool *testPool) int {
	chunks := 0
	for {
		c, err := ck.Next()
		if err != nil {
			if err == io.EOF {
				return chunks
			}
			b.Fatal(err)
		}
		chunks++
		pool.Put(c.Data)
	}
}

// BenchmarkFixed4KPooled measures the allocs/op floor of the fixed chunker
// with recycled payload buffers (pair with BenchmarkFixed4K for the delta).
func BenchmarkFixed4KPooled(b *testing.B) {
	data := benchData()
	pool := &testPool{}
	r := bytes.NewReader(data)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Reset(data)
		f := NewFixed(r, 4096)
		f.SetBuffers(pool)
		drain(b, f, pool)
	}
}

// BenchmarkGearCDCPooled measures the allocs/op floor of the Gear chunker
// with recycled payload buffers and the fixed read-ahead buffer — the
// regression guard for Gear.fill's per-call temporary.
func BenchmarkGearCDCPooled(b *testing.B) {
	data := benchData()
	pool := &testPool{}
	r := bytes.NewReader(data)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Reset(data)
		g := NewGear(r, DefaultGearConfig())
		g.SetBuffers(pool)
		drain(b, g, pool)
	}
}
