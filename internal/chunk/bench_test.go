package chunk

import (
	"bytes"
	"math/rand"
	"testing"
)

func benchData() []byte {
	data := make([]byte, 1<<20)
	rand.New(rand.NewSource(1)).Read(data)
	return data
}

func BenchmarkFixed4K(b *testing.B) {
	data := benchData()
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		if _, err := Split(NewFixed(bytes.NewReader(data), 4096)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGearCDC(b *testing.B) {
	data := benchData()
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		if _, err := Split(NewGear(bytes.NewReader(data), DefaultGearConfig())); err != nil {
			b.Fatal(err)
		}
	}
}
