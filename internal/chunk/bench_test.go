package chunk

import (
	"bytes"
	"io"
	"testing"
)

// The chunker benchmarks run over the shared 1 MiB corpora from
// gearref_test.go rather than purely random bytes: boundary density — and
// with it how far the pre-Min skip and the multi-byte step get to run —
// depends on content. Random data cuts near Avg; compressible stripes cut
// on the stripe cadence; zero runs coast to Max (the best case for the
// skip); the shifted corpus pins content-defined behavior. Every benchmark
// reports allocations, so an allocation regression in the scan or the fill
// path fails the bench-compare gate even when ns/op noise hides it.

// benchGear drains a Gear chunker over data in the engine's steady-state
// configuration — pooled payload buffers, reused reader — so the benchmark
// measures the chunker (scan + payload copy + read-ahead fill), not the
// allocator zeroing fresh 4 KB payloads per chunk.
func benchGear(b *testing.B, data []byte, ref bool) {
	pool := &testPool{}
	r := bytes.NewReader(data)
	g := NewGear(r, DefaultGearConfig())
	g.ref = ref
	g.SetBuffers(pool)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Reset(data)
		g.Reset(r)
		if drain(b, g, pool) == 0 {
			b.Fatal("no chunks")
		}
	}
}

// BenchmarkGearCDC measures the content-defined chunker on each corpus,
// through the multi-byte fast path.
func BenchmarkGearCDC(b *testing.B) {
	for _, c := range goldenCorpora() {
		b.Run(c.name, func(b *testing.B) { benchGear(b, c.data, false) })
	}
}

// BenchmarkGearCDCRef is the same measurement through the retained scalar
// reference scan — the denominator for the chunker speedup the
// bench-compare script stamps into the baseline and BENCH_*.json.
func BenchmarkGearCDCRef(b *testing.B) {
	for _, c := range goldenCorpora() {
		b.Run(c.name, func(b *testing.B) { benchGear(b, c.data, true) })
	}
}

// BenchmarkFixed4K chunks the same corpora at a fixed 4 KB grain — content
// cannot change the work, but the corpus variants keep the two chunkers'
// numbers directly comparable.
func BenchmarkFixed4K(b *testing.B) {
	for _, c := range goldenCorpora() {
		b.Run(c.name, func(b *testing.B) {
			b.SetBytes(int64(len(c.data)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Split(NewFixed(bytes.NewReader(c.data), 4096)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// testPool is a minimal Buffers implementation: a LIFO free list, like the
// engine's pool but without the locking the single-threaded benchmarks
// don't need.
type testPool struct{ free [][]byte }

func (p *testPool) Get(capacity int) []byte {
	for n := len(p.free); n > 0; n = len(p.free) {
		buf := p.free[n-1]
		p.free = p.free[:n-1]
		if cap(buf) >= capacity {
			return buf
		}
	}
	return make([]byte, 0, capacity)
}

func (p *testPool) Put(buf []byte) { p.free = append(p.free, buf[:0]) }

// drain runs a chunker to EOF, returning every chunk buffer to the pool —
// the engine's steady-state pattern.
func drain(b *testing.B, ck Chunker, pool *testPool) int {
	chunks := 0
	for {
		c, err := ck.Next()
		if err != nil {
			if err == io.EOF {
				return chunks
			}
			b.Fatal(err)
		}
		chunks++
		pool.Put(c.Data)
	}
}

// BenchmarkFixed4KPooled measures the allocs/op floor of the fixed chunker
// with recycled payload buffers (pair with BenchmarkFixed4K for the delta).
func BenchmarkFixed4KPooled(b *testing.B) {
	data := goldenCorpora()[0].data
	pool := &testPool{}
	r := bytes.NewReader(data)
	f := NewFixed(r, 4096)
	f.SetBuffers(pool)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Reset(data)
		f.Reset(r)
		drain(b, f, pool)
	}
}

// BenchmarkGearCDCPooled measures the allocs/op floor of the Gear chunker
// with recycled payload buffers, the fixed read-ahead buffer, and Reset
// between streams — the regression guard for any per-chunk or per-stream
// allocation sneaking back into the read path.
func BenchmarkGearCDCPooled(b *testing.B) {
	data := goldenCorpora()[0].data
	pool := &testPool{}
	r := bytes.NewReader(data)
	g := NewGear(r, DefaultGearConfig())
	g.SetBuffers(pool)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Reset(data)
		g.Reset(r)
		drain(b, g, pool)
	}
}
