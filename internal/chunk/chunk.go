// Package chunk implements the chunking stage of the deduplication pipeline:
// breaking a write stream into the fixed-size chunks primary storage systems
// deduplicate at (4 KB in the paper's evaluation, 8 KB in its index-sizing
// analysis), plus a content-defined chunker (Gear rolling hash) for
// workloads where shifted content would defeat fixed boundaries.
package chunk

import (
	"fmt"
	"io"
)

// Chunk is one unit of deduplication: a byte range of the input stream.
type Chunk struct {
	Data   []byte // chunk payload; owned by the caller after Next returns
	Offset int64  // byte offset of the chunk in the stream
}

// Chunker splits a stream into chunks. Next returns io.EOF after the final
// chunk has been returned.
type Chunker interface {
	// Next returns the next chunk. The returned Data is a fresh slice the
	// caller may retain.
	Next() (Chunk, error)
}

// Fixed is a fixed-size chunker. The final chunk of a stream may be
// shorter than the chunk size.
type Fixed struct {
	r      io.Reader
	size   int
	offset int64
	done   bool
}

// NewFixed returns a fixed-size chunker over r. It panics if size < 1.
func NewFixed(r io.Reader, size int) *Fixed {
	if size < 1 {
		panic(fmt.Sprintf("chunk: fixed chunk size must be >= 1, got %d", size))
	}
	return &Fixed{r: r, size: size}
}

// Next returns the next fixed-size chunk.
func (f *Fixed) Next() (Chunk, error) {
	if f.done {
		return Chunk{}, io.EOF
	}
	buf := make([]byte, f.size)
	n, err := io.ReadFull(f.r, buf)
	switch err {
	case nil:
	case io.ErrUnexpectedEOF:
		f.done = true
	case io.EOF:
		f.done = true
		return Chunk{}, io.EOF
	default:
		return Chunk{}, err
	}
	c := Chunk{Data: buf[:n], Offset: f.offset}
	f.offset += int64(n)
	return c, nil
}

// GearConfig parameterizes the content-defined chunker.
type GearConfig struct {
	Min  int // minimum chunk size; boundaries are suppressed before this
	Avg  int // target average chunk size; must be a power of two
	Max  int // hard maximum chunk size
	Seed uint64
}

// DefaultGearConfig targets 4 KB average chunks with 2 KB/16 KB bounds.
func DefaultGearConfig() GearConfig {
	return GearConfig{Min: 2 << 10, Avg: 4 << 10, Max: 16 << 10, Seed: 0x9E3779B97F4A7C15}
}

// Gear is a content-defined chunker using the Gear rolling hash: at each
// byte, hash = hash<<1 + table[b]; a boundary is declared when the top bits
// selected by the average-size mask are all zero. Identical content
// therefore produces identical boundaries regardless of its position in the
// stream.
type Gear struct {
	cfg    GearConfig
	table  [256]uint64
	mask   uint64
	r      io.Reader
	buf    []byte // unconsumed read-ahead
	offset int64
	eof    bool
}

// NewGear returns a content-defined chunker over r. It panics if the
// configuration is inconsistent (Min > Avg, Avg > Max, or Avg not a power
// of two).
func NewGear(r io.Reader, cfg GearConfig) *Gear {
	if cfg.Min < 1 || cfg.Min > cfg.Avg || cfg.Avg > cfg.Max {
		panic(fmt.Sprintf("chunk: need 1 <= Min <= Avg <= Max, got %+v", cfg))
	}
	if cfg.Avg&(cfg.Avg-1) != 0 {
		panic(fmt.Sprintf("chunk: Avg must be a power of two, got %d", cfg.Avg))
	}
	g := &Gear{cfg: cfg, r: r}
	// The mask selects log2(Avg) bits in the high half of the hash so the
	// expected distance between boundaries is Avg.
	bits := 0
	for v := cfg.Avg; v > 1; v >>= 1 {
		bits++
	}
	g.mask = ((1 << bits) - 1) << (64 - bits)
	// Deterministic pseudo-random gear table (splitmix64).
	s := cfg.Seed
	for i := range g.table {
		s += 0x9E3779B97F4A7C15
		z := s
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		g.table[i] = z ^ (z >> 31)
	}
	return g
}

// Next returns the next content-defined chunk.
func (g *Gear) Next() (Chunk, error) {
	if err := g.fill(g.cfg.Max); err != nil {
		return Chunk{}, err
	}
	if len(g.buf) == 0 {
		return Chunk{}, io.EOF
	}
	cut := g.findBoundary(g.buf)
	data := make([]byte, cut)
	copy(data, g.buf[:cut])
	g.buf = g.buf[cut:]
	c := Chunk{Data: data, Offset: g.offset}
	g.offset += int64(cut)
	return c, nil
}

// findBoundary returns the cut point for the front of buf.
func (g *Gear) findBoundary(buf []byte) int {
	n := len(buf)
	if n <= g.cfg.Min {
		return n
	}
	limit := n
	if limit > g.cfg.Max {
		limit = g.cfg.Max
	}
	var h uint64
	// The hash still rolls over the pre-Min prefix so the boundary decision
	// depends only on content, but no cut is declared before Min.
	for i := 0; i < limit; i++ {
		h = h<<1 + g.table[buf[i]]
		if i+1 >= g.cfg.Min && h&g.mask == 0 {
			return i + 1
		}
	}
	return limit
}

// fill tops the read-ahead buffer up to want bytes (or EOF).
func (g *Gear) fill(want int) error {
	for len(g.buf) < want && !g.eof {
		tmp := make([]byte, want-len(g.buf))
		n, err := g.r.Read(tmp)
		g.buf = append(g.buf, tmp[:n]...)
		if err == io.EOF {
			g.eof = true
			return nil
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// Split is a convenience that runs a chunker to completion and returns all
// chunks. Intended for tests and small inputs.
func Split(c Chunker) ([]Chunk, error) {
	var out []Chunk
	for {
		ch, err := c.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, ch)
	}
}
