// Package chunk implements the chunking stage of the deduplication pipeline:
// breaking a write stream into the fixed-size chunks primary storage systems
// deduplicate at (4 KB in the paper's evaluation, 8 KB in its index-sizing
// analysis), plus a content-defined chunker (Gear rolling hash) for
// workloads where shifted content would defeat fixed boundaries.
package chunk

import (
	"fmt"
	"io"
)

// Chunk is one unit of deduplication: a byte range of the input stream.
type Chunk struct {
	Data   []byte // chunk payload; owned by the caller after Next returns
	Offset int64  // byte offset of the chunk in the stream
}

// Chunker splits a stream into chunks. Next returns io.EOF after the final
// chunk has been returned.
type Chunker interface {
	// Next returns the next chunk. The returned Data is a fresh slice the
	// caller may retain — unless a Buffers pool was attached, in which case
	// the caller owns Data until it returns it to the pool.
	Next() (Chunk, error)
}

// Buffers supplies reusable chunk payload buffers so a steady-state run
// allocates nothing per chunk. Get returns a zero-length slice with at
// least the requested capacity; Put gives a buffer back once the caller is
// done with the chunk's Data. Implementations must be safe for concurrent
// use (the engine recycles buffers from worker goroutines).
//
// Ownership rule: with a pool attached, chunk Data is on loan — a caller
// that retains chunk bytes past Put (e.g. Verify-mode blob retention) must
// copy them first or simply never Put that buffer.
type Buffers interface {
	Get(capacity int) []byte
	Put(buf []byte)
}

// Fixed is a fixed-size chunker. The final chunk of a stream may be
// shorter than the chunk size.
type Fixed struct {
	r      io.Reader
	size   int
	offset int64
	done   bool
	bufs   Buffers
}

// NewFixed returns a fixed-size chunker over r. It panics if size < 1.
func NewFixed(r io.Reader, size int) *Fixed {
	if size < 1 {
		panic(fmt.Sprintf("chunk: fixed chunk size must be >= 1, got %d", size))
	}
	return &Fixed{r: r, size: size}
}

// SetBuffers attaches a buffer pool; subsequent chunks' Data slices are
// drawn from it and the caller must Put them back when done.
func (f *Fixed) SetBuffers(b Buffers) { f.bufs = b }

// Reset re-targets the chunker at a new stream, keeping its configuration
// and buffer pool, so long-lived pipelines chunk many streams without
// reconstructing state.
func (f *Fixed) Reset(r io.Reader) {
	f.r = r
	f.offset = 0
	f.done = false
}

// Next returns the next fixed-size chunk.
func (f *Fixed) Next() (Chunk, error) {
	if f.done {
		return Chunk{}, io.EOF
	}
	buf := alloc(f.bufs, f.size)
	n, err := io.ReadFull(f.r, buf)
	switch err {
	case nil:
	case io.ErrUnexpectedEOF:
		f.done = true
	case io.EOF:
		f.done = true
		release(f.bufs, buf)
		return Chunk{}, io.EOF
	default:
		release(f.bufs, buf)
		return Chunk{}, err
	}
	c := Chunk{Data: buf[:n], Offset: f.offset}
	f.offset += int64(n)
	return c, nil
}

// GearConfig parameterizes the content-defined chunker.
type GearConfig struct {
	Min  int // minimum chunk size; boundaries are suppressed before this
	Avg  int // target average chunk size; must be a power of two
	Max  int // hard maximum chunk size
	Seed uint64
}

// DefaultGearConfig targets 4 KB average chunks with 2 KB/16 KB bounds.
func DefaultGearConfig() GearConfig {
	return GearConfig{Min: 2 << 10, Avg: 4 << 10, Max: 16 << 10, Seed: 0x9E3779B97F4A7C15}
}

// Gear is a content-defined chunker using the Gear rolling hash: at each
// byte, hash = hash<<1 + table[b]; a boundary is declared when the top bits
// selected by the average-size mask are all zero. Identical content
// therefore produces identical boundaries regardless of its position in the
// stream.
type Gear struct {
	cfg   GearConfig
	table [256]uint64
	mask  uint64
	ref   bool // force the scalar reference scan (differential tests/benches)
	r     io.Reader
	// The read-ahead window lives in a fixed buffer allocated once at
	// construction: read[start:end] is the unconsumed data. fill compacts
	// the window to the front instead of growing, so steady-state chunking
	// performs zero read-path allocations. The buffer is several Max
	// lengths long so compaction runs once per readSlack consumed Max
	// windows, not once per chunk — at 2*Max every byte was memmoved an
	// extra time through the compaction, a tax both the fast and the
	// reference scan paid.
	read   []byte
	start  int
	end    int
	offset int64
	eof    bool
	bufs   Buffers
}

// NewGear returns a content-defined chunker over r. It panics if the
// configuration is inconsistent (Min > Avg, Avg > Max, or Avg not a power
// of two).
func NewGear(r io.Reader, cfg GearConfig) *Gear {
	if cfg.Min < 1 || cfg.Min > cfg.Avg || cfg.Avg > cfg.Max {
		panic(fmt.Sprintf("chunk: need 1 <= Min <= Avg <= Max, got %+v", cfg))
	}
	if cfg.Avg&(cfg.Avg-1) != 0 {
		panic(fmt.Sprintf("chunk: Avg must be a power of two, got %d", cfg.Avg))
	}
	g := &Gear{cfg: cfg, r: r, read: make([]byte, (readSlack+1)*cfg.Max)}
	// The mask selects log2(Avg) bits in the high half of the hash so the
	// expected distance between boundaries is Avg.
	bits := 0
	for v := cfg.Avg; v > 1; v >>= 1 {
		bits++
	}
	g.mask = ((1 << bits) - 1) << (64 - bits)
	// Deterministic pseudo-random gear table (splitmix64).
	s := cfg.Seed
	for i := range g.table {
		s += 0x9E3779B97F4A7C15
		z := s
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		g.table[i] = z ^ (z >> 31)
	}
	return g
}

// SetBuffers attaches a buffer pool; subsequent chunks' Data slices are
// drawn from it and the caller must Put them back when done.
func (g *Gear) SetBuffers(b Buffers) { g.bufs = b }

// Reset re-targets the chunker at a new stream, keeping its gear table,
// read-ahead buffer, and buffer pool: a steady-state pipeline chunks any
// number of streams with zero construction allocations.
func (g *Gear) Reset(r io.Reader) {
	g.r = r
	g.start, g.end = 0, 0
	g.offset = 0
	g.eof = false
}

// Next returns the next content-defined chunk.
func (g *Gear) Next() (Chunk, error) {
	if err := g.fill(g.cfg.Max); err != nil {
		return Chunk{}, err
	}
	window := g.read[g.start:g.end]
	if len(window) == 0 {
		return Chunk{}, io.EOF
	}
	cut := g.findBoundary(window)
	data := alloc(g.bufs, cut)
	copy(data, window[:cut])
	g.start += cut
	c := Chunk{Data: data, Offset: g.offset}
	g.offset += int64(cut)
	return c, nil
}

// readSlack is how many Max-length windows the read-ahead buffer holds
// beyond the one fill must guarantee: compaction copies at most Max bytes
// once per readSlack*Max consumed, so the amortized compaction cost is
// 1/readSlack of a memmove per byte instead of a full one.
const readSlack = 7

// gearWindow is how many trailing bytes the 64-bit Gear state can depend
// on: every step shifts the hash left one bit, so a byte's table
// contribution has been shifted out entirely (mod 2^64, not just in the
// masked bits) after 64 steps. Seeding the rolling state from the
// gearWindow bytes before the first testable position therefore reproduces
// the full-prefix hash value exactly at every position from Min onward.
const gearWindow = 64

// findBoundary returns the cut point for the front of buf.
//
// This is the multi-byte fast path (the chunker's matchLen moment): cut
// points before Min are suppressed, and the hash at any position depends
// only on the last gearWindow bytes, so the scan skips the pre-Min prefix
// outright — it seeds the state from buf[Min-1-gearWindow : Min-1] instead
// of hashing bytes that can never be declared a cut. Because Next calls
// findBoundary afresh on each chunk, this is also the skip-ahead after a
// cut: the scan of the next chunk restarts at offset+Min-gearWindow rather
// than re-walking the new chunk's head. The hot loop then folds eight
// table lookups per unrolled iteration, written as h*2+t so the update
// compiles to a single fused lea: the rolling state's loop-carried
// dependency drops from two cycles per byte (shl+add) to one. Each
// position's mask test is a compare the branch predictor retires as
// never-taken (a cut fires once per Avg bytes); folding the eight tests
// into one branchless combine per step is possible — the algebra allows
// it — but measured slower, because the flag arithmetic occupies the
// issue ports the hash chain needs, while predicted-untaken branches are
// effectively free (see DESIGN.md "Chunker hot loop"). Boundaries are
// bit-identical to the retained scalar scan (findBoundaryRef); the
// differential, fuzz, and golden tests in gearref_test.go hold the two
// together.
func (g *Gear) findBoundary(buf []byte) int {
	n := len(buf)
	if n <= g.cfg.Min {
		return n
	}
	if g.ref {
		return g.findBoundaryRef(buf)
	}
	limit := n
	if limit > g.cfg.Max {
		limit = g.cfg.Max
	}
	table := &g.table
	mask := g.mask
	// first is the first byte index whose hash may declare a cut (cut
	// position i+1 >= Min). Seed the rolling state from the window-length
	// bytes before it; older bytes cannot influence the hash there.
	first := g.cfg.Min - 1
	seed := first - gearWindow
	if seed < 0 {
		seed = 0
	}
	var h uint64
	for _, b := range buf[seed:first] {
		h = h*2 + table[b]
	}
	i := first
	// runGate suppresses run probing until a position where a full
	// gearWindow-length run could exist again: when a backward probe finds
	// a mismatch at index j, no all-identical window can end before
	// j+gearWindow, so probing again earlier is wasted work (striped
	// half-compressible data would otherwise pay a failed probe per word).
	runGate := 0
	for i+8 <= limit {
		s := buf[i : i+8 : i+8]
		// Constant-run fast path: h ← 2h + t has fixed point h = -t
		// (mod 2^64), so after gearWindow identical bytes b the hash is
		// pinned at -table[b] no matter how long the run continues. If
		// that pinned value fails the mask test, no position deeper in
		// the run can be a cut — skip the run a word at a time instead
		// of re-hashing it. Zero-filled and sparse regions (VM images,
		// preallocated files) are exactly this shape.
		if v := le64(s); v == v>>8|v<<56 && i >= runGate && i >= gearWindow {
			b := v & 0xff
			if (-table[b])&mask != 0 {
				j := i - 1
				for lo := i - gearWindow; j >= lo && buf[j] == byte(b); j-- {
				}
				if j < i-gearWindow {
					// The gearWindow bytes before i are all b, so h is
					// already -table[b] and every position covered by
					// an all-b window is cut-free; advance while whole
					// words keep matching. h needs no update: -t is
					// the fixed point the skipped steps would
					// reproduce.
					i += 8
					for i+8 <= limit && le64(buf[i:i+8:i+8]) == v {
						i += 8
					}
					continue
				}
				runGate = j + gearWindow
			}
		}
		h = h*2 + table[s[0]]
		if h&mask == 0 {
			return i + 1
		}
		h = h*2 + table[s[1]]
		if h&mask == 0 {
			return i + 2
		}
		h = h*2 + table[s[2]]
		if h&mask == 0 {
			return i + 3
		}
		h = h*2 + table[s[3]]
		if h&mask == 0 {
			return i + 4
		}
		h = h*2 + table[s[4]]
		if h&mask == 0 {
			return i + 5
		}
		h = h*2 + table[s[5]]
		if h&mask == 0 {
			return i + 6
		}
		h = h*2 + table[s[6]]
		if h&mask == 0 {
			return i + 7
		}
		h = h*2 + table[s[7]]
		if h&mask == 0 {
			return i + 8
		}
		i += 8
	}
	for ; i < limit; i++ {
		h = h*2 + table[buf[i]]
		if h&mask == 0 {
			return i + 1
		}
	}
	return limit
}

// le64 is binary.LittleEndian.Uint64 spelled so the compiler keeps it a
// single load in the hot loop.
func le64(s []byte) uint64 {
	_ = s[7]
	return uint64(s[0]) | uint64(s[1])<<8 | uint64(s[2])<<16 | uint64(s[3])<<24 |
		uint64(s[4])<<32 | uint64(s[5])<<40 | uint64(s[6])<<48 | uint64(s[7])<<56
}

// findBoundaryRef is the original byte-at-a-time scan, retained as the
// reference findBoundary must agree with exactly — the same differential
// pattern that guards the word-wise lz.matchLen. The hash rolls over the
// whole pre-Min prefix (so the boundary decision depends only on content)
// but no cut is declared before Min.
func (g *Gear) findBoundaryRef(buf []byte) int {
	n := len(buf)
	if n <= g.cfg.Min {
		return n
	}
	limit := n
	if limit > g.cfg.Max {
		limit = g.cfg.Max
	}
	var h uint64
	for i := 0; i < limit; i++ {
		h = h<<1 + g.table[buf[i]]
		if i+1 >= g.cfg.Min && h&g.mask == 0 {
			return i + 1
		}
	}
	return limit
}

// fill tops the read-ahead window up to want bytes (or EOF), reading
// directly into the fixed buffer. When the window's tail room runs out it
// is compacted to the front — no temporary slices, no append growth.
func (g *Gear) fill(want int) error {
	for g.end-g.start < want && !g.eof {
		if g.start > 0 && len(g.read)-g.start < want {
			g.end = copy(g.read, g.read[g.start:g.end])
			g.start = 0
		}
		n, err := g.r.Read(g.read[g.end:])
		g.end += n
		if err == io.EOF {
			g.eof = true
			return nil
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// alloc returns a length-n buffer from the pool (or the heap when no pool
// is attached).
func alloc(b Buffers, n int) []byte {
	if b == nil {
		return make([]byte, n)
	}
	return b.Get(n)[:n]
}

// release returns an unused buffer to the pool, if any.
func release(b Buffers, buf []byte) {
	if b != nil {
		b.Put(buf)
	}
}

// Split is a convenience that runs a chunker to completion and returns all
// chunks. Intended for tests and small inputs.
func Split(c Chunker) ([]Chunk, error) {
	var out []Chunk
	for {
		ch, err := c.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, ch)
	}
}
