// Package chunk implements the chunking stage of the deduplication pipeline:
// breaking a write stream into the fixed-size chunks primary storage systems
// deduplicate at (4 KB in the paper's evaluation, 8 KB in its index-sizing
// analysis), plus a content-defined chunker (Gear rolling hash) for
// workloads where shifted content would defeat fixed boundaries.
package chunk

import (
	"fmt"
	"io"
)

// Chunk is one unit of deduplication: a byte range of the input stream.
type Chunk struct {
	Data   []byte // chunk payload; owned by the caller after Next returns
	Offset int64  // byte offset of the chunk in the stream
}

// Chunker splits a stream into chunks. Next returns io.EOF after the final
// chunk has been returned.
type Chunker interface {
	// Next returns the next chunk. The returned Data is a fresh slice the
	// caller may retain — unless a Buffers pool was attached, in which case
	// the caller owns Data until it returns it to the pool.
	Next() (Chunk, error)
}

// Buffers supplies reusable chunk payload buffers so a steady-state run
// allocates nothing per chunk. Get returns a zero-length slice with at
// least the requested capacity; Put gives a buffer back once the caller is
// done with the chunk's Data. Implementations must be safe for concurrent
// use (the engine recycles buffers from worker goroutines).
//
// Ownership rule: with a pool attached, chunk Data is on loan — a caller
// that retains chunk bytes past Put (e.g. Verify-mode blob retention) must
// copy them first or simply never Put that buffer.
type Buffers interface {
	Get(capacity int) []byte
	Put(buf []byte)
}

// Fixed is a fixed-size chunker. The final chunk of a stream may be
// shorter than the chunk size.
type Fixed struct {
	r      io.Reader
	size   int
	offset int64
	done   bool
	bufs   Buffers
}

// NewFixed returns a fixed-size chunker over r. It panics if size < 1.
func NewFixed(r io.Reader, size int) *Fixed {
	if size < 1 {
		panic(fmt.Sprintf("chunk: fixed chunk size must be >= 1, got %d", size))
	}
	return &Fixed{r: r, size: size}
}

// SetBuffers attaches a buffer pool; subsequent chunks' Data slices are
// drawn from it and the caller must Put them back when done.
func (f *Fixed) SetBuffers(b Buffers) { f.bufs = b }

// Next returns the next fixed-size chunk.
func (f *Fixed) Next() (Chunk, error) {
	if f.done {
		return Chunk{}, io.EOF
	}
	buf := alloc(f.bufs, f.size)
	n, err := io.ReadFull(f.r, buf)
	switch err {
	case nil:
	case io.ErrUnexpectedEOF:
		f.done = true
	case io.EOF:
		f.done = true
		release(f.bufs, buf)
		return Chunk{}, io.EOF
	default:
		release(f.bufs, buf)
		return Chunk{}, err
	}
	c := Chunk{Data: buf[:n], Offset: f.offset}
	f.offset += int64(n)
	return c, nil
}

// GearConfig parameterizes the content-defined chunker.
type GearConfig struct {
	Min  int // minimum chunk size; boundaries are suppressed before this
	Avg  int // target average chunk size; must be a power of two
	Max  int // hard maximum chunk size
	Seed uint64
}

// DefaultGearConfig targets 4 KB average chunks with 2 KB/16 KB bounds.
func DefaultGearConfig() GearConfig {
	return GearConfig{Min: 2 << 10, Avg: 4 << 10, Max: 16 << 10, Seed: 0x9E3779B97F4A7C15}
}

// Gear is a content-defined chunker using the Gear rolling hash: at each
// byte, hash = hash<<1 + table[b]; a boundary is declared when the top bits
// selected by the average-size mask are all zero. Identical content
// therefore produces identical boundaries regardless of its position in the
// stream.
type Gear struct {
	cfg   GearConfig
	table [256]uint64
	mask  uint64
	r     io.Reader
	// The read-ahead window lives in a fixed buffer allocated once at
	// construction: read[start:end] is the unconsumed data. fill compacts
	// the window to the front instead of growing, so steady-state chunking
	// performs zero read-path allocations.
	read   []byte
	start  int
	end    int
	offset int64
	eof    bool
	bufs   Buffers
}

// NewGear returns a content-defined chunker over r. It panics if the
// configuration is inconsistent (Min > Avg, Avg > Max, or Avg not a power
// of two).
func NewGear(r io.Reader, cfg GearConfig) *Gear {
	if cfg.Min < 1 || cfg.Min > cfg.Avg || cfg.Avg > cfg.Max {
		panic(fmt.Sprintf("chunk: need 1 <= Min <= Avg <= Max, got %+v", cfg))
	}
	if cfg.Avg&(cfg.Avg-1) != 0 {
		panic(fmt.Sprintf("chunk: Avg must be a power of two, got %d", cfg.Avg))
	}
	g := &Gear{cfg: cfg, r: r, read: make([]byte, 2*cfg.Max)}
	// The mask selects log2(Avg) bits in the high half of the hash so the
	// expected distance between boundaries is Avg.
	bits := 0
	for v := cfg.Avg; v > 1; v >>= 1 {
		bits++
	}
	g.mask = ((1 << bits) - 1) << (64 - bits)
	// Deterministic pseudo-random gear table (splitmix64).
	s := cfg.Seed
	for i := range g.table {
		s += 0x9E3779B97F4A7C15
		z := s
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		g.table[i] = z ^ (z >> 31)
	}
	return g
}

// SetBuffers attaches a buffer pool; subsequent chunks' Data slices are
// drawn from it and the caller must Put them back when done.
func (g *Gear) SetBuffers(b Buffers) { g.bufs = b }

// Next returns the next content-defined chunk.
func (g *Gear) Next() (Chunk, error) {
	if err := g.fill(g.cfg.Max); err != nil {
		return Chunk{}, err
	}
	window := g.read[g.start:g.end]
	if len(window) == 0 {
		return Chunk{}, io.EOF
	}
	cut := g.findBoundary(window)
	data := alloc(g.bufs, cut)
	copy(data, window[:cut])
	g.start += cut
	c := Chunk{Data: data, Offset: g.offset}
	g.offset += int64(cut)
	return c, nil
}

// findBoundary returns the cut point for the front of buf.
func (g *Gear) findBoundary(buf []byte) int {
	n := len(buf)
	if n <= g.cfg.Min {
		return n
	}
	limit := n
	if limit > g.cfg.Max {
		limit = g.cfg.Max
	}
	var h uint64
	// The hash still rolls over the pre-Min prefix so the boundary decision
	// depends only on content, but no cut is declared before Min.
	for i := 0; i < limit; i++ {
		h = h<<1 + g.table[buf[i]]
		if i+1 >= g.cfg.Min && h&g.mask == 0 {
			return i + 1
		}
	}
	return limit
}

// fill tops the read-ahead window up to want bytes (or EOF), reading
// directly into the fixed buffer. When the window's tail room runs out it
// is compacted to the front — no temporary slices, no append growth.
func (g *Gear) fill(want int) error {
	for g.end-g.start < want && !g.eof {
		if g.start > 0 && len(g.read)-g.start < want {
			g.end = copy(g.read, g.read[g.start:g.end])
			g.start = 0
		}
		n, err := g.r.Read(g.read[g.end:])
		g.end += n
		if err == io.EOF {
			g.eof = true
			return nil
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// alloc returns a length-n buffer from the pool (or the heap when no pool
// is attached).
func alloc(b Buffers, n int) []byte {
	if b == nil {
		return make([]byte, n)
	}
	return b.Get(n)[:n]
}

// release returns an unused buffer to the pool, if any.
func release(b Buffers, buf []byte) {
	if b != nil {
		b.Put(buf)
	}
}

// Split is a convenience that runs a chunker to completion and returns all
// chunks. Intended for tests and small inputs.
func Split(c Chunker) ([]Chunk, error) {
	var out []Chunk
	for {
		ch, err := c.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, ch)
	}
}
