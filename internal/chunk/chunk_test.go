package chunk

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
	"testing/quick"
)

func reassemble(chunks []Chunk) []byte {
	var out []byte
	for _, c := range chunks {
		out = append(out, c.Data...)
	}
	return out
}

func TestFixedExactMultiple(t *testing.T) {
	data := bytes.Repeat([]byte{1, 2, 3, 4}, 256) // 1024 bytes
	chunks, err := Split(NewFixed(bytes.NewReader(data), 256))
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) != 4 {
		t.Fatalf("chunks: got %d, want 4", len(chunks))
	}
	for i, c := range chunks {
		if len(c.Data) != 256 {
			t.Fatalf("chunk %d size %d", i, len(c.Data))
		}
		if c.Offset != int64(i*256) {
			t.Fatalf("chunk %d offset %d", i, c.Offset)
		}
	}
	if !bytes.Equal(reassemble(chunks), data) {
		t.Fatal("reassembly mismatch")
	}
}

func TestFixedShortTail(t *testing.T) {
	data := make([]byte, 1000)
	chunks, err := Split(NewFixed(bytes.NewReader(data), 256))
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) != 4 || len(chunks[3].Data) != 1000-3*256 {
		t.Fatalf("short tail: %d chunks, last %d bytes", len(chunks), len(chunks[len(chunks)-1].Data))
	}
}

func TestFixedEmptyInput(t *testing.T) {
	chunks, err := Split(NewFixed(bytes.NewReader(nil), 256))
	if err != nil || len(chunks) != 0 {
		t.Fatalf("empty input: %d chunks, err %v", len(chunks), err)
	}
}

func TestFixedEOFIsSticky(t *testing.T) {
	f := NewFixed(bytes.NewReader([]byte{1}), 4)
	if _, err := f.Next(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := f.Next(); err != io.EOF {
			t.Fatalf("call %d: want io.EOF, got %v", i, err)
		}
	}
}

func TestFixedPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewFixed(0) should panic")
		}
	}()
	NewFixed(bytes.NewReader(nil), 0)
}

func TestGearReassembles(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	data := make([]byte, 1<<18)
	rng.Read(data)
	chunks, err := Split(NewGear(bytes.NewReader(data), DefaultGearConfig()))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reassemble(chunks), data) {
		t.Fatal("gear reassembly mismatch")
	}
}

func TestGearRespectsBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	data := make([]byte, 1<<19)
	rng.Read(data)
	cfg := DefaultGearConfig()
	chunks, err := Split(NewGear(bytes.NewReader(data), cfg))
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range chunks {
		if i < len(chunks)-1 && len(c.Data) < cfg.Min {
			t.Fatalf("chunk %d smaller than Min: %d", i, len(c.Data))
		}
		if len(c.Data) > cfg.Max {
			t.Fatalf("chunk %d larger than Max: %d", i, len(c.Data))
		}
	}
}

func TestGearAverageNearTarget(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	data := make([]byte, 1<<21)
	rng.Read(data)
	cfg := DefaultGearConfig()
	chunks, err := Split(NewGear(bytes.NewReader(data), cfg))
	if err != nil {
		t.Fatal(err)
	}
	avg := float64(len(data)) / float64(len(chunks))
	// Min/Max clamping skews the mean; accept a generous band around Avg.
	if avg < float64(cfg.Avg)/2 || avg > float64(cfg.Avg)*2 {
		t.Fatalf("average chunk %g too far from target %d", avg, cfg.Avg)
	}
}

func TestGearContentDefined(t *testing.T) {
	// The same content shifted by a prefix must produce the same chunk
	// boundaries after the cut points resynchronize.
	rng := rand.New(rand.NewSource(8))
	content := make([]byte, 1<<18)
	rng.Read(content)
	prefix := make([]byte, 777)
	rng.Read(prefix)

	cfg := DefaultGearConfig()
	a, _ := Split(NewGear(bytes.NewReader(content), cfg))
	b, _ := Split(NewGear(bytes.NewReader(append(append([]byte{}, prefix...), content...)), cfg))

	// Collect chunk payload hashes from both runs; the overwhelming
	// majority of a's chunks must reappear verbatim in b.
	seen := make(map[string]bool)
	for _, c := range b {
		seen[string(c.Data)] = true
	}
	matched := 0
	for _, c := range a {
		if seen[string(c.Data)] {
			matched++
		}
	}
	if matched < len(a)*8/10 {
		t.Fatalf("only %d/%d chunks resynchronized after shift", matched, len(a))
	}
}

func TestGearDeterministic(t *testing.T) {
	data := make([]byte, 1<<16)
	rand.New(rand.NewSource(9)).Read(data)
	a, _ := Split(NewGear(bytes.NewReader(data), DefaultGearConfig()))
	b, _ := Split(NewGear(bytes.NewReader(data), DefaultGearConfig()))
	if len(a) != len(b) {
		t.Fatalf("nondeterministic chunk count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !bytes.Equal(a[i].Data, b[i].Data) {
			t.Fatalf("chunk %d differs between runs", i)
		}
	}
}

func TestGearConfigValidation(t *testing.T) {
	bad := []GearConfig{
		{Min: 0, Avg: 4096, Max: 8192},
		{Min: 8192, Avg: 4096, Max: 16384},
		{Min: 1024, Avg: 16384, Max: 8192},
		{Min: 1024, Avg: 3000, Max: 8192}, // not a power of two
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %d should panic: %+v", i, cfg)
				}
			}()
			NewGear(bytes.NewReader(nil), cfg)
		}()
	}
}

// Property: both chunkers always reassemble to the original stream, and
// offsets are the running sum of chunk sizes.
func TestChunkersLosslessProperty(t *testing.T) {
	cfg := GearConfig{Min: 16, Avg: 64, Max: 256, Seed: 1}
	f := func(data []byte, fixedSizeRaw uint8) bool {
		fixedSize := int(fixedSizeRaw%100) + 1
		for _, c := range []Chunker{
			NewFixed(bytes.NewReader(data), fixedSize),
			NewGear(bytes.NewReader(data), cfg),
		} {
			chunks, err := Split(c)
			if err != nil {
				return false
			}
			if !bytes.Equal(reassemble(chunks), data) {
				return false
			}
			var off int64
			for _, ch := range chunks {
				if ch.Offset != off {
					return false
				}
				off += int64(len(ch.Data))
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestChunkerSteadyStateAllocFree is the regression guard for the pooled
// data path: once the buffer pool is primed, chunking an entire stream
// performs no per-chunk allocations — neither for payloads (drawn from the
// pool) nor inside Gear.fill (the fixed read-ahead buffer).
func TestChunkerSteadyStateAllocFree(t *testing.T) {
	data := make([]byte, 1<<20)
	rand.New(rand.NewSource(7)).Read(data)
	pool := &testPool{}
	r := bytes.NewReader(data)
	for name, mk := range map[string]func() Chunker{
		"fixed": func() Chunker {
			f := NewFixed(r, 4096)
			f.SetBuffers(pool)
			return f
		},
		"gear": func() Chunker {
			g := NewGear(r, DefaultGearConfig())
			g.SetBuffers(pool)
			return g
		},
	} {
		run := func() {
			r.Reset(data)
			ck := mk()
			for {
				c, err := ck.Next()
				if err == io.EOF {
					return
				}
				if err != nil {
					t.Fatal(err)
				}
				pool.Put(c.Data)
			}
		}
		run() // prime the pool (and size Gear's read-ahead buffer)
		// The remaining allocations are per-pass (the chunker itself and
		// Gear's read-ahead buffer), not per-chunk: a 1 MiB stream has
		// ~256+ chunks, so a per-chunk alloc would blow way past this.
		if got := testing.AllocsPerRun(5, run); got > 8 {
			t.Errorf("%s: %.0f allocs per full-stream pass; want <= 8 (no per-chunk allocation)", name, got)
		}
	}
}
