package chunk

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// This file is the chunker's mirror of internal/lz/matchref_test.go: the
// scalar findBoundaryRef is retained in chunk.go as the reference the
// multi-byte findBoundary must agree with exactly, and the differential,
// fuzz, and golden tests below hold the two together. Chunk boundaries
// feed the fingerprints, the dedup ratio, and the virtual-time cost model
// (ChunkCycles per chunk length), so a single drifted cut point would move
// every golden Report downstream — boundaries must stay bit-identical.

var updateGoldens = flag.Bool("update", false, "rewrite testdata golden files")

// gearConfigs are the configurations the differential and golden tests run:
// the engine default, plus shapes that stress the fast path's edges — Min
// below the 64-byte seed window, Min equal to it, tiny chunks where the
// unrolled loop barely runs, and a wide Min..Max band.
func gearConfigs() []GearConfig {
	return []GearConfig{
		DefaultGearConfig(),
		{Min: 1, Avg: 64, Max: 256, Seed: 1},      // Min < window: no prefix skip
		{Min: 64, Avg: 256, Max: 1024, Seed: 2},   // Min == window
		{Min: 65, Avg: 128, Max: 512, Seed: 3},    // Min just past the window
		{Min: 512, Avg: 4096, Max: 4096, Seed: 4}, // Avg == Max
		{Min: 4096, Avg: 4096, Max: 65536, Seed: 5},
	}
}

// boundaryList runs a full Split (exercising Next, fill, and the read-ahead
// compaction, not just the scan) and returns every chunk's end offset.
func boundaryList(t testing.TB, data []byte, cfg GearConfig, ref bool) []int64 {
	t.Helper()
	g := NewGear(bytes.NewReader(data), cfg)
	g.ref = ref
	chunks, err := Split(g)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]int64, len(chunks))
	for i, c := range chunks {
		out[i] = c.Offset + int64(len(c.Data))
	}
	return out
}

func boundariesEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestGearBoundariesMatchReference is the deterministic differential: for
// every corpus and configuration, the fast scan and the scalar reference
// must produce the same boundary sequence.
func TestGearBoundariesMatchReference(t *testing.T) {
	for _, c := range goldenCorpora() {
		for _, cfg := range gearConfigs() {
			fast := boundaryList(t, c.data, cfg, false)
			slow := boundaryList(t, c.data, cfg, true)
			if !boundariesEqual(fast, slow) {
				t.Errorf("%s/%+v: fast path boundaries diverge from findBoundaryRef (%d vs %d chunks)",
					c.name, cfg, len(fast), len(slow))
			}
		}
	}
}

// TestGearFindBoundaryMatchesReferenceRaw drives the scan directly (no
// reader, no windowing) over sliding sub-slices, so short buffers, buffers
// ending exactly at Min, and buffers between Min and Max are all hit.
func TestGearFindBoundaryMatchesReferenceRaw(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	data := make([]byte, 1<<15)
	rng.Read(data)
	for _, cfg := range gearConfigs() {
		g := NewGear(bytes.NewReader(nil), cfg)
		for _, n := range []int{0, 1, cfg.Min - 1, cfg.Min, cfg.Min + 1, cfg.Min + 7,
			cfg.Min + 8, cfg.Min + 63, cfg.Min + 64, cfg.Max - 1, cfg.Max, cfg.Max + 9, len(data)} {
			if n < 0 || n > len(data) {
				continue
			}
			for off := 0; off+n <= len(data) && off <= 128; off += 17 {
				buf := data[off : off+n]
				if got, want := g.findBoundary(buf), g.findBoundaryRef(buf); got != want {
					t.Fatalf("cfg %+v len %d off %d: findBoundary=%d ref=%d", cfg, n, off, got, want)
				}
			}
		}
	}
}

// FuzzGearBoundaries fuzzes arbitrary content against arbitrary (valid)
// Min/Avg/Max configurations: the full chunker run through the fast scan
// must produce boundaries bit-identical to the scalar reference.
func FuzzGearBoundaries(f *testing.F) {
	rng := rand.New(rand.NewSource(31))
	big := make([]byte, 8192)
	rng.Read(big)
	f.Add([]byte("inline data reduction"), uint8(3), uint8(10), uint8(2), uint64(0x9E3779B97F4A7C15))
	f.Add(big, uint8(9), uint8(255), uint8(7), uint64(1))
	f.Add(bytes.Repeat([]byte{0}, 4096), uint8(5), uint8(0), uint8(0), uint64(42))
	f.Add(bytes.Repeat([]byte{1, 2, 3, 4, 5, 6, 7}, 700), uint8(7), uint8(63), uint8(1), uint64(7))
	f.Fuzz(func(t *testing.T, data []byte, avgExp, minSel, maxSel uint8, seed uint64) {
		avg := 1 << (2 + int(avgExp)%10)   // 4 .. 2048, power of two
		min := 1 + int(minSel)*(avg-1)/255 // 1 .. avg, crosses the 64-byte window
		max := avg * (1 + int(maxSel)%8)   // avg .. 8*avg
		cfg := GearConfig{Min: min, Avg: avg, Max: max, Seed: seed}
		fast := boundaryList(t, data, cfg, false)
		slow := boundaryList(t, data, cfg, true)
		if !boundariesEqual(fast, slow) {
			t.Fatalf("cfg %+v over %d bytes: fast %v != ref %v", cfg, len(data), fast, slow)
		}
	})
}

// goldenCorpus is one deterministic input stream for the boundary goldens.
type goldenCorpus struct {
	name string
	data []byte
}

// goldenCorpora are the standard 1 MiB chunker corpora, shared with the
// benchmarks in bench_test.go: pure random (uniform boundary density),
// compressible and half-compressible stripes (the entropy profile primary
// storage actually serves, and the regime where pre-Min skipping pays),
// the random corpus shifted by one byte (cut points must move with the
// content, not the alignment), and long zero runs (a degenerate hash
// state: the rolling hash settles after the window fills, so zero runs
// either cut immediately or coast to Max).
func goldenCorpora() []goldenCorpus {
	const size = 1 << 20
	rng := rand.New(rand.NewSource(1))
	random := make([]byte, size)
	rng.Read(random)
	compressible := make([]byte, size)
	for i := 0; i < size; i += 64 {
		rng.Read(compressible[i : i+16])
	}
	half := make([]byte, size)
	for i := 0; i < size; i += 64 {
		rng.Read(half[i : i+32])
	}
	shifted := make([]byte, size)
	shifted[0] = 0x5a
	copy(shifted[1:], random[:size-1])
	zeros := make([]byte, size)
	for i := 0; i < size; i += 8192 {
		rng.Read(zeros[i : i+32])
	}
	return []goldenCorpus{
		{"random", random},
		{"compressible", compressible},
		{"half", half},
		{"shifted", shifted},
		{"zeroruns", zeros},
	}
}

// boundarySum condenses a boundary sequence into chunk count + sha256
// prefix over the little-endian offsets, the form the golden file pins.
func boundarySum(bounds []int64) (int, string) {
	h := sha256.New()
	var le [8]byte
	for _, b := range bounds {
		binary.LittleEndian.PutUint64(le[:], uint64(b))
		h.Write(le[:])
	}
	return len(bounds), fmt.Sprintf("%x", h.Sum(nil)[:8])
}

func goldenPath() string { return filepath.Join("testdata", "gear_boundaries.golden") }

func goldenKey(corpus string, cfg GearConfig) string {
	return fmt.Sprintf("%s min=%d avg=%d max=%d seed=%#x", corpus, cfg.Min, cfg.Avg, cfg.Max, cfg.Seed)
}

// TestGearBoundaryGoldens pins the chunk boundaries of every standard
// corpus under every test configuration to a checked-in golden file,
// recorded from the scalar reference scan. Run with -update to regenerate
// (the update path itself uses findBoundaryRef, so the goldens can never
// silently absorb a fast-path drift).
func TestGearBoundaryGoldens(t *testing.T) {
	corpora := goldenCorpora()
	if *updateGoldens {
		var lines []string
		for _, c := range corpora {
			for _, cfg := range gearConfigs() {
				n, sum := boundarySum(boundaryList(t, c.data, cfg, true))
				lines = append(lines, fmt.Sprintf("%s chunks=%d sha256=%s", goldenKey(c.name, cfg), n, sum))
			}
		}
		sort.Strings(lines)
		out := "# Gear chunk-boundary goldens — recorded from findBoundaryRef via\n" +
			"# `go test ./internal/chunk -run TestGearBoundaryGoldens -update`.\n" +
			"# key: corpus min avg max seed; value: chunk count + sha256[:8] over\n" +
			"# the little-endian chunk end offsets.\n" +
			strings.Join(lines, "\n") + "\n"
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath(), []byte(out), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want := make(map[string]string)
	fh, err := os.Open(goldenPath())
	if err != nil {
		t.Fatalf("%v (run with -update to record)", err)
	}
	defer fh.Close()
	sc := bufio.NewScanner(fh)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		idx := strings.Index(line, " chunks=")
		if idx < 0 {
			t.Fatalf("malformed golden line: %q", line)
		}
		want[line[:idx]] = line[idx+1:]
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, c := range corpora {
		for _, cfg := range gearConfigs() {
			key := goldenKey(c.name, cfg)
			golden, ok := want[key]
			if !ok {
				t.Errorf("no golden for %s (run with -update)", key)
				continue
			}
			n, sum := boundarySum(boundaryList(t, c.data, cfg, false))
			if got := fmt.Sprintf("chunks=%d sha256=%s", n, sum); got != golden {
				t.Errorf("%s: %s, golden %s (chunk boundaries drifted — every downstream golden would move)", key, got, golden)
			}
			checked++
		}
	}
	if checked != len(want) {
		t.Errorf("checked %d golden entries, file has %d", checked, len(want))
	}
}

// TestGearResetReuse pins the Reset contract: a reused chunker must
// produce exactly the chunks a fresh one would, for both chunker kinds,
// including after a previous stream ended in EOF.
func TestGearResetReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	a := make([]byte, 1<<18)
	rng.Read(a)
	b := make([]byte, 3<<17)
	rng.Read(b)

	fresh := boundaryList(t, b, DefaultGearConfig(), false)
	g := NewGear(bytes.NewReader(a), DefaultGearConfig())
	if _, err := Split(g); err != nil {
		t.Fatal(err)
	}
	g.Reset(bytes.NewReader(b))
	chunks, err := Split(g)
	if err != nil {
		t.Fatal(err)
	}
	reused := make([]int64, len(chunks))
	for i, c := range chunks {
		reused[i] = c.Offset + int64(len(c.Data))
	}
	if !boundariesEqual(fresh, reused) {
		t.Fatal("Reset gear produced different boundaries than a fresh one")
	}

	f := NewFixed(bytes.NewReader(a), 4096)
	if _, err := Split(f); err != nil {
		t.Fatal(err)
	}
	f.Reset(bytes.NewReader(b))
	fixed, err := Split(f)
	if err != nil {
		t.Fatal(err)
	}
	if want := (len(b) + 4095) / 4096; len(fixed) != want {
		t.Fatalf("Reset fixed chunker: %d chunks, want %d", len(fixed), want)
	}
	if fixed[0].Offset != 0 {
		t.Fatalf("Reset fixed chunker did not rewind offsets (first offset %d)", fixed[0].Offset)
	}
}

// TestGearRefModeSplitsIdentically double-checks the test hook itself: a
// ref-mode Gear must behave as a drop-in chunker (same chunks, same
// reassembly), so every differential above compares like with like.
func TestGearRefModeSplitsIdentically(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	data := make([]byte, 1<<19)
	rng.Read(data)
	g := NewGear(bytes.NewReader(data), DefaultGearConfig())
	g.ref = true
	chunks, err := Split(g)
	if err != nil {
		t.Fatal(err)
	}
	var back []byte
	for _, c := range chunks {
		back = append(back, c.Data...)
	}
	if !bytes.Equal(back, data) {
		t.Fatal("ref-mode gear does not reassemble")
	}
	if _, err := g.Next(); err != io.EOF {
		t.Fatalf("want io.EOF after Split, got %v", err)
	}
}
