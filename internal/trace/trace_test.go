package trace

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"inlinered/internal/volume"
)

func TestWriteReadRoundTrip(t *testing.T) {
	recs := []Record{
		{Op: OpWrite, LBA: 0, Content: 42},
		{Op: OpRead, LBA: 7},
		{Op: OpTrim, LBA: 9},
		{Op: OpWrite, LBA: 1 << 40, Content: -3},
	}
	var buf bytes.Buffer
	if err := Write(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("round trip: %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d: %+v != %+v", i, got[i], recs[i])
		}
	}
}

func TestReadSkipsCommentsAndBlanks(t *testing.T) {
	in := "# header\n\nW 1 2\n  # indented comment\nR 1\n"
	recs, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("records: %d", len(recs))
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	bad := []string{
		"X 1",
		"W 1",
		"W 1 2 3",
		"R",
		"W abc 1",
		"R -5",
		"W 1 99999999999999999999",
	}
	for _, in := range bad {
		if _, err := Read(strings.NewReader(in)); !errors.Is(err, ErrFormat) {
			t.Errorf("%q: want ErrFormat, got %v", in, err)
		}
	}
}

func TestWriteRejectsUnknownOp(t *testing.T) {
	if err := Write(&bytes.Buffer{}, []Record{{Op: 'Z'}}); err == nil {
		t.Fatal("unknown op should fail to serialize")
	}
}

func TestSynthesizeValidation(t *testing.T) {
	bad := []SynthSpec{
		{Ops: 0, Blocks: 10, DedupRatio: 1},
		{Ops: 10, Blocks: 0, DedupRatio: 1},
		{Ops: 10, Blocks: 10, DedupRatio: 0.5},
		{Ops: 10, Blocks: 10, DedupRatio: 1, WriteFrac: 0.8, TrimFrac: 0.3},
		{Ops: 10, Blocks: 10, DedupRatio: 1, Hotspot: 2},
	}
	for i, sp := range bad {
		if _, err := Synthesize(sp); err == nil {
			t.Errorf("case %d should be rejected", i)
		}
	}
}

func TestSynthesizeShape(t *testing.T) {
	spec := SynthSpec{Ops: 2000, Blocks: 100, WriteFrac: 0.5, TrimFrac: 0.1, DedupRatio: 2, Hotspot: 0.8, Seed: 1}
	recs, err := Synthesize(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2000+100 {
		t.Fatalf("records: %d", len(recs))
	}
	// The fill pass covers every LBA.
	for i := int64(0); i < 100; i++ {
		if recs[i].Op != OpWrite || recs[i].LBA != i {
			t.Fatalf("fill pass broken at %d: %+v", i, recs[i])
		}
	}
	var w, r, tr, hot int
	for _, rec := range recs[100:] {
		switch rec.Op {
		case OpWrite:
			w++
		case OpRead:
			r++
		case OpTrim:
			tr++
		}
		if rec.LBA < 10 {
			hot++
		}
	}
	if w < 800 || w > 1200 || tr < 100 || tr > 320 {
		t.Fatalf("mix off: w=%d r=%d t=%d", w, r, tr)
	}
	// Hotspot: ~80% of ops on the first 10% of blocks.
	if hot < 1400 {
		t.Fatalf("hotspot not concentrated: %d/2000", hot)
	}
	// Deterministic.
	again, _ := Synthesize(spec)
	for i := range recs {
		if recs[i] != again[i] {
			t.Fatal("synthesis must be deterministic")
		}
	}
}

func smallVolume(t *testing.T) (*volume.Volume, volume.Config) {
	t.Helper()
	cfg := volume.DefaultConfig()
	cfg.Blocks = 4096
	cfg.SSD.BlocksPerChannel = 128
	cfg.SegmentBytes = 256 << 10
	v, err := volume.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return v, cfg
}

func TestReplay(t *testing.T) {
	recs, err := Synthesize(SynthSpec{
		Ops: 3000, Blocks: 256, WriteFrac: 0.6, TrimFrac: 0.05,
		DedupRatio: 2, Hotspot: 0.5, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	vol, cfg := smallVolume(t)
	rep, err := Replay(vol, recs, cfg, ReplayOptions{CleanEvery: 512, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Writes == 0 || rep.Reads == 0 || rep.Trims == 0 {
		t.Fatalf("mix missing: %+v", rep)
	}
	if rep.Writes+rep.Reads+rep.Trims != int64(rep.Ops) {
		t.Fatal("op accounting broken")
	}
	if rep.WriteLat.P50 <= 0 || rep.WriteLat.P99 < rep.WriteLat.P50 {
		t.Fatalf("write latency percentiles: %+v", rep.WriteLat)
	}
	if rep.Volume.DedupHits == 0 {
		t.Fatal("dedup ratio 2 trace should produce hits")
	}
	if rep.Elapsed <= 0 {
		t.Fatal("no virtual time elapsed")
	}
	if s := rep.String(); !strings.Contains(s, "p99") || !strings.Contains(s, "reduction") {
		t.Fatalf("report rendering: %s", s)
	}
}

func TestReplayRejectsOutOfRange(t *testing.T) {
	vol, cfg := smallVolume(t)
	_, err := Replay(vol, []Record{{Op: OpWrite, LBA: 1 << 40, Content: 1}}, cfg, ReplayOptions{})
	if err == nil {
		t.Fatal("out-of-range write should fail the replay")
	}
}

// Property: serialize→parse is identity for arbitrary valid records.
func TestTraceRoundTripProperty(t *testing.T) {
	f := func(ops []uint8, lbas []int64, contents []int32) bool {
		n := len(ops)
		if len(lbas) < n {
			n = len(lbas)
		}
		if len(contents) < n {
			n = len(contents)
		}
		recs := make([]Record, 0, n)
		kinds := []Op{OpWrite, OpRead, OpTrim}
		for i := 0; i < n; i++ {
			lba := lbas[i]
			if lba < 0 {
				lba = -lba
			}
			if lba < 0 { // MinInt64
				lba = 0
			}
			recs = append(recs, Record{Op: kinds[int(ops[i])%3], LBA: lba, Content: contents[i]})
		}
		var buf bytes.Buffer
		if err := Write(&buf, recs); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil || len(got) != len(recs) {
			return false
		}
		for i := range recs {
			want := recs[i]
			if want.Op != OpWrite {
				want.Content = 0
			}
			if got[i] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
