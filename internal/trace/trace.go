// Package trace defines a minimal block-I/O trace format and a replayer
// that drives the deduplicating volume with it. Primary storage behaviour —
// the workload class the paper targets — is defined by overwrite and
// re-reference patterns that a one-shot stream cannot express; traces can.
//
// The format is line-oriented text, one operation per line:
//
//	W <lba> <content-id>   # write: block content is derived from the id
//	R <lba>                # read
//	T <lba>                # trim
//	# comment / blank      # ignored
//
// Content ids make traces self-contained and deterministic: two writes with
// the same id carry identical bytes (so dedup behaviour is encoded in the
// trace), without shipping payloads.
package trace

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"strings"
)

// Op is a trace operation kind.
type Op byte

const (
	// OpWrite stores a block.
	OpWrite Op = 'W'
	// OpRead fetches a block.
	OpRead Op = 'R'
	// OpTrim unmaps a block.
	OpTrim Op = 'T'
)

// Record is one trace operation.
type Record struct {
	Op      Op
	LBA     int64
	Content int32 // write content id; ignored for reads and trims
}

// ErrFormat is wrapped by every parse error.
var ErrFormat = errors.New("trace: bad format")

// Write serializes records to w in the text format.
func Write(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	for _, r := range recs {
		var err error
		switch r.Op {
		case OpWrite:
			_, err = fmt.Fprintf(bw, "W %d %d\n", r.LBA, r.Content)
		case OpRead:
			_, err = fmt.Fprintf(bw, "R %d\n", r.LBA)
		case OpTrim:
			_, err = fmt.Fprintf(bw, "T %d\n", r.LBA)
		default:
			err = fmt.Errorf("trace: unknown op %q", r.Op)
		}
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses a text trace.
func Read(r io.Reader) ([]Record, error) {
	var recs []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		rec, err := parse(fields)
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: %v", ErrFormat, line, err)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return recs, nil
}

func parse(fields []string) (Record, error) {
	if len(fields) == 0 {
		return Record{}, errors.New("empty")
	}
	var rec Record
	switch fields[0] {
	case "W":
		if len(fields) != 3 {
			return rec, errors.New("write needs lba and content id")
		}
		rec.Op = OpWrite
		lba, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return rec, err
		}
		cid, err := strconv.ParseInt(fields[2], 10, 32)
		if err != nil {
			return rec, err
		}
		rec.LBA, rec.Content = lba, int32(cid)
	case "R", "T":
		if len(fields) != 2 {
			return rec, errors.New("read/trim needs lba")
		}
		rec.Op = Op(fields[0][0])
		lba, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return rec, err
		}
		rec.LBA = lba
	default:
		return rec, fmt.Errorf("unknown op %q", fields[0])
	}
	if rec.LBA < 0 {
		return rec, errors.New("negative lba")
	}
	return rec, nil
}

// SynthSpec parameterizes the synthetic trace generator.
type SynthSpec struct {
	Ops        int     // operations to generate
	Blocks     int64   // LBA space
	WriteFrac  float64 // fraction of ops that are writes (rest split read/trim)
	TrimFrac   float64 // fraction of ops that are trims
	DedupRatio float64 // writes per distinct content id, >= 1
	Hotspot    float64 // fraction of ops hitting the hot 10% of the LBA space
	Seed       int64
}

// Validate reports whether the spec is usable.
func (s SynthSpec) Validate() error {
	if s.Ops < 1 || s.Blocks < 1 {
		return fmt.Errorf("trace: need ops >= 1 and blocks >= 1: %+v", s)
	}
	if s.WriteFrac < 0 || s.TrimFrac < 0 || s.WriteFrac+s.TrimFrac > 1 {
		return fmt.Errorf("trace: fractions must be non-negative and sum <= 1: %+v", s)
	}
	if s.DedupRatio < 1 {
		return fmt.Errorf("trace: dedup ratio must be >= 1: %+v", s)
	}
	if s.Hotspot < 0 || s.Hotspot > 1 {
		return fmt.Errorf("trace: hotspot must be in [0,1]: %+v", s)
	}
	return nil
}

// Synthesize generates a deterministic trace: a sequential fill of the LBA
// space followed by the requested mix, with an optional hotspot (a share of
// operations concentrated on the first 10% of blocks).
func Synthesize(spec SynthSpec) ([]Record, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	contents := int32(float64(spec.Ops)/spec.DedupRatio + 1)
	recs := make([]Record, 0, spec.Ops+int(spec.Blocks))
	// Fill pass so reads and trims have something to hit.
	for lba := int64(0); lba < spec.Blocks; lba++ {
		recs = append(recs, Record{Op: OpWrite, LBA: lba, Content: rng.Int31n(contents)})
	}
	hot := spec.Blocks / 10
	if hot < 1 {
		hot = 1
	}
	pick := func() int64 {
		if spec.Hotspot > 0 && rng.Float64() < spec.Hotspot {
			return rng.Int63n(hot)
		}
		return rng.Int63n(spec.Blocks)
	}
	for i := 0; i < spec.Ops; i++ {
		p := rng.Float64()
		switch {
		case p < spec.WriteFrac:
			recs = append(recs, Record{Op: OpWrite, LBA: pick(), Content: rng.Int31n(contents)})
		case p < spec.WriteFrac+spec.TrimFrac:
			recs = append(recs, Record{Op: OpTrim, LBA: pick()})
		default:
			recs = append(recs, Record{Op: OpRead, LBA: pick()})
		}
	}
	return recs, nil
}
