package trace

import (
	"fmt"
	"time"

	"inlinered/internal/sim"
	"inlinered/internal/volume"
	"inlinered/internal/workload"
)

// Report summarizes a replay: per-op-type counts and virtual latency
// percentiles, the volume's space accounting, and cleaning activity.
type Report struct {
	Ops                  int
	Writes, Reads, Trims int64
	Elapsed              time.Duration

	WriteLat Latency
	ReadLat  Latency

	Volume volume.Stats
	Cleans int
}

// Latency holds latency percentiles in microseconds.
type Latency struct {
	P50, P90, P99, Mean float64
}

func latencyOf(q *sim.Quantiles, s *sim.Stats) Latency {
	return Latency{
		P50:  q.At(0.50) * 1e6,
		P90:  q.At(0.90) * 1e6,
		P99:  q.At(0.99) * 1e6,
		Mean: s.Mean() * 1e6,
	}
}

// ReplayOptions tune a replay.
type ReplayOptions struct {
	// CleanEvery runs the volume's segment cleaner every N operations
	// (0 disables periodic cleaning).
	CleanEvery int
	// Seed derives block contents from trace content ids.
	Seed int64
}

// Replay drives a volume with a trace and reports virtual-time behaviour.
// Block contents derive deterministically from each write's content id, so
// replays are reproducible and dedup behaviour follows the trace.
func Replay(vol *volume.Volume, recs []Record, cfg volume.Config, opts ReplayOptions) (*Report, error) {
	rep := &Report{Ops: len(recs)}
	var wq, rq sim.Quantiles
	var ws, rs sim.Stats
	start := vol.Now()
	for i, rec := range recs {
		switch rec.Op {
		case OpWrite:
			data := workload.UniqueChunk(opts.Seed, rec.Content, cfg.BlockSize, 0.5)
			lat, err := vol.Write(rec.LBA, data)
			if err != nil {
				return nil, fmt.Errorf("trace: op %d: %w", i, err)
			}
			rep.Writes++
			wq.Add(lat.Seconds())
			ws.Add(lat.Seconds())
		case OpRead:
			_, lat, err := vol.Read(rec.LBA)
			if err != nil {
				return nil, fmt.Errorf("trace: op %d: %w", i, err)
			}
			rep.Reads++
			rq.Add(lat.Seconds())
			rs.Add(lat.Seconds())
		case OpTrim:
			if err := vol.Trim(rec.LBA); err != nil {
				return nil, fmt.Errorf("trace: op %d: %w", i, err)
			}
			rep.Trims++
		default:
			return nil, fmt.Errorf("trace: op %d: unknown op %q", i, rec.Op)
		}
		if opts.CleanEvery > 0 && (i+1)%opts.CleanEvery == 0 {
			n, err := vol.Clean()
			if err != nil {
				return nil, fmt.Errorf("trace: cleaning at op %d: %w", i, err)
			}
			rep.Cleans += n
		}
	}
	rep.Elapsed = vol.Now() - start
	rep.WriteLat = latencyOf(&wq, &ws)
	rep.ReadLat = latencyOf(&rq, &rs)
	rep.Volume = vol.Stats()
	return rep, nil
}

// String renders a replay report.
func (r *Report) String() string {
	return fmt.Sprintf(
		"ops=%d (w=%d r=%d t=%d) elapsed=%v cleans=%d\n"+
			"  write latency µs: p50=%.0f p90=%.0f p99=%.0f mean=%.0f\n"+
			"  read  latency µs: p50=%.0f p90=%.0f p99=%.0f mean=%.0f\n"+
			"  space: logical=%d stored=%d garbage=%d reduction=%.2fx dedup hits=%d",
		r.Ops, r.Writes, r.Reads, r.Trims, r.Elapsed.Round(time.Millisecond), r.Cleans,
		r.WriteLat.P50, r.WriteLat.P90, r.WriteLat.P99, r.WriteLat.Mean,
		r.ReadLat.P50, r.ReadLat.P90, r.ReadLat.P99, r.ReadLat.Mean,
		r.Volume.LogicalBytes, r.Volume.StoredBytes, r.Volume.GarbageBytes,
		r.Volume.ReductionRatio(), r.Volume.DedupHits)
}
