package trace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"time"

	"inlinered/internal/sim"
	"inlinered/internal/volume"
	"inlinered/internal/workload"
)

// Report summarizes a replay: per-op-type counts and virtual latency
// percentiles, the volume's space accounting, and cleaning activity.
type Report struct {
	Ops     int           `json:"ops"`
	Writes  int64         `json:"writes"`
	Reads   int64         `json:"reads"`
	Trims   int64         `json:"trims"`
	Elapsed time.Duration `json:"elapsed_ns"`

	WriteLat Latency `json:"write_lat"`
	ReadLat  Latency `json:"read_lat"`
	TrimLat  Latency `json:"trim_lat"`

	Volume volume.Stats `json:"volume"`
	Cleans int          `json:"cleans"`
}

// Latency holds latency percentiles in microseconds (exact quantiles over
// every sample, unlike the volume's log-bucketed histograms).
type Latency struct {
	P50  float64 `json:"p50_us"`
	P90  float64 `json:"p90_us"`
	P99  float64 `json:"p99_us"`
	Mean float64 `json:"mean_us"`
}

// ReportSchema versions the replay report envelope.
const ReportSchema = "inlinered/trace-report/v1"

// JSON encodes the report as stable, indented JSON with a schema envelope,
// mirroring core.Report.JSON.
func (r *Report) JSON() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	env := struct {
		Schema string  `json:"schema"`
		Report *Report `json:"report"`
	}{ReportSchema, r}
	if err := enc.Encode(env); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func latencyOf(q *sim.Quantiles, s *sim.Stats) Latency {
	return Latency{
		P50:  q.At(0.50) * 1e6,
		P90:  q.At(0.90) * 1e6,
		P99:  q.At(0.99) * 1e6,
		Mean: s.Mean() * 1e6,
	}
}

// ReplayOptions tune a replay.
type ReplayOptions struct {
	// CleanEvery runs the volume's segment cleaner every N operations
	// (0 disables periodic cleaning).
	CleanEvery int
	// Seed derives block contents from trace content ids.
	Seed int64
}

// Replay drives a volume with a trace and reports virtual-time behaviour.
// Block contents derive deterministically from each write's content id, so
// replays are reproducible and dedup behaviour follows the trace.
func Replay(vol *volume.Volume, recs []Record, cfg volume.Config, opts ReplayOptions) (*Report, error) {
	rep := &Report{Ops: len(recs)}
	var wq, rq, tq sim.Quantiles
	var ws, rs, ts sim.Stats
	start := vol.Now()
	for i, rec := range recs {
		switch rec.Op {
		case OpWrite:
			data := workload.UniqueChunk(opts.Seed, rec.Content, cfg.BlockSize, 0.5)
			lat, err := vol.Write(rec.LBA, data)
			if err != nil {
				return nil, fmt.Errorf("trace: op %d: %w", i, err)
			}
			rep.Writes++
			wq.Add(lat.Seconds())
			ws.Add(lat.Seconds())
		case OpRead:
			_, lat, err := vol.Read(rec.LBA)
			if err != nil {
				return nil, fmt.Errorf("trace: op %d: %w", i, err)
			}
			rep.Reads++
			rq.Add(lat.Seconds())
			rs.Add(lat.Seconds())
		case OpTrim:
			lat, err := vol.Trim(rec.LBA)
			if err != nil {
				return nil, fmt.Errorf("trace: op %d: %w", i, err)
			}
			rep.Trims++
			tq.Add(lat.Seconds())
			ts.Add(lat.Seconds())
		default:
			return nil, fmt.Errorf("trace: op %d: unknown op %q", i, rec.Op)
		}
		if opts.CleanEvery > 0 && (i+1)%opts.CleanEvery == 0 {
			n, err := vol.Clean()
			if err != nil {
				return nil, fmt.Errorf("trace: cleaning at op %d: %w", i, err)
			}
			rep.Cleans += n
		}
	}
	rep.Elapsed = vol.Now() - start
	rep.WriteLat = latencyOf(&wq, &ws)
	rep.ReadLat = latencyOf(&rq, &rs)
	rep.TrimLat = latencyOf(&tq, &ts)
	rep.Volume = vol.Stats()
	return rep, nil
}

// String renders a replay report.
func (r *Report) String() string {
	return fmt.Sprintf(
		"ops=%d (w=%d r=%d t=%d) elapsed=%v cleans=%d\n"+
			"  write latency µs: p50=%.0f p90=%.0f p99=%.0f mean=%.0f\n"+
			"  read  latency µs: p50=%.0f p90=%.0f p99=%.0f mean=%.0f\n"+
			"  trim  latency µs: p50=%.0f p90=%.0f p99=%.0f mean=%.0f\n"+
			"  space: logical=%d stored=%d garbage=%d reduction=%.2fx dedup hits=%d",
		r.Ops, r.Writes, r.Reads, r.Trims, r.Elapsed.Round(time.Millisecond), r.Cleans,
		r.WriteLat.P50, r.WriteLat.P90, r.WriteLat.P99, r.WriteLat.Mean,
		r.ReadLat.P50, r.ReadLat.P90, r.ReadLat.P99, r.ReadLat.Mean,
		r.TrimLat.P50, r.TrimLat.P90, r.TrimLat.P99, r.TrimLat.Mean,
		r.Volume.LogicalBytes, r.Volume.StoredBytes, r.Volume.GarbageBytes,
		r.Volume.ReductionRatio(), r.Volume.DedupHits)
}
