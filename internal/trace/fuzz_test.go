package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead: the parser must never panic, and whatever it accepts must
// serialize and re-parse to the same records.
func FuzzRead(f *testing.F) {
	f.Add("W 1 2\nR 1\nT 4\n")
	f.Add("# comment\n\nW 0 0\n")
	f.Add("X garbage")
	f.Fuzz(func(t *testing.T, in string) {
		recs, err := Read(strings.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Write(&buf, recs); err != nil {
			t.Fatalf("accepted records failed to serialize: %v", err)
		}
		again, err := Read(&buf)
		if err != nil || len(again) != len(recs) {
			t.Fatalf("canonical form did not re-parse: %v", err)
		}
		for i := range recs {
			want := recs[i]
			if want.Op != OpWrite {
				want.Content = 0
			}
			if again[i] != want {
				t.Fatalf("record %d drifted: %+v vs %+v", i, again[i], want)
			}
		}
	})
}
