package sim

import (
	"math"
	"sort"
	"time"
)

// Stats accumulates a stream of float64 samples and reports summary
// statistics. The zero value is ready to use.
type Stats struct {
	n        int64
	sum      float64
	sumSq    float64
	min, max float64
}

// Add records one sample.
func (s *Stats) Add(v float64) {
	if s.n == 0 {
		s.min, s.max = v, v
	} else {
		if v < s.min {
			s.min = v
		}
		if v > s.max {
			s.max = v
		}
	}
	s.n++
	s.sum += v
	s.sumSq += v * v
}

// AddDuration records a duration sample in seconds.
func (s *Stats) AddDuration(d time.Duration) { s.Add(d.Seconds()) }

// N returns the sample count.
func (s *Stats) N() int64 { return s.n }

// Sum returns the sum of all samples.
func (s *Stats) Sum() float64 { return s.sum }

// Mean returns the sample mean, or 0 with no samples.
func (s *Stats) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// Min returns the smallest sample, or 0 with no samples.
func (s *Stats) Min() float64 { return s.min }

// Max returns the largest sample, or 0 with no samples.
func (s *Stats) Max() float64 { return s.max }

// StdDev returns the population standard deviation, or 0 with < 2 samples.
func (s *Stats) StdDev() float64 {
	if s.n < 2 {
		return 0
	}
	m := s.Mean()
	v := s.sumSq/float64(s.n) - m*m
	if v < 0 {
		v = 0 // guard tiny negative from float error
	}
	return math.Sqrt(v)
}

// Quantiles accumulates samples and reports exact quantiles. Unlike Stats it
// retains every sample, so use it only for per-batch (not per-byte) metrics.
// The zero value is ready to use.
type Quantiles struct {
	samples []float64
	sorted  bool
}

// Add records one sample.
func (q *Quantiles) Add(v float64) {
	q.samples = append(q.samples, v)
	q.sorted = false
}

// N returns the sample count.
func (q *Quantiles) N() int { return len(q.samples) }

// At returns the p-quantile (p in [0,1]) using nearest-rank, or 0 with no
// samples.
func (q *Quantiles) At(p float64) float64 {
	if len(q.samples) == 0 {
		return 0
	}
	if !q.sorted {
		sort.Float64s(q.samples)
		q.sorted = true
	}
	if p <= 0 {
		return q.samples[0]
	}
	if p >= 1 {
		return q.samples[len(q.samples)-1]
	}
	i := int(math.Ceil(p*float64(len(q.samples)))) - 1
	if i < 0 {
		i = 0
	}
	return q.samples[i]
}
