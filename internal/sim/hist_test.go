package sim

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// TestHistogramZeroValue checks the zero histogram digests to the zero
// summary.
func TestHistogramZeroValue(t *testing.T) {
	var h Histogram
	if h.N() != 0 {
		t.Fatalf("zero histogram has samples")
	}
	if s := h.Summary(); s != (LatencySummary{}) {
		t.Fatalf("zero histogram summary not zero: %+v", s)
	}
	if q := h.Quantile(0.99); q != 0 {
		t.Fatalf("zero histogram quantile = %v, want 0", q)
	}
}

// TestHistogramBasics checks count/min/mean/max are exact and quantiles are
// bounded by the observed range.
func TestHistogramBasics(t *testing.T) {
	var h Histogram
	samples := []time.Duration{
		100 * time.Nanosecond,
		200 * time.Nanosecond,
		400 * time.Nanosecond,
		80 * time.Microsecond,
		-time.Second, // clamps to 0
	}
	for _, d := range samples {
		h.Observe(d)
	}
	s := h.Summary()
	if s.Count != 5 {
		t.Fatalf("Count = %d, want 5", s.Count)
	}
	if s.Min != 0 {
		t.Fatalf("Min = %v, want 0 (negative clamps)", s.Min)
	}
	if s.Max != 80*time.Microsecond {
		t.Fatalf("Max = %v, want 80µs", s.Max)
	}
	wantMean := (100*time.Nanosecond + 200*time.Nanosecond + 400*time.Nanosecond + 80*time.Microsecond) / 5
	if s.Mean != wantMean {
		t.Fatalf("Mean = %v, want %v", s.Mean, wantMean)
	}
	for _, q := range []time.Duration{s.P50, s.P95, s.P99} {
		if q < s.Min || q > s.Max {
			t.Fatalf("quantile %v outside [%v, %v]", q, s.Min, s.Max)
		}
	}
	if s.P50 > s.P95 || s.P95 > s.P99 {
		t.Fatalf("quantiles not monotone: p50=%v p95=%v p99=%v", s.P50, s.P95, s.P99)
	}
}

// TestHistogramOrderIndependent checks that observation order does not
// change the digest — the property that makes histograms safe to compare
// across runs with different wall-clock interleavings.
func TestHistogramOrderIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	samples := make([]time.Duration, 1000)
	for i := range samples {
		samples[i] = time.Duration(rng.Int63n(int64(10 * time.Millisecond)))
	}
	var fwd, rev Histogram
	for _, d := range samples {
		fwd.Observe(d)
	}
	for i := len(samples) - 1; i >= 0; i-- {
		rev.Observe(samples[i])
	}
	if fwd.Summary() != rev.Summary() {
		t.Fatalf("summaries differ by order:\n%+v\n%+v", fwd.Summary(), rev.Summary())
	}
	if fwd.Counts() != rev.Counts() {
		t.Fatalf("bucket counts differ by order")
	}
}

// TestHistogramMerge checks that merging sharded histograms in any order
// reproduces the histogram a single observer would have built — the
// deterministic-merge property the serving front-end relies on.
func TestHistogramMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	samples := make([]time.Duration, 500)
	for i := range samples {
		samples[i] = time.Duration(rng.Int63n(int64(5 * time.Millisecond)))
	}
	var whole Histogram
	shards := make([]Histogram, 4)
	for i, d := range samples {
		whole.Observe(d)
		shards[i%len(shards)].Observe(d)
	}
	var fwd, rev Histogram
	for i := range shards {
		fwd.Merge(&shards[i])
		rev.Merge(&shards[len(shards)-1-i])
	}
	if fwd != whole || rev != whole {
		t.Fatalf("merged histograms diverge from the single observer:\nfwd  %+v\nrev  %+v\nwant %+v",
			fwd.Summary(), rev.Summary(), whole.Summary())
	}
	// Merging the empty histogram is the identity in both directions.
	var empty Histogram
	fwd.Merge(&empty)
	if fwd != whole {
		t.Fatal("merging an empty histogram changed the digest")
	}
	empty.Merge(&whole)
	if empty != whole {
		t.Fatal("merging into an empty histogram did not copy it")
	}
}

// TestHistogramSingleSample checks every quantile of a one-sample histogram
// is that sample.
func TestHistogramSingleSample(t *testing.T) {
	var h Histogram
	h.Observe(42 * time.Microsecond)
	s := h.Summary()
	want := 42 * time.Microsecond
	if s.Min != want || s.Max != want || s.Mean != want || s.P50 != want || s.P99 != want {
		t.Fatalf("single-sample summary wrong: %+v", s)
	}
	// Out-of-range p clamps to the extremes rather than panicking.
	if q := h.Quantile(-0.5); q != want {
		t.Fatalf("Quantile(-0.5) = %v, want %v", q, want)
	}
	if q := h.Quantile(0); q != want {
		t.Fatalf("Quantile(0) = %v, want %v", q, want)
	}
	if q := h.Quantile(1); q != want {
		t.Fatalf("Quantile(1) = %v, want %v", q, want)
	}
	if q := h.Quantile(2); q != want {
		t.Fatalf("Quantile(2) = %v, want %v", q, want)
	}
}

// TestHistogramExtremeDurations checks the top bucket holds the largest
// representable duration and the digest stays exact at the extremes.
func TestHistogramExtremeDurations(t *testing.T) {
	var h Histogram
	huge := time.Duration(math.MaxInt64)
	h.Observe(0)
	h.Observe(huge)
	s := h.Summary()
	if s.Min != 0 || s.Max != huge || s.Count != 2 {
		t.Fatalf("extreme summary wrong: %+v", s)
	}
	// P99 ranks to the top sample; the bucket upper bound saturates at
	// MaxInt64 and then clamps to the observed max.
	if s.P99 != huge {
		t.Fatalf("P99 = %v, want MaxInt64", s.P99)
	}
	c := h.Counts()
	if c[0] != 1 {
		t.Fatalf("zero sample not in bucket 0: %v", c[0])
	}
	if c[histBuckets-1] != 1 {
		t.Fatalf("MaxInt64 sample not in the top bucket")
	}
}

// TestHistogramMergeDisjointShuffled merges shards whose sample ranges do
// not overlap, in several shuffled orders, and checks min/max/digest all
// land identically — the general form of the order-independence the
// report merger relies on.
func TestHistogramMergeDisjointShuffled(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	shards := make([]Histogram, 5)
	var whole Histogram
	for s := range shards {
		base := time.Duration(s) * time.Millisecond
		for i := 0; i < 100; i++ {
			d := base + time.Duration(rng.Int63n(int64(time.Millisecond)))
			shards[s].Observe(d)
			whole.Observe(d)
		}
	}
	for trial := 0; trial < 10; trial++ {
		order := rng.Perm(len(shards))
		var m Histogram
		for _, s := range order {
			m.Merge(&shards[s])
		}
		if m != whole {
			t.Fatalf("trial %d (order %v): merged digest diverges:\ngot  %+v\nwant %+v",
				trial, order, m.Summary(), whole.Summary())
		}
	}
}
