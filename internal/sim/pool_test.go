package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestPoolSingleServerSerializes(t *testing.T) {
	p := NewPool("cpu", 1)
	s1, e1 := p.Acquire(0, 10)
	if s1 != 0 || e1 != 10 {
		t.Fatalf("first job: got start=%v end=%v, want 0,10", s1, e1)
	}
	// Arrives while busy: must queue behind the first job.
	s2, e2 := p.Acquire(5, 10)
	if s2 != 10 || e2 != 20 {
		t.Fatalf("second job: got start=%v end=%v, want 10,20", s2, e2)
	}
	// Arrives after idle gap: starts at arrival.
	s3, e3 := p.Acquire(100, 1)
	if s3 != 100 || e3 != 101 {
		t.Fatalf("third job: got start=%v end=%v, want 100,101", s3, e3)
	}
}

func TestPoolParallelServers(t *testing.T) {
	p := NewPool("cpu", 2)
	_, e1 := p.Acquire(0, 10)
	_, e2 := p.Acquire(0, 10)
	if e1 != 10 || e2 != 10 {
		t.Fatalf("two servers should run two jobs concurrently: got %v, %v", e1, e2)
	}
	s3, _ := p.Acquire(0, 10)
	if s3 != 10 {
		t.Fatalf("third job on 2 servers should wait: got start=%v, want 10", s3)
	}
}

func TestPoolNegativeServiceClamped(t *testing.T) {
	p := NewPool("x", 1)
	s, e := p.Acquire(5, -3)
	if s != 5 || e != 5 {
		t.Fatalf("negative service: got %v,%v want 5,5", s, e)
	}
}

func TestPoolAcquireAll(t *testing.T) {
	p := NewPool("cpu", 3)
	p.Acquire(0, 10)
	p.Acquire(0, 20)
	s, e := p.AcquireAll(0, 5)
	if s != 20 || e != 25 {
		t.Fatalf("AcquireAll: got start=%v end=%v, want 20,25", s, e)
	}
	// Every server busy until 25 now.
	s2, _ := p.Acquire(0, 1)
	if s2 != 25 {
		t.Fatalf("job after AcquireAll: got start=%v, want 25", s2)
	}
}

func TestPoolSaturatedAndBacklog(t *testing.T) {
	p := NewPool("cpu", 2)
	if p.Saturated(0) {
		t.Fatal("fresh pool should not be saturated")
	}
	p.Acquire(0, 100)
	if p.Saturated(0) {
		t.Fatal("one of two servers busy: not saturated")
	}
	p.Acquire(0, 50)
	if !p.Saturated(0) {
		t.Fatal("both servers busy: saturated")
	}
	if got := p.Backlog(0); got != 50 {
		t.Fatalf("backlog: got %v, want 50", got)
	}
	if got := p.Backlog(60); got != 0 {
		t.Fatalf("backlog after a server frees: got %v, want 0", got)
	}
}

func TestPoolUtilization(t *testing.T) {
	p := NewPool("cpu", 2)
	p.Acquire(0, time.Second)
	p.Acquire(0, time.Second)
	if got := p.Utilization(2 * time.Second); got != 0.5 {
		t.Fatalf("utilization: got %g, want 0.5", got)
	}
}

func TestPoolReset(t *testing.T) {
	p := NewPool("cpu", 2)
	p.Acquire(0, 10)
	p.Reset()
	if p.Jobs() != 0 || p.BusyTime() != 0 || p.Horizon() != 0 || p.NextFree() != 0 {
		t.Fatal("reset should clear all state")
	}
}

func TestPoolPanicsOnZeroServers(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewPool(0) should panic")
		}
	}()
	NewPool("bad", 0)
}

// Property: with k servers and jobs all arriving at time 0 with equal service
// time d, job i starts at floor(i/k)*d — round-robin waves.
func TestPoolWaveProperty(t *testing.T) {
	f := func(kRaw uint8, nRaw uint8) bool {
		k := int(kRaw%8) + 1
		n := int(nRaw%64) + 1
		d := 7 * time.Microsecond
		p := NewPool("cpu", k)
		for i := 0; i < n; i++ {
			start, _ := p.Acquire(0, d)
			want := time.Duration(i/k) * d
			if start != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: completion times never precede arrival + service, and total busy
// time equals the sum of service times.
func TestPoolConservationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	p := NewPool("cpu", 4)
	var at time.Duration
	var total time.Duration
	for i := 0; i < 1000; i++ {
		at += time.Duration(rng.Intn(100)) * time.Nanosecond
		d := time.Duration(rng.Intn(1000)) * time.Nanosecond
		total += d
		start, end := p.Acquire(at, d)
		if start < at {
			t.Fatalf("job started before arrival: start=%v arrival=%v", start, at)
		}
		if end != start+d {
			t.Fatalf("end != start+service: %v != %v+%v", end, start, d)
		}
	}
	if p.BusyTime() != total {
		t.Fatalf("busy time %v != sum of service %v", p.BusyTime(), total)
	}
	if p.Jobs() != 1000 {
		t.Fatalf("jobs: got %d, want 1000", p.Jobs())
	}
}

// Property: a 1-server pool never overlaps two jobs in time.
func TestPoolNoOverlapProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := NewPool("q", 1)
	var prevEnd time.Duration
	var at time.Duration
	for i := 0; i < 500; i++ {
		at += time.Duration(rng.Intn(50))
		d := time.Duration(rng.Intn(50))
		start, end := p.Acquire(at, d)
		if start < prevEnd {
			t.Fatalf("overlap: start %v < previous end %v", start, prevEnd)
		}
		prevEnd = end
	}
}
