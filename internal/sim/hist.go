package sim

import (
	"math"
	"math/bits"
	"time"
)

// histBuckets is the number of log-spaced latency buckets. Bucket b holds
// durations whose nanosecond count has bit length b (bucket 0 holds exactly
// zero), so the buckets cover [0, ~292 years] with power-of-two resolution.
const histBuckets = 64

// Histogram is a log-bucketed latency histogram on the virtual clock. It is
// integer-only — bucket counts plus exact min/max/sum — so two runs that
// observe the same durations in any order produce bit-identical histograms,
// which is what lets the observability layer promise identical contents for
// any host parallelism. The zero value is ready to use. Not safe for
// concurrent use; all recording happens on the sequential commit path.
type Histogram struct {
	counts   [histBuckets]int64
	n        int64
	sum      time.Duration
	min, max time.Duration
}

// Observe records one latency sample. Negative durations clamp to zero.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	if h.n == 0 {
		h.min, h.max = d, d
	} else {
		if d < h.min {
			h.min = d
		}
		if d > h.max {
			h.max = d
		}
	}
	h.n++
	h.sum += d
	h.counts[bits.Len64(uint64(d))]++
}

// N returns the sample count.
func (h *Histogram) N() int64 { return h.n }

// Merge folds o's samples into h: bucket counts, sample counts, and sums
// add; min/max combine. Because the buckets are order-independent, merging
// per-shard histograms in any order yields bit-identical contents — the
// property the sharded serving front-end relies on for deterministic
// report merges.
func (h *Histogram) Merge(o *Histogram) {
	if o.n == 0 {
		return
	}
	if h.n == 0 {
		*h = *o
		return
	}
	if o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.n += o.n
	h.sum += o.sum
	for b := range h.counts {
		h.counts[b] += o.counts[b]
	}
}

// Counts returns a copy of the bucket counts (for tests and exports).
func (h *Histogram) Counts() [histBuckets]int64 { return h.counts }

// bucketUpper returns the largest duration bucket b can hold.
func bucketUpper(b int) time.Duration {
	if b <= 0 {
		return 0
	}
	if b >= 63 {
		return time.Duration(math.MaxInt64)
	}
	return time.Duration(int64(1)<<b - 1)
}

// Quantile returns the p-quantile (p in [0,1]) by nearest rank over the
// buckets: the upper bound of the bucket holding the ranked sample, clamped
// to the exact observed [min, max]. With no samples it returns 0.
func (h *Histogram) Quantile(p float64) time.Duration {
	if h.n == 0 {
		return 0
	}
	if p >= 1 {
		return h.max
	}
	rank := int64(math.Ceil(p * float64(h.n)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for b := 0; b < histBuckets; b++ {
		cum += h.counts[b]
		if cum >= rank {
			ub := bucketUpper(b)
			if ub > h.max {
				ub = h.max
			}
			if ub < h.min {
				ub = h.min
			}
			return ub
		}
	}
	return h.max
}

// LatencySummary is the exportable digest of a Histogram: exact count, min,
// mean, and max plus log-bucket quantiles. All fields are integers
// (durations in nanoseconds under encoding/json), so the JSON encoding is
// stable and two deterministic runs compare bit-for-bit.
type LatencySummary struct {
	Count int64         `json:"count"`
	Min   time.Duration `json:"min_ns"`
	Mean  time.Duration `json:"mean_ns"`
	Max   time.Duration `json:"max_ns"`
	P50   time.Duration `json:"p50_ns"`
	P95   time.Duration `json:"p95_ns"`
	P99   time.Duration `json:"p99_ns"`
}

// Summary digests the histogram. The zero histogram yields the zero summary.
func (h *Histogram) Summary() LatencySummary {
	if h.n == 0 {
		return LatencySummary{}
	}
	return LatencySummary{
		Count: h.n,
		Min:   h.min,
		Mean:  h.sum / time.Duration(h.n),
		Max:   h.max,
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
}
