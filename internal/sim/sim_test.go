package sim

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestSeconds(t *testing.T) {
	if got := Seconds(1.5); got != 1500*time.Millisecond {
		t.Fatalf("Seconds(1.5) = %v", got)
	}
	if got := Seconds(0); got != 0 {
		t.Fatalf("Seconds(0) = %v", got)
	}
}

func TestCycles(t *testing.T) {
	// 3500 cycles at 3.5 GHz = 1 µs.
	if got := Cycles(3500, 3.5e9); got != time.Microsecond {
		t.Fatalf("Cycles = %v, want 1µs", got)
	}
}

func TestCyclesPanicsOnBadFrequency(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Cycles with hz=0 should panic")
		}
	}()
	Cycles(100, 0)
}

func TestThroughput(t *testing.T) {
	if got := Throughput(1000, time.Second); got != 1000 {
		t.Fatalf("Throughput = %g", got)
	}
	if got := Throughput(1000, 0); got != 0 {
		t.Fatalf("Throughput over zero time = %g, want 0", got)
	}
}

func TestFormatRate(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{2.5e9, "2.50 GB/s"},
		{320e6, "320.00 MB/s"},
		{4.2e3, "4.20 KB/s"},
		{12, "12.00 B/s"},
	}
	for _, c := range cases {
		if got := FormatRate(c.in); got != c.want {
			t.Errorf("FormatRate(%g) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestMinMaxTime(t *testing.T) {
	if MaxTime(1, 2) != 2 || MaxTime(3, 2) != 3 {
		t.Fatal("MaxTime broken")
	}
	if MinTime(1, 2) != 1 || MinTime(3, 2) != 2 {
		t.Fatal("MinTime broken")
	}
}

func TestStatsBasics(t *testing.T) {
	var s Stats
	for _, v := range []float64{1, 2, 3, 4} {
		s.Add(v)
	}
	if s.N() != 4 || s.Sum() != 10 || s.Mean() != 2.5 || s.Min() != 1 || s.Max() != 4 {
		t.Fatalf("stats: n=%d sum=%g mean=%g min=%g max=%g", s.N(), s.Sum(), s.Mean(), s.Min(), s.Max())
	}
	want := math.Sqrt(1.25)
	if d := math.Abs(s.StdDev() - want); d > 1e-12 {
		t.Fatalf("stddev: got %g, want %g", s.StdDev(), want)
	}
}

func TestStatsEmpty(t *testing.T) {
	var s Stats
	if s.Mean() != 0 || s.StdDev() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatal("empty stats should report zeros")
	}
}

func TestQuantiles(t *testing.T) {
	var q Quantiles
	for i := 1; i <= 100; i++ {
		q.Add(float64(i))
	}
	if got := q.At(0.5); got != 50 {
		t.Fatalf("p50: got %g, want 50", got)
	}
	if got := q.At(0.99); got != 99 {
		t.Fatalf("p99: got %g, want 99", got)
	}
	if got := q.At(0); got != 1 {
		t.Fatalf("p0: got %g, want 1", got)
	}
	if got := q.At(1); got != 100 {
		t.Fatalf("p1: got %g, want 100", got)
	}
}

func TestQuantilesEmpty(t *testing.T) {
	var q Quantiles
	if q.At(0.5) != 0 {
		t.Fatal("empty quantiles should report 0")
	}
}

// Property: mean is always within [min, max].
func TestStatsMeanBoundedProperty(t *testing.T) {
	f := func(vs []float64) bool {
		var s Stats
		ok := true
		for _, v := range vs {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			// Keep magnitudes small enough that the running sum can't
			// overflow; the property is about ordering, not range.
			v = math.Mod(v, 1e9)
			s.Add(v)
			ok = ok && s.Mean() >= s.Min()-1e-9 && s.Mean() <= s.Max()+1e-9
		}
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLinkTransfer(t *testing.T) {
	// 10 µs setup, 1 GB/s.
	l := NewLink("pcie", 10*time.Microsecond, 1e9)
	_, e1 := l.Transfer(0, 1_000_000) // 1 MB -> 1 ms + 10 µs
	want := time.Millisecond + 10*time.Microsecond
	if e1 != want {
		t.Fatalf("transfer end: got %v, want %v", e1, want)
	}
	// Second transfer queued behind the first.
	s2, _ := l.Transfer(0, 1)
	if s2 != e1 {
		t.Fatalf("second transfer start: got %v, want %v", s2, e1)
	}
	if l.Bytes() != 1_000_001 || l.Transfers() != 2 {
		t.Fatalf("accounting: bytes=%d transfers=%d", l.Bytes(), l.Transfers())
	}
}

func TestLinkBacklogAndReset(t *testing.T) {
	l := NewLink("pcie", 0, 1e6)
	l.Transfer(0, 1000) // busy until 1ms
	if got := l.Backlog(0); got != time.Millisecond {
		t.Fatalf("backlog: got %v", got)
	}
	if got := l.Backlog(2 * time.Millisecond); got != 0 {
		t.Fatalf("backlog after free: got %v", got)
	}
	l.Reset()
	if l.Bytes() != 0 || l.Backlog(0) != 0 {
		t.Fatal("reset should clear link state")
	}
}

func TestLinkPanicsOnBadBandwidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewLink with zero bandwidth should panic")
		}
	}()
	NewLink("bad", 0, 0)
}

func TestLinkNegativeBytesClamped(t *testing.T) {
	l := NewLink("pcie", time.Microsecond, 1e9)
	if got := l.TransferTime(-5); got != time.Microsecond {
		t.Fatalf("negative bytes: got %v, want setup only", got)
	}
}

func TestAccessorsAndHorizon(t *testing.T) {
	p := NewPool("mypool", 3)
	if p.Name() != "mypool" || p.Servers() != 3 {
		t.Fatal("pool accessors broken")
	}
	p.Acquire(10, 5) // arrival after free: commits a 10-unit gap
	if p.GapTime() != 10 {
		t.Fatalf("gap time: got %v, want 10", p.GapTime())
	}
	l := NewLink("mylink", time.Microsecond, 1e9)
	if l.Name() != "mylink" || l.Bandwidth() != 1e9 {
		t.Fatal("link accessors broken")
	}
	_, end := l.Transfer(0, 100)
	if l.Horizon() != end {
		t.Fatalf("link horizon: got %v, want %v", l.Horizon(), end)
	}
	if u := l.Utilization(end); u <= 0 || u > 1 {
		t.Fatalf("link utilization: %g", u)
	}
	if l.Utilization(0) != 0 {
		t.Fatal("utilization over empty window")
	}
}

func TestStatsAddDuration(t *testing.T) {
	var s Stats
	s.AddDuration(2 * time.Second)
	if s.Mean() != 2 {
		t.Fatalf("AddDuration: mean %g", s.Mean())
	}
	var q Quantiles
	q.Add(1)
	if q.N() != 1 {
		t.Fatalf("quantiles N: %d", q.N())
	}
}
