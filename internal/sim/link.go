package sim

import (
	"fmt"
	"time"
)

// Link is a serialized bandwidth resource: a PCIe DMA engine or a host
// interface. Each transfer pays a fixed setup latency plus bytes/bandwidth,
// and transfers are serviced one at a time in arrival order.
type Link struct {
	name        string
	setup       time.Duration // per-transfer setup latency (DMA programming etc.)
	bytesPerSec float64
	free        time.Duration
	busy        time.Duration
	transfers   int64
	bytes       int64
}

// NewLink returns a Link with the given per-transfer setup latency and
// bandwidth in bytes per second. It panics on a non-positive bandwidth.
func NewLink(name string, setup time.Duration, bytesPerSec float64) *Link {
	if bytesPerSec <= 0 {
		panic(fmt.Sprintf("sim: link %q needs positive bandwidth, got %g", name, bytesPerSec))
	}
	return &Link{name: name, setup: setup, bytesPerSec: bytesPerSec}
}

// Name returns the label the link was created with.
func (l *Link) Name() string { return l.name }

// Bandwidth returns the link bandwidth in bytes per second.
func (l *Link) Bandwidth() float64 { return l.bytesPerSec }

// TransferTime returns the service time for n bytes, without queueing.
func (l *Link) TransferTime(n int) time.Duration {
	if n < 0 {
		n = 0
	}
	return l.setup + Seconds(float64(n)/l.bytesPerSec)
}

// Transfer schedules an n-byte transfer arriving at virtual time at and
// returns its start and completion times.
func (l *Link) Transfer(at time.Duration, n int) (start, end time.Duration) {
	d := l.TransferTime(n)
	start = MaxTime(at, l.free)
	end = start + d
	l.free = end
	l.busy += d
	l.transfers++
	l.bytes += int64(n)
	return start, end
}

// Backlog reports how long a transfer arriving at virtual time at would wait.
func (l *Link) Backlog(at time.Duration) time.Duration {
	if l.free <= at {
		return 0
	}
	return l.free - at
}

// Horizon reports the completion time of the last scheduled transfer.
func (l *Link) Horizon() time.Duration { return l.free }

// Bytes reports the total bytes transferred so far.
func (l *Link) Bytes() int64 { return l.bytes }

// Transfers reports the number of transfers scheduled so far.
func (l *Link) Transfers() int64 { return l.transfers }

// Utilization reports the fraction of the window [0, until] the link was busy.
func (l *Link) Utilization(until time.Duration) float64 {
	if until <= 0 {
		return 0
	}
	return l.busy.Seconds() / until.Seconds()
}

// Reset clears the link's timeline and statistics.
func (l *Link) Reset() {
	l.free, l.busy, l.transfers, l.bytes = 0, 0, 0, 0
}
