package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Pool is a k-server resource on the virtual clock: a CPU with k hardware
// threads, a GPU command queue (k=1), or an SSD channel set. Jobs are placed
// on the earliest-free server in arrival order. Pool is not safe for
// concurrent use; the simulation driver is single-threaded by design so runs
// are exactly reproducible.
type Pool struct {
	name    string
	free    freeHeap // next-free time per server
	busy    time.Duration
	gap     time.Duration // arrival-after-free idle committed by Acquire
	jobs    int64
	horizon time.Duration // latest completion time scheduled so far
	last    int           // server that received the most recent Acquire
}

// NewPool returns a Pool with k servers, all free at virtual time 0.
// It panics if k < 1.
func NewPool(name string, k int) *Pool {
	if k < 1 {
		panic(fmt.Sprintf("sim: pool %q needs at least one server, got %d", name, k))
	}
	p := &Pool{name: name, free: make(freeHeap, k)}
	for i := range p.free {
		p.free[i].id = i
	}
	heap.Init(&p.free)
	return p
}

// Name returns the label the pool was created with.
func (p *Pool) Name() string { return p.name }

// Servers returns the number of servers in the pool.
func (p *Pool) Servers() int { return len(p.free) }

// Acquire schedules a job that arrives at virtual time at and needs service
// time d. It returns the job's start and completion times. A zero or
// negative d occupies the server for no time but still respects queueing
// (start may be later than at).
func (p *Pool) Acquire(at, d time.Duration) (start, end time.Duration) {
	if d < 0 {
		d = 0
	}
	start = MaxTime(at, p.free[0].free)
	if at > p.free[0].free {
		p.gap += at - p.free[0].free
	}
	end = start + d
	p.last = p.free[0].id
	p.free[0].free = end
	heap.Fix(&p.free, 0)
	p.busy += d
	p.jobs++
	if end > p.horizon {
		p.horizon = end
	}
	return start, end
}

// AcquireAll schedules a job that needs every server simultaneously (for
// example a barrier-style flush). It starts when the last server frees up.
func (p *Pool) AcquireAll(at, d time.Duration) (start, end time.Duration) {
	if d < 0 {
		d = 0
	}
	start = at
	for _, f := range p.free {
		start = MaxTime(start, f.free)
	}
	end = start + d
	for i := range p.free {
		p.free[i].free = end
	}
	heap.Init(&p.free)
	p.busy += d * time.Duration(len(p.free))
	p.jobs++
	if end > p.horizon {
		p.horizon = end
	}
	return start, end
}

// NextFree reports when the earliest server becomes free.
func (p *Pool) NextFree() time.Duration { return p.free[0].free }

// LastServer reports which server (0-based, stable across the pool's life)
// received the most recent Acquire. The observability layer uses it to place
// each committed job on the timeline lane of the server that ran it.
func (p *Pool) LastServer() int { return p.last }

// Backlog reports how far behind the pool is at virtual time at: zero when a
// server is idle, otherwise the wait a new arrival would experience.
func (p *Pool) Backlog(at time.Duration) time.Duration {
	if p.free[0].free <= at {
		return 0
	}
	return p.free[0].free - at
}

// Saturated reports whether every server is busy past virtual time at. The
// integrated pipeline uses this as the paper's "CPU utilization is full"
// signal when deciding whether to offload indexing to the GPU.
func (p *Pool) Saturated(at time.Duration) bool {
	return p.free[0].free > at
}

// Horizon reports the latest completion time scheduled so far.
func (p *Pool) Horizon() time.Duration { return p.horizon }

// GapTime reports idle time committed because jobs arrived after the
// earliest server freed (dependency bubbles).
func (p *Pool) GapTime() time.Duration { return p.gap }

// BusyTime reports the total server-busy virtual time accumulated so far.
func (p *Pool) BusyTime() time.Duration { return p.busy }

// Jobs reports how many jobs have been scheduled.
func (p *Pool) Jobs() int64 { return p.jobs }

// Utilization reports mean server utilization in [0,1] over the window from
// time 0 to the given end time (typically the pipeline completion time).
func (p *Pool) Utilization(until time.Duration) float64 {
	if until <= 0 {
		return 0
	}
	return p.busy.Seconds() / (until.Seconds() * float64(len(p.free)))
}

// Reset returns every server to free-at-0 and clears statistics.
func (p *Pool) Reset() {
	for i := range p.free {
		p.free[i].free = 0
	}
	heap.Init(&p.free)
	p.busy, p.gap, p.jobs, p.horizon, p.last = 0, 0, 0, 0, 0
}

// serverSlot is one server's next-free time plus its stable identity (used
// for trace lanes). Ties break by id so server assignment is deterministic.
type serverSlot struct {
	free time.Duration
	id   int
}

// freeHeap is a min-heap of per-server next-free times.
type freeHeap []serverSlot

func (h freeHeap) Len() int { return len(h) }
func (h freeHeap) Less(i, j int) bool {
	if h[i].free != h[j].free {
		return h[i].free < h[j].free
	}
	return h[i].id < h[j].id
}
func (h freeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *freeHeap) Push(x interface{}) { *h = append(*h, x.(serverSlot)) }
func (h *freeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
