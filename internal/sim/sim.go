// Package sim provides the virtual-time substrate used by every simulated
// resource in this repository (CPU pools, the GPU, the PCIe link, SSD
// channels).
//
// The model is a deterministic "max-plus" resource-timeline simulation: a
// resource remembers when each of its servers becomes free, and a job that
// arrives at virtual time t and needs service time d is placed on the
// earliest-free server, starting at max(t, serverFree) and completing at
// start+d. Feed-forward pipelines (like the inline data reduction pipeline)
// can then be evaluated by threading completion times through their stages
// without a global event queue, which keeps the simulation fast and exactly
// reproducible.
//
// Virtual time is represented as time.Duration since the start of the
// simulation. Service times are usually derived from cycle-cost models (see
// internal/cpusim and internal/gpu); Cycles converts a cycle count at a clock
// frequency into a Duration.
package sim

import (
	"fmt"
	"time"
)

// Seconds converts a floating-point number of seconds into a virtual-time
// Duration, rounding to the nearest nanosecond.
func Seconds(s float64) time.Duration {
	return time.Duration(s*1e9 + 0.5)
}

// Cycles converts a cycle count at clock frequency hz into a Duration.
// Fractional nanoseconds are rounded to nearest; callers should batch tiny
// per-byte costs into per-chunk costs before converting so rounding error is
// negligible.
func Cycles(cycles float64, hz float64) time.Duration {
	if hz <= 0 {
		panic("sim: non-positive clock frequency")
	}
	return Seconds(cycles / hz)
}

// Throughput reports units per second for n units completed in elapsed
// virtual time. It returns 0 for a non-positive elapsed time.
func Throughput(n float64, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return n / elapsed.Seconds()
}

// FormatRate renders a bytes-per-second rate in human units (B/s, KB/s,
// MB/s, GB/s) using decimal multiples, matching how the paper reports
// throughput.
func FormatRate(bytesPerSec float64) string {
	switch {
	case bytesPerSec >= 1e9:
		return fmt.Sprintf("%.2f GB/s", bytesPerSec/1e9)
	case bytesPerSec >= 1e6:
		return fmt.Sprintf("%.2f MB/s", bytesPerSec/1e6)
	case bytesPerSec >= 1e3:
		return fmt.Sprintf("%.2f KB/s", bytesPerSec/1e3)
	default:
		return fmt.Sprintf("%.2f B/s", bytesPerSec)
	}
}

// MaxTime returns the later of two virtual times.
func MaxTime(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

// MinTime returns the earlier of two virtual times.
func MinTime(a, b time.Duration) time.Duration {
	if a < b {
		return a
	}
	return b
}
