package experiments

import (
	"encoding/binary"
	"fmt"
	"time"

	"inlinered/internal/cpusim"
	"inlinered/internal/dedup"
	"inlinered/internal/gpu"
)

// E1PrelimIndexing reproduces the preliminary experiment of §3.1(3): with
// the same number of hash-table entries on both sides, CPU indexing is
// 4.16–5.45× faster than GPU indexing, and the GPU's execution time has a
// floor set by the kernel launch overhead. The experiment preloads both
// indexes with cfg.IndexEntries fingerprints and measures the virtual time
// to index batches of varying size, half hits and half misses.
func E1PrelimIndexing(cfg Config) (*Result, error) {
	entries := cfg.IndexEntries
	if entries < 1024 {
		entries = 1024
	}

	// CPU side: the bin index with everything flushed into the bin trees.
	idxCfg := dedup.DefaultIndexConfig()
	idx, err := dedup.NewBinIndex(idxCfg)
	if err != nil {
		return nil, err
	}
	fpOf := func(i int) dedup.Fingerprint {
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], uint64(i)*0x9E3779B97F4A7C15+uint64(cfg.Seed))
		return dedup.Sum(b[:])
	}
	for i := 0; i < entries; i++ {
		idx.Insert(fpOf(i), dedup.Entry{Loc: int64(i)})
	}
	idx.FlushAll()

	// GPU side: the same entries in the device-resident linear bins.
	dev := gpu.New(gpu.DefaultConfig())
	gbinBits := 6
	capPerBin := entries // worst-case skew headroom
	gbins, err := dedup.NewGPUBins(dev, gbinBits, capPerBin, 0, int(cfg.Seed))
	if err != nil {
		return nil, err
	}
	for i := 0; i < entries; i++ {
		fp := fpOf(i)
		if _, err := gbins.Update(0, fp.Bin(gbinBits), [][]byte{fp.Suffix(0)}, []dedup.Entry{{Loc: int64(i)}}); err != nil {
			return nil, err
		}
	}

	cpuCfg := cpusim.DefaultConfig()
	table := &Table{
		ID:         "E1",
		Title:      "CPU vs GPU indexing execution time (preliminary experiment, §3.1(3))",
		PaperClaim: "CPU is 4.16–5.45x faster; GPU time has a kernel-launch floor",
		Columns:    []string{"batch", "cpu-time", "gpu-time", "gpu/cpu", "gpu-floor"},
	}
	metrics := map[string]float64{}
	var minRatio, maxRatio float64
	batches := []int{256, 512, 1024, 2048, 4096}
	for _, batch := range batches {
		// Probe set: half resident entries (hits), half unknown (misses).
		fps := make([]dedup.Fingerprint, batch)
		for i := range fps {
			if i%2 == 0 {
				fps[i] = fpOf(i * (entries / batch))
			} else {
				fps[i] = fpOf(entries + i)
			}
		}

		// CPU: probes spread over the hardware threads.
		cpu := cpusim.New(cpuCfg)
		for _, fp := range fps {
			p := idx.Lookup(fp)
			cpu.Run(0, cpuCfg.Cost.ProbeCycles(p.BufferScanned, p.TreeSteps))
		}
		cpuTime := cpu.Pool.Horizon()

		// GPU: one batch round trip (transfer, kernel, results back).
		dev.Reset()
		gpuTime, _, _, _ := gbins.BatchIndex(0, fps)

		ratio := gpuTime.Seconds() / cpuTime.Seconds()
		if minRatio == 0 || ratio < minRatio {
			minRatio = ratio
		}
		if ratio > maxRatio {
			maxRatio = ratio
		}
		table.Rows = append(table.Rows, []string{
			cell("%d", batch),
			cell("%v", cpuTime.Round(time.Microsecond)),
			cell("%v", gpuTime.Round(time.Microsecond)),
			cell("%.2fx", ratio),
			cell("%v", gpu.DefaultConfig().LaunchOverhead),
		})
		metrics[fmt.Sprintf("ratio_batch_%d", batch)] = ratio
	}
	metrics["min_ratio"] = minRatio
	metrics["max_ratio"] = maxRatio
	table.Notes = append(table.Notes,
		cell("%d entries resident on both sides; batches are 50%% hits / 50%% misses", entries),
		"gpu time includes PCIe transfers and the fixed kernel launch overhead")
	return &Result{Table: table, Metrics: metrics}, nil
}
