package experiments

import (
	"math/rand"

	"inlinered/internal/volume"
	"inlinered/internal/workload"
)

// E12VolumeLifecycle is an extension experiment: the paper evaluates the
// reduction pipeline as a stream processor; a primary storage system wraps
// it in block semantics. This experiment drives the reference-counted,
// log-structured volume through the full lifecycle — fill, overwrite churn,
// segment cleaning, read-back — and reports per-phase virtual latencies and
// space accounting, including what the churn costs the SSD.
func E12VolumeLifecycle(cfg Config) (*Result, error) {
	vcfg := volume.DefaultConfig()
	vcfg.SegmentBytes = 1 << 20
	vol, err := volume.New(vcfg)
	if err != nil {
		return nil, err
	}
	blocks := cfg.StreamBytes / int64(vcfg.BlockSize) / 16
	if blocks > 1<<15 {
		blocks = 1 << 15
	}
	if blocks < 1024 {
		blocks = 1024
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	content := func(i int) []byte {
		return workload.UniqueChunk(cfg.Seed, int32(i), vcfg.BlockSize, 0.5)
	}

	table := &Table{
		ID:         "E12",
		Title:      "Extension: block-device lifecycle on the reduction pipeline",
		PaperClaim: "(extension) inline reduction under primary-storage block semantics",
		Columns:    []string{"phase", "ops", "mean latency", "live MiB", "garbage MiB", "reduction"},
	}
	metrics := map[string]float64{}
	mib := func(b int64) string { return cell("%.1f", float64(b)/(1<<20)) }

	record := func(phase string, ops int64, meanUS float64) {
		st := vol.Stats()
		table.Rows = append(table.Rows, []string{
			phase, cell("%d", ops), cell("%.0f µs", meanUS),
			mib(st.StoredBytes), mib(st.GarbageBytes), cell("%.2fx", st.ReductionRatio()),
		})
	}

	// Phase 1: fill with 50% cross-block duplication.
	start := vol.Now()
	for lba := int64(0); lba < blocks; lba++ {
		if _, err := vol.Write(lba, content(int(lba)%int(blocks/2))); err != nil {
			return nil, err
		}
	}
	fillLat := float64((vol.Now() - start).Microseconds()) / float64(blocks)
	record("fill", blocks, fillLat)
	metrics["fill_mean_us"] = fillLat

	// Phase 2: overwrite churn (2 full passes, random order, fresh data).
	start = vol.Now()
	churn := 2 * blocks
	for i := int64(0); i < churn; i++ {
		lba := rng.Int63n(blocks)
		if _, err := vol.Write(lba, content(int(blocks)+int(i))); err != nil {
			return nil, err
		}
	}
	churnLat := float64((vol.Now() - start).Microseconds()) / float64(churn)
	record("overwrite churn", churn, churnLat)
	metrics["garbage_after_churn_mib"] = float64(vol.Stats().GarbageBytes) / (1 << 20)

	// Phase 3: segment cleaning.
	start = vol.Now()
	cleaned, err := vol.Clean()
	if err != nil {
		return nil, err
	}
	record("clean", int64(cleaned), float64((vol.Now() - start).Microseconds()))
	metrics["segments_cleaned"] = float64(cleaned)
	metrics["garbage_after_clean_mib"] = float64(vol.Stats().GarbageBytes) / (1 << 20)

	// Phase 4: read-back sweep.
	start = vol.Now()
	reads := int64(0)
	for lba := int64(0); lba < blocks; lba += 4 {
		if _, _, err := vol.Read(lba); err != nil {
			return nil, err
		}
		reads++
	}
	readLat := float64((vol.Now() - start).Microseconds()) / float64(reads)
	record("read-back", reads, readLat)
	metrics["read_mean_us"] = readLat

	d := vol.Drive().Stats()
	table.Notes = append(table.Notes,
		cell("SSD: %d host pages, %d NAND pages (WA %.2f), %d erases",
			d.HostWritePages, d.NANDWritePages, d.WriteAmplification(), d.Erases),
		cell("%d logical blocks; duplicates resolved by reference counting; log segments %d KiB",
			blocks, vcfg.SegmentBytes>>10))
	metrics["ssd_wa"] = d.WriteAmplification()
	return &Result{Table: table, Metrics: metrics}, nil
}
