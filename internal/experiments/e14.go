package experiments

import (
	"inlinered/internal/core"
	"inlinered/internal/workload"
)

// E14EntropyBypass is an extension experiment: real primary-storage streams
// mix compressible data with already-compressed or encrypted content. A
// one-pass byte-entropy check lets the pipeline store high-entropy chunks
// raw instead of running the match search for nothing. The experiment runs
// a mixed stream (half the uniques incompressible) through the CPU
// compression pipeline with and without the bypass.
func E14EntropyBypass(cfg Config) (*Result, error) {
	table := &Table{
		ID:         "E14",
		Title:      "Extension: entropy bypass on a mixed-compressibility stream",
		PaperClaim: "(extension) skip the encoder for chunks that will not compress",
		Columns:    []string{"bypass", "incompressible share", "IOPS", "comp ratio", "chunks skipped"},
	}
	metrics := map[string]float64{}
	small := cfg
	small.StreamBytes = cfg.StreamBytes / 2
	for _, frac := range []float64{0.0, 0.5, 1.0} {
		for _, skip := range []bool{false, true} {
			ecfg := core.DefaultConfig()
			ecfg.Dedup = false
			ecfg.Compress = true
			ecfg.SkipIncompressible = skip
			stream, err := workload.New(workload.Spec{
				TotalBytes:             small.StreamBytes,
				ChunkSize:              ecfg.ChunkSize,
				DedupRatio:             1.0,
				CompRatio:              2.0,
				IncompressibleFraction: frac,
				Seed:                   small.Seed,
			})
			if err != nil {
				return nil, err
			}
			eng, err := core.NewEngine(core.PaperPlatform(), ecfg)
			if err != nil {
				return nil, err
			}
			rep, err := eng.Process(stream)
			if err != nil {
				return nil, err
			}
			onoff := "off"
			if skip {
				onoff = "on"
			}
			table.Rows = append(table.Rows, []string{
				onoff,
				cell("%.0f%%", 100*frac),
				cell("%.0f", rep.IOPS),
				cell("%.3f", rep.CompRatio),
				cell("%d", rep.SkippedIncompressible),
			})
			key := cell("%s_f%.1f", onoff, frac)
			metrics["iops_"+key] = rep.IOPS
			metrics["ratio_"+key] = rep.CompRatio
			metrics["skipped_"+key] = float64(rep.SkippedIncompressible)
		}
	}
	table.Notes = append(table.Notes,
		"compression-only CPU pipeline; the bypass costs one histogram pass per chunk",
		"and saves the whole match search on chunks that would store raw anyway")
	return &Result{Table: table, Metrics: metrics}, nil
}
