package experiments

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"time"

	"inlinered/internal/core"
	"inlinered/internal/cpusim"
	"inlinered/internal/dedup"
	"inlinered/internal/sim"
	"inlinered/internal/workload"
)

// E8BinScaling is the design ablation behind §3.1(1): partitioning the hash
// table into bins lets computing threads index "at the same time without
// locking mechanism". It indexes the same fingerprint stream through the
// bin-partitioned index (each bin owned by one worker) and through a single
// global locked table, across thread counts, in virtual time.
//
// The locked baseline charges the same per-op index work but holds one
// global lock for the duration of each critical section, plus a cache-line
// handoff cost that grows with the number of contending threads.
func E8BinScaling(cfg Config) (*Result, error) {
	ops := 1 << 18
	uniques := ops / 4
	rng := rand.New(rand.NewSource(cfg.Seed))
	fps := make([]dedup.Fingerprint, ops)
	for i := range fps {
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], uint64(rng.Intn(uniques)))
		fps[i] = dedup.Sum(b[:])
	}
	cost := cpusim.DefaultCostModel()
	clock := cpusim.DefaultConfig().ClockHz
	const lockHandoffCycles = 220 // one contended cache-line transfer

	table := &Table{
		ID:         "E8",
		Title:      "Bin-partitioned (lock-free) vs single locked table (§3.1(1) ablation)",
		PaperClaim: "bins let threads index concurrently without locks",
		Columns:    []string{"threads", "bins Mops/s", "locked Mops/s", "bins speedup", "locked speedup"},
	}
	metrics := map[string]float64{}
	var binsBase, lockBase float64
	var results []dedup.ItemResult // reused across thread counts
	var work []dedup.WorkerWork
	for _, threads := range []int{1, 2, 4, 8, 16} {
		// Bin-partitioned: real lock-free run; each worker's virtual time
		// is the sum of its own probe+insert cycles; makespan = slowest.
		idx, err := dedup.NewBinIndex(dedup.DefaultIndexConfig())
		if err != nil {
			return nil, err
		}
		pi := dedup.NewParallelIndexer(idx, threads)
		results, work = pi.ProcessInto(results, work, fps, func(i int) dedup.Entry { return dedup.Entry{Loc: int64(i)} })
		var makespan time.Duration
		for _, w := range work {
			cycles := float64(w.Items)*cost.ProbeBaseCycles +
				float64(w.BufferScanned)*cost.BufferEntryCycles +
				float64(w.TreeSteps)*cost.TreeStepCycles +
				float64(w.Items)*cost.InsertCycles/2
			makespan = sim.MaxTime(makespan, sim.Cycles(cycles, clock))
		}
		binsMops := float64(ops) / makespan.Seconds() / 1e6

		// Locked: the same per-op index work (the data structure is shared,
		// not sharded), serialized through one global lock, plus a
		// cache-line handoff once the lock is contended. Threads feed the
		// lock as fast as they can, so the serialized critical sections
		// are the makespan.
		var totalCycles float64
		for _, w := range work {
			totalCycles += float64(w.Items)*cost.ProbeBaseCycles +
				float64(w.BufferScanned)*cost.BufferEntryCycles +
				float64(w.TreeSteps)*cost.TreeStepCycles +
				float64(w.Items)*cost.InsertCycles/2
		}
		perOp := totalCycles / float64(ops)
		locked := dedup.NewLockedMap()
		lockPool := sim.NewPool("lock", 1)
		var at time.Duration
		for i, fp := range fps {
			locked.LookupOrInsert(fp, dedup.Entry{Loc: int64(i)})
			cycles := perOp
			if threads > 1 {
				cycles += lockHandoffCycles
			}
			_, at = lockPool.Acquire(at, sim.Cycles(cycles, clock))
		}
		lockMops := float64(ops) / at.Seconds() / 1e6

		if threads == 1 {
			binsBase, lockBase = binsMops, lockMops
		}
		table.Rows = append(table.Rows, []string{
			cell("%d", threads),
			cell("%.2f", binsMops),
			cell("%.2f", lockMops),
			cell("%.2fx", binsMops/binsBase),
			cell("%.2fx", lockMops/lockBase),
		})
		metrics[fmt.Sprintf("bins_mops_t%d", threads)] = binsMops
		metrics[fmt.Sprintf("locked_mops_t%d", threads)] = lockMops
	}
	table.Notes = append(table.Notes,
		cell("%d lookups over %d unique fingerprints; insert-on-miss", ops, uniques),
		"bin ownership is worker-exclusive, so the partitioned run takes no locks at all")
	return &Result{Table: table, Metrics: metrics}, nil
}

// E9BinBuffer is the §3.3 ablation: the bin buffer in front of the bin tree
// catches temporally local duplicates cheaply and batches sequential
// journal writes. Swept over the buffer capacity on a recency-biased
// stream.
func E9BinBuffer(cfg Config) (*Result, error) {
	table := &Table{
		ID:         "E9",
		Title:      "Bin buffer ablation (§3.3): capacity vs hit share and throughput",
		PaperClaim: "recently updated chunks are likely found in the bin buffer (temporal locality)",
		Columns:    []string{"buffer entries", "IOPS", "buffer-hit share", "tree-hit share", "journal I/Os", "bytes/journal I/O"},
	}
	metrics := map[string]float64{}
	for _, buf := range []int{1, 4, 16, 64, 256} {
		rep, err := runPipeline(cfg, core.CPUOnly, true, false, 2.0, 2.0, workload.RefRecent,
			func(c *core.Config) { c.Index.BufferEntries = buf })
		if err != nil {
			return nil, err
		}
		dups := float64(rep.DupChunks)
		bufShare, treeShare := 0.0, 0.0
		if dups > 0 {
			bufShare = float64(rep.DupHitsBuffer) / dups
			treeShare = float64(rep.DupHitsTree) / dups
		}
		perIO := 0.0
		if rep.JournalWrites > 0 {
			perIO = float64(rep.JournalBytes) / float64(rep.JournalWrites)
		}
		table.Rows = append(table.Rows, []string{
			cell("%d", buf),
			cell("%.0f", rep.IOPS),
			cell("%.1f%%", 100*bufShare),
			cell("%.1f%%", 100*treeShare),
			cell("%d", rep.JournalWrites),
			cell("%.0f", perIO),
		})
		key := fmt.Sprintf("buf%d", buf)
		metrics["iops_"+key] = rep.IOPS
		metrics["bufshare_"+key] = bufShare
	}
	table.Notes = append(table.Notes, "recency-biased duplicate references (Zipf), dedup ratio 2.0")
	return &Result{Table: table, Metrics: metrics}, nil
}

// E10SubBlockOverlap is the §3.2(2) ablation: how many lanes to give each
// 4 KB chunk, and how much neighbouring history each lane should preload.
// More lanes mean shorter wavefronts (higher GPU throughput on small
// batches) but each lane's history resets, costing compression ratio;
// overlap buys the ratio back for extra work.
func E10SubBlockOverlap(cfg Config) (*Result, error) {
	table := &Table{
		ID:         "E10",
		Title:      "GPU sub-block compression: lanes per chunk and overlap (§3.2(2) ablation)",
		PaperClaim: "multiple threads per chunk with overlapping history regions",
		Columns:    []string{"sub-blocks", "overlap", "gpu IOPS", "comp ratio", "ratio loss vs 1-lane"},
	}
	metrics := map[string]float64{}
	streamBytes := cfg.StreamBytes / 4
	small := cfg
	small.StreamBytes = streamBytes

	var baseRatio float64
	type point struct{ subs, overlap int }
	points := []point{
		{1, 0},
		{2, 512}, {4, 512}, {8, 512},
		{4, 0}, {4, 1024},
	}
	for _, pt := range points {
		rep, err := runPipeline(small, core.GPUCompress, false, true, 1.0, 2.0, workload.RefUniform,
			func(c *core.Config) {
				c.Sub.SubBlocks = pt.subs
				c.Sub.Overlap = pt.overlap
			})
		if err != nil {
			return nil, err
		}
		if pt.subs == 1 {
			baseRatio = rep.CompRatio
		}
		loss := 100 * (1 - rep.CompRatio/baseRatio)
		table.Rows = append(table.Rows, []string{
			cell("%d", pt.subs),
			cell("%d", pt.overlap),
			cell("%.0f", rep.IOPS),
			cell("%.3f", rep.CompRatio),
			cell("%.1f%%", loss),
		})
		key := fmt.Sprintf("s%d_o%d", pt.subs, pt.overlap)
		metrics["iops_"+key] = rep.IOPS
		metrics["ratio_"+key] = rep.CompRatio
	}
	table.Notes = append(table.Notes,
		"compression-only pipeline, workload compression ratio 2.0",
		"the 1-lane row is the single-stream reference the ratio loss is measured against")
	return &Result{Table: table, Metrics: metrics}, nil
}
