package experiments

import (
	"inlinered/internal/core"
	"inlinered/internal/lz"
	"inlinered/internal/workload"
)

// E13CodecAblation is an extension experiment: the paper's CPU baseline is
// "parallel QuickLZ" while this repository defaults to a hash-chain LZSS —
// two points on the classic inline-compression tradeoff. The experiment
// runs the compression-only CPU pipeline with both codecs across
// compressibility levels and reports throughput and achieved ratio, and
// adds the GPU sub-block LZSS for reference.
func E13CodecAblation(cfg Config) (*Result, error) {
	table := &Table{
		ID:         "E13",
		Title:      "Extension: CPU codec ablation — LZSS (hash chains) vs QuickLZ-class (single probe)",
		PaperClaim: "(extension) the paper's CPU baseline is parallel QuickLZ; speed vs ratio tradeoff",
		Columns:    []string{"workload ratio", "codec", "IOPS", "achieved ratio"},
	}
	metrics := map[string]float64{}
	small := cfg
	small.StreamBytes = cfg.StreamBytes / 2
	for _, wr := range []float64{1.0, 2.0, 4.0} {
		for _, codec := range []lz.Codec{lz.CodecLZSS, lz.CodecQLZ} {
			rep, err := runPipeline(small, core.CPUOnly, false, true, 1.0, wr, workload.RefUniform,
				func(c *core.Config) { c.Codec = codec })
			if err != nil {
				return nil, err
			}
			table.Rows = append(table.Rows, []string{
				cell("%.1f", wr),
				codec.String(),
				cell("%.0f", rep.IOPS),
				cell("%.3f", rep.CompRatio),
			})
			key := cell("%s_r%.1f", codec, wr)
			metrics["iops_"+key] = rep.IOPS
			metrics["ratio_"+key] = rep.CompRatio
		}
	}
	table.Notes = append(table.Notes,
		"compression-only CPU pipeline; the workload's ratio is calibrated against LZSS,",
		"so the qlz rows show what the faster codec gives up (or gains on long runs)")
	return &Result{Table: table, Metrics: metrics}, nil
}
