package experiments

import (
	"fmt"

	"inlinered/internal/core"
	"inlinered/internal/ssd"
	"inlinered/internal/workload"
)

// runPipeline executes one engine run over a freshly generated stream.
func runPipeline(cfg Config, mode core.Mode, dedupOn, compressOn bool, dd, cr float64, pattern workload.RefPattern, mutate func(*core.Config)) (*core.Report, error) {
	ecfg := core.DefaultConfig()
	ecfg.Mode = mode
	ecfg.Dedup = dedupOn
	ecfg.Compress = compressOn
	if mutate != nil {
		mutate(&ecfg)
	}
	stream, err := workload.New(workload.Spec{
		TotalBytes: cfg.StreamBytes,
		ChunkSize:  ecfg.ChunkSize,
		DedupRatio: dd,
		CompRatio:  cr,
		Pattern:    pattern,
		Seed:       cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	eng, err := core.NewEngine(core.PaperPlatform(), ecfg)
	if err != nil {
		return nil, err
	}
	return eng.Process(stream)
}

func ssdIOPS() float64 {
	return ssd.New(ssd.DefaultConfig()).NominalWriteIOPS()
}

// E2Dedup reproduces §4(1): parallel data deduplication only (compression
// off), CPU-only versus GPU-supported, against the SSD's throughput line.
// Paper: GPU-supported dedup improves throughput ~15% over CPU-only and
// reaches ~3× the SSD's throughput.
func E2Dedup(cfg Config) (*Result, error) {
	base := ssdIOPS()
	cpuRep, err := runPipeline(cfg, core.CPUOnly, true, false, 2.0, 2.0, workload.RefUniform, nil)
	if err != nil {
		return nil, err
	}
	gpuRep, err := runPipeline(cfg, core.GPUDedup, true, false, 2.0, 2.0, workload.RefUniform, nil)
	if err != nil {
		return nil, err
	}
	gain := 100 * (gpuRep.IOPS/cpuRep.IOPS - 1)
	table := &Table{
		ID:         "E2",
		Title:      "Parallel data deduplication (§4(1)); dedup ratio 2.0, 4 KB chunks",
		PaperClaim: "GPU-supported dedup +15.0% over CPU-only; ~3x the SSD's throughput",
		Columns:    []string{"scheme", "IOPS", "x SSD", "dup hits (gpu/buf/tree)"},
		Rows: [][]string{
			{"ssd baseline", cell("%.0f", base), "1.00x", "-"},
			{"cpu-only", cell("%.0f", cpuRep.IOPS), cell("%.2fx", cpuRep.IOPS/base),
				cell("%d/%d/%d", cpuRep.DupHitsGPU, cpuRep.DupHitsBuffer, cpuRep.DupHitsTree)},
			{"gpu-supported", cell("%.0f", gpuRep.IOPS), cell("%.2fx", gpuRep.IOPS/base),
				cell("%d/%d/%d", gpuRep.DupHitsGPU, gpuRep.DupHitsBuffer, gpuRep.DupHitsTree)},
		},
		Notes: []string{cell("GPU-supported gain: %+.1f%%; GPU screened %d chunks in %d batches",
			gain, gpuRep.GPUIndexedChunks, gpuRep.GPUIndexBatches)},
	}
	return &Result{Table: table, Metrics: map[string]float64{
		"cpu_iops":     cpuRep.IOPS,
		"gpu_iops":     gpuRep.IOPS,
		"ssd_iops":     base,
		"gain_pct":     gain,
		"gpu_x_ssd":    gpuRep.IOPS / base,
		"cpu_x_ssd":    cpuRep.IOPS / base,
		"gpu_dup_hits": float64(gpuRep.DupHitsGPU),
	}}, nil
}

// E3Compression reproduces §4(2): parallel compression only (dedup off),
// CPU (parallel QuickLZ-class) versus GPU sub-block kernel with CPU
// post-processing, swept over the workload compression ratio. Paper: at low
// compression ratio CPU ≈ 50K IOPS < SSD ≈ 80K IOPS < GPU ≈ 100K IOPS; the
// GPU is ~88.3% better than the CPU; throughput rises with the ratio.
func E3Compression(cfg Config) (*Result, error) {
	base := ssdIOPS()
	table := &Table{
		ID:         "E3",
		Title:      "Parallel data compression (§4(2)); sweep over compression ratio",
		PaperClaim: "low ratio: CPU ~50K < SSD ~80K < GPU ~100K IOPS; GPU +88.3% over CPU",
		Columns:    []string{"comp ratio", "cpu IOPS", "gpu IOPS", "gpu gain", "cpu x SSD", "gpu x SSD"},
	}
	metrics := map[string]float64{"ssd_iops": base}
	ratios := []float64{1.0, 1.5, 2.0, 3.0, 4.0}
	for _, r := range ratios {
		cpuRep, err := runPipeline(cfg, core.CPUOnly, false, true, 1.0, r, workload.RefUniform, nil)
		if err != nil {
			return nil, err
		}
		gpuRep, err := runPipeline(cfg, core.GPUCompress, false, true, 1.0, r, workload.RefUniform, nil)
		if err != nil {
			return nil, err
		}
		gain := 100 * (gpuRep.IOPS/cpuRep.IOPS - 1)
		table.Rows = append(table.Rows, []string{
			cell("%.1f", r),
			cell("%.0f", cpuRep.IOPS),
			cell("%.0f", gpuRep.IOPS),
			cell("%+.1f%%", gain),
			cell("%.2fx", cpuRep.IOPS/base),
			cell("%.2fx", gpuRep.IOPS/base),
		})
		key := fmt.Sprintf("r%.1f", r)
		metrics["cpu_iops_"+key] = cpuRep.IOPS
		metrics["gpu_iops_"+key] = gpuRep.IOPS
		metrics["gain_pct_"+key] = gain
	}
	table.Notes = append(table.Notes,
		"all chunks unique (dedup ratio 1.0) so compression is the whole pipeline")
	return &Result{Table: table, Metrics: metrics}, nil
}

// E4Integration reproduces Figure 2 / §4(3): the throughput of the four
// integration options on the combined workload (dedup 2.0 × compression
// 2.0). Paper: allocating the GPU to compression is the best choice, 89.7%
// better than the CPU-only integration.
func E4Integration(cfg Config) (*Result, error) {
	base := ssdIOPS()
	table := &Table{
		ID:         "E4",
		Title:      "Figure 2: throughput of the integration options (dedup 2.0 x comp 2.0)",
		PaperClaim: "GPU-for-compression wins; +89.7% over CPU-only integration",
		Columns:    []string{"integration", "IOPS", "vs cpu-only", "x SSD", "cpu util", "gpu util"},
	}
	metrics := map[string]float64{"ssd_iops": base}
	var cpuOnly float64
	for _, m := range core.Modes {
		rep, err := runPipeline(cfg, m, true, true, 2.0, 2.0, workload.RefUniform, nil)
		if err != nil {
			return nil, err
		}
		if m == core.CPUOnly {
			cpuOnly = rep.IOPS
		}
		table.Rows = append(table.Rows, []string{
			m.String(),
			cell("%.0f", rep.IOPS),
			cell("%+.1f%%", 100*(rep.IOPS/cpuOnly-1)),
			cell("%.2fx", rep.IOPS/base),
			cell("%.0f%%", 100*rep.CPUUtil),
			cell("%.0f%%", 100*rep.GPUUtil),
		})
		metrics["iops_"+m.String()] = rep.IOPS
	}
	metrics["gain_gpu_compress_pct"] = 100 * (metrics["iops_gpu-compress"]/cpuOnly - 1)
	metrics["gain_gpu_both_pct"] = 100 * (metrics["iops_gpu-both"]/cpuOnly - 1)
	metrics["gain_gpu_dedup_pct"] = 100 * (metrics["iops_gpu-dedup"]/cpuOnly - 1)
	return &Result{Table: table, Metrics: metrics}, nil
}

// E5Calibration reproduces the final paragraph of §4(3): the dummy-I/O
// calibration pass ranks the integration options per platform and picks the
// best, so the right choice is made "even if the target platform is
// different". Three platforms: the paper's, one with a weak GPU, one with
// no GPU.
func E5Calibration(cfg Config) (*Result, error) {
	table := &Table{
		ID:         "E5",
		Title:      "Dummy-I/O calibration across platforms (§4(3))",
		PaperClaim: "calibration picks the best integration per platform",
		Columns:    []string{"platform", "chosen", "cpu-only", "gpu-dedup", "gpu-compress", "gpu-both"},
	}
	metrics := map[string]float64{}
	sample := cfg.StreamBytes / 8
	platforms := []struct {
		name string
		plat core.Platform
	}{
		{"paper (i7 + HD7970-class)", core.PaperPlatform()},
		{"weak GPU", core.WeakGPUPlatform()},
		{"no GPU", core.CPUOnlyPlatform()},
	}
	for pi, p := range platforms {
		res, err := core.Calibrate(p.plat, core.DefaultConfig(), sample)
		if err != nil {
			return nil, err
		}
		row := []string{p.name, res.Best.String()}
		for _, m := range core.Modes {
			if r, ok := res.Reports[m]; ok {
				row = append(row, cell("%.0f", r.IOPS))
			} else {
				row = append(row, "n/a")
			}
		}
		table.Rows = append(table.Rows, row)
		metrics[fmt.Sprintf("best_platform_%d", pi)] = float64(int(res.Best))
	}
	return &Result{Table: table, Metrics: metrics}, nil
}
