package experiments

import (
	"strings"
	"testing"
)

// testConfig keeps experiment tests fast; shape assertions here use the
// loose bounds that hold at small scale, while EXPERIMENTS.md records the
// paper-scale numbers.
func testConfig() Config {
	return Config{
		StreamBytes:  96 << 20,
		IndexEntries: 1 << 20,
		Seed:         42,
	}
}

func TestAllRunnersListed(t *testing.T) {
	rs := All()
	if len(rs) < 16 {
		t.Fatalf("expected at least 16 experiments, got %d", len(rs))
	}
	seen := map[string]bool{}
	for _, r := range rs {
		if seen[r.ID] {
			t.Fatalf("duplicate id %s", r.ID)
		}
		seen[r.ID] = true
		if _, ok := Lookup(r.ID); !ok {
			t.Fatalf("Lookup(%s) failed", r.ID)
		}
	}
	if _, ok := Lookup("e99"); ok {
		t.Fatal("Lookup should reject unknown ids")
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{
		ID: "EX", Title: "test", PaperClaim: "claim",
		Columns: []string{"a", "bb"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
		Notes:   []string{"note"},
	}
	var sb strings.Builder
	tab.Fprint(&sb)
	out := sb.String()
	for _, want := range []string{"EX", "claim", "333", "note"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in rendered table:\n%s", want, out)
		}
	}
}

func TestE1ShapeCPUFasterWithLaunchFloor(t *testing.T) {
	cfg := testConfig()
	cfg.IndexEntries = 1 << 20
	res, err := E1PrelimIndexing(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// CPU must beat the GPU at every batch size.
	if res.Metrics["min_ratio"] <= 1.0 {
		t.Fatalf("GPU should never win indexing: min ratio %g", res.Metrics["min_ratio"])
	}
	// At paper scale the compute-bound ratio sits in/near the 4.16–5.45
	// band.
	r := res.Metrics["ratio_batch_4096"]
	if r < 3.5 || r > 7 {
		t.Fatalf("large-batch ratio %g outside plausible band", r)
	}
	// The launch-overhead floor: small batches are *relatively* far worse.
	if res.Metrics["ratio_batch_256"] <= res.Metrics["ratio_batch_4096"] {
		t.Fatal("small batches should suffer the launch floor hardest")
	}
}

func TestE2ShapeDedupBeatsSSD(t *testing.T) {
	res, err := E2Dedup(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Both schemes must beat the SSD line by a wide margin (~3x claim).
	if res.Metrics["cpu_x_ssd"] < 2.0 {
		t.Fatalf("CPU dedup only %.2fx SSD", res.Metrics["cpu_x_ssd"])
	}
	if res.Metrics["gpu_x_ssd"] < 2.0 {
		t.Fatalf("GPU dedup only %.2fx SSD", res.Metrics["gpu_x_ssd"])
	}
}

func TestE3ShapeCompression(t *testing.T) {
	res, err := E3Compression(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// The paper's low-ratio ordering: CPU < SSD < GPU.
	cpu, gpu, ssd := res.Metrics["cpu_iops_r1.0"], res.Metrics["gpu_iops_r1.0"], res.Metrics["ssd_iops"]
	if !(cpu < ssd && ssd < gpu) {
		t.Fatalf("low-ratio ordering broken: cpu=%.0f ssd=%.0f gpu=%.0f", cpu, ssd, gpu)
	}
	// GPU gain near the published +88.3% (generous band).
	if g := res.Metrics["gain_pct_r1.0"]; g < 60 || g > 130 {
		t.Fatalf("low-ratio GPU gain %.1f%% far from +88.3%%", g)
	}
	// Throughput rises with the compression ratio for both schemes.
	if res.Metrics["cpu_iops_r4.0"] <= res.Metrics["cpu_iops_r1.0"] {
		t.Fatal("CPU throughput should rise with compressibility")
	}
	if res.Metrics["gpu_iops_r4.0"] <= res.Metrics["gpu_iops_r1.0"] {
		t.Fatal("GPU throughput should rise with compressibility")
	}
}

func TestE4ShapeIntegration(t *testing.T) {
	res, err := E4Integration(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	iops := func(m string) float64 { return res.Metrics["iops_"+m] }
	// GPU-for-compression must beat CPU-only by a wide margin, and the two
	// compression-offload options must beat the two CPU-compression ones.
	if iops("gpu-compress") <= iops("cpu-only")*1.3 {
		t.Fatalf("gpu-compress should clearly win: %.0f vs %.0f", iops("gpu-compress"), iops("cpu-only"))
	}
	if iops("gpu-both") <= iops("cpu-only") {
		t.Fatal("gpu-both should beat cpu-only")
	}
	// The winner is one of the compression-offload modes (the paper's
	// Figure 2 winner is gpu-compress).
	best := "cpu-only"
	for _, m := range []string{"gpu-dedup", "gpu-compress", "gpu-both"} {
		if iops(m) > iops(best) {
			best = m
		}
	}
	if best != "gpu-compress" && best != "gpu-both" {
		t.Fatalf("winner %s is not a compression-offload mode", best)
	}
}

func TestE5ShapeCalibration(t *testing.T) {
	res, err := E5Calibration(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Paper platform: a GPU-compression option wins; weak/no GPU: cpu-only.
	if best := int(res.Metrics["best_platform_0"]); best != 2 && best != 3 {
		t.Fatalf("paper platform picked mode %d, want a compression-offload mode", best)
	}
	if best := int(res.Metrics["best_platform_1"]); best != 0 {
		t.Fatalf("weak-GPU platform picked mode %d, want cpu-only", best)
	}
	if best := int(res.Metrics["best_platform_2"]); best != 0 {
		t.Fatalf("GPU-less platform picked mode %d, want cpu-only", best)
	}
}

func TestE6ShapeIndexMemory(t *testing.T) {
	res, err := E6IndexMemory(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Metrics["index_gib_prefix_0"]; got != 16.0 {
		t.Fatalf("full index %g GiB, want 16", got)
	}
	if got := res.Metrics["index_gib_prefix_0"] - res.Metrics["index_gib_prefix_2"]; got != 1.0 {
		t.Fatalf("2-byte prefix saving %g GiB, want 1", got)
	}
	if got := res.Metrics["measured_entry_bytes_prefix_2"]; got != 30 {
		t.Fatalf("live index entry bytes %g, want 30", got)
	}
}

func TestE7ShapeEndurance(t *testing.T) {
	res, err := E7Endurance(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics["host_ratio"] <= 1.5 {
		t.Fatalf("background should write much more than inline: %.2fx", res.Metrics["host_ratio"])
	}
	if res.Metrics["nand_ratio"] <= 1.5 {
		t.Fatalf("background NAND ratio %.2fx", res.Metrics["nand_ratio"])
	}
}

func TestE8ShapeScaling(t *testing.T) {
	res, err := E8BinScaling(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Bins scale near-linearly; the locked table does not scale at all.
	if s := res.Metrics["bins_mops_t8"] / res.Metrics["bins_mops_t1"]; s < 6 {
		t.Fatalf("bins speedup at 8 threads only %.2fx", s)
	}
	if s := res.Metrics["locked_mops_t8"] / res.Metrics["locked_mops_t1"]; s > 1.2 {
		t.Fatalf("locked table should not scale: %.2fx", s)
	}
	// At high thread counts the lock-free design wins decisively.
	if res.Metrics["bins_mops_t16"] <= res.Metrics["locked_mops_t16"] {
		t.Fatal("bins should beat the locked table at 16 threads")
	}
}

func TestE9ShapeBinBuffer(t *testing.T) {
	res, err := E9BinBuffer(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Buffer-hit share must grow with capacity (temporal locality claim).
	if !(res.Metrics["bufshare_buf4"] > res.Metrics["bufshare_buf1"]) {
		t.Fatal("buffer-hit share should grow from capacity 1 to 4")
	}
	if res.Metrics["bufshare_buf64"] < 0.8 {
		t.Fatalf("a 64-entry buffer should catch most recency hits: %.2f", res.Metrics["bufshare_buf64"])
	}
}

func TestE10ShapeSubBlocks(t *testing.T) {
	res, err := E10SubBlockOverlap(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// More lanes per chunk raise throughput (up to saturation)...
	if res.Metrics["iops_s4_o512"] <= res.Metrics["iops_s1_o0"] {
		t.Fatal("4 lanes/chunk should beat 1 lane/chunk")
	}
	// ...but cost compression ratio, which overlap partially recovers.
	if res.Metrics["ratio_s4_o0"] > res.Metrics["ratio_s1_o0"] {
		t.Fatal("splitting lanes should not improve the ratio")
	}
	if res.Metrics["ratio_s4_o1024"] < res.Metrics["ratio_s4_o0"] {
		t.Fatal("overlap should recover compression ratio")
	}
}

func TestE11ShapeShiftedCDC(t *testing.T) {
	cfg := testConfig()
	res, err := E11ShiftedCDC(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Fixed chunking finds essentially nothing on shifted duplicates; CDC
	// recovers most of the 4x duplication.
	if res.Metrics["dedup_fixed-4K"] > 1.2 {
		t.Fatalf("fixed chunking should miss shifted dups: %.2f", res.Metrics["dedup_fixed-4K"])
	}
	if res.Metrics["dedup_gear-cdc"] < 2.5 {
		t.Fatalf("CDC should recover shifted dups: %.2f", res.Metrics["dedup_gear-cdc"])
	}
}

func TestE12ShapeVolume(t *testing.T) {
	res, err := E12VolumeLifecycle(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics["fill_mean_us"] <= 0 || res.Metrics["read_mean_us"] <= 0 {
		t.Fatal("latencies must be positive")
	}
	if res.Metrics["segments_cleaned"] == 0 {
		t.Fatal("churn should produce cleanable segments")
	}
	if res.Metrics["garbage_after_clean_mib"] >= res.Metrics["garbage_after_churn_mib"] {
		t.Fatal("cleaning should reduce garbage")
	}
}

func TestE13ShapeCodecs(t *testing.T) {
	res, err := E13CodecAblation(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// The single-probe codec must be faster where matches are plentiful
	// (fewer search steps, longer tokens)...
	if res.Metrics["iops_qlz_r4.0"] <= res.Metrics["iops_lzss_r4.0"] {
		t.Fatalf("qlz should beat lzss on throughput at r4: %.0f vs %.0f",
			res.Metrics["iops_qlz_r4.0"], res.Metrics["iops_lzss_r4.0"])
	}
	// ...and give up some ratio on ordinary compressible data.
	if res.Metrics["ratio_qlz_r2.0"] > res.Metrics["ratio_lzss_r2.0"]*1.05 {
		t.Fatalf("qlz ratio should not clearly beat lzss at r2: %.3f vs %.3f",
			res.Metrics["ratio_qlz_r2.0"], res.Metrics["ratio_lzss_r2.0"])
	}
}

func TestE14ShapeEntropyBypass(t *testing.T) {
	res, err := E14EntropyBypass(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// On the all-incompressible stream the bypass is a big win...
	if res.Metrics["iops_on_f1.0"] <= res.Metrics["iops_off_f1.0"]*1.5 {
		t.Fatalf("bypass should be much faster at 100%% incompressible: %.0f vs %.0f",
			res.Metrics["iops_on_f1.0"], res.Metrics["iops_off_f1.0"])
	}
	// ...on the fully compressible stream it must not hurt the ratio.
	if res.Metrics["ratio_on_f0.0"] < res.Metrics["ratio_off_f0.0"]*0.99 {
		t.Fatal("bypass should not degrade the compressible stream's ratio")
	}
	if res.Metrics["skipped_off_f1.0"] != 0 {
		t.Fatal("bypass off must skip nothing")
	}
	if res.Metrics["skipped_on_f0.5"] == 0 {
		t.Fatal("bypass should fire on the mixed stream")
	}
}

func TestE15ShapeGPUHashing(t *testing.T) {
	res, err := E15GPUHashing(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Small batches lose to the launch floor; large batches amortize it.
	if res.Metrics["ratio_batch_4096"] >= res.Metrics["ratio_batch_256"] {
		t.Fatal("bigger batches should amortize the GPU overheads")
	}
	// The PCIe story: hashing offload moves two orders of magnitude more
	// bytes per chunk than indexing offload.
	if res.Metrics["pcie_amplification"] < 100 {
		t.Fatalf("PCIe amplification %.0f, want > 100", res.Metrics["pcie_amplification"])
	}
}

func TestE16ShapeWriteAmplification(t *testing.T) {
	res, err := E16WriteAmplification(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Random overwrites amplify; sequential stay near 1.
	if res.Metrics["wa_random_op7"] <= 1.2 {
		t.Fatalf("random WA at 7%% OP should be well above 1: %.2f", res.Metrics["wa_random_op7"])
	}
	if res.Metrics["wa_seq_op7"] >= res.Metrics["wa_random_op7"] {
		t.Fatal("sequential WA should beat random at equal OP")
	}
	if res.Metrics["wa_seq_op15"] > 1.1 {
		t.Fatalf("sequential WA should stay near 1 at 15%% OP: %.2f", res.Metrics["wa_seq_op15"])
	}
	// More over-provisioning lowers random WA.
	if res.Metrics["wa_random_op28"] >= res.Metrics["wa_random_op7"] {
		t.Fatalf("WA should fall with OP: %.2f vs %.2f",
			res.Metrics["wa_random_op28"], res.Metrics["wa_random_op7"])
	}
}
