// Package experiments regenerates every table and figure in the paper's
// evaluation (plus the preliminary experiment, the analytic index-memory
// table, and the design ablations called out in DESIGN.md). Each runner
// returns a Result holding a printable table and a map of named metrics the
// tests and benchmarks assert shape properties on.
//
// The experiment index (IDs E1–E10) is documented in DESIGN.md; measured
// versus published numbers are recorded in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Config scales the experiments.
type Config struct {
	// StreamBytes is the workload size for the pipeline experiments. The
	// paper uses ~2 GB; the default keeps full-suite runs to a few
	// minutes of wall clock. Override with INLINERED_STREAM_MB.
	StreamBytes int64
	// IndexEntries preloads E1's indexes (paper-scale is ~10^6).
	IndexEntries int
	// Seed roots all workload generation.
	Seed int64
}

// DefaultConfig returns the default experiment scale, honouring the
// INLINERED_STREAM_MB environment variable.
func DefaultConfig() Config {
	cfg := Config{
		StreamBytes:  256 << 20,
		IndexEntries: 1 << 20,
		Seed:         42,
	}
	if v := os.Getenv("INLINERED_STREAM_MB"); v != "" {
		if mb, err := strconv.Atoi(v); err == nil && mb > 0 {
			cfg.StreamBytes = int64(mb) << 20
		}
	}
	return cfg
}

// Table is a printable experiment output shaped like the paper's report.
type Table struct {
	ID         string
	Title      string
	PaperClaim string
	Columns    []string
	Rows       [][]string
	Notes      []string
}

// Result pairs the table with named metrics for programmatic checks.
type Result struct {
	Table   *Table
	Metrics map[string]float64
}

// Fprint renders the table.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	if t.PaperClaim != "" {
		fmt.Fprintf(w, "paper: %s\n", t.PaperClaim)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	printRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	printRow(sep)
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

func cell(format string, args ...interface{}) string { return fmt.Sprintf(format, args...) }

// Runner is one experiment.
type Runner struct {
	ID   string
	Name string
	Run  func(Config) (*Result, error)
}

// All lists every experiment in order.
func All() []Runner {
	return []Runner{
		{"e1", "prelim-indexing", E1PrelimIndexing},
		{"e2", "dedup", E2Dedup},
		{"e3", "compression", E3Compression},
		{"e4", "integration", E4Integration},
		{"e5", "calibration", E5Calibration},
		{"e6", "index-memory", E6IndexMemory},
		{"e7", "endurance", E7Endurance},
		{"e8", "bin-scaling", E8BinScaling},
		{"e9", "binbuffer-ablation", E9BinBuffer},
		{"e10", "subblock-overlap", E10SubBlockOverlap},
		{"e11", "shifted-cdc", E11ShiftedCDC},
		{"e12", "volume-lifecycle", E12VolumeLifecycle},
		{"e13", "codec-ablation", E13CodecAblation},
		{"e14", "entropy-bypass", E14EntropyBypass},
		{"e15", "gpu-hashing", E15GPUHashing},
		{"e16", "write-amplification", E16WriteAmplification},
	}
}

// Lookup finds an experiment by id (e.g. "e3").
func Lookup(id string) (Runner, bool) {
	for _, r := range All() {
		if r.ID == id {
			return r, true
		}
	}
	return Runner{}, false
}
