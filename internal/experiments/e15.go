package experiments

import (
	"time"

	"inlinered/internal/cpusim"
	"inlinered/internal/dedup"
	"inlinered/internal/gpu"
	"inlinered/internal/workload"
)

// E15GPUHashing is an extension analysis: the paper's design hashes on the
// CPU, while related work (GHOST [7]) offloads hashing to the GPU. This
// experiment measures both sides of that choice on our platform: raw batch
// hashing time (CPU pool vs GPU round trip) and, crucially, the PCIe bytes
// each offload strategy consumes per chunk — the quantity the integrated
// design budgets for compression instead.
func E15GPUHashing(cfg Config) (*Result, error) {
	const chunkSize = 4096
	cpuCfg := cpusim.DefaultConfig()
	dev := gpu.New(gpu.DefaultConfig())

	table := &Table{
		ID:         "E15",
		Title:      "Extension: hashing offload analysis (why the paper hashes on the CPU)",
		PaperClaim: "(extension) GPU hashing is fast but PCIe-expensive; cf. GHOST [7]",
		Columns:    []string{"batch", "cpu-time", "gpu-time", "gpu/cpu", "PCIe bytes/chunk", "probe-offload bytes/chunk"},
	}
	metrics := map[string]float64{}
	for _, batch := range []int{256, 1024, 4096} {
		chunks := make([][]byte, batch)
		for i := range chunks {
			chunks[i] = workload.UniqueChunk(cfg.Seed, int32(i), chunkSize, 0.5)
		}
		// CPU: spread across the hardware threads.
		cpu := cpusim.New(cpuCfg)
		want := make([]dedup.Fingerprint, batch)
		for i, c := range chunks {
			want[i] = dedup.Sum(c)
			cpu.Run(0, cpuCfg.Cost.HashCycles(len(c)))
		}
		cpuTime := cpu.Pool.Horizon()

		// GPU: one batch round trip.
		dev.Reset()
		gpuTime, fps, _, _ := dedup.GPUBatchHash(dev, 0, chunks)
		for i := range fps {
			if fps[i] != want[i] {
				return nil, errMismatch(int64(i), -1)
			}
		}

		hashBytes := chunkSize + dedup.FingerprintSize // payload out, digest back
		probeBytes := dedup.FingerprintSize + 8        // hash out, (hit,slot) back
		ratio := gpuTime.Seconds() / cpuTime.Seconds()
		table.Rows = append(table.Rows, []string{
			cell("%d", batch),
			cell("%v", cpuTime.Round(time.Microsecond)),
			cell("%v", gpuTime.Round(time.Microsecond)),
			cell("%.2fx", ratio),
			cell("%d", hashBytes),
			cell("%d", probeBytes),
		})
		metrics[cell("ratio_batch_%d", batch)] = ratio
	}
	metrics["pcie_amplification"] = float64(chunkSize+dedup.FingerprintSize) / float64(dedup.FingerprintSize+8)
	table.Notes = append(table.Notes,
		"gpu/cpu < 1 means the GPU wins raw hashing throughput (GHOST's observation)",
		cell("but hashing offload moves %.0fx the PCIe bytes of indexing offload —", metrics["pcie_amplification"]),
		"bandwidth the integrated design spends on compression, whose data movement is unavoidable")
	return &Result{Table: table, Metrics: metrics}, nil
}
