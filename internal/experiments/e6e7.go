package experiments

import (
	"inlinered/internal/core"
	"inlinered/internal/dedup"
	"inlinered/internal/ssd"
	"inlinered/internal/workload"
)

// E6IndexMemory reproduces the index-sizing analysis of §3.1(1): a 4 TB
// store at 8 KB chunks with 32-byte entries needs 16 GB of index memory,
// and dropping a 2-byte hash prefix (implied by the bin id) saves 1 GB.
// The analytic rows are cross-checked against the real index's per-entry
// accounting.
func E6IndexMemory(cfg Config) (*Result, error) {
	const (
		capacity  = int64(4) << 40
		chunkSize = 8 << 10
	)
	entries := capacity / chunkSize
	table := &Table{
		ID:         "E6",
		Title:      "Index memory under prefix truncation (§3.1(1); 4 TB @ 8 KB chunks)",
		PaperClaim: "16 GB of index at 32 B/entry; a 2-byte prefix saves 1 GB",
		Columns:    []string{"prefix bytes", "entry bytes", "index size", "saving vs n=0"},
	}
	metrics := map[string]float64{}
	full := entries * int64(dedup.EntryBytes(0))
	for _, prefix := range []int{0, 1, 2, 4} {
		eb := dedup.EntryBytes(prefix)
		size := entries * int64(eb)
		table.Rows = append(table.Rows, []string{
			cell("%d", prefix),
			cell("%d", eb),
			cell("%.2f GiB", float64(size)/(1<<30)),
			cell("%.2f GiB", float64(full-size)/(1<<30)),
		})
		metrics[cell("index_gib_prefix_%d", prefix)] = float64(size) / (1 << 30)
	}

	// Cross-check the arithmetic against a live index: insert real
	// fingerprints under a 2-byte truncation and compare accounted bytes.
	idx, err := dedup.NewBinIndex(dedup.IndexConfig{BinBits: 16, BufferEntries: 16, PrefixBytes: 2})
	if err != nil {
		return nil, err
	}
	const n = 10000
	for i := 0; i < n; i++ {
		var b [8]byte
		b[0], b[1], b[2] = byte(i), byte(i>>8), byte(i>>16)
		idx.Insert(dedup.Sum(b[:]), dedup.Entry{Loc: int64(i)})
	}
	perEntry := float64(idx.MemoryBytes()) / float64(idx.Len())
	metrics["measured_entry_bytes_prefix_2"] = perEntry
	table.Notes = append(table.Notes,
		cell("live index cross-check: %.1f bytes/entry at prefix=2 (want %d)", perEntry, dedup.EntryBytes(2)),
		cell("%d-entry index for the full 4 TB store", entries))
	return &Result{Table: table, Metrics: metrics}, nil
}

// E7Endurance reproduces the motivation of §1: performing data reduction
// inline writes far less to the SSD than storing everything first and
// reducing in the background, which matters for write endurance. Both
// schemes process the same stream (dedup 2.0 × compression 2.0); the
// background scheme stores raw data, reads it back, writes the reduced
// form, and trims the raw copy.
func E7Endurance(cfg Config) (*Result, error) {
	// Inline: the real pipeline.
	ecfg := core.DefaultConfig()
	stream, err := workload.New(workload.Spec{
		TotalBytes: cfg.StreamBytes,
		ChunkSize:  ecfg.ChunkSize,
		DedupRatio: 2.0,
		CompRatio:  2.0,
		Seed:       cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	eng, err := core.NewEngine(core.PaperPlatform(), ecfg)
	if err != nil {
		return nil, err
	}
	rep, err := eng.Process(stream)
	if err != nil {
		return nil, err
	}
	inline := eng.Drive().Stats()
	inlineMaxErase := eng.Drive().MaxErase()

	// Background: store-then-reduce on a fresh drive of the same class.
	drive := ssd.New(core.PaperPlatform().SSD)
	rawPages := rep.Bytes / int64(drive.PageSize)
	reducedPages := int64(drive.Pages(int(rep.StoredBytes)))
	var t int64
	at := drive.Horizon()
	// 1. Land the raw stream.
	for t = int64(0); t < rawPages; t += 256 {
		n := int64(256)
		if t+n > rawPages {
			n = rawPages - t
		}
		if at2, err := drive.Write(at, t, int(n)); err != nil {
			return nil, err
		} else {
			at = at2
		}
	}
	// 2. Background pass: read everything back, write the reduced form.
	for t = 0; t < rawPages; t += 256 {
		n := int64(256)
		if t+n > rawPages {
			n = rawPages - t
		}
		if at2, err := drive.Read(at, t, int(n)); err != nil {
			return nil, err
		} else {
			at = at2
		}
	}
	base := rawPages
	for t = 0; t < reducedPages; t += 256 {
		n := int64(256)
		if t+n > reducedPages {
			n = reducedPages - t
		}
		if at2, err := drive.Write(at, base+t, int(n)); err != nil {
			return nil, err
		} else {
			at = at2
		}
	}
	// 3. Trim the raw copy.
	drive.Trim(0, int(rawPages))
	background := drive.Stats()

	ratioHost := float64(background.HostWritePages) / float64(inline.HostWritePages)
	ratioNAND := float64(background.NANDWritePages) / float64(inline.NANDWritePages)
	table := &Table{
		ID:         "E7",
		Title:      "Write endurance: inline vs background reduction (§1 motivation)",
		PaperClaim: "background reduction generates more write I/O, hurting SSD endurance",
		Columns:    []string{"scheme", "host pages", "NAND pages", "erases", "max erase", "WA"},
		Rows: [][]string{
			{"inline", cell("%d", inline.HostWritePages), cell("%d", inline.NANDWritePages),
				cell("%d", inline.Erases), cell("%d", inlineMaxErase), cell("%.2f", inline.WriteAmplification())},
			{"background", cell("%d", background.HostWritePages), cell("%d", background.NANDWritePages),
				cell("%d", background.Erases), cell("%d", drive.MaxErase()), cell("%.2f", background.WriteAmplification())},
		},
		Notes: []string{
			cell("background writes %.2fx the host pages and %.2fx the NAND pages of inline", ratioHost, ratioNAND),
		},
	}
	return &Result{Table: table, Metrics: map[string]float64{
		"inline_host_pages":     float64(inline.HostWritePages),
		"background_host_pages": float64(background.HostWritePages),
		"host_ratio":            ratioHost,
		"nand_ratio":            ratioNAND,
	}}, nil
}
