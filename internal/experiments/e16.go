package experiments

import (
	"math/rand"

	"inlinered/internal/ssd"
)

// E16WriteAmplification is a substrate-validation experiment: the SSD
// simulator's FTL must reproduce the canonical write-amplification
// behaviour that motivates the paper's §3.3 sequential-journal design —
// random overwrites amplify NAND writes (greedy GC migrates live pages),
// amplification falls as over-provisioning grows, and sequential
// overwrites stay near 1 regardless.
func E16WriteAmplification(cfg Config) (*Result, error) {
	table := &Table{
		ID:         "E16",
		Title:      "Extension: SSD write amplification vs over-provisioning (FTL validation)",
		PaperClaim: "(substrate) random overwrites amplify; sequential writes do not — why §3.3 journals sequentially",
		Columns:    []string{"over-provision", "random WA", "sequential WA", "random erases", "max erase"},
	}
	metrics := map[string]float64{}
	run := func(op float64, random bool) (*ssd.Drive, float64) {
		c := ssd.DefaultConfig()
		c.Channels = 4
		c.BlocksPerChannel = 64
		c.PagesPerBlock = 64
		c.OverProvision = op
		d := ssd.New(c)
		logical := d.LogicalPages()
		rng := rand.New(rand.NewSource(cfg.Seed))
		writes := 6 * logical
		for i := int64(0); i < writes; i++ {
			lpn := i % logical
			if random {
				lpn = rng.Int63n(logical)
			}
			if _, err := d.Write(0, lpn, 1); err != nil {
				panic(err)
			}
		}
		return d, d.Stats().WriteAmplification()
	}
	for _, op := range []float64{0.07, 0.15, 0.28} {
		dRand, waRand := run(op, true)
		_, waSeq := run(op, false)
		table.Rows = append(table.Rows, []string{
			cell("%.0f%%", 100*op),
			cell("%.2f", waRand),
			cell("%.2f", waSeq),
			cell("%d", dRand.Stats().Erases),
			cell("%d", dRand.MaxErase()),
		})
		key := cell("op%.0f", 100*op)
		metrics["wa_random_"+key] = waRand
		metrics["wa_seq_"+key] = waSeq
	}
	table.Notes = append(table.Notes,
		"6 full drive-writes of 4 KB pages on a scaled-down drive; greedy GC",
		"the paper's bin-buffer journal turns index updates into the sequential case")
	return &Result{Table: table, Metrics: metrics}, nil
}
