package experiments

import (
	"inlinered/internal/core"
	"inlinered/internal/workload"
)

// E11ShiftedCDC is an extension experiment beyond the paper: the paper
// deduplicates fixed 4 KB chunks (block-aligned primary storage writes),
// which cannot find duplicates whose content shifted in the byte stream.
// This experiment feeds a shifted-duplicate stream (files re-emitted with
// random inserted prefixes) through the pipeline with fixed chunking and
// with content-defined (Gear) chunking and compares the achieved
// deduplication.
func E11ShiftedCDC(cfg Config) (*Result, error) {
	spec := workload.ShiftSpec{
		Files:    24,
		FileSize: 1 << 20,
		Repeats:  4,
		MaxShift: 1 << 12,
		Fill:     0.55,
		Seed:     cfg.Seed,
	}
	// Keep the stream near the configured experiment scale.
	for int64(spec.Files*spec.FileSize*spec.Repeats) > cfg.StreamBytes && spec.Files > 2 {
		spec.Files /= 2
	}

	table := &Table{
		ID:         "E11",
		Title:      "Extension: fixed vs content-defined chunking on shifted duplicates",
		PaperClaim: "(extension) fixed 4 KB chunking misses shifted duplicates; CDC resynchronizes",
		Columns:    []string{"chunking", "IOPS", "dedup ratio", "total reduction", "stored MiB"},
	}
	metrics := map[string]float64{}
	for _, mode := range []struct {
		name    string
		chunker core.Chunking
	}{
		{"fixed-4K", core.FixedChunking},
		{"gear-cdc", core.CDCChunking},
	} {
		stream, total, err := workload.NewShifted(spec)
		if err != nil {
			return nil, err
		}
		ecfg := core.DefaultConfig()
		ecfg.Chunker = mode.chunker
		eng, err := core.NewEngine(core.PaperPlatform(), ecfg)
		if err != nil {
			return nil, err
		}
		rep, err := eng.Process(stream)
		if err != nil {
			return nil, err
		}
		if rep.Bytes != total {
			return nil, errMismatch(rep.Bytes, total)
		}
		table.Rows = append(table.Rows, []string{
			mode.name,
			cell("%.0f", rep.IOPS),
			cell("%.2f", rep.DedupRatio),
			cell("%.2fx", rep.ReductionRatio),
			cell("%.1f", float64(rep.StoredBytes)/(1<<20)),
		})
		metrics["dedup_"+mode.name] = rep.DedupRatio
		metrics["reduction_"+mode.name] = rep.ReductionRatio
		metrics["iops_"+mode.name] = rep.IOPS
	}
	table.Notes = append(table.Notes,
		cell("%d files x %d MiB x %d emissions; re-emissions get a random prefix up to %d bytes",
			spec.Files, spec.FileSize>>20, spec.Repeats, spec.MaxShift))
	return &Result{Table: table, Metrics: metrics}, nil
}

type mismatchError struct{ got, want int64 }

func errMismatch(got, want int64) error { return mismatchError{got, want} }
func (e mismatchError) Error() string {
	return cell("experiments: pipeline saw %d bytes, stream has %d", e.got, e.want)
}
