package metrics

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// formatValue renders a float the way Prometheus clients do: shortest
// round-trip representation.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes backslashes and newlines in HELP text.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// bucketUpper is bucket b's inclusive upper bound in raw (pre-scale)
// units, mirroring sim.Histogram's layout.
func bucketUpper(b int) int64 {
	if b <= 0 {
		return 0
	}
	if b >= 63 {
		return 1<<63 - 1
	}
	return int64(1)<<b - 1
}

// withLabel splices one more label into a pre-rendered label block.
func withLabel(labels, key, value string) string {
	extra := key + `="` + value + `"`
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}

// writeHistogram emits one histogram series in exposition format:
// cumulative buckets up to the highest occupied one, then +Inf, _sum, and
// _count.
func writeHistogram(w io.Writer, name, labels string, counts [histBuckets]int64, n, sum int64, scale float64) error {
	top := 0
	for b := histBuckets - 1; b >= 0; b-- {
		if counts[b] != 0 {
			top = b
			break
		}
	}
	var cum int64
	for b := 0; b <= top; b++ {
		cum += counts[b]
		le := formatValue(float64(bucketUpper(b)) * scale)
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, withLabel(labels, "le", le), cum); err != nil {
			return err
		}
	}
	if n < cum {
		// A snapshot racing an Observe can see the bucket increment before
		// the n increment; keep the exposition internally consistent.
		n = cum
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, withLabel(labels, "le", "+Inf"), n); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, formatValue(float64(sum)*scale)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, labels, n)
	return err
}

// WriteTo writes the full Prometheus text exposition (version 0.0.4) of
// every registered metric, in registration order, plus the Go runtime GC
// pause histogram when a runtime sample has been taken. The output is
// deterministic given fixed metric values.
func WriteTo(w io.Writer) error {
	for _, f := range familiesSnapshot() {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, escapeHelp(f.help), f.name, f.kind); err != nil {
			return err
		}
		for _, s := range f.series {
			switch {
			case s.c != nil:
				if _, err := fmt.Fprintf(w, "%s%s %s\n", f.name, s.labels, formatValue(float64(s.c.Value())*f.scale)); err != nil {
					return err
				}
			case s.g != nil:
				if _, err := fmt.Fprintf(w, "%s%s %s\n", f.name, s.labels, formatValue(float64(s.g.Value())*f.scale)); err != nil {
					return err
				}
			case s.h != nil:
				counts, n, sum, _, _ := s.h.snapshot()
				if err := writeHistogram(w, f.name, s.labels, counts, n, sum, f.scale); err != nil {
					return err
				}
			}
		}
	}
	return writeRuntimePauses(w)
}

// WriteFile writes the exposition atomically: a temp file in the target's
// directory, then a rename, so a scraper (or the CI validator) never
// observes a half-written snapshot.
func WriteFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := WriteTo(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}
