package metrics

import (
	"fmt"
	"sync"
	"time"
)

// StartSnapshotter enables metrics, writes an immediate exposition
// snapshot to path (validating the path is writable up front), and — when
// interval > 0 — keeps rewriting it every interval until stop is called.
// Every write refreshes the runtime telemetry first. The returned stop
// writes one final snapshot and reports its error; it is idempotent.
func StartSnapshotter(path string, interval time.Duration) (stop func() error, err error) {
	Enable()
	write := func() error {
		SampleRuntime()
		return WriteFile(path)
	}
	if err := write(); err != nil {
		return nil, fmt.Errorf("metrics: writing snapshot: %w", err)
	}
	if interval <= 0 {
		return write, nil
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				// A failed periodic write (disk full, path removed) is not
				// worth killing the run for; the final write reports it.
				_ = write()
			case <-done:
				return
			}
		}
	}()
	var once sync.Once
	return func() error {
		once.Do(func() {
			close(done)
			<-finished
		})
		return write()
	}, nil
}

// SummaryLine refreshes the runtime telemetry and renders the one-line
// wall-clock utilization digest surfaced by examples/fileserver and
// BenchmarkServeWallClock: pool busy share, shard-drain time, and the GC
// pause estimate. It reads whatever has been recorded so far — with
// metrics disabled everything reads zero.
func SummaryLine() string {
	SampleRuntime()
	busy := PoolBusy.Value()
	idle := PoolIdle.Value()
	util := "n/a"
	if busy+idle > 0 {
		util = fmt.Sprintf("%.1f%%", 100*float64(busy)/float64(busy+idle))
	}
	return fmt.Sprintf("wall-clock: pool busy %s (%v busy / %v idle), shard drain %v, GC pause ~%v",
		util,
		time.Duration(busy).Round(time.Millisecond),
		time.Duration(idle).Round(time.Millisecond),
		time.Duration(ServeShardDrain.Sum()).Round(time.Millisecond),
		time.Duration(RuntimeGCPause.Value()).Round(100*time.Microsecond))
}
