package metrics

import (
	"fmt"
	"io"
	"math"
	rm "runtime/metrics"
	"sync"
)

// The runtime sampler reads a fixed set of runtime/metrics samples into
// the go_* gauges and keeps the latest GC pause distribution for
// exposition. Sampling is explicit (SampleRuntime) — the snapshot writer
// calls it before every export, so -metrics-interval doubles as the
// runtime telemetry cadence.

var runtimeState struct {
	mu      sync.Mutex
	samples []rm.Sample
	pauses  *rm.Float64Histogram // copy of the latest GC pause distribution
}

// runtimeSampleNames are the runtime/metrics series we export. Unknown
// names (older toolchains) read as KindBad and are skipped.
var runtimeSampleNames = []string{
	"/sched/goroutines:goroutines",
	"/memory/classes/heap/objects:bytes",
	"/gc/heap/allocs:bytes",
	"/gc/cycles/total:gc-cycles",
	"/sched/pauses/total/gc:seconds",
}

// SampleRuntime refreshes the go_* gauges from runtime/metrics. Safe for
// concurrent use; cheap enough to call per snapshot, not per operation.
func SampleRuntime() {
	runtimeState.mu.Lock()
	defer runtimeState.mu.Unlock()
	if runtimeState.samples == nil {
		runtimeState.samples = make([]rm.Sample, len(runtimeSampleNames))
		for i, n := range runtimeSampleNames {
			runtimeState.samples[i].Name = n
		}
	}
	rm.Read(runtimeState.samples)
	for _, s := range runtimeState.samples {
		switch s.Value.Kind() {
		case rm.KindUint64:
			v := int64(s.Value.Uint64())
			switch s.Name {
			case "/sched/goroutines:goroutines":
				RuntimeGoroutines.Set(v)
			case "/memory/classes/heap/objects:bytes":
				RuntimeHeapBytes.Set(v)
			case "/gc/heap/allocs:bytes":
				RuntimeHeapAllocBytes.Set(v)
			case "/gc/cycles/total:gc-cycles":
				RuntimeGCCycles.Set(v)
			}
		case rm.KindFloat64Histogram:
			if s.Name == "/sched/pauses/total/gc:seconds" {
				h := s.Value.Float64Histogram()
				runtimeState.pauses = copyFloatHist(h)
				RuntimeGCPause.Set(int64(pauseEstimateSeconds(h) * 1e9))
			}
		}
	}
}

// copyFloatHist deep-copies a runtime histogram so the exposition path
// never aliases runtime-owned memory.
func copyFloatHist(h *rm.Float64Histogram) *rm.Float64Histogram {
	out := &rm.Float64Histogram{
		Counts:  append([]uint64(nil), h.Counts...),
		Buckets: append([]float64(nil), h.Buckets...),
	}
	return out
}

// pauseEstimateSeconds estimates total GC pause time from the pause
// distribution: each bucket contributes count × bucket midpoint. The
// runtime's buckets are log-spaced, so the estimate is within ~2× per
// bucket — plenty for "is GC pressure a factor" triage.
func pauseEstimateSeconds(h *rm.Float64Histogram) float64 {
	var total float64
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		mid := 0.0
		switch {
		case math.IsInf(lo, -1):
			mid = hi
		case math.IsInf(hi, 1):
			mid = lo
		default:
			mid = (lo + hi) / 2
		}
		total += float64(c) * mid
	}
	return total
}

// writeRuntimePauses emits the latest GC pause distribution as a
// Prometheus histogram, or nothing when SampleRuntime has not run.
func writeRuntimePauses(w io.Writer) error {
	runtimeState.mu.Lock()
	h := runtimeState.pauses
	runtimeState.mu.Unlock()
	if h == nil {
		return nil
	}
	const name = "go_gc_pauses_seconds"
	if _, err := fmt.Fprintf(w, "# HELP %s Distribution of stop-the-world GC pause latencies, from /sched/pauses/total/gc.\n# TYPE %s histogram\n", name, name); err != nil {
		return err
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if c == 0 || math.IsInf(h.Buckets[i+1], 1) {
			// Empty buckets are elided; an infinite upper bound folds into
			// the single +Inf bucket emitted below.
			continue
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatValue(h.Buckets[i+1]), cum); err != nil {
			return err
		}
	}
	total := cum
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, total); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum %s\n", name, formatValue(pauseEstimateSeconds(h))); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count %d\n", name, total)
	return err
}
