package metrics

import (
	"expvar"
	"sync"
)

// The expvar export mirrors the Prometheus exposition for consumers that
// already scrape /debug/vars: one "inlinered_metrics" Func var whose JSON
// value maps "family{labels}" to the exported (scaled) value — counters
// and gauges as numbers, histograms as {count, sum, mean, max} digests.

var expvarOnce sync.Once

// publishExpvarOnce registers the expvar export. Called from Enable;
// expvar panics on duplicate names, so this must run at most once.
func publishExpvarOnce() {
	expvarOnce.Do(func() {
		expvar.Publish("inlinered_metrics", expvar.Func(func() any {
			return expvarSnapshot()
		}))
	})
}

// expvarSnapshot builds the JSON-ready view of every registered metric.
func expvarSnapshot() map[string]any {
	out := make(map[string]any)
	for _, f := range familiesSnapshot() {
		for _, s := range f.series {
			key := f.name + s.labels
			switch {
			case s.c != nil:
				out[key] = float64(s.c.Value()) * f.scale
			case s.g != nil:
				out[key] = float64(s.g.Value()) * f.scale
			case s.h != nil:
				_, n, sum, _, max := s.h.snapshot()
				mean := 0.0
				if n > 0 {
					mean = float64(sum) / float64(n) * f.scale
				}
				out[key] = map[string]any{
					"count": n,
					"sum":   float64(sum) * f.scale,
					"mean":  mean,
					"max":   float64(max) * f.scale,
				}
			}
		}
	}
	return out
}
