package metrics

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// A real Prometheus text-format (version 0.0.4) parser, used by the
// exposition tests and cmd/metricscheck so "the output is valid expfmt"
// is checked by a grammar, not an eyeball. It is strict where the spec
// is: metric-name and label-name character sets, label-value escaping,
// float sample values, TYPE declarations, and histogram invariants
// (cumulative buckets, mandatory +Inf, _count agreement).

// Sample is one parsed sample line.
type Sample struct {
	Name   string // full sample name, including _bucket/_sum/_count suffixes
	Labels map[string]string
	Value  float64
}

// Exposition is a parsed text exposition.
type Exposition struct {
	Types   map[string]string // family name -> counter|gauge|histogram|summary|untyped
	Help    map[string]string
	Samples []Sample
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || strings.ContainsRune(s, ':') {
		return false
	}
	return validMetricName(s)
}

// parseLabels parses `key="value",...}` starting just after the '{'.
// Returns the labels and the rest of the line after the closing brace.
func parseLabels(s string) (map[string]string, string, error) {
	labels := make(map[string]string)
	for {
		s = strings.TrimLeft(s, " \t")
		if strings.HasPrefix(s, "}") {
			return labels, s[1:], nil
		}
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, "", fmt.Errorf("label without '='")
		}
		name := strings.TrimSpace(s[:eq])
		if !validLabelName(name) {
			return nil, "", fmt.Errorf("invalid label name %q", name)
		}
		s = strings.TrimLeft(s[eq+1:], " \t")
		if !strings.HasPrefix(s, `"`) {
			return nil, "", fmt.Errorf("label %s: value not quoted", name)
		}
		s = s[1:]
		var val strings.Builder
		for {
			if s == "" {
				return nil, "", fmt.Errorf("label %s: unterminated value", name)
			}
			c := s[0]
			s = s[1:]
			if c == '"' {
				break
			}
			if c == '\\' {
				if s == "" {
					return nil, "", fmt.Errorf("label %s: dangling escape", name)
				}
				esc := s[0]
				s = s[1:]
				switch esc {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, "", fmt.Errorf("label %s: bad escape \\%c", name, esc)
				}
				continue
			}
			val.WriteByte(c)
		}
		if _, dup := labels[name]; dup {
			return nil, "", fmt.Errorf("duplicate label %s", name)
		}
		labels[name] = val.String()
		s = strings.TrimLeft(s, " \t")
		if strings.HasPrefix(s, ",") {
			s = s[1:]
		}
	}
}

func parseSampleValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// familyOf strips a histogram/summary sample suffix when the exposition
// declared the base name with that type.
func familyOf(name string, types map[string]string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base != name {
			if t := types[base]; t == "histogram" || t == "summary" {
				return base
			}
		}
	}
	return name
}

// ParseExposition parses and validates a Prometheus text exposition.
// Beyond the line grammar it requires: a trailing newline, a TYPE
// declaration before any sample of a family, and for every histogram
// series a +Inf bucket with cumulative (non-decreasing) bucket counts
// that agree with _count.
func ParseExposition(data []byte) (*Exposition, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("expfmt: empty exposition")
	}
	if data[len(data)-1] != '\n' {
		return nil, fmt.Errorf("expfmt: missing trailing newline")
	}
	exp := &Exposition{Types: make(map[string]string), Help: make(map[string]string)}
	lines := strings.Split(string(data), "\n")
	for no, line := range lines {
		if line == "" {
			continue
		}
		fail := func(format string, args ...any) (*Exposition, error) {
			return nil, fmt.Errorf("expfmt: line %d: %s", no+1, fmt.Sprintf(format, args...))
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 2 {
				continue // bare comment
			}
			switch fields[1] {
			case "HELP":
				if len(fields) < 3 || !validMetricName(fields[2]) {
					return fail("malformed HELP")
				}
				help := ""
				if len(fields) == 4 {
					help = fields[3]
				}
				exp.Help[fields[2]] = help
			case "TYPE":
				if len(fields) != 4 || !validMetricName(fields[2]) {
					return fail("malformed TYPE")
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fail("unknown type %q", fields[3])
				}
				if _, dup := exp.Types[fields[2]]; dup {
					return fail("duplicate TYPE for %s", fields[2])
				}
				exp.Types[fields[2]] = fields[3]
			}
			continue
		}
		// Sample line: name[{labels}] value [timestamp]
		i := 0
		for i < len(line) && line[i] != '{' && line[i] != ' ' && line[i] != '\t' {
			i++
		}
		name := line[:i]
		if !validMetricName(name) {
			return fail("invalid metric name %q", name)
		}
		rest := line[i:]
		labels := map[string]string{}
		if strings.HasPrefix(rest, "{") {
			var err error
			labels, rest, err = parseLabels(rest[1:])
			if err != nil {
				return fail("%v", err)
			}
		}
		fields := strings.Fields(rest)
		if len(fields) < 1 || len(fields) > 2 {
			return fail("want 'value [timestamp]', got %q", strings.TrimSpace(rest))
		}
		v, err := parseSampleValue(fields[0])
		if err != nil {
			return fail("bad value %q", fields[0])
		}
		if len(fields) == 2 {
			if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
				return fail("bad timestamp %q", fields[1])
			}
		}
		fam := familyOf(name, exp.Types)
		if _, ok := exp.Types[fam]; !ok {
			return fail("sample %s has no TYPE declaration", name)
		}
		exp.Samples = append(exp.Samples, Sample{Name: name, Labels: labels, Value: v})
	}
	if err := exp.checkHistograms(); err != nil {
		return nil, err
	}
	return exp, nil
}

// seriesKey identifies one histogram series: its labels minus "le",
// rendered in sorted order.
func seriesKey(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k != "le" {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%q,", k, labels[k])
	}
	return b.String()
}

// checkHistograms enforces per-series histogram invariants.
func (e *Exposition) checkHistograms() error {
	type hist struct {
		les    []float64
		counts []float64
		count  float64
		hasCnt bool
	}
	series := make(map[string]*hist)
	for _, s := range e.Samples {
		var fam, part string
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if base := strings.TrimSuffix(s.Name, suf); base != s.Name && e.Types[base] == "histogram" {
				fam, part = base, suf
				break
			}
		}
		if fam == "" {
			continue
		}
		key := fam + "|" + seriesKey(s.Labels)
		h := series[key]
		if h == nil {
			h = &hist{}
			series[key] = h
		}
		switch part {
		case "_bucket":
			leStr, ok := s.Labels["le"]
			if !ok {
				return fmt.Errorf("expfmt: %s bucket without le label", fam)
			}
			le, err := parseSampleValue(leStr)
			if err != nil {
				return fmt.Errorf("expfmt: %s: bad le %q", fam, leStr)
			}
			h.les = append(h.les, le)
			h.counts = append(h.counts, s.Value)
		case "_count":
			h.count = s.Value
			h.hasCnt = true
		}
	}
	for key, h := range series {
		if len(h.les) == 0 {
			return fmt.Errorf("expfmt: histogram series %s has no buckets", key)
		}
		hasInf := false
		for i := range h.les {
			if i > 0 {
				if h.les[i] <= h.les[i-1] {
					return fmt.Errorf("expfmt: histogram %s: le not increasing", key)
				}
				if h.counts[i] < h.counts[i-1] {
					return fmt.Errorf("expfmt: histogram %s: bucket counts not cumulative", key)
				}
			}
			if math.IsInf(h.les[i], 1) {
				hasInf = true
			}
		}
		if !hasInf {
			return fmt.Errorf("expfmt: histogram %s missing +Inf bucket", key)
		}
		if h.hasCnt && h.count != h.counts[len(h.counts)-1] {
			return fmt.Errorf("expfmt: histogram %s: _count %g != +Inf bucket %g", key, h.count, h.counts[len(h.counts)-1])
		}
	}
	return nil
}

// Validate parses data and additionally requires every named family to be
// present with at least one sample. Used by cmd/metricscheck and CI.
func Validate(data []byte, requiredFamilies ...string) error {
	exp, err := ParseExposition(data)
	if err != nil {
		return err
	}
	seen := make(map[string]bool)
	for _, s := range exp.Samples {
		seen[familyOf(s.Name, exp.Types)] = true
	}
	for _, name := range requiredFamilies {
		if !seen[name] {
			return fmt.Errorf("expfmt: required family %s absent from exposition", name)
		}
	}
	return nil
}
