package metrics

// The handle table: every instrumentation point in the data plane holds
// one of these package-level handles, so a hot-path record is one atomic
// op with no lookup. Centralizing the table also fixes the registration
// (and therefore exposition) order, and lets the summary helpers below
// read any metric without import cycles.
//
// Naming follows Prometheus conventions: base units (seconds), _total
// suffix on counters, and a shared inlinered_stage_wall_seconds histogram
// family keyed by (subsystem, stage) so one query surfaces the whole
// pipeline's wall-clock breakdown.

// stageHist registers one (subsystem, stage) series of the shared
// per-stage wall-clock histogram family.
func stageHist(subsystem, stage string) *Histogram {
	return NewSecondsHistogram("inlinered_stage_wall_seconds",
		"Wall-clock time per pipeline stage execution, keyed by (subsystem, stage).",
		"subsystem", subsystem, "stage", stage)
}

var (
	// Worker pool (internal/parallel): where the fan-out's host time goes.
	PoolMapCalls = NewCounter("inlinered_pool_map_calls_total",
		"Map fan-out calls on the persistent worker pool.",
		"subsystem", "parallel")
	PoolItems = NewCounter("inlinered_pool_items_total",
		"Work items distributed across pool workers by Map calls.",
		"subsystem", "parallel")
	PoolBusy = NewSecondsCounter("inlinered_pool_worker_busy_seconds_total",
		"Wall-clock time pool participants (workers and the calling goroutine) spent executing claimed batches.",
		"subsystem", "parallel")
	PoolIdle = NewSecondsCounter("inlinered_pool_worker_idle_seconds_total",
		"Wall-clock time woken pool workers spent parked between batch executions.",
		"subsystem", "parallel")
	PoolClaimWait = NewSecondsHistogram("inlinered_pool_batch_claim_wait_seconds",
		"Latency from a Map publishing its job to each woken worker claiming its first batch.",
		"subsystem", "parallel")
	PoolBatchSize = NewValueHistogram("inlinered_pool_batch_size_items",
		"Distribution of contiguous index-batch sizes claimed off the shared counter.",
		"subsystem", "parallel")

	// Core pipeline stages (internal/core): wall clock per batch-level
	// stage execution of the inline reduction pipeline.
	StageChunk       = stageHist("core", "chunk")
	StageHash        = stageHist("core", "hash")
	StageDedupDecide = stageHist("core", "dedup_decide")
	StageCompress    = stageHist("core", "compress")
	StageCommit      = stageHist("core", "commit")
	StageJournalCore = stageHist("core", "journal_flush")

	// Sharded serving front-end (internal/serve).
	ServeDispatch   = stageHist("serve", "dispatch")
	ServeQueueWait  = stageHist("serve", "queue_wait")
	ServeShardDrain = stageHist("serve", "shard_drain")

	// Replicated cluster tier (internal/cluster).
	ClusterNodeServe = stageHist("cluster", "node_serve")
	ClusterReplay    = stageHist("cluster", "rejoin_replay")

	// Volume (internal/volume).
	VolumeJournalFlush = stageHist("volume", "journal_flush")

	// Chunk read cache (internal/volume): the scan-resistant admission
	// policy's wall-clock counters. These mirror the virtual-time Stats
	// fields one-to-one; like every metric they are a side channel and
	// never feed back into reports.
	CacheHitsM = NewCounter("inlinered_cache_hits_total",
		"Read-cache lookups served from a resident entry.",
		"subsystem", "volume")
	CacheMissesM = NewCounter("inlinered_cache_misses_total",
		"Read-cache lookups that found no resident entry.",
		"subsystem", "volume")
	CacheAdmissionsM = NewCounter("inlinered_cache_admissions_total",
		"Entries admitted to (or promoted into) the protected segment.",
		"subsystem", "volume")
	CacheGhostHitsM = NewCounter("inlinered_cache_ghost_hits_total",
		"Inserts whose fingerprint was found on the ghost list of recent evictions.",
		"subsystem", "volume")
	CacheEvictionsM = NewCounter("inlinered_cache_evictions_total",
		"Entries evicted from the read cache to make room.",
		"subsystem", "volume")

	// Go runtime telemetry, refreshed by SampleRuntime.
	RuntimeGoroutines = NewGauge("go_goroutines",
		"Live goroutines, from /sched/goroutines.")
	RuntimeHeapBytes = NewGauge("go_memory_heap_objects_bytes",
		"Bytes occupied by live and dead heap objects, from /memory/classes/heap/objects.")
	RuntimeHeapAllocBytes = NewGauge("go_memory_heap_allocs_bytes_total",
		"Cumulative bytes allocated on the heap, from /gc/heap/allocs.")
	RuntimeGCCycles = NewGauge("go_gc_cycles",
		"Completed GC cycles, from /gc/cycles/total.")
	RuntimeGCPause = NewSecondsGauge("go_gc_pause_estimate_seconds",
		"Estimated total stop-the-world GC pause time (log-bucket midpoint sum over /sched/pauses/total/gc).")
)
