package metrics

import (
	"bytes"
	"math"
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestExpositionRoundTrip drives real values through the handle table,
// renders the exposition, and runs it through the strict parser — the
// output must be valid text format with every registered family present.
func TestExpositionRoundTrip(t *testing.T) {
	Enable()
	defer Disable()

	PoolMapCalls.Add(3)
	PoolItems.AddAt(5, 128)
	PoolBusy.AddAt(1, 2_000_000)
	PoolIdle.AddAt(2, 500_000)
	PoolClaimWait.Observe(12_345)
	PoolBatchSize.Observe(32)
	StageChunk.Observe(1_000)
	StageHash.Observe(2_000)
	ServeDispatch.Observe(777)
	ClusterReplay.Observe(9_999)
	VolumeJournalFlush.Observe(4_321)
	SampleRuntime()

	var buf bytes.Buffer
	if err := WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if err := Validate(buf.Bytes(), Names()...); err != nil {
		t.Fatalf("exposition failed validation: %v\n%s", err, buf.String())
	}

	exp, err := ParseExposition(buf.Bytes())
	if err != nil {
		t.Fatalf("ParseExposition: %v", err)
	}
	if exp.Types["inlinered_stage_wall_seconds"] != "histogram" {
		t.Errorf("stage family type = %q, want histogram", exp.Types["inlinered_stage_wall_seconds"])
	}
	// The GC pause distribution must be present once SampleRuntime ran.
	if err := Validate(buf.Bytes(), "go_gc_pauses_seconds"); err != nil {
		t.Errorf("runtime pause histogram: %v", err)
	}

	// Spot-check a counter's exported (scaled) value: PoolBusy stores ns,
	// exports seconds.
	found := false
	for _, s := range exp.Samples {
		if s.Name == "inlinered_pool_worker_busy_seconds_total" {
			found = true
			if s.Value < 0.002 {
				t.Errorf("busy seconds = %g, want >= 0.002", s.Value)
			}
		}
	}
	if !found {
		t.Error("pool busy counter missing from exposition")
	}
}

func TestSeriesValue(t *testing.T) {
	before, ok := SeriesValue("inlinered_pool_map_calls_total", "subsystem", "parallel")
	if !ok {
		t.Fatal("pool map calls series not found")
	}
	PoolMapCalls.Add(2)
	after, _ := SeriesValue("inlinered_pool_map_calls_total", "subsystem", "parallel")
	if after != before+2 {
		t.Errorf("SeriesValue delta = %d, want 2", after-before)
	}
	if n, ok := SeriesValue("inlinered_stage_wall_seconds", "subsystem", "core", "stage", "chunk"); !ok || n < 0 {
		t.Errorf("stage histogram series lookup: n=%d ok=%v", n, ok)
	}
	if _, ok := SeriesValue("no_such_family"); ok {
		t.Error("unknown family should not resolve")
	}
}

func TestClockDisabledSentinel(t *testing.T) {
	Disable()
	if c := Clock(); c != -1 {
		t.Fatalf("Clock() with metrics off = %d, want -1", c)
	}
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	h.ObserveSince(-1) // must be a no-op
	h.ObserveSince(Clock())
	if h.N() != 0 {
		t.Fatalf("disabled ObserveSince recorded %d samples", h.N())
	}
	Enable()
	defer Disable()
	start := Clock()
	if start < 0 {
		t.Fatal("Clock() with metrics on returned sentinel")
	}
	h.ObserveSince(start)
	if h.N() != 1 {
		t.Fatalf("enabled ObserveSince recorded %d samples, want 1", h.N())
	}
}

// TestHotPathZeroAlloc pins the acceptance criterion that recording
// allocates nothing in steady state.
func TestHotPathZeroAlloc(t *testing.T) {
	Enable()
	defer Disable()
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	var c Counter
	if n := testing.AllocsPerRun(200, func() {
		c.AddAt(3, 1)
		h.Observe(42)
		h.ObserveSince(Clock())
	}); n != 0 {
		t.Errorf("hot-path record allocates %.1f objects/op, want 0", n)
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.AddAt(slot, 1)
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Errorf("Value = %d, want %d", got, workers*per)
	}
}

func TestHistogramMinMax(t *testing.T) {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	for _, v := range []int64{50, 3, 900, -7} { // -7 clamps to 0
		h.Observe(v)
	}
	_, n, sum, min, max := h.snapshot()
	if n != 4 || sum != 953 || min != 0 || max != 900 {
		t.Errorf("snapshot = n=%d sum=%d min=%d max=%d, want 4/953/0/900", n, sum, min, max)
	}
}

func TestWriteFileAtomic(t *testing.T) {
	path := t.TempDir() + "/metrics.prom"
	stop, err := StartSnapshotter(path, 0)
	if err != nil {
		t.Fatalf("StartSnapshotter: %v", err)
	}
	defer Disable()
	if !Enabled() {
		t.Error("StartSnapshotter should enable metrics")
	}
	if err := stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
	data := mustRead(t, path)
	if err := Validate(data, "inlinered_pool_map_calls_total", "inlinered_stage_wall_seconds", "go_goroutines"); err != nil {
		t.Fatalf("snapshot file invalid: %v", err)
	}
}

func TestSnapshotterPeriodic(t *testing.T) {
	path := t.TempDir() + "/metrics.prom"
	stop, err := StartSnapshotter(path, 5*time.Millisecond)
	if err != nil {
		t.Fatalf("StartSnapshotter: %v", err)
	}
	defer Disable()
	time.Sleep(25 * time.Millisecond)
	if err := stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
	if err := stop(); err != nil { // idempotent
		t.Fatalf("second stop: %v", err)
	}
	if err := Validate(mustRead(t, path)); err != nil {
		t.Fatalf("periodic snapshot invalid: %v", err)
	}
}

func TestSnapshotterBadPath(t *testing.T) {
	if _, err := StartSnapshotter(t.TempDir()+"/no/such/dir/m.prom", 0); err == nil {
		t.Fatal("want error for unwritable path")
	}
	Disable()
}

func TestSummaryLine(t *testing.T) {
	line := SummaryLine()
	for _, want := range []string{"wall-clock:", "pool busy", "GC pause"} {
		if !strings.Contains(line, want) {
			t.Errorf("SummaryLine %q missing %q", line, want)
		}
	}
}

// TestParserRejectsMalformed exercises the validator's teeth: each input
// here must be refused.
func TestParserRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"missing trailing newline": "# TYPE a counter\na 1",
		"sample without TYPE":      "a 1\n",
		"bad metric name":          "# TYPE 9bad counter\n",
		"unknown type":             "# TYPE a widget\n",
		"duplicate TYPE":           "# TYPE a counter\n# TYPE a gauge\na 1\n",
		"bad value":                "# TYPE a counter\na one\n",
		"unterminated label":       "# TYPE a counter\na{x=\"y 1\n",
		"bad escape":               "# TYPE a counter\na{x=\"\\q\"} 1\n",
		"duplicate label":          "# TYPE a counter\na{x=\"1\",x=\"2\"} 1\n",
		"histogram without +Inf":   "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_count 1\nh_sum 1\n",
		"non-cumulative buckets":   "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_count 5\nh_sum 1\n",
		"le not increasing":        "# TYPE h histogram\nh_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 2\nh_count 2\nh_sum 1\n",
		"count bucket mismatch":    "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_count 3\nh_sum 1\n",
	}
	for name, in := range cases {
		if _, err := ParseExposition([]byte(in)); err == nil {
			t.Errorf("%s: parser accepted %q", name, in)
		}
	}
}

func TestParserAcceptsValid(t *testing.T) {
	in := "# HELP a A counter.\n# TYPE a counter\n" +
		"a{path=\"with \\\"quotes\\\" and \\\\ and \\n\"} 1 1700000000000\n" +
		"# TYPE h histogram\n" +
		"h_bucket{shard=\"0\",le=\"0.5\"} 2\nh_bucket{shard=\"0\",le=\"+Inf\"} 4\n" +
		"h_sum{shard=\"0\"} 1.5\nh_count{shard=\"0\"} 4\n" +
		"h_bucket{shard=\"1\",le=\"+Inf\"} 0\nh_sum{shard=\"1\"} 0\nh_count{shard=\"1\"} 0\n"
	exp, err := ParseExposition([]byte(in))
	if err != nil {
		t.Fatalf("ParseExposition: %v", err)
	}
	if len(exp.Samples) != 8 {
		t.Errorf("samples = %d, want 8", len(exp.Samples))
	}
	if got := exp.Samples[0].Labels["path"]; got != "with \"quotes\" and \\ and \n" {
		t.Errorf("unescaped label = %q", got)
	}
	if err := Validate([]byte(in), "a", "h"); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if err := Validate([]byte(in), "missing"); err == nil {
		t.Error("Validate should fail on absent required family")
	}
}

func TestBucketUpper(t *testing.T) {
	for _, tc := range []struct {
		b    int
		want int64
	}{
		{0, 0}, {1, 1}, {2, 3}, {10, 1023}, {63, math.MaxInt64}, {70, math.MaxInt64},
	} {
		if got := bucketUpper(tc.b); got != tc.want {
			t.Errorf("bucketUpper(%d) = %d, want %d", tc.b, got, tc.want)
		}
	}
}

func mustRead(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return data
}
