// Package metrics is the wall-clock observability layer of the runtime:
// lock-free counters, gauges, and log-bucket histograms that measure where
// HOST time goes — worker busy/idle, batch-claim latency, per-stage wall
// clock, journal-flush cost — plus Go runtime telemetry sampled through
// runtime/metrics.
//
// It is the real-time twin of internal/obs: obs records the *virtual*
// clock (deterministic, part of every report), metrics records the *wall*
// clock (host-dependent, never part of any report). The contract is
// strict: metrics are a side channel. Nothing in this package feeds back
// into the data plane — enabling or disabling metrics must leave every
// virtual-time report, trace, and golden file bit-identical (enforced by
// TestMetricsSideChannelDeterminism at the repo root).
//
// Hot-path design: instrumentation sites hold package-level handles (no
// map lookups, no interface boxing), every mutation is a single atomic
// op, and all timing is gated on one atomic enabled flag — Clock()
// returns -1 when metrics are off, and every Observe*/Add* helper treats
// a negative start as "skip". Steady-state recording allocates nothing
// (enforced by TestMapZeroAllocWithMetrics in internal/parallel).
package metrics

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// enabled gates all wall-clock measurement. Off by default: library users
// and the deterministic test suite pay one atomic load per site.
var enabled atomic.Bool

// Enable turns wall-clock metric collection on and publishes the expvar
// export (once). Safe to call multiple times and from any goroutine.
func Enable() {
	enabled.Store(true)
	publishExpvarOnce()
}

// Disable turns collection off. Recorded values are kept (snapshots still
// export them); new observations are skipped.
func Disable() { enabled.Store(false) }

// Enabled reports whether collection is on.
func Enabled() bool { return enabled.Load() }

// clockBase anchors the monotonic clock. time.Since on a time.Time that
// carries a monotonic reading never observes wall-clock jumps.
var clockBase = time.Now()

// Clock returns nanoseconds on the host's monotonic clock, or -1 when
// metrics are disabled. Instrumentation sites capture a start with Clock
// and hand it to ObserveSince/AddSince; the -1 sentinel rides through so
// a disabled run performs no further clock reads.
func Clock() int64 {
	if !enabled.Load() {
		return -1
	}
	return int64(time.Since(clockBase))
}

// counterShards is the number of independently-padded accumulation slots a
// Counter spreads concurrent writers across. Power of two; slot selection
// is a mask, not a division.
const counterShards = 16

// paddedInt64 keeps each shard on its own cache line so concurrent
// workers do not false-share.
type paddedInt64 struct {
	v atomic.Int64
	_ [7]int64
}

// Counter is a monotonically increasing, lock-free sharded counter.
// Build with NewCounter/NewSecondsCounter; the zero value works but is
// not registered for export.
type Counter struct {
	shards [counterShards]paddedInt64
}

// Add increments the counter on slot 0 — for single-writer call sites
// (the sequential commit path).
func (c *Counter) Add(n int64) { c.shards[0].v.Add(n) }

// AddAt increments the counter on the slot for the given worker id, so N
// pool workers accumulate without bouncing one cache line.
func (c *Counter) AddAt(slot int, n int64) {
	c.shards[slot&(counterShards-1)].v.Add(n)
}

// AddSince accumulates the elapsed monotonic time since start (a Clock()
// result) on the given slot. A negative start — metrics were off at
// capture time — or metrics being off now skips the add.
func (c *Counter) AddSince(slot int, start int64) {
	if start < 0 {
		return
	}
	if now := Clock(); now >= 0 {
		c.AddAt(slot, now-start)
	}
}

// Value returns the summed count across shards.
func (c *Counter) Value() int64 {
	var sum int64
	for i := range c.shards {
		sum += c.shards[i].v.Load()
	}
	return sum
}

// Gauge is an instantaneous value (heap bytes, goroutines). Lock-free.
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the gauge by n.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBuckets mirrors sim.Histogram's log-bucket layout: bucket b holds
// values whose bit length is b (bucket 0 holds exactly zero), covering
// [0, 2^63) with power-of-two resolution.
const histBuckets = 64

// Histogram is a lock-free log-bucket histogram of nanosecond durations
// (or raw values, for size distributions). Unlike sim.Histogram it is
// safe for concurrent use: bucket counts, n, and sum are atomic adds;
// min/max converge by CAS. Build with NewSecondsHistogram or
// NewValueHistogram.
type Histogram struct {
	counts [histBuckets]atomic.Int64
	n      atomic.Int64
	sum    atomic.Int64
	min    atomic.Int64 // initialized to MaxInt64 by the constructors
	max    atomic.Int64
}

// Observe records one sample. Negative values clamp to zero. Safe for
// concurrent use; allocation-free.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bits.Len64(uint64(v))].Add(1)
	h.n.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// ObserveSince records the elapsed monotonic time since start (a Clock()
// result). A negative start — metrics were off at capture time — or
// metrics being off now skips the observation entirely.
func (h *Histogram) ObserveSince(start int64) {
	if start < 0 {
		return
	}
	if now := Clock(); now >= 0 {
		h.Observe(now - start)
	}
}

// N returns the sample count.
func (h *Histogram) N() int64 { return h.n.Load() }

// Sum returns the sample sum (nanoseconds for duration histograms).
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// snapshot copies the histogram's state at one moment. Buckets are read
// without a global lock, so a snapshot taken during concurrent writes may
// be mid-update by one sample; exposition tolerates that (counts are
// monotone and the sum is reported separately).
func (h *Histogram) snapshot() (counts [histBuckets]int64, n, sum, min, max int64) {
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	n = h.n.Load()
	sum = h.sum.Load()
	min = h.min.Load()
	max = h.max.Load()
	if n == 0 {
		min = 0
	}
	return
}

// metricKind is the Prometheus type of a family.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one labeled instance within a family.
type series struct {
	labels string // pre-rendered {a="b",c="d"} block, or ""
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family is one exported metric name: HELP + TYPE + its labeled series.
type family struct {
	name   string
	help   string
	kind   metricKind
	scale  float64 // multiplier applied at export (1e-9 turns stored ns into seconds)
	series []*series
}

// registry holds every registered family in registration order, which
// fixes the exposition order (deterministic output for tests and diffs).
var registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// renderLabels turns ("subsystem","core","stage","chunk") into
// `{subsystem="core",stage="chunk"}`. Pairs must be complete.
func renderLabels(pairs []string) string {
	if len(pairs) == 0 {
		return ""
	}
	if len(pairs)%2 != 0 {
		panic("metrics: label pairs must be key,value,...")
	}
	s := "{"
	for i := 0; i < len(pairs); i += 2 {
		if i > 0 {
			s += ","
		}
		s += pairs[i] + `="` + pairs[i+1] + `"`
	}
	return s + "}"
}

// register files one series under its family, creating the family on
// first use. Panics on a (name, labels) collision or a kind mismatch —
// both are programming errors in this package's handle table.
func register(name, help string, kind metricKind, scale float64, s *series, labelPairs []string) {
	s.labels = renderLabels(labelPairs)
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if registry.byName == nil {
		registry.byName = make(map[string]*family)
	}
	f := registry.byName[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, scale: scale}
		registry.byName[name] = f
		registry.families = append(registry.families, f)
	}
	if f.kind != kind {
		panic(fmt.Sprintf("metrics: %s registered as %s and %s", name, f.kind, kind))
	}
	for _, prev := range f.series {
		if prev.labels == s.labels {
			panic(fmt.Sprintf("metrics: duplicate series %s%s", name, s.labels))
		}
	}
	f.series = append(f.series, s)
}

// NewCounter registers a raw-valued counter series.
func NewCounter(name, help string, labelPairs ...string) *Counter {
	c := &Counter{}
	register(name, help, kindCounter, 1, &series{c: c}, labelPairs)
	return c
}

// NewSecondsCounter registers a counter that accumulates nanoseconds and
// exports seconds (Prometheus base-unit convention).
func NewSecondsCounter(name, help string, labelPairs ...string) *Counter {
	c := &Counter{}
	register(name, help, kindCounter, 1e-9, &series{c: c}, labelPairs)
	return c
}

// NewGauge registers a raw-valued gauge series.
func NewGauge(name, help string, labelPairs ...string) *Gauge {
	g := &Gauge{}
	register(name, help, kindGauge, 1, &series{g: g}, labelPairs)
	return g
}

// NewSecondsGauge registers a gauge that stores nanoseconds and exports
// seconds.
func NewSecondsGauge(name, help string, labelPairs ...string) *Gauge {
	g := &Gauge{}
	register(name, help, kindGauge, 1e-9, &series{g: g}, labelPairs)
	return g
}

func newHistogram(name, help string, scale float64, labelPairs []string) *Histogram {
	h := &Histogram{}
	h.min.Store(int64(1<<63 - 1))
	register(name, help, kindHistogram, scale, &series{h: h}, labelPairs)
	return h
}

// NewSecondsHistogram registers a duration histogram: samples are
// nanoseconds, exposition buckets and sums are seconds.
func NewSecondsHistogram(name, help string, labelPairs ...string) *Histogram {
	return newHistogram(name, help, 1e-9, labelPairs)
}

// NewValueHistogram registers a raw-valued histogram (batch sizes).
func NewValueHistogram(name, help string, labelPairs ...string) *Histogram {
	return newHistogram(name, help, 1, labelPairs)
}

// families returns a stable copy of the registered family list.
func familiesSnapshot() []*family {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	out := make([]*family, len(registry.families))
	copy(out, registry.families)
	return out
}

// SeriesValue looks a registered series up by family name and rendered
// label block (pass label pairs as in registration; "" labels match the
// unlabeled series) and returns its raw value: counter/gauge value, or
// histogram sample count. For tests and summaries.
func SeriesValue(name string, labelPairs ...string) (int64, bool) {
	want := renderLabels(labelPairs)
	registry.mu.Lock()
	f := registry.byName[name]
	registry.mu.Unlock()
	if f == nil {
		return 0, false
	}
	for _, s := range f.series {
		if s.labels != want {
			continue
		}
		switch {
		case s.c != nil:
			return s.c.Value(), true
		case s.g != nil:
			return s.g.Value(), true
		case s.h != nil:
			return s.h.N(), true
		}
	}
	return 0, false
}

// Names returns all registered family names, sorted, for tests.
func Names() []string {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	out := make([]string, 0, len(registry.families))
	for _, f := range registry.families {
		out = append(out, f.name)
	}
	sort.Strings(out)
	return out
}
