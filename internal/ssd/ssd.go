// Package ssd simulates the SSD that the data reduction pipeline destages
// to, and that every figure in the paper uses as its baseline comparator
// ("the throughput of the SSD", a Samsung SSD 830 in the paper's testbed).
//
// The model is a multi-channel NAND device behind a page-mapped FTL:
//
//   - Each channel is an independent sim.Pool(1); page reads, programs, and
//     erases occupy the channel for their configured latency, so aggregate
//     random-write IOPS ≈ channels / program latency. The defaults give the
//     ~80 K 4 KB-write IOPS the paper quotes for its SSD.
//   - Host writes are striped across channels round-robin.
//   - Overwrites invalidate the old physical page; when a channel runs low
//     on free blocks, greedy garbage collection migrates the valid pages of
//     the emptiest block and erases it, charging the channel for every
//     migration read/program and the erase. Write amplification and wear
//     (per-block erase counts) fall out of this for real, which is what the
//     endurance experiment (E7) measures.
//
// The drive tracks timing and accounting only; chunk payloads stay in host
// memory (the pipeline verifies data integrity itself).
package ssd

import (
	"fmt"
	"time"

	"inlinered/internal/fault"
	"inlinered/internal/obs"
	"inlinered/internal/sim"
)

// Config describes a simulated SSD.
type Config struct {
	Name             string
	Channels         int           // independent NAND channels
	PageSize         int           // bytes per page
	PagesPerBlock    int           // pages per erase block
	BlocksPerChannel int           // physical blocks per channel
	ReadLatency      time.Duration // page read (load + transfer)
	ProgramLatency   time.Duration // page program
	EraseLatency     time.Duration // block erase
	OverProvision    float64       // fraction of physical space hidden from the host
	GCFreeBlocks     int           // per-channel free-block low watermark that triggers GC
}

// DefaultConfig returns a drive calibrated to the paper's SSD 830-class
// baseline: 8 channels at 100 µs page program = 80 K 4 KB-write IOPS and
// 320 MB/s of write bandwidth.
func DefaultConfig() Config {
	return Config{
		Name:             "SSD-830-class (8ch, 80K IOPS)",
		Channels:         8,
		PageSize:         4096,
		PagesPerBlock:    128,
		BlocksPerChannel: 1024,
		ReadLatency:      60 * time.Microsecond,
		ProgramLatency:   100 * time.Microsecond,
		EraseLatency:     2 * time.Millisecond,
		OverProvision:    0.07,
		GCFreeBlocks:     4,
	}
}

// Stats holds cumulative drive accounting.
type Stats struct {
	HostWritePages int64 `json:"host_write_pages"` // pages written on behalf of the host
	HostReadPages  int64 `json:"host_read_pages"`  // pages read on behalf of the host
	NANDWritePages int64 `json:"nand_write_pages"` // pages programmed, including GC migration
	NANDReadPages  int64 `json:"nand_read_pages"`  // pages read, including GC migration
	Erases         int64 `json:"erases"`           // blocks erased
	GCRuns         int64 `json:"gc_runs"`          // garbage collection invocations
	TrimmedPages   int64 `json:"trimmed_pages"`    // pages invalidated via Trim

	// Injected-fault accounting (zero unless a fault injector is set).
	WriteFaults   int64 `json:"write_faults"`   // host writes rejected by an injected error
	ReadFaults    int64 `json:"read_faults"`    // host reads rejected by an injected error
	LatencySpikes int64 `json:"latency_spikes"` // host requests delayed by an injected spike
}

// WriteAmplification reports NAND programs per host program, or 0 before
// any host write.
func (s Stats) WriteAmplification() float64 {
	if s.HostWritePages == 0 {
		return 0
	}
	return float64(s.NANDWritePages) / float64(s.HostWritePages)
}

type ppn struct {
	ch, blk, page int32
}

type block struct {
	state    []pageState
	valid    int
	erases   int
	nextFree int
}

type pageState struct {
	lpn   int64 // logical page mapped here, -1 if none
	valid bool
}

type channel struct {
	pool       *sim.Pool
	blocks     []block
	free       []int // erased block ids
	active     int   // currently open block, -1 if none
	gcInFlight bool
}

// Drive is a simulated SSD. It is not safe for concurrent use.
type Drive struct {
	Config
	chans       []*channel
	next        int           // round-robin write channel
	l2p         map[int64]ppn // logical page -> physical page
	stats       Stats
	faults      *fault.Injector
	rec         *obs.Recorder
	chLanes     []obs.Lane // one trace lane per NAND channel
	journalBase int64      // first journal-region page, -1 when unset
}

// New returns a Drive for cfg. It panics on nonsensical configurations.
func New(cfg Config) *Drive {
	switch {
	case cfg.Channels < 1:
		panic(fmt.Sprintf("ssd: need >=1 channel, got %d", cfg.Channels))
	case cfg.PageSize < 1:
		panic(fmt.Sprintf("ssd: need positive page size, got %d", cfg.PageSize))
	case cfg.PagesPerBlock < 1 || cfg.BlocksPerChannel < 2:
		panic("ssd: need >=1 page/block and >=2 blocks/channel")
	case cfg.OverProvision < 0 || cfg.OverProvision >= 1:
		panic(fmt.Sprintf("ssd: over-provision must be in [0,1), got %g", cfg.OverProvision))
	}
	if cfg.GCFreeBlocks < 1 {
		cfg.GCFreeBlocks = 1
	}
	d := &Drive{Config: cfg, l2p: make(map[int64]ppn), journalBase: -1}
	for c := 0; c < cfg.Channels; c++ {
		ch := &channel{
			pool:   sim.NewPool(fmt.Sprintf("ssd:%s:ch%d", cfg.Name, c), 1),
			blocks: make([]block, cfg.BlocksPerChannel),
			active: -1,
		}
		for b := range ch.blocks {
			ch.blocks[b].state = make([]pageState, cfg.PagesPerBlock)
			ch.free = append(ch.free, b)
		}
		d.chans = append(d.chans, ch)
	}
	return d
}

// SetFaultInjector threads a deterministic fault injector through the
// drive's host-facing requests: writes may fail with transient or
// permanent errors, reads may fail transiently, and either may be
// delayed by a latency spike on the virtual clock. Internal FTL traffic
// (GC migration) is not subject to injection — the request-level fault
// is the unit callers retry. A nil injector disables injection.
func (d *Drive) SetFaultInjector(fi *fault.Injector) { d.faults = fi }

// SetRecorder attaches an observability recorder and registers one trace
// lane per NAND channel. Recording stamps every page program, read, GC
// migration, and erase in virtual time; a nil recorder leaves the drive
// exactly as fast and exactly as deterministic as before.
func (d *Drive) SetRecorder(r *obs.Recorder) {
	d.rec = r
	if r == nil {
		d.chLanes = nil
		return
	}
	d.chLanes = make([]obs.Lane, len(d.chans))
	for c := range d.chans {
		d.chLanes[c] = r.Lane("ssd", fmt.Sprintf("ch%d", c))
	}
}

// MarkJournalRegion tells the drive that logical pages >= firstPage belong
// to the dedup journal, so journal programs get their own span name in the
// trace ("journal" vs "program") and the §4 host-I/O-vs-journal competition
// on the channels is visible. A negative firstPage clears the region.
func (d *Drive) MarkJournalRegion(firstPage int64) { d.journalBase = firstPage }

// lane returns the trace lane for channel ci, or the inert zero Lane when
// no recorder is attached.
func (d *Drive) lane(ci int) obs.Lane {
	if ci < len(d.chLanes) {
		return d.chLanes[ci]
	}
	return obs.Lane{}
}

// PhysicalPages returns the drive's raw page count.
func (d *Drive) PhysicalPages() int64 {
	return int64(d.Channels) * int64(d.BlocksPerChannel) * int64(d.PagesPerBlock)
}

// LogicalPages returns the host-visible page count (after over-provisioning).
func (d *Drive) LogicalPages() int64 {
	return int64(float64(d.PhysicalPages()) * (1 - d.OverProvision))
}

// Pages converts a byte count into the number of pages it occupies.
func (d *Drive) Pages(bytes int) int {
	if bytes <= 0 {
		return 0
	}
	return (bytes + d.PageSize - 1) / d.PageSize
}

// NominalWriteIOPS returns the drive's small-write throughput ceiling
// (channels / program latency). This is the "SSD throughput" line the
// paper's evaluation compares every scheme against.
func (d *Drive) NominalWriteIOPS() float64 {
	return float64(d.Channels) / d.ProgramLatency.Seconds()
}

// NominalWriteBandwidth returns NominalWriteIOPS × page size in bytes/s.
func (d *Drive) NominalWriteBandwidth() float64 {
	return d.NominalWriteIOPS() * float64(d.PageSize)
}

// Write programs n consecutive logical pages starting at lpn, with the
// request arriving at virtual time at. It returns the completion time of
// the last page. Pages stripe across channels; overwrites invalidate the
// previous mapping.
func (d *Drive) Write(at time.Duration, lpn int64, n int) (time.Duration, error) {
	if lpn < 0 || lpn+int64(n) > d.LogicalPages() {
		return at, fmt.Errorf("ssd: write [%d,%d) outside logical space of %d pages", lpn, lpn+int64(n), d.LogicalPages())
	}
	// Fault injection is per host request: a failed request programs
	// nothing (the controller rejected it), so a retry re-issues it whole.
	if err := d.faults.WriteError(); err != nil {
		d.stats.WriteFaults++
		d.rec.Instant(d.lane(d.next), "write-error", at)
		return at, fmt.Errorf("ssd: write [%d,%d): %w", lpn, lpn+int64(n), err)
	}
	if spike := d.faults.Latency(); spike > 0 {
		d.stats.LatencySpikes++
		at += spike
	}
	end := at
	for i := 0; i < n; i++ {
		e, err := d.writePage(at, lpn+int64(i))
		if err != nil {
			return end, err
		}
		end = sim.MaxTime(end, e)
	}
	return end, nil
}

// WriteBytes programs enough pages at lpn to hold n bytes.
func (d *Drive) WriteBytes(at time.Duration, lpn int64, n int) (time.Duration, error) {
	return d.Write(at, lpn, d.Pages(n))
}

// Read fetches n consecutive logical pages starting at lpn. Unmapped pages
// cost a read anyway (the host interface returns zeros). Injected read
// faults fail the whole request before any page is fetched.
func (d *Drive) Read(at time.Duration, lpn int64, n int) (time.Duration, error) {
	if err := d.faults.ReadError(); err != nil {
		d.stats.ReadFaults++
		d.rec.Instant(d.lane(d.chanFor(lpn)), "read-error", at)
		return at, fmt.Errorf("ssd: read [%d,%d): %w", lpn, lpn+int64(n), err)
	}
	if spike := d.faults.Latency(); spike > 0 {
		d.stats.LatencySpikes++
		at += spike
	}
	end := at
	for i := 0; i < n; i++ {
		ci := d.chanFor(lpn + int64(i))
		ch := d.chans[ci]
		s, e := ch.pool.Acquire(at, d.ReadLatency)
		d.rec.Span(d.lane(ci), "read", s, e)
		d.stats.NANDReadPages++
		d.stats.HostReadPages++
		end = sim.MaxTime(end, e)
	}
	return end, nil
}

// Trim invalidates n logical pages starting at lpn (no NAND time; FTL
// metadata only).
func (d *Drive) Trim(lpn int64, n int) {
	for i := 0; i < n; i++ {
		if p, ok := d.l2p[lpn+int64(i)]; ok {
			d.invalidate(p)
			delete(d.l2p, lpn+int64(i))
			d.stats.TrimmedPages++
		}
	}
}

// Stats returns cumulative accounting.
func (d *Drive) Stats() Stats { return d.stats }

// MaxErase returns the highest per-block erase count (wear hot spot).
func (d *Drive) MaxErase() int {
	max := 0
	for _, ch := range d.chans {
		for b := range ch.blocks {
			if ch.blocks[b].erases > max {
				max = ch.blocks[b].erases
			}
		}
	}
	return max
}

// Utilization reports mean channel occupancy over [0, until].
func (d *Drive) Utilization(until time.Duration) float64 {
	if until <= 0 {
		return 0
	}
	var u float64
	for _, ch := range d.chans {
		u += ch.pool.Utilization(until)
	}
	return u / float64(len(d.chans))
}

// Horizon returns the latest scheduled completion across all channels.
func (d *Drive) Horizon() time.Duration {
	var h time.Duration
	for _, ch := range d.chans {
		h = sim.MaxTime(h, ch.pool.Horizon())
	}
	return h
}

func (d *Drive) chanFor(lpn int64) int {
	if p, ok := d.l2p[lpn]; ok {
		return int(p.ch)
	}
	return int(lpn % int64(d.Channels))
}

func (d *Drive) writePage(at time.Duration, lpn int64) (time.Duration, error) {
	if old, ok := d.l2p[lpn]; ok {
		d.invalidate(old)
	}
	ci := d.next
	d.next = (d.next + 1) % d.Channels
	ch := d.chans[ci]

	end, err := d.program(at, ci, ch, lpn, true)
	if err != nil {
		return at, err
	}
	return end, nil
}

// program writes lpn (or a GC migration when host=false) into channel ci's
// active block, opening a new block and running GC as needed.
func (d *Drive) program(at time.Duration, ci int, ch *channel, lpn int64, host bool) (time.Duration, error) {
	blk, page, err := d.allocPage(at, ci, ch)
	if err != nil {
		return at, err
	}
	start, end := ch.pool.Acquire(at, d.ProgramLatency)
	if d.rec != nil {
		name := "gc-program"
		if host {
			name = "program"
			if d.journalBase >= 0 && lpn >= d.journalBase {
				name = "journal"
			}
		}
		d.rec.Span(d.lane(ci), name, start, end)
	}
	b := &ch.blocks[blk]
	b.state[page] = pageState{lpn: lpn, valid: true}
	b.valid++
	d.l2p[lpn] = ppn{ch: int32(ci), blk: int32(blk), page: int32(page)}
	d.stats.NANDWritePages++
	if host {
		d.stats.HostWritePages++
	}
	return end, nil
}

func (d *Drive) allocPage(at time.Duration, ci int, ch *channel) (blk, page int, err error) {
	if ch.active >= 0 && ch.blocks[ch.active].nextFree < d.PagesPerBlock {
		b := ch.active
		p := ch.blocks[b].nextFree
		ch.blocks[b].nextFree++
		return b, p, nil
	}
	// Need a fresh block; reclaim space first if we are at the watermark.
	if len(ch.free) <= d.GCFreeBlocks && !ch.gcInFlight {
		d.collect(at, ci, ch)
	}
	if len(ch.free) == 0 {
		return 0, 0, fmt.Errorf("ssd: channel %d out of free blocks (drive full)", ci)
	}
	b := ch.free[len(ch.free)-1]
	ch.free = ch.free[:len(ch.free)-1]
	ch.active = b
	ch.blocks[b].nextFree = 1
	return b, 0, nil
}

// collect runs greedy GC on one channel until it is above the watermark or
// no reclaimable block exists.
func (d *Drive) collect(at time.Duration, ci int, ch *channel) {
	ch.gcInFlight = true
	defer func() { ch.gcInFlight = false }()
	d.stats.GCRuns++
	for len(ch.free) <= d.GCFreeBlocks {
		victim := d.pickVictim(ch)
		if victim < 0 {
			return
		}
		vb := &ch.blocks[victim]
		// Migrate valid pages: read + program each into the active block.
		for p := 0; p < vb.nextFree; p++ {
			st := vb.state[p]
			if !st.valid {
				continue
			}
			rs, re := ch.pool.Acquire(at, d.ReadLatency)
			d.rec.Span(d.lane(ci), "gc-read", rs, re)
			d.stats.NANDReadPages++
			vb.state[p].valid = false
			vb.valid--
			if _, err := d.program(at, ci, ch, st.lpn, false); err != nil {
				return
			}
		}
		es, ee := ch.pool.Acquire(at, d.EraseLatency)
		d.rec.Span(d.lane(ci), "erase", es, ee)
		d.stats.Erases++
		vb.erases++
		vb.nextFree = 0
		vb.valid = 0
		for p := range vb.state {
			vb.state[p] = pageState{}
		}
		ch.free = append(ch.free, victim)
	}
}

// pickVictim returns the fullest-written, least-valid block that is neither
// free nor active, or -1 if none would free space.
func (d *Drive) pickVictim(ch *channel) int {
	best, bestValid := -1, d.PagesPerBlock+1
	isFree := make(map[int]bool, len(ch.free))
	for _, f := range ch.free {
		isFree[f] = true
	}
	for b := range ch.blocks {
		if b == ch.active || isFree[b] {
			continue
		}
		blk := &ch.blocks[b]
		if blk.nextFree == 0 {
			continue // never written
		}
		// Erasing a fully valid block frees nothing; skip.
		if blk.valid >= blk.nextFree && blk.nextFree == d.PagesPerBlock {
			continue
		}
		if blk.valid < bestValid {
			best, bestValid = b, blk.valid
		}
	}
	return best
}

func (d *Drive) invalidate(p ppn) {
	b := &d.chans[p.ch].blocks[p.blk]
	if b.state[p.page].valid {
		b.state[p.page].valid = false
		b.valid--
	}
}
