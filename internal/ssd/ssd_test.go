package ssd

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"inlinered/internal/fault"
)

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Channels = 2
	cfg.PagesPerBlock = 8
	cfg.BlocksPerChannel = 16
	cfg.OverProvision = 0.25
	cfg.GCFreeBlocks = 2
	return cfg
}

func TestNominalRates(t *testing.T) {
	d := New(DefaultConfig())
	if got := d.NominalWriteIOPS(); got != 80_000 {
		t.Fatalf("nominal IOPS: got %g, want 80000", got)
	}
	if got := d.NominalWriteBandwidth(); got != 80_000*4096 {
		t.Fatalf("nominal bandwidth: got %g", got)
	}
}

func TestPagesRounding(t *testing.T) {
	d := New(DefaultConfig())
	cases := []struct{ bytes, want int }{
		{0, 0}, {-3, 0}, {1, 1}, {4096, 1}, {4097, 2}, {8192, 2},
	}
	for _, c := range cases {
		if got := d.Pages(c.bytes); got != c.want {
			t.Errorf("Pages(%d) = %d, want %d", c.bytes, got, c.want)
		}
	}
}

func TestWriteStripesAcrossChannels(t *testing.T) {
	d := New(smallConfig())
	// Two pages, two channels: both complete after one program latency.
	end, err := d.Write(0, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if end != d.ProgramLatency {
		t.Fatalf("2 pages on 2 channels: got %v, want %v", end, d.ProgramLatency)
	}
	// Four pages: two waves.
	d2 := New(smallConfig())
	end, err = d2.Write(0, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if end != 2*d.ProgramLatency {
		t.Fatalf("4 pages on 2 channels: got %v, want %v", end, 2*d.ProgramLatency)
	}
}

func TestWriteBeyondLogicalSpace(t *testing.T) {
	d := New(smallConfig())
	if _, err := d.Write(0, d.LogicalPages(), 1); err == nil {
		t.Fatal("write past logical space should error")
	}
	if _, err := d.Write(0, -1, 1); err == nil {
		t.Fatal("negative lpn should error")
	}
}

func TestOverwriteInvalidates(t *testing.T) {
	d := New(smallConfig())
	if _, err := d.Write(0, 7, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Write(0, 7, 1); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.HostWritePages != 2 || st.NANDWritePages != 2 {
		t.Fatalf("stats after overwrite: %+v", st)
	}
	// Exactly one valid mapping should remain.
	valid := 0
	for _, ch := range d.chans {
		for b := range ch.blocks {
			valid += ch.blocks[b].valid
		}
	}
	if valid != 1 {
		t.Fatalf("valid pages after overwrite: got %d, want 1", valid)
	}
}

func TestTrim(t *testing.T) {
	d := New(smallConfig())
	if _, err := d.Write(0, 0, 4); err != nil {
		t.Fatal(err)
	}
	d.Trim(0, 4)
	if got := d.Stats().TrimmedPages; got != 4 {
		t.Fatalf("trimmed: got %d, want 4", got)
	}
	d.Trim(100, 2) // unmapped: no-op
	if got := d.Stats().TrimmedPages; got != 4 {
		t.Fatalf("trim of unmapped pages should not count: got %d", got)
	}
}

func TestReadChargesChannels(t *testing.T) {
	d := New(smallConfig())
	d.Write(0, 0, 1)
	end, err := d.Read(time.Second, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if end != time.Second+d.ReadLatency {
		t.Fatalf("read end: got %v", end)
	}
	if d.Stats().HostReadPages != 1 {
		t.Fatalf("read accounting: %+v", d.Stats())
	}
}

func TestGCProducesWriteAmplification(t *testing.T) {
	d := New(smallConfig())
	logical := d.LogicalPages()
	rng := rand.New(rand.NewSource(1))
	// Random overwrites over the whole logical space, several drive-fills.
	var at time.Duration
	for i := int64(0); i < 6*logical; i++ {
		lpn := rng.Int63n(logical)
		if _, err := d.Write(at, lpn, 1); err != nil {
			t.Fatalf("write %d failed: %v", i, err)
		}
	}
	st := d.Stats()
	if st.GCRuns == 0 || st.Erases == 0 {
		t.Fatalf("expected GC activity: %+v", st)
	}
	wa := st.WriteAmplification()
	if wa <= 1.0 {
		t.Fatalf("random overwrite must amplify writes: WA=%g", wa)
	}
	if wa > 10 {
		t.Fatalf("implausible write amplification: WA=%g", wa)
	}
	if d.MaxErase() == 0 {
		t.Fatal("wear accounting should record erases")
	}
}

func TestSequentialWriteLowAmplification(t *testing.T) {
	// Sequential whole-space rewrites invalidate whole blocks at a time, so
	// GC finds empty victims and WA stays ~1.
	d := New(smallConfig())
	logical := d.LogicalPages()
	for pass := 0; pass < 6; pass++ {
		for lpn := int64(0); lpn < logical; lpn++ {
			if _, err := d.Write(0, lpn, 1); err != nil {
				t.Fatalf("pass %d lpn %d: %v", pass, lpn, err)
			}
		}
	}
	wa := d.Stats().WriteAmplification()
	if wa > 1.1 {
		t.Fatalf("sequential rewrite WA should stay near 1, got %g", wa)
	}
}

func TestSequentialBeatsRandomWA(t *testing.T) {
	run := func(random bool) float64 {
		d := New(smallConfig())
		logical := d.LogicalPages()
		rng := rand.New(rand.NewSource(9))
		for i := int64(0); i < 5*logical; i++ {
			lpn := i % logical
			if random {
				lpn = rng.Int63n(logical)
			}
			if _, err := d.Write(0, lpn, 1); err != nil {
				panic(err)
			}
		}
		return d.Stats().WriteAmplification()
	}
	seq, rnd := run(false), run(true)
	if seq >= rnd {
		t.Fatalf("sequential WA (%g) should beat random WA (%g)", seq, rnd)
	}
}

func TestWriteAmplificationZeroBeforeWrites(t *testing.T) {
	if (Stats{}).WriteAmplification() != 0 {
		t.Fatal("WA before any write should be 0")
	}
}

func TestUtilizationAndHorizon(t *testing.T) {
	d := New(smallConfig())
	end, _ := d.Write(0, 0, 2)
	if d.Horizon() != end {
		t.Fatalf("horizon: got %v, want %v", d.Horizon(), end)
	}
	if u := d.Utilization(end); u <= 0 || u > 1 {
		t.Fatalf("utilization out of range: %g", u)
	}
	if d.Utilization(0) != 0 {
		t.Fatal("utilization over empty window should be 0")
	}
}

func TestNewValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Channels = 0 },
		func(c *Config) { c.PageSize = 0 },
		func(c *Config) { c.BlocksPerChannel = 1 },
		func(c *Config) { c.OverProvision = 1.5 },
	}
	for i, mut := range bad {
		cfg := smallConfig()
		mut(&cfg)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: New should panic", i)
				}
			}()
			New(cfg)
		}()
	}
}

// Mapping invariant: after arbitrary writes and trims, every l2p entry
// points at a valid physical page whose recorded lpn matches, and the
// number of valid pages equals the number of mappings.
func TestMappingInvariant(t *testing.T) {
	d := New(smallConfig())
	logical := d.LogicalPages()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 4000; i++ {
		lpn := rng.Int63n(logical)
		if rng.Intn(10) == 0 {
			d.Trim(lpn, 1)
			continue
		}
		if _, err := d.Write(0, lpn, 1); err != nil {
			t.Fatal(err)
		}
	}
	valid := 0
	for _, ch := range d.chans {
		for b := range ch.blocks {
			for p, st := range ch.blocks[b].state {
				if !st.valid {
					continue
				}
				valid++
				m, ok := d.l2p[st.lpn]
				if !ok {
					t.Fatalf("valid page for lpn %d has no mapping", st.lpn)
				}
				if int(m.blk) != b || int(m.page) != p {
					t.Fatalf("mapping for lpn %d points elsewhere", st.lpn)
				}
			}
		}
	}
	if valid != len(d.l2p) {
		t.Fatalf("valid pages (%d) != mappings (%d)", valid, len(d.l2p))
	}
}

// --- fault injection ---

func TestInjectedWriteFaults(t *testing.T) {
	d := New(smallConfig())
	d.SetFaultInjector(fault.New(fault.Config{
		Seed:  1,
		Rates: fault.Rates{SSDWriteTransient: 1},
	}))
	_, err := d.Write(0, 0, 1)
	if err == nil || !fault.IsTransient(err) {
		t.Fatalf("want transient write fault, got %v", err)
	}
	st := d.Stats()
	if st.WriteFaults != 1 {
		t.Fatalf("WriteFaults = %d, want 1", st.WriteFaults)
	}
	if st.HostWritePages != 0 || st.NANDWritePages != 0 {
		t.Fatalf("failed write must program nothing: %+v", st)
	}
}

func TestInjectedPermanentWriteFault(t *testing.T) {
	d := New(smallConfig())
	d.SetFaultInjector(fault.New(fault.Config{
		Seed:  1,
		Rates: fault.Rates{SSDWritePermanent: 1},
	}))
	_, err := d.Write(0, 0, 1)
	if err == nil || !errors.Is(err, fault.ErrPermanent) {
		t.Fatalf("want permanent write fault, got %v", err)
	}
	if fault.IsTransient(err) {
		t.Fatal("permanent fault must not classify as transient")
	}
}

func TestInjectedReadFaults(t *testing.T) {
	d := New(smallConfig())
	if _, err := d.Write(0, 0, 1); err != nil {
		t.Fatal(err)
	}
	d.SetFaultInjector(fault.New(fault.Config{
		Seed:  2,
		Rates: fault.Rates{SSDReadTransient: 1},
	}))
	before := d.Stats().HostReadPages
	_, err := d.Read(0, 0, 1)
	if err == nil || !fault.IsTransient(err) {
		t.Fatalf("want transient read fault, got %v", err)
	}
	st := d.Stats()
	if st.ReadFaults != 1 {
		t.Fatalf("ReadFaults = %d, want 1", st.ReadFaults)
	}
	if st.HostReadPages != before {
		t.Fatal("failed read must fetch nothing")
	}
}

func TestInjectedLatencySpike(t *testing.T) {
	d := New(smallConfig())
	d.SetFaultInjector(fault.New(fault.Config{
		Seed:         3,
		Rates:        fault.Rates{SSDLatencySpike: 1},
		SpikeLatency: time.Millisecond,
	}))
	end, err := d.Write(0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if end < time.Millisecond+d.ProgramLatency {
		t.Fatalf("spiked write finished too early: %v", end)
	}
	if end > 4*time.Millisecond+d.ProgramLatency {
		t.Fatalf("spike exceeds 4x base: %v", end)
	}
	if d.Stats().LatencySpikes != 1 {
		t.Fatalf("LatencySpikes = %d, want 1", d.Stats().LatencySpikes)
	}
}

// Two drives with the same seed and request sequence make identical fault
// decisions and land on identical completion times and stats.
func TestFaultDeterminism(t *testing.T) {
	run := func() (Stats, time.Duration, int) {
		d := New(smallConfig())
		d.SetFaultInjector(fault.New(fault.Config{
			Seed:  42,
			Rates: fault.Uniform(0.2),
		}))
		var at time.Duration
		failures := 0
		for i := int64(0); i < 200; i++ {
			end, err := d.Write(at, i%d.LogicalPages(), 1)
			if err != nil {
				failures++
				continue
			}
			at = end
		}
		return d.Stats(), at, failures
	}
	s1, t1, f1 := run()
	s2, t2, f2 := run()
	if s1 != s2 || t1 != t2 || f1 != f2 {
		t.Fatalf("same seed diverged:\n%+v %v %d\n%+v %v %d", s1, t1, f1, s2, t2, f2)
	}
	if s1.WriteFaults == 0 || s1.LatencySpikes == 0 {
		t.Fatalf("expected injected activity at rate 0.2: %+v", s1)
	}
}
