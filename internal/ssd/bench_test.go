package ssd

import (
	"math/rand"
	"testing"
)

func BenchmarkSequentialWrite(b *testing.B) {
	d := New(DefaultConfig())
	logical := d.LogicalPages()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Write(0, int64(i)%logical, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRandomOverwrite(b *testing.B) {
	cfg := DefaultConfig()
	cfg.BlocksPerChannel = 64
	d := New(cfg)
	logical := d.LogicalPages()
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Write(0, rng.Int63n(logical), 1); err != nil {
			b.Fatal(err)
		}
	}
}
