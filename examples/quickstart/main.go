// Quickstart: run the inline data reduction pipeline over a small
// synthetic stream on the paper's platform and print the report.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"inlinered"
)

func main() {
	// A 64 MiB stream with the paper's "common primary storage" ratios:
	// half the chunks are duplicates, unique chunks halve under LZSS.
	stream, err := inlinered.NewStream(inlinered.StreamSpec{
		TotalBytes:       64 << 20,
		DedupRatio:       2.0,
		CompressionRatio: 2.0,
		Seed:             1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// GPU-for-compression is the integration the paper's Figure 2 crowns;
	// Verify keeps the stored blobs so we can check data integrity after.
	eng, err := inlinered.NewEngine(inlinered.PaperPlatform(), inlinered.Options{
		Mode:   inlinered.GPUCompress,
		Verify: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	report, err := eng.Process(stream)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(report)

	// Bit-for-bit integrity: every chunk must reconstruct from storage.
	stream.Reset()
	if err := eng.Verify(stream); err != nil {
		log.Fatal("verification failed: ", err)
	}
	fmt.Println("\nverification passed: every chunk reconstructs from the stored, reduced data")
}
