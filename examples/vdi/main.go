// VDI scenario: a virtual-desktop-style primary storage workload — many
// cloned desktop images produce extreme deduplication (most writes repeat
// recently written blocks) on top of ordinarily compressible data. This is
// the workload class the paper's introduction motivates: without inline
// reduction the SSD absorbs every duplicate write.
//
// The example compares the four integration options on the VDI stream and
// shows what inline reduction saves the SSD, then runs the morning boot
// storm: every desktop re-reading the shared golden image at once, served
// through the parallel batch read path.
//
//	go run ./examples/vdi
package main

import (
	"fmt"
	"log"
	"time"

	"inlinered"
)

func main() {
	const totalBytes = 96 << 20

	spec := inlinered.StreamSpec{
		TotalBytes:       totalBytes,
		DedupRatio:       4.0, // clone-heavy: 3 of 4 writes are duplicates
		CompressionRatio: 2.5,
		TemporalLocality: true, // desktops rewrite what they wrote recently
		Seed:             7,
	}

	fmt.Println("VDI workload: dedup 4.0, compression 2.5, recency-biased duplicates")
	fmt.Println()
	fmt.Printf("%-14s %12s %10s %12s %14s\n", "integration", "IOPS", "x SSD", "reduction", "SSD host pages")

	var ssdIOPS float64
	for _, mode := range inlinered.Modes {
		stream, err := inlinered.NewStream(spec)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := inlinered.Run(inlinered.PaperPlatform(), inlinered.Options{Mode: mode}, stream)
		if err != nil {
			log.Fatal(err)
		}
		if ssdIOPS == 0 {
			// The comparator line: what the bare drive sustains.
			ssdIOPS = 80000
		}
		fmt.Printf("%-14s %12.0f %9.2fx %11.2fx %14d\n",
			mode, rep.IOPS, rep.IOPS/ssdIOPS, rep.ReductionRatio, rep.SSD.HostWritePages)
	}

	fmt.Println()
	fmt.Printf("without reduction the drive would absorb %d pages per pass;\n", totalBytes/4096)
	fmt.Println("inline reduction cuts that by the reduction factor — the paper's endurance argument.")

	bootStorm()
}

// bootStorm is the read-side half of the VDI story: the golden image is
// written once (every clone dedups against it), then all desktops boot at
// the same time. Each unique chunk was compressed as 4 independent
// sub-blocks, so the batch read path fans every blob's decode across the
// worker pool — same virtual-time report, less wall-clock time.
func bootStorm() {
	spec := inlinered.DefaultBootStormSpec()
	fill, err := spec.Fill()
	if err != nil {
		log.Fatal(err)
	}
	lbas, err := spec.Storm()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Printf("boot storm: %d desktops x %d reads over one %d-block golden image\n",
		spec.Clients, spec.ReadsPerClient, spec.ImageBlocks)
	fmt.Printf("%-12s %12s %14s %12s\n", "decode", "wall clock", "virtual time", "parts/blob")

	var virt time.Duration
	for _, par := range []int{1, 4} {
		arr, err := inlinered.NewArray(inlinered.BlockDeviceOptions{
			Blocks:      4096,
			Shards:      4,
			SubBlocks:   4,
			Parallelism: par,
		})
		if err != nil {
			log.Fatal(err)
		}
		if _, err := arr.Serve(fill, inlinered.ServeOptions{}); err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		rep, err := arr.ReadBatch(lbas, inlinered.ReadBatchOptions{})
		wall := time.Since(start)
		if err != nil {
			log.Fatal(err)
		}
		arr.Close()
		label := "serial"
		if par > 1 {
			label = fmt.Sprintf("%d workers", par)
		}
		fmt.Printf("%-12s %12s %14s %9.1f\n",
			label, wall.Round(time.Microsecond), rep.Elapsed.Round(time.Microsecond),
			float64(rep.DecodedParts)/float64(rep.DecodedBlobs))
		if virt == 0 {
			virt = rep.Elapsed
		} else if virt != rep.Elapsed {
			log.Fatalf("virtual time diverged across parallelism: %v vs %v", rep.Elapsed, virt)
		}
	}
	fmt.Println()
	fmt.Println("the virtual-time column is identical by construction: parallel decode")
	fmt.Println("changes only how fast the simulation itself runs.")
}
