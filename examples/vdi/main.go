// VDI scenario: a virtual-desktop-style primary storage workload — many
// cloned desktop images produce extreme deduplication (most writes repeat
// recently written blocks) on top of ordinarily compressible data. This is
// the workload class the paper's introduction motivates: without inline
// reduction the SSD absorbs every duplicate write.
//
// The example compares the four integration options on the VDI stream and
// shows what inline reduction saves the SSD.
//
//	go run ./examples/vdi
package main

import (
	"fmt"
	"log"

	"inlinered"
)

func main() {
	const totalBytes = 96 << 20

	spec := inlinered.StreamSpec{
		TotalBytes:       totalBytes,
		DedupRatio:       4.0, // clone-heavy: 3 of 4 writes are duplicates
		CompressionRatio: 2.5,
		TemporalLocality: true, // desktops rewrite what they wrote recently
		Seed:             7,
	}

	fmt.Println("VDI workload: dedup 4.0, compression 2.5, recency-biased duplicates")
	fmt.Println()
	fmt.Printf("%-14s %12s %10s %12s %14s\n", "integration", "IOPS", "x SSD", "reduction", "SSD host pages")

	var ssdIOPS float64
	for _, mode := range inlinered.Modes {
		stream, err := inlinered.NewStream(spec)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := inlinered.Run(inlinered.PaperPlatform(), inlinered.Options{Mode: mode}, stream)
		if err != nil {
			log.Fatal(err)
		}
		if ssdIOPS == 0 {
			// The comparator line: what the bare drive sustains.
			ssdIOPS = 80000
		}
		fmt.Printf("%-14s %12.0f %9.2fx %11.2fx %14d\n",
			mode, rep.IOPS, rep.IOPS/ssdIOPS, rep.ReductionRatio, rep.SSD.HostWritePages)
	}

	fmt.Println()
	fmt.Printf("without reduction the drive would absorb %d pages per pass;\n", totalBytes/4096)
	fmt.Println("inline reduction cuts that by the reduction factor — the paper's endurance argument.")
}
