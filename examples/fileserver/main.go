// File-server scenario: a mixed primary storage workload — moderate
// deduplication, a spread of compressibility classes (documents, media,
// binaries) — processed as a sequence of datasets through one pipeline
// whose index persists across them. Demonstrates per-dataset reporting on
// the public API and how compressibility moves throughput (§4(2)'s
// observation that compression throughput rises with the ratio), then
// replays a small closed-loop burst on the block device to show per-request
// tail latency from the always-on volume histograms, and finally serves a
// multi-client closed-loop mix across a sharded array to show that the
// merged report is identical no matter how many concurrent clients drive
// it on the wall clock.
//
//	go run ./examples/fileserver
package main

import (
	"fmt"
	"log"
	"time"

	"inlinered"
	"inlinered/internal/metrics"
)

func main() {
	// Wall-clock metrics ride along as a pure side channel: every report
	// printed below is bit-identical with this line removed; the layer
	// only feeds the utilization summary at the end.
	metrics.Enable()
	datasets := []struct {
		name string
		spec inlinered.StreamSpec
	}{
		{"home-dirs (docs, compressible)", inlinered.StreamSpec{
			TotalBytes: 48 << 20, DedupRatio: 2.0, CompressionRatio: 3.0, Seed: 11}},
		{"build-trees (binaries, mixed)", inlinered.StreamSpec{
			TotalBytes: 48 << 20, DedupRatio: 1.5, CompressionRatio: 1.8, Seed: 12}},
		{"media (already compressed)", inlinered.StreamSpec{
			TotalBytes: 48 << 20, DedupRatio: 1.1, CompressionRatio: 1.0, Seed: 13}},
	}

	fmt.Println("file server on the paper platform, GPU-for-compression integration")
	fmt.Println()
	fmt.Printf("%-34s %10s %9s %9s %10s %11s\n",
		"dataset", "IOPS", "dedup", "comp", "reduction", "stored MiB")

	var totalIn, totalStored int64
	for _, ds := range datasets {
		stream, err := inlinered.NewStream(ds.spec)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := inlinered.Run(inlinered.PaperPlatform(), inlinered.Options{
			Mode: inlinered.GPUCompress,
		}, stream)
		if err != nil {
			log.Fatal(err)
		}
		totalIn += rep.Bytes
		totalStored += rep.StoredBytes
		fmt.Printf("%-34s %10.0f %8.2fx %8.2fx %9.2fx %11.1f\n",
			ds.name, rep.IOPS, rep.DedupRatio, rep.CompRatio, rep.ReductionRatio,
			float64(rep.StoredBytes)/(1<<20))
	}

	fmt.Println()
	fmt.Printf("total: %.0f MiB ingested, %.1f MiB stored (%.2fx overall reduction)\n",
		float64(totalIn)/(1<<20), float64(totalStored)/(1<<20),
		float64(totalIn)/float64(totalStored))
	fmt.Println("note how the incompressible media dataset still dedups, and how the")
	fmt.Println("compressible one runs fastest — the §4(2) effect.")

	// Closed-loop tail latency: drive the block device one request at a
	// time (each op completes before the next is issued) and read the
	// per-op latency histograms out of the device stats.
	dev, err := inlinered.NewBlockDevice(inlinered.BlockDeviceOptions{Blocks: 4096})
	if err != nil {
		log.Fatal(err)
	}
	stream, err := inlinered.NewStream(inlinered.StreamSpec{
		TotalBytes: 4 << 20, DedupRatio: 1.5, CompressionRatio: 2.0, Seed: 21})
	if err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, 4096)
	for lba := int64(0); ; lba++ {
		if _, err := stream.Read(buf); err != nil {
			break
		}
		if _, err := dev.Write(lba%4096, buf); err != nil {
			log.Fatal(err)
		}
		if lba%3 == 0 {
			if _, _, err := dev.Read(lba % 4096); err != nil {
				log.Fatal(err)
			}
		}
	}
	st := dev.Stats()
	fmt.Println()
	fmt.Println("closed-loop block device burst (per-request virtual latency):")
	printLat := func(name string, l inlinered.LatencySummary) {
		fmt.Printf("  %-5s n=%-5d p50=%-10v p95=%-10v p99=%-10v max=%v\n",
			name, l.Count,
			l.P50.Round(time.Microsecond), l.P95.Round(time.Microsecond),
			l.P99.Round(time.Microsecond), l.Max.Round(time.Microsecond))
	}
	printLat("write", st.WriteLat)
	printLat("read", st.ReadLat)

	// Multi-client closed loop on a sharded array: 16 concurrent clients
	// drive 4 shards on the wall clock, yet the merged report is
	// bit-identical to the single-client run — wall-clock concurrency never
	// changes virtual-time results.
	arr, err := inlinered.NewArray(inlinered.BlockDeviceOptions{
		Blocks: 8192, Shards: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	opsList, err := inlinered.NewOps(inlinered.OpsSpec{
		Ops: 6000, Blocks: 8192, WriteFrac: 0.6, TrimFrac: 0.05,
		DedupRatio: 2.0, Hotspot: 0.5, Seed: 31,
	})
	if err != nil {
		log.Fatal(err)
	}
	rep16, err := arr.Serve(opsList, inlinered.ServeOptions{
		Clients: 16, ContentSeed: 31, CleanEvery: 4096,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println("sharded array, 16 concurrent clients:")
	fmt.Printf("  %s\n", rep16)
	arr1, err := inlinered.NewArray(inlinered.BlockDeviceOptions{
		Blocks: 8192, Shards: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	rep1, err := arr1.Serve(opsList, inlinered.ServeOptions{
		Clients: 1, ContentSeed: 31, CleanEvery: 4096,
	})
	if err != nil {
		log.Fatal(err)
	}
	j16, _ := rep16.JSON()
	j1, _ := rep1.JSON()
	fmt.Printf("  report identical with 1 client: %v\n", string(j16) == string(j1))

	fmt.Println()
	fmt.Println(metrics.SummaryLine())
}
