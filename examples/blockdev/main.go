// Block-device scenario: the full primary-storage lifecycle around the
// inline reduction pipeline — LBA writes and overwrites, deduplicated
// reference-counted chunks, reads through decompression, TRIM, and
// log-structured space cleaning. This is what "applying data reduction
// operations to the critical I/O paths" (§1) means for an actual array.
//
//	go run ./examples/blockdev
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"inlinered"
	"inlinered/internal/workload"
)

func main() {
	vol, err := inlinered.NewBlockDevice(inlinered.BlockDeviceOptions{})
	if err != nil {
		log.Fatal(err)
	}

	const workingSet = 2048 // blocks
	rng := rand.New(rand.NewSource(1))
	content := func(i int) []byte { return workload.UniqueChunk(5, int32(i), 4096, 0.5) }

	// Phase 1: initial fill — half the blocks share content (VM clones).
	var writeLat time.Duration
	for lba := int64(0); lba < workingSet; lba++ {
		lat, err := vol.Write(lba, content(int(lba)%1024))
		if err != nil {
			log.Fatal(err)
		}
		writeLat += lat
	}
	st := vol.Stats()
	fmt.Printf("initial fill:  %d writes, %d dedup hits, %.2fx reduction, mean write %.0f µs\n",
		st.Writes, st.DedupHits, st.ReductionRatio(), float64(writeLat.Microseconds())/float64(st.Writes))

	// Phase 2: overwrite churn — rewrites orphan old chunks.
	for i := 0; i < 4*workingSet; i++ {
		lba := rng.Int63n(workingSet)
		if _, err := vol.Write(lba, content(10000+i)); err != nil {
			log.Fatal(err)
		}
	}
	st = vol.Stats()
	fmt.Printf("after churn:   %.1f MiB live, %.1f MiB garbage in the log\n",
		float64(st.StoredBytes)/(1<<20), float64(st.GarbageBytes)/(1<<20))

	// Phase 3: clean — reclaim the orphaned space.
	cleaned, err := vol.Clean()
	if err != nil {
		log.Fatal(err)
	}
	st = vol.Stats()
	fmt.Printf("after clean:   %d segments reclaimed, %.1f MiB moved, %.1f MiB garbage left\n",
		cleaned, float64(st.MovedBytes)/(1<<20), float64(st.GarbageBytes)/(1<<20))

	// Phase 4: read everything back and verify.
	var readLat time.Duration
	reads := 0
	for lba := int64(0); lba < workingSet; lba += 7 {
		_, lat, err := vol.Read(lba)
		if err != nil {
			log.Fatal(err)
		}
		readLat += lat
		reads++
	}
	fmt.Printf("read-back:     %d reads, mean latency %.0f µs (SSD read + LZSS decode)\n",
		reads, float64(readLat.Microseconds())/float64(reads))

	fmt.Printf("\nvirtual time elapsed: %v\n", vol.Now().Round(time.Microsecond))
}
