// Calibration scenario: the paper's closing point (§4(3)) is that the best
// integration depends on the platform, so the system measures all options
// with dummy I/O before committing. This example runs that calibration pass
// on three platforms — the paper's testbed, a machine with a weak GPU, and
// one with no GPU — and shows the chosen integration for each.
//
//	go run ./examples/calibrate
package main

import (
	"fmt"
	"log"

	"inlinered"
)

func main() {
	platforms := []struct {
		name string
		plat inlinered.Platform
	}{
		{"paper testbed (i7 + HD7970-class)", inlinered.PaperPlatform()},
		{"weak integrated GPU", inlinered.WeakGPUPlatform()},
		{"no GPU at all", inlinered.CPUOnlyPlatform()},
	}

	for _, p := range platforms {
		res, err := inlinered.Calibrate(p.plat, inlinered.Options{}, 32<<20)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s:\n", p.name)
		for _, m := range inlinered.Modes {
			rep, ok := res.Reports[m]
			if !ok {
				fmt.Printf("  %-13s not runnable on this platform\n", m)
				continue
			}
			marker := " "
			if m == res.Best {
				marker = "*"
			}
			fmt.Printf("  %-13s %10.0f IOPS %s\n", m, rep.IOPS, marker)
		}
		fmt.Printf("  -> chosen integration: %s\n\n", res.Best)
	}
	fmt.Println("'*' marks the winner — \"we can ensure the best performance even if the")
	fmt.Println("target platform is different\" (§4(3)).")
}
