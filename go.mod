module inlinered

go 1.22
