// Command metricscheck validates a Prometheus text-format exposition file
// written by -metrics-out (reducerun, tracerun): it parses the full 0.0.4
// line grammar, enforces histogram invariants (cumulative buckets,
// mandatory +Inf, _count agreement), and — with -require — checks that
// named metric families are present. CI runs it on every snapshot it
// produces, so "the output is valid expfmt" is machine-checked.
//
// Usage:
//
//	metricscheck [-require fam1,fam2,...] FILE
//
// Exits 0 when FILE is a valid exposition containing every required
// family; prints the violation and exits 1 otherwise.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"inlinered/internal/metrics"
)

// defaultRequired is the contract every pipeline snapshot must honor: the
// pool, stage, and runtime families are always registered, so they must
// always be present (with zero values when the subsystem never ran).
var defaultRequired = []string{
	"inlinered_pool_map_calls_total",
	"inlinered_pool_worker_busy_seconds_total",
	"inlinered_pool_worker_idle_seconds_total",
	"inlinered_pool_batch_claim_wait_seconds",
	"inlinered_pool_batch_size_items",
	"inlinered_stage_wall_seconds",
	"go_goroutines",
	"go_memory_heap_objects_bytes",
	"go_gc_pause_estimate_seconds",
}

func main() {
	require := flag.String("require", "", "comma-separated metric families that must be present (empty = the standard pipeline set)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: metricscheck [-require fam1,fam2,...] FILE")
		os.Exit(2)
	}
	path := flag.Arg(0)
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	families := defaultRequired
	if *require != "" {
		families = strings.Split(*require, ",")
	}
	if err := metrics.Validate(data, families...); err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	exp, _ := metrics.ParseExposition(data)
	fmt.Printf("metricscheck: %s ok — %d samples across %d families\n", path, len(exp.Samples), len(exp.Types))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "metricscheck:", err)
	os.Exit(1)
}
